package kflushing_test

import (
	"fmt"
	"testing"

	"kflushing"
	"kflushing/internal/gen"
)

// newSystem opens a keyword system in a test temp dir with deterministic
// inline flushing and a small budget so flushes actually happen.
func newSystem(t *testing.T, pol kflushing.PolicyKind, budget int64) *kflushing.System {
	t.Helper()
	sys, err := kflushing.Open(t.TempDir(), kflushing.Options{
		Policy:       pol,
		MemoryBudget: budget,
		SyncFlush:    true,
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", pol, err)
	}
	t.Cleanup(func() {
		if err := sys.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return sys
}

func mb(ts int64, kws ...string) *kflushing.Microblog {
	return &kflushing.Microblog{
		Timestamp: kflushing.Timestamp(ts),
		UserID:    1,
		Keywords:  kws,
		Text:      "body",
	}
}

func TestSystemBasicSearch(t *testing.T) {
	sys := newSystem(t, kflushing.PolicyKFlushing, 1<<30)
	for i := 1; i <= 50; i++ {
		if _, err := sys.Ingest(mb(int64(i), "go", fmt.Sprintf("extra%d", i%5))); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	res, err := sys.SearchKeyword("go", 10)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if !res.MemoryHit {
		t.Errorf("expected memory hit, got miss")
	}
	if len(res.Items) != 10 {
		t.Fatalf("got %d items, want 10", len(res.Items))
	}
	// Temporal ranking: most recent first.
	for i, it := range res.Items {
		want := kflushing.Timestamp(int64(50 - i))
		if it.MB.Timestamp != want {
			t.Errorf("item %d: timestamp = %d, want %d", i, it.MB.Timestamp, want)
		}
	}
}

func TestSystemRejectsNoKeywords(t *testing.T) {
	sys := newSystem(t, kflushing.PolicyKFlushing, 1<<30)
	if _, err := sys.Ingest(&kflushing.Microblog{Text: "no tags"}); err == nil {
		t.Fatal("expected error for microblog without keywords")
	}
}

func TestSystemFlushAndDiskFallback(t *testing.T) {
	for _, pol := range []kflushing.PolicyKind{
		kflushing.PolicyKFlushing, kflushing.PolicyKFlushingMK,
		kflushing.PolicyFIFO, kflushing.PolicyLRU,
	} {
		t.Run(string(pol), func(t *testing.T) {
			sys := newSystem(t, pol, 256<<10) // tiny budget: many flushes
			g := gen.New(gen.Config{
				Seed: 7, Vocab: 2000, KeywordSkew: 0.95, GroupSize: 4,
				RelatedProb: 0.5, Users: 500, UserSkew: 0.95,
				GeoFraction: 0, RatePerSec: 6000, MeanTextLen: 80,
			})
			for i := 0; i < 20_000; i++ {
				if _, err := sys.Ingest(g.Next()); err != nil {
					t.Fatalf("Ingest %d: %v", i, err)
				}
			}
			st := sys.Stats()
			if st.Metrics.Flushes == 0 {
				t.Fatalf("no flushes happened with tiny budget; used=%d", st.MemoryUsed)
			}
			if st.Disk.Segments == 0 {
				t.Fatalf("no disk segments written")
			}
			if st.MemoryUsed > 2*256<<10 {
				t.Errorf("memory used %d far above budget", st.MemoryUsed)
			}
			// A popular keyword should hit memory; a cold one should
			// fall back to disk and still return ranked answers.
			res, err := sys.SearchKeyword("tag00000", 20)
			if err != nil {
				t.Fatalf("popular search: %v", err)
			}
			if len(res.Items) != 20 {
				t.Errorf("popular keyword returned %d items, want 20", len(res.Items))
			}
			for i := 1; i < len(res.Items); i++ {
				if res.Items[i-1].Score < res.Items[i].Score {
					t.Fatalf("answers not ranked at %d", i)
				}
			}
			if err := sys.Err(); err != nil {
				t.Fatalf("flush error: %v", err)
			}
		})
	}
}

func TestSystemDynamicK(t *testing.T) {
	sys := newSystem(t, kflushing.PolicyKFlushing, 1<<30)
	for i := 1; i <= 100; i++ {
		if _, err := sys.Ingest(mb(int64(i), "kw")); err != nil {
			t.Fatal(err)
		}
	}
	sys.SetK(5)
	res, err := sys.SearchKeyword("kw", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 5 {
		t.Fatalf("after SetK(5): got %d items, want 5", len(res.Items))
	}
}
