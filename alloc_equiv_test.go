package kflushing_test

import (
	"fmt"
	"math/rand"
	"testing"

	"kflushing"
)

// forEachAllocPolicy runs fn once per allocator policy as the subtest
// "<name>/alloc=<policy>". The result-identity batteries run under both
// policies: a recycling bug — a pooled posting array or record wrapper
// leaking state between lives — shows up as a divergence from the heap
// run of the same seed.
func forEachAllocPolicy(t *testing.T, name string, fn func(t *testing.T, ap string)) {
	for _, ap := range []string{"pooled", "heap"} {
		ap := ap
		sub := "alloc=" + ap
		if name != "" {
			sub = name + "/" + sub
		}
		t.Run(sub, func(t *testing.T) { fn(t, ap) })
	}
}

// TestAllocPolicyEquivalence runs one seeded mixed stream — batched
// ingests, forced flushes, compactions — through two systems that differ
// only in Options.AllocPolicy and requires byte-identical answers (IDs
// and scores) for every query shape at several points in the stream.
// The allocator is pure mechanism: where a posting array or record
// wrapper came from must be invisible to results.
func TestAllocPolicyEquivalence(t *testing.T) {
	mk := func(ap string) *kflushing.System {
		sys, err := kflushing.Open(t.TempDir(), kflushing.Options{
			Policy:       kflushing.PolicyKFlushing,
			K:            4,
			MemoryBudget: 48 << 10,
			SyncFlush:    true,
			AllocPolicy:  ap,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	heap := mk("heap")
	defer heap.Close()
	pooled := mk("pooled")
	defer pooled.Close()

	rng := rand.New(rand.NewSource(7919))
	const vocabSize = 30
	kw := func(i int) string { return fmt.Sprintf("w%d", i) }
	ts := 0
	mkBatch := func(n int) []*kflushing.Microblog {
		batch := make([]*kflushing.Microblog, 0, n)
		for j := 0; j < n; j++ {
			ts++
			nk := rng.Intn(3) + 1
			seen := map[string]bool{}
			var kws []string
			for len(kws) < nk {
				w := kw(rng.Intn(vocabSize))
				if !seen[w] {
					seen[w] = true
					kws = append(kws, w)
				}
			}
			batch = append(batch, &kflushing.Microblog{
				Timestamp: kflushing.Timestamp(ts),
				Keywords:  kws,
				Text:      "t",
			})
		}
		return batch
	}
	compare := func(round int) {
		for q := 0; q < 60; q++ {
			op := kflushing.Op(rng.Intn(3))
			nKeys := 1
			if op != kflushing.OpSingle {
				nKeys = rng.Intn(3) + 2
			}
			seen := map[string]bool{}
			var keys []string
			for len(keys) < nKeys {
				w := kw(rng.Intn(vocabSize + 3)) // some keys never ingested
				if !seen[w] {
					seen[w] = true
					keys = append(keys, w)
				}
			}
			k := []int{1, 2, 4, 7, 20, 500}[rng.Intn(6)]
			a, err := heap.Search(keys, op, k)
			if err != nil {
				t.Fatalf("round %d: heap search %v %v k=%d: %v", round, keys, op, k, err)
			}
			b, err := pooled.Search(keys, op, k)
			if err != nil {
				t.Fatalf("round %d: pooled search %v %v k=%d: %v", round, keys, op, k, err)
			}
			if len(a.Items) != len(b.Items) {
				t.Fatalf("round %d: query %v %v k=%d: heap %d items, pooled %d",
					round, keys, op, k, len(a.Items), len(b.Items))
			}
			for i := range a.Items {
				if a.Items[i].MB.ID != b.Items[i].MB.ID || a.Items[i].Score != b.Items[i].Score {
					t.Fatalf("round %d: query %v %v k=%d rank %d: heap (id %d, %g), pooled (id %d, %g)",
						round, keys, op, k, i,
						a.Items[i].MB.ID, a.Items[i].Score,
						b.Items[i].MB.ID, b.Items[i].Score)
				}
			}
		}
	}

	systems := []*kflushing.System{heap, pooled}
	for round := 1; round <= 8; round++ {
		for b := 0; b < 20; b++ {
			batch := mkBatch(rng.Intn(12) + 1)
			for _, sys := range systems {
				clones := make([]*kflushing.Microblog, len(batch))
				for i, mb := range batch {
					clones[i] = mb.Clone()
				}
				if _, err := sys.IngestBatch(clones); err != nil {
					t.Fatalf("round %d: ingest: %v", round, err)
				}
			}
			// Flush at the same stream positions so the pooled system's
			// recycler actually turns records over between rounds.
			if b%5 == 4 {
				for _, sys := range systems {
					if _, err := sys.FlushNow(); err != nil {
						t.Fatalf("round %d: flush: %v", round, err)
					}
				}
			}
		}
		if round%3 == 0 {
			for _, sys := range systems {
				if err := sys.CompactNow(); err != nil {
					t.Fatalf("round %d: compact: %v", round, err)
				}
			}
		}
		compare(round)
	}

	for _, sys := range systems {
		if sys.Stats().Disk.Segments == 0 {
			t.Fatal("nothing flushed, equivalence vacuous")
		}
	}
	// The pooled system must have genuinely recycled: the point of the
	// head-to-head is that reuse happened and stayed invisible.
	slices, recs := pooled.Engine().AllocStats()
	if slices.Reuses == 0 {
		t.Fatal("pooled run never reused a posting array")
	}
	if recs.Reuses == 0 {
		t.Fatal("pooled run never reused a record wrapper")
	}
}
