package kflushing_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"kflushing"
)

func durableOpts() kflushing.Options {
	return kflushing.Options{
		Policy:       kflushing.PolicyKFlushing,
		K:            5,
		MemoryBudget: 4 << 20,
		SyncFlush:    true,
		Durable:      true,
	}
}

func TestDurableRestartKeepsMemoryContents(t *testing.T) {
	dir := t.TempDir()
	sys, err := kflushing.Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if _, err := sys.Ingest(mb(int64(i), fmt.Sprintf("k%d", i%9))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := kflushing.Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	if st.StoreRecords != 100 {
		t.Fatalf("recovered %d records, want 100", st.StoreRecords)
	}
	res, err := re.SearchKeyword("k1", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MemoryHit {
		t.Fatal("recovered memory did not serve the query")
	}
	if len(res.Items) != 5 {
		t.Fatalf("got %d items", len(res.Items))
	}
	// Ranking order and IDs survive recovery.
	for i := 1; i < len(res.Items); i++ {
		if res.Items[i-1].Score < res.Items[i].Score {
			t.Fatal("recovered answers not ranked")
		}
	}
	// New ingests continue past the recovered ID space.
	id, err := re.Ingest(mb(101, "k1"))
	if err != nil {
		t.Fatal(err)
	}
	if id <= 100 {
		t.Fatalf("new ID %d collides with recovered records", id)
	}
}

func TestDurableCrashRecoveryFromTornWAL(t *testing.T) {
	dir := t.TempDir()
	sys, err := kflushing.Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 50; i++ {
		if _, err := sys.Ingest(mb(int64(i), "crashkey")); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: no Close (no snapshot); tear the newest WAL
	// file mid-record.
	files, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.kfw"))
	if err != nil || len(files) == 0 {
		t.Fatalf("wal files: %v err=%v", files, err)
	}
	newest := files[len(files)-1]
	b, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, b[:len(b)-11], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := kflushing.Open(dir, durableOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Stats()
	// The torn final record is lost; everything else survives.
	if st.StoreRecords != 49 {
		t.Fatalf("recovered %d records, want 49", st.StoreRecords)
	}
	res, err := re.SearchKeyword("crashkey", 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MemoryHit || len(res.Items) != 5 {
		t.Fatalf("hit=%v items=%d", res.MemoryHit, len(res.Items))
	}
	if res.Items[0].MB.Timestamp != 49 {
		t.Fatalf("newest surviving record ts=%d, want 49", res.Items[0].MB.Timestamp)
	}
}

func TestDurableRecoveryAfterFlushesDeduplicates(t *testing.T) {
	dir := t.TempDir()
	opts := durableOpts()
	opts.MemoryBudget = 64 << 10 // force flushing
	sys, err := kflushing.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 1500; i++ {
		if _, err := sys.Ingest(mb(int64(i), fmt.Sprintf("k%d", i%7))); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Stats().Disk.Segments == 0 {
		t.Fatal("expected flushed segments")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := kflushing.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Queries across recovered memory + disk see each record once.
	res, err := re.Search([]string{"k1"}, kflushing.OpSingle, 50)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[kflushing.ID]bool{}
	for _, it := range res.Items {
		if seen[it.MB.ID] {
			t.Fatalf("duplicate record %d in answer", it.MB.ID)
		}
		seen[it.MB.ID] = true
	}
	// The newest record for k1 must be present and ranked first.
	want := int64(0)
	for i := 1; i <= 1500; i++ {
		if i%7 == 1 {
			want = int64(i)
		}
	}
	if int64(res.Items[0].MB.Timestamp) != want {
		t.Fatalf("newest k1 record ts=%d, want %d", res.Items[0].MB.Timestamp, want)
	}
}
