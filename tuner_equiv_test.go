package kflushing_test

import (
	"fmt"
	"math/rand"
	"testing"

	"kflushing"
)

// clampedTunerLimits pins every knob at the given static configuration,
// the mode the tuner documents as provably equivalent to running
// without it. Interval 1 makes every ingest batch due for a tick, so
// the controller evaluates constantly and equivalence is not vacuous.
func clampedTunerLimits(flushFrac float64, cacheBytes int64) kflushing.TunerLimits {
	return kflushing.TunerLimits{
		Interval:             1,
		MinFlushFraction:     flushFrac,
		MaxFlushFraction:     flushFrac,
		MinWatermarkFraction: 1.0,
		MaxWatermarkFraction: 1.0,
		MinCacheBytes:        cacheBytes,
		MaxCacheBytes:        cacheBytes,
	}
}

// TestTunerClampedEquivalence runs one seeded mixed stream through
// three systems — tuner off, tuner on with every knob clamped to the
// static values, and the plain static baseline — and requires
// byte-identical answers for every query shape, identical flush
// counters, and identical flush-victim journals. This is satellite 1 of
// the adaptive-memory PR: enabling the controller without widening its
// bounds must be invisible down to the individual flush decision.
func TestTunerClampedEquivalence(t *testing.T) {
	const (
		budget     = 48 << 10
		flushFrac  = 0.1
		cacheBytes = 8 << 20 // the disk tier's default budget
	)
	mk := func(adaptive bool) *kflushing.System {
		opt := kflushing.Options{
			Policy:        kflushing.PolicyKFlushing,
			K:             4,
			MemoryBudget:  budget,
			FlushFraction: flushFrac,
			SyncFlush:     true,
		}
		if adaptive {
			opt.AdaptiveMemory = true
			opt.Tuner = clampedTunerLimits(flushFrac, cacheBytes)
		}
		sys, err := kflushing.Open(t.TempDir(), opt)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	static := mk(false)
	defer static.Close()
	clamped := mk(true)
	defer clamped.Close()
	systems := []*kflushing.System{static, clamped}

	rng := rand.New(rand.NewSource(1409))
	const vocabSize = 30
	kw := func(i int) string { return fmt.Sprintf("w%d", i) }
	ts := 0
	mkBatch := func(n int) []*kflushing.Microblog {
		batch := make([]*kflushing.Microblog, 0, n)
		for j := 0; j < n; j++ {
			ts++
			nk := rng.Intn(3) + 1
			seen := map[string]bool{}
			var kws []string
			for len(kws) < nk {
				w := kw(rng.Intn(vocabSize))
				if !seen[w] {
					seen[w] = true
					kws = append(kws, w)
				}
			}
			batch = append(batch, &kflushing.Microblog{
				Timestamp: kflushing.Timestamp(ts),
				Keywords:  kws,
				Text:      "t",
			})
		}
		return batch
	}
	compare := func(round int) {
		for q := 0; q < 40; q++ {
			op := kflushing.Op(rng.Intn(3))
			nKeys := 1
			if op != kflushing.OpSingle {
				nKeys = rng.Intn(3) + 2
			}
			seen := map[string]bool{}
			var keys []string
			for len(keys) < nKeys {
				w := kw(rng.Intn(vocabSize + 3))
				if !seen[w] {
					seen[w] = true
					keys = append(keys, w)
				}
			}
			k := []int{1, 2, 4, 7, 20, 500}[rng.Intn(6)]
			a, err := static.Search(keys, op, k)
			if err != nil {
				t.Fatalf("round %d: static search: %v", round, err)
			}
			b, err := clamped.Search(keys, op, k)
			if err != nil {
				t.Fatalf("round %d: clamped search: %v", round, err)
			}
			if len(a.Items) != len(b.Items) {
				t.Fatalf("round %d: query %v %v k=%d: static %d items, clamped %d",
					round, keys, op, k, len(a.Items), len(b.Items))
			}
			for i := range a.Items {
				if a.Items[i].MB.ID != b.Items[i].MB.ID || a.Items[i].Score != b.Items[i].Score {
					t.Fatalf("round %d: query %v %v k=%d rank %d: static (id %d, %g), clamped (id %d, %g)",
						round, keys, op, k, i,
						a.Items[i].MB.ID, a.Items[i].Score,
						b.Items[i].MB.ID, b.Items[i].Score)
				}
			}
		}
	}

	for round := 1; round <= 6; round++ {
		for b := 0; b < 20; b++ {
			batch := mkBatch(rng.Intn(12) + 1)
			for _, sys := range systems {
				clones := make([]*kflushing.Microblog, len(batch))
				for i, mb := range batch {
					clones[i] = mb.Clone()
				}
				if _, err := sys.IngestBatch(clones); err != nil {
					t.Fatalf("round %d: ingest: %v", round, err)
				}
			}
			if b%5 == 4 {
				for _, sys := range systems {
					if _, err := sys.FlushNow(); err != nil {
						t.Fatalf("round %d: flush: %v", round, err)
					}
				}
			}
		}
		if round%3 == 0 {
			for _, sys := range systems {
				if err := sys.CompactNow(); err != nil {
					t.Fatalf("round %d: compact: %v", round, err)
				}
			}
		}
		compare(round)
	}

	// Aggregate equivalence: the same flush cycles freed the same bytes
	// and left the same residents in memory and on disk.
	sa, sb := static.Stats(), clamped.Stats()
	if sa.Metrics.Flushes != sb.Metrics.Flushes || sa.Metrics.FlushedBytes != sb.Metrics.FlushedBytes {
		t.Fatalf("flush counters diverged: static %d cycles/%d bytes, clamped %d/%d",
			sa.Metrics.Flushes, sa.Metrics.FlushedBytes, sb.Metrics.Flushes, sb.Metrics.FlushedBytes)
	}
	if sa.MemoryUsed != sb.MemoryUsed || sa.StoreRecords != sb.StoreRecords {
		t.Fatalf("memory diverged: static %d bytes/%d records, clamped %d/%d",
			sa.MemoryUsed, sa.StoreRecords, sb.MemoryUsed, sb.StoreRecords)
	}
	if sa.Disk.Segments != sb.Disk.Segments || sa.Disk.RecordsWritten != sb.Disk.RecordsWritten {
		t.Fatalf("disk diverged: static %d segments/%d records, clamped %d/%d",
			sa.Disk.Segments, sa.Disk.RecordsWritten, sb.Disk.Segments, sb.Disk.RecordsWritten)
	}
	if sa.Metrics.Flushes == 0 {
		t.Fatal("no flush cycles ran; equivalence vacuous")
	}

	// Victim-set equivalence: every journaled cycle chose the same
	// victims, phase by phase. The clamped run must also contain no
	// "tuner" events — a pinned controller never emits a change.
	ja, jb := static.FlushLog(0), clamped.FlushLog(0)
	if len(ja) != len(jb) {
		t.Fatalf("journal lengths diverged: static %d, clamped %d", len(ja), len(jb))
	}
	for i := range ja {
		a, b := ja[i], jb[i]
		if b.Trigger == "tuner" {
			t.Fatalf("clamped run journaled a tuner adjustment: %+v", b)
		}
		if a.Trigger != b.Trigger || a.Target != b.Target || a.Freed != b.Freed ||
			a.MemBefore != b.MemBefore || a.MemAfter != b.MemAfter || len(a.Phases) != len(b.Phases) {
			t.Fatalf("journal event %d diverged:\nstatic  %+v\nclamped %+v", i, a, b)
		}
		for p := range a.Phases {
			pa, pb := a.Phases[p], b.Phases[p]
			if pa.Phase != pb.Phase || pa.Name != pb.Name || pa.Victims != pb.Victims || pa.Freed != pb.Freed {
				t.Fatalf("journal event %d phase %d victims diverged:\nstatic  %+v\nclamped %+v", i, p, pa, pb)
			}
		}
	}

	// The clamped controller genuinely ran: it ticked, it just never
	// changed anything.
	st, ok := clamped.TunerState()
	if !ok {
		t.Fatal("clamped system reports tuner off")
	}
	if st.Ticks == 0 {
		t.Fatal("clamped tuner never ticked; equivalence vacuous")
	}
	if st.Adjusts != 0 {
		t.Fatalf("clamped tuner applied %d adjustments", st.Adjusts)
	}
	if _, ok := static.TunerState(); ok {
		t.Fatal("static system reports tuner on")
	}
}
