//go:build failpoint

package engine

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"kflushing/internal/blackbox"
	"kflushing/internal/disk"
	"kflushing/internal/failpoint"
)

// TestDegradedEntryDumpsBlackbox drives a persistent flush failure into
// degraded mode and checks the transition edge automatically snapshotted
// the flight recorder to the tier directory: the dump file exists, is
// decodable, carries reason "degraded", and holds the events that
// preceded the failure (the ingest batches and the degraded-enter edge
// itself) in strictly increasing sequence order.
func TestDegradedEntryDumpsBlackbox(t *testing.T) {
	eng := newFaultEngine(t, disk.RetryPolicy{Attempts: 1})
	for i := 0; i < 50; i++ {
		ingest(t, eng, int64(i+1), "a", "all")
	}
	mustEnable(t, failpoint.DiskSegmentWrite, "error")
	if _, err := eng.FlushNow(); err == nil {
		t.Fatal("flush succeeded despite persistent segment-write fault")
	}
	if degraded, _ := eng.Degraded(); !degraded {
		t.Fatal("engine not degraded after persistent flush failure")
	}

	matches, err := filepath.Glob(filepath.Join(eng.cfg.DiskDir, "blackbox-degraded-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Fatalf("found %d degraded dump files in %s, want 1", len(matches), eng.cfg.DiskDir)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var df blackbox.DumpFile
	if err := json.Unmarshal(data, &df); err != nil {
		t.Fatalf("decode dump: %v", err)
	}
	if df.Reason != "degraded" {
		t.Fatalf("dump reason = %q, want degraded", df.Reason)
	}
	if len(df.Events) == 0 {
		t.Fatal("degraded dump carries no events")
	}
	seen := map[string]bool{}
	var lastSeq uint64
	for _, ev := range df.Events {
		if ev.Seq <= lastSeq {
			t.Fatalf("dump events out of sequence order: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		seen[ev.Event] = true
	}
	for _, want := range []string{"ingest_batch", "degraded_enter"} {
		if !seen[want] {
			t.Errorf("dump missing %q event (events preceding the failure must be captured)", want)
		}
	}
}
