//go:build failpoint

package engine

import (
	"errors"
	"testing"
	"time"

	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/core"
	"kflushing/internal/disk"
	"kflushing/internal/failpoint"
	"kflushing/internal/types"
)

// newPipelineFaultEngine builds a pipeline-enabled keyword engine with
// the given retry policy, disarming every failpoint around the test.
func newPipelineFaultEngine(t *testing.T, retry disk.RetryPolicy) *Engine[string] {
	t.Helper()
	failpoint.DisableAll()
	t.Cleanup(failpoint.DisableAll)
	eng, err := New(Config[string]{
		K:                  5,
		MemoryBudget:       1 << 30,
		FlushFraction:      0.2,
		KeysOf:             attr.KeywordKeys,
		KeyHash:            attr.HashString,
		KeyLen:             attr.KeywordLen,
		EncodeKey:          attr.KeywordEncode,
		Clock:              clock.NewLogical(1, 1),
		DiskDir:            t.TempDir(),
		DiskRetry:          retry,
		Policy:             core.New[string](),
		TrackOverK:         true,
		FlushPipelineDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return eng
}

func waitDegraded(t *testing.T, e *Engine[string]) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if degraded, reason := e.Degraded(); degraded {
			return reason
		}
		if time.Now().After(deadline) {
			t.Fatal("engine never entered degraded mode")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPipelineInstallFailureRestoresAndDegrades: when an enqueued
// batch's build/install fails on the worker, the eviction must roll
// back into memory (no record loss) and the engine must enter degraded
// read-only mode — the synchronous failure contract, delivered late.
func TestPipelineInstallFailureRestoresAndDegrades(t *testing.T) {
	eng := newPipelineFaultEngine(t, disk.RetryPolicy{Attempts: 1})
	mustEnable(t, failpoint.DiskSegmentWrite, "error")

	eng.fsink.beginCycle(true)
	batch := pipelineBatch(5000, 20)
	if err := eng.fsink.Flush(batch); err != nil {
		t.Fatalf("enqueue must succeed (the failure surfaces async): %v", err)
	}
	if reason := waitDegraded(t, eng); reason == "" {
		t.Fatal("degraded with empty reason")
	}
	waitPipelineIdle(t, eng)

	// Rollback: every record of the failed batch is back in memory and
	// searchable; none reached the tier.
	for _, fr := range batch {
		if eng.store.Get(fr.MB.ID) == nil {
			t.Fatalf("record %d not restored after async install failure", fr.MB.ID)
		}
	}
	got := searchIDs(t, eng, "p", 100)
	for _, fr := range batch {
		if !got[fr.MB.ID] {
			t.Fatalf("record %d unsearchable after rollback", fr.MB.ID)
		}
	}
	if eng.Stats().Disk.Segments != 0 {
		t.Fatal("failed install left a visible segment")
	}
	if _, err := eng.Ingest(&types.Microblog{Keywords: []string{"b"}, Text: "t"}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded ingest error = %v, want ErrDegraded", err)
	}

	// Fault clears: a readiness probe restores write service and a
	// manual flush persists the restored records.
	failpoint.Disable(failpoint.DiskSegmentWrite)
	if err := eng.CheckReady(); err != nil {
		t.Fatalf("CheckReady after fault cleared: %v", err)
	}
	if degraded, _ := eng.Degraded(); degraded {
		t.Fatal("still degraded after successful readiness probe")
	}
	if _, err := eng.FlushNow(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
}

// TestPipelineFailureAfterDurableWrite: a post-write fault fails the
// batch AFTER its segment was durably renamed. The engine must degrade
// but must NOT roll the eviction back — restoring records whose segment
// is live would answer them twice.
func TestPipelineFailureAfterDurableWrite(t *testing.T) {
	eng := newPipelineFaultEngine(t, disk.RetryPolicy{})
	mustEnable(t, failpoint.FlushAfterWrite, "error(1)")

	eng.fsink.beginCycle(true)
	batch := pipelineBatch(6000, 12)
	if err := eng.fsink.Flush(batch); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	waitDegraded(t, eng)
	waitPipelineIdle(t, eng)

	// No rollback: memory stays empty of the batch, the segment answers.
	for _, fr := range batch {
		if eng.store.Get(fr.MB.ID) != nil {
			t.Fatalf("record %d restored despite durable segment (would duplicate)", fr.MB.ID)
		}
	}
	got := searchIDs(t, eng, "p", 100)
	if len(got) != len(batch) {
		t.Fatalf("disk answers %d of %d records after post-write fault", len(got), len(batch))
	}
	if eng.Stats().Disk.Segments == 0 {
		t.Fatal("durable segment not visible")
	}

	if err := eng.CheckReady(); err != nil {
		t.Fatalf("CheckReady after one-shot fault: %v", err)
	}
	if degraded, _ := eng.Degraded(); degraded {
		t.Fatal("still degraded after successful readiness probe")
	}
}
