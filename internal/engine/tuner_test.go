package engine

import (
	"errors"
	"fmt"
	"testing"

	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/core"
	"kflushing/internal/query"
	"kflushing/internal/tuner"
	"kflushing/internal/types"
)

// newTunedEngine builds a deterministic (SyncFlush, logical-clock)
// keyword engine. With adaptive set, the tuner ticks at Interval 1 —
// every ingest batch is due — so workload shifts register immediately
// and the sims below replay identically.
func newTunedEngine(t testing.TB, budget, cacheBytes int64, adaptive bool) *Engine[string] {
	t.Helper()
	cfg := Config[string]{
		K:              5,
		MemoryBudget:   budget,
		FlushFraction:  0.1,
		DiskCacheBytes: cacheBytes,
		KeysOf:         attr.KeywordKeys,
		KeyHash:        attr.HashString,
		KeyLen:         attr.KeywordLen,
		EncodeKey:      attr.KeywordEncode,
		Clock:          clock.NewLogical(1, 1),
		DiskDir:        t.TempDir(),
		Policy:         core.New[string](),
		TrackOverK:     true,
		SyncFlush:      true,
	}
	if adaptive {
		cfg.AdaptiveMemory = true
		cfg.TunerLimits = tuner.Limits{Interval: 1}
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func ingestKeyed(t testing.TB, e *Engine[string], kws ...string) {
	t.Helper()
	if _, err := e.Ingest(&types.Microblog{Keywords: kws, Text: "tuner sim record body"}); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
}

// TestTunerDisabledByDefault: without AdaptiveMemory the engine carries
// no controller and the static knobs are used verbatim.
func TestTunerDisabledByDefault(t *testing.T) {
	eng := newTunedEngine(t, 1<<20, 4096, false)
	if _, ok := eng.TunerState(); ok {
		t.Fatal("tuner reported on")
	}
	if st := eng.Stats(); st.TunerEnabled || st.Tuner.Ticks != 0 {
		t.Fatalf("stats report tuner activity: %+v", st.Tuner)
	}
	if wm := eng.watermarkBytes(); wm != 1<<20 {
		t.Fatalf("watermark %d, want the static budget", wm)
	}
	if f := eng.flushFraction(); f != 0.1 {
		t.Fatalf("flush fraction %v, want the static 0.1", f)
	}
}

// TestTunerFlashCrowdConverges is workload-shift sim 1: a flash crowd —
// sustained hot-keyword ingest driving constant flush cycles, zero
// queries. The controller must move toward the write side and stay
// there: B above the static 0.1, the cache give back toward its floor,
// no direction reversals.
func TestTunerFlashCrowdConverges(t *testing.T) {
	// 256 KiB cache: comfortably above the controller's 64 KiB floor,
	// so the write-side shrink has room to act.
	eng := newTunedEngine(t, 24<<10, 256<<10, true)
	for i := 0; i < 3000; i++ {
		ingestKeyed(t, eng, "flash", fmt.Sprintf("u%d", i))
	}
	st, ok := eng.TunerState()
	if !ok {
		t.Fatal("tuner off")
	}
	if st.Adjusts == 0 {
		t.Fatalf("flash crowd applied no adjustments: %+v", st)
	}
	if st.Direction != 1 {
		t.Fatalf("direction %d, want +1 (write-heavy)", st.Direction)
	}
	if st.FlushFraction <= 0.1 {
		t.Fatalf("B=%v did not rise above the static 0.1", st.FlushFraction)
	}
	if st.CacheBytes >= 256<<10 {
		t.Fatalf("cache %d did not shrink", st.CacheBytes)
	}
	if st.WatermarkBytes != 24<<10 {
		t.Fatalf("watermark %d left its max (the budget)", st.WatermarkBytes)
	}
	if st.SignFlips != 0 {
		t.Fatalf("one-sided workload produced %d sign flips", st.SignFlips)
	}
	// The retuned targets are what the hot paths now read.
	if eng.flushFraction() != st.FlushFraction {
		t.Fatalf("applied B %v != controller B %v", eng.flushFraction(), st.FlushFraction)
	}
	// The tier splits the budget across its shards, rounding down to a
	// per-shard multiple — within one shard-count of the target.
	if got := eng.tier.CacheBudgetBytes(); got > st.CacheBytes || st.CacheBytes-got >= 8 {
		t.Fatalf("tier cache budget %d != controller target %d", got, st.CacheBytes)
	}
}

// driveDiurnal runs the shared diurnal-drift script against one engine:
// a write morning (spread ingest, then full eviction to disk) followed
// by a read evening (cycling memory-miss queries over a hot key set,
// with an ingest trickle carrying the tick cadence). Returns the disk
// cache hit ratio over the read phase.
func driveDiurnal(t testing.TB, eng *Engine[string]) float64 {
	t.Helper()
	const hotKeys = 40
	// Morning: 200 keys, hot ones first, everything flushed out.
	for i := 0; i < 200; i++ {
		ingestKeyed(t, eng, fmt.Sprintf("k%d", i), "all")
		ingestKeyed(t, eng, fmt.Sprintf("k%d", i), "all")
	}
	for i := 0; i < 40; i++ {
		if _, err := eng.FlushNow(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Search(query.Request[string]{Keys: []string{"k0"}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryHit {
		t.Fatal("hot key still memory-resident; read phase would not miss")
	}
	h0, m0 := eng.tier.CacheCounters()

	// Evening: cycle the hot set; every 5th query an ingest trickle
	// gives the synchronous engine its tick.
	for round := 0; round < 60; round++ {
		for i := 0; i < hotKeys; i++ {
			if _, err := eng.Search(query.Request[string]{Keys: []string{fmt.Sprintf("k%d", i)}, K: 5}); err != nil {
				t.Fatal(err)
			}
			if i%5 == 0 {
				ingestKeyed(t, eng, fmt.Sprintf("trickle-%d-%d", round, i))
			}
		}
	}
	h1, m1 := eng.tier.CacheCounters()
	hits, misses := h1-h0, m1-m0
	if hits+misses == 0 {
		t.Fatal("read phase generated no cache traffic")
	}
	return float64(hits) / float64(hits+misses)
}

// TestTunerDiurnalDriftBeatsStatic is workload-shift sim 2: the same
// deterministic diurnal script through a static engine and an adaptive
// twin. The adaptive run must recognize the read-heavy evening — grow
// the record cache out of the lowered watermark, drop B — and convert
// that into a strictly better cache hit ratio, with direction changes
// bounded by the two-tick confirmation.
func TestTunerDiurnalDriftBeatsStatic(t *testing.T) {
	const (
		budget     = 128 << 10
		cacheBytes = 4096 // deliberately starved: the static run thrashes
	)
	staticRatio := driveDiurnal(t, newTunedEngine(t, budget, cacheBytes, false))
	adaptive := newTunedEngine(t, budget, cacheBytes, true)
	adaptiveRatio := driveDiurnal(t, adaptive)

	st, ok := adaptive.TunerState()
	if !ok {
		t.Fatal("tuner off")
	}
	if st.Direction != -1 {
		t.Fatalf("direction %d after the read evening, want -1", st.Direction)
	}
	if st.CacheBytes <= cacheBytes {
		t.Fatalf("cache %d did not grow past the static %d", st.CacheBytes, cacheBytes)
	}
	if st.WatermarkBytes >= budget {
		t.Fatalf("watermark %d did not cede bytes to the cache", st.WatermarkBytes)
	}
	if st.FlushFraction >= 0.1 {
		t.Fatalf("B=%v did not fall below the static 0.1 under read pressure", st.FlushFraction)
	}
	if st.WatermarkBytes+st.CacheBytes > adaptive.tun.Envelope() {
		t.Fatalf("envelope exceeded: %d + %d > %d", st.WatermarkBytes, st.CacheBytes, adaptive.tun.Envelope())
	}
	// One genuine regime change (morning write, evening read) may cost
	// at most a couple of applied reversals.
	if st.SignFlips > 2 {
		t.Fatalf("%d sign flips across one regime change", st.SignFlips)
	}
	if adaptiveRatio <= staticRatio {
		t.Fatalf("adaptive hit ratio %.3f did not beat static %.3f", adaptiveRatio, staticRatio)
	}
	t.Logf("diurnal drift: static hit ratio %.3f, adaptive %.3f (cache %d -> %d bytes)",
		staticRatio, adaptiveRatio, cacheBytes, st.CacheBytes)
}

// TestTunerNeverAdjustsWhileGateHeld: the controller only applies
// decisions under the flush gate; while a flush cycle (simulated here
// by holding flushMu) owns it, a due tick is deferred, not taken.
func TestTunerNeverAdjustsWhileGateHeld(t *testing.T) {
	eng := newTunedEngine(t, 1<<20, 4096, true)
	if !eng.tun.Due(eng.clk.Now()) {
		t.Fatal("tick not due at interval 1")
	}
	before := eng.tun.State().Ticks
	eng.flushMu.Lock()
	eng.maybeTune()
	eng.maybeTune()
	held := eng.tun.State().Ticks
	eng.flushMu.Unlock()
	if held != before {
		t.Fatalf("ticks advanced %d -> %d while the gate was held", before, held)
	}
	eng.maybeTune()
	if after := eng.tun.State().Ticks; after != before+1 {
		t.Fatalf("deferred tick did not run after the gate freed: %d -> %d", before, after)
	}
}

// TestTunerFrozenWhileDegraded: a degraded (read-only) engine must not
// retune — no ticks are consumed — and leaving degraded mode resumes
// the controller.
func TestTunerFrozenWhileDegraded(t *testing.T) {
	eng := newTunedEngine(t, 1<<20, 4096, true)
	eng.maybeTune()
	base := eng.tun.State().Ticks
	if base == 0 {
		t.Fatal("controller never ticked before entering degraded mode")
	}

	eng.enterDegraded(errors.New("injected tier failure"))
	for i := 0; i < 5; i++ {
		eng.maybeTune()
	}
	if got := eng.tun.State().Ticks; got != base {
		t.Fatalf("degraded engine ticked: %d -> %d", base, got)
	}

	eng.exitDegraded("test")
	eng.maybeTune()
	if got := eng.tun.State().Ticks; got != base+1 {
		t.Fatalf("controller did not resume after degraded cleared: %d -> %d", base, got)
	}
}
