package engine

import (
	"testing"
	"time"

	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/core"
	"kflushing/internal/disk"
	"kflushing/internal/flushlog"
	"kflushing/internal/metrics"
	"kflushing/internal/query"
	"kflushing/internal/types"
)

// newPipelineEngine builds a keyword engine with the flush pipeline
// enabled (SyncFlush off, bounded queue of the given depth).
func newPipelineEngine(t *testing.T, budget int64, depth int) *Engine[string] {
	t.Helper()
	eng, err := New(Config[string]{
		K:                  5,
		MemoryBudget:       budget,
		FlushFraction:      0.2,
		KeysOf:             attr.KeywordKeys,
		KeyHash:            attr.HashString,
		KeyLen:             attr.KeywordLen,
		EncodeKey:          attr.KeywordEncode,
		Clock:              clock.NewLogical(1, 1),
		DiskDir:            t.TempDir(),
		Policy:             core.New[string](),
		TrackOverK:         true,
		FlushPipelineDepth: depth,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return eng
}

// pipelineBatch builds a flush batch of n records keyed "p", with IDs
// starting at base — IDs deliberately absent from the engine's memory
// store, the state of a record after prepare has evicted it.
func pipelineBatch(base uint64, n int) []disk.FlushRecord {
	recs := make([]disk.FlushRecord, 0, n)
	for i := 0; i < n; i++ {
		id := base + uint64(i)
		recs = append(recs, disk.FlushRecord{
			MB: &types.Microblog{
				ID:        types.ID(id),
				Timestamp: types.Timestamp(id),
				Keywords:  []string{"p"},
				Text:      "text",
			},
			Score: float64(id),
		})
	}
	return recs
}

// waitPipelineIdle polls until every queued batch has completed.
func waitPipelineIdle(t *testing.T, e *Engine[string]) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for e.pipe.depth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never drained: depth=%d", e.pipe.depth())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPipelineEnqueueAndComplete drives one batch through the async
// path exactly as a budget-triggered cycle would: the sink enqueues
// instead of writing, the worker builds and installs the segment, and
// the completion is journaled as a "pipeline" event with build, install
// and release stage timings.
func TestPipelineEnqueueAndComplete(t *testing.T) {
	eng := newPipelineEngine(t, 1<<30, 4)
	eng.fsink.beginCycle(true)
	if err := eng.fsink.Flush(pipelineBatch(1000, 20)); err != nil {
		t.Fatalf("async flush: %v", err)
	}
	if got := eng.reg.PipelineEnqueued.Load(); got != 1 {
		t.Fatalf("PipelineEnqueued = %d, want 1 (batch should have queued, not written inline)", got)
	}
	waitPipelineIdle(t, eng)

	// The segment is durable and searchable through the normal path.
	res, err := eng.Search(query.Request[string]{Keys: []string{"p"}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 5 {
		t.Fatalf("search after pipelined flush: %d items, want 5", len(res.Items))
	}
	if res.Items[0].MB.ID != 1019 {
		t.Fatalf("top item ID = %d, want 1019 (highest score)", res.Items[0].MB.ID)
	}
	if degraded, reason := eng.Degraded(); degraded {
		t.Fatalf("degraded after successful pipelined flush: %s", reason)
	}

	// The completion is journaled with its stage timings.
	var pipe *flushlog.Event
	for _, ev := range eng.Journal().Last(0) {
		if ev.Trigger == flushlog.TriggerPipeline {
			e := ev
			pipe = &e
		}
	}
	if pipe == nil {
		t.Fatal("no pipeline event in the flush journal")
	}
	stages := map[string]bool{}
	for _, st := range pipe.Stages {
		stages[st.Name] = true
	}
	for _, want := range []string{"build", "install", "release"} {
		if !stages[want] {
			t.Fatalf("pipeline event missing stage %q: %+v", want, pipe.Stages)
		}
	}

	// Stage histograms observed the async build and install.
	snap := eng.reg.Snap()
	if snap.Stages[metrics.StageBuild].Runs == 0 || snap.Stages[metrics.StageInstall].Runs == 0 {
		t.Fatalf("stage histograms empty after pipelined flush: %+v", snap.Stages)
	}
	if snap.PipelineDepth != 0 {
		t.Fatalf("PipelineDepth = %d after drain", snap.PipelineDepth)
	}
}

// TestPipelineFallbackWhenFull proves the bounded-queue contract: with
// the worker blocked on the flush gate and the queue full, the sink
// falls back to the synchronous write path instead of blocking or
// dropping, and every batch still reaches the tier.
func TestPipelineFallbackWhenFull(t *testing.T) {
	eng := newPipelineEngine(t, 1<<30, 1)

	// The worker's release stage needs flushMu; holding it parks the
	// worker after its first dequeue so the queue stays occupied.
	eng.flushMu.Lock()
	const batches = 4
	for i := 0; i < batches; i++ {
		eng.fsink.beginCycle(true)
		if err := eng.fsink.Flush(pipelineBatch(uint64(2000+100*i), 10)); err != nil {
			eng.flushMu.Unlock()
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	fallbacks := eng.reg.PipelineFallbacks.Load()
	eng.flushMu.Unlock()
	if fallbacks == 0 {
		t.Fatal("queue of depth 1 absorbed 4 batches with no synchronous fallback")
	}
	waitPipelineIdle(t, eng)

	// No batch was lost to the full queue: all 40 records answer.
	res, err := eng.Search(query.Request[string]{Keys: []string{"p"}, K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != batches*10 {
		t.Fatalf("%d records after fallback, want %d", len(res.Items), batches*10)
	}
}

// TestManualFlushStaysSynchronous: FlushNow and other non-budget
// triggers must not enqueue — their outcome is determined when they
// return, so the batch has to be durable before FlushNow comes back.
func TestManualFlushStaysSynchronous(t *testing.T) {
	eng := newPipelineEngine(t, 1<<30, 4)
	for i := 0; i < 40; i++ {
		ingest(t, eng, int64(i+1), "q", "all")
	}
	if _, err := eng.FlushNow(); err != nil {
		t.Fatal(err)
	}
	if got := eng.reg.PipelineEnqueued.Load(); got != 0 {
		t.Fatalf("manual flush enqueued %d batches, want 0 (must stay synchronous)", got)
	}
	if eng.Stats().Disk.Segments == 0 {
		t.Fatal("manual flush wrote no segment")
	}
	// The synchronous path still reports its stage breakdown.
	snap := eng.reg.Snap()
	if snap.Stages[metrics.StagePrepare].Runs == 0 || snap.Stages[metrics.StageBuild].Runs == 0 {
		t.Fatalf("sync flush recorded no prepare/build stages: %+v", snap.Stages)
	}
}

// TestBudgetFlushUsesPipeline exercises the real trigger path end to
// end: ingest past the budget on a pipeline-enabled engine and the
// background cycle must enqueue its batch rather than write inline.
func TestBudgetFlushUsesPipeline(t *testing.T) {
	eng := newPipelineEngine(t, 64<<10, 4)
	deadline := time.Now().Add(10 * time.Second)
	i := 0
	for eng.reg.PipelineEnqueued.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("budget-triggered flushes never used the pipeline")
		}
		i++
		ingest(t, eng, int64(i), "w", "all")
	}
	waitPipelineIdle(t, eng)
	if degraded, reason := eng.Degraded(); degraded {
		t.Fatalf("degraded under pipelined budget flushes: %s", reason)
	}
	if _, err := eng.Search(query.Request[string]{Keys: []string{"all"}, K: 5}); err != nil {
		t.Fatalf("search during pipelined ingest: %v", err)
	}
}

// TestCloseDrainsPipeline: a batch queued but not yet installed when
// Close is called must reach the tier before the engine shuts down —
// queued batches never fall into the void.
func TestCloseDrainsPipeline(t *testing.T) {
	dir := t.TempDir()
	eng, err := New(Config[string]{
		K:                  5,
		MemoryBudget:       1 << 30,
		FlushFraction:      0.2,
		KeysOf:             attr.KeywordKeys,
		KeyHash:            attr.HashString,
		KeyLen:             attr.KeywordLen,
		EncodeKey:          attr.KeywordEncode,
		Clock:              clock.NewLogical(1, 1),
		DiskDir:            dir,
		Policy:             core.New[string](),
		TrackOverK:         true,
		FlushPipelineDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.fsink.beginCycle(true)
	if err := eng.fsink.Flush(pipelineBatch(3000, 15)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close with queued batch: %v", err)
	}

	// Reopen the directory cold: the batch must be on disk.
	tier, err := disk.Open(disk.Config[string]{
		Dir:    dir,
		KeysOf: attr.KeywordKeys,
		Encode: attr.KeywordEncode,
		Layout: disk.LayoutLeveled,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	items, err := tier.Search([]string{"p"}, query.OpSingle, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 15 {
		t.Fatalf("reopened tier answers %d of 15 queued records", len(items))
	}
}
