package engine

import (
	"fmt"
	"testing"

	"kflushing/internal/attr"
	"kflushing/internal/core"
	"kflushing/internal/query"
	"kflushing/internal/types"
	"kflushing/internal/wal"
)

func newDurableEngine(t *testing.T, diskDir, walDir string) *Engine[string] {
	t.Helper()
	eng, err := New(Config[string]{
		K:             5,
		MemoryBudget:  1 << 20,
		FlushFraction: 0.2,
		KeysOf:        attr.KeywordKeys,
		KeyHash:       attr.HashString,
		KeyLen:        attr.KeywordLen,
		EncodeKey:     attr.KeywordEncode,
		DiskDir:       diskDir,
		WALDir:        walDir,
		WALOptions:    wal.Options{MaxFileBytes: 4 << 10},
		Policy:        core.New[string](),
		TrackOverK:    true,
		SyncFlush:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestWALRecoveryPreservesScoresAndOrder(t *testing.T) {
	diskDir, walDir := t.TempDir(), t.TempDir()
	eng := newDurableEngine(t, diskDir, walDir)
	for i := 1; i <= 30; i++ {
		ingest(t, eng, int64(i*10), "key")
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	re := newDurableEngine(t, diskDir, walDir)
	defer re.Close()
	res, err := re.Search(query.Request[string]{Keys: []string{"key"}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MemoryHit || len(res.Items) != 5 {
		t.Fatalf("hit=%v items=%d", res.MemoryHit, len(res.Items))
	}
	for i, it := range res.Items {
		want := types.Timestamp((30 - i) * 10)
		if it.MB.Timestamp != want {
			t.Fatalf("rank %d ts=%d, want %d", i, it.MB.Timestamp, want)
		}
	}
	// Memory gauges reflect recovered contents.
	if re.Mem().Used() == 0 || re.Store().Len() != 30 {
		t.Fatalf("recovered gauges: used=%d records=%d", re.Mem().Used(), re.Store().Len())
	}
}

func TestWALRecoveryTriggersFlushWhenOverBudget(t *testing.T) {
	diskDir, walDir := t.TempDir(), t.TempDir()
	eng := newDurableEngine(t, diskDir, walDir)
	// Fill right up to (but not over) the budget: flushing happens
	// during this loop; what's left in memory is under budget, but the
	// full WAL (no snapshot without Close) replays everything.
	for i := 1; i <= 9000; i++ {
		ingest(t, eng, int64(i), fmt.Sprintf("k%d", i%31))
	}
	// Crash: skip Close (no snapshot, no WAL truncation).
	_ = eng.Metrics().Flushes.Load()

	re := newDurableEngine(t, diskDir, walDir)
	defer re.Close()
	// Replay loaded all 4000 records and must have flushed back under
	// control.
	if used := re.Mem().Used(); used > 2*(1<<20) {
		t.Fatalf("recovered memory %d far above budget", used)
	}
	if re.Metrics().Flushes.Load() == 0 {
		t.Fatal("no flush after over-budget recovery")
	}
}

func TestWALDisabledHasNoFiles(t *testing.T) {
	eng := newKeywordEngine(t, 1<<30, core.New[string](), false)
	ingest(t, eng, 1, "a")
	// Nothing to assert beyond absence of panics: the engine was built
	// without a WAL directory, and Close must not attempt a snapshot.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}
