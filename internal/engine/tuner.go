package engine

import (
	"log/slog"
	"math"
	"time"

	"kflushing/internal/blackbox"
	"kflushing/internal/failpoint"
	"kflushing/internal/flushlog"
	"kflushing/internal/tuner"
)

// Adaptive memory tuning (DESIGN.md §7.9). The controller itself lives
// in internal/tuner and is pure arithmetic; this file is the engine's
// side of the loop: sampling the cost signals, gating decision
// application on the flush mutex so targets never change mid-cycle, and
// mirroring the applied targets into atomics the ingest and flush hot
// paths read lock-free.
//
// Application points:
//   - maybeFlush calls maybeTune before its watermark check, so in
//     synchronous-flush (deterministic) engines the tick cadence is
//     driven entirely by the engine clock and the ingest stream.
//   - runFlushLocked ticks after each completed cycle while still
//     holding the gate, so a retuning lands exactly between cycles.
//   - tunerLoop polls in background-flush engines so a query-only or
//     idle workload still ticks without waiting for the next ingest.
//
// The tuner freezes while the engine is degraded: a read-only engine
// must not grow memory targets or churn the cache while the disk tier
// is refusing writes.

// budgetAware is implemented by policies whose victim selection bakes
// in the flush budget (FIFO's temporal segment size); the tuner hands
// them the retuned byte target so future segments track B.
type budgetAware interface {
	SetSegmentBytes(int64)
}

// tunerPollPeriod is the wall cadence at which background-flush engines
// re-check the tick deadline. The check is one atomic load; the real
// cadence is Limits.Interval on the engine clock.
const tunerPollPeriod = 100 * time.Millisecond

// watermarkBytes returns the current flush trigger threshold: the
// static memory budget, or the tuner's target when adaptive memory is
// enabled.
func (e *Engine[K]) watermarkBytes() int64 {
	if e.tun == nil {
		return e.cfg.MemoryBudget
	}
	return e.tunedWatermark.Load()
}

// flushFraction returns the current flush budget B.
func (e *Engine[K]) flushFraction() float64 {
	if e.tun == nil {
		return e.cfg.FlushFraction
	}
	return math.Float64frombits(e.tunedFraction.Load())
}

// tunerSignals samples the cumulative cost counters the controller
// differences: a handful of atomic loads.
func (e *Engine[K]) tunerSignals() tuner.Signals {
	hits, misses := e.tier.CacheCounters()
	return tuner.Signals{
		Ingested:    e.reg.Ingested.Load(),
		Flushes:     e.reg.Flushes.Load(),
		FlushNanos:  e.reg.FlushLatency.Sum(),
		Misses:      e.reg.Misses.Load(),
		MissNanos:   e.reg.MissLatency.Sum(),
		CacheHits:   hits,
		CacheMisses: misses,
	}
}

// maybeTune runs one controller tick if the deadline has passed and the
// flush gate is free. Adjustments are never applied while a flush cycle
// holds the gate; a busy gate just defers the tick to the next call.
func (e *Engine[K]) maybeTune() {
	if e.tun == nil || !e.tun.Due(e.clk.Now()) {
		return
	}
	if !e.flushMu.TryLock() {
		return // a flush cycle holds the gate; never adjust mid-cycle
	}
	e.tuneTickLocked()
	e.flushMu.Unlock()
}

// tuneTickLocked evaluates and applies one tuner decision. Callers must
// hold flushMu, so the new targets take effect exactly between flush
// cycles.
func (e *Engine[K]) tuneTickLocked() {
	if e.tun == nil || e.closed.Load() || e.degraded.Load() {
		return // frozen while degraded: read-only engines do not retune
	}
	now := e.clk.Now()
	if !e.tun.Due(now) {
		return
	}
	if err := failpoint.Eval(failpoint.TunerApply); err != nil {
		return // injected apply failure: previous targets stay in force
	}
	dec, changed := e.tun.Tick(now, e.tunerSignals())
	if !dec.Ticked || !changed {
		return
	}
	start := time.Now()
	e.tunedFraction.Store(math.Float64bits(dec.FlushFraction))
	e.tunedWatermark.Store(dec.WatermarkBytes)
	if dec.CacheBytes != e.tunedCache.Load() {
		e.tier.ResizeCache(dec.CacheBytes)
		e.tunedCache.Store(dec.CacheBytes)
	}
	target := int64(dec.FlushFraction * float64(e.cfg.MemoryBudget))
	if ba, ok := e.pol.(budgetAware); ok {
		ba.SetSegmentBytes(target)
	}
	// The adjustment is auditable like any state transition: one
	// Begin/End pair in the flush journal (no flushing happens under
	// this trigger) and one flight-recorder event.
	e.journal.Begin(e.pol.Name(), flushlog.TriggerTuner, target, e.mem.Used(), start)
	e.journal.End(0, e.mem.Used(), time.Since(start), nil)
	e.bbox.Record(blackbox.SubTuner, blackbox.EvTunerAdjust,
		int64(dec.FlushFraction*10000), dec.WatermarkBytes, dec.CacheBytes)
	slog.Debug("engine: tuner adjustment",
		"policy", e.pol.Name(), "direction", dec.Direction,
		"pressure", dec.Pressure, "flush_fraction", dec.FlushFraction,
		"watermark", dec.WatermarkBytes, "cache", dec.CacheBytes)
}

// tunerLoop is the background tick pump for engines with background
// flushing: it re-checks the clock deadline on a wall cadence so idle
// and query-only workloads still tick. Deterministic engines
// (SyncFlush) have no loop — their ticks ride the ingest path.
func (e *Engine[K]) tunerLoop() {
	defer e.tunWG.Done()
	tick := time.NewTicker(tunerPollPeriod)
	defer tick.Stop()
	for {
		select {
		case <-e.tunStop:
			return
		case <-tick.C:
			e.maybeTune()
		}
	}
}

// TunerState reports the adaptive memory controller's snapshot; ok is
// false when AdaptiveMemory is off.
func (e *Engine[K]) TunerState() (tuner.State, bool) {
	if e.tun == nil {
		return tuner.State{}, false
	}
	return e.tun.State(), true
}
