package engine

import (
	"sync"
	"sync/atomic"

	"kflushing/internal/query"
)

// flightGroup coalesces concurrent identical disk searches: the paper's
// temporal query locality (Phase 3) makes repeated misses for the same
// keys the common miss pattern, so under concurrency N identical misses
// routinely overlap. The first caller executes the search; the rest
// block on its completion and share the result, turning N disk searches
// into one.
//
// This is the singleflight pattern, specialized to query items so the
// engine stays dependency-free.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	waiters atomic.Int32
	items   []query.Item
	err     error
}

// do executes fn under key, unless a flight for key is already in
// progress, in which case it waits for and shares that flight's result.
// shared reports whether the result came from another caller's flight.
// The shared items slice must be treated as read-only.
func (g *flightGroup) do(key string, fn func() ([]query.Item, error)) (items []query.Item, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.waiters.Add(1)
		g.mu.Unlock()
		<-c.done
		return c.items, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	g.m[key] = c
	g.mu.Unlock()

	c.items, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.items, false, c.err
}

// pending returns the number of in-progress flights, for tests.
func (g *flightGroup) pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// waiters returns how many callers are blocked on key's in-progress
// flight, for tests.
func (g *flightGroup) waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return int(c.waiters.Load())
	}
	return 0
}
