package engine

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"kflushing/internal/core"
	"kflushing/internal/query"
)

// TestFlightGroupCoalesces drives the singleflight deterministically:
// the second caller for the same key must wait for and share the first
// caller's result instead of executing its own.
func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	want := []query.Item{{Score: 42}}

	var wg sync.WaitGroup
	wg.Add(1)
	var firstShared bool
	go func() {
		defer wg.Done()
		items, shared, err := g.do("key", func() ([]query.Item, error) {
			close(started)
			<-release
			return want, nil
		})
		firstShared = shared
		if err != nil || len(items) != 1 || items[0].Score != 42 {
			t.Errorf("leader: items=%v err=%v", items, err)
		}
	}()
	<-started // the leader's fn is executing and registered

	wg.Add(1)
	var followerShared bool
	go func() {
		defer wg.Done()
		items, shared, err := g.do("key", func() ([]query.Item, error) {
			t.Error("follower executed its own search")
			return nil, nil
		})
		followerShared = shared
		if err != nil || len(items) != 1 || items[0].Score != 42 {
			t.Errorf("follower: items=%v err=%v", items, err)
		}
	}()
	// Wait until the follower has joined the in-progress flight, then
	// let the leader finish. The leader's own registration keeps
	// pending() at 1, so watch the waiter count instead.
	for i := 0; g.waiters("key") == 0 && i < 5000; i++ {
		time.Sleep(time.Millisecond)
	}
	if g.waiters("key") == 0 {
		t.Fatal("follower never joined the flight")
	}
	close(release)
	wg.Wait()

	if firstShared {
		t.Error("leader reported shared result")
	}
	if !followerShared {
		t.Error("follower did not share the leader's flight")
	}
	if g.pending() != 0 {
		t.Errorf("flights leaked: %d pending", g.pending())
	}

	// Different keys never coalesce.
	_, shared, _ := g.do("other", func() ([]query.Item, error) { return nil, nil })
	if shared {
		t.Error("fresh key reported shared")
	}
}

// TestDiskSearchAccounting checks every disk-consulting query increments
// exactly one of the executed/coalesced counters, and that concurrent
// identical misses return consistent answers.
func TestDiskSearchAccounting(t *testing.T) {
	eng := newKeywordEngine(t, 8<<10, core.New[string](), false)
	// Overfill memory so the one-off filler keys are flushed; the hot
	// "gopher" postings stay resident (kFlushing keeps top-k), so the
	// guaranteed-miss queries below target a filler key instead.
	for i := 0; i < 300; i++ {
		ingest(t, eng, int64(i+1), "gopher", fmt.Sprintf("filler%d", i))
	}
	if _, err := eng.FlushNow(); err != nil {
		t.Fatal(err)
	}

	// filler7 appears in exactly one record; asking for K=5 can never be
	// satisfied from memory, so every query consults disk.
	const goroutines, perG = 8, 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				res, err := eng.Search(query.Request[string]{Keys: []string{"filler7"}, K: 5})
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Items) == 0 {
					t.Error("filler7 query returned no items")
					return
				}
			}
		}()
	}
	wg.Wait()

	snap := eng.Metrics().Snap()
	misses := snap.Misses
	if misses == 0 {
		t.Fatal("no memory misses; the disk fallback was never exercised")
	}
	if got := snap.DiskSearches + snap.DiskSearchesCoalesced; got != misses {
		t.Fatalf("DiskSearches(%d) + Coalesced(%d) = %d, want %d (one per miss)",
			snap.DiskSearches, snap.DiskSearchesCoalesced, got, misses)
	}
	if snap.DiskSearches == 0 {
		t.Fatal("no disk search was ever executed")
	}
}
