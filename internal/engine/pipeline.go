package engine

import (
	"context"
	"log/slog"
	"runtime/pprof"
	rtrace "runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"kflushing/internal/blackbox"
	"kflushing/internal/disk"
	"kflushing/internal/flushlog"
	"kflushing/internal/metrics"
	"kflushing/internal/store"
)

// pipelineLabels attributes the flush pipeline worker's CPU (segment
// encode, fsync, manifest commits) to its subsystem in profiles.
var pipelineLabels = pprof.Labels("kflushing", "flush-pipeline-worker")

// flushPipeline decouples a flush cycle's prepare stage (victim
// selection and eviction, which must run under the flush gate) from its
// build and install stages (segment encode, staged write, rename,
// manifest commit — all pure I/O): a budget-triggered cycle enqueues
// its evicted batch here and returns, releasing the gate, so ingestion
// and the NEXT cycle's prepare overlap the previous cycle's segment
// build instead of serializing behind it.
//
// Safety model: an enqueued batch is out of memory but not yet on disk.
// It is still fully covered by the write-ahead log (the log is trimmed
// only by the clean-shutdown snapshot), so a crash with batches queued
// loses nothing — recovery replays them back into memory. A build or
// install FAILURE rolls the eviction back via restoreEvicted and puts
// the engine in degraded read-only mode, exactly like a synchronous
// flush failure. Close drains the queue before the shutdown snapshot is
// cut, so queued batches always reach the tier or memory, never the
// void.
//
// The queue is bounded; when it is full the flush sink falls back to
// the synchronous write path (counted in PipelineFallbacks), so eviction
// can never outrun the disk by more than depth batches.
type flushPipeline[K comparable] struct {
	e      *Engine[K]
	ch     chan pipeBatch
	wg     sync.WaitGroup
	closed atomic.Bool
}

// pipeBatch is one enqueued flush: the records to write plus the dead
// wrappers recycled once the write durably installs.
type pipeBatch struct {
	recs []disk.FlushRecord
	dead []*store.Record
}

// defaultPipelineDepth bounds the queue when Config.FlushPipelineDepth
// is zero: deep enough to absorb a flush burst, shallow enough that at
// most a few batches sit outside both memory and disk.
const defaultPipelineDepth = 4

func newFlushPipeline[K comparable](e *Engine[K], depth int) *flushPipeline[K] {
	p := &flushPipeline[K]{e: e, ch: make(chan pipeBatch, depth)}
	p.wg.Add(1)
	go p.worker()
	return p
}

// tryEnqueue hands an evicted batch to the background builder without
// blocking. False means the caller must write synchronously (queue
// full, or the pipeline shut down). The batch slice is copied — the
// policy may reuse its buffer the moment Flush returns; ownership of
// dead transfers to the pipeline.
func (p *flushPipeline[K]) tryEnqueue(recs []disk.FlushRecord, dead []*store.Record) bool {
	if p.closed.Load() {
		return false
	}
	batch := pipeBatch{recs: append([]disk.FlushRecord(nil), recs...), dead: dead}
	select {
	case p.ch <- batch:
		p.e.reg.PipelineEnqueued.Add(1)
		depth := p.e.reg.PipelineDepth.Add(1)
		p.e.bbox.Record(blackbox.SubFlush, blackbox.EvFlushEnqueue,
			int64(len(recs)), depth, 0)
		return true
	default:
		p.e.reg.PipelineFallbacks.Add(1)
		p.e.bbox.Record(blackbox.SubFlush, blackbox.EvFlushFallback,
			int64(len(recs)), 0, 0)
		return false
	}
}

// worker is the single build/install goroutine: batches complete in
// enqueue order.
func (p *flushPipeline[K]) worker() {
	defer p.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			// Last chance to preserve the evidence: the rings hold the
			// events leading up to whatever went wrong.
			p.e.dumpBlackbox("panic")
			slog.Error("engine: flush pipeline worker panicked", "panic", r)
			panic(r)
		}
	}()
	pprof.Do(context.Background(), pipelineLabels, func(ctx context.Context) {
		for batch := range p.ch {
			rtrace.WithRegion(ctx, "pipeline-complete", func() {
				p.e.completeAsync(batch.recs, batch.dead)
			})
			p.e.reg.PipelineDepth.Add(-1)
		}
	})
}

// close stops intake and drains every queued batch through the worker.
// The caller must NOT hold flushMu: completions take it for rollback
// and journal writes.
func (p *flushPipeline[K]) close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.ch)
	}
	p.wg.Wait()
}

// depth reports the number of batches queued or building.
func (p *flushPipeline[K]) depth() int {
	if p == nil {
		return 0
	}
	return int(p.e.reg.PipelineDepth.Load())
}

// completeAsync runs the build, install, and release stages for one
// pipelined batch. Success publishes the segment and journals a
// "pipeline" event; failure rolls the eviction back into memory and
// enters degraded mode — the same contract as a synchronous flush
// failure, just later.
func (e *Engine[K]) completeAsync(recs []disk.FlushRecord, dead []*store.Record) {
	start := time.Now()
	fs, wrote, err := e.fsink.writeStaged(recs)
	if wrote {
		// The segment is durable; the dead wrappers enter the recycler's
		// quarantine. On failure they drop to the garbage collector —
		// restoreEvicted below re-creates fresh wrappers, never these.
		e.fsink.release(dead)
	}
	if fs.BuildNanos > 0 {
		e.reg.ObserveStage(metrics.StageBuild, time.Duration(fs.BuildNanos))
		e.reg.ObserveStage(metrics.StageInstall, time.Duration(fs.InstallNanos))
	}

	releaseStart := time.Now()
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	e.journal.Begin(e.pol.Name(), flushlog.TriggerPipeline, 0, e.mem.Used(), start)
	e.journal.Stage("build", fs.BuildNanos)
	e.journal.Stage("install", fs.InstallNanos)
	if err != nil && !wrote {
		// The segment never became durable: the eviction must come back.
		e.restoreEvicted(recs)
	}
	release := time.Since(releaseStart)
	e.reg.ObserveStage(metrics.StageRelease, release)
	e.journal.Stage("release", release.Nanoseconds())
	e.bbox.Record(blackbox.SubFlush, blackbox.EvFlushRelease,
		int64(len(recs)), int64(fs.Bytes), release.Nanoseconds())
	e.journal.End(int64(fs.Bytes), e.mem.Used(), time.Since(start), err)
	if err != nil {
		_ = e.fsink.tookWrite() // reset the evidence bit; this batch failed
		e.enterDegraded(err)
		slog.Error("engine: pipelined flush install failed",
			"records", len(recs), "restored", !wrote, "error", err)
		return
	}
	if e.fsink.tookWrite() {
		e.exitDegraded("pipeline install")
	}
}
