//go:build failpoint

package engine

import (
	"fmt"
	"testing"

	"kflushing/internal/failpoint"
)

// writePressure drives enough hot-keyword ingest through the engine
// that flush cycles run and every due tick sees one-sided write cost.
func writePressure(t *testing.T, eng *Engine[string], n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ingestKeyed(t, eng, "flash", fmt.Sprintf("fp%d", i))
	}
}

// TestTunerApplyFailpointSkipsAdjustment: an injected failure at
// engine/tuner/apply must skip the whole evaluation — no adjustment is
// applied, the controller's internal state never diverges from the
// engine's applied targets, and the static knobs stay in force.
func TestTunerApplyFailpointSkipsAdjustment(t *testing.T) {
	eng := newTunedEngine(t, 24<<10, 256<<10, true)
	mustEnable(t, failpoint.TunerApply, "error")

	writePressure(t, eng, 1500)
	st, ok := eng.TunerState()
	if !ok {
		t.Fatal("tuner off")
	}
	if st.Ticks != 0 || st.Adjusts != 0 {
		t.Fatalf("failpointed apply still evaluated: ticks=%d adjusts=%d", st.Ticks, st.Adjusts)
	}
	if eng.flushFraction() != 0.1 || eng.watermarkBytes() != 24<<10 {
		t.Fatalf("targets moved despite injected apply failure: B=%v wm=%d",
			eng.flushFraction(), eng.watermarkBytes())
	}

	// Disarm: the next due tick picks up where the static state left
	// off and the controller starts evaluating again.
	failpoint.Disable(failpoint.TunerApply)
	writePressure(t, eng, 1500)
	st, _ = eng.TunerState()
	if st.Ticks == 0 {
		t.Fatal("controller did not recover after the failpoint was disarmed")
	}
	if st.Adjusts == 0 {
		t.Fatal("write pressure applied no adjustment after disarm")
	}
}

// TestTunerApplyFailpointBoundedFailures: error(N) lets the first N
// apply attempts fail and the controller come back by itself — the
// injected-failure path must not wedge the tick cadence.
func TestTunerApplyFailpointBoundedFailures(t *testing.T) {
	eng := newTunedEngine(t, 24<<10, 256<<10, true)
	mustEnable(t, failpoint.TunerApply, "error(5)")
	defer failpoint.Disable(failpoint.TunerApply)

	writePressure(t, eng, 3000)
	st, _ := eng.TunerState()
	if st.Ticks == 0 {
		t.Fatal("controller never recovered from bounded apply failures")
	}
	if st.Adjusts == 0 {
		t.Fatal("no adjustment applied after the failure budget drained")
	}
}
