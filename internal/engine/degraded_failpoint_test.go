//go:build failpoint

package engine

import (
	"errors"
	"testing"
	"time"

	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/core"
	"kflushing/internal/disk"
	"kflushing/internal/failpoint"
	"kflushing/internal/flushlog"
	"kflushing/internal/query"
	"kflushing/internal/types"
)

// newFaultEngine builds a small keyword engine with the given retry
// policy, disarming every failpoint before and after the test.
func newFaultEngine(t *testing.T, retry disk.RetryPolicy) *Engine[string] {
	t.Helper()
	failpoint.DisableAll()
	t.Cleanup(failpoint.DisableAll)
	eng, err := New(Config[string]{
		K:             3,
		MemoryBudget:  1 << 30,
		FlushFraction: 0.5,
		KeysOf:        attr.KeywordKeys,
		KeyHash:       attr.HashString,
		KeyLen:        attr.KeywordLen,
		EncodeKey:     attr.KeywordEncode,
		Clock:         clock.NewLogical(1, 1),
		DiskDir:       t.TempDir(),
		DiskRetry:     retry,
		Policy:        core.New[string](),
		TrackOverK:    true,
		SyncFlush:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func mustEnable(t *testing.T, site, spec string) {
	t.Helper()
	if err := failpoint.Enable(site, spec); err != nil {
		t.Fatalf("enable %s=%s: %v", site, spec, err)
	}
}

func searchIDs(t *testing.T, e *Engine[string], key string, k int) map[types.ID]bool {
	t.Helper()
	res, err := e.Search(query.Request[string]{Keys: []string{key}, K: k})
	if err != nil {
		t.Fatalf("search %q: %v", key, err)
	}
	ids := make(map[types.ID]bool, len(res.Items))
	for _, it := range res.Items {
		ids[it.MB.ID] = true
	}
	return ids
}

// TestTransientFlushErrorMaskedByRetry arms a segment-create fault that
// fails twice and then clears; with DiskRetry allowing three retries the
// flush must succeed with no visible error and no degraded transition.
func TestTransientFlushErrorMaskedByRetry(t *testing.T) {
	eng := newFaultEngine(t, disk.RetryPolicy{Attempts: 3, Backoff: time.Millisecond})
	for i := 0; i < 50; i++ {
		ingest(t, eng, int64(i+1), "a", "all")
	}
	mustEnable(t, failpoint.DiskSegmentCreate, "error(2)")
	if _, err := eng.FlushNow(); err != nil {
		t.Fatalf("flush with transient fault and retry: %v", err)
	}
	if hits := failpoint.Hits(failpoint.DiskSegmentCreate); hits < 3 {
		t.Fatalf("segment create evaluated %d times, want >= 3 (2 failures + success)", hits)
	}
	if degraded, _ := eng.Degraded(); degraded {
		t.Fatal("engine degraded after a retried transient fault")
	}
	if eng.Stats().Disk.Segments == 0 {
		t.Fatal("no segment written: flush did not reach the tier")
	}
}

// TestPersistentFlushFailureDegrades drives the full degraded-mode
// lifecycle: a persistent segment-write fault fails the flush even with
// retries, the eviction is rolled back (every record stays searchable),
// ingestion is rejected with ErrDegraded, and once the fault clears a
// readiness probe restores write service.
func TestPersistentFlushFailureDegrades(t *testing.T) {
	eng := newFaultEngine(t, disk.RetryPolicy{Attempts: 1})
	var want []types.ID
	for i := 0; i < 50; i++ {
		want = append(want, ingest(t, eng, int64(i+1), "a", "all"))
	}
	mustEnable(t, failpoint.DiskSegmentWrite, "error")

	if _, err := eng.FlushNow(); err == nil {
		t.Fatal("flush succeeded despite persistent segment-write fault")
	}
	if degraded, reason := eng.Degraded(); !degraded || reason == "" {
		t.Fatalf("degraded=%v reason=%q after persistent flush failure", degraded, reason)
	}

	// Atomic flush semantics: the failed eviction was rolled back, so
	// every record is still answered from memory.
	got := searchIDs(t, eng, "all", 100)
	for _, id := range want {
		if !got[id] {
			t.Fatalf("record %d lost after failed flush (rollback broken)", id)
		}
	}

	// Ingestion is read-only-rejected with the typed error…
	if _, err := eng.Ingest(&types.Microblog{Keywords: []string{"b"}, Text: "t"}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded ingest error = %v, want ErrDegraded", err)
	}
	// …and surfaced by the readiness probe while the fault persists.
	if err := eng.CheckReady(); !errors.Is(err, ErrDegraded) {
		t.Fatalf("CheckReady = %v, want ErrDegraded", err)
	}
	st := eng.Stats()
	if !st.Degraded || st.DegradedReason == "" {
		t.Fatalf("stats degraded=%v reason=%q", st.Degraded, st.DegradedReason)
	}
	// The transition is journaled.
	evs := eng.Journal().Last(0)
	found := false
	for _, ev := range evs {
		if ev.Trigger == flushlog.TriggerDegraded {
			found = true
		}
	}
	if !found {
		t.Fatal("no degraded event in the flush journal")
	}

	// Fault clears: the next readiness probe provides the evidence and
	// write service resumes.
	failpoint.Disable(failpoint.DiskSegmentWrite)
	if err := eng.CheckReady(); err != nil {
		t.Fatalf("CheckReady after fault cleared: %v", err)
	}
	if degraded, _ := eng.Degraded(); degraded {
		t.Fatal("still degraded after successful readiness probe")
	}
	if _, err := eng.Ingest(&types.Microblog{Keywords: []string{"b"}, Text: "t"}); err != nil {
		t.Fatalf("ingest after recovery: %v", err)
	}
	if _, err := eng.FlushNow(); err != nil {
		t.Fatalf("flush after recovery: %v", err)
	}
	clearEvent := false
	for _, ev := range eng.Journal().Last(0) {
		if ev.Trigger == flushlog.TriggerDegradedClear {
			clearEvent = true
		}
	}
	if !clearEvent {
		t.Fatal("no degraded-clear event in the flush journal")
	}
}

// TestEvictionRollbackSurvivesRestart checks the stronger durability
// half of atomic flush semantics: records rolled back after a failed
// flush are still covered by the WAL, so a close/reopen after the
// failure loses nothing.
func TestEvictionRollbackSurvivesRestart(t *testing.T) {
	failpoint.DisableAll()
	t.Cleanup(failpoint.DisableAll)
	dir := t.TempDir()
	open := func() *Engine[string] {
		eng, err := New(Config[string]{
			K:             3,
			MemoryBudget:  1 << 30,
			FlushFraction: 0.5,
			KeysOf:        attr.KeywordKeys,
			KeyHash:       attr.HashString,
			KeyLen:        attr.KeywordLen,
			EncodeKey:     attr.KeywordEncode,
			Clock:         clock.NewLogical(1, 1),
			DiskDir:       dir,
			WALDir:        dir + "/wal",
			Policy:        core.New[string](),
			TrackOverK:    true,
			SyncFlush:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	eng := open()
	var want []types.ID
	for i := 0; i < 30; i++ {
		want = append(want, ingest(t, eng, int64(i+1), "all"))
	}
	mustEnable(t, failpoint.FlushAfterEvict, "error")
	if _, err := eng.FlushNow(); err == nil {
		t.Fatal("flush succeeded despite post-evict fault")
	}
	failpoint.Disable(failpoint.FlushAfterEvict)
	if err := eng.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	eng = open()
	defer eng.Close()
	got := searchIDs(t, eng, "all", 100)
	for _, id := range want {
		if !got[id] {
			t.Fatalf("record %d lost across failed-flush restart", id)
		}
	}
}
