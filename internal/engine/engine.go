// Package engine assembles the full microblogs data management pipeline
// of Figure 2: the stream is digested into the raw data store and the
// in-memory inverted index; a configurable flushing policy evicts to the
// disk tier when the memory budget fills; and incoming top-k queries are
// answered from memory when possible, falling back to disk on a miss.
//
// The engine is generic over the attribute key type, so the same code
// serves keyword search (K = string), spatial search (K = spatial.Cell),
// and user-timeline search (K = uint64) — the paper's Section IV-A
// extensibility in one implementation.
package engine

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	rtrace "runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"kflushing/internal/alloc"
	"kflushing/internal/blackbox"
	"kflushing/internal/clock"
	"kflushing/internal/disk"
	"kflushing/internal/failpoint"
	"kflushing/internal/flushlog"
	"kflushing/internal/index"
	"kflushing/internal/memsize"
	"kflushing/internal/metrics"
	"kflushing/internal/policy"
	"kflushing/internal/query"
	"kflushing/internal/ranking"
	"kflushing/internal/store"
	"kflushing/internal/trace"
	"kflushing/internal/tuner"
	"kflushing/internal/types"
	"kflushing/internal/wal"
)

// ErrNoKeys reports an ingested microblog carrying no keys for this
// engine's attribute (e.g. a tweet without hashtags on a keyword
// engine); such records are not digestible.
var ErrNoKeys = errors.New("engine: microblog has no keys for this attribute")

// ErrClosed reports use after Close.
var ErrClosed = errors.New("engine: closed")

// Config assembles an engine. KeysOf, KeyHash, KeyLen, EncodeKey,
// DiskDir and Policy are required.
type Config[K comparable] struct {
	// K is the default top-k result limit (paper default: 20).
	K int
	// MemoryBudget is the modeled main-memory budget in bytes.
	MemoryBudget int64
	// FlushFraction is the budget ratio B flushed per invocation
	// (paper default: 0.10).
	FlushFraction float64
	// KeysOf extracts the attribute keys of a microblog.
	KeysOf func(*types.Microblog) []K
	// KeyHash maps a key to a hash for index sharding.
	KeyHash func(K) uint64
	// KeyLen returns a key's encoded size for the memory model.
	KeyLen func(K) int
	// EncodeKey renders a key for the disk directory.
	EncodeKey func(K) string
	// Ranker scores records at arrival; nil selects temporal ranking.
	Ranker ranking.Ranker
	// Clock is the time source; nil selects an auto-advancing logical
	// clock.
	Clock clock.Clock
	// DiskDir is the disk tier directory.
	DiskDir string
	// DiskLayout selects the disk tier organization: "leveled" (the
	// default, also selected by "") or "flat" (the original single
	// segment list).
	DiskLayout string
	// DiskLevelFanout bounds a leveled tier's per-level segment count;
	// 0 selects the disk package default.
	DiskLevelFanout int
	// DiskMaxSegments bounds the number of disk segments via automatic
	// compaction after flushes; 0 selects a default, negative disables.
	// Under the leveled layout only the sign matters (fanout governs).
	DiskMaxSegments int
	// FlushPipelineDepth bounds the flush pipeline queue: evicted
	// batches whose segment build runs on a background worker instead
	// of under the flush gate. 0 selects a default, negative disables
	// the pipeline (every flush writes synchronously). SyncFlush also
	// disables it.
	FlushPipelineDepth int
	// DiskCacheBytes bounds the disk tier's decoded-record read cache;
	// 0 selects the tier default, negative disables caching.
	DiskCacheBytes int64
	// DiskSearchParallelism bounds the worker pool a memory-miss search
	// fans candidate segments across; 0 selects the tier default, 1
	// forces sequential search.
	DiskSearchParallelism int
	// DiskRetry bounds transient-disk-error retries: flush-cycle tier
	// writes and memory-miss record reads are retried with backoff
	// before failing (and, for writes, before the engine enters
	// degraded read-only mode). The zero value disables retrying.
	DiskRetry disk.RetryPolicy
	// WALDir enables write-ahead logging of ingested records into the
	// given directory: memory contents survive restarts (replayed on
	// New) and crashes (torn tails are tolerated). Empty disables
	// durability for memory contents, the paper's model.
	WALDir string
	// WALOptions tunes the write-ahead log when WALDir is set.
	WALOptions wal.Options
	// Policy is the flushing policy instance.
	Policy policy.Policy[K]
	// TrackTopK enables per-record top-k membership counters (required
	// by kFlushing-MK).
	TrackTopK bool
	// TrackOverK enables the index's over-k list L (required by the
	// kFlushing variants; FIFO and LRU leave it off).
	TrackOverK bool
	// SyncFlush runs flushes inline on the ingesting goroutine instead
	// of a background flushing thread. Deterministic; used by tests
	// and experiments.
	SyncFlush bool
	// Shards overrides the index shard count; 0 selects the default.
	Shards int
	// AllocPolicy selects how hot-path structures are allocated: the
	// zero value (PolicyPooled) recycles posting arrays, record
	// wrappers and ingest scratch through slab pools; PolicyHeap
	// allocates everything from the Go heap.
	AllocPolicy alloc.Policy
	// BlackboxEvents sizes the flight recorder's per-subsystem event
	// rings: 0 selects blackbox.DefaultRingSize, negative disables the
	// recorder entirely (benchmark baseline — production keeps it on).
	BlackboxEvents int
	// SlowQueryNanos enables the slow-query log: a Search whose wall
	// time reaches this threshold has its full execution trace captured
	// into a small ring (served at /debug/slowlog). 0 disables. Note
	// that capture attaches a trace to every query while enabled, so
	// misses bypass disk-search coalescing like any traced query.
	SlowQueryNanos int64
	// AdaptiveMemory enables the feedback memory tuner: a deterministic
	// controller that retunes the flush budget B, the flush trigger
	// watermark, and the disk record cache size from observed flush and
	// miss costs, applied only between flush cycles. Off by default;
	// with TunerLimits pinned to the static values the engine is
	// bit-equivalent to a static configuration.
	AdaptiveMemory bool
	// TunerLimits bounds the tuner when AdaptiveMemory is set; zero
	// values select the tuner package defaults.
	TunerLimits tuner.Limits
}

// Engine is one attribute's complete data management system. All
// methods are safe for concurrent use.
type Engine[K comparable] struct {
	cfg   Config[K]
	ids   atomic.Uint64
	mem   memsize.Tracker
	store *store.Store
	idx   *index.Index[K]
	tier  *disk.Tier[K]
	pol   policy.Policy[K]
	reg   metrics.Registry
	clk   clock.Clock

	// journal is the flush audit ring: one structured event per flush
	// cycle, served at /debug/flushlog.
	journal *flushlog.Journal

	// bbox is the always-on flight recorder (nil when disabled by a
	// negative BlackboxEvents): per-subsystem event rings stamped with a
	// global sequence, dumped to DiskDir on degraded entry and panic.
	bbox *blackbox.Recorder
	// slowlog retains queries that crossed SlowQueryNanos with their
	// full traces; nil when the threshold is unset.
	slowlog *blackbox.SlowLog

	wal *wal.Log

	// flights coalesces concurrent identical disk-fallback searches.
	flights flightGroup

	lastFlushUsed atomic.Int64
	// flushMu serializes flush cycles: background flushes take it with
	// TryLock (at most one runs; ingestion never blocks), FlushNow with
	// Lock (blocking deterministically until the in-flight cycle ends),
	// and Close holds it across shutdown to drain background flushing.
	flushMu   sync.Mutex
	lastError atomic.Value // error
	closed    atomic.Bool

	// fsink wraps the tier as the policies' flush sink: bounded retry
	// plus failed-batch capture for eviction rollback.
	fsink *flushSink[K]
	// pipe is the staged flush pipeline (nil when disabled): evicted
	// batches build their segments on a background worker so ingestion
	// overlaps segment I/O.
	pipe *flushPipeline[K]
	// degraded is the read-only mode entered when tier writes fail
	// persistently; degradedReason holds the entering error's message.
	degraded       atomic.Bool
	degradedReason atomic.Value // string

	// recycler quarantines dead record wrappers (durably flushed,
	// unreferenced, off the store) until no in-flight search can hold
	// their pointer, then feeds them back to ingestion. Nil under
	// AllocPolicy=heap.
	recycler *alloc.Recycler[*store.Record]
	// scratch pools per-batch ingest scratch slices across IngestBatch
	// calls. Nil under AllocPolicy=heap.
	scratch *sync.Pool

	// tun is the adaptive memory controller (nil when AdaptiveMemory is
	// off). Applied targets are mirrored into the atomics below so the
	// ingest and flush hot paths read them lock-free; they only change
	// under flushMu (see tuner.go).
	tun            *tuner.Tuner
	tunedWatermark atomic.Int64
	tunedFraction  atomic.Uint64 // math.Float64bits of the tuned B
	tunedCache     atomic.Int64
	tunStop        chan struct{}
	tunWG          sync.WaitGroup
}

// ingestScratch is the reusable per-batch working set of IngestBatch:
// none of these slices outlive the call (policies copy what they keep),
// so one arena serves batch after batch.
type ingestScratch[K comparable] struct {
	recs    []*store.Record
	recKeys [][]K
	frames  []disk.FlushRecord
}

// New builds and wires an engine from cfg.
func New[K comparable](cfg Config[K]) (*Engine[K], error) {
	if cfg.KeysOf == nil || cfg.KeyHash == nil || cfg.KeyLen == nil || cfg.EncodeKey == nil {
		return nil, fmt.Errorf("engine: KeysOf, KeyHash, KeyLen and EncodeKey are required")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("engine: Policy is required")
	}
	if cfg.K <= 0 {
		cfg.K = 20
	}
	if cfg.MemoryBudget <= 0 {
		cfg.MemoryBudget = 64 << 20
	}
	if cfg.FlushFraction <= 0 || cfg.FlushFraction > 1 {
		cfg.FlushFraction = 0.10
	}
	if cfg.Ranker == nil {
		cfg.Ranker = ranking.Temporal{}
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewLogical(1, 1)
	}
	e := &Engine[K]{cfg: cfg, store: store.New(), clk: cfg.Clock,
		journal: flushlog.New(flushlog.DefaultSize)}
	if cfg.BlackboxEvents >= 0 {
		e.bbox = blackbox.New(cfg.BlackboxEvents)
	}
	if cfg.SlowQueryNanos > 0 {
		e.slowlog = blackbox.NewSlowLog(0)
	}
	e.recycler = alloc.NewRecycler[*store.Record](cfg.AllocPolicy)
	if cfg.AllocPolicy == alloc.PolicyPooled {
		e.scratch = &sync.Pool{New: func() any { return &ingestScratch[K]{} }}
	}
	e.idx = index.New(index.Config[K]{
		Hash:       cfg.KeyHash,
		KeyLen:     cfg.KeyLen,
		K:          cfg.K,
		TrackTopK:  cfg.TrackTopK,
		TrackOverK: cfg.TrackOverK,
		Tracker:    &e.mem,
		Shards:     cfg.Shards,
		Pool:       alloc.NewSlicePool[*store.Record](cfg.AllocPolicy),
	})
	maxSegs := cfg.DiskMaxSegments
	if maxSegs == 0 {
		maxSegs = 48
	}
	layoutName := cfg.DiskLayout
	if layoutName == "" {
		layoutName = "leveled"
	}
	layout, err := disk.ParseLayout(layoutName)
	if err != nil {
		return nil, err
	}
	tier, err := disk.Open(disk.Config[K]{
		Dir:    cfg.DiskDir,
		KeysOf: cfg.KeysOf,
		Encode: cfg.EncodeKey,
		Layout: layout,
		// Deterministic modes (SyncFlush) compact inline on the flushing
		// goroutine; otherwise a leveled tier compacts in the background.
		BackgroundCompaction: layout == disk.LayoutLeveled && !cfg.SyncFlush,
		LevelFanout:          cfg.DiskLevelFanout,
		MaxSegments:          maxSegs,
		CacheBytes:           cfg.DiskCacheBytes,
		SearchParallelism:    cfg.DiskSearchParallelism,
		Retry:                cfg.DiskRetry,
		Recorder:             e.bbox,
	})
	if err != nil {
		return nil, err
	}
	e.tier = tier
	e.fsink = &flushSink[K]{tier: tier, retry: cfg.DiskRetry, releaseDead: e.recycler.Free}
	if !cfg.SyncFlush && cfg.FlushPipelineDepth >= 0 {
		depth := cfg.FlushPipelineDepth
		if depth == 0 {
			depth = defaultPipelineDepth
		}
		e.pipe = newFlushPipeline(e, depth)
		e.fsink.pipe = e.pipe
	}
	e.pol = cfg.Policy
	e.pol.Attach(&policy.Resources[K]{
		Index:   e.idx,
		Store:   e.store,
		Mem:     &e.mem,
		Sink:    e.fsink,
		KeysOf:  cfg.KeysOf,
		Clock:   cfg.Clock,
		Metrics: &e.reg,
		Journal: e.journal,
	})
	if cfg.WALDir != "" {
		wopt := cfg.WALOptions
		if cfg.AllocPolicy == alloc.PolicyPooled {
			wopt.PooledBuffers = true
		}
		wopt.Recorder = e.bbox
		w, err := wal.Open(cfg.WALDir, wopt)
		if err != nil {
			// Construction failed; the open error is the one to
			// surface, not the cleanup's.
			_ = tier.Close()
			return nil, err
		}
		e.wal = w
		if err := e.recoverFromWAL(); err != nil {
			_ = w.Close()
			_ = tier.Close()
			return nil, err
		}
	}
	if e.bbox != nil {
		// Join the process-level dump registry so a panic handler (or
		// kflushctl-driven DumpAll) can snapshot this engine's rings.
		// DiskDir is unique per engine, so it doubles as the key.
		blackbox.RegisterDumper(cfg.DiskDir, func(reason string) (string, error) {
			return e.bbox.Dump(cfg.DiskDir, reason)
		})
	}
	if cfg.AdaptiveMemory {
		// Anchor the controller at the effective static values (the
		// disk package applies the cache default itself, so mirror it).
		cacheBytes := cfg.DiskCacheBytes
		if cacheBytes == 0 {
			cacheBytes = disk.DefaultCacheBytes
		}
		if cacheBytes < 0 {
			cacheBytes = 0
		}
		e.tun = tuner.New(tuner.Config{
			MemoryBudget:  cfg.MemoryBudget,
			FlushFraction: cfg.FlushFraction,
			CacheBytes:    cacheBytes,
			Limits:        cfg.TunerLimits,
		})
		e.tunedWatermark.Store(cfg.MemoryBudget)
		e.tunedFraction.Store(math.Float64bits(cfg.FlushFraction))
		e.tunedCache.Store(cacheBytes)
		if !cfg.SyncFlush {
			e.tunStop = make(chan struct{})
			e.tunWG.Add(1)
			go e.tunerLoop()
		}
	}
	return e, nil
}

// recoverFromWAL rebuilds memory contents from the snapshot and log,
// deduplicating records that appear in both. Replayed records keep
// their original IDs, timestamps and scores; the ID counter resumes
// past the highest seen. A single flush runs afterwards if the replay
// overfilled the budget.
func (e *Engine[K]) recoverFromWAL() error {
	var maxID uint64
	var recs []*store.Record
	var recKeys [][]K
	err := e.wal.Replay(func(fr disk.FlushRecord) error {
		if err := failpoint.Eval(failpoint.RecoverReplayRecord); err != nil {
			return err
		}
		mb := fr.MB
		if e.store.Get(mb.ID) != nil {
			return nil // snapshot/log overlap
		}
		keys := e.cfg.KeysOf(mb)
		if len(keys) == 0 {
			return nil
		}
		rec := e.newRecord(mb, fr.Score)
		e.store.Put(rec)
		e.mem.AddData(rec.Bytes)
		for _, key := range keys {
			e.idx.Insert(key, rec)
		}
		recs = append(recs, rec)
		recKeys = append(recKeys, keys)
		if uint64(mb.ID) > maxID {
			maxID = uint64(mb.ID)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := failpoint.Eval(failpoint.RecoverAfterReplay); err != nil {
		return err
	}
	// Replay preserves arrival order, so the whole recovery is one
	// ingestion batch as far as the policy is concerned.
	e.pol.OnIngest(recs, recKeys)
	if maxID > e.ids.Load() {
		e.ids.Store(maxID)
	}
	slog.Info("engine: wal recovery complete",
		"records", len(recs), "max_id", maxID, "mem_used", e.mem.Used())
	if e.mem.Used() >= e.cfg.MemoryBudget {
		e.maybeFlush(flushlog.TriggerRecovery)
	}
	return nil
}

// Ingest digests one microblog: the engine takes ownership of mb,
// assigns its ID (and timestamp, when zero), stores and indexes it, and
// triggers a flush when the memory budget is full. It returns the
// assigned ID. Internally it is a batch of one.
func (e *Engine[K]) Ingest(mb *types.Microblog) (types.ID, error) {
	ids, err := e.IngestBatch([]*types.Microblog{mb})
	if err != nil {
		return 0, err
	}
	if ids[0] == 0 {
		return 0, ErrNoKeys
	}
	return ids[0], nil
}

// IngestBatch digests a batch of microblogs in arrival order, taking
// ownership of every record. IDs (and timestamps, when zero) are
// assigned per record; the whole batch is then group-committed to the
// write-ahead log under one lock acquisition and one buffered write
// before any record becomes visible, so durability costs are amortized
// across the batch — the group commit that lets ingestion scale with
// the stream rate. Records carrying no keys for this attribute are
// skipped, reported by a zero ID in the returned slice (which is
// aligned with mbs). A flush is triggered at most once per batch.
func (e *Engine[K]) IngestBatch(mbs []*types.Microblog) ([]types.ID, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if e.degraded.Load() {
		reason, _ := e.degradedReason.Load().(string)
		return nil, fmt.Errorf("%w: %s", ErrDegraded, reason)
	}
	batchStart := time.Now()
	ids := make([]types.ID, len(mbs))
	var recs []*store.Record
	var recKeys [][]K
	var frames []disk.FlushRecord
	var sc *ingestScratch[K]
	if e.scratch != nil {
		sc = e.scratch.Get().(*ingestScratch[K])
		recs, recKeys, frames = sc.recs[:0], sc.recKeys[:0], sc.frames[:0]
		defer func() {
			// The batch's working slices hold pointers; zero them so the
			// arena never pins records or keys across batches.
			for i := range recs {
				recs[i] = nil
			}
			for i := range recKeys {
				recKeys[i] = nil
			}
			for i := range frames {
				frames[i] = disk.FlushRecord{}
			}
			sc.recs, sc.recKeys, sc.frames = recs[:0], recKeys[:0], frames[:0]
			e.scratch.Put(sc)
		}()
	} else {
		recs = make([]*store.Record, 0, len(mbs))
		recKeys = make([][]K, 0, len(mbs))
	}
	for i, mb := range mbs {
		keys := e.cfg.KeysOf(mb)
		if len(keys) == 0 {
			continue
		}
		if mb.Timestamp == 0 {
			mb.Timestamp = e.clk.Now()
		}
		mb.ID = types.ID(e.ids.Add(1))
		ids[i] = mb.ID
		recs = append(recs, e.newRecord(mb, e.cfg.Ranker.Score(mb)))
		recKeys = append(recKeys, keys)
	}
	if len(recs) == 0 {
		return ids, nil
	}
	if e.wal != nil {
		if sc == nil {
			frames = make([]disk.FlushRecord, 0, len(recs))
		}
		for _, rec := range recs {
			frames = append(frames, disk.FlushRecord{MB: rec.MB, Score: rec.Score})
		}
		if err := e.wal.AppendBatch(frames); err != nil {
			return nil, fmt.Errorf("engine: wal append: %w", err)
		}
	}
	for i, rec := range recs {
		e.store.Put(rec)
		e.mem.AddData(rec.Bytes)
		for _, key := range recKeys[i] {
			e.idx.Insert(key, rec)
		}
	}
	e.pol.OnIngest(recs, recKeys)
	e.reg.Ingested.Add(int64(len(recs)))
	e.reg.IngestBatches.Add(1)
	e.bbox.Record(blackbox.SubIngest, blackbox.EvIngestBatch,
		int64(len(recs)), int64(len(mbs)-len(recs)), time.Since(batchStart).Nanoseconds())
	e.maybeFlush(flushlog.TriggerBudget)
	return ids, nil
}

// newRecord builds a record for m, reusing a recycled wrapper whose
// quarantine has expired when the pooled policy is active.
func (e *Engine[K]) newRecord(m *types.Microblog, score float64) *store.Record {
	if rec, ok := e.recycler.Get(); ok {
		store.ResetRecord(rec, m, score)
		return rec
	}
	return store.NewRecord(m, score)
}

// AllocStats reports the allocator layer's traffic: the posting slab
// pool and the record recycler (all zero under AllocPolicy=heap).
func (e *Engine[K]) AllocStats() (alloc.SliceStats, alloc.RecyclerStats) {
	return e.idx.PoolStats(), e.recycler.Stats()
}

// maybeFlush triggers the policy when the budget is exhausted. In
// background mode at most one flush runs at a time and digestion
// continues concurrently, as the paper requires.
//
// Hysteresis: when a flush cannot free the full budget (the saturation
// regime of Figure 5(a)), memory stays at or above the budget and every
// ingest would otherwise re-trigger a flush — the costly
// every-few-seconds flushing the paper's Section II-C warns about. A
// new flush is therefore allowed only after memory grew by at least
// 0.5% of the budget since the previous one ended.
func (e *Engine[K]) maybeFlush(trigger string) {
	e.maybeTune() // adaptive memory: tick rides the ingest path
	used := e.mem.Used()
	wm := e.watermarkBytes()
	if used < wm {
		return
	}
	if used < e.lastFlushUsed.Load()+wm/200 {
		return
	}
	if !e.flushMu.TryLock() {
		return // a flush is already in flight
	}
	if e.cfg.SyncFlush {
		e.runFlushLocked(trigger)
		return
	}
	go e.runFlushLocked(trigger)
}

// runFlushLocked executes one flush cycle; the caller must hold flushMu,
// which is released on return.
func (e *Engine[K]) runFlushLocked(trigger string) {
	defer e.flushMu.Unlock()
	_, err := e.flushCycle(trigger)
	if err != nil {
		e.lastError.Store(err)
		slog.Error("engine: background flush failed",
			"policy", e.pol.Name(), "trigger", trigger, "error", err)
	}
	// Retune between cycles, still under the gate: the cycle that just
	// ran used the old targets; the next one sees the new.
	e.tuneTickLocked()
}

// flushCycle runs the policy once at the configured target, updates the
// flush counters, and records the cycle in the audit journal (the
// policy fills in its per-phase events between Begin and End). Callers
// must hold flushMu.
func (e *Engine[K]) flushCycle(trigger string) (int64, error) {
	start := time.Now()
	// A runtime/trace task per cycle: `go tool trace` groups the cycle's
	// regions (and any GC or scheduler interference) under one span.
	ctx, task := rtrace.NewTask(context.Background(), "flush-cycle")
	defer task.End()
	target := int64(e.flushFraction() * float64(e.cfg.MemoryBudget))
	e.journal.Begin(e.pol.Name(), trigger, target, e.mem.Used(), start)
	// Only budget-triggered background cycles may enqueue their batch to
	// the pipeline: manual, recovery and degraded-probe cycles stay
	// fully synchronous so their outcome is determined when they return.
	e.fsink.beginCycle(trigger == flushlog.TriggerBudget)
	var freed int64
	err := failpoint.Eval(failpoint.FlushBegin)
	if err == nil {
		rtrace.WithRegion(ctx, "flush-prepare", func() {
			freed, err = e.pol.Flush(target)
		})
	}
	prepare := time.Since(start)
	if err != nil {
		// Atomic flush semantics: whatever the cycle evicted but could
		// not durably persist goes back into memory before anyone can
		// observe the gap, then the engine stops accepting writes.
		releaseStart := time.Now()
		failed := e.fsink.takeFailed()
		e.restoreEvicted(failed)
		release := time.Since(releaseStart)
		e.reg.ObserveStage(metrics.StageRelease, release)
		e.journal.Stage("release", release.Nanoseconds())
		e.bbox.Record(blackbox.SubFlush, blackbox.EvFlushRelease,
			int64(len(failed)), 0, release.Nanoseconds())
	}
	// Stage accounting: the prepare stage is the gate-held policy run
	// minus the time the sink spent writing synchronously (enqueued
	// batches report their build/install on the pipeline event instead).
	build, install, write := e.fsink.cycleStats()
	if p := prepare.Nanoseconds() - write; p > 0 {
		e.reg.ObserveStage(metrics.StagePrepare, time.Duration(p))
		e.journal.Stage("prepare", p)
		e.bbox.Record(blackbox.SubFlush, blackbox.EvFlushPrepare, target, freed, p)
	}
	if build > 0 {
		e.reg.ObserveStage(metrics.StageBuild, time.Duration(build))
		e.reg.ObserveStage(metrics.StageInstall, time.Duration(install))
		e.journal.Stage("build", build)
		e.journal.Stage("install", install)
	}
	d := time.Since(start)
	e.reg.Flushes.Add(1)
	e.reg.FlushedBytes.Add(freed)
	e.reg.FlushLatency.Observe(d)
	used := e.mem.Used()
	e.lastFlushUsed.Store(used)
	e.journal.End(freed, used, d, err)
	if err != nil {
		_ = e.fsink.tookWrite() // reset the evidence bit; this cycle failed
		e.enterDegraded(err)
	} else if e.fsink.tookWrite() {
		// Only a real, durable tier write is evidence the fault cleared.
		e.exitDegraded("flush")
	}
	slog.Debug("engine: flush cycle",
		"policy", e.pol.Name(), "trigger", trigger,
		"target", target, "freed", freed, "duration", d)
	return freed, err
}

// FlushNow synchronously runs one flush cycle regardless of memory
// pressure, returning the bytes freed. It blocks deterministically on
// the flush gate — no polling — until any in-flight background cycle
// completes, then runs its own. Intended for tests, experiments, and
// administrative draining.
func (e *Engine[K]) FlushNow() (int64, error) {
	if e.closed.Load() {
		return 0, ErrClosed
	}
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	freed, err := e.flushCycle(flushlog.TriggerManual)
	// Manual cycles retune like budget cycles do: between cycles, under
	// the gate. Without this a FlushNow-driven workload that keeps the
	// gate saturated would starve the controller entirely.
	e.tuneTickLocked()
	return freed, err
}

// Search evaluates one basic top-k search query (Section II-B). The
// answer is ranked best-first; Result.MemoryHit reports whether memory
// alone supplied the full k answers — the paper's hit-ratio event.
//
// When req.Trace is non-nil the execution is recorded into it: the
// memory probe outcome per key, per-segment disk activity on a miss,
// and stage timings. Every trace-related branch is guarded by a nil
// check, so the disabled path adds no allocations.
func (e *Engine[K]) Search(req query.Request[K]) (query.Result, error) {
	if e.closed.Load() {
		return query.Result{}, ErrClosed
	}
	if len(req.Keys) == 0 {
		return query.Result{}, fmt.Errorf("engine: query has no keys")
	}
	k := req.K
	if k <= 0 {
		k = e.idx.K()
	}
	op := req.Op
	if len(req.Keys) == 1 {
		op = query.OpSingle
	}
	tr := req.Trace
	// Slow-query capture: with a threshold configured and no caller
	// trace, attach one speculatively — whether it is kept is decided by
	// the query's final wall time.
	slowCapture := tr == nil && e.slowlog != nil
	if slowCapture {
		tr = &trace.Trace{}
	}
	if tr != nil {
		tr.Op = op.String()
		tr.K = k
		tr.Keys = make([]string, len(req.Keys))
		for i, key := range req.Keys {
			tr.Keys[i] = e.cfg.EncodeKey(key)
		}
	}
	start := time.Now()
	now := e.clk.Now()

	// Pin the recycler epoch: record pointers copied out of entries
	// below are read (and handed to OnAccess) without locks, so no
	// wrapper may be recycled until this search ends. A no-op under
	// AllocPolicy=heap.
	ep := e.recycler.Pin()
	defer e.recycler.Unpin(ep)

	// Gather per-key candidates from memory, touching each entry's
	// last-queried timestamp (Phase 3 bookkeeping).
	recsByID := make(map[types.ID]*store.Record)
	lists := make([][]query.Item, 0, len(req.Keys))
	everyKeyFilled := true // every queried key contributed >= k candidates
	for ki, key := range req.Keys {
		en := e.idx.Entry(key)
		if en == nil {
			lists = append(lists, nil)
			everyKeyFilled = false
			if tr != nil {
				tr.AddEntry(trace.EntryProbe{Key: tr.Keys[ki]})
			}
			continue
		}
		en.Touch(now)
		var recs []*store.Record
		if op == query.OpAnd {
			// Intersection needs every posting: under the MK extension
			// entries may hold beyond-top-k postings kept exactly for
			// AND queries.
			recs = en.All()
		} else {
			recs = en.TopK(k)
		}
		if len(recs) < k {
			everyKeyFilled = false
		}
		items := make([]query.Item, len(recs))
		for i, r := range recs {
			items[i] = query.Item{MB: r.MB, Score: r.Score}
			recsByID[r.MB.ID] = r
		}
		lists = append(lists, items)
		if tr != nil {
			n := en.Len()
			tr.AddEntry(trace.EntryProbe{
				Key: tr.Keys[ki], Found: true, Postings: n, KFilled: n >= k,
			})
		}
	}
	gatherEnd := time.Now()
	e.reg.ObserveQueryStage(metrics.QStageIndex, gatherEnd.Sub(start))

	// Hit determination follows Section IV-D: a single-key query hits
	// when its entry holds k postings; an OR query hits only when EVERY
	// queried key holds k ("if any of the keywords has less than k
	// microblogs, there is a possibility that Lm may not contain the
	// final answer"); an AND query hits when the in-memory intersection
	// reaches k.
	var mem []query.Item
	var hit bool
	switch op {
	case query.OpSingle:
		mem = lists[0]
		if len(mem) > k {
			mem = mem[:k]
		}
		hit = len(mem) >= k
	case query.OpOr:
		mem = query.MergeTopK(lists, k)
		hit = everyKeyFilled && len(mem) >= k
	case query.OpAnd:
		mem = query.IntersectTopK(lists, k)
		hit = len(mem) >= k
	}
	e.reg.ObserveQueryStage(metrics.QStageHeap, time.Since(gatherEnd))

	if tr != nil {
		tr.MemoryHit = hit
		tr.MemoryItems = len(mem)
		tr.Stage("memory", start)
	}

	res := query.Result{Items: mem, MemoryHit: hit}
	if !res.MemoryHit {
		res.DiskChecked = true
		diskStart := time.Now()
		diskItems, err := e.diskSearch(req.Keys, op, k, tr)
		if err != nil {
			return query.Result{}, err
		}
		if tr != nil {
			tr.Stage("disk", diskStart)
		}
		res.Items = query.MergeTopK([][]query.Item{mem, diskItems}, k)
		e.reg.ObserveQueryStage(metrics.QStageDisk, time.Since(diskStart))
	}

	// Inform the policy which memory records the answer used (LRU
	// relinks them; kFlushing and FIFO ignore the call).
	touched := make([]*store.Record, 0, len(res.Items))
	for _, it := range res.Items {
		if r, ok := recsByID[it.MB.ID]; ok {
			touched = append(touched, r)
		}
	}
	if len(touched) > 0 {
		e.pol.OnAccess(touched)
	}

	elapsed := time.Since(start)
	e.reg.RecordQuery(op.String(), res.MemoryHit, elapsed)
	if tr != nil {
		tr.Items = len(res.Items)
		tr.Stage("total", start)
	}
	if slowCapture && elapsed.Nanoseconds() >= e.cfg.SlowQueryNanos {
		e.slowlog.Add(tr, elapsed.Nanoseconds())
	}
	return res, nil
}

// diskSearch is the memory-miss fallback: it coalesces concurrent
// identical searches through the flight group so N simultaneous misses
// for the same (keys, op, k) pay one disk search and share its result.
// Sharing is safe because query items are immutable once produced and
// every caller merges them into a fresh result slice.
//
// A traced search bypasses coalescing and runs the disk search itself:
// sharing another caller's in-flight result would leave the trace with
// no per-segment record — exactly the detail the caller asked for — and
// traced queries are rare, diagnostic traffic.
func (e *Engine[K]) diskSearch(keys []K, op query.Op, k int, tr *trace.Trace) ([]query.Item, error) {
	if tr != nil {
		e.reg.DiskSearches.Add(1)
		return e.tier.SearchTraced(keys, op, k, tr.BeginDisk())
	}
	var sb []byte
	for _, key := range keys {
		sb = append(sb, e.cfg.EncodeKey(key)...)
		sb = append(sb, 0)
	}
	sb = append(sb, byte(op), byte(k), byte(k>>8), byte(k>>16))
	items, shared, err := e.flights.do(string(sb), func() ([]query.Item, error) {
		return e.tier.Search(keys, op, k)
	})
	if shared {
		e.reg.DiskSearchesCoalesced.Add(1)
	} else {
		e.reg.DiskSearches.Add(1)
	}
	return items, err
}

// SetK changes the default top-k threshold at run time (Section IV-C).
// The new value applies to subsequent queries immediately and to
// flushing decisions from the next flush cycle.
func (e *Engine[K]) SetK(k int) {
	if k > 0 {
		e.idx.SetK(k)
	}
}

// K returns the current default top-k threshold.
func (e *Engine[K]) K() int { return e.idx.K() }

// Index exposes the underlying index for experiments and tests.
func (e *Engine[K]) Index() *index.Index[K] { return e.idx }

// Store exposes the raw data store for experiments and tests.
func (e *Engine[K]) Store() *store.Store { return e.store }

// Mem exposes the memory tracker for experiments and tests.
func (e *Engine[K]) Mem() *memsize.Tracker { return &e.mem }

// Metrics exposes the counter registry.
func (e *Engine[K]) Metrics() *metrics.Registry { return &e.reg }

// Journal exposes the flush audit journal: one structured event per
// completed flush cycle, newest DefaultSize retained.
func (e *Engine[K]) Journal() *flushlog.Journal { return e.journal }

// Blackbox exposes the flight recorder; nil when disabled. Its Events
// snapshot merges every subsystem ring into one sequence-ordered
// timeline.
func (e *Engine[K]) Blackbox() *blackbox.Recorder { return e.bbox }

// SlowLog exposes the slow-query ring; nil unless SlowQueryNanos is
// configured.
func (e *Engine[K]) SlowLog() *blackbox.SlowLog { return e.slowlog }

// dumpBlackbox snapshots the flight recorder next to the disk tier. It
// is called on degraded-mode entry and from panic recovery, so failures
// are logged, never propagated.
func (e *Engine[K]) dumpBlackbox(reason string) {
	path, err := e.bbox.Dump(e.cfg.DiskDir, reason)
	switch {
	case err != nil:
		slog.Error("engine: flight recorder dump failed", "reason", reason, "error", err)
	case path != "":
		slog.Warn("engine: flight recorder dumped", "reason", reason, "dump", path)
	}
}

// CheckReady verifies the engine can currently accept writes: the disk
// tier directory must accept new files and the write-ahead log (when
// durability is on) must be appendable. It performs real probe I/O, so
// call it from readiness endpoints, not hot paths.
func (e *Engine[K]) CheckReady() error {
	if e.closed.Load() {
		return ErrClosed
	}
	probeErr := e.tier.CheckWritable()
	if probeErr == nil && e.wal != nil {
		probeErr = e.wal.CheckAppendable()
	}
	if ok, reason := e.Degraded(); ok {
		if probeErr != nil {
			return fmt.Errorf("%w: %s (probe: %v)", ErrDegraded, reason, probeErr)
		}
		// The write probes pass again: leave degraded mode so ingestion
		// resumes. Serialize with flush cycles for the journal write; if
		// a cycle is in flight it will decide the state itself.
		if e.flushMu.TryLock() {
			e.exitDegraded("readiness probe")
			e.flushMu.Unlock()
			return nil
		}
		return fmt.Errorf("%w: %s", ErrDegraded, reason)
	}
	return probeErr
}

// Policy exposes the attached flushing policy.
func (e *Engine[K]) Policy() policy.Policy[K] { return e.pol }

// DiskHealth is a cheap point-in-time view of the disk tier's leveled
// layout and the flush pipeline: enough for a readiness endpoint to
// show a wedged compactor (persistent backlog) or a saturated pipeline
// without paying for a full Stats census.
type DiskHealth struct {
	Layout            string            `json:"layout"`
	Levels            []disk.LevelStats `json:"levels"`
	CompactionBacklog int               `json:"compaction_backlog"`
	PipelineDepth     int               `json:"pipeline_depth"`
}

// DiskHealth summarizes the disk tier's levels and the flush pipeline
// queue. Unlike Stats it takes no index census, so it is safe on probe
// paths.
func (e *Engine[K]) DiskHealth() DiskHealth {
	return DiskHealth{
		Layout:            e.tier.Layout().String(),
		Levels:            e.tier.Levels(),
		CompactionBacklog: e.tier.CompactionBacklog(),
		PipelineDepth:     e.pipe.depth(),
	}
}

// CompactNow runs leveled compaction passes until no level exceeds its
// fanout (one bounded merge pass under the flat layout). Searches stay
// answerable throughout; answers are unchanged.
func (e *Engine[K]) CompactNow() error {
	if e.closed.Load() {
		return ErrClosed
	}
	return e.tier.CompactNow()
}

// CompactAll merges every disk segment into a single one, regardless of
// layout. Intended for maintenance windows and tests.
func (e *Engine[K]) CompactAll() error {
	if e.closed.Load() {
		return ErrClosed
	}
	return e.tier.CompactAll()
}

// Err returns the most recent background flush error, if any.
func (e *Engine[K]) Err() error {
	if v := e.lastError.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Stats is a point-in-time summary of the whole engine.
type Stats struct {
	Policy         string
	K              int
	MemoryBudget   int64
	MemoryUsed     int64
	DataBytes      int64
	IndexBytes     int64
	PolicyOverhead int64
	StoreRecords   int64
	Census         index.Census
	Metrics        metrics.Snapshot
	Disk           disk.Stats
	// Degraded reports read-only mode (tier writes failing); the reason
	// is the error that entered it.
	Degraded       bool
	DegradedReason string
	// TunerEnabled / Tuner report the adaptive memory controller (zero
	// when AdaptiveMemory is off).
	TunerEnabled bool
	Tuner        tuner.State
}

// Stats gathers a snapshot. Taking a census scans the index; avoid
// calling it on latency-critical paths.
func (e *Engine[K]) Stats() Stats {
	degraded, reason := e.Degraded()
	return Stats{
		Degraded:       degraded,
		DegradedReason: reason,
		Policy:         e.pol.Name(),
		K:              e.idx.K(),
		MemoryBudget:   e.cfg.MemoryBudget,
		MemoryUsed:     e.mem.Used(),
		DataBytes:      e.mem.Data(),
		IndexBytes:     e.mem.Index(),
		PolicyOverhead: e.pol.OverheadBytes(),
		StoreRecords:   e.store.Len(),
		Census:         e.idx.TakeCensus(),
		Metrics:        e.reg.Snap(),
		Disk:           e.tier.Stats(),
		TunerEnabled:   e.tun != nil,
		Tuner:          e.tun.State(),
	}
}

// Close drains in-flight flushing and the flush pipeline, snapshots
// memory contents to the write-ahead log (when enabled) so the next
// open recovers instantly, and releases the disk tier.
func (e *Engine[K]) Close() error {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	if e.bbox != nil {
		blackbox.UnregisterDumper(e.cfg.DiskDir)
	}
	if e.tunStop != nil {
		close(e.tunStop)
		e.tunWG.Wait()
	}
	// Drain any in-flight background flush first (closed is set, so no
	// new cycle can start once the gate is observed free), then drain
	// the pipeline WITHOUT holding the gate — completions take it for
	// rollback and journal writes. Queued batches are out of memory, so
	// they must reach the tier (or be restored) before the snapshot
	// below is cut; otherwise the snapshot would be their only grave.
	e.flushMu.Lock()
	e.flushMu.Unlock() //nolint:staticcheck // empty critical section = drain
	if e.pipe != nil {
		e.pipe.close()
	}
	// The gate is held for the rest of shutdown, so a straggling flush
	// can neither start after the snapshot is cut nor write to the
	// closing disk tier.
	e.flushMu.Lock()
	defer e.flushMu.Unlock()
	var firstErr error
	if e.wal != nil {
		var recs []disk.FlushRecord
		e.store.Range(func(rec *store.Record) bool {
			recs = append(recs, disk.FlushRecord{MB: rec.MB, Score: rec.Score})
			return true
		})
		if err := e.wal.WriteSnapshot(recs); err != nil {
			firstErr = err
		}
		if err := e.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := e.tier.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
