package engine

import (
	"testing"

	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/core"
	"kflushing/internal/query"
	"kflushing/internal/types"
	"kflushing/internal/wal"
)

// newObservedEngine builds a durable keyword engine whose flight
// recorder sees all three instrumented layers: ingest batches, WAL
// appends and syncs (SyncEvery=1), and flush pipeline stages.
func newObservedEngine(t *testing.T, slowQueryNanos int64) *Engine[string] {
	t.Helper()
	dir := t.TempDir()
	eng, err := New(Config[string]{
		K:              5,
		MemoryBudget:   1 << 30,
		FlushFraction:  0.5,
		KeysOf:         attr.KeywordKeys,
		KeyHash:        attr.HashString,
		KeyLen:         attr.KeywordLen,
		EncodeKey:      attr.KeywordEncode,
		Clock:          clock.NewLogical(1, 1),
		DiskDir:        dir,
		WALDir:         dir + "/wal",
		WALOptions:     wal.Options{SyncEvery: 1},
		Policy:         core.New[string](),
		TrackOverK:     true,
		SyncFlush:      true,
		SlowQueryNanos: slowQueryNanos,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// TestBlackboxFlushCycleTimeline drives records through ingest, WAL, and
// a flush cycle, then checks the recorder's merged view reads as one
// causal, sequence-ordered story: the WAL appends covering the records
// precede the flush cycle's prepare/build/install events, and every
// subsystem the cycle touched is present.
func TestBlackboxFlushCycleTimeline(t *testing.T) {
	eng := newObservedEngine(t, 0)
	for i := 0; i < 30; i++ {
		ingest(t, eng, int64(i+1), "a", "all")
	}
	if _, err := eng.FlushNow(); err != nil {
		t.Fatalf("FlushNow: %v", err)
	}

	events := eng.Blackbox().Events()
	if len(events) == 0 {
		t.Fatal("recorder captured no events")
	}
	var lastSeq uint64
	firstOf := map[string]uint64{}
	for _, ev := range events {
		if ev.Seq <= lastSeq {
			t.Fatalf("merged events out of sequence order: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if _, ok := firstOf[ev.Event]; !ok {
			firstOf[ev.Event] = ev.Seq
		}
	}
	for _, want := range []string{"ingest_batch", "wal_append", "wal_sync",
		"flush_prepare", "flush_build", "flush_install"} {
		if _, ok := firstOf[want]; !ok {
			t.Fatalf("no %q event in timeline (got %v)", want, firstOf)
		}
	}
	if firstOf["wal_append"] >= firstOf["flush_build"] {
		t.Fatalf("WAL append (seq %d) does not precede flush build (seq %d)",
			firstOf["wal_append"], firstOf["flush_build"])
	}
	if firstOf["flush_build"] >= firstOf["flush_install"] {
		t.Fatalf("flush build (seq %d) does not precede install (seq %d)",
			firstOf["flush_build"], firstOf["flush_install"])
	}
}

// TestBlackboxDisabled checks the negative knob: a recorder-less engine
// works end to end and reports an empty timeline.
func TestBlackboxDisabled(t *testing.T) {
	eng, err := New(Config[string]{
		K:              3,
		MemoryBudget:   1 << 30,
		FlushFraction:  0.5,
		KeysOf:         attr.KeywordKeys,
		KeyHash:        attr.HashString,
		KeyLen:         attr.KeywordLen,
		EncodeKey:      attr.KeywordEncode,
		Clock:          clock.NewLogical(1, 1),
		DiskDir:        t.TempDir(),
		Policy:         core.New[string](),
		TrackOverK:     true,
		SyncFlush:      true,
		BlackboxEvents: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ingest(t, eng, 1, "a")
	if _, err := eng.FlushNow(); err != nil {
		t.Fatalf("FlushNow: %v", err)
	}
	if eng.Blackbox() != nil {
		t.Fatal("BlackboxEvents=-1 still built a recorder")
	}
	if evs := eng.Blackbox().Events(); len(evs) != 0 {
		t.Fatalf("disabled recorder returned %d events", len(evs))
	}
}

// TestSlowQueryAutoCapture sets a 1 ns threshold so every untraced
// search is "slow" and must land in the slow-query log with a full
// execution trace attached; a traced request (caller-supplied trace) is
// never double-captured.
func TestSlowQueryAutoCapture(t *testing.T) {
	eng := newObservedEngine(t, 1)
	for i := 0; i < 10; i++ {
		ingest(t, eng, int64(i+1), "a")
	}
	if _, err := eng.Search(query.Request[string]{Keys: []string{"a"}, K: 5}); err != nil {
		t.Fatalf("Search: %v", err)
	}
	slow := eng.SlowLog().Snapshot()
	if len(slow) != 1 {
		t.Fatalf("slow log holds %d entries after one slow search, want 1", len(slow))
	}
	sq := slow[0]
	if sq.Trace == nil {
		t.Fatal("slow query captured without a trace")
	}
	if sq.DurationNanos <= 0 {
		t.Fatalf("slow query duration = %d, want > 0", sq.DurationNanos)
	}
	if len(sq.Trace.Entries) == 0 {
		t.Fatal("captured trace probed no index entries")
	}
	if sq.Seq == 0 {
		t.Fatal("slow query not stamped with a global sequence number")
	}
}

// TestSlowQueryDisabledByDefault checks that without a threshold the
// engine builds no slow log and captures nothing.
func TestSlowQueryDisabledByDefault(t *testing.T) {
	eng := newObservedEngine(t, 0)
	ingest(t, eng, 1, "a")
	if _, err := eng.Search(query.Request[string]{Keys: []string{"a"}, K: 5}); err != nil {
		t.Fatalf("Search: %v", err)
	}
	if eng.SlowLog() != nil {
		t.Fatal("slow log built without a threshold")
	}
	if got := eng.SlowLog().Snapshot(); len(got) != 0 {
		t.Fatalf("nil slow log returned %d entries", len(got))
	}
}

// BenchmarkIngestBlackboxOverhead measures sustained single-record
// ingestion with the flight recorder on (the default) and off, backing
// the ≤1% overhead budget in results/pr8_blackbox_overhead.txt.
func BenchmarkIngestBlackboxOverhead(b *testing.B) {
	run := func(b *testing.B, blackboxEvents int) {
		eng, err := New(Config[string]{
			K:              5,
			MemoryBudget:   1 << 40, // never flush: isolate the ingest path
			FlushFraction:  0.2,
			KeysOf:         attr.KeywordKeys,
			KeyHash:        attr.HashString,
			KeyLen:         attr.KeywordLen,
			EncodeKey:      attr.KeywordEncode,
			Clock:          clock.NewLogical(1, 1),
			DiskDir:        b.TempDir(),
			Policy:         core.New[string](),
			TrackOverK:     true,
			SyncFlush:      true,
			BlackboxEvents: blackboxEvents,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		kws := []string{"bench"}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Ingest(&types.Microblog{Keywords: kws, Text: "t"}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("enabled", func(b *testing.B) { run(b, 0) })
	b.Run("disabled", func(b *testing.B) { run(b, -1) })
}
