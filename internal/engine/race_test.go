package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"kflushing/internal/alloc"
	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/core"
	"kflushing/internal/policy"
	"kflushing/internal/query"
	"kflushing/internal/types"
)

// raceEngine builds an engine with background flushing (SyncFlush off)
// and a budget small enough that flushes happen constantly under the
// stress load below.
func raceEngine(t *testing.T, pol policy.Policy[string], trackOverK bool, walDir string, ap alloc.Policy) *Engine[string] {
	t.Helper()
	eng, err := New(Config[string]{
		K:             5,
		MemoryBudget:  96 << 10,
		FlushFraction: 0.25,
		KeysOf:        attr.KeywordKeys,
		KeyHash:       attr.HashString,
		KeyLen:        attr.KeywordLen,
		EncodeKey:     attr.KeywordEncode,
		Clock:         clock.NewLogical(1, 1),
		DiskDir:       t.TempDir(),
		WALDir:        walDir,
		Policy:        pol,
		TrackOverK:    trackOverK,
		AllocPolicy:   ap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := eng.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return eng
}

// stress hammers one engine from many goroutines at once: batched
// ingestion, searches over hot keys, SetK changes, and explicit
// FlushNow calls — all concurrent with the engine's own background
// flushing. The test asserts nothing beyond "no data race, no panic,
// no flush error": it exists to give the race detector surface area
// over the ingest/flush/search interleavings.
func stress(t *testing.T, eng *Engine[string]) {
	t.Helper()
	const (
		ingesters = 3
		searchers = 2
		batches   = 40
		batchLen  = 25
	)
	var wg sync.WaitGroup
	var stop atomic.Bool

	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				mbs := make([]*types.Microblog, batchLen)
				for i := range mbs {
					mbs[i] = &types.Microblog{
						Keywords: []string{
							fmt.Sprintf("hot%d", i%4),
							fmt.Sprintf("g%d-k%d", g, b*batchLen+i),
						},
						Text: "stress stress stress stress",
					}
				}
				if _, err := eng.IngestBatch(mbs); err != nil {
					t.Errorf("IngestBatch: %v", err)
					return
				}
			}
		}(g)
	}

	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				keys := []string{fmt.Sprintf("hot%d", i%4), fmt.Sprintf("hot%d", (i+1)%4)}
				op := query.OpOr
				if i%3 == 0 {
					op = query.OpAnd
				}
				if _, err := eng.Search(query.Request[string]{Keys: keys, Op: op}); err != nil {
					t.Errorf("Search: %v", err)
					return
				}
				if i%7 == 0 {
					eng.SetK(3 + i%5)
				}
				if i%13 == 0 {
					if _, err := eng.FlushNow(); err != nil {
						t.Errorf("FlushNow: %v", err)
						return
					}
				}
			}
		}(g)
	}

	// Searchers run until the ingesters finish; a separate goroutine
	// flips the flag so Wait covers everyone.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	ingested := func() bool {
		return eng.Metrics().Ingested.Load() >= int64(ingesters*batches*batchLen)
	}
	for !ingested() {
		// Spin-free wait: FlushNow blocks on the flush gate, making this
		// loop yield to the workers.
		if _, err := eng.FlushNow(); err != nil {
			t.Fatalf("FlushNow: %v", err)
		}
	}
	stop.Store(true)
	<-done

	if err := eng.Err(); err != nil {
		t.Fatalf("background flush error: %v", err)
	}
	if got := eng.Metrics().Ingested.Load(); got != int64(ingesters*batches*batchLen) {
		t.Fatalf("ingested %d records, want %d", got, ingesters*batches*batchLen)
	}
}

// stressBothAllocPolicies runs the stress load once per allocator
// policy. Pooled is where the sharp edges live — a recycled record or
// posting array handed out while a search still reads it is a
// use-after-release the race detector will see — and heap keeps the
// baseline honest.
func stressBothAllocPolicies(t *testing.T, mk func(t *testing.T, ap alloc.Policy) *Engine[string]) {
	for _, ap := range []alloc.Policy{alloc.PolicyPooled, alloc.PolicyHeap} {
		ap := ap
		t.Run("alloc="+ap.String(), func(t *testing.T) {
			stress(t, mk(t, ap))
		})
	}
}

func TestConcurrentStressKFlushing(t *testing.T) {
	stressBothAllocPolicies(t, func(t *testing.T, ap alloc.Policy) *Engine[string] {
		return raceEngine(t, core.New[string](), true, "", ap)
	})
}

func TestConcurrentStressKFlushingParallel(t *testing.T) {
	// Forced multi-worker Phase 1 / victim scanning, so the parallel
	// paths get race coverage even on single-core CI runners.
	stressBothAllocPolicies(t, func(t *testing.T, ap alloc.Policy) *Engine[string] {
		pol := core.New(core.WithParallelism[string](4))
		return raceEngine(t, pol, true, "", ap)
	})
}

func TestConcurrentStressFIFO(t *testing.T) {
	stressBothAllocPolicies(t, func(t *testing.T, ap alloc.Policy) *Engine[string] {
		return raceEngine(t, policy.NewFIFO[string](24<<10), false, "", ap)
	})
}

func TestConcurrentStressLRU(t *testing.T) {
	stressBothAllocPolicies(t, func(t *testing.T, ap alloc.Policy) *Engine[string] {
		return raceEngine(t, policy.NewLRU[string](), false, "", ap)
	})
}

func TestConcurrentStressDurable(t *testing.T) {
	// WAL group commit under concurrent batches.
	stressBothAllocPolicies(t, func(t *testing.T, ap alloc.Policy) *Engine[string] {
		return raceEngine(t, core.New[string](), true, t.TempDir(), ap)
	})
}
