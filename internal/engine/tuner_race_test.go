package engine

import (
	"sync"
	"testing"

	"kflushing/internal/alloc"
	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/core"
	"kflushing/internal/policy"
	"kflushing/internal/tuner"
)

// tunedRaceEngine is raceEngine with the adaptive memory tuner on at a
// hair-trigger cadence: background flushing (so the wall-clock tuner
// loop also runs), Interval 1 on the logical clock (every ingest batch
// is due), and wide cache bounds so live resizes actually happen under
// the stress load.
func tunedRaceEngine(t *testing.T, pol policy.Policy[string], trackOverK bool, ap alloc.Policy) *Engine[string] {
	t.Helper()
	eng, err := New(Config[string]{
		K:              5,
		MemoryBudget:   96 << 10,
		FlushFraction:  0.25,
		DiskCacheBytes: 256 << 10,
		KeysOf:         attr.KeywordKeys,
		KeyHash:        attr.HashString,
		KeyLen:         attr.KeywordLen,
		EncodeKey:      attr.KeywordEncode,
		Clock:          clock.NewLogical(1, 1),
		DiskDir:        t.TempDir(),
		Policy:         pol,
		TrackOverK:     trackOverK,
		AllocPolicy:    ap,
		AdaptiveMemory: true,
		TunerLimits:    tuner.Limits{Interval: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := eng.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return eng
}

// TestConcurrentStressTunerKFlushing runs the standard stress battery
// with the tuner retuning continuously: controller ticks race against
// ingest, background flushing, searches, and the tuner's own poll
// goroutine.
func TestConcurrentStressTunerKFlushing(t *testing.T) {
	stressBothAllocPolicies(t, func(t *testing.T, ap alloc.Policy) *Engine[string] {
		return tunedRaceEngine(t, core.New[string](), true, ap)
	})
}

// TestConcurrentStressTunerFIFO covers the budgetAware path: the tuner
// hands FIFO retuned segment byte targets while OnIngest reads them.
func TestConcurrentStressTunerFIFO(t *testing.T) {
	stressBothAllocPolicies(t, func(t *testing.T, ap alloc.Policy) *Engine[string] {
		return tunedRaceEngine(t, policy.NewFIFO[string](24<<10), false, ap)
	})
}

// TestConcurrentStressTunerStateReaders points observability readers
// (TunerState, Stats) at the engine while the stress load and the
// controller both run: the /debug/tuner and /metrics scrape path must
// never race a decision application.
func TestConcurrentStressTunerStateReaders(t *testing.T) {
	eng := tunedRaceEngine(t, core.New[string](), true, alloc.PolicyPooled)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if st, ok := eng.TunerState(); ok && st.Ticks < 0 {
					t.Error("negative tick count")
					return
				}
				_ = eng.Stats()
			}
		}()
	}
	stress(t, eng)
	close(stop)
	wg.Wait()

	st, ok := eng.TunerState()
	if !ok {
		t.Fatal("tuner off")
	}
	if st.Ticks == 0 {
		deg, reason := eng.Degraded()
		t.Fatalf("stress run never ticked the controller (degraded=%v reason=%q err=%v flushes=%d due=%v)",
			deg, reason, eng.Err(), eng.Metrics().Flushes.Load(), eng.tun.Due(eng.clk.Now()))
	}
}
