package engine

import (
	"fmt"
	"testing"
)

// benchTunerArms runs fn against a static engine and an adaptive twin
// as sub-benchmarks, so `-bench TunerFlashCrowd` prints the comparison
// side by side (results/pr10_tuner_bench.txt records the published
// figures).
func benchTunerArms(b *testing.B, budget, cacheBytes int64, fn func(b *testing.B, eng *Engine[string])) {
	for _, arm := range []struct {
		name     string
		adaptive bool
	}{{"static", false}, {"adaptive", true}} {
		b.Run(arm.name, func(b *testing.B) {
			eng := newTunedEngine(b, budget, cacheBytes, arm.adaptive)
			b.ResetTimer()
			fn(b, eng)
		})
	}
}

// BenchmarkTunerFlashCrowd measures sustained hot-keyword ingest — the
// write-heavy regime where the adaptive arm raises B (fewer, larger
// flush cycles) and cedes cache. ns/op is the per-record ingest cost
// with flush cycles amortized in.
func BenchmarkTunerFlashCrowd(b *testing.B) {
	benchTunerArms(b, 24<<10, 256<<10, func(b *testing.B, eng *Engine[string]) {
		for i := 0; i < b.N; i++ {
			ingestKeyed(b, eng, "flash", fmt.Sprintf("u%d", i))
		}
		b.StopTimer()
		b.ReportMetric(float64(eng.Metrics().Flushes.Load())/float64(b.N), "flushes/op")
		if st, ok := eng.TunerState(); ok {
			b.ReportMetric(st.FlushFraction, "B")
		}
	})
}

// BenchmarkTunerDiurnal replays the full deterministic diurnal-drift
// script (write morning, read evening) once per iteration on a fresh
// engine. The hitratio metric is the read-phase disk-cache hit ratio —
// the figure the adaptive arm improves by growing the cache out of the
// lowered watermark.
func BenchmarkTunerDiurnal(b *testing.B) {
	for _, arm := range []struct {
		name     string
		adaptive bool
	}{{"static", false}, {"adaptive", true}} {
		b.Run(arm.name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				eng := newTunedEngine(b, 128<<10, 4096, arm.adaptive)
				ratio = driveDiurnal(b, eng)
			}
			b.ReportMetric(ratio, "hitratio")
		})
	}
}
