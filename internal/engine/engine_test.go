package engine

import (
	"fmt"
	"sync"
	"testing"

	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/core"
	"kflushing/internal/policy"
	"kflushing/internal/query"
	"kflushing/internal/ranking"
	"kflushing/internal/types"
)

func newKeywordEngine(t *testing.T, budget int64, pol policy.Policy[string], trackTopK bool) *Engine[string] {
	t.Helper()
	eng, err := New(Config[string]{
		K:             5,
		MemoryBudget:  budget,
		FlushFraction: 0.2,
		KeysOf:        attr.KeywordKeys,
		KeyHash:       attr.HashString,
		KeyLen:        attr.KeywordLen,
		EncodeKey:     attr.KeywordEncode,
		Clock:         clock.NewLogical(1, 1),
		DiskDir:       t.TempDir(),
		Policy:        pol,
		TrackTopK:     trackTopK,
		TrackOverK:    true,
		SyncFlush:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func ingest(t *testing.T, e *Engine[string], ts int64, kws ...string) types.ID {
	t.Helper()
	id, err := e.Ingest(&types.Microblog{
		Timestamp: types.Timestamp(ts),
		Keywords:  kws,
		Text:      "text",
	})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	return id
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config[string]{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config[string]{
		KeysOf:    attr.KeywordKeys,
		KeyHash:   attr.HashString,
		KeyLen:    attr.KeywordLen,
		EncodeKey: attr.KeywordEncode,
	}); err == nil {
		t.Fatal("config without policy accepted")
	}
}

func TestIngestAssignsIDsAndTimestamps(t *testing.T) {
	eng := newKeywordEngine(t, 1<<30, core.New[string](), false)
	id1 := ingest(t, eng, 0, "a") // zero timestamp: engine assigns
	id2 := ingest(t, eng, 0, "a")
	if id2 != id1+1 {
		t.Fatalf("ids not sequential: %d then %d", id1, id2)
	}
	res, err := eng.Search(query.Request[string]{Keys: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 {
		t.Fatalf("%d items", len(res.Items))
	}
	if res.Items[0].MB.Timestamp <= 0 {
		t.Fatal("timestamp not assigned")
	}
}

func TestSearchEmptyKeysRejected(t *testing.T) {
	eng := newKeywordEngine(t, 1<<30, core.New[string](), false)
	if _, err := eng.Search(query.Request[string]{}); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestSingleKeyOpCoercion(t *testing.T) {
	eng := newKeywordEngine(t, 1<<30, core.New[string](), false)
	ingest(t, eng, 1, "a")
	// An AND query with one key behaves as single.
	res, err := eng.Search(query.Request[string]{Keys: []string{"a"}, Op: query.OpAnd, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || !res.MemoryHit {
		t.Fatalf("single-key AND: items=%d hit=%v", len(res.Items), res.MemoryHit)
	}
}

func TestMissFallsBackToDisk(t *testing.T) {
	eng := newKeywordEngine(t, 1<<30, core.New[string](), false)
	for i := 1; i <= 10; i++ {
		ingest(t, eng, int64(i), "hot")
	}
	ingest(t, eng, 11, "cold")
	if _, err := eng.FlushNow(); err != nil {
		t.Fatal(err)
	}
	// Evict everything via repeated forced flushes.
	for i := 0; i < 20; i++ {
		if _, err := eng.FlushNow(); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Search(query.Request[string]{Keys: []string{"hot"}, Op: query.OpSingle, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryHit {
		// Acceptable if phase 3 kept the entry; then we cannot test
		// the disk path this way.
		t.Skip("entry survived forced flushes")
	}
	if !res.DiskChecked {
		t.Fatal("miss did not check disk")
	}
	if len(res.Items) != 5 {
		t.Fatalf("disk fallback returned %d items, want 5", len(res.Items))
	}
	for i := 1; i < len(res.Items); i++ {
		if res.Items[i-1].Score < res.Items[i].Score {
			t.Fatal("disk results not ranked")
		}
	}
}

func TestAnswerAccuracyAcrossFlushes(t *testing.T) {
	// The union of memory and disk must always contain the true top-k,
	// regardless of flushing (the paper: "the answers are always
	// accurate" because flushed data moves to disk).
	eng := newKeywordEngine(t, 64<<10, core.New[string](), false)
	const n = 2000
	for i := 1; i <= n; i++ {
		kws := []string{fmt.Sprintf("k%d", i%37)}
		if i%3 == 0 {
			kws = append(kws, fmt.Sprintf("k%d", (i+11)%37))
		}
		ingest(t, eng, int64(i), kws...)
	}
	// For each key the true top-5 timestamps are computable: key kI
	// matches records where i%37==I or (i%3==0 && (i+11)%37==I).
	for key := 0; key < 37; key++ {
		var want []int64
		for i := n; i >= 1 && len(want) < 5; i-- {
			if i%37 == key || (i%3 == 0 && (i+11)%37 == key) {
				want = append(want, int64(i))
			}
		}
		res, err := eng.Search(query.Request[string]{Keys: []string{fmt.Sprintf("k%d", key)}, Op: query.OpSingle, K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Items) != len(want) {
			t.Fatalf("key k%d: %d items, want %d", key, len(res.Items), len(want))
		}
		for i, it := range res.Items {
			if int64(it.MB.Timestamp) != want[i] {
				t.Fatalf("key k%d rank %d: ts=%d want %d", key, i, it.MB.Timestamp, want[i])
			}
		}
	}
}

func TestFlushTriggersOnBudget(t *testing.T) {
	eng := newKeywordEngine(t, 32<<10, core.New[string](), false)
	for i := 1; i <= 500; i++ {
		ingest(t, eng, int64(i), fmt.Sprintf("k%d", i%11))
	}
	if eng.Metrics().Flushes.Load() == 0 {
		t.Fatal("budget exceeded but no flush ran")
	}
	if used := eng.Mem().Used(); used > 2*32<<10 {
		t.Fatalf("memory %d far above budget", used)
	}
}

func TestPopularityRanking(t *testing.T) {
	eng, err := New(Config[string]{
		K:            3,
		MemoryBudget: 1 << 30,
		KeysOf:       attr.KeywordKeys,
		KeyHash:      attr.HashString,
		KeyLen:       attr.KeywordLen,
		EncodeKey:    attr.KeywordEncode,
		Ranker:       ranking.Popularity{},
		DiskDir:      t.TempDir(),
		Policy:       core.New[string](),
		TrackOverK:   true,
		SyncFlush:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	followers := []uint32{10, 500, 50, 900, 1}
	for i, f := range followers {
		if _, err := eng.Ingest(&types.Microblog{
			Timestamp: types.Timestamp(i + 1),
			Followers: f,
			Keywords:  []string{"a"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := eng.Search(query.Request[string]{Keys: []string{"a"}, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{900, 500, 50}
	for i, it := range res.Items {
		if it.MB.Followers != want[i] {
			t.Fatalf("rank %d followers=%d, want %d", i, it.MB.Followers, want[i])
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	eng := newKeywordEngine(t, 1<<30, core.New[string](), false)
	ingest(t, eng, 1, "a", "b")
	if _, err := eng.Search(query.Request[string]{Keys: []string{"a"}, K: 1}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Policy != "kflushing" || st.K != 5 {
		t.Fatalf("stats header: %+v", st)
	}
	if st.StoreRecords != 1 || st.Census.Entries != 2 {
		t.Fatalf("stats census: %+v", st.Census)
	}
	if st.Metrics.Queries != 1 || st.Metrics.Hits != 1 {
		t.Fatalf("stats metrics: %+v", st.Metrics)
	}
	if st.MemoryUsed <= 0 || st.DataBytes <= 0 || st.IndexBytes <= 0 {
		t.Fatalf("stats gauges: %+v", st)
	}
}

func TestClosedEngineRejectsOperations(t *testing.T) {
	eng := newKeywordEngine(t, 1<<30, core.New[string](), false)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Ingest(&types.Microblog{Keywords: []string{"a"}}); err != ErrClosed {
		t.Fatalf("Ingest after close: %v", err)
	}
	if _, err := eng.Search(query.Request[string]{Keys: []string{"a"}}); err != ErrClosed {
		t.Fatalf("Search after close: %v", err)
	}
	if _, err := eng.FlushNow(); err != ErrClosed {
		t.Fatalf("FlushNow after close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestConcurrentIngestSearchFlush(t *testing.T) {
	// Race-oriented smoke: ingest, query, and background flushing all
	// run concurrently; run under -race in CI.
	eng, err := New(Config[string]{
		K:             5,
		MemoryBudget:  128 << 10,
		FlushFraction: 0.2,
		KeysOf:        attr.KeywordKeys,
		KeyHash:       attr.HashString,
		KeyLen:        attr.KeywordLen,
		EncodeKey:     attr.KeywordEncode,
		DiskDir:       t.TempDir(),
		Policy:        core.NewMK[string](),
		TrackTopK:     true,
		TrackOverK:    true,
		SyncFlush:     false, // background flushing goroutine
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= 5000; i++ {
			kws := []string{fmt.Sprintf("k%d", i%23)}
			if i%2 == 0 {
				kws = append(kws, fmt.Sprintf("k%d", i%7))
			}
			if _, err := eng.Ingest(&types.Microblog{Keywords: kws, Text: "text"}); err != nil && err != ErrNoKeys {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			op := query.Op(i % 3)
			keys := []string{fmt.Sprintf("k%d", i%23)}
			if op != query.OpSingle {
				keys = append(keys, fmt.Sprintf("k%d", i%7))
			}
			if _, err := eng.Search(query.Request[string]{Keys: keys, Op: op, K: 5}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if err := eng.Err(); err != nil {
		t.Fatalf("background flush error: %v", err)
	}
}

func TestLRUEngineIntegration(t *testing.T) {
	eng := newKeywordEngine(t, 48<<10, policy.NewLRU[string](), false)
	for i := 1; i <= 800; i++ {
		ingest(t, eng, int64(i), fmt.Sprintf("k%d", i%13))
		if i%5 == 0 {
			if _, err := eng.Search(query.Request[string]{Keys: []string{"k1"}, K: 5}); err != nil {
				t.Fatal(err)
			}
		}
	}
	// k1 is constantly queried so LRU should keep it hot.
	res, err := eng.Search(query.Request[string]{Keys: []string{"k1"}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MemoryHit {
		t.Error("constantly queried key missed memory under LRU")
	}
}
