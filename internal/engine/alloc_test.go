package engine

import (
	"fmt"
	"testing"

	"kflushing/internal/alloc"
	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/core"
	"kflushing/internal/types"
)

// allocEngine builds a sync-flush engine under the given allocator
// policy with a budget small enough that warm-up flushing stocks the
// record recycler and posting pool.
func allocEngine(t *testing.T, ap alloc.Policy) *Engine[string] {
	t.Helper()
	eng, err := New(Config[string]{
		K:             5,
		MemoryBudget:  256 << 10,
		FlushFraction: 0.25,
		KeysOf:        attr.KeywordKeys,
		KeyHash:       attr.HashString,
		KeyLen:        attr.KeywordLen,
		EncodeKey:     attr.KeywordEncode,
		Clock:         clock.NewLogical(1, 1),
		DiskDir:       t.TempDir(),
		Policy:        core.New[string](),
		TrackOverK:    true,
		SyncFlush:     true,
		AllocPolicy:   ap,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := eng.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return eng
}

// TestIngestBatchAllocsPooled pins the steady-state allocation ceiling
// of IngestBatch under the pooled policy. The measured loop still
// allocates what it must — the caller-visible ID slice, one Microblog
// struct per record — but record wrappers come from the recycler,
// posting-array growth from the slab pool, and batch scratch from the
// per-engine arena, so the engine's own contribution stays bounded. The
// ceiling (3 allocations per record, measured ~1.5 with flushes
// landing inside the window) is what future PRs must not regress.
func TestIngestBatchAllocsPooled(t *testing.T) {
	eng := allocEngine(t, alloc.PolicyPooled)
	const batch = 16
	// A fixed hot vocabulary: entries reach their steady capacity class
	// during warm-up and stay there. Keyword slices are subslices of one
	// backing array so the measured loop doesn't allocate them.
	kws := make([]string, 64)
	for i := range kws {
		kws[i] = fmt.Sprintf("hot%02d", i)
	}
	ts := 0
	run := func() {
		mbs := make([]*types.Microblog, batch)
		for i := range mbs {
			ts++
			w := ts % len(kws)
			mbs[i] = &types.Microblog{
				Timestamp: types.Timestamp(ts),
				Keywords:  kws[w : w+1],
				Text:      "steady-state ingest body",
			}
		}
		if _, err := eng.IngestBatch(mbs); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up past several budget-triggered flush cycles so the
	// recycler and slab pool hold stock, then flush the live set down
	// so the measured window rides between cycles.
	for i := 0; i < 400; i++ {
		run()
	}
	for i := 0; i < 4; i++ {
		if _, err := eng.FlushNow(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, run)
	perRecord := avg / batch
	t.Logf("IngestBatch batch=%d: %.1f allocs/op, %.2f allocs/record", batch, avg, perRecord)
	if perRecord > 3 {
		t.Errorf("IngestBatch allocates %.2f objects/record under pooled, ceiling 3", perRecord)
	}
	slices, recs := eng.AllocStats()
	if slices.Reuses == 0 || recs.Reuses == 0 {
		t.Fatalf("pools never reused (slices %+v, records %+v): test is not measuring the pooled path", slices, recs)
	}
}
