package engine

import (
	"errors"
	"log/slog"
	"sync"
	"time"

	"kflushing/internal/blackbox"
	"kflushing/internal/disk"
	"kflushing/internal/failpoint"
	"kflushing/internal/flushlog"
	"kflushing/internal/store"
)

// ErrDegraded reports the engine is in degraded read-only mode: a flush
// cycle failed to write the disk tier even after retries, so ingestion
// is rejected until a tier write or readiness probe succeeds. Searches
// keep answering from memory and the readable segments throughout.
var ErrDegraded = errors.New("engine: degraded read-only mode, tier writes failing")

// flushSink wraps the disk tier as the policies' flush sink, adding
// bounded retry with backoff for transient write failures and, on final
// failure, capturing the evicted batch so the flush cycle can roll the
// eviction back into memory — evicted records are never dropped unless
// their segment was durably renamed into place.
//
// With a pipeline attached and async allowed for the current cycle, the
// sink hands the batch to the background builder instead of writing
// inline: the prepare stage (eviction) stays under the flush gate while
// build and install run off it. When the queue is full the sink falls
// back to the synchronous path, so semantics degrade gracefully under
// sustained pressure.
type flushSink[K comparable] struct {
	tier  *disk.Tier[K]
	retry disk.RetryPolicy
	pipe  *flushPipeline[K] // nil = always synchronous
	// releaseDead hands durably-flushed dead records to the engine's
	// recycler; nil under the heap alloc policy (wrappers drop to GC).
	releaseDead func([]*store.Record)

	mu     sync.Mutex
	failed []disk.FlushRecord
	wrote  bool
	async  bool // current cycle may enqueue (set by beginCycle)
	// Per-cycle stage accounting for the synchronous path, read by
	// flushCycle after the policy returns: build/install nanos from the
	// tier, plus total wall time spent inside sink writes (so the cycle
	// can subtract it to get the pure prepare time).
	cycleBuild   int64
	cycleInstall int64
	cycleWrite   int64
}

// beginCycle resets the per-cycle stage accounting and records whether
// this cycle may enqueue to the pipeline. Callers hold flushMu.
func (s *flushSink[K]) beginCycle(async bool) {
	s.mu.Lock()
	s.async = async && s.pipe != nil
	s.cycleBuild, s.cycleInstall, s.cycleWrite = 0, 0, 0
	s.mu.Unlock()
}

// cycleStats returns the synchronous-path stage nanos accumulated since
// beginCycle.
func (s *flushSink[K]) cycleStats() (build, install, write int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cycleBuild, s.cycleInstall, s.cycleWrite
}

func (s *flushSink[K]) Flush(recs []disk.FlushRecord) error {
	return s.FlushDead(recs, nil)
}

// FlushDead implements policy.DeadSink: the flush batch plus the cycle's
// dead records. The dead wrappers are recycled only once the segment is
// durably installed; any failure drops them to the garbage collector
// instead, which is always safe (a rolled-back eviction re-creates
// fresh wrappers, never resurrects these).
func (s *flushSink[K]) FlushDead(recs []disk.FlushRecord, dead []*store.Record) error {
	if len(recs) == 0 {
		// Nothing to write: every dead record's payload already rode an
		// earlier durable batch, so the wrappers are recyclable as-is.
		s.release(dead)
		return nil
	}
	if err := failpoint.Eval(failpoint.FlushAfterEvict); err != nil {
		s.stash(recs)
		return err
	}
	s.mu.Lock()
	async := s.async
	s.mu.Unlock()
	if async && s.pipe.tryEnqueue(recs, dead) {
		// The batch is WAL-covered and queued; build/install/release run
		// on the pipeline worker (see completeAsync).
		return nil
	}
	wstart := time.Now()
	var fs disk.FlushStats
	err := s.retry.Do(func() error {
		var werr error
		fs, werr = s.tier.FlushStaged(recs)
		return werr
	})
	if err != nil {
		s.stash(recs)
		s.mu.Lock()
		s.cycleWrite += time.Since(wstart).Nanoseconds()
		s.mu.Unlock()
		return err
	}
	s.mu.Lock()
	s.wrote = true
	s.cycleBuild += fs.BuildNanos
	s.cycleInstall += fs.InstallNanos
	s.cycleWrite += time.Since(wstart).Nanoseconds()
	s.mu.Unlock()
	// The segment is durably renamed: the dead wrappers can enter the
	// recycler's quarantine.
	s.release(dead)
	// A failure from here on is NOT stashed: the segment is durably
	// renamed, so restoring the records to memory would duplicate them.
	return failpoint.Eval(failpoint.FlushAfterWrite)
}

// release hands dead records to the engine's recycler, if any.
func (s *flushSink[K]) release(dead []*store.Record) {
	if len(dead) > 0 && s.releaseDead != nil {
		s.releaseDead(dead)
	}
}

// writeStaged is the pipeline worker's write path: the same retry and
// evidence bookkeeping as the synchronous path, but no stash — the
// worker rolls failures back itself. wrote reports whether the segment
// became durable (a post-write failpoint can fail the batch without
// un-writing it).
func (s *flushSink[K]) writeStaged(recs []disk.FlushRecord) (fs disk.FlushStats, wrote bool, err error) {
	err = s.retry.Do(func() error {
		var werr error
		fs, werr = s.tier.FlushStaged(recs)
		return werr
	})
	if err != nil {
		return fs, false, err
	}
	s.mu.Lock()
	s.wrote = true
	s.mu.Unlock()
	return fs, true, failpoint.Eval(failpoint.FlushAfterWrite)
}

func (s *flushSink[K]) stash(recs []disk.FlushRecord) {
	s.mu.Lock()
	s.failed = append(s.failed, recs...)
	s.mu.Unlock()
}

// takeFailed returns and clears the batches that never reached the tier.
func (s *flushSink[K]) takeFailed() []disk.FlushRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.failed
	s.failed = nil
	return recs
}

// tookWrite reports (and resets) whether a tier write succeeded since
// the last call — the evidence a flush cycle needs before clearing
// degraded mode.
func (s *flushSink[K]) tookWrite() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.wrote
	s.wrote = false
	return w
}

// restoreEvicted rolls a failed eviction back into memory: records the
// sink could not persist are re-stored and re-indexed (they are still
// WAL-covered, so a crash loses nothing either way), and records that
// stayed memory-resident (partial flushes) lose their on-disk mark so a
// later flush writes them again. Callers must hold flushMu.
func (e *Engine[K]) restoreEvicted(failed []disk.FlushRecord) {
	if len(failed) == 0 {
		return
	}
	var recs []*store.Record
	var recKeys [][]K
	unmarked := 0
	for _, fr := range failed {
		if rec := e.store.Get(fr.MB.ID); rec != nil {
			rec.UnmarkOnDisk()
			unmarked++
			continue
		}
		keys := e.cfg.KeysOf(fr.MB)
		if len(keys) == 0 {
			continue
		}
		rec := e.newRecord(fr.MB, fr.Score)
		e.store.Put(rec)
		e.mem.AddData(rec.Bytes)
		for _, key := range keys {
			e.idx.Insert(key, rec)
		}
		recs = append(recs, rec)
		recKeys = append(recKeys, keys)
	}
	if len(recs) > 0 {
		e.pol.OnIngest(recs, recKeys)
	}
	slog.Warn("engine: flush failed, eviction rolled back into memory",
		"restored", len(recs), "unmarked", unmarked)
}

// enterDegraded flips the engine into degraded read-only mode and
// journals the transition. On the transition edge the flight recorder
// is dumped to the tier directory: the rings hold the WAL, flush and
// disk events that led here, which is exactly the evidence an incident
// review needs.
func (e *Engine[K]) enterDegraded(cause error) {
	e.degradedReason.Store(cause.Error())
	if e.degraded.CompareAndSwap(false, true) {
		slog.Error("engine: entering degraded read-only mode", "cause", cause)
		now := time.Now()
		e.journal.Begin(e.pol.Name(), flushlog.TriggerDegraded, 0, e.mem.Used(), now)
		e.journal.End(0, e.mem.Used(), 0, cause)
		e.bbox.Record(blackbox.SubState, blackbox.EvDegradedEnter, 0, 0, 0)
		e.dumpBlackbox("degraded")
	}
}

// exitDegraded leaves degraded mode after evidence the tier accepts
// writes again (a successful flush or readiness probe). Callers must
// hold flushMu so the journal writes stay serialized.
func (e *Engine[K]) exitDegraded(via string) {
	if e.degraded.CompareAndSwap(true, false) {
		slog.Info("engine: leaving degraded mode", "via", via)
		now := time.Now()
		e.journal.Begin(e.pol.Name(), flushlog.TriggerDegradedClear, 0, e.mem.Used(), now)
		e.journal.End(0, e.mem.Used(), 0, nil)
		e.bbox.Record(blackbox.SubState, blackbox.EvDegradedClear, 0, 0, 0)
	}
}

// Degraded reports whether the engine is in degraded read-only mode,
// with the error message that put it there.
func (e *Engine[K]) Degraded() (bool, string) {
	if !e.degraded.Load() {
		return false, ""
	}
	reason, _ := e.degradedReason.Load().(string)
	return true, reason
}
