package engine

import (
	"fmt"
	"testing"

	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/core"
	"kflushing/internal/flushlog"
	"kflushing/internal/policy"
	"kflushing/internal/query"
	"kflushing/internal/trace"
	"kflushing/internal/types"
)

func TestSearchTracedHit(t *testing.T) {
	eng := newKeywordEngine(t, 1<<30, core.New[string](), false)
	for i := 1; i <= 10; i++ {
		ingest(t, eng, int64(i), "hot")
	}
	tr := trace.New()
	res, err := eng.Search(query.Request[string]{Keys: []string{"hot"}, Op: query.OpSingle, K: 5, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !res.MemoryHit || !tr.MemoryHit {
		t.Fatalf("expected memory hit: res=%v trace=%v", res.MemoryHit, tr.MemoryHit)
	}
	if tr.Disk != nil {
		t.Fatal("hit query should not carry a disk probe")
	}
	if tr.Op != "single" || tr.K != 5 || len(tr.Keys) != 1 || tr.Keys[0] != "hot" {
		t.Fatalf("trace header wrong: op=%q k=%d keys=%v", tr.Op, tr.K, tr.Keys)
	}
	if len(tr.Entries) != 1 || !tr.Entries[0].Found || !tr.Entries[0].KFilled {
		t.Fatalf("entry probe wrong: %+v", tr.Entries)
	}
	if tr.Entries[0].Postings != 10 {
		t.Fatalf("entry postings = %d, want 10", tr.Entries[0].Postings)
	}
	if tr.Items != len(res.Items) {
		t.Fatalf("trace items %d != result items %d", tr.Items, len(res.Items))
	}
	names := map[string]bool{}
	for _, st := range tr.Stages {
		names[st.Name] = true
		if st.Nanos < 0 {
			t.Fatalf("negative stage timing: %+v", st)
		}
	}
	if !names["memory"] || !names["total"] {
		t.Fatalf("missing stages, got %v", tr.Stages)
	}
}

func TestSearchTracedMissNamesSegments(t *testing.T) {
	eng := newKeywordEngine(t, 1<<30, core.New[string](), false)
	for i := 1; i <= 10; i++ {
		ingest(t, eng, int64(i), "hot")
	}
	// Under-filled entry: 2 < k postings guarantees a memory miss.
	ingest(t, eng, 11, "cold")
	ingest(t, eng, 12, "cold")
	if _, err := eng.FlushNow(); err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	res, err := eng.Search(query.Request[string]{Keys: []string{"cold"}, Op: query.OpSingle, K: 5, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryHit {
		t.Fatal("under-filled entry should miss")
	}
	if tr.Disk == nil {
		t.Fatal("miss trace carries no disk probe")
	}
	if len(tr.Disk.Segments) == 0 {
		t.Fatal("disk probe names no segments")
	}
	for _, sp := range tr.Disk.Segments {
		if sp.Segment == "" {
			t.Fatalf("segment probe without a name: %+v", sp)
		}
		if sp.Pruned {
			continue
		}
		if sp.BloomProbes == 0 && sp.DirProbes == 0 {
			t.Fatalf("segment %s probed nothing", sp.Segment)
		}
	}
	if tr.Disk.CacheHits+tr.Disk.CacheMisses == 0 && tr.Disk.RecordsRead == 0 && tr.Disk.Items > 0 {
		t.Fatal("disk returned items without any recorded reads")
	}
	names := map[string]bool{}
	for _, st := range tr.Stages {
		names[st.Name] = true
	}
	if !names["memory"] || !names["disk"] || !names["total"] {
		t.Fatalf("missing stages, got %v", tr.Stages)
	}

	// The traced path must return the same answer as the untraced one.
	plain, err := eng.Search(query.Request[string]{Keys: []string{"cold"}, Op: query.OpSingle, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Items) != len(res.Items) {
		t.Fatalf("traced answer %d items, untraced %d", len(res.Items), len(plain.Items))
	}
}

func TestJournalRecordsKFlushingCycle(t *testing.T) {
	eng := newKeywordEngine(t, 1<<30, core.New[string](), false)
	for i := 1; i <= 50; i++ {
		ingest(t, eng, int64(i), fmt.Sprintf("k%d", i%7))
	}
	if _, err := eng.FlushNow(); err != nil {
		t.Fatal(err)
	}
	evs := eng.Journal().Events()
	if len(evs) == 0 {
		t.Fatal("journal recorded no cycles")
	}
	ev := evs[len(evs)-1]
	if ev.Policy != "kflushing" {
		t.Fatalf("policy = %q", ev.Policy)
	}
	if ev.Trigger != flushlog.TriggerManual {
		t.Fatalf("trigger = %q, want %q", ev.Trigger, flushlog.TriggerManual)
	}
	if len(ev.Phases) == 0 {
		t.Fatal("cycle has no phases")
	}
	if ev.Phases[0].Phase != 1 || ev.Phases[0].Name != "regular" {
		t.Fatalf("first phase = %+v", ev.Phases[0])
	}
	var phaseFreed int64
	for _, ph := range ev.Phases {
		if ph.Nanos < 0 || ph.Victims < 0 {
			t.Fatalf("bad phase %+v", ph)
		}
		phaseFreed += ph.Freed
	}
	if phaseFreed != ev.Freed {
		t.Fatalf("phase freed sum %d != cycle freed %d", phaseFreed, ev.Freed)
	}
	if ev.Satisfied != (ev.Freed >= ev.Target) {
		t.Fatalf("satisfied flag inconsistent: %+v", ev)
	}
	if ev.Seq == 0 || ev.Start == 0 {
		t.Fatalf("unsealed event published: %+v", ev)
	}
}

func TestJournalRecordsBudgetTrigger(t *testing.T) {
	eng := newKeywordEngine(t, 32<<10, core.New[string](), false)
	for i := 1; i <= 500; i++ {
		ingest(t, eng, int64(i), fmt.Sprintf("k%d", i%11))
	}
	var sawBudget bool
	for _, ev := range eng.Journal().Events() {
		if ev.Trigger == flushlog.TriggerBudget {
			sawBudget = true
		}
	}
	if !sawBudget {
		t.Fatal("no budget-triggered cycle in the journal")
	}
}

func TestJournalBaselinePhaseNames(t *testing.T) {
	cases := []struct {
		pol  policy.Policy[string]
		name string
	}{
		{policy.NewFIFO[string](8 << 10), "fifo-segments"},
		{policy.NewLRU[string](), "lru-tail"},
	}
	for _, tc := range cases {
		eng := newKeywordEngine(t, 1<<30, tc.pol, false)
		for i := 1; i <= 50; i++ {
			ingest(t, eng, int64(i), fmt.Sprintf("k%d", i%7))
		}
		if _, err := eng.FlushNow(); err != nil {
			t.Fatal(err)
		}
		evs := eng.Journal().Events()
		if len(evs) == 0 {
			t.Fatalf("%s: no journal events", tc.name)
		}
		ev := evs[len(evs)-1]
		if len(ev.Phases) != 1 || ev.Phases[0].Name != tc.name || ev.Phases[0].Phase != 0 {
			t.Fatalf("%s: phases = %+v", tc.name, ev.Phases)
		}
		if ev.Phases[0].Victims == 0 {
			t.Fatalf("%s: zero victims after flushing data", tc.name)
		}
	}
}

// BenchmarkSearchTraceDisabled measures the query hot path with tracing
// off (req.Trace == nil): the nil-guarded branches must add no
// allocations (run with -benchmem; allocs/op must match the pre-trace
// baseline).
func BenchmarkSearchTraceDisabled(b *testing.B) {
	eng := benchEngine(b)
	req := query.Request[string]{Keys: []string{"hot"}, Op: query.OpSingle, K: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Search(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchTraceEnabled is the comparison point: the same query
// with a live trace, paying the diagnostic allocations.
func BenchmarkSearchTraceEnabled(b *testing.B) {
	eng := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := query.Request[string]{Keys: []string{"hot"}, Op: query.OpSingle, K: 5, Trace: trace.New()}
		if _, err := eng.Search(req); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEngine(b *testing.B) *Engine[string] {
	b.Helper()
	eng, err := New(Config[string]{
		K:             5,
		MemoryBudget:  1 << 30,
		FlushFraction: 0.2,
		KeysOf:        attr.KeywordKeys,
		KeyHash:       attr.HashString,
		KeyLen:        attr.KeywordLen,
		EncodeKey:     attr.KeywordEncode,
		Clock:         clock.NewLogical(1, 1),
		DiskDir:       b.TempDir(),
		Policy:        core.New[string](),
		TrackOverK:    true,
		SyncFlush:     true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	for i := 1; i <= 200; i++ {
		key := fmt.Sprintf("k%d", i%13)
		if i%5 == 0 {
			key = "hot"
		}
		mb := &types.Microblog{Timestamp: types.Timestamp(i), Keywords: []string{key}, Text: "text"}
		if _, err := eng.Ingest(mb); err != nil {
			b.Fatal(err)
		}
	}
	return eng
}
