// Package flushlog is the flush audit journal: a fixed-size lock-free
// ring buffer of structured flush-cycle events. Every flush cycle —
// whatever the policy — records its trigger, byte target, per-phase
// victims/freed bytes/durations (with per-shard worker timings for the
// parallel kFlushing Phase 1), and whether the budget was satisfied.
//
// The journal answers the question aggregate counters cannot: what did
// the MOST RECENT flush cycles actually choose, and why. It is served
// at /debug/flushlog and summarized by `kflushctl flushlog`.
//
// Concurrency model: flush cycles are serialized by the engine's flush
// gate, so there is exactly one writer at a time; Begin/Phase/End need
// no writer-side locking beyond atomics. Readers (Events) run
// concurrently with writers and never block them: each ring slot is an
// atomic pointer to an immutable, published Event.
//
// A nil *Journal is the disabled state — every method is
// nil-receiver safe, a contract machine-checked by kfvet's nilrecv
// analyzer via the marker below.
//
//kfvet:nilsafe
package flushlog

import (
	"sync/atomic"
	"time"
)

// DefaultSize is the ring capacity used by the engine: enough to hold
// hours of flush history at production flush rates while staying under
// ~100 KiB of pointers.
const DefaultSize = 256

// Cycle triggers.
const (
	// TriggerBudget is an ingestion-driven flush: memory hit the budget.
	TriggerBudget = "budget"
	// TriggerManual is an explicit FlushNow call.
	TriggerManual = "manual"
	// TriggerRecovery is a flush after WAL replay overfilled the budget.
	TriggerRecovery = "recovery"
	// TriggerDegraded marks the engine entering degraded read-only mode
	// after a flush cycle failed persistently; the event's Err is the
	// cause. Not a flush cycle, but journaled so the audit trail shows
	// when and why ingestion stopped.
	TriggerDegraded = "degraded"
	// TriggerDegradedClear marks the engine leaving degraded mode after
	// a successful tier write or readiness probe.
	TriggerDegradedClear = "degraded-clear"
	// TriggerTuner marks an adaptive-memory-tuner adjustment: the
	// controller retuned the flush budget, watermark, or cache size
	// between flush cycles. Begin and End are written together; no
	// flushing happens under this trigger.
	TriggerTuner = "tuner"
	// TriggerPipeline marks the asynchronous completion (build + install
	// + release) of a batch a budget-triggered cycle enqueued on the
	// flush pipeline; the prepare half is the enqueueing cycle's event.
	TriggerPipeline = "pipeline"
)

// PhaseEvent describes one phase of a flush cycle. kFlushing records
// one per executed phase (1=regular, 2=aggressive, 3=forced); the
// single-phase baselines record exactly one with Phase 0.
type PhaseEvent struct {
	// Phase is the kFlushing phase number, or 0 for single-phase
	// policies (FIFO, LRU).
	Phase int `json:"phase"`
	// Name labels the phase ("regular", "aggressive", "forced",
	// "fifo-segments", "lru-tail").
	Name string `json:"name"`
	// Victims counts the phase's eviction units: index entries trimmed
	// (Phase 1), entries evicted (Phases 2-3), segments dropped (FIFO),
	// or records evicted (LRU).
	Victims int64 `json:"victims"`
	// Freed is the budget-relevant bytes the phase freed.
	Freed int64 `json:"freed_bytes"`
	// Nanos is the phase duration.
	Nanos int64 `json:"nanos"`
	// ShardNanos are per-worker durations when the phase fanned out
	// over a worker pool (parallel Phase 1), empty otherwise.
	ShardNanos []int64 `json:"shard_nanos,omitempty"`
}

// Event is one completed flush cycle.
type Event struct {
	// Seq is the journal-assigned cycle number, ascending from 1.
	Seq uint64 `json:"seq"`
	// Start is the cycle start time in Unix nanoseconds.
	Start int64 `json:"start_unix_nanos"`
	// Policy is the flushing policy that ran.
	Policy string `json:"policy"`
	// Trigger says why the cycle ran: "budget" (memory filled),
	// "manual" (FlushNow), or "recovery" (WAL replay overfilled).
	Trigger string `json:"trigger"`
	// Target is the requested bytes to free (budget B).
	Target int64 `json:"target_bytes"`
	// Freed is the budget-relevant bytes actually freed.
	Freed int64 `json:"freed_bytes"`
	// Satisfied reports Freed >= Target — the saturation signal of the
	// paper's Figure 5(a) regime when persistently false.
	Satisfied bool `json:"satisfied"`
	// Nanos is the whole-cycle duration.
	Nanos int64 `json:"nanos"`
	// MemBefore/MemAfter bracket the cycle's memory gauge.
	MemBefore int64 `json:"mem_before_bytes"`
	MemAfter  int64 `json:"mem_after_bytes"`
	// Err is the flush error, if any.
	Err string `json:"error,omitempty"`
	// Phases are the executed phases in order.
	Phases []PhaseEvent `json:"phases"`
	// Stages are the cycle's pipeline stage timings (prepare, build,
	// install, release) where they ran within this event; a cycle that
	// enqueued its batch records only prepare here, the rest appears on
	// the matching "pipeline" event.
	Stages []StageEvent `json:"stages,omitempty"`
}

// StageEvent is one pipeline stage timing within an Event.
type StageEvent struct {
	// Name is the stage ("prepare", "build", "install", "release").
	Name string `json:"name"`
	// Nanos is the stage duration.
	Nanos int64 `json:"nanos"`
}

// Journal is the ring. The zero value is not usable; use New. A nil
// *Journal is a valid no-op sink: every method is nil-receiver safe, so
// policies record events unconditionally.
type Journal struct {
	slots []atomic.Pointer[Event]
	seq   atomic.Uint64
	// cur is the open (in-progress) cycle. Only the single flushing
	// goroutine writes it; it is never exposed to readers until End
	// publishes it into the ring.
	cur atomic.Pointer[Event]
}

// New returns an empty journal holding the last size events (DefaultSize
// when size <= 0).
func New(size int) *Journal {
	if size <= 0 {
		size = DefaultSize
	}
	return &Journal{slots: make([]atomic.Pointer[Event], size)}
}

// Begin opens a cycle event. The caller must serialize flush cycles
// (the engine's flush gate does); a Begin without a matching End
// discards the open event on the next Begin. Nil-safe.
func (j *Journal) Begin(policy, trigger string, target, memBefore int64, start time.Time) {
	if j == nil {
		return
	}
	j.cur.Store(&Event{
		Start:     start.UnixNano(),
		Policy:    policy,
		Trigger:   trigger,
		Target:    target,
		MemBefore: memBefore,
	})
}

// Phase appends one phase record to the open cycle. Nil-safe; a Phase
// with no open cycle (policy driven directly in tests) is dropped.
func (j *Journal) Phase(pe PhaseEvent) {
	if j == nil {
		return
	}
	if ev := j.cur.Load(); ev != nil {
		ev.Phases = append(ev.Phases, pe)
	}
}

// Stage appends one pipeline stage timing to the open cycle. Nil-safe;
// a Stage with no open cycle is dropped.
func (j *Journal) Stage(name string, nanos int64) {
	if j == nil {
		return
	}
	if ev := j.cur.Load(); ev != nil {
		ev.Stages = append(ev.Stages, StageEvent{Name: name, Nanos: nanos})
	}
}

// End seals the open cycle and publishes it into the ring. Nil-safe.
func (j *Journal) End(freed, memAfter int64, d time.Duration, err error) {
	if j == nil {
		return
	}
	ev := j.cur.Swap(nil)
	if ev == nil {
		return
	}
	ev.Freed = freed
	ev.Satisfied = freed >= ev.Target
	ev.MemAfter = memAfter
	ev.Nanos = d.Nanoseconds()
	if err != nil {
		ev.Err = err.Error()
	}
	seq := j.seq.Add(1)
	ev.Seq = seq
	j.slots[(seq-1)%uint64(len(j.slots))].Store(ev)
}

// Len returns the number of cycles recorded so far (not capped by the
// ring size). Nil-safe.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	return int(j.seq.Load())
}

// Events returns the retained cycles oldest-first. The returned events
// are immutable snapshots; the slice is freshly allocated. Nil-safe.
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	n := len(j.slots)
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		if ev := j.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	// Slots wrap, so restore sequence order.
	sortBySeq(out)
	return out
}

// Last returns the most recent n cycles oldest-first (all when n <= 0).
// Nil-safe.
func (j *Journal) Last(n int) []Event {
	evs := j.Events()
	if n > 0 && len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// sortBySeq is an insertion sort: the ring is already sorted except for
// one rotation point, so this is O(n) in practice.
func sortBySeq(evs []Event) {
	for i := 1; i < len(evs); i++ {
		for k := i; k > 0 && evs[k].Seq < evs[k-1].Seq; k-- {
			evs[k], evs[k-1] = evs[k-1], evs[k]
		}
	}
}
