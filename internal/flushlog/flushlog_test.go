package flushlog

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func record(j *Journal, policy string, target, freed int64) {
	j.Begin(policy, TriggerBudget, target, 100, time.Unix(0, 1))
	j.Phase(PhaseEvent{Phase: 1, Name: "regular", Victims: 3, Freed: freed})
	j.End(freed, 100-freed, time.Millisecond, nil)
}

func TestJournalBasics(t *testing.T) {
	j := New(4)
	if j.Len() != 0 || len(j.Events()) != 0 {
		t.Fatal("new journal not empty")
	}
	record(j, "kflushing", 10, 20)
	evs := j.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	ev := evs[0]
	if ev.Seq != 1 || ev.Policy != "kflushing" || ev.Trigger != TriggerBudget {
		t.Fatalf("event header: %+v", ev)
	}
	if !ev.Satisfied || ev.Freed != 20 || ev.Target != 10 {
		t.Fatalf("budget accounting: %+v", ev)
	}
	if ev.MemBefore != 100 || ev.MemAfter != 80 {
		t.Fatalf("memory bracket: %+v", ev)
	}
	if len(ev.Phases) != 1 || ev.Phases[0].Name != "regular" || ev.Phases[0].Victims != 3 {
		t.Fatalf("phases: %+v", ev.Phases)
	}
}

func TestJournalUnsatisfiedAndError(t *testing.T) {
	j := New(4)
	j.Begin("lru", TriggerManual, 100, 50, time.Unix(0, 1))
	j.End(30, 20, time.Millisecond, errors.New("sink failed"))
	ev := j.Events()[0]
	if ev.Satisfied {
		t.Fatal("freed 30 < target 100 marked satisfied")
	}
	if ev.Err != "sink failed" {
		t.Fatalf("err = %q", ev.Err)
	}
}

func TestJournalRingWrapKeepsNewestInOrder(t *testing.T) {
	j := New(4)
	for i := 1; i <= 10; i++ {
		record(j, "kflushing", int64(i), int64(i))
	}
	if j.Len() != 10 {
		t.Fatalf("Len = %d, want 10", j.Len())
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("ring retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first)", i, ev.Seq, want)
		}
	}
	last := j.Last(2)
	if len(last) != 2 || last[0].Seq != 9 || last[1].Seq != 10 {
		t.Fatalf("Last(2) = %+v", last)
	}
}

func TestJournalOpenCycleInvisible(t *testing.T) {
	j := New(4)
	j.Begin("fifo", TriggerBudget, 10, 10, time.Unix(0, 1))
	j.Phase(PhaseEvent{Name: "fifo-segments"})
	if len(j.Events()) != 0 {
		t.Fatal("open cycle visible to readers before End")
	}
	j.End(10, 0, time.Millisecond, nil)
	if len(j.Events()) != 1 {
		t.Fatal("sealed cycle not published")
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	j.Begin("x", TriggerBudget, 1, 1, time.Unix(0, 1))
	j.Phase(PhaseEvent{})
	j.End(1, 0, time.Millisecond, nil)
	if j.Len() != 0 || j.Events() != nil || j.Last(5) != nil {
		t.Fatal("nil journal not a no-op")
	}
}

func TestJournalPhaseWithoutBeginDropped(t *testing.T) {
	j := New(4)
	j.Phase(PhaseEvent{Name: "stray"})
	record(j, "kflushing", 1, 1)
	if phases := j.Events()[0].Phases; len(phases) != 1 || phases[0].Name != "regular" {
		t.Fatalf("stray phase leaked into the next cycle: %+v", phases)
	}
}

func TestJournalConcurrentReaders(t *testing.T) {
	j := New(8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ev := range j.Events() {
					if ev.Seq == 0 {
						t.Error("reader saw unsealed event")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		record(j, "kflushing", int64(i), int64(i))
	}
	close(stop)
	wg.Wait()
}
