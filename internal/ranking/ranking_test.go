package ranking

import (
	"testing"
	"testing/quick"

	"kflushing/internal/types"
)

func TestTemporalOrdersByRecency(t *testing.T) {
	r := Temporal{}
	old := &types.Microblog{Timestamp: 1}
	new_ := &types.Microblog{Timestamp: 2}
	if r.Score(new_) <= r.Score(old) {
		t.Fatal("newer record must score higher")
	}
	if r.Name() != "temporal" {
		t.Fatal("name")
	}
}

func TestPopularityDominatesTimestamp(t *testing.T) {
	r := Popularity{}
	popularOld := &types.Microblog{Timestamp: 1, Followers: 1000}
	obscureNew := &types.Microblog{Timestamp: 1 << 40, Followers: 1}
	if r.Score(popularOld) <= r.Score(obscureNew) {
		t.Fatal("follower count must dominate")
	}
	// Ties broken by recency.
	a := &types.Microblog{Timestamp: 1, Followers: 10}
	b := &types.Microblog{Timestamp: 2, Followers: 10}
	if r.Score(b) <= r.Score(a) {
		t.Fatal("tie not broken by recency")
	}
}

func TestWeightedExtremes(t *testing.T) {
	recent := &types.Microblog{Timestamp: 100, Followers: 1}
	popular := &types.Microblog{Timestamp: 1, Followers: 100}
	wRecency := Weighted{Alpha: 1, TimeScale: 100}
	if wRecency.Score(recent) <= wRecency.Score(popular) {
		t.Fatal("alpha=1 must rank by recency")
	}
	wPop := Weighted{Alpha: 0, TimeScale: 100}
	if wPop.Score(popular) <= wPop.Score(recent) {
		t.Fatal("alpha=0 must rank by popularity")
	}
	if (Weighted{}).Name() != "weighted" {
		t.Fatal("name")
	}
}

// Property: all rankers are pure — same input, same score.
func TestScoresDeterministic(t *testing.T) {
	rankers := []Ranker{Temporal{}, Popularity{}, Weighted{Alpha: 0.5, TimeScale: 1000}}
	f := func(ts int64, followers uint32) bool {
		m := &types.Microblog{Timestamp: types.Timestamp(ts), Followers: followers}
		for _, r := range rankers {
			if r.Score(m) != r.Score(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
