// Package ranking defines the ranking functions that order top-k query
// answers.
//
// The paper's extensibility argument (Section IV-B) requires only that a
// microblog's ranking score be computable at arrival time, before any
// query sees it. Every Ranker here satisfies that: the engine scores each
// record once at ingestion and index postings stay sorted by that score,
// so the top-k of any entry is always its k highest-scored postings.
package ranking

import "kflushing/internal/types"

// Ranker computes a microblog's ranking score at arrival. Higher scores
// rank earlier in query answers. Implementations must be pure functions
// of the record and safe for concurrent use.
type Ranker interface {
	// Score returns the ranking score of m.
	Score(m *types.Microblog) float64
	// Name identifies the ranker in stats and experiment output.
	Name() string
}

// Temporal ranks by recency — the paper's default ("most recent k").
type Temporal struct{}

// Score returns the arrival timestamp, so newer records rank higher.
func (Temporal) Score(m *types.Microblog) float64 { return float64(m.Timestamp) }

// Name implements Ranker.
func (Temporal) Name() string { return "temporal" }

// Popularity ranks by the posting user's follower count, breaking ties
// by recency. It models Twitter's "Top" ranking mode.
type Popularity struct{}

// Score combines follower count (dominant) with the timestamp (tiebreak).
func (Popularity) Score(m *types.Microblog) float64 {
	return float64(m.Followers)*1e12 + float64(m.Timestamp)
}

// Name implements Ranker.
func (Popularity) Name() string { return "popularity" }

// Weighted blends recency and popularity with a tunable weight, modeling
// the hybrid relevance functions the paper cites (time + popularity +
// textual relevance). Alpha is the weight of recency in [0,1].
type Weighted struct {
	// Alpha is the recency weight; 1 reduces to Temporal, 0 to pure
	// popularity.
	Alpha float64
	// TimeScale converts timestamps into the popularity scale; it
	// should approximate the stream duration in timestamp units.
	TimeScale float64
}

// Score implements Ranker.
func (w Weighted) Score(m *types.Microblog) float64 {
	ts := w.TimeScale
	if ts <= 0 {
		ts = 1
	}
	return w.Alpha*float64(m.Timestamp)/ts + (1-w.Alpha)*float64(m.Followers)
}

// Name implements Ranker.
func (w Weighted) Name() string { return "weighted" }
