// Package metrics collects the performance measures the paper evaluates:
// memory hit ratio (the headline metric), digestion counts, flushing
// activity, and query latencies split by hit/miss.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of power-of-two histogram buckets. The span
// covers 1 ns up to 2^48 ns (~3.3 days); longer observations clamp into
// the last bucket.
const HistBuckets = 48

// Histogram is a lock-free power-of-two latency histogram. Bucket i
// counts observations in [2^i, 2^(i+1)) nanoseconds.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one duration. Sub-nanosecond durations count as 1 ns.
func (h *Histogram) Observe(d time.Duration) {
	n := d.Nanoseconds()
	if n < 1 {
		n = 1
	}
	// 63-LeadingZeros64 is floor(log2 n), so n lands in [2^b, 2^(b+1))
	// exactly as the bucket contract documents.
	b := 63 - bits.LeadingZeros64(uint64(n))
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the cumulative observed nanoseconds: the cost signal the
// adaptive memory tuner samples, without the price of a full snapshot.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observation, or 0 with no data.
func (h *Histogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0,1]) using bucket upper edges.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return time.Duration(int64(1) << uint(i+1))
		}
	}
	return time.Duration(int64(1) << uint(len(h.buckets)))
}

// HistogramSnapshot is a point-in-time copy of a histogram, the raw
// material for the Prometheus cumulative _bucket/_sum/_count series.
// Counts[i] is the (non-cumulative) count of bucket i, whose upper bound
// is 2^(i+1) nanoseconds; Sum is in nanoseconds.
type HistogramSnapshot struct {
	Counts [HistBuckets]int64 `json:"-"`
	Count  int64              `json:"-"`
	Sum    int64              `json:"-"`
}

// BucketUpperNanos returns bucket i's exclusive upper bound in
// nanoseconds (the Prometheus `le` edge).
func BucketUpperNanos(i int) int64 { return int64(1) << uint(i+1) }

// Snap copies the histogram. The copy is not atomic across buckets —
// concurrent observations may land between bucket loads — so Count is
// derived from the loaded buckets rather than the live counter: the
// +Inf cumulative bucket and _count then always agree, which the
// Prometheus exposition requires.
func (h *Histogram) Snap() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
		s.Count += s.Counts[i]
	}
	s.Sum = h.sum.Load()
	return s
}

// FlushPhases is the number of instrumented flushing phases: kFlushing's
// regular, aggressive, and forced phases (Sections III-A..C). Phase i of
// the paper maps to index i-1.
const FlushPhases = 3

// FlushStages is the number of pipeline stages a flush passes through:
// prepare (victim selection + eviction under the flush gate), build
// (segment encode + staged write + fsync, off the gate), install
// (atomic rename + manifest commit + level append), release (completion
// bookkeeping, or eviction rollback on failure).
const FlushStages = 4

// Stage indices for ObserveStage.
const (
	StagePrepare = iota
	StageBuild
	StageInstall
	StageRelease
)

// StageNames labels the pipeline stages, index-aligned with the Stage*
// constants and the StageLatency histograms.
var StageNames = [FlushStages]string{"prepare", "build", "install", "release"}

// QueryStages is the number of instrumented query stages: parse (HTTP
// parameter decoding in the server), index (memory index gather over the
// query keys), heap (the in-memory merge — top-k heap, OR merge, or AND
// intersection), disk (tier fallback search plus the memory/disk merge;
// zero observations while every query hits memory).
const QueryStages = 4

// Query stage indices for ObserveQueryStage.
const (
	QStageParse = iota
	QStageIndex
	QStageHeap
	QStageDisk
)

// QueryStageNames labels the query stages, index-aligned with the
// QStage* constants and the QueryStageLatency histograms.
var QueryStageNames = [QueryStages]string{"parse", "index", "heap", "disk"}

// Registry aggregates one engine's counters. All methods are safe for
// concurrent use.
type Registry struct {
	Ingested atomic.Int64
	// IngestBatches counts batched ingestion calls (a per-record Ingest
	// is a batch of one), so batch amortization is observable.
	IngestBatches atomic.Int64

	Queries atomic.Int64
	Hits    atomic.Int64
	Misses  atomic.Int64

	// Per-operator hit/miss breakdown: single, or, and.
	SingleHits, SingleMisses atomic.Int64
	OrHits, OrMisses         atomic.Int64
	AndHits, AndMisses       atomic.Int64

	Flushes       atomic.Int64
	FlushedBytes  atomic.Int64
	FlushedIntoOp atomic.Int64 // cumulative records handed to the sink

	// Disk fallback activity: DiskSearches counts searches actually
	// executed against the disk tier; DiskSearchesCoalesced counts
	// concurrent identical misses that shared an in-flight search's
	// result instead of issuing their own.
	DiskSearches          atomic.Int64
	DiskSearchesCoalesced atomic.Int64

	// FlushLatency observes whole flush cycles, every policy.
	FlushLatency Histogram
	// PhaseLatency and PhaseFreed break a kFlushing flush down by phase
	// (index = phase-1), making the shard-parallel Phase 1 speedup and
	// each phase's contribution observable at /metrics.
	PhaseLatency [FlushPhases]Histogram
	PhaseFreed   [FlushPhases]atomic.Int64

	// StageLatency breaks a flush down by pipeline stage (index = the
	// Stage* constants): prepare runs under the flush gate, build and
	// install on the tier, release on completion.
	StageLatency [FlushStages]Histogram

	// QueryStageLatency attributes query latency to its stages (index =
	// the QStage* constants): where a slow query actually spent its time,
	// without requiring trace=1.
	QueryStageLatency [QueryStages]Histogram

	// Flush pipeline activity: PipelineDepth is the current number of
	// evicted batches queued or building (a gauge); PipelineEnqueued
	// counts batches handed to the background builder; PipelineFallbacks
	// counts batches written synchronously because the queue was full
	// (or the pipeline disabled mid-flight).
	PipelineDepth     atomic.Int64
	PipelineEnqueued  atomic.Int64
	PipelineFallbacks atomic.Int64

	HitLatency  Histogram
	MissLatency Histogram
}

// ObservePhase records one kFlushing phase execution: its duration and
// the budget-relevant bytes it freed. phase is 1-based; out-of-range
// phases are ignored.
func (r *Registry) ObservePhase(phase int, d time.Duration, freed int64) {
	if phase < 1 || phase > FlushPhases {
		return
	}
	r.PhaseLatency[phase-1].Observe(d)
	r.PhaseFreed[phase-1].Add(freed)
}

// ObserveStage records one flush pipeline stage execution. stage is one
// of the Stage* constants; out-of-range stages are ignored.
func (r *Registry) ObserveStage(stage int, d time.Duration) {
	if stage < 0 || stage >= FlushStages {
		return
	}
	r.StageLatency[stage].Observe(d)
}

// ObserveQueryStage records one query stage execution. stage is one of
// the QStage* constants; out-of-range stages are ignored.
func (r *Registry) ObserveQueryStage(stage int, d time.Duration) {
	if stage < 0 || stage >= QueryStages {
		return
	}
	r.QueryStageLatency[stage].Observe(d)
}

// HitRatio returns the fraction of queries answered entirely from
// memory, in [0,1]; 0 with no queries.
func (r *Registry) HitRatio() float64 {
	q := r.Queries.Load()
	if q == 0 {
		return 0
	}
	return float64(r.Hits.Load()) / float64(q)
}

// RecordQuery tallies one query outcome for the given operator hit/miss
// counters.
func (r *Registry) RecordQuery(op string, hit bool, d time.Duration) {
	r.Queries.Add(1)
	if hit {
		r.Hits.Add(1)
		r.HitLatency.Observe(d)
	} else {
		r.Misses.Add(1)
		r.MissLatency.Observe(d)
	}
	switch op {
	case "single":
		if hit {
			r.SingleHits.Add(1)
		} else {
			r.SingleMisses.Add(1)
		}
	case "or":
		if hit {
			r.OrHits.Add(1)
		} else {
			r.OrMisses.Add(1)
		}
	case "and":
		if hit {
			r.AndHits.Add(1)
		} else {
			r.AndMisses.Add(1)
		}
	}
}

// PhaseSnapshot summarizes one flushing phase's activity.
type PhaseSnapshot struct {
	Runs       int64
	FreedBytes int64
	Mean       time.Duration
	P99        time.Duration
	// Hist carries the full phase-latency distribution for the
	// Prometheus exposition; excluded from /stats JSON.
	Hist HistogramSnapshot `json:"-"`
}

// Snapshot is a point-in-time copy of the registry for reporting.
type Snapshot struct {
	Ingested      int64
	IngestBatches int64
	Queries       int64
	Hits          int64
	Misses        int64
	HitRatio      float64
	SingleHits    int64
	SingleMisses  int64
	OrHits        int64
	OrMisses      int64
	AndHits       int64
	AndMisses     int64
	Flushes       int64
	FlushedBytes  int64
	// DiskSearches/DiskSearchesCoalesced split miss-path disk activity
	// into executed searches and coalesced duplicate waiters.
	DiskSearches          int64
	DiskSearchesCoalesced int64
	MeanFlush             time.Duration
	P99Flush              time.Duration
	// Phases breaks flushing down by kFlushing phase (index = phase-1);
	// all-zero under FIFO and LRU, which have no phases.
	Phases [FlushPhases]PhaseSnapshot
	// Stages breaks flushing down by pipeline stage (index = the Stage*
	// constants; names in StageNames).
	Stages [FlushStages]PhaseSnapshot
	// QueryStages attributes query latency by stage (index = the QStage*
	// constants; names in QueryStageNames).
	QueryStages [QueryStages]PhaseSnapshot
	// Pipeline activity: current queue depth, total batches built in the
	// background, total synchronous fallbacks.
	PipelineDepth     int64
	PipelineEnqueued  int64
	PipelineFallbacks int64
	MeanHit           time.Duration
	MeanMiss          time.Duration
	P99Hit            time.Duration
	P99Miss           time.Duration

	// Full latency distributions for the Prometheus histogram series
	// (_bucket/_sum/_count); excluded from /stats JSON, where the
	// mean/p99 summaries above remain the human-readable view.
	FlushHist HistogramSnapshot `json:"-"`
	HitHist   HistogramSnapshot `json:"-"`
	MissHist  HistogramSnapshot `json:"-"`
}

// Snap returns a snapshot of all counters.
func (r *Registry) Snap() Snapshot {
	s := Snapshot{
		Ingested:              r.Ingested.Load(),
		IngestBatches:         r.IngestBatches.Load(),
		Queries:               r.Queries.Load(),
		Hits:                  r.Hits.Load(),
		Misses:                r.Misses.Load(),
		HitRatio:              r.HitRatio(),
		SingleHits:            r.SingleHits.Load(),
		SingleMisses:          r.SingleMisses.Load(),
		OrHits:                r.OrHits.Load(),
		OrMisses:              r.OrMisses.Load(),
		AndHits:               r.AndHits.Load(),
		AndMisses:             r.AndMisses.Load(),
		Flushes:               r.Flushes.Load(),
		FlushedBytes:          r.FlushedBytes.Load(),
		DiskSearches:          r.DiskSearches.Load(),
		DiskSearchesCoalesced: r.DiskSearchesCoalesced.Load(),
		MeanFlush:             r.FlushLatency.Mean(),
		P99Flush:              r.FlushLatency.Quantile(0.99),
		MeanHit:               r.HitLatency.Mean(),
		MeanMiss:              r.MissLatency.Mean(),
		P99Hit:                r.HitLatency.Quantile(0.99),
		P99Miss:               r.MissLatency.Quantile(0.99),
		FlushHist:             r.FlushLatency.Snap(),
		HitHist:               r.HitLatency.Snap(),
		MissHist:              r.MissLatency.Snap(),
	}
	for i := range s.Phases {
		s.Phases[i] = PhaseSnapshot{
			Runs:       r.PhaseLatency[i].Count(),
			FreedBytes: r.PhaseFreed[i].Load(),
			Mean:       r.PhaseLatency[i].Mean(),
			P99:        r.PhaseLatency[i].Quantile(0.99),
			Hist:       r.PhaseLatency[i].Snap(),
		}
	}
	for i := range s.Stages {
		s.Stages[i] = PhaseSnapshot{
			Runs: r.StageLatency[i].Count(),
			Mean: r.StageLatency[i].Mean(),
			P99:  r.StageLatency[i].Quantile(0.99),
			Hist: r.StageLatency[i].Snap(),
		}
	}
	for i := range s.QueryStages {
		s.QueryStages[i] = PhaseSnapshot{
			Runs: r.QueryStageLatency[i].Count(),
			Mean: r.QueryStageLatency[i].Mean(),
			P99:  r.QueryStageLatency[i].Quantile(0.99),
			Hist: r.QueryStageLatency[i].Snap(),
		}
	}
	s.PipelineDepth = r.PipelineDepth.Load()
	s.PipelineEnqueued = r.PipelineEnqueued.Load()
	s.PipelineFallbacks = r.PipelineFallbacks.Load()
	return s
}
