package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Nanosecond)
	h.Observe(1 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 100*time.Nanosecond || mean > time.Millisecond {
		t.Fatalf("Mean = %v", mean)
	}
	// Median bucket upper bound must be near 100ns (within 2x).
	if q := h.Quantile(0.5); q < 100*time.Nanosecond || q > 400*time.Nanosecond {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(1.0); q < time.Millisecond {
		t.Fatalf("p100 = %v", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramSubNanosecond(t *testing.T) {
	var h Histogram
	h.Observe(0) // clamped to 1ns
	if h.Count() != 1 {
		t.Fatal("zero duration dropped")
	}
}

func TestRecordQueryBreakdown(t *testing.T) {
	var r Registry
	r.RecordQuery("single", true, time.Microsecond)
	r.RecordQuery("single", false, time.Millisecond)
	r.RecordQuery("or", true, time.Microsecond)
	r.RecordQuery("and", false, time.Millisecond)
	s := r.Snap()
	if s.Queries != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("totals: %+v", s)
	}
	if s.SingleHits != 1 || s.SingleMisses != 1 || s.OrHits != 1 || s.AndMisses != 1 {
		t.Fatalf("breakdown: %+v", s)
	}
	if s.HitRatio != 0.5 {
		t.Fatalf("HitRatio = %v", s.HitRatio)
	}
	if s.MeanHit == 0 || s.MeanMiss == 0 || s.P99Hit == 0 {
		t.Fatalf("latency summary empty: %+v", s)
	}
}

func TestHitRatioNoQueries(t *testing.T) {
	var r Registry
	if r.HitRatio() != 0 {
		t.Fatal("hit ratio with no queries")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(hit bool) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.RecordQuery("single", hit, time.Microsecond)
			}
		}(w%2 == 0)
	}
	wg.Wait()
	s := r.Snap()
	if s.Queries != 8000 || s.Hits != 4000 || s.Misses != 4000 {
		t.Fatalf("concurrent totals: %+v", s)
	}
}

func TestHistogramBucketContract(t *testing.T) {
	// Bucket i must hold observations in [2^i, 2^(i+1)) nanoseconds.
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{1, 0},                 // 1ns -> [1,2)
		{2, 1},                 // 2ns -> [2,4)
		{3, 1},                 // 3ns -> [2,4)
		{4, 2},                 // 4ns -> [4,8)
		{1023, 9},              // just under 2^10
		{1024, 10},             // exactly 2^10
		{time.Microsecond, 9},  // 1000ns -> [512,1024)
		{time.Millisecond, 19}, // 1e6ns -> [2^19, 2^20)
		{time.Second, 29},      // 1e9ns -> [2^29, 2^30)
	}
	for _, tc := range cases {
		var h Histogram
		h.Observe(tc.d)
		s := h.Snap()
		for i, c := range s.Counts {
			want := int64(0)
			if i == tc.bucket {
				want = 1
			}
			if c != want {
				t.Fatalf("Observe(%dns): bucket %d = %d, want bucket %d occupied", tc.d.Nanoseconds(), i, c, tc.bucket)
			}
		}
	}
}

func TestHistogramClampsToLastBucket(t *testing.T) {
	var h Histogram
	h.Observe(time.Duration(1) << 62) // far beyond 2^48ns
	s := h.Snap()
	if s.Counts[HistBuckets-1] != 1 {
		t.Fatal("oversized observation not clamped into the last bucket")
	}
}

func TestBucketUpperNanos(t *testing.T) {
	if BucketUpperNanos(0) != 2 || BucketUpperNanos(9) != 1024 {
		t.Fatalf("edges: %d %d", BucketUpperNanos(0), BucketUpperNanos(9))
	}
	for i := 1; i < HistBuckets; i++ {
		if BucketUpperNanos(i) != 2*BucketUpperNanos(i-1) {
			t.Fatalf("edges not doubling at %d", i)
		}
	}
}

func TestSnapCountMatchesBuckets(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snap()
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if s.Count != sum {
		t.Fatalf("Snap.Count %d != bucket sum %d", s.Count, sum)
	}
	if s.Count != h.Count() {
		t.Fatalf("Snap.Count %d != live count %d (quiescent)", s.Count, h.Count())
	}
	if s.Sum <= 0 {
		t.Fatal("Snap.Sum not positive")
	}
}

func TestSnapshotHistsExcludedFromJSON(t *testing.T) {
	var r Registry
	r.FlushLatency.Observe(time.Millisecond)
	b, err := json.Marshal(r.Snap())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "Counts") {
		t.Fatalf("histogram snapshot leaked into JSON: %s", b)
	}
}
