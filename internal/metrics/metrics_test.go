package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	h.Observe(100 * time.Nanosecond)
	h.Observe(100 * time.Nanosecond)
	h.Observe(1 * time.Millisecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	mean := h.Mean()
	if mean < 100*time.Nanosecond || mean > time.Millisecond {
		t.Fatalf("Mean = %v", mean)
	}
	// Median bucket upper bound must be near 100ns (within 2x).
	if q := h.Quantile(0.5); q < 100*time.Nanosecond || q > 400*time.Nanosecond {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(1.0); q < time.Millisecond {
		t.Fatalf("p100 = %v", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramSubNanosecond(t *testing.T) {
	var h Histogram
	h.Observe(0) // clamped to 1ns
	if h.Count() != 1 {
		t.Fatal("zero duration dropped")
	}
}

func TestRecordQueryBreakdown(t *testing.T) {
	var r Registry
	r.RecordQuery("single", true, time.Microsecond)
	r.RecordQuery("single", false, time.Millisecond)
	r.RecordQuery("or", true, time.Microsecond)
	r.RecordQuery("and", false, time.Millisecond)
	s := r.Snap()
	if s.Queries != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("totals: %+v", s)
	}
	if s.SingleHits != 1 || s.SingleMisses != 1 || s.OrHits != 1 || s.AndMisses != 1 {
		t.Fatalf("breakdown: %+v", s)
	}
	if s.HitRatio != 0.5 {
		t.Fatalf("HitRatio = %v", s.HitRatio)
	}
	if s.MeanHit == 0 || s.MeanMiss == 0 || s.P99Hit == 0 {
		t.Fatalf("latency summary empty: %+v", s)
	}
}

func TestHitRatioNoQueries(t *testing.T) {
	var r Registry
	if r.HitRatio() != 0 {
		t.Fatal("hit ratio with no queries")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	var r Registry
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(hit bool) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.RecordQuery("single", hit, time.Microsecond)
			}
		}(w%2 == 0)
	}
	wg.Wait()
	s := r.Snap()
	if s.Queries != 8000 || s.Hits != 4000 || s.Misses != 4000 {
		t.Fatalf("concurrent totals: %+v", s)
	}
}
