package blackbox

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// DumpFile is the on-disk form of a flight-recorder snapshot.
type DumpFile struct {
	Reason string `json:"reason"`
	// EpochUnixNanos anchors event Nanos to wall time.
	EpochUnixNanos   int64   `json:"epoch_unix_nanos"`
	WrittenUnixNanos int64   `json:"written_unix_nanos"`
	Events           []Event `json:"events"`
}

// Dump writes a sequence-ordered snapshot of every ring to a new file
// in dir (blackbox-<reason>-<unixnanos>.json) and returns its path. It
// is called on degraded-mode entry and from panic handlers, so it never
// panics itself and reports failure by error only.
func (r *Recorder) Dump(dir, reason string) (string, error) {
	if r == nil {
		return "", nil
	}
	now := time.Now()
	df := DumpFile{
		Reason:           reason,
		EpochUnixNanos:   EpochUnixNanos(),
		WrittenUnixNanos: now.UnixNano(),
		Events:           r.Events(),
	}
	buf, err := json.MarshalIndent(df, "", "  ")
	if err != nil {
		return "", fmt.Errorf("blackbox: encode dump: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("blackbox-%s-%d.json", reason, now.UnixNano()))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return "", fmt.Errorf("blackbox: write dump: %w", err)
	}
	return path, nil
}

// The dumper registry lets a process-level panic handler flush every
// live recorder without holding references to them: each engine
// registers a dump closure at construction and unregisters at Close.
var (
	dumpMu  sync.Mutex
	dumpers = map[string]func(reason string) (string, error){}
)

// RegisterDumper installs a dump closure under a unique name
// (re-registering a name replaces the previous closure).
func RegisterDumper(name string, f func(reason string) (string, error)) {
	if f == nil {
		return
	}
	dumpMu.Lock()
	defer dumpMu.Unlock()
	dumpers[name] = f
}

// UnregisterDumper removes a previously registered dump closure.
func UnregisterDumper(name string) {
	dumpMu.Lock()
	defer dumpMu.Unlock()
	delete(dumpers, name)
}

// DumpAll runs every registered dump closure, returning the paths
// written. Failures are skipped — in a panic handler there is nobody
// left to handle them.
func DumpAll(reason string) []string {
	dumpMu.Lock()
	fns := make([]func(string) (string, error), 0, len(dumpers))
	for _, f := range dumpers {
		fns = append(fns, f)
	}
	dumpMu.Unlock()
	var paths []string
	for _, f := range fns {
		if path, err := f(reason); err == nil && path != "" {
			paths = append(paths, path)
		}
	}
	return paths
}
