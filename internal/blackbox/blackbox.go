// Package blackbox is the engine's always-on flight recorder: a set of
// fixed-size per-subsystem event rings that the hot paths stamp with a
// global atomic sequence number and monotonic nanoseconds. Recording is
// lock-free and allocation-free — a handful of atomic stores — so the
// recorder stays on in production and every incident ships with the
// events that preceded it (the rings are dumped to disk on degraded-mode
// entry and on panic).
//
// Writers claim a slot with an atomic ticket and publish it seqlock
// style: the slot's sequence word is zeroed, the payload fields are
// stored, then the final sequence is stored. Readers copy the payload
// between two loads of the sequence word and discard the copy when the
// loads disagree, so a reader can never observe a torn event; at worst a
// slot being overwritten during the snapshot is skipped.
//
// A nil *Recorder is the disabled recorder: every method is safe to call
// on it and does nothing, so call sites need no guards.
//
//kfvet:nilsafe
package blackbox

import (
	"sort"
	"sync/atomic"
	"time"
)

// Subsystem partitions the recorder into one ring per event source, so
// a chatty subsystem (ingest) can never evict another's history (a rare
// degraded transition).
type Subsystem uint8

const (
	SubIngest Subsystem = iota
	SubWAL
	SubFlush
	SubCompact
	SubCache
	SubDisk
	SubState
	SubTuner

	numSubsystems
)

var subsystemNames = [numSubsystems]string{
	SubIngest:  "ingest",
	SubWAL:     "wal",
	SubFlush:   "flush",
	SubCompact: "compact",
	SubCache:   "cache",
	SubDisk:    "disk",
	SubState:   "state",
	SubTuner:   "tuner",
}

// String returns the subsystem's wire name.
func (s Subsystem) String() string {
	if int(s) >= len(subsystemNames) {
		return "unknown"
	}
	return subsystemNames[s]
}

// Subsystems lists every subsystem name in ring order, for endpoint
// validation messages.
func Subsystems() []string {
	out := make([]string, numSubsystems)
	copy(out, subsystemNames[:])
	return out
}

// ParseSubsystem resolves a wire name back to its subsystem.
func ParseSubsystem(name string) (Subsystem, bool) {
	for i, n := range subsystemNames {
		if n == name {
			return Subsystem(i), true
		}
	}
	return 0, false
}

// Code identifies what happened. Each code belongs to one subsystem and
// fixes the meaning of the event's three argument words.
type Code uint8

const (
	EvIngestBatch Code = iota
	EvWALAppend
	EvWALSync
	EvWALRotate
	EvFlushPrepare
	EvFlushBuild
	EvFlushInstall
	EvFlushRelease
	EvFlushEnqueue
	EvFlushFallback
	EvCompactPass
	EvCacheEvict
	EvDiskRetry
	EvDegradedEnter
	EvDegradedClear
	EvTunerAdjust

	numCodes
)

var codeNames = [numCodes]string{
	EvIngestBatch:   "ingest_batch",
	EvWALAppend:     "wal_append",
	EvWALSync:       "wal_sync",
	EvWALRotate:     "wal_rotate",
	EvFlushPrepare:  "flush_prepare",
	EvFlushBuild:    "flush_build",
	EvFlushInstall:  "flush_install",
	EvFlushRelease:  "flush_release",
	EvFlushEnqueue:  "flush_enqueue",
	EvFlushFallback: "flush_fallback",
	EvCompactPass:   "compact_pass",
	EvCacheEvict:    "cache_evict",
	EvDiskRetry:     "disk_retry",
	EvDegradedEnter: "degraded_enter",
	EvDegradedClear: "degraded_clear",
	EvTunerAdjust:   "tuner_adjust",
}

// codeArgNames labels each code's argument words for the JSON timeline;
// an empty label marks an unused word.
var codeArgNames = [numCodes][3]string{
	EvIngestBatch:   {"records", "skipped", "nanos"},
	EvWALAppend:     {"frames", "bytes", "nanos"},
	EvWALSync:       {"frames", "file_bytes", "nanos"},
	EvWALRotate:     {"file_seq", "rotated_bytes", "nanos"},
	EvFlushPrepare:  {"target_bytes", "freed_bytes", "nanos"},
	EvFlushBuild:    {"records", "bytes", "nanos"},
	EvFlushInstall:  {"records", "bytes", "nanos"},
	EvFlushRelease:  {"records", "", "nanos"},
	EvFlushEnqueue:  {"records", "queue_depth", ""},
	EvFlushFallback: {"records", "", ""},
	EvCompactPass:   {"level", "segments_in", "nanos"},
	EvCacheEvict:    {"evicted", "resident_bytes", ""},
	EvDiskRetry:     {"retries", "ordinal", ""},
	EvDegradedEnter: {"", "", ""},
	EvDegradedClear: {"", "", ""},
	EvTunerAdjust:   {"flush_frac_bp", "watermark_bytes", "cache_bytes"},
}

// String returns the code's wire name.
func (c Code) String() string {
	if int(c) >= len(codeNames) {
		return "unknown"
	}
	return codeNames[c]
}

// DefaultRingSize is the per-subsystem slot count when the caller does
// not choose one: 1024 events x 8 subsystems x 56 bytes ≈ 400 KiB per
// recorder, minutes of history at typical production rates.
const DefaultRingSize = 1024

// globalSeq is the recorder-wide event ticket: one monotonic sequence
// shared by every Recorder in the process, so timelines from several
// attribute engines merge into a single true order.
var globalSeq atomic.Uint64

// epoch anchors event timestamps: nanos are measured from process start
// on the monotonic clock (immune to wall-clock steps, and reading it
// never allocates).
var epoch = time.Now()

// EpochUnixNanos returns the wall-clock instant of the recorder epoch,
// letting consumers convert event nanos back to absolute time.
func EpochUnixNanos() int64 { return epoch.UnixNano() }

// NextSeq claims one sequence number from the global ticket. Exposed for
// sibling recorders (the slow-query log) whose entries interleave with
// ring events on the merged timeline.
//
//kfvet:noalloc
func NextSeq() uint64 { return globalSeq.Add(1) }

// slot is one fixed-size event: a seqlock word plus five payload words.
// All fields are atomics so concurrent writers racing a wrapped ring and
// concurrent readers stay within the memory model; torn payloads are
// rejected by the seq double-check, never observed.
type slot struct {
	seq   atomic.Uint64
	nanos atomic.Int64
	code  atomic.Int64
	a     atomic.Int64
	b     atomic.Int64
	c     atomic.Int64
}

// ring is one subsystem's event history. Writers take tickets from next
// and overwrite slots modulo the ring size.
type ring struct {
	next  atomic.Uint64
	slots []slot
}

// Recorder is one engine's flight recorder. Safe for concurrent use by
// any number of writers and readers; the zero-value pointer (nil) is the
// disabled recorder.
type Recorder struct {
	rings [numSubsystems]ring
}

// New builds a recorder with the given per-subsystem ring size (slots);
// size <= 0 selects DefaultRingSize.
func New(size int) *Recorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	r := &Recorder{}
	for i := range r.rings {
		r.rings[i].slots = make([]slot, size)
	}
	return r
}

// Record stamps one event into sub's ring: global sequence, monotonic
// nanos, and three argument words whose meaning the code fixes. It is
// the hot-path entry point — lock-free, allocation-free, nil-safe.
//
//kfvet:noalloc
//kfvet:seqlock writer
func (r *Recorder) Record(sub Subsystem, code Code, a, b, c int64) {
	if r == nil {
		return
	}
	rg := &r.rings[sub]
	ticket := rg.next.Add(1) - 1
	s := &rg.slots[ticket%uint64(len(rg.slots))]
	seq := globalSeq.Add(1)
	// Seqlock publish: invalidate, fill, publish. A reader catching the
	// window sees seq 0 or a changed seq and discards its copy.
	s.seq.Store(0)
	s.nanos.Store(time.Since(epoch).Nanoseconds())
	s.code.Store(int64(code))
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.seq.Store(seq)
}

// Event is one decoded ring entry.
type Event struct {
	// Seq is the global sequence number: sorting any mix of events by
	// Seq reconstructs the true interleaving across subsystems and
	// recorders.
	Seq uint64 `json:"seq"`
	// Nanos is monotonic nanoseconds since the recorder epoch
	// (EpochUnixNanos anchors it to wall time).
	Nanos     int64            `json:"nanos"`
	Subsystem string           `json:"subsystem"`
	Event     string           `json:"event"`
	Args      map[string]int64 `json:"args,omitempty"`
}

// EventsOf snapshots one subsystem's ring, oldest first. The snapshot is
// consistent per event (no torn payloads) but not across the ring:
// events recorded during the scan may or may not appear.
func (r *Recorder) EventsOf(sub Subsystem) []Event {
	if r == nil || int(sub) >= int(numSubsystems) {
		return nil
	}
	rg := &r.rings[sub]
	out := make([]Event, 0, len(rg.slots))
	for i := range rg.slots {
		if ev, ok := readSlot(&rg.slots[i], sub); ok {
			out = append(out, ev)
		}
	}
	sortEvents(out)
	return out
}

// Events snapshots every ring and merges them into one sequence-ordered
// timeline, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for sub := Subsystem(0); sub < numSubsystems; sub++ {
		rg := &r.rings[sub]
		for i := range rg.slots {
			if ev, ok := readSlot(&rg.slots[i], sub); ok {
				out = append(out, ev)
			}
		}
	}
	sortEvents(out)
	return out
}

// readSlot performs the seqlock read: copy the payload between two
// agreeing loads of the sequence word. A bounded retry absorbs a writer
// racing the copy; a slot that stays in flux is skipped, not torn.
//
//kfvet:seqlock reader
func readSlot(s *slot, sub Subsystem) (Event, bool) {
	for attempt := 0; attempt < 3; attempt++ {
		seq := s.seq.Load()
		if seq == 0 {
			return Event{}, false // never written, or mid-publish
		}
		nanos := s.nanos.Load()
		code := Code(s.code.Load())
		a, b, c := s.a.Load(), s.b.Load(), s.c.Load()
		if s.seq.Load() != seq {
			continue // overwritten mid-copy; retry
		}
		return decodeEvent(seq, nanos, sub, code, a, b, c), true
	}
	return Event{}, false
}

// decodeEvent renders the fixed words into the JSON-friendly form,
// labeling argument words per the code's schema.
func decodeEvent(seq uint64, nanos int64, sub Subsystem, code Code, a, b, c int64) Event {
	ev := Event{Seq: seq, Nanos: nanos, Subsystem: sub.String(), Event: code.String()}
	if int(code) < len(codeArgNames) {
		labels := codeArgNames[code]
		vals := [3]int64{a, b, c}
		for i, label := range labels {
			if label == "" {
				continue
			}
			if ev.Args == nil {
				ev.Args = make(map[string]int64, 3)
			}
			ev.Args[label] = vals[i]
		}
	}
	return ev
}

func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
}

// TimelineEvent is an Event labeled with the recorder it came from, for
// timelines merged across attribute engines.
type TimelineEvent struct {
	Attr string `json:"attr"`
	Event
}

// MergeTimeline merges per-recorder event snapshots (keyed by attribute
// name) into one sequence-ordered timeline. The global sequence ticket
// makes the order exact, not heuristic.
func MergeTimeline(byAttr map[string][]Event) []TimelineEvent {
	var n int
	for _, evs := range byAttr {
		n += len(evs)
	}
	out := make([]TimelineEvent, 0, n)
	for attr, evs := range byAttr {
		for _, ev := range evs {
			out = append(out, TimelineEvent{Attr: attr, Event: ev})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
