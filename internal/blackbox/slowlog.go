package blackbox

import (
	"sync"
	"time"

	"kflushing/internal/trace"
)

// SlowQuery is one captured offender: the full query trace plus enough
// envelope to place it on the merged timeline (Seq comes from the same
// global ticket as ring events).
type SlowQuery struct {
	Seq           uint64       `json:"seq"`
	UnixNanos     int64        `json:"unix_nanos"`
	DurationNanos int64        `json:"duration_nanos"`
	Trace         *trace.Trace `json:"trace"`
}

// DefaultSlowLogSize bounds the slow-query ring: offenders are rare by
// construction (they crossed a threshold), so a short history suffices.
const DefaultSlowLogSize = 64

// SlowLog is a small mutex-guarded ring of slow queries. Unlike the
// event rings it may allocate — entries carry full traces and are only
// appended when a query already blew its latency budget. A nil *SlowLog
// is the disabled log.
type SlowLog struct {
	mu   sync.Mutex
	buf  []SlowQuery
	next int
	n    int
}

// NewSlowLog builds a slow-query ring of the given capacity; size <= 0
// selects DefaultSlowLogSize.
func NewSlowLog(size int) *SlowLog {
	if size <= 0 {
		size = DefaultSlowLogSize
	}
	return &SlowLog{buf: make([]SlowQuery, size)}
}

// Add appends one offender, stamping its global sequence number and
// wall-clock capture time. Nil-safe.
func (l *SlowLog) Add(tr *trace.Trace, durationNanos int64) {
	if l == nil {
		return
	}
	entry := SlowQuery{
		Seq:           NextSeq(),
		UnixNanos:     time.Now().UnixNano(),
		DurationNanos: durationNanos,
		Trace:         tr,
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = entry
	l.next = (l.next + 1) % len(l.buf)
	l.n++
}

// Snapshot returns the retained slow queries, oldest first.
func (l *SlowLog) Snapshot() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	size := len(l.buf)
	kept := l.n
	if kept > size {
		kept = size
	}
	out := make([]SlowQuery, 0, kept)
	for i := 0; i < kept; i++ {
		out = append(out, l.buf[(l.next-kept+i+size)%size])
	}
	return out
}

// Len reports how many slow queries have ever been captured (not just
// retained).
func (l *SlowLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
