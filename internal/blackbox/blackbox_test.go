package blackbox

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"kflushing/internal/trace"
)

// TestNilRecorderSafe pins the disabled-recorder contract: every method
// on a nil *Recorder (and nil *SlowLog) is a no-op, never a panic.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(SubIngest, EvIngestBatch, 1, 2, 3)
	if evs := r.Events(); evs != nil {
		t.Fatalf("nil recorder Events = %v, want nil", evs)
	}
	if evs := r.EventsOf(SubWAL); evs != nil {
		t.Fatalf("nil recorder EventsOf = %v, want nil", evs)
	}
	if path, err := r.Dump(t.TempDir(), "test"); err != nil || path != "" {
		t.Fatalf("nil recorder Dump = (%q, %v), want empty", path, err)
	}
	var l *SlowLog
	l.Add(&trace.Trace{}, 1)
	if s := l.Snapshot(); s != nil {
		t.Fatalf("nil slowlog Snapshot = %v, want nil", s)
	}
	if l.Len() != 0 {
		t.Fatalf("nil slowlog Len = %d, want 0", l.Len())
	}
}

// TestRecordAllocs pins the hot-path contract the acceptance criteria
// name: recording an event performs zero heap allocations.
func TestRecordAllocs(t *testing.T) {
	r := New(256)
	avg := testing.AllocsPerRun(1000, func() {
		r.Record(SubIngest, EvIngestBatch, 16, 0, 1200)
	})
	if avg != 0 {
		t.Fatalf("Record allocates %.2f objects/op, want 0", avg)
	}
}

// TestEventDecoding checks that argument words come back under their
// schema labels and unused words are omitted.
func TestEventDecoding(t *testing.T) {
	r := New(8)
	r.Record(SubWAL, EvWALAppend, 7, 4096, 1500)
	r.Record(SubState, EvDegradedEnter, 0, 0, 0)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("Events len = %d, want 2", len(evs))
	}
	ap := evs[0]
	if ap.Subsystem != "wal" || ap.Event != "wal_append" {
		t.Fatalf("event 0 = %+v, want wal/wal_append", ap)
	}
	want := map[string]int64{"frames": 7, "bytes": 4096, "nanos": 1500}
	for k, v := range want {
		if ap.Args[k] != v {
			t.Errorf("args[%s] = %d, want %d", k, ap.Args[k], v)
		}
	}
	if evs[1].Args != nil {
		t.Errorf("degraded_enter args = %v, want none", evs[1].Args)
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Errorf("seq order broken: %d then %d", evs[0].Seq, evs[1].Seq)
	}
}

// TestRingWrap fills a ring far past capacity and checks only the
// newest size events survive, still in sequence order.
func TestRingWrap(t *testing.T) {
	const size = 16
	r := New(size)
	for i := 0; i < 5*size; i++ {
		r.Record(SubFlush, EvFlushBuild, int64(i), 0, 0)
	}
	evs := r.EventsOf(SubFlush)
	if len(evs) != size {
		t.Fatalf("EventsOf len = %d, want %d", len(evs), size)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seq not increasing at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	// The survivors are the last size records.
	if got := evs[len(evs)-1].Args["records"]; got != 5*size-1 {
		t.Errorf("newest surviving event records = %d, want %d", got, 5*size-1)
	}
	if got := evs[0].Args["records"]; got != 4*size {
		t.Errorf("oldest surviving event records = %d, want %d", got, 4*size)
	}
}

// TestConcurrentWriters is the race battery: many writers hammer every
// subsystem while readers snapshot continuously. Run under -race this
// proves the seqlock publish discipline; the assertions prove no torn
// or duplicated sequence numbers are ever observed.
func TestConcurrentWriters(t *testing.T) {
	r := New(64)
	const writers = 8
	const perWriter = 2000
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	// Readers: continuous snapshots, checking per-snapshot invariants.
	for i := 0; i < 2; i++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := r.Events()
				seen := make(map[uint64]bool, len(evs))
				for j, ev := range evs {
					if seen[ev.Seq] {
						t.Errorf("duplicate seq %d in snapshot", ev.Seq)
						return
					}
					seen[ev.Seq] = true
					if j > 0 && evs[j-1].Seq >= ev.Seq {
						t.Errorf("snapshot out of order at %d", j)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				sub := Subsystem(i % int(numSubsystems))
				r.Record(sub, EvIngestBatch, int64(w), int64(i), 0)
			}
		}(w)
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()
}

// TestMergedTimelineMonotonic is the property test: interleaved
// recording across several recorders still yields one strictly
// increasing merged sequence, and every subsystem's own view is a
// subsequence of the merge.
func TestMergedTimelineMonotonic(t *testing.T) {
	recs := map[string]*Recorder{
		"keyword": New(512),
		"spatial": New(512),
		"user":    New(512),
	}
	names := []string{"keyword", "spatial", "user"}
	for i := 0; i < 300; i++ {
		attr := names[i%len(names)]
		sub := Subsystem(i % int(numSubsystems))
		recs[attr].Record(sub, EvIngestBatch, int64(i), 0, 0)
	}
	byAttr := make(map[string][]Event, len(recs))
	for attr, r := range recs {
		byAttr[attr] = r.Events()
	}
	merged := MergeTimeline(byAttr)
	if len(merged) != 300 {
		t.Fatalf("merged len = %d, want 300", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Seq <= merged[i-1].Seq {
			t.Fatalf("merged seq not strictly increasing at %d", i)
		}
		if merged[i].Nanos < merged[i-1].Nanos {
			t.Fatalf("merged nanos regressed at %d: %d then %d",
				i, merged[i-1].Nanos, merged[i].Nanos)
		}
	}
	// Subsequence property: each attr's events appear in the merge in
	// the same order.
	for attr, evs := range byAttr {
		j := 0
		for _, m := range merged {
			if j < len(evs) && m.Attr == attr && m.Seq == evs[j].Seq {
				j++
			}
		}
		if j != len(evs) {
			t.Errorf("attr %s: only %d/%d events found in merge order", attr, j, len(evs))
		}
	}
}

// TestDump checks the snapshot file: valid JSON, carries the reason and
// epoch anchor, and contains the recorded events in order.
func TestDump(t *testing.T) {
	dir := t.TempDir()
	r := New(32)
	r.Record(SubWAL, EvWALAppend, 3, 256, 900)
	r.Record(SubState, EvDegradedEnter, 0, 0, 0)
	path, err := r.Dump(dir, "degraded")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(filepath.Base(path), "blackbox-degraded-") {
		t.Errorf("dump file name = %s, want blackbox-degraded-* prefix", path)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var df DumpFile
	if err := json.Unmarshal(buf, &df); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if df.Reason != "degraded" || df.EpochUnixNanos == 0 || df.WrittenUnixNanos == 0 {
		t.Fatalf("dump envelope = %+v", df)
	}
	if len(df.Events) != 2 || df.Events[0].Event != "wal_append" || df.Events[1].Event != "degraded_enter" {
		t.Fatalf("dump events = %+v", df.Events)
	}
}

// TestDumperRegistry exercises the process-level registry the panic
// path uses: registered recorders dump, unregistered ones do not.
func TestDumperRegistry(t *testing.T) {
	dir := t.TempDir()
	r := New(16)
	r.Record(SubIngest, EvIngestBatch, 1, 0, 0)
	name := fmt.Sprintf("test-%s", t.Name())
	RegisterDumper(name, func(reason string) (string, error) {
		return r.Dump(dir, reason)
	})
	paths := DumpAll("panic")
	var mine []string
	for _, p := range paths {
		if strings.HasPrefix(p, dir) {
			mine = append(mine, p)
		}
	}
	if len(mine) != 1 {
		t.Fatalf("DumpAll wrote %d files in %s, want 1", len(mine), dir)
	}
	UnregisterDumper(name)
	for _, p := range DumpAll("panic") {
		if strings.HasPrefix(p, dir) {
			t.Fatalf("unregistered dumper still wrote %s", p)
		}
	}
}

// TestSlowLog exercises ring retention and ordering.
func TestSlowLog(t *testing.T) {
	l := NewSlowLog(4)
	for i := 0; i < 10; i++ {
		l.Add(&trace.Trace{K: i}, int64(1000+i))
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	for i, q := range snap {
		if want := int64(1000 + 6 + i); q.DurationNanos != want {
			t.Errorf("entry %d duration = %d, want %d", i, q.DurationNanos, want)
		}
		if q.Trace == nil || q.Trace.K != 6+i {
			t.Errorf("entry %d trace = %+v", i, q.Trace)
		}
		if i > 0 && snap[i].Seq <= snap[i-1].Seq {
			t.Errorf("slowlog seq order broken at %d", i)
		}
	}
	if l.Len() != 10 {
		t.Errorf("Len = %d, want 10", l.Len())
	}
}

// BenchmarkRecord measures the hot-path cost of one event; the CI bench
// smoke runs it with -benchmem to keep the 0 allocs/op claim honest.
func BenchmarkRecord(b *testing.B) {
	r := New(DefaultRingSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(SubIngest, EvIngestBatch, 16, 0, 1200)
	}
}

// BenchmarkRecordParallel measures contention on the global sequence
// ticket under parallel writers.
func BenchmarkRecordParallel(b *testing.B) {
	r := New(DefaultRingSize)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record(SubWAL, EvWALAppend, 8, 4096, 900)
		}
	})
}
