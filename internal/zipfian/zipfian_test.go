package zipfian

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFiniteRange(t *testing.T) {
	for _, s := range []float64{0, 0.5, 0.95, 1.0, 1.5} {
		f := NewFinite(100, s, 1)
		for i := 0; i < 1000; i++ {
			if r := f.Next(); r >= 100 {
				t.Fatalf("s=%v: rank %d out of range", s, r)
			}
		}
	}
}

func TestFiniteSkewOrdering(t *testing.T) {
	// Higher exponents concentrate more mass on rank 0.
	counts := func(s float64) int {
		f := NewFinite(1000, s, 7)
		zero := 0
		for i := 0; i < 20_000; i++ {
			if f.Next() == 0 {
				zero++
			}
		}
		return zero
	}
	flat, steep := counts(0.3), counts(1.5)
	if flat >= steep {
		t.Fatalf("rank-0 mass: flat=%d steep=%d; steeper must concentrate more", flat, steep)
	}
}

func TestFiniteMatchesHarmonicCDF(t *testing.T) {
	const n, s = 500, 0.95
	f := NewFinite(n, s, 3)
	h := NewHarmonicCDF(n, s)
	const samples = 200_000
	got := 0
	for i := 0; i < samples; i++ {
		if f.Next() < 10 {
			got++
		}
	}
	want := h.TopMass(10)
	emp := float64(got) / samples
	if math.Abs(emp-want) > 0.01 {
		t.Fatalf("top-10 mass: empirical %.4f vs analytic %.4f", emp, want)
	}
}

func TestFiniteZeroExponentIsUniform(t *testing.T) {
	f := NewFinite(4, 0, 5)
	counts := make([]int, 4)
	const samples = 40_000
	for i := 0; i < samples; i++ {
		counts[f.Next()]++
	}
	for r, c := range counts {
		frac := float64(c) / samples
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("rank %d frequency %.3f, want ~0.25", r, frac)
		}
	}
}

func TestUniformRange(t *testing.T) {
	u := NewUniform(10, 1)
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		r := u.Next()
		if r >= 10 {
			t.Fatalf("rank %d out of range", r)
		}
		seen[r] = true
	}
	if len(seen) != 10 {
		t.Fatalf("uniform sampler visited %d of 10 ranks", len(seen))
	}
}

func TestDeterminism(t *testing.T) {
	a, b := NewFinite(1000, 0.9, 42), NewFinite(1000, 0.9, 42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestHarmonicCDFProperties(t *testing.T) {
	f := func(nRaw uint16, sRaw uint8) bool {
		n := int(nRaw%500) + 2
		s := float64(sRaw%30) / 10 // 0.0 .. 2.9
		h := NewHarmonicCDF(n, s)
		// Probabilities are non-increasing in rank and sum to ~1.
		sum := 0.0
		prev := math.Inf(1)
		for i := 0; i < n; i++ {
			p := h.P(i)
			if p < 0 || p > prev+1e-12 {
				return false
			}
			prev = p
			sum += p
		}
		return math.Abs(sum-1) < 1e-9 && h.TopMass(n) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfWrapper(t *testing.T) {
	z := NewZipf(100, 1.2, 1)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	for i := 0; i < 1000; i++ {
		if r := z.Next(); r >= 100 {
			t.Fatalf("rank %d out of range", r)
		}
	}
}

func TestPanicsOnZeroN(t *testing.T) {
	for name, fn := range map[string]func(){
		"zipf":    func() { NewZipf(0, 1.1, 1) },
		"uniform": func() { NewUniform(0, 1) },
		"finite":  func() { NewFinite(0, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic for n=0", name)
				}
			}()
			fn()
		}()
	}
}
