// Package zipfian provides seeded skewed-distribution samplers used by
// the synthetic microblog stream and the correlated query workload.
//
// The keyword-frequency distribution of real microblogs is highly skewed
// (the paper's Figure 1): a handful of keywords appear far more than k
// times while the long tail appears fewer than k times. A Zipf sampler
// over a ranked vocabulary reproduces exactly that shape.
package zipfian

import (
	"math"
	"math/rand"
)

// Zipf samples ranks 0..N-1 with probability proportional to
// 1/(rank+1)^s. It wraps math/rand's generator with a fixed seed so runs
// are reproducible. Not safe for concurrent use; each goroutine should
// own its sampler.
type Zipf struct {
	rng *rand.Rand
	z   *rand.Zipf
	n   uint64
}

// NewZipf returns a sampler over n ranks with exponent s >= 1 (values
// very close to 1 are nudged up, as required by math/rand) and the given
// seed.
func NewZipf(n uint64, s float64, seed int64) *Zipf {
	if n == 0 {
		panic("zipfian: n must be positive")
	}
	if s <= 1 {
		s = 1.0001
	}
	rng := rand.New(rand.NewSource(seed))
	return &Zipf{rng: rng, z: rand.NewZipf(rng, s, 1, n-1), n: n}
}

// Next returns the next sampled rank in [0, n).
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// N returns the number of ranks.
func (z *Zipf) N() uint64 { return z.n }

// Uniform samples ranks 0..N-1 with equal probability, for the uniform
// query workload. Not safe for concurrent use.
type Uniform struct {
	rng *rand.Rand
	n   uint64
}

// NewUniform returns a uniform sampler over n ranks with the given seed.
func NewUniform(n uint64, seed int64) *Uniform {
	if n == 0 {
		panic("zipfian: n must be positive")
	}
	return &Uniform{rng: rand.New(rand.NewSource(seed)), n: n}
}

// Next returns the next sampled rank in [0, n).
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }

// Finite samples ranks 0..N-1 with probability proportional to
// 1/(rank+1)^s for ANY exponent s >= 0 (including the s <= 1 regime
// math/rand's Zipf cannot produce, which matters because empirical
// hashtag tails are flatter than Zipf-1). It uses an inverse-CDF table
// with binary search: O(n) memory, O(log n) per sample. Not safe for
// concurrent use.
type Finite struct {
	rng *rand.Rand
	cum []float64
}

// NewFinite returns a finite Zipf(s) sampler over n ranks.
func NewFinite(n int, s float64, seed int64) *Finite {
	if n <= 0 {
		panic("zipfian: n must be positive")
	}
	cum := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cum[i] = sum
	}
	inv := 1 / sum
	for i := range cum {
		cum[i] *= inv
	}
	cum[n-1] = 1 // guard against rounding
	return &Finite{rng: rand.New(rand.NewSource(seed)), cum: cum}
}

// Next returns the next sampled rank in [0, n).
func (f *Finite) Next() uint64 {
	u := f.rng.Float64()
	lo, hi := 0, len(f.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if f.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}

// N returns the number of ranks.
func (f *Finite) N() uint64 { return uint64(len(f.cum)) }

// HarmonicCDF precomputes the cumulative Zipf(s) distribution over n
// ranks. It supports exact probability lookups, which the calibration
// tests use to verify the generated stream matches the intended skew.
type HarmonicCDF struct {
	cum []float64
}

// NewHarmonicCDF builds the CDF for exponent s over n ranks.
func NewHarmonicCDF(n int, s float64) *HarmonicCDF {
	cum := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cum[i] = sum
	}
	for i := range cum {
		cum[i] /= sum
	}
	return &HarmonicCDF{cum: cum}
}

// P returns the probability mass of rank i.
func (h *HarmonicCDF) P(i int) float64 {
	if i == 0 {
		return h.cum[0]
	}
	return h.cum[i] - h.cum[i-1]
}

// TopMass returns the total probability mass of the first m ranks.
func (h *HarmonicCDF) TopMass(m int) float64 {
	if m <= 0 {
		return 0
	}
	if m >= len(h.cum) {
		return 1
	}
	return h.cum[m-1]
}
