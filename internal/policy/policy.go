// Package policy defines the flushing-policy contract and implements the
// two baselines the paper evaluates against: FIFO (temporally segmented
// flushing, the implicit policy of existing microblog systems) and LRU
// (H-Store-style anti-caching over individual records).
//
// The kFlushing policy itself — the paper's contribution — lives in
// package core and implements the same interface, so the engine and
// every experiment treat all policies uniformly.
package policy

import (
	"sync"

	"kflushing/internal/clock"
	"kflushing/internal/disk"
	"kflushing/internal/flushlog"
	"kflushing/internal/index"
	"kflushing/internal/memsize"
	"kflushing/internal/metrics"
	"kflushing/internal/store"
	"kflushing/internal/types"
)

// Sink receives flushed records; in production it is the disk tier.
type Sink interface {
	Flush([]disk.FlushRecord) error
}

// DeadSink is an optional Sink extension for record recycling: dead
// records — fully released, off the store, memory already refunded —
// ride alongside the flush batch so the sink can hand their wrappers to
// the recycler once the batch is durably installed (and only then; a
// failed batch drops them to the garbage collector, which is always
// safe). Sinks that do not implement it simply let the collector take
// the wrappers.
type DeadSink interface {
	Sink
	// FlushDead behaves like Flush for recs and additionally receives
	// the records that died during the cycle. dead may outnumber recs:
	// a record whose payload an earlier partial flush already persisted
	// dies without contributing a FlushRecord.
	FlushDead(recs []disk.FlushRecord, dead []*store.Record) error
}

// Resources grants a policy access to the engine's shared structures. A
// policy receives it once via Attach before any other call.
type Resources[K comparable] struct {
	// Index is the in-memory inverted index for the attribute.
	Index *index.Index[K]
	// Store is the raw data store.
	Store *store.Store
	// Mem is the engine's memory tracker.
	Mem *memsize.Tracker
	// Sink receives evicted records.
	Sink Sink
	// KeysOf extracts the attribute keys of a microblog.
	KeysOf func(*types.Microblog) []K
	// Clock is the engine time source.
	Clock clock.Clock
	// Metrics receives per-phase flushing instrumentation; may be nil
	// (direct policy tests).
	Metrics *metrics.Registry
	// Journal receives the structured flush audit events; may be nil
	// (all Journal methods are nil-safe, so policies record events
	// unconditionally).
	Journal *flushlog.Journal
}

// Unref releases one index reference on rec. When the count reaches zero
// the record leaves the raw data store and joins the victim buffer; the
// returned byte count is the budget-relevant memory this call freed.
func (r *Resources[K]) Unref(rec *store.Record, buf *VictimBuffer) int64 {
	if rec.Unref() > 0 {
		return 0
	}
	r.Store.Remove(rec.MB.ID)
	r.Mem.AddData(-rec.Bytes)
	buf.Add(rec)
	return rec.Bytes
}

// Policy selects flush victims when memory fills. Implementations must
// tolerate ingestion and queries proceeding concurrently with Flush —
// the paper requires flushing to run on its own thread without stalling
// digestion.
type Policy[K comparable] interface {
	// Name identifies the policy in stats and experiment output.
	Name() string
	// Attach wires the policy to the engine's resources; called once
	// before any other method.
	Attach(r *Resources[K])
	// OnIngest runs after a batch of records has been stored and
	// indexed; keys[i] are the attribute keys of recs[i]. Ingestion is
	// batched end to end, so policies take any per-batch lock once —
	// a per-record ingest arrives as a batch of one.
	OnIngest(recs []*store.Record, keys [][]K)
	// OnAccess runs after a query touched the given records from
	// memory. Only access-ordered policies (LRU) need it.
	OnAccess(recs []*store.Record)
	// Flush evicts at least target bytes when possible, returning the
	// bytes actually freed from the budget-relevant gauges.
	Flush(target int64) (freed int64, err error)
	// OverheadBytes reports the policy's current bookkeeping memory —
	// the quantity of the paper's Figure 10(a) — including the peak
	// temporary flush buffer.
	OverheadBytes() int64
}

// VictimBuffer accumulates records whose last reference was trimmed,
// then writes them to the sink in one batch — the paper's temporary
// main-memory buffer that reduces the number of I/O operations. When
// chargeTemp is set its occupancy is charged to the tracker's temporary
// gauge (FIFO flushes whole segments and needs no such buffer, so it
// opts out).
//
// Add and AddPartial are safe for concurrent use, so a flush phase may
// fan eviction work out over shard workers sharing one buffer; Close
// must not race with further additions.
type VictimBuffer struct {
	mem        *memsize.Tracker
	sink       Sink
	chargeTemp bool

	mu    sync.Mutex
	recs  []disk.FlushRecord
	dead  []*store.Record
	bytes int64
}

// NewVictimBuffer returns an empty buffer writing to sink on Close.
func NewVictimBuffer(mem *memsize.Tracker, sink Sink, chargeTemp bool) *VictimBuffer {
	return &VictimBuffer{mem: mem, sink: sink, chargeTemp: chargeTemp}
}

// Add appends a fully-released record. If an earlier partial flush
// already wrote the record's payload to disk, the buffer skips the
// duplicate write; the memory was still freed either way. Either way
// the record is dead — unreferenced and off the store — so it joins
// the dead list handed to a DeadSink on Close.
func (b *VictimBuffer) Add(rec *store.Record) {
	write := rec.MarkOnDisk()
	b.mu.Lock()
	b.dead = append(b.dead, rec)
	if write {
		b.recs = append(b.recs, disk.FlushRecord{MB: rec.MB, Score: rec.Score})
		b.bytes += rec.Bytes
	}
	b.mu.Unlock()
	if write && b.chargeTemp && b.mem != nil {
		b.mem.AddTemp(rec.Bytes)
	}
}

// AddPartial writes a record that remains memory-resident (its reference
// count is still positive) but has been trimmed from at least one index
// entry. Persisting it now keeps disk answers complete for the keys it
// is no longer indexed under in memory. At most one copy is ever
// written; the disk directory lists the record under all of its keys.
func (b *VictimBuffer) AddPartial(rec *store.Record) {
	if !rec.MarkOnDisk() {
		return
	}
	b.append(rec)
}

func (b *VictimBuffer) append(rec *store.Record) {
	b.mu.Lock()
	b.recs = append(b.recs, disk.FlushRecord{MB: rec.MB, Score: rec.Score})
	b.bytes += rec.Bytes
	b.mu.Unlock()
	if b.chargeTemp && b.mem != nil {
		b.mem.AddTemp(rec.Bytes)
	}
}

// Len returns the number of buffered records.
func (b *VictimBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.recs)
}

// Bytes returns the modeled size of buffered records.
func (b *VictimBuffer) Bytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes
}

// Close writes the buffered records to the sink and releases the
// temporary-buffer charge. A DeadSink additionally receives the cycle's
// dead records so their wrappers can be recycled after the durable
// install; other sinks leave them to the garbage collector.
func (b *VictimBuffer) Close() error {
	b.mu.Lock()
	recs, bytes, dead := b.recs, b.bytes, b.dead
	b.recs, b.bytes, b.dead = nil, 0, nil
	b.mu.Unlock()
	var err error
	if ds, ok := b.sink.(DeadSink); ok && (len(recs) > 0 || len(dead) > 0) {
		err = ds.FlushDead(recs, dead)
	} else if len(recs) > 0 && b.sink != nil {
		err = b.sink.Flush(recs)
	}
	if b.chargeTemp && b.mem != nil {
		b.mem.AddTemp(-bytes)
	}
	return err
}
