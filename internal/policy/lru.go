package policy

import (
	"sync"
	"sync/atomic"
	"time"

	"kflushing/internal/flushlog"
	"kflushing/internal/memsize"
	"kflushing/internal/store"
)

// LRU is the anti-caching baseline modeled on H-Store (Section V setup):
// a single global doubly-linked list orders every in-memory record by
// last use; eviction pops from the tail. The list pointers are embedded
// in the records themselves — as the paper notes H-Store does to reduce
// memory overhead — but the list head is still a global hot spot: every
// ingestion pushes to it and every query relinks the records it touched,
// which is exactly the contention that caps LRU's digestion rate in
// Figure 10(b).
type LRU[K comparable] struct {
	r *Resources[K]

	mu   sync.Mutex
	head *store.Record // most recently used
	tail *store.Record // least recently used
	len  atomic.Int64
}

// NewLRU returns an empty LRU policy.
func NewLRU[K comparable]() *LRU[K] { return &LRU[K]{} }

// Name implements Policy.
func (l *LRU[K]) Name() string { return "lru" }

// Attach implements Policy.
func (l *LRU[K]) Attach(r *Resources[K]) { l.r = r }

// linked reports whether rec is currently on the list. Callers must hold
// l.mu. Unlinked records have both hooks nil and are not the head.
func (l *LRU[K]) linked(rec *store.Record) bool {
	return rec.LRUPrev != nil || rec.LRUNext != nil || l.head == rec
}

func (l *LRU[K]) pushHead(rec *store.Record) {
	rec.LRUPrev = nil
	rec.LRUNext = l.head
	if l.head != nil {
		l.head.LRUPrev = rec
	}
	l.head = rec
	if l.tail == nil {
		l.tail = rec
	}
}

func (l *LRU[K]) unlink(rec *store.Record) {
	if rec.LRUPrev != nil {
		rec.LRUPrev.LRUNext = rec.LRUNext
	} else if l.head == rec {
		l.head = rec.LRUNext
	}
	if rec.LRUNext != nil {
		rec.LRUNext.LRUPrev = rec.LRUPrev
	} else if l.tail == rec {
		l.tail = rec.LRUPrev
	}
	rec.LRUPrev, rec.LRUNext = nil, nil
}

// OnIngest pushes the batch to the list head under one lock acquisition
// (arrival order is preserved: the newest record ends up at the head).
func (l *LRU[K]) OnIngest(recs []*store.Record, _ [][]K) {
	l.mu.Lock()
	for _, rec := range recs {
		l.pushHead(rec)
	}
	l.mu.Unlock()
	l.len.Add(int64(len(recs)))
}

// OnAccess moves the touched records to the list head — the per-query
// relinking that makes the global list a contention point.
func (l *LRU[K]) OnAccess(recs []*store.Record) {
	l.mu.Lock()
	for _, rec := range recs {
		if !l.linked(rec) {
			continue // already evicted by a concurrent flush
		}
		if l.head == rec {
			continue
		}
		l.unlink(rec)
		l.pushHead(rec)
	}
	l.mu.Unlock()
}

// Flush evicts records from the list tail until at least target bytes
// are freed or the list empties. The audit journal receives one phase
// event counting the records evicted.
func (l *LRU[K]) Flush(target int64) (int64, error) {
	start := time.Now()
	buf := NewVictimBuffer(l.r.Mem, l.r.Sink, true)
	var freed, victims int64
	for freed < target {
		l.mu.Lock()
		rec := l.tail
		if rec == nil {
			l.mu.Unlock()
			break
		}
		l.unlink(rec)
		l.mu.Unlock()
		l.len.Add(-1)
		freed += l.evict(rec, buf)
		victims++
	}
	err := buf.Close()
	l.r.Journal.Phase(flushlog.PhaseEvent{
		Name:    "lru-tail",
		Victims: victims,
		Freed:   freed,
		Nanos:   time.Since(start).Nanoseconds(),
	})
	return freed, err
}

// evict removes every index posting of rec and releases it.
func (l *LRU[K]) evict(rec *store.Record, buf *VictimBuffer) int64 {
	var freed int64
	for _, key := range l.r.KeysOf(rec.MB) {
		e := l.r.Index.Entry(key)
		if e == nil {
			continue
		}
		removed, died := e.RemovePostingDieIfEmpty(rec, l.r.Index.K())
		if !removed {
			continue
		}
		l.r.Index.NotePostingsRemoved(1)
		freed += 16
		if died {
			l.r.Index.DetachEntry(e)
			freed += memsize.EntryBytes(l.r.Index.KeyLen(key))
		}
		freed += l.r.Unref(rec, buf)
	}
	return freed
}

// OverheadBytes reports the embedded list-pointer cost: two pointers per
// tracked record, plus the flush buffer's peak.
func (l *LRU[K]) OverheadBytes() int64 {
	return l.len.Load()*16 + l.r.Mem.PeakTemp()
}
