package policy

import (
	"fmt"
	"testing"

	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/disk"
	"kflushing/internal/index"
	"kflushing/internal/memsize"
	"kflushing/internal/store"
	"kflushing/internal/types"
)

// memSink collects flushed records for assertions.
type memSink struct {
	recs    []disk.FlushRecord
	flushes int
}

func (s *memSink) Flush(recs []disk.FlushRecord) error {
	s.recs = append(s.recs, recs...)
	s.flushes++
	return nil
}

// rig wires an index, store and policy for direct flush testing.
type rig struct {
	ix   *index.Index[string]
	st   *store.Store
	mem  *memsize.Tracker
	sink *memSink
	pol  Policy[string]
	next uint64
}

func newRig(k int, pol Policy[string]) *rig {
	r := &rig{st: store.New(), mem: &memsize.Tracker{}, sink: &memSink{}, pol: pol}
	r.ix = index.New(index.Config[string]{
		Hash:    attr.HashString,
		KeyLen:  attr.KeywordLen,
		K:       k,
		Tracker: r.mem,
	})
	pol.Attach(&Resources[string]{
		Index:  r.ix,
		Store:  r.st,
		Mem:    r.mem,
		Sink:   r.sink,
		KeysOf: attr.KeywordKeys,
		Clock:  clock.NewLogical(1, 1),
	})
	return r
}

func (r *rig) add(kws ...string) *store.Record {
	r.next++
	mb := &types.Microblog{
		ID:        types.ID(r.next),
		Timestamp: types.Timestamp(r.next),
		Keywords:  kws,
		Text:      "text",
	}
	rec := store.NewRecord(mb, float64(mb.Timestamp))
	r.st.Put(rec)
	r.mem.AddData(rec.Bytes)
	for _, kw := range attr.KeywordKeys(mb) {
		r.ix.Insert(kw, rec)
	}
	r.pol.OnIngest([]*store.Record{rec}, [][]string{attr.KeywordKeys(mb)})
	return rec
}

func TestFIFOEvictsOldestFirst(t *testing.T) {
	f := NewFIFO[string](600) // small segments
	r := newRig(5, f)
	var recs []*store.Record
	for i := 0; i < 12; i++ {
		recs = append(recs, r.add(fmt.Sprintf("k%d", i)))
	}
	freed, err := f.Flush(400)
	if err != nil {
		t.Fatal(err)
	}
	if freed < 400 {
		t.Fatalf("freed %d < target", freed)
	}
	// The oldest records must be gone, the newest must remain.
	if r.st.Get(recs[0].MB.ID) != nil {
		t.Error("oldest record survived FIFO flush")
	}
	if r.st.Get(recs[11].MB.ID) == nil {
		t.Error("newest record evicted by FIFO flush")
	}
	// Flushed-out entries must be detached from the index.
	if r.ix.Entry("k0") != nil {
		t.Error("emptied entry still in index")
	}
}

func TestFIFOFlushOrderIsArrivalOrder(t *testing.T) {
	f := NewFIFO[string](1)
	r := newRig(5, f)
	for i := 0; i < 6; i++ {
		r.add("shared")
	}
	if _, err := f.Flush(1); err != nil {
		t.Fatal(err)
	}
	if len(r.sink.recs) == 0 {
		t.Fatal("nothing flushed")
	}
	for i := 1; i < len(r.sink.recs); i++ {
		if r.sink.recs[i].MB.ID < r.sink.recs[i-1].MB.ID {
			t.Fatal("flush order not arrival order")
		}
	}
}

func TestFIFOFlushExhaustion(t *testing.T) {
	f := NewFIFO[string](100)
	r := newRig(5, f)
	r.add("a")
	freed1, err := f.Flush(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if freed1 == 0 {
		t.Fatal("freed nothing")
	}
	freed2, err := f.Flush(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if freed2 != 0 {
		t.Fatalf("freed %d from an empty system", freed2)
	}
}

func TestFIFOOverheadTracksRecords(t *testing.T) {
	f := NewFIFO[string](1 << 20)
	r := newRig(5, f)
	for i := 0; i < 10; i++ {
		r.add("kw")
	}
	if got := f.OverheadBytes(); got != 80 {
		t.Fatalf("OverheadBytes = %d, want 80", got)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := NewLRU[string]()
	r := newRig(5, l)
	a := r.add("a")
	b := r.add("b")
	c := r.add("c")
	// Touch a: it becomes most recent; b is now the tail... order after
	// ingest (head→tail): c, b, a. Access a → a, c, b.
	l.OnAccess([]*store.Record{a})
	freed, err := l.Flush(200)
	if err != nil {
		t.Fatal(err)
	}
	if freed == 0 {
		t.Fatal("freed nothing")
	}
	if r.st.Get(b.MB.ID) != nil {
		t.Error("least recently used record survived")
	}
	if r.st.Get(a.MB.ID) == nil || r.st.Get(c.MB.ID) == nil {
		t.Error("recently used records evicted")
	}
}

func TestLRUAccessAfterEvictionIsSafe(t *testing.T) {
	l := NewLRU[string]()
	r := newRig(5, l)
	a := r.add("a")
	if _, err := l.Flush(1 << 30); err != nil {
		t.Fatal(err)
	}
	// a is gone from the list; touching it must not relink or crash.
	l.OnAccess([]*store.Record{a})
	if got := l.OverheadBytes() - r.mem.PeakTemp(); got != 0 {
		t.Fatalf("list bytes = %d after full eviction", got)
	}
}

func TestLRUEvictsWholeRecordAcrossEntries(t *testing.T) {
	l := NewLRU[string]()
	r := newRig(5, l)
	shared := r.add("x", "y")
	if _, err := l.Flush(1 << 30); err != nil {
		t.Fatal(err)
	}
	if shared.PCount() != 0 {
		t.Fatalf("pcount = %d after eviction", shared.PCount())
	}
	if r.ix.Entry("x") != nil || r.ix.Entry("y") != nil {
		t.Error("entries not cleaned up")
	}
	if len(r.sink.recs) != 1 {
		t.Fatalf("flushed %d records, want 1", len(r.sink.recs))
	}
}

func TestVictimBufferChargesAndReleasesTemp(t *testing.T) {
	mem := &memsize.Tracker{}
	sink := &memSink{}
	buf := NewVictimBuffer(mem, sink, true)
	rec := store.NewRecord(&types.Microblog{ID: 1, Keywords: []string{"a"}}, 1)
	buf.Add(rec)
	if buf.Len() != 1 || buf.Bytes() != rec.Bytes {
		t.Fatal("buffer accounting")
	}
	if mem.PeakTemp() != rec.Bytes {
		t.Fatal("temp not charged")
	}
	if err := buf.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.flushes != 1 || len(sink.recs) != 1 {
		t.Fatal("sink not written")
	}
}

func TestVictimBufferSkipsAlreadyOnDisk(t *testing.T) {
	sink := &memSink{}
	buf := NewVictimBuffer(nil, sink, false)
	rec := store.NewRecord(&types.Microblog{ID: 1, Keywords: []string{"a"}}, 1)
	buf.AddPartial(rec)
	buf.Add(rec) // second write suppressed
	if buf.Len() != 1 {
		t.Fatalf("buffer holds %d, want 1", buf.Len())
	}
}

func TestUnrefFreesOnlyAtZero(t *testing.T) {
	mem := &memsize.Tracker{}
	st := store.New()
	res := &Resources[string]{Store: st, Mem: mem}
	rec := store.NewRecord(&types.Microblog{ID: 1, Keywords: []string{"a"}}, 1)
	rec.Ref(2)
	st.Put(rec)
	mem.AddData(rec.Bytes)
	buf := NewVictimBuffer(mem, nil, false)
	if freed := res.Unref(rec, buf); freed != 0 {
		t.Fatalf("freed %d at pcount 1", freed)
	}
	if freed := res.Unref(rec, buf); freed != rec.Bytes {
		t.Fatalf("freed %d at pcount 0, want %d", freed, rec.Bytes)
	}
	if st.Get(1) != nil {
		t.Fatal("record still stored after last unref")
	}
}
