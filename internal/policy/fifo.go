package policy

import (
	"sync"
	"time"

	"kflushing/internal/flushlog"
	"kflushing/internal/memsize"
	"kflushing/internal/store"
)

// FIFO is the temporal flushing baseline used implicitly or explicitly
// by existing microblog systems (Section V setup): ingestion is tracked
// in temporally disjoint segments, and on full memory the oldest
// segments are flushed to disk wholesale, regardless of whether their
// contents still serve incoming top-k queries.
//
// The only bookkeeping is the per-segment record list (8 bytes per
// record), which is why FIFO shows the lowest overhead in Figure 10(a):
// no per-item usage tracking and no scatter-gather flush buffer — the
// oldest segment itself is the flush unit.
type FIFO[K comparable] struct {
	// SegmentBytes is the modeled size at which the current ingestion
	// segment is sealed and a new one started. The engine sets it to
	// the flush budget so each flush drops whole segments.
	SegmentBytes int64

	r *Resources[K]

	mu   sync.Mutex
	segs []*fifoSegment
	cur  *fifoSegment
}

type fifoSegment struct {
	recs  []*store.Record
	bytes int64 // modeled record + posting bytes covered by the segment
}

// NewFIFO returns a FIFO policy sealing segments at segmentBytes.
func NewFIFO[K comparable](segmentBytes int64) *FIFO[K] {
	if segmentBytes <= 0 {
		segmentBytes = 1 << 20
	}
	return &FIFO[K]{SegmentBytes: segmentBytes}
}

// Name implements Policy.
func (f *FIFO[K]) Name() string { return "fifo" }

// SetSegmentBytes retunes the segment seal threshold at run time — the
// adaptive memory tuner calls it when the flush budget B changes, so
// FIFO's flush unit tracks the budget the same way the target passed to
// Flush does. Already-sealed segments keep their size; only future
// seals use the new threshold.
func (f *FIFO[K]) SetSegmentBytes(n int64) {
	if n <= 0 {
		return
	}
	f.mu.Lock()
	f.SegmentBytes = n
	f.mu.Unlock()
}

// Attach implements Policy.
func (f *FIFO[K]) Attach(r *Resources[K]) { f.r = r }

// OnIngest appends the batch to the current temporal segment under one
// lock acquisition, sealing segments at the byte threshold as it goes.
func (f *FIFO[K]) OnIngest(recs []*store.Record, keys [][]K) {
	f.mu.Lock()
	for i, rec := range recs {
		if f.cur == nil {
			f.cur = &fifoSegment{}
			f.segs = append(f.segs, f.cur)
		}
		f.cur.recs = append(f.cur.recs, rec)
		f.cur.bytes += rec.Bytes + int64(len(keys[i]))*16
		if f.cur.bytes >= f.SegmentBytes {
			f.cur = nil // seal; the next record starts a fresh segment
		}
	}
	f.mu.Unlock()
}

// OnAccess implements Policy; FIFO ignores query accesses.
func (f *FIFO[K]) OnAccess([]*store.Record) {}

// Flush drops the oldest segments until at least target bytes are freed
// or no sealed data remains. The audit journal receives one phase event
// counting the temporal segments dropped.
func (f *FIFO[K]) Flush(target int64) (int64, error) {
	start := time.Now()
	buf := NewVictimBuffer(f.r.Mem, f.r.Sink, false)
	var freed, victims int64
	for freed < target {
		f.mu.Lock()
		if len(f.segs) == 0 {
			f.mu.Unlock()
			break
		}
		seg := f.segs[0]
		f.segs = f.segs[1:]
		if seg == f.cur {
			f.cur = nil // flushing the in-progress segment; seal it
		}
		f.mu.Unlock()
		freed += f.evictSegment(seg, buf)
		victims++
	}
	err := buf.Close()
	f.r.Journal.Phase(flushlog.PhaseEvent{
		Name:    "fifo-segments",
		Victims: victims,
		Freed:   freed,
		Nanos:   time.Since(start).Nanoseconds(),
	})
	return freed, err
}

// evictSegment unlinks every record of seg from the index and releases
// it, returning the budget-relevant bytes freed.
func (f *FIFO[K]) evictSegment(seg *fifoSegment, buf *VictimBuffer) int64 {
	var freed int64
	for _, rec := range seg.recs {
		for _, key := range f.r.KeysOf(rec.MB) {
			e := f.r.Index.Entry(key)
			if e == nil {
				continue
			}
			removed, died := e.RemovePostingDieIfEmpty(rec, f.r.Index.K())
			if !removed {
				continue
			}
			f.r.Index.NotePostingsRemoved(1)
			freed += 16
			if died {
				f.r.Index.DetachEntry(e)
				freed += memsize.EntryBytes(f.r.Index.KeyLen(key))
			}
			freed += f.r.Unref(rec, buf)
		}
	}
	return freed
}

// OverheadBytes reports the segment directory cost: one pointer per
// tracked record.
func (f *FIFO[K]) OverheadBytes() int64 {
	f.mu.Lock()
	var n int64
	for _, s := range f.segs {
		n += int64(len(s.recs))
	}
	f.mu.Unlock()
	return n * 8
}
