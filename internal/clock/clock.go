// Package clock provides the time source used across the system.
//
// All flushing decisions in the paper depend only on the *ordering* of
// timestamps (last arrival, last queried), never on wall-clock durations.
// Experiments therefore run on a deterministic logical clock so that
// every run is reproducible; the server binary uses the wall clock.
package clock

import (
	"sync/atomic"
	"time"

	"kflushing/internal/types"
)

// Clock produces monotonically non-decreasing timestamps.
type Clock interface {
	// Now returns the current time. Successive calls never go backward.
	Now() types.Timestamp
}

// Logical is a deterministic clock that advances only when told to, plus
// an optional automatic increment per reading so that two consecutive
// reads are distinguishable. The zero value is ready to use.
type Logical struct {
	now  atomic.Int64
	step int64
}

// NewLogical returns a logical clock starting at start that advances by
// step on every Now call. step may be zero for a fully manual clock.
func NewLogical(start types.Timestamp, step int64) *Logical {
	l := &Logical{step: step}
	l.now.Store(int64(start))
	return l
}

// Now returns the current logical time, advancing it by the configured
// step. Safe for concurrent use.
func (l *Logical) Now() types.Timestamp {
	if l.step == 0 {
		return types.Timestamp(l.now.Load())
	}
	return types.Timestamp(l.now.Add(l.step))
}

// Advance moves the clock forward by d logical units.
func (l *Logical) Advance(d int64) { l.now.Add(d) }

// Set moves the clock to t if t is later than the current time. Setting
// an earlier time is ignored, preserving monotonicity.
func (l *Logical) Set(t types.Timestamp) {
	for {
		cur := l.now.Load()
		if int64(t) <= cur {
			return
		}
		if l.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// Wall is a Clock backed by the operating system clock with microsecond
// resolution.
type Wall struct{}

// Now returns the wall-clock time in microseconds since the Unix epoch.
func (Wall) Now() types.Timestamp {
	return types.Timestamp(time.Now().UnixMicro())
}
