package clock

import (
	"sync"
	"testing"
	"time"

	"kflushing/internal/types"
)

func TestLogicalManual(t *testing.T) {
	c := NewLogical(10, 0)
	if c.Now() != 10 {
		t.Fatalf("Now = %d", c.Now())
	}
	c.Advance(5)
	if c.Now() != 15 {
		t.Fatalf("after Advance: %d", c.Now())
	}
	c.Set(100)
	if c.Now() != 100 {
		t.Fatalf("after Set: %d", c.Now())
	}
	c.Set(50) // earlier: ignored
	if c.Now() != 100 {
		t.Fatalf("Set went backward: %d", c.Now())
	}
}

func TestLogicalAutoStep(t *testing.T) {
	c := NewLogical(0, 1)
	a, b := c.Now(), c.Now()
	if b <= a {
		t.Fatalf("auto-step not monotone: %d then %d", a, b)
	}
}

func TestLogicalConcurrentMonotone(t *testing.T) {
	c := NewLogical(0, 1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last types.Timestamp
			for i := 0; i < 1000; i++ {
				now := c.Now()
				if now < last {
					t.Error("clock went backward")
					return
				}
				last = now
			}
		}()
	}
	wg.Wait()
}

func TestWallIsCurrent(t *testing.T) {
	w := Wall{}
	got := w.Now()
	want := time.Now().UnixMicro()
	if d := int64(got) - want; d < -2_000_000 || d > 2_000_000 {
		t.Fatalf("wall clock off by %dµs", d)
	}
}
