package core

import (
	"fmt"
	"testing"

	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/disk"
	"kflushing/internal/index"
	"kflushing/internal/memsize"
	"kflushing/internal/policy"
	"kflushing/internal/store"
	"kflushing/internal/types"
)

// memSink collects flushed records in memory for assertions.
type memSink struct {
	recs []disk.FlushRecord
}

func (s *memSink) Flush(recs []disk.FlushRecord) error {
	s.recs = append(s.recs, recs...)
	return nil
}

// harness wires an index, store, and kFlushing policy without an engine,
// so phases can be exercised directly.
type harness struct {
	ix   *index.Index[string]
	st   *store.Store
	mem  *memsize.Tracker
	sink *memSink
	pol  *KFlushing[string]
	clk  *clock.Logical
	next uint64
}

func newHarness(k int, mk bool, opts ...Option[string]) *harness {
	h := &harness{
		st:   store.New(),
		mem:  &memsize.Tracker{},
		sink: &memSink{},
		clk:  clock.NewLogical(1, 0),
	}
	h.ix = index.New(index.Config[string]{
		Hash:       attr.HashString,
		KeyLen:     attr.KeywordLen,
		K:          k,
		TrackTopK:  mk,
		TrackOverK: true,
		Tracker:    h.mem,
	})
	if mk {
		h.pol = NewMK(opts...)
	} else {
		h.pol = New(opts...)
	}
	h.pol.Attach(&policy.Resources[string]{
		Index:  h.ix,
		Store:  h.st,
		Mem:    h.mem,
		Sink:   h.sink,
		KeysOf: attr.KeywordKeys,
		Clock:  h.clk,
	})
	return h
}

// add ingests one record with the given keywords at the next timestamp.
func (h *harness) add(kws ...string) *store.Record {
	h.next++
	mb := &types.Microblog{
		ID:        types.ID(h.next),
		Timestamp: types.Timestamp(h.next),
		Keywords:  kws,
		Text:      "text",
	}
	rec := store.NewRecord(mb, float64(mb.Timestamp))
	h.st.Put(rec)
	h.mem.AddData(rec.Bytes)
	for _, kw := range attr.KeywordKeys(mb) {
		h.ix.Insert(kw, rec)
	}
	h.clk.Set(mb.Timestamp)
	return rec
}

func (h *harness) flush(t *testing.T, target int64) int64 {
	t.Helper()
	freed, err := h.pol.Flush(target)
	if err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return freed
}

func TestPhase1TrimsBeyondTopK(t *testing.T) {
	h := newHarness(3, false)
	for i := 0; i < 10; i++ {
		h.add("hot")
	}
	h.add("cold")
	h.flush(t, 1) // tiny target: phase 1 still trims all useless data

	if got := h.ix.Entry("hot").Len(); got != 3 {
		t.Errorf("hot entry len = %d, want 3", got)
	}
	if got := h.ix.Entry("cold").Len(); got != 1 {
		t.Errorf("cold entry len = %d, want 1 (phase 2 not needed)", got)
	}
	// 7 single-keyword records fully evicted.
	if len(h.sink.recs) != 7 {
		t.Errorf("flushed %d records, want 7", len(h.sink.recs))
	}
	if h.st.Len() != 4 {
		t.Errorf("store len = %d, want 4", h.st.Len())
	}
}

func TestPhase1KeepsSharedRecordsUntilUnreferenced(t *testing.T) {
	h := newHarness(2, false)
	// rec appears in "hot" (will be trimmed there) and "warm" (top-k).
	shared := h.add("hot", "warm")
	for i := 0; i < 5; i++ {
		h.add("hot")
	}
	h.flush(t, 1)

	if shared.PCount() != 1 {
		t.Fatalf("shared pcount = %d, want 1", shared.PCount())
	}
	if h.st.Get(shared.MB.ID) == nil {
		t.Fatal("shared record evicted from store while still referenced")
	}
	// It must have been persisted (partial flush) so disk stays
	// complete for "hot".
	if !shared.OnDisk() {
		t.Error("trimmed-but-referenced record not persisted")
	}
}

func TestPhase2EvictsLeastRecentlyArrived(t *testing.T) {
	h := newHarness(3, false)
	// Three under-k entries, arrival order old → new.
	h.add("old")
	h.add("mid")
	h.add("new")
	// Target big enough to need phase 2 but small enough to keep some.
	freed := h.flush(t, 350)
	if freed < 350 {
		t.Fatalf("freed %d < target", freed)
	}
	if h.ix.Entry("old") != nil {
		t.Error("oldest entry survived phase 2")
	}
	if h.ix.Entry("new") == nil {
		t.Error("newest entry evicted before older ones")
	}
}

func TestPhase3EvictsLeastRecentlyQueried(t *testing.T) {
	h := newHarness(1, false)
	h.add("a")
	h.add("b")
	h.add("c")
	// All entries have exactly k=1 postings; phases 1-2 cannot help.
	h.ix.Entry("a").Touch(100)
	h.ix.Entry("c").Touch(200)
	// "b" was never queried → flushed first.
	h.flush(t, 300)
	if h.ix.Entry("b") != nil {
		t.Error("never-queried entry survived phase 3")
	}
	if h.ix.Entry("c") == nil {
		t.Error("most recently queried entry evicted first")
	}
}

func TestPhasesRespectMaxPhase(t *testing.T) {
	h := newHarness(1, false, WithMaxPhase[string](1))
	h.add("a")
	h.add("b")
	// k=1, nothing beyond top-k → phase 1 frees nothing, and phases
	// 2/3 are disabled.
	if freed := h.flush(t, 1<<20); freed != 0 {
		t.Fatalf("freed %d with MaxPhase=1, want 0", freed)
	}
	if h.ix.Entries() != 2 {
		t.Fatalf("entries = %d, want 2", h.ix.Entries())
	}
}

func TestMKPhase1RetainsTopKElsewhere(t *testing.T) {
	h := newHarness(2, true)
	// shared is old in "hot" (beyond top-k) but top-k in "niche".
	shared := h.add("hot", "niche")
	for i := 0; i < 5; i++ {
		h.add("hot")
	}
	h.flush(t, 1)
	// MK keeps shared in BOTH entries: it is top-k in "niche".
	if !h.ix.Entry("hot").Contains(shared) {
		t.Error("MK trimmed a posting still top-k elsewhere")
	}
	if shared.PCount() != 2 {
		t.Errorf("shared pcount = %d, want 2", shared.PCount())
	}

	// Push shared out of niche's top-k too; next flush removes it
	// everywhere.
	h.add("niche")
	h.add("niche")
	// niche now has 3 postings (> k=2) and was re-registered on L.
	h.flush(t, 1)
	if h.ix.Entry("hot").Contains(shared) {
		t.Error("MK kept a posting that is top-k nowhere")
	}
	if shared.PCount() != 0 {
		t.Errorf("shared pcount = %d, want 0", shared.PCount())
	}
	if h.st.Get(shared.MB.ID) != nil {
		t.Error("fully trimmed record still in store")
	}
}

func TestMKPhase2KeepsPostingsOfFrequentPartners(t *testing.T) {
	// Cap at phase 2: with the tiny data set the target is never met,
	// and phase 3 would otherwise evict arbitrary entries afterwards.
	h := newHarness(2, true, WithMaxPhase[string](2))
	// "freq" is k-filled; shared lives in freq's top-k and in "rare".
	shared := h.add("freq", "rare")
	h.add("freq")
	// One more under-k entry, older than nothing else — only "rare"
	// and "lone" are phase-2 candidates.
	h.add("lone")

	// Make the target require evicting the under-k entries.
	h.flush(t, 900)
	// "rare" must survive as a shrunken entry holding only shared.
	rare := h.ix.Entry("rare")
	if rare == nil {
		t.Fatal("rare entry fully removed despite frequent partner")
	}
	if !rare.Contains(shared) {
		t.Error("shared posting missing from kept rare entry")
	}
	if h.ix.Entry("lone") != nil {
		t.Error("lone entry should have been evicted")
	}
}

func TestVictimBufferWritesOnceAndBalancesTemp(t *testing.T) {
	h := newHarness(2, false)
	shared := h.add("a", "b")
	for i := 0; i < 4; i++ {
		h.add("a")
	}
	for i := 0; i < 4; i++ {
		h.add("b")
	}
	h.flush(t, 1) // partial-flushes shared once (trimmed from both... )
	count := 0
	for _, fr := range h.sink.recs {
		if fr.MB.ID == shared.MB.ID {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("shared record written %d times, want 1", count)
	}
	// Temporary buffer must be fully released after the flush.
	if h.mem.PeakTemp() == 0 {
		t.Error("peak temp buffer not recorded")
	}
}

func TestOverheadBytesAccounting(t *testing.T) {
	h := newHarness(2, false)
	for i := 0; i < 5; i++ {
		h.add(fmt.Sprintf("k%d", i))
	}
	want := h.ix.Entries()*16 + int64(h.ix.OverKLen())*8
	if got := h.pol.OverheadBytes(); got != want+h.mem.PeakTemp() {
		t.Fatalf("OverheadBytes = %d, want %d", got, want+h.mem.PeakTemp())
	}
}

func TestFreedAccountingMatchesGauges(t *testing.T) {
	h := newHarness(3, false)
	for i := 0; i < 50; i++ {
		h.add("hot")
	}
	for i := 0; i < 10; i++ {
		h.add(fmt.Sprintf("cold%d", i))
	}
	before := h.mem.Used()
	freed := h.flush(t, 2000)
	after := h.mem.Used()
	if got := before - after; got != freed {
		t.Fatalf("gauge delta %d != reported freed %d", got, freed)
	}
}
