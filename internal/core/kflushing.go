// Package core implements kFlushing, the paper's contribution: a
// query-aware main-memory flushing policy for top-k microblog search.
//
// kFlushing runs three consecutive phases, each invoked only when its
// predecessors could not free the requested budget B:
//
//	Phase 1 — regular flushing (Section III-A): trim the postings ranked
//	outside the top-k of every over-full index entry. These are the
//	"useless microblogs" that can never appear in a top-k answer; on
//	real data they occupy ~75% of memory for k=20. The over-k entries
//	are found through the list L maintained at insertion time, so the
//	phase never scans the whole key space.
//
//	Phase 2 — aggressive flushing (Section III-B): evict whole entries
//	holding fewer than k postings — queries on them would miss anyway,
//	so evicting them cannot add disk accesses. Victims are the least
//	recently *arrived* entries, selected by a single-pass O(n) heap
//	algorithm rather than an O(n log n) sort.
//
//	Phase 3 — forced flushing (Section III-C): every remaining entry
//	holds exactly k postings and anything flushed may now cost hits, so
//	evict the least recently *queried* entries — query streams show
//	strong temporal locality, so recently queried keys stay.
//
// The MK variant (Section IV-D) retains a posting in all of its entries
// while it remains inside the top-k of any entry, trading a little
// memory for higher AND-query hit ratios.
package core

import (
	"runtime"
	"sync"
	"time"

	"kflushing/internal/failpoint"

	"kflushing/internal/flushlog"
	"kflushing/internal/index"
	"kflushing/internal/memsize"
	"kflushing/internal/policy"
	"kflushing/internal/store"
)

// KFlushing implements policy.Policy. The zero value is not usable; use
// New or NewMK.
type KFlushing[K comparable] struct {
	// maxPhase caps execution for ablation studies: 1 runs only regular
	// flushing, 2 adds aggressive flushing, 3 (default) all phases.
	maxPhase int
	// mk enables the multiple-keyword extension.
	mk bool
	// selector picks Phase 2/3 victims; the heap selector is the
	// paper's O(n) algorithm, the sort selector the strawman baseline.
	selector Selector[K]
	// parallelism caps the flush worker pool; 0 selects
	// min(GOMAXPROCS, index shards). 1 forces sequential flushing.
	parallelism int

	r *policy.Resources[K]
}

// Option configures a KFlushing policy.
type Option[K comparable] func(*KFlushing[K])

// WithMaxPhase caps the executed phases at p in [1,3], for the Figure 5
// ablation.
func WithMaxPhase[K comparable](p int) Option[K] {
	return func(f *KFlushing[K]) {
		if p >= 1 && p <= 3 {
			f.maxPhase = p
		}
	}
}

// WithSelector overrides the Phase 2/3 victim selector.
func WithSelector[K comparable](s Selector[K]) Option[K] {
	return func(f *KFlushing[K]) { f.selector = s }
}

// WithParallelism caps the worker pool used by the shard-parallel flush
// paths (Phase 1 trimming and the Phase 2/3 victim scans). 0 restores
// the default of min(GOMAXPROCS, index shards); 1 forces the sequential
// execution used as the benchmark baseline.
func WithParallelism[K comparable](n int) Option[K] {
	return func(f *KFlushing[K]) {
		if n < 0 {
			n = 0
		}
		f.parallelism = n
		switch s := f.selector.(type) {
		case HeapSelector[K]:
			s.Workers = n
			f.selector = s
		case SortSelector[K]:
			s.Workers = n
			f.selector = s
		}
	}
}

// New returns the kFlushing policy for single-key workloads.
func New[K comparable](opts ...Option[K]) *KFlushing[K] {
	f := &KFlushing[K]{maxPhase: 3, selector: HeapSelector[K]{}}
	for _, o := range opts {
		o(f)
	}
	return f
}

// NewMK returns the kFlushing-MK policy with the multiple-keyword
// extension enabled. The index must be built with TrackTopK.
func NewMK[K comparable](opts ...Option[K]) *KFlushing[K] {
	f := New(opts...)
	f.mk = true
	return f
}

// Name implements policy.Policy.
func (f *KFlushing[K]) Name() string {
	if f.mk {
		return "kflushing-mk"
	}
	return "kflushing"
}

// MK reports whether the multiple-keyword extension is active.
func (f *KFlushing[K]) MK() bool { return f.mk }

// Attach implements policy.Policy.
func (f *KFlushing[K]) Attach(r *policy.Resources[K]) { f.r = r }

// OnIngest implements policy.Policy. kFlushing needs no per-ingest work
// beyond what the index already maintains (the over-k list and
// per-entry arrival timestamps) — batches included.
func (f *KFlushing[K]) OnIngest([]*store.Record, [][]K) {}

// OnAccess implements policy.Policy. Query-time bookkeeping is the
// per-entry last-queried timestamp, written by the query engine; no
// per-record tracking is needed — that is the policy's overhead
// advantage over LRU.
func (f *KFlushing[K]) OnAccess([]*store.Record) {}

// Flush implements policy.Policy, running the phases in order until the
// target is met. Each phase's duration and freed bytes are recorded in
// the engine's metrics registry and flush audit journal when attached.
func (f *KFlushing[K]) Flush(target int64) (int64, error) {
	k := f.r.Index.K()
	buf := policy.NewVictimBuffer(f.r.Mem, f.r.Sink, true)
	freed := f.timedPhase(1, "regular", func(pe *flushlog.PhaseEvent) int64 {
		return f.phase1(k, buf, pe)
	})
	// The inter-phase failpoints model a failure (or crash) with the
	// victim buffer partially filled: everything evicted so far must
	// still reach the sink or be rolled back by the engine, so Close
	// runs even on the error path and its error wins only if no phase
	// failed first.
	if err := failpoint.Eval(failpoint.FlushAfterPhase1); err != nil {
		if cerr := buf.Close(); cerr != nil {
			return freed, cerr
		}
		return freed, err
	}
	if freed < target && f.maxPhase >= 2 {
		freed += f.timedPhase(2, "aggressive", func(pe *flushlog.PhaseEvent) int64 {
			return f.phase2(k, target-freed, buf, pe)
		})
	}
	if err := failpoint.Eval(failpoint.FlushAfterPhase2); err != nil {
		if cerr := buf.Close(); cerr != nil {
			return freed, cerr
		}
		return freed, err
	}
	if freed < target && f.maxPhase >= 3 {
		freed += f.timedPhase(3, "forced", func(pe *flushlog.PhaseEvent) int64 {
			return f.phase3(k, target-freed, buf, pe)
		})
	}
	return freed, buf.Close()
}

// timedPhase runs one phase, feeds its duration and freed bytes to the
// per-phase histograms, and records the phase in the audit journal. The
// phase fills in its own victim count (and shard timings when parallel)
// through the event it receives.
func (f *KFlushing[K]) timedPhase(phase int, name string, run func(*flushlog.PhaseEvent) int64) int64 {
	start := time.Now()
	pe := flushlog.PhaseEvent{Phase: phase, Name: name}
	freed := run(&pe)
	d := time.Since(start)
	if f.r.Metrics != nil {
		f.r.Metrics.ObservePhase(phase, d, freed)
	}
	pe.Freed = freed
	pe.Nanos = d.Nanoseconds()
	f.r.Journal.Phase(pe)
	return freed
}

// parallelMinWork is the smallest work-unit count worth fanning out over
// goroutines; below it the spawn cost dominates any speedup.
const parallelMinWork = 32

// workers returns the flush worker-pool size for a task of `work`
// independent units: min(GOMAXPROCS, index shards), capped by the work
// itself, and 1 when the task is too small to amortize goroutine spawns.
func (f *KFlushing[K]) workers(work int) int {
	if work < parallelMinWork && f.parallelism == 0 {
		return 1
	}
	n := f.parallelism
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if s := f.r.Index.ShardCount(); n > s {
		n = s
	}
	if n > work {
		n = work
	}
	if n < 1 {
		n = 1
	}
	return n
}

// phase1 trims all postings beyond the top-k of every entry in the
// over-k list L. It intentionally ignores the budget: useless postings
// are free wins, so the phase removes them all (Figure 5(a) shows early
// Phase 1 runs flushing far more than B).
//
// The entries of L are independent work units (each trim takes only its
// own entry lock; record release, memory accounting, and the victim
// buffer are all concurrency-safe), so the list is split over a bounded
// worker pool and the per-worker freed-byte counts are merged — this is
// the digestion-side half of running flushing truly concurrently with a
// multi-core ingest path.
func (f *KFlushing[K]) phase1(k int, buf *policy.VictimBuffer, pe *flushlog.PhaseEvent) int64 {
	var keep func(*store.Record) bool
	if f.mk {
		// MK retention rule: a posting beyond this entry's top-k stays
		// while it is still a top-k posting somewhere else.
		keep = func(rec *store.Record) bool { return rec.TopKCount() > 0 }
	}
	entries := f.r.Index.TakeOverK()
	pe.Victims = int64(len(entries))
	workers := f.workers(len(entries))
	if workers <= 1 {
		return f.trimEntries(entries, k, keep, buf)
	}
	freedBy := make([]int64, workers)
	shardNanos := make([]int64, workers)
	var wg sync.WaitGroup
	spawned := 0
	chunk := (len(entries) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(entries))
		if lo >= hi {
			break
		}
		spawned++
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			ws := time.Now()
			freedBy[w] = f.trimEntries(entries[lo:hi], k, keep, buf)
			shardNanos[w] = time.Since(ws).Nanoseconds()
		}(w, lo, hi)
	}
	wg.Wait()
	pe.ShardNanos = shardNanos[:spawned]
	var freed int64
	for _, n := range freedBy {
		freed += n
	}
	return freed
}

// trimEntries runs the Phase 1 trim over one worker's slice of the
// over-k list.
func (f *KFlushing[K]) trimEntries(entries []*index.Entry[K], k int, keep func(*store.Record) bool, buf *policy.VictimBuffer) int64 {
	var freed int64
	for _, e := range entries {
		removed := e.TrimBeyondTopK(k, keep)
		f.r.Index.NotePostingsRemoved(len(removed))
		freed += int64(len(removed)) * memsize.PostingSize
		for _, rec := range removed {
			n := f.r.Unref(rec, buf)
			freed += n
			if n == 0 {
				// Still referenced by other entries: the record stays
				// in memory, but persist a copy so disk search remains
				// complete for the key it just left.
				buf.AddPartial(rec)
			}
		}
		if e.BeyondTopK(k) > 0 {
			// MK retention left the entry above k; keep it on L so the
			// next Phase 1 re-examines it.
			f.r.Index.ReRegisterOverK(e)
		}
		f.r.Index.RecyclePostings(removed)
	}
	return freed
}

// phase2 evicts whole under-k entries, least recently arrived first,
// until target bytes are freed.
func (f *KFlushing[K]) phase2(k int, target int64, buf *policy.VictimBuffer, pe *flushlog.PhaseEvent) int64 {
	victims := f.selector.Select(f.r.Index, target, func(e *index.Entry[K]) (int64, bool) {
		n := e.Len()
		if n == 0 || n >= k {
			return 0, false
		}
		return int64(e.LastArrival()), true
	})
	var freed int64
	for _, e := range victims {
		if freed >= target {
			break
		}
		pe.Victims++
		var keep func(*store.Record) bool
		if f.mk {
			// Extended rule: keep postings that also live in a
			// frequent (>= k postings) entry, so AND queries pairing
			// this key with a frequent one can still be answered from
			// memory. The victim entry itself is excluded: its lock
			// is held while the predicate runs.
			victim := e
			keep = func(rec *store.Record) bool { return f.inFrequentEntryExcept(rec, k, victim) }
		}
		freed += f.evictEntry(e, keep, buf)
	}
	return freed
}

// phase3 evicts entries in least-recently-queried order regardless of
// size. Per Section IV-D, Phase 3 is identical under MK: everything
// still in memory could cause a hit, so victims are chosen purely by
// query recency.
func (f *KFlushing[K]) phase3(_ int, target int64, buf *policy.VictimBuffer, pe *flushlog.PhaseEvent) int64 {
	victims := f.selector.Select(f.r.Index, target, func(e *index.Entry[K]) (int64, bool) {
		if e.Len() == 0 {
			return 0, false
		}
		return int64(e.LastQueried()), true
	})
	var freed int64
	for _, e := range victims {
		if freed >= target {
			break
		}
		pe.Victims++
		freed += f.evictEntry(e, nil, buf)
	}
	return freed
}

// inFrequentEntryExcept reports whether rec is currently referenced by
// an index entry other than except holding at least k postings. The
// exclusion matters for correctness and locking: the caller holds
// except's lock, and a key being evicted cannot count as the frequent
// partner anyway.
func (f *KFlushing[K]) inFrequentEntryExcept(rec *store.Record, k int, except *index.Entry[K]) bool {
	for _, key := range f.r.KeysOf(rec.MB) {
		e := f.r.Index.Entry(key)
		if e == nil || e == except {
			continue
		}
		if e.Len() >= k && e.Contains(rec) {
			return true
		}
	}
	return false
}

// evictEntry removes e from the index (entirely, or shrunken to its kept
// postings under the MK rule) and releases the removed records,
// returning the budget-relevant bytes freed.
func (f *KFlushing[K]) evictEntry(e *index.Entry[K], keep func(*store.Record) bool, buf *policy.VictimBuffer) int64 {
	var removed []*store.Record
	var retained int
	k := f.r.Index.K()
	if keep == nil {
		removed = e.DetachAll(k)
	} else {
		removed, retained = e.DetachExcept(k, keep)
	}
	var freed int64
	if retained == 0 {
		f.r.Index.DetachEntry(e)
		freed += memsize.EntryBytes(f.r.Index.KeyLen(e.Key()))
	}
	f.r.Index.NotePostingsRemoved(len(removed))
	freed += int64(len(removed)) * memsize.PostingSize
	for _, rec := range removed {
		n := f.r.Unref(rec, buf)
		freed += n
		if n == 0 {
			buf.AddPartial(rec)
		}
	}
	f.r.Index.RecyclePostings(removed)
	return freed
}

// OverheadBytes reports kFlushing's bookkeeping: one arrival and one
// query timestamp per *entry* (not per item), the over-k list L, the MK
// top-k counters when enabled, and the peak temporary flush buffer.
func (f *KFlushing[K]) OverheadBytes() int64 {
	n := f.r.Index.Entries()*16 + int64(f.r.Index.OverKLen())*8
	if f.mk {
		n += f.r.Store.Len() * 4 // one top-k membership counter per record
	}
	return n + f.r.Mem.PeakTemp()
}
