package core

import (
	"container/heap"
	"sort"

	"kflushing/internal/index"
)

// Selector picks the victim entries for Phases 2 and 3. classify maps an
// entry to its eviction timestamp (arrival time for Phase 2, query time
// for Phase 3) and reports whether it is a candidate at all. The
// returned victims are ordered least-recent first and their estimated
// freeable bytes sum to at least target when enough candidates exist.
type Selector[K comparable] interface {
	Select(ix *index.Index[K], target int64, classify func(*index.Entry[K]) (ts int64, ok bool)) []*index.Entry[K]
}

type victim[K comparable] struct {
	e  *index.Entry[K]
	ts int64
	fb int64
}

// victimHeap is a max-heap on timestamp: the most recent buffered victim
// sits at the top, ready to be displaced by older candidates.
type victimHeap[K comparable] []victim[K]

func (h victimHeap[K]) Len() int            { return len(h) }
func (h victimHeap[K]) Less(i, j int) bool  { return h[i].ts > h[j].ts }
func (h victimHeap[K]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *victimHeap[K]) Push(x interface{}) { *h = append(*h, x.(victim[K])) }
func (h *victimHeap[K]) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// HeapSelector is the paper's single-pass O(n) victim selection: one
// traversal over the candidate entries maintaining an on-the-go buffer
// (a max-heap on recency) whose total memory consumption stays at or
// just above the target, always holding the least recently used
// candidates seen so far.
type HeapSelector[K comparable] struct{}

// Select implements Selector.
func (HeapSelector[K]) Select(ix *index.Index[K], target int64, classify func(*index.Entry[K]) (int64, bool)) []*index.Entry[K] {
	var h victimHeap[K]
	var total int64
	ix.Range(func(e *index.Entry[K]) bool {
		ts, ok := classify(e)
		if !ok {
			return true
		}
		fb := e.FreeableBytes(ix.KeyLen(e.Key()))
		switch {
		case total < target:
			// Still filling the buffer up to the target.
			heap.Push(&h, victim[K]{e: e, ts: ts, fb: fb})
			total += fb
		case len(h) > 0 && ts < h[0].ts:
			// Older than the most recent buffered victim: admit it,
			// then shed the most recent victims while the buffer still
			// meets the target without them.
			heap.Push(&h, victim[K]{e: e, ts: ts, fb: fb})
			total += fb
			for len(h) > 0 && total-h[0].fb >= target {
				total -= h[0].fb
				heap.Pop(&h)
			}
		}
		return true
	})
	out := make([]victim[K], len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool { return out[i].ts < out[j].ts })
	entries := make([]*index.Entry[K], len(out))
	for i, v := range out {
		entries[i] = v.e
	}
	return entries
}

// SortSelector is the straightforward O(n log n) alternative the paper
// rejects: sort every candidate by recency, then take the least recent
// prefix whose freeable bytes reach the target. Kept as the ablation
// baseline for the selection benchmarks.
type SortSelector[K comparable] struct{}

// Select implements Selector.
func (SortSelector[K]) Select(ix *index.Index[K], target int64, classify func(*index.Entry[K]) (int64, bool)) []*index.Entry[K] {
	var all []victim[K]
	ix.Range(func(e *index.Entry[K]) bool {
		if ts, ok := classify(e); ok {
			all = append(all, victim[K]{e: e, ts: ts, fb: e.FreeableBytes(ix.KeyLen(e.Key()))})
		}
		return true
	})
	sort.Slice(all, func(i, j int) bool { return all[i].ts < all[j].ts })
	var total int64
	var out []*index.Entry[K]
	for _, v := range all {
		if total >= target {
			break
		}
		out = append(out, v.e)
		total += v.fb
	}
	return out
}
