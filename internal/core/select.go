package core

import (
	"container/heap"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"kflushing/internal/index"
)

// Selector picks the victim entries for Phases 2 and 3. classify maps an
// entry to its eviction timestamp (arrival time for Phase 2, query time
// for Phase 3) and reports whether it is a candidate at all. The
// returned victims are ordered least-recent first and their estimated
// freeable bytes sum to at least target when enough candidates exist.
type Selector[K comparable] interface {
	Select(ix *index.Index[K], target int64, classify func(*index.Entry[K]) (ts int64, ok bool)) []*index.Entry[K]
}

type victim[K comparable] struct {
	e  *index.Entry[K]
	ts int64
	fb int64
}

// victimHeap is a max-heap on timestamp: the most recent buffered victim
// sits at the top, ready to be displaced by older candidates.
type victimHeap[K comparable] []victim[K]

func (h victimHeap[K]) Len() int            { return len(h) }
func (h victimHeap[K]) Less(i, j int) bool  { return h[i].ts > h[j].ts }
func (h victimHeap[K]) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *victimHeap[K]) Push(x interface{}) { *h = append(*h, x.(victim[K])) }
func (h *victimHeap[K]) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// scanVictims collects every classify-accepted entry with its eviction
// timestamp and freeable-byte estimate. The scan — the O(n) part of
// victim selection that walks every entry and takes its lock to size it
// — is fanned out over the index shards with a bounded worker pool of
// min(GOMAXPROCS, shards) goroutines (or `workers`, when positive);
// shards are handed out through an atomic cursor so uneven shards cannot
// stall the pool. Candidate collection is order-insensitive: selection
// itself stays sequential in the callers.
func scanVictims[K comparable](ix *index.Index[K], workers int, classify func(*index.Entry[K]) (int64, bool)) []victim[K] {
	shards := ix.ShardCount()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	collect := func(shard int, out []victim[K]) []victim[K] {
		ix.RangeShard(shard, func(e *index.Entry[K]) bool {
			if ts, ok := classify(e); ok {
				out = append(out, victim[K]{e: e, ts: ts, fb: e.FreeableBytes(ix.KeyLen(e.Key()))})
			}
			return true
		})
		return out
	}
	if workers <= 1 {
		var all []victim[K]
		for i := 0; i < shards; i++ {
			all = collect(i, all)
		}
		return all
	}
	perWorker := make([][]victim[K], workers)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var out []victim[K]
			for {
				i := int(cursor.Add(1)) - 1
				if i >= shards {
					break
				}
				out = collect(i, out)
			}
			perWorker[w] = out
		}(w)
	}
	wg.Wait()
	var n int
	for _, part := range perWorker {
		n += len(part)
	}
	all := make([]victim[K], 0, n)
	for _, part := range perWorker {
		all = append(all, part...)
	}
	return all
}

// HeapSelector is the paper's single-pass O(n) victim selection: one
// traversal over the candidate entries maintaining an on-the-go buffer
// (a max-heap on recency) whose total memory consumption stays at or
// just above the target, always holding the least recently used
// candidates seen so far.
//
// The candidate *scan* runs shard-parallel (see scanVictims); the heap
// pass itself is kept sequential — it is O(n) with a heap bounded by the
// target, and its shed-the-most-recent loop is inherently order
// sensitive, so parallelizing it would buy little and cost correctness.
type HeapSelector[K comparable] struct {
	// Workers caps the scan worker pool; 0 selects
	// min(GOMAXPROCS, shards), 1 forces a sequential scan.
	Workers int
}

// Select implements Selector.
func (s HeapSelector[K]) Select(ix *index.Index[K], target int64, classify func(*index.Entry[K]) (int64, bool)) []*index.Entry[K] {
	var h victimHeap[K]
	var total int64
	for _, v := range scanVictims(ix, s.Workers, classify) {
		switch {
		case total < target:
			// Still filling the buffer up to the target.
			heap.Push(&h, v)
			total += v.fb
		case len(h) > 0 && v.ts < h[0].ts:
			// Older than the most recent buffered victim: admit it,
			// then shed the most recent victims while the buffer still
			// meets the target without them.
			heap.Push(&h, v)
			total += v.fb
			for len(h) > 0 && total-h[0].fb >= target {
				total -= h[0].fb
				heap.Pop(&h)
			}
		}
	}
	out := make([]victim[K], len(h))
	copy(out, h)
	sort.Slice(out, func(i, j int) bool { return out[i].ts < out[j].ts })
	entries := make([]*index.Entry[K], len(out))
	for i, v := range out {
		entries[i] = v.e
	}
	return entries
}

// SortSelector is the straightforward O(n log n) alternative the paper
// rejects: sort every candidate by recency, then take the least recent
// prefix whose freeable bytes reach the target. Kept as the ablation
// baseline for the selection benchmarks. It shares the shard-parallel
// candidate scan so the ablation isolates the selection algorithm.
type SortSelector[K comparable] struct {
	// Workers caps the scan worker pool; 0 selects
	// min(GOMAXPROCS, shards), 1 forces a sequential scan.
	Workers int
}

// Select implements Selector.
func (s SortSelector[K]) Select(ix *index.Index[K], target int64, classify func(*index.Entry[K]) (int64, bool)) []*index.Entry[K] {
	all := scanVictims(ix, s.Workers, classify)
	sort.Slice(all, func(i, j int) bool { return all[i].ts < all[j].ts })
	var total int64
	var out []*index.Entry[K]
	for _, v := range all {
		if total >= target {
			break
		}
		out = append(out, v.e)
		total += v.fb
	}
	return out
}
