package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"kflushing/internal/attr"
	"kflushing/internal/index"
	"kflushing/internal/store"
	"kflushing/internal/types"
)

// buildSelectorIndex creates n single-posting entries with the given
// timestamps (entry i named k<i> with arrival ts[i]).
func buildSelectorIndex(ts []int64) *index.Index[string] {
	ix := index.New(index.Config[string]{
		Hash:       attr.HashString,
		KeyLen:     attr.KeywordLen,
		K:          5,
		TrackOverK: true,
	})
	for i, t := range ts {
		mb := &types.Microblog{
			ID:        types.ID(i + 1),
			Timestamp: types.Timestamp(t),
			Keywords:  []string{"k" + string(rune('A'+i%26)) + string(rune('0'+i/26))},
		}
		ix.Insert(mb.Keywords[0], store.NewRecord(mb, float64(t)))
	}
	return ix
}

func classifyArrival(e *index.Entry[string]) (int64, bool) {
	return int64(e.LastArrival()), true
}

// TestSelectorProperties checks the invariants both victim selectors
// must satisfy: victims are real candidates ordered least-recent first,
// and their estimated freeable bytes meet the target whenever the whole
// candidate set can.
func TestSelectorProperties(t *testing.T) {
	selectors := map[string]Selector[string]{
		"heap": HeapSelector[string]{},
		"sort": SortSelector[string]{},
	}
	f := func(seed int64, nRaw, targetRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%80) + 1
		ts := make([]int64, n)
		for i := range ts {
			ts[i] = int64(rng.Intn(1_000_000) + 1)
		}
		ix := buildSelectorIndex(ts)

		// Total freeable across all candidates.
		var totalAvail int64
		ix.Range(func(e *index.Entry[string]) bool {
			totalAvail += e.FreeableBytes(ix.KeyLen(e.Key()))
			return true
		})
		target := int64(targetRaw) * 8

		for name, sel := range selectors {
			victims := sel.Select(ix, target, classifyArrival)
			var sum int64
			last := int64(-1 << 62)
			for _, e := range victims {
				if int64(e.LastArrival()) < last {
					t.Logf("%s: victims not in ascending recency", name)
					return false
				}
				last = int64(e.LastArrival())
				sum += e.FreeableBytes(ix.KeyLen(e.Key()))
			}
			if target <= totalAvail && sum < target {
				t.Logf("%s: freeable %d < achievable target %d", name, sum, target)
				return false
			}
			if target > totalAvail && len(victims) != n {
				t.Logf("%s: target unachievable but not all candidates selected", name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectorPrefersOldest verifies that with distinct timestamps and a
// one-entry target, both selectors pick the oldest entry first.
func TestSelectorPrefersOldest(t *testing.T) {
	ts := []int64{500, 100, 900, 300, 700}
	for name, sel := range map[string]Selector[string]{
		"heap": HeapSelector[string]{},
		"sort": SortSelector[string]{},
	} {
		ix := buildSelectorIndex(ts)
		victims := sel.Select(ix, 1, classifyArrival)
		if len(victims) == 0 || victims[0].LastArrival() != 100 {
			t.Errorf("%s: first victim arrival = %v, want 100", name, victims)
		}
	}
}

// TestSelectorEmptyIndex covers the degenerate cases.
func TestSelectorEmptyIndex(t *testing.T) {
	ix := buildSelectorIndex(nil)
	for name, sel := range map[string]Selector[string]{
		"heap": HeapSelector[string]{},
		"sort": SortSelector[string]{},
	} {
		if v := sel.Select(ix, 1000, classifyArrival); len(v) != 0 {
			t.Errorf("%s: victims from empty index: %v", name, v)
		}
	}
}

// phase2Classify is the real Phase 2 predicate: an entry is a victim
// candidate only while it holds fewer than k postings (and is alive).
func phase2Classify(k int) func(e *index.Entry[string]) (int64, bool) {
	return func(e *index.Entry[string]) (int64, bool) {
		n := e.Len()
		if n == 0 || n >= k {
			return 0, false
		}
		return int64(e.LastArrival()), true
	}
}

// TestSelectorEmptyCandidateSet feeds a populated index through a
// classify that rejects every entry (the Phase 2 predicate with k=1:
// nothing is below k). Both selectors must return nothing rather than
// fall back to unclassified entries.
func TestSelectorEmptyCandidateSet(t *testing.T) {
	ts := []int64{400, 100, 300, 200, 500, 700, 600}
	for name, sel := range map[string]Selector[string]{
		"heap": HeapSelector[string]{},
		"sort": SortSelector[string]{},
	} {
		ix := buildSelectorIndex(ts)
		if v := sel.Select(ix, 1_000_000, phase2Classify(1)); len(v) != 0 {
			t.Errorf("%s: %d victims from an empty candidate set", name, len(v))
		}
	}
}

// TestSelectorAllEntriesBelowK is the Phase 2 shape where every entry
// qualifies (all single-posting, k=5) and the target exceeds the total
// freeable bytes: both selectors must surrender every entry, least
// recently arrived first, instead of looping or stopping short.
func TestSelectorAllEntriesBelowK(t *testing.T) {
	ts := []int64{400, 100, 300, 200, 500, 700, 600, 900, 800}
	for name, sel := range map[string]Selector[string]{
		"heap": HeapSelector[string]{},
		"sort": SortSelector[string]{},
	} {
		ix := buildSelectorIndex(ts)
		victims := sel.Select(ix, 1<<40, phase2Classify(5))
		if len(victims) != len(ts) {
			t.Fatalf("%s: %d victims, want all %d", name, len(victims), len(ts))
		}
		last := int64(-1)
		for _, e := range victims {
			if int64(e.LastArrival()) < last {
				t.Errorf("%s: victims not in ascending arrival order", name)
			}
			last = int64(e.LastArrival())
		}
	}
}

// shardOf locates the index shard holding entry e.
func shardOf(t *testing.T, ix *index.Index[string], target *index.Entry[string]) int {
	t.Helper()
	for i := 0; i < ix.ShardCount(); i++ {
		found := false
		ix.RangeShard(i, func(e *index.Entry[string]) bool {
			if e == target {
				found = true
				return false
			}
			return true
		})
		if found {
			return i
		}
	}
	t.Fatalf("entry %q not found in any shard", target.Key())
	return -1
}

// TestSelectorBudgetExactAtShardBoundary sets the target to the exact
// freeable sum of the j oldest entries, with j chosen so the last
// admitted entry and the first excluded one live in different index
// shards — the cut crosses a shard boundary, which is where the
// shard-parallel scan could plausibly over- or under-collect. All
// entries share one key length, so every freeable estimate is equal and
// the minimal victim set is exactly the j oldest; both selectors must
// hit the target with not one entry more.
func TestSelectorBudgetExactAtShardBoundary(t *testing.T) {
	const n = 32
	ts := make([]int64, n)
	for i := range ts {
		ts[i] = int64((i*7)%n + 1) // distinct arrivals, scrambled
	}
	ix := buildSelectorIndex(ts)

	// Entries ordered by arrival, oldest first.
	var byAge []*index.Entry[string]
	ix.Range(func(e *index.Entry[string]) bool {
		byAge = append(byAge, e)
		return true
	})
	sort.Slice(byAge, func(i, j int) bool { return byAge[i].LastArrival() < byAge[j].LastArrival() })

	fb := byAge[0].FreeableBytes(ix.KeyLen(byAge[0].Key()))
	for _, e := range byAge {
		if got := e.FreeableBytes(ix.KeyLen(e.Key())); got != fb {
			t.Fatalf("freeable bytes differ (%d vs %d); fixture needs uniform entries", got, fb)
		}
	}

	// The first age-adjacent pair split across shards marks the cut.
	j := -1
	for i := 0; i+1 < len(byAge); i++ {
		if shardOf(t, ix, byAge[i]) != shardOf(t, ix, byAge[i+1]) {
			j = i + 1
			break
		}
	}
	if j < 1 {
		t.Skip("all entries hashed into one shard; boundary case unreachable")
	}
	target := int64(j) * fb

	for name, sel := range map[string]Selector[string]{
		"heap": HeapSelector[string]{},
		"sort": SortSelector[string]{},
	} {
		victims := sel.Select(ix, target, classifyArrival)
		if len(victims) != j {
			t.Errorf("%s: %d victims for an exactly-satisfiable target, want %d", name, len(victims), j)
			continue
		}
		var sum int64
		for i, e := range victims {
			if e != byAge[i] {
				t.Errorf("%s: victim %d is %q, want oldest-first %q", name, i, e.Key(), byAge[i].Key())
			}
			sum += e.FreeableBytes(ix.KeyLen(e.Key()))
		}
		if sum != target {
			t.Errorf("%s: freeable sum %d, want exactly %d", name, sum, target)
		}
	}
}
