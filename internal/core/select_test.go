package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"kflushing/internal/attr"
	"kflushing/internal/index"
	"kflushing/internal/store"
	"kflushing/internal/types"
)

// buildSelectorIndex creates n single-posting entries with the given
// timestamps (entry i named k<i> with arrival ts[i]).
func buildSelectorIndex(ts []int64) *index.Index[string] {
	ix := index.New(index.Config[string]{
		Hash:       attr.HashString,
		KeyLen:     attr.KeywordLen,
		K:          5,
		TrackOverK: true,
	})
	for i, t := range ts {
		mb := &types.Microblog{
			ID:        types.ID(i + 1),
			Timestamp: types.Timestamp(t),
			Keywords:  []string{"k" + string(rune('A'+i%26)) + string(rune('0'+i/26))},
		}
		ix.Insert(mb.Keywords[0], store.NewRecord(mb, float64(t)))
	}
	return ix
}

func classifyArrival(e *index.Entry[string]) (int64, bool) {
	return int64(e.LastArrival()), true
}

// TestSelectorProperties checks the invariants both victim selectors
// must satisfy: victims are real candidates ordered least-recent first,
// and their estimated freeable bytes meet the target whenever the whole
// candidate set can.
func TestSelectorProperties(t *testing.T) {
	selectors := map[string]Selector[string]{
		"heap": HeapSelector[string]{},
		"sort": SortSelector[string]{},
	}
	f := func(seed int64, nRaw, targetRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%80) + 1
		ts := make([]int64, n)
		for i := range ts {
			ts[i] = int64(rng.Intn(1_000_000) + 1)
		}
		ix := buildSelectorIndex(ts)

		// Total freeable across all candidates.
		var totalAvail int64
		ix.Range(func(e *index.Entry[string]) bool {
			totalAvail += e.FreeableBytes(ix.KeyLen(e.Key()))
			return true
		})
		target := int64(targetRaw) * 8

		for name, sel := range selectors {
			victims := sel.Select(ix, target, classifyArrival)
			var sum int64
			last := int64(-1 << 62)
			for _, e := range victims {
				if int64(e.LastArrival()) < last {
					t.Logf("%s: victims not in ascending recency", name)
					return false
				}
				last = int64(e.LastArrival())
				sum += e.FreeableBytes(ix.KeyLen(e.Key()))
			}
			if target <= totalAvail && sum < target {
				t.Logf("%s: freeable %d < achievable target %d", name, sum, target)
				return false
			}
			if target > totalAvail && len(victims) != n {
				t.Logf("%s: target unachievable but not all candidates selected", name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectorPrefersOldest verifies that with distinct timestamps and a
// one-entry target, both selectors pick the oldest entry first.
func TestSelectorPrefersOldest(t *testing.T) {
	ts := []int64{500, 100, 900, 300, 700}
	for name, sel := range map[string]Selector[string]{
		"heap": HeapSelector[string]{},
		"sort": SortSelector[string]{},
	} {
		ix := buildSelectorIndex(ts)
		victims := sel.Select(ix, 1, classifyArrival)
		if len(victims) == 0 || victims[0].LastArrival() != 100 {
			t.Errorf("%s: first victim arrival = %v, want 100", name, victims)
		}
	}
}

// TestSelectorEmptyIndex covers the degenerate cases.
func TestSelectorEmptyIndex(t *testing.T) {
	ix := buildSelectorIndex(nil)
	for name, sel := range map[string]Selector[string]{
		"heap": HeapSelector[string]{},
		"sort": SortSelector[string]{},
	} {
		if v := sel.Select(ix, 1000, classifyArrival); len(v) != 0 {
			t.Errorf("%s: victims from empty index: %v", name, v)
		}
	}
}
