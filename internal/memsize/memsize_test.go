package memsize

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRecordBytesComposition(t *testing.T) {
	base := RecordBytes(0, nil)
	if base != RecordHeader {
		t.Fatalf("empty record = %d, want %d", base, RecordHeader)
	}
	withText := RecordBytes(100, nil)
	if withText != base+100 {
		t.Fatalf("text not charged: %d", withText)
	}
	withKw := RecordBytes(0, []string{"abcd"})
	if withKw != base+16+4 {
		t.Fatalf("keyword not charged: %d", withKw)
	}
}

func TestEntryBytes(t *testing.T) {
	if EntryBytes(0) != EntryHeader {
		t.Fatal("integer key entry")
	}
	if EntryBytes(5) != EntryHeader+5 {
		t.Fatal("string key entry")
	}
}

func TestTrackerGauges(t *testing.T) {
	var tr Tracker
	tr.AddData(100)
	tr.AddIndex(50)
	tr.AddOverhead(7)
	if tr.Used() != 150 {
		t.Fatalf("Used = %d", tr.Used())
	}
	if tr.Data() != 100 || tr.Index() != 50 || tr.Overhead() != 7 {
		t.Fatal("gauge mismatch")
	}
	tr.AddData(-100)
	tr.AddIndex(-50)
	if tr.Used() != 0 {
		t.Fatalf("Used after release = %d", tr.Used())
	}
}

func TestPeakTemp(t *testing.T) {
	var tr Tracker
	tr.AddTemp(10)
	tr.AddTemp(20) // now 30
	tr.AddTemp(-30)
	tr.AddTemp(5)
	if tr.PeakTemp() != 30 {
		t.Fatalf("PeakTemp = %d, want 30", tr.PeakTemp())
	}
	if tr.OverheadWithPeak() != 30 {
		t.Fatalf("OverheadWithPeak = %d", tr.OverheadWithPeak())
	}
}

func TestPeakTempConcurrent(t *testing.T) {
	var tr Tracker
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.AddTemp(3)
				tr.AddTemp(-3)
			}
		}()
	}
	wg.Wait()
	if p := tr.PeakTemp(); p < 3 || p > 24 {
		t.Fatalf("PeakTemp = %d outside [3,24]", p)
	}
}

// Property: RecordBytes is monotone in text length and keyword count.
func TestRecordBytesMonotone(t *testing.T) {
	f := func(textLen uint16, nkw uint8) bool {
		kws := make([]string, nkw%8)
		for i := range kws {
			kws[i] = "kw"
		}
		a := RecordBytes(int(textLen), kws)
		b := RecordBytes(int(textLen)+1, kws)
		c := RecordBytes(int(textLen), append(kws, "x"))
		return b > a && c > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
