// Package memsize implements the explicit memory-accounting model.
//
// Go exposes no per-allocation hooks, so the memory budget that triggers
// flushing is enforced against a byte-cost model rather than the runtime
// heap. The model charges every structure the paper's Figure 10(a)
// discusses: raw records, index postings, index entries, and — tracked
// separately so the flushing-overhead experiment can report it — the
// per-policy bookkeeping (LRU list nodes, kFlushing's per-entry
// timestamps and over-k list, FIFO's segment directory, and the
// temporary flush buffer).
package memsize

import "sync/atomic"

// Costs of the individual structures, in bytes. The values are derived
// from the actual Go struct layouts (pointer = 8 bytes on the evaluation
// platform) and kept as named constants so the model is auditable.
const (
	// RecordHeader covers the fixed part of a stored record: the
	// Microblog struct header (ID, timestamp, user, followers, geo,
	// slice/string headers ≈ 96 B) plus the store's record wrapper
	// (refcount, score, list hooks ≈ 48 B) and map-slot overhead.
	RecordHeader = 160
	// PostingSize is one index posting: a record pointer plus the
	// pre-computed ranking score.
	PostingSize = 16
	// EntryHeader is the fixed cost of one index entry: key header,
	// mutex, last-arrival and last-queried timestamps, slice header,
	// and hash-map slot.
	EntryHeader = 96
	// KeywordByte is charged per byte of keyword text stored in an
	// entry key or record keyword slice.
	KeywordByte = 1
)

// RecordBytes returns the modeled cost of keeping one microblog with the
// given text and keyword lengths in the raw data store.
func RecordBytes(textLen int, keywords []string) int64 {
	n := int64(RecordHeader + textLen)
	for _, kw := range keywords {
		n += int64(16 + KeywordByte*len(kw)) // string header + bytes
	}
	return n
}

// EntryBytes returns the fixed cost of one index entry for a key whose
// encoded size is keyLen bytes (0 for integer keys).
func EntryBytes(keyLen int) int64 {
	return int64(EntryHeader + KeywordByte*keyLen)
}

// Tracker aggregates the memory gauges of one engine instance. All
// methods are safe for concurrent use. Gauges never go negative in a
// correct system; the invariant is enforced by tests, not at runtime.
type Tracker struct {
	data     atomic.Int64 // raw data store bytes
	index    atomic.Int64 // index entries + postings
	overhead atomic.Int64 // policy bookkeeping bytes (current)
	peakTemp atomic.Int64 // high-water mark of the flush buffer
	temp     atomic.Int64 // current flush buffer bytes
}

// AddData adjusts the raw data store gauge by delta bytes.
func (t *Tracker) AddData(delta int64) { t.data.Add(delta) }

// AddIndex adjusts the index gauge by delta bytes.
func (t *Tracker) AddIndex(delta int64) { t.index.Add(delta) }

// AddOverhead adjusts the policy-overhead gauge by delta bytes.
func (t *Tracker) AddOverhead(delta int64) { t.overhead.Add(delta) }

// AddTemp adjusts the temporary flush-buffer gauge, maintaining its peak.
func (t *Tracker) AddTemp(delta int64) {
	v := t.temp.Add(delta)
	for {
		p := t.peakTemp.Load()
		if v <= p || t.peakTemp.CompareAndSwap(p, v) {
			return
		}
	}
}

// Data returns the raw data store bytes.
func (t *Tracker) Data() int64 { return t.data.Load() }

// Index returns the index bytes (entries plus postings).
func (t *Tracker) Index() int64 { return t.index.Load() }

// Overhead returns the current policy bookkeeping bytes.
func (t *Tracker) Overhead() int64 { return t.overhead.Load() }

// PeakTemp returns the high-water mark of the temporary flush buffer.
func (t *Tracker) PeakTemp() int64 { return t.peakTemp.Load() }

// Used returns the budget-relevant total: data plus index. Policy
// overhead and the flush buffer are excluded from the budget (as in the
// paper, which reports them separately as "flushing overhead") but are
// available through Overhead and PeakTemp.
func (t *Tracker) Used() int64 { return t.data.Load() + t.index.Load() }

// OverheadWithPeak returns the figure reported by the paper's
// Figure 10(a): steady-state policy bookkeeping plus the peak temporary
// buffer used to collect scattered flush victims.
func (t *Tracker) OverheadWithPeak() int64 { return t.overhead.Load() + t.peakTemp.Load() }
