// Package attr binds the generic engine to the three concrete search
// attributes the paper evaluates (Section IV-A / V-D): keywords
// (hashtags), spatial grid tiles, and user IDs. Each binding supplies
// the key extractor, hash, size model, and disk encoding the generic
// index and disk tier need.
package attr

import (
	"strconv"

	"kflushing/internal/spatial"
	"kflushing/internal/types"
)

// HashString hashes a string key for index sharding (FNV-1a).
// Deliberately deterministic across processes so experiment runs are
// reproducible for a given seed; shard selection is not an adversarial
// surface here.
func HashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// HashUint64 mixes an integer key (splitmix64 finalizer) so sequential
// IDs spread across shards.
func HashUint64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// KeywordKeys extracts a microblog's deduplicated keywords. Duplicated
// keywords within one record would otherwise double-count references.
func KeywordKeys(m *types.Microblog) []string {
	switch len(m.Keywords) {
	case 0:
		return nil
	case 1:
		return m.Keywords
	}
	out := make([]string, 0, len(m.Keywords))
	for _, kw := range m.Keywords {
		dup := false
		for _, seen := range out {
			if seen == kw {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, kw)
		}
	}
	return out
}

// KeywordLen is the memory-model size of a keyword key.
func KeywordLen(s string) int { return len(s) }

// KeywordEncode is the disk-directory encoding of a keyword key.
func KeywordEncode(s string) string { return s }

// UserKeys extracts the user-timeline key of a microblog.
func UserKeys(m *types.Microblog) []uint64 { return []uint64{m.UserID} }

// UserLen is the memory-model size of a user key (fixed-size integer,
// already covered by the entry header).
func UserLen(uint64) int { return 0 }

// UserEncode is the disk-directory encoding of a user key.
func UserEncode(u uint64) string { return strconv.FormatUint(u, 10) }

// SpatialKeys returns a key extractor mapping geotagged microblogs onto
// the given grid's tiles. Records without a location carry no spatial
// key.
func SpatialKeys(g *spatial.Grid) func(*types.Microblog) []spatial.Cell {
	return func(m *types.Microblog) []spatial.Cell {
		if !m.HasGeo {
			return nil
		}
		return []spatial.Cell{g.CellOf(m.Lat, m.Lon)}
	}
}

// HashCell hashes a grid tile for index sharding.
func HashCell(c spatial.Cell) uint64 {
	return HashUint64(uint64(uint32(c.Row))<<32 | uint64(uint32(c.Col)))
}

// CellLen is the memory-model size of a tile key (fixed-size).
func CellLen(spatial.Cell) int { return 0 }

// CellEncode is the disk-directory encoding of a tile key.
func CellEncode(c spatial.Cell) string {
	return strconv.Itoa(int(c.Row)) + "," + strconv.Itoa(int(c.Col))
}
