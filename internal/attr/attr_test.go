package attr

import (
	"testing"

	"kflushing/internal/spatial"
	"kflushing/internal/types"
)

func TestKeywordKeysDedupes(t *testing.T) {
	m := &types.Microblog{Keywords: []string{"a", "b", "a", "c", "b"}}
	got := KeywordKeys(m)
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
}

func TestKeywordKeysFastPaths(t *testing.T) {
	if KeywordKeys(&types.Microblog{}) != nil {
		t.Fatal("empty keywords must return nil")
	}
	m := &types.Microblog{Keywords: []string{"only"}}
	got := KeywordKeys(m)
	if len(got) != 1 || got[0] != "only" {
		t.Fatalf("got %v", got)
	}
}

func TestHashStringSpreads(t *testing.T) {
	shards := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		shards[HashString(string(rune('a'+i%26))+string(rune('0'+i%10)))%16]++
	}
	for s, n := range shards {
		if n == 0 {
			t.Fatalf("shard %d empty", s)
		}
	}
}

func TestHashUint64SpreadsSequentialIDs(t *testing.T) {
	shards := map[uint64]int{}
	for i := uint64(0); i < 1024; i++ {
		shards[HashUint64(i)%16]++
	}
	// Sequential inputs must not collapse onto few shards.
	for s := uint64(0); s < 16; s++ {
		if shards[s] < 16 {
			t.Fatalf("shard %d underpopulated: %d", s, shards[s])
		}
	}
}

func TestUserKeys(t *testing.T) {
	m := &types.Microblog{UserID: 42}
	got := UserKeys(m)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v", got)
	}
	if UserEncode(42) != "42" {
		t.Fatal("UserEncode")
	}
	if UserLen(42) != 0 {
		t.Fatal("UserLen must be 0 for fixed-size keys")
	}
}

func TestSpatialKeys(t *testing.T) {
	g := spatial.DefaultGrid()
	keys := SpatialKeys(g)
	if got := keys(&types.Microblog{}); got != nil {
		t.Fatal("non-geo record must have no spatial key")
	}
	m := &types.Microblog{HasGeo: true, Lat: 40, Lon: -90}
	got := keys(m)
	if len(got) != 1 || got[0] != g.CellOf(40, -90) {
		t.Fatalf("got %v", got)
	}
}

func TestCellEncodeDistinct(t *testing.T) {
	a := CellEncode(spatial.Cell{Row: 1, Col: 23})
	b := CellEncode(spatial.Cell{Row: 12, Col: 3})
	if a == b {
		t.Fatalf("cells encode identically: %q", a)
	}
	if CellLen(spatial.Cell{}) != 0 {
		t.Fatal("CellLen must be 0")
	}
}

func TestHashCellDistinguishesRowCol(t *testing.T) {
	a := HashCell(spatial.Cell{Row: 1, Col: 2})
	b := HashCell(spatial.Cell{Row: 2, Col: 1})
	if a == b {
		t.Fatal("transposed cells hash identically")
	}
}
