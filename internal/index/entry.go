package index

import (
	"sync"
	"sync/atomic"

	"kflushing/internal/alloc"
	"kflushing/internal/memsize"
	"kflushing/internal/store"
	"kflushing/internal/types"
)

// Entry is one inverted-index cell: the posting list of a single key
// (keyword, spatial tile, or user ID), ordered by ranking score so the
// top-k postings are always directly accessible (Section IV-B).
//
// Postings are kept in ascending score order: the tail of the slice is
// the top of the ranking. The paper's insertion/trim separation — "IDs
// are added to the list head while trimmed IDs are removed from the list
// tail" — maps here to appends at the tail (newest under temporal
// ranking) and trims at the front, so digestion and flushing touch
// opposite ends of the list.
type Entry[K comparable] struct {
	key K

	mu       sync.Mutex
	postings []*store.Record // ascending (Score, ID)
	dead     bool            // detached from the index by a flush
	// pool recycles posting backing arrays; nil means plain heap
	// allocation (AllocPolicy=heap).
	pool *alloc.SlicePool[*store.Record]

	// lastArrival is the timestamp of the most recent insertion,
	// the Phase 2 eviction order.
	lastArrival atomic.Int64
	// lastQueried is the timestamp of the most recent query touch,
	// the Phase 3 eviction order. Written racily by concurrent query
	// threads; the paper notes all writers store the same "now" so no
	// synchronization is needed.
	lastQueried atomic.Int64
	// inOverK records membership in the index's over-k list L.
	inOverK bool
	// trackTopK mirrors the index configuration: when set, every
	// mutation maintains the per-record top-k membership counters the
	// kFlushing-MK extension consults.
	trackTopK bool
}

// Key returns the entry's key.
func (e *Entry[K]) Key() K { return e.key }

// LastArrival returns the timestamp of the most recent insertion.
func (e *Entry[K]) LastArrival() types.Timestamp {
	return types.Timestamp(e.lastArrival.Load())
}

// LastQueried returns the timestamp of the most recent query touch.
func (e *Entry[K]) LastQueried() types.Timestamp {
	return types.Timestamp(e.lastQueried.Load())
}

// Touch records a query access at time now (Phase 3 bookkeeping).
func (e *Entry[K]) Touch(now types.Timestamp) { e.lastQueried.Store(int64(now)) }

// Len returns the number of postings.
func (e *Entry[K]) Len() int {
	e.mu.Lock()
	n := len(e.postings)
	e.mu.Unlock()
	return n
}

// IsDead reports whether the entry has been detached by a flush. Dead
// entries reject insertions and are replaced in the index map on the
// next access to their key.
func (e *Entry[K]) IsDead() bool {
	e.mu.Lock()
	d := e.dead
	e.mu.Unlock()
	return d
}

// less orders postings by (score, ID) ascending.
func less(a, b *store.Record) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.MB.ID < b.MB.ID
}

// insert adds rec keeping score order, maintaining top-k membership
// counters when trackTopK is set. It reports whether the entry accepted
// the posting (false when the entry was concurrently detached) and
// whether the insertion pushed the posting count past k.
//
//kfvet:noalloc
func (e *Entry[K]) insert(rec *store.Record, k int, trackTopK bool) (ok, crossedK bool) {
	e.mu.Lock()
	if e.dead {
		e.mu.Unlock()
		return false, false
	}
	n := len(e.postings)
	if e.pool != nil && n == cap(e.postings) {
		e.postings = e.pool.Grow(e.postings)
	}
	var pos int
	// Fast path: scores arrive mostly in ranking order under temporal
	// ranking, so the new posting usually belongs at the tail.
	if n == 0 || !less(rec, e.postings[n-1]) {
		e.postings = append(e.postings, rec)
		pos = n
	} else {
		// Binary search for the insertion point.
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if less(rec, e.postings[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		e.postings = append(e.postings, nil)
		copy(e.postings[lo+1:], e.postings[lo:])
		e.postings[lo] = rec
		pos = lo
	}
	n++
	// The new posting is in the top-k iff its insertion index >= n-k.
	if trackTopK && k > 0 && pos >= n-k {
		rec.TopKRef(1)
		if n > k {
			// Exactly one previous top-k posting fell out: the one
			// now ranked (k+1)-th from the tail.
			e.postings[n-k-1].TopKRef(-1)
		}
	}
	e.lastArrival.Store(int64(rec.MB.Timestamp))
	crossed := n == k+1
	e.mu.Unlock()
	return true, crossed
}

// TopK returns a copy of the top-k postings in ranking order (highest
// score first).
func (e *Entry[K]) TopK(k int) []*store.Record {
	e.mu.Lock()
	n := len(e.postings)
	if k > n {
		k = n
	}
	out := make([]*store.Record, k)
	for i := 0; i < k; i++ {
		out[i] = e.postings[n-1-i]
	}
	e.mu.Unlock()
	return out
}

// All returns a copy of every posting in ranking order (highest first).
func (e *Entry[K]) All() []*store.Record {
	e.mu.Lock()
	out := make([]*store.Record, len(e.postings))
	for i, r := range e.postings {
		out[len(out)-1-i] = r
	}
	e.mu.Unlock()
	return out
}

// BeyondTopK returns how many postings rank outside the top-k — the
// paper's "useless microblogs" for this entry.
func (e *Entry[K]) BeyondTopK(k int) int {
	e.mu.Lock()
	n := len(e.postings) - k
	e.mu.Unlock()
	if n < 0 {
		return 0
	}
	return n
}

// TrimBeyondTopK removes postings ranked outside the top-k for which
// keep returns false (keep == nil removes all of them). It returns the
// removed records; the caller handles reference counting and memory
// accounting. Used by Phase 1; the keep predicate implements the
// kFlushing-MK retention rule.
//
//kfvet:noalloc
func (e *Entry[K]) TrimBeyondTopK(k int, keep func(*store.Record) bool) []*store.Record {
	e.mu.Lock()
	n := len(e.postings)
	if n <= k {
		e.mu.Unlock()
		return nil
	}
	beyond := n - k
	removed := e.pool.Get(beyond)
	kept := e.postings[:0]
	for i, rec := range e.postings {
		if i < beyond && (keep == nil || !keep(rec)) {
			removed = append(removed, rec)
		} else {
			kept = append(kept, rec)
		}
	}
	// Zero the vacated slots so removed records are collectable.
	for i := len(kept); i < n; i++ {
		e.postings[i] = nil
	}
	e.postings = kept
	// Re-pack into a smaller capacity class when the trim freed enough
	// of the array; the old backing returns to the pool.
	if e.pool != nil && alloc.ShrinkThreshold(len(kept), cap(kept)) {
		ns := e.pool.Get(len(kept))
		ns = append(ns, kept...)
		e.pool.Put(kept)
		e.postings = ns
	}
	e.mu.Unlock()
	return removed
}

// DetachAll marks the entry dead and returns all postings. Once dead the
// entry rejects further insertions, so a concurrent ingest re-creates a
// fresh entry — this is the paper's "entry moved from the index to a
// temporary buffer in a single atomic step". k is the top-k threshold
// in force, needed to release the removed postings' top-k membership
// counters.
func (e *Entry[K]) DetachAll(k int) []*store.Record {
	e.mu.Lock()
	e.dead = true
	out := e.postings
	if e.trackTopK {
		for i := max(0, len(out)-k); i < len(out); i++ {
			out[i].TopKRef(-1)
		}
	}
	e.postings = nil
	e.mu.Unlock()
	return out
}

// DetachExcept behaves like DetachAll but retains postings for which
// keep returns true, leaving the entry alive if any survive. It returns
// the removed records and the number retained. Used by the extended
// Phase 2 of kFlushing-MK, which keeps postings that are still top-k
// material in other, frequent entries.
func (e *Entry[K]) DetachExcept(k int, keep func(*store.Record) bool) (removed []*store.Record, retained int) {
	e.mu.Lock()
	n := len(e.postings)
	oldBoundary := max(0, n-k) // indices >= oldBoundary were top-k
	removed = e.pool.Get(n)
	kept := e.pool.Get(n)
	var keptOldIdx []int
	for i, rec := range e.postings {
		if keep != nil && keep(rec) {
			kept = append(kept, rec)
			keptOldIdx = append(keptOldIdx, i)
		} else {
			removed = append(removed, rec)
			if e.trackTopK && i >= oldBoundary {
				rec.TopKRef(-1)
			}
		}
	}
	if e.trackTopK {
		// Removals promote kept postings into the top-k; kept postings
		// that were already top-k stay there.
		newBoundary := max(0, len(kept)-k)
		for newIdx, rec := range kept {
			if newIdx >= newBoundary && keptOldIdx[newIdx] < oldBoundary {
				rec.TopKRef(1)
			}
		}
	}
	for i := range e.postings {
		e.postings[i] = nil
	}
	e.pool.Put(e.postings) // old backing, already zeroed above
	e.postings = kept
	retained = len(kept)
	if retained == 0 {
		e.dead = true
		e.pool.Put(e.postings)
		e.postings = nil
	}
	e.mu.Unlock()
	return removed, retained
}

// RemovePosting unlinks one record's posting from the entry, reporting
// whether it was present. The FIFO and LRU baselines use it to evict
// individual records. The common FIFO case (globally oldest record,
// hence lowest temporal score) is O(1) at the front.
func (e *Entry[K]) RemovePosting(rec *store.Record, k int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := len(e.postings)
	if n == 0 {
		return false
	}
	idx := -1
	if e.postings[0] == rec {
		idx = 0
	} else {
		// Binary search the score region, then scan for pointer
		// identity (several postings may share a score).
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if less(e.postings[mid], rec) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		for i := lo; i < n && !less(rec, e.postings[i]); i++ {
			if e.postings[i] == rec {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		return false
	}
	e.removeAt(idx, k)
	return true
}

// removeAt unlinks the posting at idx, maintaining top-k membership
// counters. Callers must hold e.mu.
func (e *Entry[K]) removeAt(idx, k int) {
	n := len(e.postings)
	if e.trackTopK {
		boundary := max(0, n-k)
		if idx >= boundary {
			e.postings[idx].TopKRef(-1)
			if boundary > 0 {
				// The posting just below the boundary is promoted.
				e.postings[boundary-1].TopKRef(1)
			}
		}
	}
	copy(e.postings[idx:], e.postings[idx+1:])
	e.postings[n-1] = nil
	e.postings = e.postings[:n-1]
}

// RemovePostingDieIfEmpty unlinks one record's posting and, if the entry
// becomes empty, marks it dead so the caller can detach it from the
// index. The FIFO and LRU baselines evict individual records and use
// this to garbage-collect emptied entries without racing concurrent
// insertions (a dead entry rejects inserts, forcing re-creation).
func (e *Entry[K]) RemovePostingDieIfEmpty(rec *store.Record, k int) (removed, died bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := len(e.postings)
	idx := -1
	for i := 0; i < n; i++ {
		if e.postings[i] == rec {
			idx = i
			break
		}
		// Posting lists are score-ordered; stop once past rec's score.
		if less(rec, e.postings[i]) {
			break
		}
	}
	if idx < 0 {
		return false, false
	}
	e.removeAt(idx, k)
	if len(e.postings) == 0 && !e.dead {
		e.dead = true
		return true, true
	}
	return true, false
}

// Contains reports whether the entry currently holds a posting for rec.
func (e *Entry[K]) Contains(rec *store.Record) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, p := range e.postings {
		if p == rec {
			return true
		}
		if less(rec, p) {
			return false
		}
	}
	return false
}

// MemBytes returns the modeled memory cost of the entry under the given
// key length: the fixed entry header plus its postings.
func (e *Entry[K]) MemBytes(keyLen int) int64 {
	e.mu.Lock()
	n := len(e.postings)
	e.mu.Unlock()
	return memsize.EntryBytes(keyLen) + int64(n)*memsize.PostingSize
}

// FreeableBytes estimates how much budget-relevant memory evicting the
// whole entry would free: the entry and its postings, plus each
// referenced record's bytes amortized over its current reference count.
// Phase 2 and Phase 3 use this estimate when packing the victim heap.
func (e *Entry[K]) FreeableBytes(keyLen int) int64 {
	e.mu.Lock()
	total := memsize.EntryBytes(keyLen) + int64(len(e.postings))*memsize.PostingSize
	for _, rec := range e.postings {
		pc := int64(rec.PCount())
		if pc < 1 {
			pc = 1
		}
		total += rec.Bytes / pc
	}
	e.mu.Unlock()
	return total
}
