// Package index implements the in-memory inverted index of Figure 3: a
// sharded hash table mapping each key (keyword, spatial tile, user ID)
// to a posting list ordered by ranking score.
//
// The index is generic over the key type, which is the code-level form
// of the paper's Section IV-A extensibility claim: the same structure —
// and therefore the same flushing policies — serves keyword, spatial,
// and user attributes.
//
// Beyond plain lookups the index maintains the bookkeeping kFlushing
// needs at negligible per-insert cost:
//
//   - the over-k list L: pointers to entries holding more than k
//     postings, so Phase 1 never scans the full key space;
//   - per-entry last-arrival and last-queried timestamps (one timestamp
//     per *key*, not per item — the paper's overhead argument against
//     LRU), driving Phases 2 and 3;
//   - optional per-record top-k membership counters for the
//     kFlushing-MK extension, maintained in O(1) per insertion.
package index

import (
	"sync"
	"sync/atomic"

	"kflushing/internal/alloc"
	"kflushing/internal/memsize"
	"kflushing/internal/store"
)

// Config parameterizes an Index.
type Config[K comparable] struct {
	// Hash maps a key to a shard-selection hash. Required.
	Hash func(K) uint64
	// KeyLen returns the encoded size of a key in bytes for the memory
	// model (string length for keywords, 0 for fixed-size keys).
	// Required.
	KeyLen func(K) int
	// K is the initial top-k threshold.
	K int
	// TrackTopK enables the per-record top-k membership counters used
	// by kFlushing-MK.
	TrackTopK bool
	// TrackOverK enables the over-k list L consumed by kFlushing's
	// Phase 1. Policies that never drain L (FIFO, LRU) leave it
	// disabled so it cannot grow unboundedly.
	TrackOverK bool
	// Tracker receives index memory accounting; may be nil.
	Tracker *memsize.Tracker
	// Shards is the number of hash shards; 0 selects a default.
	Shards int
	// Pool recycles posting-slice backing arrays across entry growth,
	// trim shrink, and flush detach. Nil allocates from the heap
	// (AllocPolicy=heap).
	Pool *alloc.SlicePool[*store.Record]
}

type shard[K comparable] struct {
	mu      sync.RWMutex
	entries map[K]*Entry[K]
}

// Index is the sharded inverted index. All methods are safe for
// concurrent use.
type Index[K comparable] struct {
	cfg    Config[K]
	shards []shard[K]
	mask   uint64

	k atomic.Int32

	entryCount   atomic.Int64
	postingCount atomic.Int64

	// overMu guards overK, the paper's list L of entries that exceeded
	// k postings since the last Phase 1 run.
	overMu sync.Mutex
	overK  []*Entry[K]
}

// New builds an index from cfg.
func New[K comparable](cfg Config[K]) *Index[K] {
	if cfg.Hash == nil || cfg.KeyLen == nil {
		panic("index: Hash and KeyLen are required")
	}
	n := cfg.Shards
	if n <= 0 {
		n = 64
	}
	// Round up to a power of two for mask selection.
	p := 1
	for p < n {
		p <<= 1
	}
	ix := &Index[K]{cfg: cfg, shards: make([]shard[K], p), mask: uint64(p - 1)}
	for i := range ix.shards {
		ix.shards[i].entries = make(map[K]*Entry[K])
	}
	ix.k.Store(int32(cfg.K))
	return ix
}

// K returns the current top-k threshold.
func (ix *Index[K]) K() int { return int(ix.k.Load()) }

// SetK changes the top-k threshold. Per Section IV-C the change applies
// to subsequent flushes; in-flight flushes keep the k they started with.
func (ix *Index[K]) SetK(k int) { ix.k.Store(int32(k)) }

// TrackTopK reports whether MK top-k counters are maintained.
func (ix *Index[K]) TrackTopK() bool { return ix.cfg.TrackTopK }

// KeyLen exposes the key-size model for policies computing freeable
// bytes.
func (ix *Index[K]) KeyLen(key K) int { return ix.cfg.KeyLen(key) }

func (ix *Index[K]) shardFor(key K) *shard[K] {
	return &ix.shards[ix.cfg.Hash(key)&ix.mask]
}

// Insert adds a posting for rec under key, creating the entry if needed,
// and increments rec's reference count. It retries transparently if the
// entry is concurrently detached by a flush.
func (ix *Index[K]) Insert(key K, rec *store.Record) {
	k := int(ix.k.Load())
	for {
		e := ix.getOrCreate(key)
		ok, crossedK := e.insert(rec, k, ix.cfg.TrackTopK)
		if !ok {
			continue // entry detached under us; re-create and retry
		}
		rec.Ref(1)
		ix.postingCount.Add(1)
		if ix.cfg.Tracker != nil {
			ix.cfg.Tracker.AddIndex(memsize.PostingSize)
		}
		if crossedK {
			ix.registerOverK(e)
		}
		return
	}
}

func (ix *Index[K]) getOrCreate(key K) *Entry[K] {
	sh := ix.shardFor(key)
	sh.mu.RLock()
	e := sh.entries[key]
	sh.mu.RUnlock()
	if e != nil && !e.IsDead() {
		return e
	}
	sh.mu.Lock()
	e = sh.entries[key]
	if e != nil && e.IsDead() {
		// A flush detached this entry but has not (or will not)
		// removed it from the map yet; replace it so ingestion never
		// spins on a dead entry.
		delete(sh.entries, key)
		ix.entryCount.Add(-1)
		if ix.cfg.Tracker != nil {
			ix.cfg.Tracker.AddIndex(-memsize.EntryBytes(ix.cfg.KeyLen(key)))
		}
		e = nil
	}
	if e == nil {
		e = &Entry[K]{key: key, trackTopK: ix.cfg.TrackTopK, pool: ix.cfg.Pool}
		sh.entries[key] = e
		ix.entryCount.Add(1)
		if ix.cfg.Tracker != nil {
			ix.cfg.Tracker.AddIndex(memsize.EntryBytes(ix.cfg.KeyLen(key)))
		}
	}
	sh.mu.Unlock()
	return e
}

// Entry returns the entry for key, or nil if absent.
func (ix *Index[K]) Entry(key K) *Entry[K] {
	sh := ix.shardFor(key)
	sh.mu.RLock()
	e := sh.entries[key]
	sh.mu.RUnlock()
	return e
}

// registerOverK appends e to the over-k list if not already present.
func (ix *Index[K]) registerOverK(e *Entry[K]) {
	if !ix.cfg.TrackOverK {
		return
	}
	ix.overMu.Lock()
	e.mu.Lock()
	if !e.inOverK && !e.dead {
		e.inOverK = true
		ix.overK = append(ix.overK, e)
	}
	e.mu.Unlock()
	ix.overMu.Unlock()
}

// TakeOverK returns the current over-k list and resets it (the paper
// wipes L after Phase 1 completes), clearing each entry's membership
// flag so subsequent crossings — or the caller via ReRegisterOverK,
// when the MK retention rule leaves an entry above k — re-register it.
func (ix *Index[K]) TakeOverK() []*Entry[K] {
	ix.overMu.Lock()
	l := ix.overK
	ix.overK = nil
	for _, e := range l {
		e.mu.Lock()
		e.inOverK = false
		e.mu.Unlock()
	}
	ix.overMu.Unlock()
	return l
}

// ReRegisterOverK re-inserts an entry into L after a trim left it above
// k postings.
func (ix *Index[K]) ReRegisterOverK(e *Entry[K]) { ix.registerOverK(e) }

// OverKLen returns the current length of L, for stats and tests.
func (ix *Index[K]) OverKLen() int {
	ix.overMu.Lock()
	n := len(ix.overK)
	ix.overMu.Unlock()
	return n
}

// DetachEntry removes the entry for key from the map (if it is the given
// entry) so a concurrent ingest re-creates a fresh one. The caller must
// subsequently drain the entry with DetachAll/DetachExcept.
func (ix *Index[K]) DetachEntry(e *Entry[K]) {
	sh := ix.shardFor(e.key)
	sh.mu.Lock()
	if sh.entries[e.key] == e {
		delete(sh.entries, e.key)
		ix.entryCount.Add(-1)
		if ix.cfg.Tracker != nil {
			ix.cfg.Tracker.AddIndex(-memsize.EntryBytes(ix.cfg.KeyLen(e.key)))
		}
	}
	sh.mu.Unlock()
}

// RecyclePostings returns a posting backing array — handed out by
// TrimBeyondTopK, DetachAll, or DetachExcept — to the slab pool once
// the caller has finished dereferencing its records. A no-op under the
// heap policy. The slice must not be used after the call.
func (ix *Index[K]) RecyclePostings(s []*store.Record) {
	ix.cfg.Pool.Put(s)
}

// PoolStats snapshots the posting slab pool's counters (zero under the
// heap policy).
func (ix *Index[K]) PoolStats() alloc.SliceStats {
	return ix.cfg.Pool.Stats()
}

// PoolIdleBytes reports the memory parked in the posting slab pool's
// free lists.
func (ix *Index[K]) PoolIdleBytes() int64 {
	return ix.cfg.Pool.IdleBytes(memsize.PostingSize)
}

// NotePostingsRemoved adjusts the posting count and index gauge after a
// trim removed n postings from an entry.
func (ix *Index[K]) NotePostingsRemoved(n int) {
	if n == 0 {
		return
	}
	ix.postingCount.Add(int64(-n))
	if ix.cfg.Tracker != nil {
		ix.cfg.Tracker.AddIndex(int64(-n) * memsize.PostingSize)
	}
}

// Range calls fn for every live entry until fn returns false. Iteration
// snapshots one shard at a time; entries detached mid-iteration may
// still be visited.
func (ix *Index[K]) Range(fn func(*Entry[K]) bool) {
	for i := range ix.shards {
		if !ix.RangeShard(i, fn) {
			return
		}
	}
}

// ShardCount returns the number of hash shards, the natural parallelism
// unit for flush-time scans.
func (ix *Index[K]) ShardCount() int { return len(ix.shards) }

// RangeShard calls fn for every entry of shard i (0 <= i < ShardCount)
// until fn returns false, reporting whether iteration ran to completion.
// Like Range it snapshots the shard, so fn runs without the shard lock
// and concurrent scans of distinct shards never contend.
func (ix *Index[K]) RangeShard(i int, fn func(*Entry[K]) bool) bool {
	sh := &ix.shards[i]
	sh.mu.RLock()
	snapshot := make([]*Entry[K], 0, len(sh.entries))
	for _, e := range sh.entries {
		snapshot = append(snapshot, e)
	}
	sh.mu.RUnlock()
	for _, e := range snapshot {
		if !fn(e) {
			return false
		}
	}
	return true
}

// Entries returns the number of live entries.
func (ix *Index[K]) Entries() int64 { return ix.entryCount.Load() }

// Postings returns the number of live postings.
func (ix *Index[K]) Postings() int64 { return ix.postingCount.Load() }

// Census summarizes the in-memory frequency distribution the paper's
// Figure 1 and Section V-A discuss.
type Census struct {
	// Entries is the number of index entries.
	Entries int
	// KFilled counts entries holding at least k postings — queries on
	// these keys hit memory.
	KFilled int
	// Postings is the total posting count.
	Postings int
	// BeyondTopK counts postings outside their entry's top-k — the
	// paper's "useless microblogs".
	BeyondTopK int
}

// TakeCensus scans the index and reports the distribution snapshot for
// the current k.
func (ix *Index[K]) TakeCensus() Census {
	k := int(ix.k.Load())
	var c Census
	ix.Range(func(e *Entry[K]) bool {
		n := e.Len()
		c.Entries++
		c.Postings += n
		if n >= k {
			c.KFilled++
		}
		if n > k {
			c.BeyondTopK += n - k
		}
		return true
	})
	return c
}
