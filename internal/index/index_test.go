package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"kflushing/internal/attr"
	"kflushing/internal/memsize"
	"kflushing/internal/store"
	"kflushing/internal/types"
)

func newTestIndex(k int, trackTopK bool) (*Index[string], *memsize.Tracker) {
	tr := &memsize.Tracker{}
	ix := New(Config[string]{
		Hash:       attr.HashString,
		KeyLen:     func(s string) int { return len(s) },
		K:          k,
		TrackTopK:  trackTopK,
		TrackOverK: true,
		Tracker:    tr,
	})
	return ix, tr
}

func rec(id uint64, ts int64) *store.Record {
	m := &types.Microblog{ID: types.ID(id), Timestamp: types.Timestamp(ts)}
	return store.NewRecord(m, float64(ts))
}

func TestInsertOrdering(t *testing.T) {
	ix, _ := newTestIndex(3, false)
	// Insert out of order; TopK must return by descending score.
	for _, ts := range []int64{5, 1, 9, 3, 7} {
		ix.Insert("k", rec(uint64(ts), ts))
	}
	e := ix.Entry("k")
	if e == nil {
		t.Fatal("entry missing")
	}
	top := e.TopK(3)
	want := []int64{9, 7, 5}
	for i, r := range top {
		if int64(r.MB.Timestamp) != want[i] {
			t.Errorf("top[%d] = %d, want %d", i, r.MB.Timestamp, want[i])
		}
	}
	if got := e.BeyondTopK(3); got != 2 {
		t.Errorf("BeyondTopK = %d, want 2", got)
	}
}

func TestOverKListMaintenance(t *testing.T) {
	ix, _ := newTestIndex(2, false)
	ix.Insert("a", rec(1, 1))
	ix.Insert("a", rec(2, 2))
	if n := ix.OverKLen(); n != 0 {
		t.Fatalf("OverKLen = %d before crossing k, want 0", n)
	}
	ix.Insert("a", rec(3, 3))
	if n := ix.OverKLen(); n != 1 {
		t.Fatalf("OverKLen = %d after crossing k, want 1", n)
	}
	// Crossing again must not duplicate.
	ix.Insert("a", rec(4, 4))
	if n := ix.OverKLen(); n != 1 {
		t.Fatalf("OverKLen = %d after more inserts, want 1", n)
	}
	l := ix.TakeOverK()
	if len(l) != 1 || l[0].Key() != "a" {
		t.Fatalf("TakeOverK = %v", l)
	}
	if n := ix.OverKLen(); n != 0 {
		t.Fatalf("OverKLen = %d after take, want 0", n)
	}
}

func TestTrimBeyondTopK(t *testing.T) {
	ix, _ := newTestIndex(2, false)
	recs := make([]*store.Record, 5)
	for i := range recs {
		recs[i] = rec(uint64(i+1), int64(i+1))
		ix.Insert("k", recs[i])
	}
	e := ix.Entry("k")
	removed := e.TrimBeyondTopK(2, nil)
	if len(removed) != 3 {
		t.Fatalf("removed %d, want 3", len(removed))
	}
	// Removed must be the three oldest.
	for _, r := range removed {
		if r.MB.Timestamp > 3 {
			t.Errorf("trimmed a top-k record ts=%d", r.MB.Timestamp)
		}
	}
	if e.Len() != 2 {
		t.Errorf("entry len = %d, want 2", e.Len())
	}
}

func TestTrimKeepPredicate(t *testing.T) {
	ix, _ := newTestIndex(2, false)
	var keeper *store.Record
	for i := 1; i <= 5; i++ {
		r := rec(uint64(i), int64(i))
		if i == 2 {
			keeper = r
		}
		ix.Insert("k", r)
	}
	e := ix.Entry("k")
	removed := e.TrimBeyondTopK(2, func(r *store.Record) bool { return r == keeper })
	if len(removed) != 2 {
		t.Fatalf("removed %d, want 2 (one kept)", len(removed))
	}
	if e.Len() != 3 {
		t.Fatalf("entry len = %d, want 3", e.Len())
	}
	if !e.Contains(keeper) {
		t.Error("kept record missing from entry")
	}
}

func TestTopKCounters(t *testing.T) {
	ix, _ := newTestIndex(2, true)
	recs := make([]*store.Record, 4)
	for i := range recs {
		recs[i] = rec(uint64(i+1), int64(i+1))
		ix.Insert("k", recs[i])
	}
	// k=2: top-k is {3,4}; records 1,2 must have fallen out.
	wantCounts := []int32{0, 0, 1, 1}
	for i, r := range recs {
		if got := r.TopKCount(); got != wantCounts[i] {
			t.Errorf("rec %d TopKCount = %d, want %d", i+1, got, wantCounts[i])
		}
	}
	// A record in two entries' top-k counts twice.
	ix.Insert("other", recs[3])
	if got := recs[3].TopKCount(); got != 2 {
		t.Errorf("TopKCount after second entry = %d, want 2", got)
	}
}

func TestDetachAllRejectsInserts(t *testing.T) {
	ix, _ := newTestIndex(2, false)
	r1 := rec(1, 1)
	ix.Insert("k", r1)
	e := ix.Entry("k")
	drained := e.DetachAll(2)
	if len(drained) != 1 {
		t.Fatalf("drained %d, want 1", len(drained))
	}
	ix.DetachEntry(e)
	// New insert must create a fresh entry, not resurrect the dead one.
	r2 := rec(2, 2)
	ix.Insert("k", r2)
	e2 := ix.Entry("k")
	if e2 == e {
		t.Fatal("insert reused dead entry")
	}
	if e2.Len() != 1 {
		t.Fatalf("new entry len = %d, want 1", e2.Len())
	}
}

func TestDeadEntryReplacedEvenWithoutDetach(t *testing.T) {
	ix, _ := newTestIndex(2, false)
	ix.Insert("k", rec(1, 1))
	e := ix.Entry("k")
	e.DetachAll(2) // dead but still mapped
	ix.Insert("k", rec(2, 2))
	if ix.Entry("k") == e {
		t.Fatal("dead entry not replaced on insert")
	}
}

func TestDetachExcept(t *testing.T) {
	ix, _ := newTestIndex(10, false)
	keep := rec(2, 2)
	ix.Insert("k", rec(1, 1))
	ix.Insert("k", keep)
	ix.Insert("k", rec(3, 3))
	e := ix.Entry("k")
	removed, retained := e.DetachExcept(10, func(r *store.Record) bool { return r == keep })
	if len(removed) != 2 || retained != 1 {
		t.Fatalf("removed=%d retained=%d, want 2,1", len(removed), retained)
	}
	if e.IsDead() {
		t.Error("entry with retained postings must stay alive")
	}
	removed, retained = e.DetachExcept(10, func(*store.Record) bool { return false })
	if len(removed) != 1 || retained != 0 {
		t.Fatalf("second detach: removed=%d retained=%d, want 1,0", len(removed), retained)
	}
	if !e.IsDead() {
		t.Error("fully drained entry must die")
	}
}

func TestRemovePostingDieIfEmpty(t *testing.T) {
	ix, _ := newTestIndex(2, false)
	r1, r2 := rec(1, 1), rec(2, 2)
	ix.Insert("k", r1)
	ix.Insert("k", r2)
	e := ix.Entry("k")
	if removed, died := e.RemovePostingDieIfEmpty(r1, 2); !removed || died {
		t.Fatalf("first removal: removed=%v died=%v", removed, died)
	}
	if removed, died := e.RemovePostingDieIfEmpty(r1, 2); removed || died {
		t.Fatalf("duplicate removal: removed=%v died=%v", removed, died)
	}
	if removed, died := e.RemovePostingDieIfEmpty(r2, 2); !removed || !died {
		t.Fatalf("last removal: removed=%v died=%v", removed, died)
	}
}

func TestCensus(t *testing.T) {
	ix, _ := newTestIndex(2, false)
	// "big" has 4 postings (2 beyond), "small" has 1.
	for i := 1; i <= 4; i++ {
		ix.Insert("big", rec(uint64(i), int64(i)))
	}
	ix.Insert("small", rec(10, 10))
	c := ix.TakeCensus()
	if c.Entries != 2 || c.KFilled != 1 || c.Postings != 5 || c.BeyondTopK != 2 {
		t.Fatalf("census = %+v", c)
	}
}

func TestMemoryGaugeBalance(t *testing.T) {
	ix, tr := newTestIndex(2, false)
	for i := 1; i <= 10; i++ {
		ix.Insert("k", rec(uint64(i), int64(i)))
	}
	before := tr.Index()
	e := ix.Entry("k")
	removed := e.TrimBeyondTopK(2, nil)
	ix.NotePostingsRemoved(len(removed))
	wantDelta := int64(len(removed)) * memsize.PostingSize
	if got := before - tr.Index(); got != wantDelta {
		t.Fatalf("index gauge delta after trim = %d, want %d", got, wantDelta)
	}
	// Detaching the entry releases its header bytes too.
	ix.DetachEntry(e)
	wantDelta += memsize.EntryBytes(len("k"))
	if got := before - tr.Index(); got != wantDelta {
		t.Fatalf("index gauge delta after detach = %d, want %d", got, wantDelta)
	}
	if ix.Entries() != 0 {
		t.Fatalf("entries = %d, want 0", ix.Entries())
	}
}

func TestSetKAffectsCensusAndTopK(t *testing.T) {
	ix, _ := newTestIndex(5, false)
	for i := 1; i <= 5; i++ {
		ix.Insert("k", rec(uint64(i), int64(i)))
	}
	if c := ix.TakeCensus(); c.KFilled != 1 {
		t.Fatalf("KFilled = %d, want 1", c.KFilled)
	}
	ix.SetK(10)
	if c := ix.TakeCensus(); c.KFilled != 0 {
		t.Fatalf("after SetK(10): KFilled = %d, want 0", c.KFilled)
	}
}

// TestConcurrentInsertAndTrim exercises the digestion/flushing
// separation: inserts proceed while another goroutine trims.
func TestConcurrentInsertAndTrim(t *testing.T) {
	ix, _ := newTestIndex(10, false)
	var wg sync.WaitGroup
	const n = 2000
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			ix.Insert(fmt.Sprintf("k%d", i%7), rec(uint64(i), int64(i)))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, e := range ix.TakeOverK() {
				removed := e.TrimBeyondTopK(10, nil)
				ix.NotePostingsRemoved(len(removed))
			}
		}
	}()
	wg.Wait()
	// Every entry must hold at most its inserted postings and the
	// posting gauge must be consistent with a full scan.
	var scan int64
	ix.Range(func(e *Entry[string]) bool {
		scan += int64(e.Len())
		return true
	})
	if scan != ix.Postings() {
		t.Fatalf("scan postings = %d, counter = %d", scan, ix.Postings())
	}
}

// Property: for any insertion order, TopK returns the k highest
// timestamps in descending order.
func TestTopKProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ix, _ := newTestIndex(5, false)
		count := int(n%50) + 1
		ts := rng.Perm(count)
		for i, v := range ts {
			ix.Insert("k", rec(uint64(i+1), int64(v+1)))
		}
		e := ix.Entry("k")
		k := 5
		if count < k {
			k = count
		}
		top := e.TopK(5)
		if len(top) != k {
			return false
		}
		for i := 0; i < len(top); i++ {
			if int64(top[i].MB.Timestamp) != int64(count-i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reference counts equal the number of entries referencing
// each record after arbitrary inserts across multiple keys.
func TestPCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix, _ := newTestIndex(3, false)
		recs := make(map[uint64]*store.Record)
		refs := make(map[uint64]int32)
		for i := 0; i < 200; i++ {
			id := uint64(i + 1)
			r := rec(id, int64(i+1))
			recs[id] = r
			nkeys := rng.Intn(3) + 1
			seen := map[string]bool{}
			for j := 0; j < nkeys; j++ {
				key := fmt.Sprintf("k%d", rng.Intn(10))
				if seen[key] {
					continue
				}
				seen[key] = true
				ix.Insert(key, r)
				refs[id]++
			}
		}
		for id, r := range recs {
			if r.PCount() != refs[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKCounterConsistencyProperty drives an index with top-k
// tracking through random inserts, trims, detaches and removals, then
// verifies every record's top-k membership counter equals the ground
// truth recomputed from the surviving entries. This is the invariant
// the kFlushing-MK retention rule depends on.
func TestTopKCounterConsistencyProperty(t *testing.T) {
	const k = 3
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix, _ := newTestIndex(k, true)
		keys := []string{"a", "b", "c", "d"}
		var live []*store.Record
		next := uint64(0)
		for step := 0; step < 300; step++ {
			switch op := rng.Intn(10); {
			case op < 6: // insert under 1-2 random keys
				next++
				r := rec(next, int64(next))
				seen := map[string]bool{}
				for j := 0; j <= rng.Intn(2); j++ {
					key := keys[rng.Intn(len(keys))]
					if !seen[key] {
						seen[key] = true
						ix.Insert(key, r)
					}
				}
				live = append(live, r)
			case op < 7: // trim one over-k entry
				if e := ix.Entry(keys[rng.Intn(len(keys))]); e != nil {
					e.TrimBeyondTopK(k, nil)
				}
			case op < 8: // detach a whole entry
				if e := ix.Entry(keys[rng.Intn(len(keys))]); e != nil && !e.IsDead() {
					e.DetachAll(k)
					ix.DetachEntry(e)
				}
			case op < 9: // detach-except with a random keep rule
				if e := ix.Entry(keys[rng.Intn(len(keys))]); e != nil && !e.IsDead() {
					bit := rng.Intn(2) == 0
					_, retained := e.DetachExcept(k, func(r *store.Record) bool {
						return (r.MB.ID%2 == 0) == bit
					})
					if retained == 0 {
						ix.DetachEntry(e)
					}
				}
			default: // remove one random posting
				if len(live) > 0 {
					r := live[rng.Intn(len(live))]
					if e := ix.Entry(keys[rng.Intn(len(keys))]); e != nil {
						e.RemovePostingDieIfEmpty(r, k)
					}
				}
			}
		}
		// Ground truth: recount top-k membership from live entries.
		want := map[types.ID]int32{}
		ix.Range(func(e *Entry[string]) bool {
			for _, r := range e.TopK(k) {
				want[r.MB.ID]++
			}
			return true
		})
		for _, r := range live {
			if r.TopKCount() != want[r.MB.ID] {
				t.Logf("seed %d: record %d counter=%d want=%d", seed, r.MB.ID, r.TopKCount(), want[r.MB.ID])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
