package index

import (
	"fmt"
	"testing"

	"kflushing/internal/store"
	"kflushing/internal/types"
)

// BenchmarkInsert measures the digestion hot path: posting insertion
// into an existing entry (temporal ranking, tail append fast path).
func BenchmarkInsert(b *testing.B) {
	for _, trackTopK := range []bool{false, true} {
		name := "plain"
		if trackTopK {
			name = "track-topk"
		}
		b.Run(name, func(b *testing.B) {
			ix, _ := newTestIndex(20, trackTopK)
			recs := make([]*store.Record, b.N)
			for i := range recs {
				recs[i] = rec(uint64(i+1), int64(i+1))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix.Insert("hot", recs[i])
			}
		})
	}
}

// BenchmarkInsertManyKeys measures insertion with entry creation across
// a wide key space (shard and map pressure).
func BenchmarkInsertManyKeys(b *testing.B) {
	ix, _ := newTestIndex(20, false)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
	}
	recs := make([]*store.Record, b.N)
	for i := range recs {
		recs[i] = rec(uint64(i+1), int64(i+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Insert(keys[i&4095], recs[i])
	}
}

// BenchmarkTopK measures the query-side read of an entry's top-k.
func BenchmarkTopK(b *testing.B) {
	ix, _ := newTestIndex(20, false)
	for i := 0; i < 10_000; i++ {
		ix.Insert("hot", rec(uint64(i+1), int64(i+1)))
	}
	e := ix.Entry("hot")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := e.TopK(20); len(got) != 20 {
			b.Fatal("short top-k")
		}
	}
}

// BenchmarkTrimBeyondTopK measures Phase 1's per-entry work.
func BenchmarkTrimBeyondTopK(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ix, _ := newTestIndex(20, false)
		for j := 0; j < 1000; j++ {
			ix.Insert("hot", rec(uint64(j+1), int64(j+1)))
		}
		e := ix.Entry("hot")
		b.StartTimer()
		if removed := e.TrimBeyondTopK(20, nil); len(removed) != 980 {
			b.Fatal("unexpected trim size")
		}
	}
}

// BenchmarkCensus measures the stats scan over a large index.
func BenchmarkCensus(b *testing.B) {
	ix, _ := newTestIndex(20, false)
	for i := 0; i < 50_000; i++ {
		ix.Insert(fmt.Sprintf("k%d", i%10_000), rec(uint64(i+1), int64(i+1)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := ix.TakeCensus(); c.Entries == 0 {
			b.Fatal("empty census")
		}
	}
}

var sinkTS types.Timestamp

// BenchmarkEntryTouch measures the per-query timestamp write (Phase 3
// bookkeeping), which must stay negligible.
func BenchmarkEntryTouch(b *testing.B) {
	ix, _ := newTestIndex(20, false)
	ix.Insert("k", rec(1, 1))
	e := ix.Entry("k")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Touch(types.Timestamp(i))
	}
	sinkTS = e.LastQueried()
}
