package index

import (
	"fmt"
	"sync"
	"testing"

	"kflushing/internal/alloc"
	"kflushing/internal/attr"
	"kflushing/internal/memsize"
	"kflushing/internal/store"
	"kflushing/internal/types"
)

// newPooledTestIndex builds an index whose entries draw posting arrays
// from a slab pool under the given allocator policy (nil pool = heap).
func newPooledTestIndex(k int, ap alloc.Policy) *Index[string] {
	return New(Config[string]{
		Hash:       attr.HashString,
		KeyLen:     func(s string) int { return len(s) },
		K:          k,
		TrackOverK: true,
		Tracker:    &memsize.Tracker{},
		Pool:       alloc.NewSlicePool[*store.Record](ap),
	})
}

// TestEntryInsertSteadyStateAllocs pins the allocation ceiling of the
// hot digestion cycle — insert past k, trim back to k — at zero under
// the pooled policy. Steady state means the backing array oscillates
// between two capacity classes that both sit warm in the pool, the trim
// result slice comes from the pool, and no run of the cycle touches the
// heap. A future PR that reintroduces an allocation on this path fails
// here rather than silently regressing ingest.
func TestEntryInsertSteadyStateAllocs(t *testing.T) {
	pool := alloc.NewSlicePool[*store.Record](alloc.PolicyPooled)
	e := &Entry[string]{key: "k", trackTopK: true, pool: pool}
	const k = 8
	const step = 16

	// Pre-build the records outside the measured region; they cycle
	// through insert → trim → reinsert with refreshed scores, so the
	// measured loop never constructs one.
	recs := make([]*store.Record, 64*step)
	for i := range recs {
		recs[i] = rec(uint64(i+1), int64(i+1))
	}
	next := 0
	var ts int64
	cycle := func() {
		for j := 0; j < step; j++ {
			r := recs[next%len(recs)]
			next++
			ts++
			r.MB.Timestamp = types.Timestamp(ts)
			r.Score = float64(ts)
			if ok, _ := e.insert(r, k, true); !ok {
				t.Fatal("entry unexpectedly dead")
			}
		}
		removed := e.TrimBeyondTopK(k, nil)
		pool.Put(removed)
	}
	// Warm-up: reach the steady capacity classes and stock the pool.
	for i := 0; i < 32; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(200, cycle); avg > 0 {
		t.Errorf("insert+trim cycle allocates %.2f objects/run under pooled, want 0", avg)
	}
	st := pool.Stats()
	if st.Reuses == 0 {
		t.Fatal("pool never reused an array: the cycle is not exercising recycling")
	}
}

// TestIndexConcurrentAllocPolicies is the index-level race surface for
// the slab pool: concurrent inserters and trimmers share one pool, with
// trimmed arrays recycled mid-flight, under both allocator policies.
// The assertions mirror TestConcurrentInsertAndTrim; the point is that
// -race sees the pool's hand-off paths.
func TestIndexConcurrentAllocPolicies(t *testing.T) {
	for _, ap := range []alloc.Policy{alloc.PolicyPooled, alloc.PolicyHeap} {
		ap := ap
		t.Run("alloc="+ap.String(), func(t *testing.T) {
			ix := newPooledTestIndex(10, ap)
			var wg sync.WaitGroup
			const n = 2000
			wg.Add(3)
			go func() {
				defer wg.Done()
				for i := 1; i <= n; i++ {
					ix.Insert(fmt.Sprintf("k%d", i%7), rec(uint64(i), int64(i)))
				}
			}()
			go func() {
				defer wg.Done()
				for i := n + 1; i <= 2*n; i++ {
					ix.Insert(fmt.Sprintf("k%d", i%7), rec(uint64(i), int64(i)))
				}
			}()
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					for _, e := range ix.TakeOverK() {
						removed := e.TrimBeyondTopK(10, nil)
						ix.NotePostingsRemoved(len(removed))
						ix.RecyclePostings(removed)
					}
				}
			}()
			wg.Wait()
			var scan int64
			ix.Range(func(e *Entry[string]) bool {
				scan += int64(e.Len())
				return true
			})
			if scan != ix.Postings() {
				t.Fatalf("scan postings = %d, counter = %d", scan, ix.Postings())
			}
			if ap == alloc.PolicyPooled {
				if st := ix.PoolStats(); st.Puts == 0 {
					t.Fatal("pooled run never returned an array to the pool")
				}
			}
		})
	}
}
