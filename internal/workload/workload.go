// Package workload generates the two query workloads of Section V:
//
//	Correlated: query keys are sampled from the keys associated with the
//	stream's tweets, duplicates kept, so a key's query probability
//	equals its occurrence probability — active topics get queried. The
//	sources here sample from a sliding reservoir of *recently observed*
//	records, which also reproduces the temporal locality of real query
//	streams (the churn study the paper bases Phase 3 on): queries track
//	the stream's bursts with a small lag, including asking about tags
//	whose burst just ended.
//
//	Uniform: query keys are drawn with equal probability from the whole
//	pool of possible keys regardless of frequency — the worst-case
//	workload major systems use to bound tail quality of service.
//
// Keyword workloads mix one third single-keyword, one third 2-keyword
// AND, and one third 2-keyword OR queries. Spatial workloads use single
// and OR forms only (a record has one location, so spatial AND is
// semantically invalid), and user workloads are single-key, as in the
// paper.
package workload

import (
	"math/rand"

	"kflushing/internal/gen"
	"kflushing/internal/query"
	"kflushing/internal/spatial"
	"kflushing/internal/types"
	"kflushing/internal/zipfian"
)

// Query is one generated query: its keys and combination operator.
type Query[K comparable] struct {
	Keys []K
	Op   query.Op
}

// Source produces an endless query stream. Not safe for concurrent use.
type Source[K comparable] interface {
	Next() Query[K]
}

// Observer is implemented by correlated sources that sample from the
// live stream; the driver feeds every ingested record to Observe.
type Observer interface {
	Observe(mb *types.Microblog)
}

// reservoirSize is how many recent records a correlated source keeps.
// It is deliberately longer than the number of records a default-budget
// memory window holds, spanning many burst epochs: a realistic share of
// queries then reference topics whose burst already ended — the churn
// (paper citation [17]) that separates query-aware flushing from
// temporal flushing, which has already evicted those topics' top-k.
const reservoirSize = 150_000

// reservoir is a ring of recently observed records with uniform
// sampling. Sampling uniformly from recent records reproduces the
// occurrence distribution, duplicates kept, exactly as the paper
// constructs its correlated load.
type reservoir struct {
	rng  *rand.Rand
	ring []*types.Microblog
	n    int // filled prefix
	next int // ring write position
	gen  *gen.Generator
}

func newReservoir(cfg gen.Config, seed int64) *reservoir {
	cfg.Seed = seed + 5000
	return &reservoir{
		rng:  rand.New(rand.NewSource(seed)),
		ring: make([]*types.Microblog, reservoirSize),
		gen:  gen.New(cfg), // standalone fallback when nothing observed
	}
}

func (r *reservoir) Observe(mb *types.Microblog) {
	r.ring[r.next] = mb
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
}

// sample returns a recent record, or a synthetic twin-stream record
// when nothing has been observed yet (standalone workload generation).
func (r *reservoir) sample() *types.Microblog {
	if r.n == 0 {
		return r.gen.Next()
	}
	return r.ring[r.rng.Intn(r.n)]
}

// opMix3 cycles deterministically through single/AND/OR in equal
// proportions (the paper's one-third split).
type opMix3 struct{ n int }

func (o *opMix3) next() query.Op {
	o.n++
	switch o.n % 3 {
	case 0:
		return query.OpSingle
	case 1:
		return query.OpAnd
	default:
		return query.OpOr
	}
}

// keywordCorrelated samples query keywords from recently observed
// tweets.
type keywordCorrelated struct {
	res *reservoir
	mix opMix3
}

// KeywordCorrelated returns the correlated keyword workload. Feed the
// ingested stream through Observe (the bench driver does); without
// observations it falls back to a twin synthetic stream configured by
// cfg.
func KeywordCorrelated(cfg gen.Config, seed int64) Source[string] {
	return &keywordCorrelated{res: newReservoir(cfg, seed)}
}

func (w *keywordCorrelated) Observe(mb *types.Microblog) { w.res.Observe(mb) }

func (w *keywordCorrelated) Next() Query[string] {
	op := w.mix.next()
	mb := w.res.sample()
	for tries := 0; len(mb.Keywords) == 0 && tries < 8; tries++ {
		mb = w.res.sample()
	}
	if len(mb.Keywords) == 0 {
		return Query[string]{Keys: []string{"tag00000"}, Op: query.OpSingle}
	}
	if op == query.OpSingle {
		return Query[string]{Keys: mb.Keywords[:1], Op: query.OpSingle}
	}
	if len(mb.Keywords) >= 2 {
		return Query[string]{Keys: mb.Keywords[:2], Op: op}
	}
	// Single-hashtag tweet: pair with a keyword from another tweet.
	other := w.res.sample()
	if other.Keywords[0] == mb.Keywords[0] {
		return Query[string]{Keys: mb.Keywords[:1], Op: query.OpSingle}
	}
	return Query[string]{Keys: []string{mb.Keywords[0], other.Keywords[0]}, Op: op}
}

// keywordUniform samples uniformly from the full vocabulary.
type keywordUniform struct {
	vocab []string
	u     *zipfian.Uniform
	mix   opMix3
}

// KeywordUniform returns the uniform keyword workload over the whole
// keyword pool of a stream configured by cfg.
func KeywordUniform(cfg gen.Config, seed int64) Source[string] {
	g := gen.New(cfg)
	v := g.Vocab()
	return &keywordUniform{vocab: v, u: zipfian.NewUniform(uint64(len(v)), seed)}
}

func (w *keywordUniform) Next() Query[string] {
	op := w.mix.next()
	k1 := w.vocab[w.u.Next()]
	if op == query.OpSingle {
		return Query[string]{Keys: []string{k1}, Op: op}
	}
	k2 := w.vocab[w.u.Next()]
	for k2 == k1 {
		k2 = w.vocab[w.u.Next()]
	}
	return Query[string]{Keys: []string{k1, k2}, Op: op}
}

// spatialCorrelated queries the tiles of recently observed tweets.
type spatialCorrelated struct {
	res  *reservoir
	grid *spatial.Grid
	n    int
}

// SpatialCorrelated returns the correlated spatial workload: query
// tiles follow the recent stream's location distribution.
func SpatialCorrelated(cfg gen.Config, grid *spatial.Grid, seed int64) Source[spatial.Cell] {
	cfg.GeoFraction = 1.0
	return &spatialCorrelated{res: newReservoir(cfg, seed), grid: grid}
}

func (w *spatialCorrelated) Observe(mb *types.Microblog) {
	if mb.HasGeo {
		w.res.Observe(mb)
	}
}

func (w *spatialCorrelated) Next() Query[spatial.Cell] {
	w.n++
	mb := w.res.sample()
	c1 := w.grid.CellOf(mb.Lat, mb.Lon)
	if w.n%2 == 0 {
		return Query[spatial.Cell]{Keys: []spatial.Cell{c1}, Op: query.OpSingle}
	}
	other := w.res.sample()
	c2 := w.grid.CellOf(other.Lat, other.Lon)
	if c2 == c1 {
		return Query[spatial.Cell]{Keys: []spatial.Cell{c1}, Op: query.OpSingle}
	}
	return Query[spatial.Cell]{Keys: []spatial.Cell{c1, c2}, Op: query.OpOr}
}

// spatialUniform queries uniformly over the pool of tiles that occur in
// the stream (sampled once at construction), mirroring "the whole pool
// of possible keys" for the spatial attribute.
type spatialUniform struct {
	pool []spatial.Cell
	u    *zipfian.Uniform
	n    int
}

// SpatialUniform returns the uniform spatial workload over poolSize
// observed tiles.
func SpatialUniform(cfg gen.Config, grid *spatial.Grid, seed int64, poolSize int) Source[spatial.Cell] {
	cfg.Seed = seed + 7
	cfg.GeoFraction = 1.0
	g := gen.New(cfg)
	seen := make(map[spatial.Cell]struct{})
	var pool []spatial.Cell
	for tries := 0; len(pool) < poolSize && tries < poolSize*100; tries++ {
		mb := g.Next()
		c := grid.CellOf(mb.Lat, mb.Lon)
		if _, dup := seen[c]; !dup {
			seen[c] = struct{}{}
			pool = append(pool, c)
		}
	}
	return &spatialUniform{pool: pool, u: zipfian.NewUniform(uint64(len(pool)), seed)}
}

func (w *spatialUniform) Next() Query[spatial.Cell] {
	w.n++
	c1 := w.pool[w.u.Next()]
	if w.n%2 == 0 {
		return Query[spatial.Cell]{Keys: []spatial.Cell{c1}, Op: query.OpSingle}
	}
	c2 := w.pool[w.u.Next()]
	if c2 == c1 {
		return Query[spatial.Cell]{Keys: []spatial.Cell{c1}, Op: query.OpSingle}
	}
	return Query[spatial.Cell]{Keys: []spatial.Cell{c1, c2}, Op: query.OpOr}
}

// userCorrelated queries the timelines of recently active users.
type userCorrelated struct{ res *reservoir }

// UserCorrelated returns the correlated user workload.
func UserCorrelated(cfg gen.Config, seed int64) Source[uint64] {
	return &userCorrelated{res: newReservoir(cfg, seed)}
}

func (w *userCorrelated) Observe(mb *types.Microblog) { w.res.Observe(mb) }

func (w *userCorrelated) Next() Query[uint64] {
	mb := w.res.sample()
	return Query[uint64]{Keys: []uint64{mb.UserID}, Op: query.OpSingle}
}

// userUniform queries uniformly over the whole user ID space.
type userUniform struct{ u *zipfian.Uniform }

// UserUniform returns the uniform user workload over cfg.Users IDs.
func UserUniform(cfg gen.Config, seed int64) Source[uint64] {
	return &userUniform{u: zipfian.NewUniform(uint64(cfg.Users), seed)}
}

func (w *userUniform) Next() Query[uint64] {
	return Query[uint64]{Keys: []uint64{w.u.Next() + 1}, Op: query.OpSingle}
}

// Mixed interleaves queries from several sources round-robin, for
// scenarios combining workloads. Observations fan out to every source.
type Mixed[K comparable] struct {
	Sources []Source[K]
	n       int
}

// Next implements Source.
func (m *Mixed[K]) Next() Query[K] {
	q := m.Sources[m.n%len(m.Sources)].Next()
	m.n++
	return q
}

// Observe implements Observer, fanning out to observer sources.
func (m *Mixed[K]) Observe(mb *types.Microblog) {
	for _, s := range m.Sources {
		if o, ok := s.(Observer); ok {
			o.Observe(mb)
		}
	}
}
