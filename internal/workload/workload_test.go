package workload

import (
	"testing"

	"kflushing/internal/gen"
	"kflushing/internal/query"
	"kflushing/internal/spatial"
	"kflushing/internal/types"
)

func cfg() gen.Config {
	c := gen.DefaultConfig()
	c.Vocab = 5000
	c.Users = 500
	return c
}

func TestKeywordCorrelatedOpMix(t *testing.T) {
	w := KeywordCorrelated(cfg(), 1)
	counts := map[query.Op]int{}
	for i := 0; i < 3000; i++ {
		q := w.Next()
		counts[q.Op]++
		if len(q.Keys) == 0 || len(q.Keys) > 2 {
			t.Fatalf("query has %d keys", len(q.Keys))
		}
		if q.Op != query.OpSingle && len(q.Keys) == 1 {
			// Multi-key downgraded to single when no pair available:
			// must be labeled single.
			t.Fatalf("op %v with one key", q.Op)
		}
	}
	// Roughly one third each (single may gain from downgrades).
	if counts[query.OpSingle] < 800 || counts[query.OpAnd] < 600 || counts[query.OpOr] < 600 {
		t.Fatalf("op mix skewed: %v", counts)
	}
}

func TestKeywordCorrelatedTracksObservations(t *testing.T) {
	w := KeywordCorrelated(cfg(), 1).(interface {
		Source[string]
		Observer
	})
	// Observe records with a sentinel keyword; samples must return it.
	for i := 0; i < 100; i++ {
		w.Observe(&types.Microblog{Keywords: []string{"sentinel"}})
	}
	for i := 0; i < 50; i++ {
		q := w.Next()
		for _, k := range q.Keys {
			if k != "sentinel" {
				t.Fatalf("got key %q, want sentinel", k)
			}
		}
	}
}

func TestKeywordCorrelatedStandaloneFallback(t *testing.T) {
	w := KeywordCorrelated(cfg(), 1)
	// No observations: must still produce valid queries from the twin
	// stream.
	for i := 0; i < 100; i++ {
		q := w.Next()
		if len(q.Keys) == 0 {
			t.Fatal("empty query")
		}
	}
}

func TestKeywordUniformCoversVocabulary(t *testing.T) {
	w := KeywordUniform(cfg(), 1)
	seen := map[string]bool{}
	for i := 0; i < 20_000; i++ {
		q := w.Next()
		for _, k := range q.Keys {
			seen[k] = true
		}
		if q.Op == query.OpAnd && len(q.Keys) == 2 && q.Keys[0] == q.Keys[1] {
			t.Fatal("AND query with duplicate keys")
		}
	}
	// Uniform sampling over 5000 keys with ~27k draws covers most.
	if len(seen) < 4500 {
		t.Fatalf("uniform workload covered only %d keys", len(seen))
	}
}

func TestSpatialWorkloads(t *testing.T) {
	grid := spatial.DefaultGrid()
	corr := SpatialCorrelated(cfg(), grid, 1)
	obs := corr.(Observer)
	obs.Observe(&types.Microblog{HasGeo: true, Lat: 40, Lon: -90})
	for i := 0; i < 100; i++ {
		q := corr.Next()
		if q.Op == query.OpAnd {
			t.Fatal("spatial AND query generated")
		}
		if len(q.Keys) < 1 || len(q.Keys) > 2 {
			t.Fatalf("spatial query has %d keys", len(q.Keys))
		}
	}
	uni := SpatialUniform(cfg(), grid, 1, 500)
	for i := 0; i < 100; i++ {
		q := uni.Next()
		if q.Op == query.OpAnd {
			t.Fatal("spatial AND query generated")
		}
	}
}

func TestUserWorkloads(t *testing.T) {
	c := cfg()
	corr := UserCorrelated(c, 1)
	for i := 0; i < 100; i++ {
		q := corr.Next()
		if q.Op != query.OpSingle || len(q.Keys) != 1 {
			t.Fatal("user queries must be single-key")
		}
		if q.Keys[0] == 0 {
			t.Fatal("zero user id")
		}
	}
	uni := UserUniform(c, 1)
	for i := 0; i < 100; i++ {
		q := uni.Next()
		if q.Keys[0] == 0 || q.Keys[0] > uint64(c.Users) {
			t.Fatalf("user id %d out of range", q.Keys[0])
		}
	}
}

func TestMixedFansOutObservations(t *testing.T) {
	a := KeywordCorrelated(cfg(), 1)
	b := KeywordCorrelated(cfg(), 2)
	m := &Mixed[string]{Sources: []Source[string]{a, b}}
	m.Observe(&types.Microblog{Keywords: []string{"x"}})
	for i := 0; i < 10; i++ {
		q := m.Next()
		for _, k := range q.Keys {
			if k != "x" {
				t.Fatalf("got %q, want x (both sources observed)", k)
			}
		}
	}
}
