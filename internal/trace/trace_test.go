package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Fatal("nil trace reports enabled")
	}
	tr.Stage("memory", time.Now())
	tr.AddEntry(EntryProbe{Key: "x"})
	dp := tr.BeginDisk()
	if dp != nil {
		t.Fatal("nil trace returned a disk probe")
	}
	dp.AddSegment(SegmentProbe{Segment: "seg"})
}

func TestNilTraceAllocFree(t *testing.T) {
	var tr *Trace
	start := time.Now()
	allocs := testing.AllocsPerRun(100, func() {
		tr.Stage("memory", start)
		tr.AddEntry(EntryProbe{Key: "x", Found: true})
		tr.BeginDisk().AddSegment(SegmentProbe{})
	})
	if allocs != 0 {
		t.Fatalf("nil trace allocated %.1f per op", allocs)
	}
}

func TestDiskProbeFoldsSegmentCounters(t *testing.T) {
	tr := New()
	dp := tr.BeginDisk()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dp.AddSegment(SegmentProbe{Segment: "s", CacheHits: 1, CacheMisses: 2, RecordsRead: 3})
		}()
	}
	wg.Wait()
	if len(dp.Segments) != 8 {
		t.Fatalf("segments = %d", len(dp.Segments))
	}
	if dp.CacheHits != 8 || dp.CacheMisses != 16 || dp.RecordsRead != 24 {
		t.Fatalf("counters not folded: %+v", dp)
	}
}

func TestTraceJSONShape(t *testing.T) {
	tr := New()
	tr.Op, tr.K, tr.Keys = "single", 5, []string{"cold"}
	tr.AddEntry(EntryProbe{Key: "cold", Found: true, Postings: 2})
	dp := tr.BeginDisk()
	dp.AddSegment(SegmentProbe{Segment: "seg-00000001.kfs", BloomProbes: 1, BloomPassed: true, DirProbes: 1, Candidates: 2, RecordsRead: 2, Items: 2})
	dp.Items = 2
	tr.Stage("total", time.Now())

	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"op", "k", "keys", "entries", "memory_hit", "disk", "items", "stages"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("trace JSON missing %q: %s", key, b)
		}
	}
	disk := m["disk"].(map[string]any)
	segs := disk["segments"].([]any)
	if len(segs) != 1 {
		t.Fatalf("disk JSON: %v", disk)
	}
	seg := segs[0].(map[string]any)
	if seg["segment"] != "seg-00000001.kfs" {
		t.Fatalf("segment JSON: %v", seg)
	}
	for _, key := range []string{"bloom_probes", "bloom_skips", "bloom_passed", "dir_probes", "cache_hits", "cache_misses", "records_read"} {
		if _, ok := seg[key]; !ok {
			t.Fatalf("segment JSON missing %q: %v", key, seg)
		}
	}
}
