// Package trace records the end-to-end execution of one search query:
// the memory probe outcome per index entry, the hit decision, and (on a
// memory miss) every disk segment consulted with its Bloom filter
// outcome, directory probes, cache hits, and records read — plus
// nanosecond stage timings. It exists to answer "why did THIS query
// miss, and what did the miss cost", which aggregate counters cannot.
//
// Tracing is strictly opt-in. A nil *Trace disables it: every method is
// nil-receiver safe and returns immediately, so the disabled path adds
// no allocations and no atomic traffic to the query hot path (verified
// by BenchmarkSearchTraceDisabled in internal/engine). The contract is
// machine-checked: the marker below opts this package into kfvet's
// nilrecv analyzer, which rejects any pointer-receiver method that
// touches fields without a leading nil guard.
//
//kfvet:nilsafe
package trace

import (
	"sync"
	"time"
)

// Trace accumulates the record of one query. Create with New; pass nil
// to disable. The struct is safe for the concurrent appends a parallel
// disk search performs (AddSegment locks internally); all other fields
// are written by the single query goroutine.
type Trace struct {
	// Op is the query operator ("single", "or", "and").
	Op string `json:"op"`
	// K is the effective result limit.
	K int `json:"k"`
	// Keys are the encoded search keys.
	Keys []string `json:"keys"`

	// Entries is the memory probe outcome, one element per queried key
	// in request order.
	Entries []EntryProbe `json:"entries"`
	// MemoryHit reports whether memory alone supplied the full answer.
	MemoryHit bool `json:"memory_hit"`
	// MemoryItems is the number of candidates memory contributed.
	MemoryItems int `json:"memory_items"`

	// Disk is present only when the disk tier was consulted.
	Disk *DiskProbe `json:"disk,omitempty"`

	// Items is the number of answers returned.
	Items int `json:"items"`
	// Stages are the nanosecond timings of each execution stage, in
	// execution order ("memory", "disk", "total").
	Stages []Stage `json:"stages"`

	mu sync.Mutex
}

// New returns an enabled, empty trace.
func New() *Trace { return &Trace{} }

// Enabled reports whether the trace is collecting (non-nil).
func (t *Trace) Enabled() bool { return t != nil }

// Stage appends one stage timing measured from start. Nil-safe: the
// disabled (nil) trace must not cost an allocation on the hot path.
//
//kfvet:noalloc whennil
func (t *Trace) Stage(name string, start time.Time) {
	if t == nil {
		return
	}
	t.Stages = append(t.Stages, Stage{Name: name, Nanos: time.Since(start).Nanoseconds()})
}

// AddEntry appends one memory-probe outcome. Nil-safe.
//
//kfvet:noalloc whennil
func (t *Trace) AddEntry(ep EntryProbe) {
	if t == nil {
		return
	}
	t.Entries = append(t.Entries, ep)
}

// BeginDisk marks the disk tier consulted and returns the probe to
// fill. Nil-safe (returns nil, which DiskProbe methods tolerate).
//
//kfvet:noalloc whennil
func (t *Trace) BeginDisk() *DiskProbe {
	if t == nil {
		return nil
	}
	t.Disk = &DiskProbe{}
	return t.Disk
}

// Stage is one timed execution stage.
type Stage struct {
	Name  string `json:"name"`
	Nanos int64  `json:"nanos"`
}

// EntryProbe is the outcome of consulting one in-memory index entry.
type EntryProbe struct {
	// Key is the encoded search key.
	Key string `json:"key"`
	// Found reports whether the index holds an entry for the key.
	Found bool `json:"found"`
	// Postings is the entry's posting count (0 when not found).
	Postings int `json:"postings"`
	// KFilled reports whether the entry could serve top-k alone —
	// the per-entry half of the paper's hit condition.
	KFilled bool `json:"k_filled"`
}

// DiskProbe is the record of one disk-tier search.
type DiskProbe struct {
	// Segments are the per-segment outcomes, in the order the search
	// completed them (newest-first priority order for the sequential
	// path; completion order under parallel search).
	Segments []SegmentProbe `json:"segments"`
	// CacheHits / CacheMisses / RecordsRead aggregate the record-read
	// activity across all segments.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	RecordsRead int `json:"records_read"`
	// Items is the number of candidates the disk search returned.
	Items int `json:"items"`

	mu sync.Mutex
}

// AddSegment appends one segment outcome and folds its read counters
// into the probe totals. Safe for concurrent use (parallel segment
// workers share one probe); nil-safe.
//
//kfvet:noalloc whennil
func (d *DiskProbe) AddSegment(sp SegmentProbe) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.Segments = append(d.Segments, sp)
	d.CacheHits += sp.CacheHits
	d.CacheMisses += sp.CacheMisses
	d.RecordsRead += sp.RecordsRead
	d.mu.Unlock()
}

// SegmentProbe is the outcome of consulting one disk segment.
type SegmentProbe struct {
	// Segment is the segment file name.
	Segment string `json:"segment"`
	// MaxScore is the segment's best record score, the pruning bound.
	MaxScore float64 `json:"max_score"`
	// Pruned reports the segment was skipped because k results above
	// its best score were already in hand; nothing below is set.
	Pruned bool `json:"pruned,omitempty"`

	// Bloom filter outcome: probes run, keys ruled out, and whether any
	// key survived (v1 segments have no filter: zero probes, passed).
	BloomProbes int  `json:"bloom_probes"`
	BloomSkips  int  `json:"bloom_skips"`
	BloomPassed bool `json:"bloom_passed"`

	// DirProbes is the number of per-key directory lookups performed.
	DirProbes int `json:"dir_probes"`
	// Candidates is the number of ranked record ordinals selected.
	Candidates int `json:"candidates"`

	// Record-read activity for the selected candidates.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	RecordsRead int `json:"records_read"`

	// Items is the number of ranked matches the segment contributed.
	Items int `json:"items"`
	// Nanos is the time spent searching the segment.
	Nanos int64 `json:"nanos"`
}
