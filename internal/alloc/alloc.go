// Package alloc implements the pooled-allocation layer that keeps
// sustained ingestion allocation-flat.
//
// The paper's premise is that main memory is the scarce resource in a
// microblog store, yet a naive Go implementation spends it on garbage:
// every posting-list growth allocates a fresh backing array, every
// ingested microblog allocates a record wrapper, and flushing hands all
// of it to the collector only for the very next ingest batch to
// reallocate the same shapes. Earlybird's posting allocator (Asadi,
// Lin & Busch: fixed-size posting blocks in geometric size classes drawn
// from slab pools) is the classical fix; this package is that idea
// adapted to the structures of this system:
//
//   - SlicePool: slab pools of slice backing arrays in geometric
//     capacity classes (4, 16, 64, 256, 1024), recycling posting-list
//     arrays across entry growth, trim shrink, and flush detach.
//   - Recycler: an epoch-guarded free list of objects whose lifetime is
//     ended explicitly (store records released once durably flushed);
//     epoch pinning makes reuse safe against in-flight readers that
//     still hold pointers copied out of the index.
//
// Everything is policy-gated: a nil pool or recycler behaves exactly
// like the plain heap, so the engine can run either policy and the
// bench harness can compare them (the AllocPolicy knob).
package alloc

import "fmt"

// Policy selects how the engine allocates its hot-path structures.
type Policy uint8

const (
	// PolicyPooled recycles posting arrays, record wrappers and ingest
	// scratch through slab pools — the default.
	PolicyPooled Policy = iota
	// PolicyHeap allocates everything from the Go heap, the baseline
	// the pooled policy is benchmarked against.
	PolicyHeap
)

// String returns the option-level name of the policy.
func (p Policy) String() string {
	if p == PolicyHeap {
		return "heap"
	}
	return "pooled"
}

// ParsePolicy maps an option string onto a Policy; the empty string
// selects the pooled default.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "pooled":
		return PolicyPooled, nil
	case "heap":
		return PolicyHeap, nil
	default:
		return PolicyPooled, fmt.Errorf("alloc: unknown policy %q (want \"heap\" or \"pooled\")", s)
	}
}
