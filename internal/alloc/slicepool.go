package alloc

import (
	"sync"
	"sync/atomic"
)

// classCaps are the geometric capacity classes of pooled backing
// arrays. Posting lists grow through them one class at a time, so a
// steady-state entry churns between at most two classes instead of
// walking the runtime's append growth curve.
var classCaps = [...]int{4, 16, 64, 256, 1024}

// maxClassIdleElems bounds the idle elements retained per class, so a
// burst of large entries cannot pin an unbounded free list.
const maxClassIdleElems = 64 << 10

// classFor returns the index of the smallest class with capacity >= n,
// or -1 when n exceeds the largest class.
func classFor(n int) int {
	for i, c := range classCaps {
		if n <= c {
			return i
		}
	}
	return -1
}

// SliceStats counts a pool's traffic. Reads are monotonic counters
// except Idle*, which are gauges.
type SliceStats struct {
	// Gets counts arrays handed out, Reuses the subset served from a
	// free list (the rest were fresh heap allocations).
	Gets, Reuses int64
	// Puts counts arrays returned, Discards the subset dropped because
	// their capacity matched no class or the class was full.
	Puts, Discards int64
	// IdleArrays and IdleElems gauge the free lists' current size.
	IdleArrays, IdleElems int64
}

// SlicePool recycles slice backing arrays in geometric capacity
// classes. A nil pool is valid and allocates from the heap, so callers
// hold one pointer and the allocation policy selects its value. All
// methods are safe for concurrent use.
type SlicePool[T any] struct {
	mu      sync.Mutex
	classes [len(classCaps)][][]T

	gets, reuses, puts, discards atomic.Int64
	idleElems                    atomic.Int64
	idleArrays                   atomic.Int64
}

// NewSlicePool returns a pool for the given policy: nil under
// PolicyHeap (every method then falls through to the heap), an empty
// pool under PolicyPooled.
func NewSlicePool[T any](p Policy) *SlicePool[T] {
	if p == PolicyHeap {
		return nil
	}
	return &SlicePool[T]{}
}

// Get returns a zero-length slice with capacity at least capHint,
// drawn from the matching class's free list when possible. Hints
// beyond the largest class allocate exactly from the heap.
func (p *SlicePool[T]) Get(capHint int) []T {
	if capHint < 0 {
		capHint = 0
	}
	if p == nil {
		return make([]T, 0, capHint)
	}
	p.gets.Add(1)
	ci := classFor(capHint)
	if ci < 0 {
		return make([]T, 0, capHint)
	}
	p.mu.Lock()
	for c := ci; c < len(classCaps); c++ {
		if n := len(p.classes[c]); n > 0 {
			s := p.classes[c][n-1]
			p.classes[c][n-1] = nil
			p.classes[c] = p.classes[c][:n-1]
			p.mu.Unlock()
			p.reuses.Add(1)
			p.idleArrays.Add(-1)
			p.idleElems.Add(int64(-cap(s)))
			return s
		}
		if c > ci {
			break // only the exact class and its successor are worth scanning
		}
	}
	p.mu.Unlock()
	return make([]T, 0, classCaps[ci])
}

// Put recycles a backing array. The caller passes the slice with its
// length covering every slot it wrote; Put zeroes those slots (so
// recycled arrays never pin dead pointers) and files the array under
// its capacity class. Arrays whose capacity matches no class, or whose
// class is at its idle bound, are discarded to the collector.
func (p *SlicePool[T]) Put(s []T) {
	if p == nil || cap(s) == 0 {
		return
	}
	var zero T
	for i := range s {
		s[i] = zero
	}
	p.puts.Add(1)
	ci := -1
	for i, c := range classCaps {
		if cap(s) == c {
			ci = i
			break
		}
	}
	if ci < 0 {
		p.discards.Add(1)
		return
	}
	s = s[:0]
	p.mu.Lock()
	if len(p.classes[ci])*classCaps[ci] >= maxClassIdleElems {
		p.mu.Unlock()
		p.discards.Add(1)
		return
	}
	p.classes[ci] = append(p.classes[ci], s)
	p.mu.Unlock()
	p.idleArrays.Add(1)
	p.idleElems.Add(int64(cap(s)))
}

// Grow returns a slice holding s's elements with room for at least one
// more: the next capacity class (or a doubled heap allocation beyond
// the largest class), with s's old backing array recycled. Callers must
// treat s as released.
func (p *SlicePool[T]) Grow(s []T) []T {
	want := len(s) + 1
	if p == nil {
		// Mirror append's growth without the pool: double, min 4.
		c := cap(s) * 2
		if c < 4 {
			c = 4
		}
		ns := make([]T, len(s), c)
		copy(ns, s)
		return ns
	}
	var ns []T
	if ci := classFor(want); ci >= 0 {
		ns = p.Get(classCaps[ci])
	} else {
		ns = make([]T, 0, cap(s)*2)
	}
	ns = ns[:len(s)]
	copy(ns, s)
	p.Put(s)
	return ns
}

// ShrinkThreshold reports whether an array of capacity c holding n live
// elements is worth re-packing into a smaller class: the live count
// must fit a class at least two steps down, so entries hovering around
// a class boundary never thrash.
func ShrinkThreshold(n, c int) bool {
	ci := classFor(n)
	if ci < 0 {
		return false
	}
	return classCaps[ci]*4 <= c
}

// IdleBytes estimates the memory parked in the free lists given the
// per-element size — the pool's contribution to the policy-overhead
// accounting.
func (p *SlicePool[T]) IdleBytes(elemSize int64) int64 {
	if p == nil {
		return 0
	}
	return p.idleElems.Load() * elemSize
}

// Stats snapshots the pool's counters.
func (p *SlicePool[T]) Stats() SliceStats {
	if p == nil {
		return SliceStats{}
	}
	return SliceStats{
		Gets: p.gets.Load(), Reuses: p.reuses.Load(),
		Puts: p.puts.Load(), Discards: p.discards.Load(),
		IdleArrays: p.idleArrays.Load(), IdleElems: p.idleElems.Load(),
	}
}
