package alloc

import (
	"sync"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in      string
		want    Policy
		wantErr bool
	}{
		{"", PolicyPooled, false},
		{"pooled", PolicyPooled, false},
		{"heap", PolicyHeap, false},
		{"slab", PolicyPooled, true},
		{"POOLED", PolicyPooled, true},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParsePolicy(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
		}
		if err == nil && got != c.want {
			t.Errorf("ParsePolicy(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if PolicyPooled.String() != "pooled" || PolicyHeap.String() != "heap" {
		t.Errorf("String(): got %q/%q", PolicyPooled, PolicyHeap)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {4, 0}, {5, 1}, {16, 1}, {17, 2},
		{64, 2}, {65, 3}, {256, 3}, {257, 4}, {1024, 4}, {1025, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSlicePoolNilIsHeap(t *testing.T) {
	var p *SlicePool[int]
	s := p.Get(10)
	if len(s) != 0 || cap(s) < 10 {
		t.Fatalf("nil Get(10): len=%d cap=%d", len(s), cap(s))
	}
	p.Put(s) // must not panic
	s = append(s, 1, 2, 3)
	s = p.Grow(s)
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Fatalf("nil Grow lost elements: %v", s)
	}
	if p.IdleBytes(8) != 0 || (p.Stats() != SliceStats{}) {
		t.Fatal("nil pool must report zero stats")
	}
	if NewSlicePool[int](PolicyHeap) != nil {
		t.Fatal("NewSlicePool(PolicyHeap) must be nil")
	}
}

func TestSlicePoolReuseAndZeroing(t *testing.T) {
	p := NewSlicePool[*int](PolicyPooled)
	if p == nil {
		t.Fatal("NewSlicePool(PolicyPooled) must not be nil")
	}
	s := p.Get(3)
	if cap(s) != 4 {
		t.Fatalf("Get(3) cap = %d, want class cap 4", cap(s))
	}
	x := 7
	s = append(s, &x, &x, &x)
	p.Put(s)
	// The returned array must come back for a matching request, zeroed.
	s2 := p.Get(4)
	if cap(s2) != 4 {
		t.Fatalf("reuse cap = %d", cap(s2))
	}
	if &s[0] != &s2[:1][0] {
		t.Fatal("Get after Put did not reuse the backing array")
	}
	full := s2[:cap(s2)]
	for i, v := range full {
		if v != nil {
			t.Fatalf("slot %d not zeroed after Put", i)
		}
	}
	st := p.Stats()
	if st.Gets != 2 || st.Reuses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.IdleArrays != 0 || st.IdleElems != 0 {
		t.Fatalf("idle gauges after reuse = %+v", st)
	}
}

func TestSlicePoolGetScansOneClassUp(t *testing.T) {
	p := NewSlicePool[int](PolicyPooled)
	p.Put(make([]int, 0, 16))
	s := p.Get(3) // exact class 4 empty; class 16 is one up and usable
	if cap(s) != 16 {
		t.Fatalf("Get(3) with only a 16-array idle: cap = %d, want 16", cap(s))
	}
	p.Put(make([]int, 0, 64))
	s = p.Get(3) // 64 is two classes up — too wasteful, allocate fresh
	if cap(s) != 4 {
		t.Fatalf("Get(3) must not take a 64-array: cap = %d, want 4", cap(s))
	}
}

func TestSlicePoolPutDiscards(t *testing.T) {
	p := NewSlicePool[int](PolicyPooled)
	p.Put(make([]int, 0, 7)) // capacity matches no class
	if st := p.Stats(); st.Discards != 1 || st.IdleArrays != 0 {
		t.Fatalf("off-class Put: %+v", st)
	}
	// Overfill a class: idle bound is maxClassIdleElems elements.
	n := maxClassIdleElems/classCaps[0] + 5
	for i := 0; i < n; i++ {
		p.Put(make([]int, 0, classCaps[0]))
	}
	st := p.Stats()
	if st.IdleElems > maxClassIdleElems {
		t.Fatalf("idle elems %d exceeds bound %d", st.IdleElems, maxClassIdleElems)
	}
	if st.Discards != 1+5 {
		t.Fatalf("discards = %d, want 6", st.Discards)
	}
}

func TestSlicePoolBeyondLargestClass(t *testing.T) {
	p := NewSlicePool[int](PolicyPooled)
	s := p.Get(5000)
	if cap(s) < 5000 {
		t.Fatalf("huge Get cap = %d", cap(s))
	}
	p.Put(s)
	if st := p.Stats(); st.IdleArrays != 0 {
		t.Fatal("off-class arrays must not be retained")
	}
}

func TestSlicePoolGrow(t *testing.T) {
	p := NewSlicePool[int](PolicyPooled)
	s := p.Get(4)
	for i := 0; i < 4; i++ {
		s = append(s, i)
	}
	old := s
	s = p.Grow(s)
	if cap(s) != 16 || len(s) != 4 {
		t.Fatalf("Grow: len=%d cap=%d, want 4/16", len(s), cap(s))
	}
	for i := 0; i < 4; i++ {
		if s[i] != i {
			t.Fatalf("Grow lost element %d", i)
		}
	}
	// The old array must have been recycled (and zeroed).
	s2 := p.Get(4)
	if &old[:1][0] != &s2[:1][0] {
		t.Fatal("Grow did not recycle the old backing array")
	}
}

func TestShrinkThreshold(t *testing.T) {
	cases := []struct {
		n, c int
		want bool
	}{
		{3, 1024, true},     // 3 fits class 4; 4*4 <= 1024
		{3, 16, true},       // 4*4 <= 16: exactly two classes down
		{5, 16, false},      // 5 needs class 16 already
		{3, 8, false},       // one class down only
		{1500, 4096, false}, // beyond largest class: never repack
		{0, 1024, true},
	}
	for _, c := range cases {
		if got := ShrinkThreshold(c.n, c.c); got != c.want {
			t.Errorf("ShrinkThreshold(%d,%d) = %v, want %v", c.n, c.c, got, c.want)
		}
	}
}

func TestSlicePoolConcurrent(t *testing.T) {
	p := NewSlicePool[*int](PolicyPooled)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s := p.Get(i % 40)
				v := i
				s = append(s, &v)
				s = p.Grow(s)
				p.Put(s)
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.IdleElems < 0 || st.IdleArrays < 0 {
		t.Fatalf("negative idle gauges: %+v", st)
	}
}

func TestRecyclerNilIsHeap(t *testing.T) {
	var r *Recycler[*int]
	e := r.Pin()
	r.Unpin(e)
	r.Free([]*int{new(int)})
	if _, ok := r.Get(); ok {
		t.Fatal("nil recycler must always miss")
	}
	if (r.Stats() != RecyclerStats{}) {
		t.Fatal("nil recycler must report zero stats")
	}
	if NewRecycler[int](PolicyHeap) != nil {
		t.Fatal("NewRecycler(PolicyHeap) must be nil")
	}
}

func TestRecyclerQuarantine(t *testing.T) {
	r := NewRecycler[*int](PolicyPooled)
	v := new(int)
	r.Free([]*int{v})
	// With no pinned readers at all, nothing can hold v's pointer, so
	// the epoch advances freely and a few Gets reclaim it.
	var out *int
	for i := 0; i < 4; i++ {
		if g, ok := r.Get(); ok {
			out = g
			break
		}
	}
	if out != v {
		t.Fatalf("quarantined object never reclaimed: got %p want %p", out, v)
	}
}

func TestRecyclerPinBlocksReclaim(t *testing.T) {
	r := NewRecycler[*int](PolicyPooled)
	e := r.Pin() // a reader holds the current epoch
	v := new(int)
	r.Free([]*int{v})
	for i := 0; i < 10; i++ {
		if _, ok := r.Get(); ok {
			t.Fatal("object reclaimed while a reader from its free epoch is pinned")
		}
	}
	r.Unpin(e)
	var out *int
	for i := 0; i < 4; i++ {
		if g, ok := r.Get(); ok {
			out = g
			break
		}
	}
	if out != v {
		t.Fatal("object not reclaimed after the pinned reader left")
	}
}

func TestRecyclerLaterPinDoesNotBlockForever(t *testing.T) {
	r := NewRecycler[*int](PolicyPooled)
	v := new(int)
	r.Free([]*int{v})
	// Advance past the free epoch, then pin: the new reader pinned at a
	// later epoch can never have seen v, so reclaim must still happen.
	r.ep.tryAdvance()
	e := r.Pin()
	defer r.Unpin(e)
	var out *int
	for i := 0; i < 6; i++ {
		if g, ok := r.Get(); ok {
			out = g
			break
		}
	}
	if out != v {
		t.Fatal("reader pinned after the free epoch must not block reclaim forever")
	}
}

func TestRecyclerStatsAndOrder(t *testing.T) {
	r := NewRecycler[int](PolicyPooled)
	r.Free([]int{1, 2, 3})
	st := r.Stats()
	if st.Frees != 3 || st.Limbo != 3 || st.Free != 0 {
		t.Fatalf("after Free: %+v", st)
	}
	seen := map[int]bool{}
	for i := 0; i < 8 && len(seen) < 3; i++ {
		if v, ok := r.Get(); ok {
			seen[v] = true
		}
	}
	if len(seen) != 3 {
		t.Fatalf("reclaimed %d of 3", len(seen))
	}
	st = r.Stats()
	if st.Reuses != 3 || st.Limbo != 0 || st.Free != 0 {
		t.Fatalf("after drain: %+v", st)
	}
}

func TestRecyclerConcurrent(t *testing.T) {
	r := NewRecycler[*int](PolicyPooled)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers pin/unpin in a loop.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				e := r.Pin()
				r.Unpin(e)
			}
		}()
	}
	// Writers free and reuse.
	var ww sync.WaitGroup
	for g := 0; g < 4; g++ {
		ww.Add(1)
		go func() {
			defer ww.Done()
			for i := 0; i < 5000; i++ {
				v, ok := r.Get()
				if !ok {
					v = new(int)
				}
				*v = i
				r.Free([]*int{v})
			}
		}()
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	st := r.Stats()
	if st.Frees != 4*5000 {
		t.Fatalf("frees = %d", st.Frees)
	}
}

func TestEpochGuardAdvance(t *testing.T) {
	var g epochGuard
	e0 := g.pin()
	if !g.tryAdvance() {
		t.Fatal("advance with only current-epoch pins must succeed")
	}
	// Now a reader from the previous parity is active: a second advance
	// must be blocked.
	if g.tryAdvance() {
		t.Fatal("advance must be blocked by the e0 reader")
	}
	g.unpin(e0)
	if !g.tryAdvance() {
		t.Fatal("advance after unpin must succeed")
	}
	if got := g.global.Load(); got != 2 {
		t.Fatalf("global = %d, want 2", got)
	}
}
