package alloc

import (
	"sync"
	"sync/atomic"
)

// epochGuard is a two-parity epoch-based reclamation guard, the
// quarantine that makes object reuse safe against concurrent readers.
//
// Readers (query threads) pin the current epoch before copying pointers
// out of shared structures and unpin when done. Objects are freed with
// the epoch current at free time; because an object is unlinked from
// every shared structure before it is freed, only readers pinned at or
// before that epoch can still hold its pointer. The global epoch can
// advance from g to g+1 only when no reader from epoch g-1 remains, so
// once it reaches f+2 every reader that could hold an object freed at
// epoch f has unpinned — the object is provably unreachable and safe to
// hand out again.
type epochGuard struct {
	global atomic.Uint64
	active [2]atomic.Int64 // pinned readers by epoch parity
}

// pin registers a reader in the current epoch and returns it.
//
//kfvet:epoch pin
//kfvet:noalloc
func (g *epochGuard) pin() uint64 {
	for {
		e := g.global.Load()
		g.active[e&1].Add(1)
		if g.global.Load() == e {
			return e
		}
		// The epoch advanced between the load and the increment; the
		// registration may sit in the wrong parity, so redo it.
		g.active[e&1].Add(-1)
	}
}

// unpin deregisters a reader pinned at epoch e.
//
//kfvet:epoch unpin
//kfvet:noalloc
func (g *epochGuard) unpin(e uint64) { g.active[e&1].Add(-1) }

// tryAdvance bumps the global epoch when no reader from the previous
// epoch remains, reporting whether it (or a racing caller) advanced.
//
//kfvet:epoch advance
func (g *epochGuard) tryAdvance() bool {
	e := g.global.Load()
	if g.active[(e+1)&1].Load() != 0 {
		return false
	}
	return g.global.CompareAndSwap(e, e+1) || g.global.Load() != e
}

// maxFreeItems bounds the recycler's ready-for-reuse list.
const maxFreeItems = 32 << 10

// RecyclerStats counts a recycler's traffic.
type RecyclerStats struct {
	// Frees counts objects entered into quarantine, Reuses the objects
	// handed back out, Discards the objects dropped at the free-list
	// bound.
	Frees, Reuses, Discards int64
	// Limbo and Free gauge the quarantined and ready lists.
	Limbo, Free int64
}

// Recycler is an epoch-guarded object free list: Free places an object
// in quarantine stamped with the current epoch, and Get returns objects
// whose quarantine has expired (no reader pinned at their free epoch
// remains). A nil recycler is valid: Pin/Unpin are no-ops and Get
// always misses, which is exactly the heap policy. All methods are safe
// for concurrent use.
type Recycler[T any] struct {
	ep epochGuard

	mu    sync.Mutex
	limbo []limboItem[T]
	free  []T

	frees, reuses, discards atomic.Int64
}

type limboItem[T any] struct {
	v     T
	epoch uint64
}

// NewRecycler returns a recycler for the given policy: nil under
// PolicyHeap, an empty recycler under PolicyPooled.
func NewRecycler[T any](p Policy) *Recycler[T] {
	if p == PolicyHeap {
		return nil
	}
	return &Recycler[T]{}
}

// Pin registers the calling reader in the current epoch; every pointer
// the reader copies out of shared structures stays valid (never reused)
// until the matching Unpin. Readers must not hold a pin across blocking
// waits on other readers.
//
//kfvet:noalloc
func (r *Recycler[T]) Pin() uint64 {
	if r == nil {
		return 0
	}
	return r.ep.pin()
}

// Unpin releases a pin taken at epoch e.
//
//kfvet:noalloc
func (r *Recycler[T]) Unpin(e uint64) {
	if r != nil {
		r.ep.unpin(e)
	}
}

// Free places objects in quarantine. The caller asserts each object has
// been unlinked from every shared structure: after this call the only
// valid pointers to it are those readers copied out while it was still
// linked, and the quarantine outlives all of them.
//
//kfvet:epoch free
func (r *Recycler[T]) Free(vs []T) {
	if r == nil || len(vs) == 0 {
		return
	}
	e := r.ep.global.Load()
	r.mu.Lock()
	for _, v := range vs {
		r.limbo = append(r.limbo, limboItem[T]{v: v, epoch: e})
	}
	r.mu.Unlock()
	r.frees.Add(int64(len(vs)))
}

// Get returns a recycled object whose quarantine expired, or reports a
// miss (the caller then allocates fresh).
func (r *Recycler[T]) Get() (T, bool) {
	var zero T
	if r == nil {
		return zero, false
	}
	r.mu.Lock()
	if len(r.free) == 0 {
		r.reclaimLocked()
	}
	if n := len(r.free); n > 0 {
		v := r.free[n-1]
		r.free[n-1] = zero
		r.free = r.free[:n-1]
		r.mu.Unlock()
		r.reuses.Add(1)
		return v, true
	}
	r.mu.Unlock()
	return zero, false
}

// reclaimLocked moves limbo items whose quarantine expired (freed at
// epoch f with the global now at f+2 or later) onto the free list,
// advancing the epoch when the head of the queue is what blocks it.
// Callers hold r.mu.
//
//kfvet:epoch reclaim
func (r *Recycler[T]) reclaimLocked() {
	for attempt := 0; attempt < 3; attempt++ {
		g := r.ep.global.Load()
		n := 0
		for n < len(r.limbo) && r.limbo[n].epoch+2 <= g {
			n++
		}
		if n > 0 {
			for i := 0; i < n; i++ {
				if len(r.free) < maxFreeItems {
					r.free = append(r.free, r.limbo[i].v)
				} else {
					r.discards.Add(1)
				}
			}
			copy(r.limbo, r.limbo[n:])
			for i := len(r.limbo) - n; i < len(r.limbo); i++ {
				r.limbo[i] = limboItem[T]{}
			}
			r.limbo = r.limbo[:len(r.limbo)-n]
			return
		}
		if len(r.limbo) == 0 || !r.ep.tryAdvance() {
			return
		}
	}
}

// Stats snapshots the recycler's counters.
func (r *Recycler[T]) Stats() RecyclerStats {
	if r == nil {
		return RecyclerStats{}
	}
	r.mu.Lock()
	limbo, free := int64(len(r.limbo)), int64(len(r.free))
	r.mu.Unlock()
	return RecyclerStats{
		Frees: r.frees.Load(), Reuses: r.reuses.Load(),
		Discards: r.discards.Load(), Limbo: limbo, Free: free,
	}
}
