package bench

import (
	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/engine"
	"kflushing/internal/gen"
	"kflushing/internal/spatial"
	"kflushing/internal/types"
	"kflushing/internal/workload"
)

// RunKeyword executes one steady-state run on the keyword attribute.
func RunKeyword(rc RunConfig) RunResult {
	rc = rc.Defaults()
	dir, cleanup := tempDiskDir(rc)
	defer cleanup()

	pc := buildPolicy[string](rc)
	clk := clock.NewLogical(1, 0)
	eng, err := engine.New(engine.Config[string]{
		K:             rc.K,
		MemoryBudget:  rc.Budget,
		FlushFraction: rc.FlushFrac,
		KeysOf:        attr.KeywordKeys,
		KeyHash:       attr.HashString,
		KeyLen:        attr.KeywordLen,
		EncodeKey:     attr.KeywordEncode,
		Clock:         clk,
		DiskDir:       dir,
		Policy:        pc.pol,
		TrackTopK:     pc.trackTopK,
		TrackOverK:    pc.trackOverK,
		SyncFlush:     true,
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	streamCfg := rc.Stream
	streamCfg.GeoFraction = 0 // keyword runs need no locations
	g := gen.New(streamCfg)

	var wl workload.Source[string]
	if !rc.NoQueries {
		if rc.Correlated {
			wl = workload.KeywordCorrelated(rc.Stream, rc.Seed+1000)
		} else {
			wl = workload.KeywordUniform(rc.Stream, rc.Seed+1000)
		}
	}
	return run(rc, eng, clk, func() *types.Microblog { return g.Next() }, wl)
}

// RunSpatial executes one steady-state run on the spatial attribute
// (Figure 11): the stream is fully geotagged and queries target grid
// tiles.
func RunSpatial(rc RunConfig) RunResult {
	rc = rc.Defaults()
	dir, cleanup := tempDiskDir(rc)
	defer cleanup()

	grid := spatial.DefaultGrid()
	pc := buildPolicy[spatial.Cell](rc)
	clk := clock.NewLogical(1, 0)
	eng, err := engine.New(engine.Config[spatial.Cell]{
		K:             rc.K,
		MemoryBudget:  rc.Budget,
		FlushFraction: rc.FlushFrac,
		KeysOf:        attr.SpatialKeys(grid),
		KeyHash:       attr.HashCell,
		KeyLen:        attr.CellLen,
		EncodeKey:     attr.CellEncode,
		Clock:         clk,
		DiskDir:       dir,
		Policy:        pc.pol,
		TrackTopK:     pc.trackTopK,
		TrackOverK:    pc.trackOverK,
		SyncFlush:     true,
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	streamCfg := rc.Stream
	streamCfg.GeoFraction = 1
	g := gen.New(streamCfg)

	var wl workload.Source[spatial.Cell]
	if !rc.NoQueries {
		if rc.Correlated {
			wl = workload.SpatialCorrelated(rc.Stream, grid, rc.Seed+1000)
		} else {
			wl = workload.SpatialUniform(rc.Stream, grid, rc.Seed+1000, 20_000)
		}
	}
	return run(rc, eng, clk, func() *types.Microblog { return g.Next() }, wl)
}

// RunUser executes one steady-state run on the user attribute
// (Figure 12): queries are single-key user timelines.
func RunUser(rc RunConfig) RunResult {
	rc = rc.Defaults()
	dir, cleanup := tempDiskDir(rc)
	defer cleanup()

	pc := buildPolicy[uint64](rc)
	clk := clock.NewLogical(1, 0)
	eng, err := engine.New(engine.Config[uint64]{
		K:             rc.K,
		MemoryBudget:  rc.Budget,
		FlushFraction: rc.FlushFrac,
		KeysOf:        attr.UserKeys,
		KeyHash:       attr.HashUint64,
		KeyLen:        attr.UserLen,
		EncodeKey:     attr.UserEncode,
		Clock:         clk,
		DiskDir:       dir,
		Policy:        pc.pol,
		TrackTopK:     pc.trackTopK,
		TrackOverK:    pc.trackOverK,
		SyncFlush:     true,
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	streamCfg := rc.Stream
	streamCfg.GeoFraction = 0
	g := gen.New(streamCfg)

	var wl workload.Source[uint64]
	if !rc.NoQueries {
		if rc.Correlated {
			wl = workload.UserCorrelated(rc.Stream, rc.Seed+1000)
		} else {
			wl = workload.UserUniform(rc.Stream, rc.Seed+1000)
		}
	}
	return run(rc, eng, clk, func() *types.Microblog { return g.Next() }, wl)
}
