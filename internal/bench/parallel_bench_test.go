// Microbenchmarks for this package's two throughput levers: batched
// ingestion (WAL group commit amortization) and shard-parallel flush
// execution. Results are recorded in results/pr1_batch_flush_bench.txt.
package bench

import (
	"fmt"
	"testing"

	"kflushing/internal/attr"
	"kflushing/internal/core"
	"kflushing/internal/engine"
	"kflushing/internal/gen"
	"kflushing/internal/types"
)

// benchEngine builds a keyword engine for throughput measurement.
// workers configures kFlushing's flush parallelism (0 = auto, 1 =
// forced sequential); walDir enables durability.
func benchEngine(b *testing.B, budget int64, walDir string, workers int) *engine.Engine[string] {
	b.Helper()
	eng, err := engine.New(engine.Config[string]{
		K:            20,
		MemoryBudget: budget,
		KeysOf:       attr.KeywordKeys,
		KeyHash:      attr.HashString,
		KeyLen:       attr.KeywordLen,
		EncodeKey:    attr.KeywordEncode,
		DiskDir:      b.TempDir(),
		WALDir:       walDir,
		Policy:       core.New(core.WithParallelism[string](workers)),
		TrackOverK:   true,
		SyncFlush:    true,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	return eng
}

func benchRecords(n int) []*types.Microblog {
	cfg := gen.DefaultConfig()
	cfg.Vocab = 20_000
	cfg.GeoFraction = 0
	g := gen.New(cfg)
	out := make([]*types.Microblog, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// BenchmarkIngestBatch measures durable digestion throughput by batch
// size. batch=1 is the per-record path (Ingest is a batch of one), so
// the larger sizes isolate what WAL group commit and per-batch policy
// bookkeeping buy. Budget is large enough that flushing stays out of
// the loop; the flush cost is measured by BenchmarkFlushCycle.
func BenchmarkIngestBatch(b *testing.B) {
	for _, size := range []int{1, 16, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", size), func(b *testing.B) {
			eng := benchEngine(b, 1<<40, b.TempDir(), 1)
			recs := benchRecords(b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				end := i + size
				if end > b.N {
					end = b.N
				}
				if _, err := eng.IngestBatch(recs[i:end]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlushCycle measures one kFlushing flush cycle, sequential
// (workers=1) versus parallel Phase 1 trimming and victim scanning
// (workers=4; capped by GOMAXPROCS at runtime, so single-core machines
// measure the coordination overhead rather than a speedup). The engine
// is refilled outside the timer whenever memory runs low.
func BenchmarkFlushCycle(b *testing.B) {
	const (
		budget = 8 << 20
		target = budget / 10 // engine default FlushFraction
	)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel4", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			eng := benchEngine(b, budget, "", bc.workers)
			cfg := gen.DefaultConfig()
			cfg.Vocab = 20_000
			cfg.GeoFraction = 0
			g := gen.New(cfg)
			refill := func() {
				batch := make([]*types.Microblog, 256)
				for eng.Mem().Used() < budget*9/10 {
					for i := range batch {
						batch[i] = g.Next()
					}
					if _, err := eng.IngestBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
			}
			refill()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if eng.Mem().Used() < 2*target {
					b.StopTimer()
					refill()
					b.StartTimer()
				}
				if _, err := eng.FlushNow(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
