package bench

import (
	"fmt"
	"testing"

	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/engine"
	"kflushing/internal/gen"
	"kflushing/internal/query"
)

// TestProbeBurstRetention is a diagnostic (run with -run ProbeBurst -v):
// it drives FIFO and kFlushing to steady state and then probes queries
// on burst tags of past epochs, printing per-age hit rates. It asserts
// the core mechanism: kFlushing answers queries about expired bursts
// that FIFO has evicted.
func TestProbeBurstRetention(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic probe")
	}
	cfg := gen.DefaultConfig()
	results := map[string][]float64{}
	for _, pol := range []string{PolFIFO, PolKFlushing} {
		rc := RunConfig{Policy: pol, K: 20, Budget: 30 << 20, Stream: cfg, Seed: 1}.Defaults()
		dir, cleanup := tempDiskDir(rc)
		defer cleanup()
		pc := buildPolicy[string](rc)
		clk := clock.NewLogical(1, 0)
		eng, err := engine.New(engine.Config[string]{
			K: rc.K, MemoryBudget: rc.Budget, FlushFraction: rc.FlushFrac,
			KeysOf: attr.KeywordKeys, KeyHash: attr.HashString,
			KeyLen: attr.KeywordLen, EncodeKey: attr.KeywordEncode,
			Clock: clk, DiskDir: dir, Policy: pc.pol,
			TrackOverK: pc.trackOverK, SyncFlush: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()

		g := gen.New(cfg)
		vocab := g.Vocab()
		const total = 260_000
		for i := 0; i < total; i++ {
			mb := g.Next()
			clk.Set(mb.Timestamp)
			if _, err := eng.Ingest(mb); err != nil && err != engine.ErrNoKeys {
				t.Fatal(err)
			}
			// Touch burst tags lightly so phase 3 sees query recency.
			if i%97 == 0 {
				base := g.BurstBase(int64(i))
				e := eng.Index().Entry(vocab[base])
				if e != nil {
					e.Touch(clk.Now())
				}
			}
		}
		// Probe: for epochs at increasing age, query the top burst tags.
		var hitsByAge []float64
		for _, age := range []int{1, 4, 8, 12, 16, 20} {
			seq := int64(total - age*cfg.EpochLen)
			base := g.BurstBase(seq)
			hits, asked := 0, 0
			for r := 0; r < 16; r++ { // top burst ranks accumulate >= k
				kw := vocab[(base+r)%cfg.Vocab]
				res, err := eng.Search(query.Request[string]{Keys: []string{kw}, Op: query.OpSingle, K: rc.K})
				if err != nil {
					t.Fatal(err)
				}
				asked++
				if res.MemoryHit {
					hits++
				}
			}
			hitsByAge = append(hitsByAge, float64(hits)/float64(asked))
		}
		results[pol] = hitsByAge
		st := eng.Stats()
		t.Logf("%s: kfilled=%d entries=%d flushes=%d", pol, st.Census.KFilled, st.Census.Entries, st.Metrics.Flushes)
	}
	for pol, series := range results {
		t.Logf("%-10s burst hit by age: %v", pol, fmtSeries(series))
	}
	// The headline mechanism: at old ages kFlushing must beat FIFO.
	old := len(results[PolFIFO]) - 1
	if results[PolKFlushing][old] <= results[PolFIFO][old] {
		t.Errorf("kflushing old-burst hit %.2f not above fifo %.2f",
			results[PolKFlushing][old], results[PolFIFO][old])
	}
}

func fmtSeries(s []float64) string {
	out := ""
	for _, v := range s {
		out += fmt.Sprintf(" %.2f", v)
	}
	return out
}
