package bench

// extPolicies is the policy set for the extensibility figures: the
// paper omits kFlushing-MK there (user queries are single-key, spatial
// AND queries are semantically invalid, so MK behaves exactly like
// kFlushing).
var extPolicies = []string{PolFIFO, PolKFlushing, PolLRU}

// extSweep is sweepTable over the reduced extensibility policy set.
func extSweep(title, note string, s Scale,
	runOne func(RunConfig) RunResult, correlated bool,
	metric func(RunResult) string) *Table {

	t := &Table{
		Title:  title,
		Note:   note,
		Header: append([]string{"memory"}, extPolicies...),
	}
	for _, budget := range s.Budgets {
		row := []string{fMiB(budget)}
		for _, pol := range extPolicies {
			rc := s.baseRun()
			rc.Policy = pol
			rc.K = 20
			rc.Budget = budget
			rc.Correlated = correlated
			row = append(row, metric(runOne(rc)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig11a regenerates Figure 11(a): k-filled spatial tiles vs memory.
func Fig11a(s Scale) *Table {
	return extSweep(
		"Figure 11(a): k-filled spatial tiles vs memory budget",
		"4mi² grid tiles, correlated spatial load, k=20",
		s, RunSpatial, true,
		func(r RunResult) string { return fInt(int64(r.Census.KFilled)) },
	)
}

// Fig11b regenerates Figure 11(b): spatial hit ratio vs memory for
// both workloads.
func Fig11b(s Scale) *Table {
	t := &Table{
		Title:  "Figure 11(b): spatial hit ratio vs memory budget",
		Note:   "k=20; six series: each policy under uniform and correlated loads",
		Header: []string{"memory", "fifo-uni", "kflush-uni", "lru-uni", "fifo-corr", "kflush-corr", "lru-corr"},
	}
	for _, budget := range s.Budgets {
		row := []string{fMiB(budget)}
		for _, correlated := range []bool{false, true} {
			for _, pol := range extPolicies {
				rc := s.baseRun()
				rc.Policy = pol
				rc.K = 20
				rc.Budget = budget
				rc.Correlated = correlated
				row = append(row, fPct(RunSpatial(rc).HitRatio))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Fig12a regenerates Figure 12(a): k-filled user IDs vs memory.
func Fig12a(s Scale) *Table {
	return extSweep(
		"Figure 12(a): k-filled user IDs vs memory budget",
		"user-timeline attribute, correlated load, k=20",
		s, RunUser, true,
		func(r RunResult) string { return fInt(int64(r.Census.KFilled)) },
	)
}

// Fig12b regenerates Figure 12(b): user-timeline hit ratio vs memory
// for both workloads.
func Fig12b(s Scale) *Table {
	t := &Table{
		Title:  "Figure 12(b): user-timeline hit ratio vs memory budget",
		Note:   "k=20; six series: each policy under uniform and correlated loads",
		Header: []string{"memory", "fifo-uni", "kflush-uni", "lru-uni", "fifo-corr", "kflush-corr", "lru-corr"},
	}
	for _, budget := range s.Budgets {
		row := []string{fMiB(budget)}
		for _, correlated := range []bool{false, true} {
			for _, pol := range extPolicies {
				rc := s.baseRun()
				rc.Policy = pol
				rc.K = 20
				rc.Budget = budget
				rc.Correlated = correlated
				row = append(row, fPct(RunUser(rc).HitRatio))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Experiments maps experiment IDs (DESIGN.md per-experiment index) to
// their table producers. Multi-table experiments expand to one entry
// per sub-figure.
func Experiments(s Scale) map[string]func() []*Table {
	one := func(f func(Scale) *Table) func() []*Table {
		return func() []*Table { return []*Table{f(s)} }
	}
	return map[string]func() []*Table{
		"snapshot":          one(Snapshot),
		"fig5":              one(Fig5),
		"fig7a":             one(Fig7a),
		"fig7b":             one(Fig7b),
		"fig7c":             one(Fig7c),
		"fig8":              func() []*Table { return Fig8(s) },
		"fig9":              func() []*Table { return Fig9(s) },
		"fig10a":            one(Fig10a),
		"fig10b":            one(Fig10b),
		"fig11a":            one(Fig11a),
		"fig11b":            one(Fig11b),
		"fig12a":            one(Fig12a),
		"fig12b":            one(Fig12b),
		"latency":           one(Latency),
		"ablation-phases":   one(AblationPhases),
		"ablation-selector": one(AblationSelector),
	}
}

// ExperimentOrder lists experiment IDs in presentation order for the
// "all" command.
var ExperimentOrder = []string{
	"snapshot", "fig5", "fig7a", "fig7b", "fig7c",
	"fig8", "fig9", "fig10a", "fig10b",
	"fig11a", "fig11b", "fig12a", "fig12b",
	"latency", "ablation-phases", "ablation-selector",
}
