package bench

import (
	"strings"
	"testing"
)

// quickScale shrinks runs further than QuickScale for unit testing.
func quickScale() Scale {
	s := QuickScale()
	s.MeasureQueries = 800
	s.WarmFlushes = 2
	return s
}

func TestRunKeywordProducesSaneResult(t *testing.T) {
	rc := quickScale().baseRun()
	rc.Policy = PolKFlushing
	rc.K = 10
	rc.Correlated = true
	res := RunKeyword(rc)
	if res.Ingested == 0 || res.Flushes == 0 {
		t.Fatalf("run did not reach steady state: %+v", res)
	}
	if res.Hits+res.Misses == 0 {
		t.Fatal("no measured queries")
	}
	if res.HitRatio < 0 || res.HitRatio > 1 {
		t.Fatalf("hit ratio %v out of range", res.HitRatio)
	}
	if res.Census.Entries == 0 {
		t.Fatal("empty census")
	}
	if res.MemUsed <= 0 || res.MemUsed > 3*rc.Budget {
		t.Fatalf("memory used %d vs budget %d", res.MemUsed, rc.Budget)
	}
}

func TestRunSpatialAndUser(t *testing.T) {
	for name, run := range map[string]func(RunConfig) RunResult{
		"spatial": RunSpatial,
		"user":    RunUser,
	} {
		rc := quickScale().baseRun()
		rc.Policy = PolFIFO
		rc.K = 10
		rc.Correlated = true
		res := run(rc)
		if res.Flushes == 0 || res.Hits+res.Misses == 0 {
			t.Fatalf("%s run incomplete: %+v", name, res)
		}
	}
}

func TestAllPoliciesRunnable(t *testing.T) {
	for _, pol := range AllPolicies {
		rc := quickScale().baseRun()
		rc.Policy = pol
		rc.K = 10
		rc.Correlated = false
		res := RunKeyword(rc)
		if res.Policy != pol {
			t.Fatalf("result policy %q, want %q", res.Policy, pol)
		}
		if res.OverheadBytes < 0 {
			t.Fatalf("%s: negative overhead", pol)
		}
	}
}

func TestSnapshotTableShape(t *testing.T) {
	tab := Snapshot(quickScale())
	if len(tab.Rows) != len(AllPolicies) {
		t.Fatalf("snapshot rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("ragged row: %v", row)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Note:   "note",
		Header: []string{"a", "bb"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== T ==", "note", "a    bb", "333  4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if csv != "a,bb\n1,2\n333,4\n" {
		t.Fatalf("csv = %q", csv)
	}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	exps := Experiments(quickScale())
	for _, id := range ExperimentOrder {
		if _, ok := exps[id]; !ok {
			t.Errorf("ExperimentOrder lists %q but Experiments lacks it", id)
		}
	}
	if len(exps) != len(ExperimentOrder) {
		t.Errorf("registry has %d experiments, order lists %d", len(exps), len(ExperimentOrder))
	}
}
