package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's printable result: a title (the paper figure
// it regenerates), a column header, and rows of pre-formatted cells.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%-*s", widths[i], c))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values for downstream
// plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Formatting helpers shared by the experiments.

func fPct(v float64) string  { return fmt.Sprintf("%.2f%%", v*100) }
func fInt(v int64) string    { return fmt.Sprintf("%d", v) }
func fMiB(v int64) string    { return fmt.Sprintf("%.1fMiB", float64(v)/(1<<20)) }
func fF2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func fRate(v float64) string { return fmt.Sprintf("%.0f/s", v) }
