package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/engine"
	"kflushing/internal/gen"
	"kflushing/internal/query"
	"kflushing/internal/types"
	"kflushing/internal/workload"
)

// Fig10a regenerates Figure 10(a): policy memory overhead vs k. The
// paper's ordering — LRU highest (per-item tracking), FIFO lowest (a
// segment directory only), kFlushing variants in between (per-entry
// timestamps, the over-k list, and the temporary flush buffer).
func Fig10a(s Scale) *Table {
	xs := make([]string, len(s.Ks))
	for i, k := range s.Ks {
		xs[i] = fmt.Sprintf("%d", k)
	}
	return sweepTable(
		"Figure 10(a): flushing-policy memory overhead vs k",
		"bookkeeping bytes + peak temporary flush buffer",
		"k", xs,
		func(i int) RunConfig {
			rc := s.baseRun()
			rc.K = s.Ks[i]
			rc.Correlated = true
			return rc
		},
		RunKeyword,
		func(r RunResult) string { return fMiB(r.OverheadBytes) },
	)
}

// Fig10b regenerates Figure 10(b): digestion rate vs k. The stream is
// unthrottled ("we stress our system and let the tweets arrive as fast
// as it tolerates") while a query thread runs concurrently and flushing
// executes on its own goroutine. Records are pre-generated so the
// measurement times only the digestion path.
func Fig10b(s Scale) *Table {
	t := &Table{
		Title:  "Figure 10(b): digestion rate vs k (unthrottled ingest, concurrent queries)",
		Note:   "paper: FIFO ~120K/s > kFlushing ~100K/s > kFlushing-MK ~80K/s >> LRU ~29K/s",
		Header: append([]string{"k"}, AllPolicies...),
	}
	for _, k := range s.Ks {
		row := []string{fmt.Sprintf("%d", k)}
		for _, pol := range AllPolicies {
			rc := s.baseRun()
			rc.Policy = pol
			rc.K = k
			rate := digestionRate(rc)
			row = append(row, fRate(rate))
		}
		t.AddRow(row...)
	}
	return t
}

// digestionRate measures sustained ingest throughput (records/second of
// wall time) with background flushing and a concurrent query workload.
func digestionRate(rc RunConfig) float64 {
	rc = rc.Defaults()
	dir, cleanup := tempDiskDir(rc)
	defer cleanup()

	pc := buildPolicy[string](rc)
	clk := clock.NewLogical(1, 0)
	eng, err := engine.New(engine.Config[string]{
		K: rc.K, MemoryBudget: rc.Budget, FlushFraction: rc.FlushFrac,
		KeysOf: attr.KeywordKeys, KeyHash: attr.HashString,
		KeyLen: attr.KeywordLen, EncodeKey: attr.KeywordEncode,
		Clock: clk, DiskDir: dir, Policy: pc.pol, TrackTopK: pc.trackTopK,
		TrackOverK: pc.trackOverK,
		SyncFlush:  false, // flushing on its own thread, as in the paper
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()

	// Pre-generate the stream so generation cost is excluded.
	streamCfg := rc.Stream
	streamCfg.GeoFraction = 0
	g := gen.New(streamCfg)
	warm := int(rc.Budget / 250) // roughly one memory fill
	measure := warm
	recs := make([]*types.Microblog, warm+measure)
	for i := range recs {
		recs[i] = g.Next()
	}
	for _, mb := range recs[:warm] {
		clk.Set(mb.Timestamp)
		if _, err := eng.Ingest(mb); err != nil && err != engine.ErrNoKeys {
			panic(err)
		}
	}

	// Concurrent query thread: correlated load, runs until stopped.
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wl := workload.KeywordCorrelated(rc.Stream, rc.Seed+2000)
		for !stop.Load() {
			q := wl.Next()
			if _, err := eng.Search(query.Request[string]{Keys: q.Keys, Op: q.Op, K: rc.K}); err != nil {
				return
			}
		}
	}()

	start := time.Now()
	for _, mb := range recs[warm:] {
		clk.Set(mb.Timestamp)
		if _, err := eng.Ingest(mb); err != nil && err != engine.ErrNoKeys {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()
	return float64(measure) / elapsed.Seconds()
}

// Latency validates the paper's claim that kFlushing keeps "the
// in-memory query performance intact": per policy, the in-memory (hit)
// query latency must be in the same band, with only the hit *ratio*
// differing; miss latencies show what a disk visit costs.
func Latency(s Scale) *Table {
	t := &Table{
		Title:  "Query latency by policy (correlated load, k=20)",
		Note:   "hit latency must be flat across policies (the paper: in-memory performance intact)",
		Header: []string{"policy", "hit-ratio", "hit-mean", "hit-p99", "miss-mean", "miss-p99"},
	}
	for _, pol := range AllPolicies {
		rc := s.baseRun()
		rc.Policy = pol
		rc.K = 20
		rc.Correlated = true
		res := RunKeyword(rc)
		t.AddRow(pol, fPct(res.HitRatio),
			res.MeanHit.String(), res.P99Hit.String(),
			res.MeanMiss.String(), res.P99Miss.String())
	}
	return t
}

// AblationPhases compares kFlushing capped at phases 1, 1+2, and 1+2+3
// on hit ratio and k-filled keywords — quantifying what each phase
// contributes (DESIGN.md ablation 4).
func AblationPhases(s Scale) *Table {
	t := &Table{
		Title:  "Ablation: contribution of kFlushing phases (correlated load, k=20)",
		Header: []string{"phases", "hit-ratio", "k-filled", "flushes", "mem-used"},
	}
	for _, mp := range []int{1, 2, 3} {
		rc := s.baseRun()
		rc.Policy = PolKFlushing
		rc.K = 20
		rc.MaxPhase = mp
		rc.Correlated = true
		res := RunKeyword(rc)
		label := map[int]string{1: "1", 2: "1+2", 3: "1+2+3"}[mp]
		t.AddRow(label, fPct(res.HitRatio), fInt(int64(res.Census.KFilled)),
			fInt(res.Flushes), fMiB(res.MemUsed))
	}
	return t
}

// AblationSelector compares the paper's O(n) single-pass heap victim
// selection against the O(n log n) sort strawman (DESIGN.md ablation 1)
// on end-to-end run time and resulting hit ratio (the victim sets should
// be equivalent).
func AblationSelector(s Scale) *Table {
	t := &Table{
		Title:  "Ablation: Phase 2/3 victim selection, single-pass heap vs sort",
		Header: []string{"selector", "hit-ratio", "k-filled", "run-time"},
	}
	for _, sort := range []bool{false, true} {
		rc := s.baseRun()
		rc.Policy = PolKFlushing
		rc.K = 20
		rc.Correlated = true
		rc.SortSelector = sort
		res := RunKeyword(rc)
		name := "heap (paper)"
		if sort {
			name = "sort"
		}
		t.AddRow(name, fPct(res.HitRatio), fInt(int64(res.Census.KFilled)), res.Elapsed.Round(time.Millisecond).String())
	}
	return t
}
