// Package bench is the experiment harness that regenerates every figure
// of the paper's evaluation (Section V). Each experiment builds engines
// for the policies under test, drives them with the synthetic stream and
// a query workload to a steady state (memory full, multiple flushes
// behind us — the paper's measurement regime), then reports the figure's
// metric. DESIGN.md carries the experiment index; EXPERIMENTS.md the
// measured-vs-paper comparison.
package bench

import (
	"fmt"
	"os"
	"time"

	"kflushing/internal/clock"
	"kflushing/internal/core"
	"kflushing/internal/engine"
	"kflushing/internal/gen"
	"kflushing/internal/index"
	"kflushing/internal/policy"
	"kflushing/internal/query"
	"kflushing/internal/types"
	"kflushing/internal/workload"
)

// Policy names accepted by RunConfig.
const (
	PolFIFO        = "fifo"
	PolLRU         = "lru"
	PolKFlushing   = "kflushing"
	PolKFlushingMK = "kflushing-mk"
)

// AllPolicies lists the four evaluated policies in the paper's
// presentation order.
var AllPolicies = []string{PolFIFO, PolKFlushing, PolKFlushingMK, PolLRU}

// RunConfig describes one steady-state measurement run.
type RunConfig struct {
	// Policy is one of the Pol* names.
	Policy string
	// K is the top-k threshold (paper default 20).
	K int
	// Budget is the modeled memory budget in bytes.
	Budget int64
	// FlushFrac is the flushing budget B (paper default 0.10).
	FlushFrac float64
	// Stream configures the synthetic microblog stream.
	Stream gen.Config
	// Correlated selects the correlated workload; false = uniform.
	Correlated bool
	// NoQueries disables the query stream entirely (census-only runs
	// still touch entries via ingestion).
	NoQueries bool
	// WarmFlushes is how many flushes must complete before measuring.
	WarmFlushes int
	// MaxWarmIngest caps warm-up ingestion (safety bound).
	MaxWarmIngest int
	// MeasureQueries is the number of measured queries.
	MeasureQueries int
	// QueriesPerIngest interleaves this many queries per ingested
	// record during the measurement phase.
	QueriesPerIngest int
	// MaxPhase caps kFlushing phases (ablation); 0 means all.
	MaxPhase int
	// SortSelector switches kFlushing's Phase 2/3 victim selection to
	// the O(n log n) sort baseline (ablation).
	SortSelector bool
	// DiskDir overrides the disk tier directory; empty uses a temp
	// dir removed after the run.
	DiskDir string
	// Seed offsets all sampling.
	Seed int64
}

// Defaults fills unset fields with the scaled-down equivalents of the
// paper's defaults (k=20, B=10%, 30 GB budget → 32 MiB here).
func (rc RunConfig) Defaults() RunConfig {
	if rc.K == 0 {
		rc.K = 20
	}
	if rc.Budget == 0 {
		rc.Budget = 32 << 20
	}
	if rc.FlushFrac == 0 {
		rc.FlushFrac = 0.10
	}
	if rc.Stream.Vocab == 0 {
		rc.Stream = gen.DefaultConfig()
	}
	if rc.WarmFlushes == 0 {
		rc.WarmFlushes = 6
	}
	if rc.MaxWarmIngest == 0 {
		rc.MaxWarmIngest = 2_000_000
	}
	if rc.MeasureQueries == 0 {
		rc.MeasureQueries = 30_000
	}
	if rc.QueriesPerIngest == 0 {
		rc.QueriesPerIngest = 1
	}
	if rc.Seed == 0 {
		rc.Seed = 1
	}
	rc.Stream.Seed = rc.Seed
	return rc
}

// RunResult is one run's steady-state measurement.
type RunResult struct {
	Policy    string
	K         int
	Budget    int64
	FlushFrac float64

	// HitRatio is the measured-phase memory hit ratio in [0,1].
	HitRatio float64
	// Hits and Misses count measured-phase queries.
	Hits, Misses int64
	// PerOp break down the measured-phase hits by operator.
	SingleHitRatio, OrHitRatio, AndHitRatio float64

	// Census is the final in-memory distribution snapshot; KFilled is
	// the Figure 7 metric.
	Census index.Census
	// OverheadBytes is the policy bookkeeping cost (Figure 10a).
	OverheadBytes int64
	// MemUsed is the final budget-relevant memory.
	MemUsed int64
	// Flushes and FlushedBytes summarize flushing activity.
	Flushes      int64
	FlushedBytes int64
	// Ingested counts total digested records.
	Ingested int64
	// DiskSegments and DiskReads summarize miss-path activity.
	DiskSegments int64
	DiskReads    int64
	// Latency summaries over the whole run (hit vs miss paths).
	MeanHit, P99Hit   time.Duration
	MeanMiss, P99Miss time.Duration
	// Elapsed is the wall-clock run time.
	Elapsed time.Duration
}

// policyChoice carries a constructed policy plus the index features it
// needs.
type policyChoice[K comparable] struct {
	pol        policy.Policy[K]
	trackTopK  bool
	trackOverK bool
}

// buildPolicy constructs the named policy for key type K.
func buildPolicy[K comparable](rc RunConfig) policyChoice[K] {
	var opts []core.Option[K]
	if rc.MaxPhase > 0 {
		opts = append(opts, core.WithMaxPhase[K](rc.MaxPhase))
	}
	if rc.SortSelector {
		opts = append(opts, core.WithSelector[K](core.SortSelector[K]{}))
	}
	switch rc.Policy {
	case PolFIFO:
		return policyChoice[K]{pol: policy.NewFIFO[K](int64(rc.FlushFrac * float64(rc.Budget)))}
	case PolLRU:
		return policyChoice[K]{pol: policy.NewLRU[K]()}
	case PolKFlushingMK:
		return policyChoice[K]{pol: core.NewMK(opts...), trackTopK: true, trackOverK: true}
	case PolKFlushing:
		return policyChoice[K]{pol: core.New(opts...), trackOverK: true}
	default:
		panic(fmt.Sprintf("bench: unknown policy %q", rc.Policy))
	}
}

// tempDiskDir returns the run's disk directory and a cleanup function.
func tempDiskDir(rc RunConfig) (string, func()) {
	if rc.DiskDir != "" {
		return rc.DiskDir, func() {}
	}
	dir, err := os.MkdirTemp("", "kflush-bench-")
	if err != nil {
		panic(err)
	}
	return dir, func() { os.RemoveAll(dir) }
}

// run drives one engine to steady state and measures it. next supplies
// stream records (nil records are skipped); wl supplies queries and may
// be nil for census-only runs.
func run[K comparable](rc RunConfig, eng *engine.Engine[K], clk *clock.Logical,
	next func() *types.Microblog, wl workload.Source[K]) RunResult {

	start := time.Now()
	obs, _ := wl.(workload.Observer)
	ingest := func() bool {
		mb := next()
		if mb == nil {
			return false
		}
		clk.Set(mb.Timestamp)
		_, err := eng.Ingest(mb)
		if err != nil && err != engine.ErrNoKeys {
			panic(err)
		}
		if obs != nil {
			obs.Observe(mb)
		}
		return true
	}
	// ingestBatch digests up to n records as one batch (the
	// high-throughput path), returning how many stream records it
	// consumed. Stream records arrive pre-stamped, so advancing the
	// clock to the last timestamp matches the sequential path.
	ingestBatch := func(n int) int {
		batch := make([]*types.Microblog, 0, n)
		for len(batch) < n {
			mb := next()
			if mb == nil {
				break
			}
			clk.Set(mb.Timestamp)
			if obs != nil {
				obs.Observe(mb)
			}
			batch = append(batch, mb)
		}
		if len(batch) == 0 {
			return 0
		}
		if _, err := eng.IngestBatch(batch); err != nil {
			panic(err)
		}
		return len(batch)
	}
	ask := func() {
		if wl == nil {
			return
		}
		q := wl.Next()
		if _, err := eng.Search(query.Request[K]{Keys: q.Keys, Op: q.Op, K: rc.K}); err != nil {
			panic(err)
		}
	}

	// Warm-up: fill memory and get past the first flushes using batched
	// ingestion, issuing queries throughout so query-recency bookkeeping
	// (Phase 3, LRU) sees a realistic access pattern.
	reg := eng.Metrics()
	const warmBatch = 32
	warmQueriesEvery := 4 // sparse during warm-up; dense while measuring
	for i := 0; reg.Flushes.Load() < int64(rc.WarmFlushes) && i < rc.MaxWarmIngest; {
		n := ingestBatch(warmBatch)
		if n == 0 {
			break
		}
		i += n
		for j := 0; j < n/warmQueriesEvery; j++ {
			ask()
		}
	}

	// Measurement phase: interleave queries and ingestion at the
	// configured ratio; hit ratio is computed over this phase only.
	before := reg.Snap()
	if !rc.NoQueries && wl != nil {
		issued := 0
		for issued < rc.MeasureQueries {
			ingest()
			for j := 0; j < rc.QueriesPerIngest && issued < rc.MeasureQueries; j++ {
				ask()
				issued++
			}
		}
	} else {
		// Census-only runs still push more stream through to stay in
		// steady state a while.
		for i := 0; i < rc.MeasureQueries; i++ {
			ingest()
		}
	}
	after := reg.Snap()

	st := eng.Stats()
	res := RunResult{
		Policy:        rc.Policy,
		K:             rc.K,
		Budget:        rc.Budget,
		FlushFrac:     rc.FlushFrac,
		Census:        st.Census,
		OverheadBytes: st.PolicyOverhead,
		MemUsed:       st.MemoryUsed,
		Flushes:       after.Flushes,
		FlushedBytes:  after.FlushedBytes,
		Ingested:      after.Ingested,
		DiskSegments:  int64(st.Disk.Segments),
		DiskReads:     st.Disk.RecordReads,
		MeanHit:       st.Metrics.MeanHit,
		P99Hit:        st.Metrics.P99Hit,
		MeanMiss:      st.Metrics.MeanMiss,
		P99Miss:       st.Metrics.P99Miss,
		Elapsed:       time.Since(start),
	}
	res.Hits = after.Hits - before.Hits
	res.Misses = after.Misses - before.Misses
	if q := res.Hits + res.Misses; q > 0 {
		res.HitRatio = float64(res.Hits) / float64(q)
	}
	res.SingleHitRatio = ratio(after.SingleHits-before.SingleHits, after.SingleMisses-before.SingleMisses)
	res.OrHitRatio = ratio(after.OrHits-before.OrHits, after.OrMisses-before.OrMisses)
	res.AndHitRatio = ratio(after.AndHits-before.AndHits, after.AndMisses-before.AndMisses)
	return res
}

func ratio(h, m int64) float64 {
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
