package bench

import (
	"fmt"

	"kflushing/internal/attr"
	"kflushing/internal/clock"
	"kflushing/internal/engine"
	"kflushing/internal/gen"
)

// Scale sizes the experiments. The paper runs 30 GB budgets over 2B+
// tweets and 10M queries; Default scales that to laptop-size while
// preserving the ratios that drive policy behaviour. Quick is for smoke
// tests and testing.B benchmarks.
type Scale struct {
	// Budget is the default memory budget.
	Budget int64
	// Budgets is the memory-budget sweep (Figures 7c/8c/9c/11/12).
	Budgets []int64
	// Ks is the top-k sweep (Figures 7a/8a/9a/10).
	Ks []int
	// FlushFracs is the flushing-budget sweep (Figures 7b/8b/9b).
	FlushFracs []float64
	// MeasureQueries per run.
	MeasureQueries int
	// WarmFlushes before measuring.
	WarmFlushes int
	// Seed for all sampling.
	Seed int64
}

// DefaultScale mirrors the paper's sweeps at 1 MiB per paper-GB.
func DefaultScale() Scale {
	return Scale{
		Budget:         30 << 20,
		Budgets:        []int64{10 << 20, 20 << 20, 30 << 20, 40 << 20, 50 << 20},
		Ks:             []int{5, 10, 20, 40, 60, 80, 100},
		FlushFracs:     []float64{0.2, 0.4, 0.6, 0.8, 1.0},
		MeasureQueries: 30_000,
		WarmFlushes:    6,
		Seed:           1,
	}
}

// QuickScale is a fast, reduced sweep for tests and benchmarks.
func QuickScale() Scale {
	return Scale{
		Budget:         6 << 20,
		Budgets:        []int64{4 << 20, 8 << 20},
		Ks:             []int{5, 20},
		FlushFracs:     []float64{0.2, 0.6},
		MeasureQueries: 2_000,
		WarmFlushes:    3,
		Seed:           1,
	}
}

func (s Scale) baseRun() RunConfig {
	return RunConfig{
		Budget:         s.Budget,
		MeasureQueries: s.MeasureQueries,
		WarmFlushes:    s.WarmFlushes,
		Seed:           s.Seed,
	}
}

// Snapshot regenerates the Section III-A observation and Figure 1: the
// share of memory consumed by postings that can never serve a top-k
// query, under each policy at steady state (k=20).
func Snapshot(s Scale) *Table {
	t := &Table{
		Title:  "Snapshot of in-memory contents (Section III-A / Figure 1, k=20)",
		Note:   "useless = postings ranked outside their entry's top-k; paper reports >75% under temporal flushing",
		Header: []string{"policy", "entries", "postings", "beyond-topk", "useless", "k-filled"},
	}
	for _, pol := range AllPolicies {
		rc := s.baseRun()
		rc.Policy = pol
		rc.K = 20
		rc.Correlated = true
		res := RunKeyword(rc)
		useless := 0.0
		if res.Census.Postings > 0 {
			useless = float64(res.Census.BeyondTopK) / float64(res.Census.Postings)
		}
		t.AddRow(pol, fInt(int64(res.Census.Entries)), fInt(int64(res.Census.Postings)),
			fInt(int64(res.Census.BeyondTopK)), fPct(useless), fInt(int64(res.Census.KFilled)))
	}
	return t
}

// Fig5 regenerates Figure 5: the memory-consumption timeline under
// Phase 1 alone (saturating: each flush frees less) versus Phases 1+2
// (steady: every flush frees at least B). Sampled in percent of budget
// per timeline step.
func Fig5(s Scale) *Table {
	t := &Table{
		Title:  "Figure 5: memory consumption behavior over time",
		Note:   "phase1-only flushes shrink toward saturation; phase1+2 keeps freeing >= B every flush",
		Header: []string{"step", "phase1-only-used%", "phase1-only-flushes", "phase1+2-used%", "phase1+2-flushes"},
	}
	series := make([][2][]float64, 2) // [variant]{used%, flushes}
	for vi, maxPhase := range []int{1, 2} {
		rc := s.baseRun()
		rc.Policy = PolKFlushing
		rc.K = 20
		rc.MaxPhase = maxPhase
		rc = rc.Defaults()

		dir, cleanup := tempDiskDir(rc)
		pc := buildPolicy[string](rc)
		clk := clock.NewLogical(1, 0)
		eng, err := engine.New(engine.Config[string]{
			K: rc.K, MemoryBudget: rc.Budget, FlushFraction: rc.FlushFrac,
			KeysOf: attr.KeywordKeys, KeyHash: attr.HashString,
			KeyLen: attr.KeywordLen, EncodeKey: attr.KeywordEncode,
			Clock: clk, DiskDir: dir, Policy: pc.pol,
			TrackOverK: pc.trackOverK, SyncFlush: true,
		})
		if err != nil {
			panic(err)
		}
		streamCfg := rc.Stream
		streamCfg.GeoFraction = 0
		g := gen.New(streamCfg)

		// Sample used% every sampleEvery ingests across enough stream
		// to see several flush cycles.
		const samples = 50
		totalIngest := 6 * int(rc.Budget/300) // ~6 memory fills
		sampleEvery := totalIngest / samples
		var usedPct, flushes []float64
		for i := 0; i < totalIngest; i++ {
			mb := g.Next()
			clk.Set(mb.Timestamp)
			if _, err := eng.Ingest(mb); err != nil && err != engine.ErrNoKeys {
				panic(err)
			}
			if i%sampleEvery == 0 {
				usedPct = append(usedPct, 100*float64(eng.Mem().Used())/float64(rc.Budget))
				flushes = append(flushes, float64(eng.Metrics().Flushes.Load()))
			}
		}
		series[vi] = [2][]float64{usedPct, flushes}
		eng.Close()
		cleanup()
	}
	n := len(series[0][0])
	if len(series[1][0]) < n {
		n = len(series[1][0])
	}
	for i := 0; i < n; i++ {
		t.AddRow(fInt(int64(i)),
			fF2(series[0][0][i]), fInt(int64(series[0][1][i])),
			fF2(series[1][0][i]), fInt(int64(series[1][1][i])))
	}
	return t
}

// sweepTable runs cfg across the four policies for each x value and
// reports metric(res) per policy column.
func sweepTable(title, note, xName string, xs []string,
	configure func(i int) RunConfig, runOne func(RunConfig) RunResult,
	metric func(RunResult) string) *Table {

	t := &Table{
		Title:  title,
		Note:   note,
		Header: append([]string{xName}, AllPolicies...),
	}
	for i, x := range xs {
		row := []string{x}
		for _, pol := range AllPolicies {
			rc := configure(i)
			rc.Policy = pol
			row = append(row, metric(runOne(rc)))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig7a regenerates Figure 7(a): number of k-filled keywords vs k.
func Fig7a(s Scale) *Table {
	xs := make([]string, len(s.Ks))
	for i, k := range s.Ks {
		xs[i] = fmt.Sprintf("%d", k)
	}
	return sweepTable(
		"Figure 7(a): k-filled keywords vs k",
		"correlated query load; higher is better",
		"k", xs,
		func(i int) RunConfig {
			rc := s.baseRun()
			rc.K = s.Ks[i]
			rc.Correlated = true
			return rc
		},
		RunKeyword,
		func(r RunResult) string { return fInt(int64(r.Census.KFilled)) },
	)
}

// Fig7b regenerates Figure 7(b): k-filled keywords vs flushing budget.
func Fig7b(s Scale) *Table {
	xs := make([]string, len(s.FlushFracs))
	for i, b := range s.FlushFracs {
		xs[i] = fmt.Sprintf("%.0f%%", b*100)
	}
	return sweepTable(
		"Figure 7(b): k-filled keywords vs flushing budget",
		"correlated query load, k=20",
		"B", xs,
		func(i int) RunConfig {
			rc := s.baseRun()
			rc.K = 20
			rc.FlushFrac = s.FlushFracs[i]
			rc.Correlated = true
			return rc
		},
		RunKeyword,
		func(r RunResult) string { return fInt(int64(r.Census.KFilled)) },
	)
}

// Fig7c regenerates Figure 7(c): k-filled keywords vs memory budget.
func Fig7c(s Scale) *Table {
	xs := make([]string, len(s.Budgets))
	for i, b := range s.Budgets {
		xs[i] = fMiB(b)
	}
	return sweepTable(
		"Figure 7(c): k-filled keywords vs memory budget",
		"correlated query load, k=20 (paper sweeps 10-50GB; scaled 1MiB per GB)",
		"memory", xs,
		func(i int) RunConfig {
			rc := s.baseRun()
			rc.K = 20
			rc.Budget = s.Budgets[i]
			rc.Correlated = true
			return rc
		},
		RunKeyword,
		func(r RunResult) string { return fInt(int64(r.Census.KFilled)) },
	)
}

// hitRatioSweeps builds the three hit-ratio sweeps (vs k, vs B, vs
// memory) for one workload, regenerating Figures 8 and 9.
func hitRatioSweeps(s Scale, correlated bool, figure string) []*Table {
	wl := "uniform"
	if correlated {
		wl = "correlated"
	}
	kXs := make([]string, len(s.Ks))
	for i, k := range s.Ks {
		kXs[i] = fmt.Sprintf("%d", k)
	}
	bXs := make([]string, len(s.FlushFracs))
	for i, b := range s.FlushFracs {
		bXs[i] = fmt.Sprintf("%.0f%%", b*100)
	}
	mXs := make([]string, len(s.Budgets))
	for i, b := range s.Budgets {
		mXs[i] = fMiB(b)
	}
	metric := func(r RunResult) string { return fPct(r.HitRatio) }
	return []*Table{
		sweepTable(
			fmt.Sprintf("Figure %s(a): hit ratio vs k (%s load)", figure, wl), "",
			"k", kXs,
			func(i int) RunConfig {
				rc := s.baseRun()
				rc.K = s.Ks[i]
				rc.Correlated = correlated
				return rc
			},
			RunKeyword, metric),
		sweepTable(
			fmt.Sprintf("Figure %s(b): hit ratio vs flushing budget (%s load)", figure, wl), "k=20",
			"B", bXs,
			func(i int) RunConfig {
				rc := s.baseRun()
				rc.K = 20
				rc.FlushFrac = s.FlushFracs[i]
				rc.Correlated = correlated
				return rc
			},
			RunKeyword, metric),
		sweepTable(
			fmt.Sprintf("Figure %s(c): hit ratio vs memory budget (%s load)", figure, wl), "k=20",
			"memory", mXs,
			func(i int) RunConfig {
				rc := s.baseRun()
				rc.K = 20
				rc.Budget = s.Budgets[i]
				rc.Correlated = correlated
				return rc
			},
			RunKeyword, metric),
	}
}

// Fig8 regenerates Figure 8(a,b,c): hit ratio on the correlated load.
func Fig8(s Scale) []*Table { return hitRatioSweeps(s, true, "8") }

// Fig9 regenerates Figure 9(a,b,c): hit ratio on the uniform load.
func Fig9(s Scale) []*Table { return hitRatioSweeps(s, false, "9") }
