package promlint

import (
	"strings"
	"testing"
)

func lint(t *testing.T, exposition string) []Problem {
	t.Helper()
	return Lint(strings.NewReader(exposition))
}

func wantProblem(t *testing.T, probs []Problem, substr string) {
	t.Helper()
	for _, p := range probs {
		if strings.Contains(p.Msg, substr) {
			return
		}
	}
	t.Fatalf("no problem mentioning %q in %v", substr, probs)
}

const clean = `# HELP m_requests_total requests served
# TYPE m_requests_total counter
m_requests_total{code="200"} 10
m_requests_total{code="500"} 1
# HELP m_temp_celsius current temperature
# TYPE m_temp_celsius gauge
m_temp_celsius 21.5
# HELP m_latency_seconds request latency
# TYPE m_latency_seconds histogram
m_latency_seconds_bucket{le="0.1"} 3
m_latency_seconds_bucket{le="1"} 5
m_latency_seconds_bucket{le="+Inf"} 6
m_latency_seconds_sum 2.2
m_latency_seconds_count 6
`

func TestCleanExposition(t *testing.T) {
	if probs := lint(t, clean); len(probs) != 0 {
		t.Fatalf("clean exposition flagged: %v", probs)
	}
}

func TestMissingMetadata(t *testing.T) {
	wantProblem(t, lint(t, "m_x 1\n"), "no TYPE metadata")
	wantProblem(t, lint(t, "m_x 1\n"), "no HELP metadata")
}

func TestTotalMustBeCounter(t *testing.T) {
	probs := lint(t, `# HELP m_ops_total ops
# TYPE m_ops_total gauge
m_ops_total 5
`)
	wantProblem(t, probs, "not counter")
}

func TestDuplicateSeries(t *testing.T) {
	probs := lint(t, `# HELP m_x x
# TYPE m_x gauge
m_x{a="1",b="2"} 1
m_x{b="2",a="1"} 2
`)
	wantProblem(t, probs, "duplicate series")
}

func TestHistogramNotCumulative(t *testing.T) {
	probs := lint(t, `# HELP m_h h
# TYPE m_h histogram
m_h_bucket{le="1"} 5
m_h_bucket{le="2"} 3
m_h_bucket{le="+Inf"} 5
m_h_sum 1
m_h_count 5
`)
	wantProblem(t, probs, "not cumulative")
}

func TestHistogramUnsortedLe(t *testing.T) {
	probs := lint(t, `# HELP m_h h
# TYPE m_h histogram
m_h_bucket{le="2"} 1
m_h_bucket{le="1"} 1
m_h_bucket{le="+Inf"} 1
m_h_sum 1
m_h_count 1
`)
	wantProblem(t, probs, "not le-sorted")
}

func TestHistogramMissingInf(t *testing.T) {
	probs := lint(t, `# HELP m_h h
# TYPE m_h histogram
m_h_bucket{le="1"} 1
m_h_sum 1
m_h_count 1
`)
	wantProblem(t, probs, "+Inf")
}

func TestHistogramInfDisagreesWithCount(t *testing.T) {
	probs := lint(t, `# HELP m_h h
# TYPE m_h histogram
m_h_bucket{le="+Inf"} 4
m_h_sum 1
m_h_count 5
`)
	wantProblem(t, probs, "!= _count")
}

func TestDuplicateTypeLine(t *testing.T) {
	probs := lint(t, `# HELP m_x x
# TYPE m_x gauge
# TYPE m_x counter
m_x 1
`)
	wantProblem(t, probs, "duplicate TYPE")
}

func TestUnparseableSample(t *testing.T) {
	wantProblem(t, lint(t, `# HELP m_x x
# TYPE m_x gauge
m_x{a="1" 1
`), "unparseable")
}
