// Package promlint validates Prometheus text exposition (version 0.0.4)
// the way a scraper would: every sample must belong to a metric with
// HELP and TYPE metadata, no series may be emitted twice, monotonic
// `*_total` series must be counters, and histogram `_bucket` series must
// be cumulative, `le`-sorted, and closed by a `+Inf` bucket that agrees
// with `_count`.
//
// It backs the exposition tests in internal/server and the cmd/promlint
// binary the CI metrics-lint job runs against a live /metrics scrape, so
// a malformed metric cannot merge.
package promlint

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Problem is one lint finding.
type Problem struct {
	// Line is the 1-based line number the problem was found at (0 for
	// whole-exposition problems discovered after the scan).
	Line int
	// Msg describes the problem.
	Msg string
}

func (p Problem) String() string {
	if p.Line > 0 {
		return fmt.Sprintf("line %d: %s", p.Line, p.Msg)
	}
	return p.Msg
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// sample is one parsed exposition line.
type sample struct {
	line   int
	name   string
	labels map[string]string
	value  float64
}

// histKey identifies one histogram series: base name + labels minus le.
type histKey struct {
	name   string
	labels string
}

// bucket is one _bucket sample of a histogram.
type bucket struct {
	le    float64
	leRaw string
	value float64
	line  int
}

// Lint reads one exposition and returns every problem found, in input
// order. An empty slice means the exposition is clean.
func Lint(r io.Reader) []Problem {
	var probs []Problem
	add := func(line int, format string, args ...any) {
		probs = append(probs, Problem{Line: line, Msg: fmt.Sprintf(format, args...)})
	}

	help := map[string]int{}     // metric -> first HELP line
	types := map[string]string{} // metric -> declared type
	seen := map[string]int{}     // series identity -> first line
	var samples []sample
	buckets := map[histKey][]bucket{}
	counts := map[histKey]float64{}
	sums := map[histKey]bool{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !nameRe.MatchString(name) {
				add(lineno, "invalid metric name %q in %s line", name, fields[1])
				continue
			}
			switch fields[1] {
			case "HELP":
				if _, dup := help[name]; dup {
					add(lineno, "duplicate HELP for %s", name)
				}
				help[name] = lineno
				if len(fields) < 4 || strings.TrimSpace(fields[3]) == "" {
					add(lineno, "empty HELP text for %s", name)
				}
			case "TYPE":
				if _, dup := types[name]; dup {
					add(lineno, "duplicate TYPE for %s", name)
				}
				if len(fields) < 4 {
					add(lineno, "TYPE line for %s missing type", name)
					continue
				}
				typ := strings.TrimSpace(fields[3])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					add(lineno, "invalid TYPE %q for %s", typ, name)
				}
				types[name] = typ
			}
			continue
		}

		s, err := parseSample(line)
		if err != nil {
			add(lineno, "unparseable sample: %v", err)
			continue
		}
		s.line = lineno
		samples = append(samples, s)

		id := s.name + "{" + canonicalLabels(s.labels) + "}"
		if first, dup := seen[id]; dup {
			add(lineno, "duplicate series %s (first at line %d)", id, first)
		} else {
			seen[id] = lineno
		}
	}
	if err := sc.Err(); err != nil {
		add(0, "read: %v", err)
		return probs
	}

	for _, s := range samples {
		base, role := baseName(s.name, types)
		if _, ok := types[base]; !ok {
			add(s.line, "sample %s has no TYPE metadata", s.name)
		}
		if _, ok := help[base]; !ok {
			add(s.line, "sample %s has no HELP metadata", s.name)
		}
		if strings.HasSuffix(base, "_total") && types[base] != "counter" && types[base] != "" {
			add(s.line, "metric %s ends in _total but is declared %s, not counter", base, types[base])
		}
		if role == "" && (types[base] == "counter" || strings.HasSuffix(base, "_total")) && s.value < 0 {
			add(s.line, "counter %s has negative value %g", base, s.value)
		}
		for k := range s.labels {
			if !labelRe.MatchString(k) {
				add(s.line, "invalid label name %q on %s", k, s.name)
			}
		}

		if types[base] == "histogram" {
			labels := s.labels
			switch role {
			case "bucket":
				leRaw, ok := labels["le"]
				if !ok {
					add(s.line, "histogram bucket %s missing le label", s.name)
					continue
				}
				le, err := parseLe(leRaw)
				if err != nil {
					add(s.line, "histogram bucket %s has bad le %q", s.name, leRaw)
					continue
				}
				k := histKey{base, canonicalLabelsExcept(labels, "le")}
				buckets[k] = append(buckets[k], bucket{le: le, leRaw: leRaw, value: s.value, line: s.line})
			case "count":
				counts[histKey{base, canonicalLabels(labels)}] = s.value
			case "sum":
				sums[histKey{base, canonicalLabels(labels)}] = true
			default:
				add(s.line, "histogram %s emitted bare sample %s", base, s.name)
			}
		}
	}

	// Per-histogram-series structural checks.
	keys := make([]histKey, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].labels < keys[j].labels
	})
	for _, k := range keys {
		bs := buckets[k]
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			add(last.line, "histogram %s{%s} does not end with a +Inf bucket", k.name, k.labels)
		}
		for i := 1; i < len(bs); i++ {
			if bs[i].le <= bs[i-1].le {
				add(bs[i].line, "histogram %s{%s} buckets not le-sorted: %q after %q",
					k.name, k.labels, bs[i].leRaw, bs[i-1].leRaw)
			}
			if bs[i].value < bs[i-1].value {
				add(bs[i].line, "histogram %s{%s} buckets not cumulative: le=%q count %g < le=%q count %g",
					k.name, k.labels, bs[i].leRaw, bs[i].value, bs[i-1].leRaw, bs[i-1].value)
			}
		}
		if cnt, ok := counts[k]; !ok {
			add(last.line, "histogram %s{%s} has no _count series", k.name, k.labels)
		} else if math.IsInf(last.le, 1) && last.value != cnt {
			add(last.line, "histogram %s{%s} +Inf bucket %g != _count %g",
				k.name, k.labels, last.value, cnt)
		}
		if !sums[k] {
			add(last.line, "histogram %s{%s} has no _sum series", k.name, k.labels)
		}
	}

	sort.SliceStable(probs, func(i, j int) bool { return probs[i].Line < probs[j].Line })
	return probs
}

// baseName resolves a sample name to its metadata metric: histogram
// samples map _bucket/_sum/_count onto the declared base name. role is
// "bucket", "sum", "count", or "" for a plain sample.
func baseName(name string, types map[string]string) (string, string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, suf); ok && types[b] == "histogram" {
			return b, suf[1:]
		}
	}
	return name, ""
}

// parseLe parses a bucket upper bound, accepting +Inf.
func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseSample parses `name{labels} value [timestamp]`.
func parseSample(line string) (sample, error) {
	s := sample{labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if sp := strings.IndexAny(rest, " \t"); brace >= 0 && (sp < 0 || brace < sp) {
		nameEnd = brace
	} else if sp >= 0 {
		nameEnd = sp
	} else {
		return s, fmt.Errorf("no value")
	}
	s.name = rest[:nameEnd]
	if !nameRe.MatchString(s.name) {
		return s, fmt.Errorf("invalid metric name %q", s.name)
	}
	rest = rest[nameEnd:]
	if strings.HasPrefix(rest, "{") {
		end, err := parseLabels(rest, s.labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value [timestamp], got %q", rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		if fields[0] == "+Inf" || fields[0] == "-Inf" || fields[0] == "NaN" {
			v = 0
		} else {
			return s, fmt.Errorf("bad value %q", fields[0])
		}
	}
	s.value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block starting at rest[0]=='{' and
// returns the index just past the closing brace.
func parseLabels(rest string, out map[string]string) (int, error) {
	i := 1
	for {
		for i < len(rest) && (rest[i] == ' ' || rest[i] == ',') {
			i++
		}
		if i < len(rest) && rest[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label without '='")
		}
		key := rest[i : i+eq]
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return 0, fmt.Errorf("label value for %q not quoted", key)
		}
		i++
		var val strings.Builder
		for i < len(rest) && rest[i] != '"' {
			if rest[i] == '\\' && i+1 < len(rest) {
				i++
			}
			val.WriteByte(rest[i])
			i++
		}
		if i >= len(rest) {
			return 0, fmt.Errorf("unterminated label value for %q", key)
		}
		i++ // closing quote
		if _, dup := out[key]; dup {
			return 0, fmt.Errorf("duplicate label %q", key)
		}
		out[key] = val.String()
	}
}

// canonicalLabels renders a label set sorted by key, for identity
// comparison.
func canonicalLabels(labels map[string]string) string {
	return canonicalLabelsExcept(labels, "")
}

func canonicalLabelsExcept(labels map[string]string, drop string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}
