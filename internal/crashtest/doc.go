// Package crashtest is the crash-recovery test harness: it re-execs the
// test binary as a child process, kills the child at every registered
// crash failpoint (failpoint.CrashSites covers the WAL, segment-write,
// compaction, flush-cycle, and recovery paths), reopens the store over
// the wreckage, and asserts the durability invariants:
//
//   - no acknowledged ingest is lost — every ID a completed IngestBatch
//     returned is found by a post-crash search;
//   - answers carry no duplicates;
//   - every index posting references a live store record with a positive
//     posting count (the structural flush invariant);
//   - the segment directory parses and every record is readable;
//   - the leveled manifest healed by recovery decodes, references only
//     files that exist, and never lists a file twice (live+retired, or
//     on two levels);
//   - compacting the recovered tier preserves the disk ID set exactly —
//     duplicates a WAL replay legitimately re-flushed are deduplicated,
//     never dropped or doubled;
//   - recovery is idempotent: each site is crashed a second time during
//     its own recovery (a double crash), and two further clean reopens
//     agree exactly.
//
// The package holds no production code; its tests are build-tag-gated
// because they need the fault-injection registry compiled in:
//
//	go test -tags failpoint ./internal/crashtest/
//
// A plain `go test ./...` compiles this doc and runs nothing.
package crashtest
