//go:build failpoint

package crashtest

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"testing"

	"kflushing"
	"kflushing/internal/attr"
	"kflushing/internal/disk"
	"kflushing/internal/failpoint"
	"kflushing/internal/index"
)

// childOptions is the configuration both the crashing child and the
// verifying parent open the store with: a budget small enough that the
// workload flushes many times (reaching the segment-write, compaction
// and multi-phase flush sites), k=2 so kFlushing trims aggressively,
// per-append WAL fsync so an acknowledged ingest is durable by
// definition, and synchronous flushing so every run is deterministic.
func childOptions() kflushing.Options {
	return kflushing.Options{
		Policy:          kflushing.PolicyKFlushing,
		K:               2,
		MemoryBudget:    24 << 10,
		FlushFraction:   0.9,
		SyncFlush:       true,
		DiskMaxSegments: 3,
		Durable:         true,
		WALSyncEvery:    1,
		// Adaptive memory runs clamped (min==max on every knob), which is
		// provably bit-equivalent to the static configuration — but it
		// makes the engine/tuner/apply site reachable: with Interval 1 on
		// the wall clock every ingest batch is due for a tick, so run 1
		// dies there and run 2 must recover every acknowledged record.
		AdaptiveMemory: true,
		Tuner: kflushing.TunerLimits{
			Interval:             1,
			MinFlushFraction:     0.9,
			MaxFlushFraction:     0.9,
			MinWatermarkFraction: 1.0,
			MaxWatermarkFraction: 1.0,
			MinCacheBytes:        8 << 20,
			MaxCacheBytes:        8 << 20,
		},
	}
}

// TestCrashChild is the workload the matrix crashes: it is only run as a
// re-exec'd child process with the failpoint environment inherited. Two
// store sessions back to back exercise ingest, inline flushing,
// compaction, close (WAL snapshot), and reopen (WAL recovery); after
// every acknowledged batch the returned IDs are appended and fsynced to
// the ack file, so the parent knows exactly which records the store
// promised to keep.
func TestCrashChild(t *testing.T) {
	if os.Getenv("CRASHTEST_CHILD") != "1" {
		t.Skip("crash-matrix child workload; driven by TestCrashMatrix")
	}
	dir := os.Getenv("CRASHTEST_DIR")
	ackPath := os.Getenv("CRASHTEST_ACK")
	if dir == "" || ackPath == "" {
		t.Fatal("CRASHTEST_DIR / CRASHTEST_ACK not set")
	}
	for session, n := range []int{900, 300} {
		ingestSession(t, dir, ackPath, session, n)
	}
}

// ingestSession opens the store, ingests n records in small batches, and
// closes it. Keywords give every record one hot key ("all"), one warm
// key (8-way bucket) and one unique key, so flushes exercise both the
// over-k trimming of Phase 1 and the under-filled eviction of Phase 2.
func ingestSession(t *testing.T, dir, ackPath string, session, n int) {
	t.Helper()
	sys, err := kflushing.Open(dir, childOptions())
	if err != nil {
		t.Fatalf("session %d: open: %v", session, err)
	}
	ack, err := os.OpenFile(ackPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("session %d: open ack file: %v", session, err)
	}
	defer ack.Close()
	const batchSize = 8
	for i := 0; i < n; i += batchSize {
		mbs := make([]*kflushing.Microblog, 0, batchSize)
		for j := i; j < i+batchSize && j < n; j++ {
			mbs = append(mbs, &kflushing.Microblog{
				Keywords: []string{
					"all",
					"b" + strconv.Itoa(j%8),
					"u" + strconv.Itoa(session*1_000_000+j),
				},
				Text: strings.Repeat("x", 120),
			})
		}
		ids, err := sys.IngestBatch(mbs)
		if err != nil {
			t.Fatalf("session %d: ingest batch at %d: %v", session, i, err)
		}
		var buf bytes.Buffer
		for _, id := range ids {
			if id != 0 {
				fmt.Fprintln(&buf, uint64(id))
			}
		}
		if _, err := ack.Write(buf.Bytes()); err != nil {
			t.Fatalf("session %d: record acks: %v", session, err)
		}
		if err := ack.Sync(); err != nil {
			t.Fatalf("session %d: sync acks: %v", session, err)
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("session %d: close: %v", session, err)
	}
}

// TestCrashMatrix kills the child workload at every registered crash
// site — twice, so the second run crashes during recovery from the
// first — then verifies the store recovers with zero acknowledged-data
// loss and intact structure.
func TestCrashMatrix(t *testing.T) {
	if os.Getenv("CRASHTEST_CHILD") == "1" {
		t.Skip("child process runs only TestCrashChild")
	}
	if testing.Short() {
		t.Skip("crash matrix re-execs the test binary; skipped in -short")
	}
	sites := failpoint.CrashSites()
	if len(sites) < 20 {
		t.Fatalf("only %d crash sites registered, want >= 20", len(sites))
	}
	for _, site := range sites {
		site := site
		t.Run(strings.ReplaceAll(site, "/", "_"), func(t *testing.T) {
			t.Parallel()
			base := t.TempDir()
			dataDir := filepath.Join(base, "data")
			ackPath := filepath.Join(base, "acked")
			// Run 1 must actually die at the site: a site the workload
			// cannot reach would silently drop out of the matrix.
			code, out := runChild(t, dataDir, ackPath, site)
			if code != failpoint.CrashExitCode {
				t.Fatalf("run 1 exited %d, want %d — site not reached or child failed:\n%s",
					code, failpoint.CrashExitCode, out)
			}
			// Run 2 re-arms the same site over the crashed state: either
			// recovery itself passes the site and dies again (the double
			// crash), or the site is no longer on the path and the
			// workload completes.
			code, out = runChild(t, dataDir, ackPath, site)
			if code != failpoint.CrashExitCode && code != 0 {
				t.Fatalf("run 2 exited %d, want %d or 0:\n%s",
					code, failpoint.CrashExitCode, out)
			}
			// Run 3 crashes on the site's 5th hit instead of the first,
			// so hot sites (appends, segment writes, flush phases) die
			// mid-workload with acknowledged batches already on the line;
			// sites hit fewer than 5 times complete cleanly.
			code, out = runChild(t, dataDir, ackPath, site+"=crash(5)")
			if code != failpoint.CrashExitCode && code != 0 {
				t.Fatalf("run 3 exited %d, want %d or 0:\n%s",
					code, failpoint.CrashExitCode, out)
			}
			verifyRecovered(t, dataDir, ackPath)
		})
	}
}

// runChild re-execs this test binary as a crashing child: only
// TestCrashChild runs, with the failpoint armed through the environment
// exactly as a production child process would inherit it. spec is
// either a bare site name (armed as first-hit crash) or a full
// "site=action" spec.
func runChild(t *testing.T, dataDir, ackPath, spec string) (int, string) {
	t.Helper()
	if !strings.Contains(spec, "=") {
		spec += "=crash"
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"CRASHTEST_CHILD=1",
		"CRASHTEST_DIR="+dataDir,
		"CRASHTEST_ACK="+ackPath,
		failpoint.EnvVar+"="+spec,
	)
	out, err := cmd.CombinedOutput()
	if cmd.ProcessState == nil {
		t.Fatalf("child did not start: %v", err)
	}
	return cmd.ProcessState.ExitCode(), string(out)
}

// verifyRecovered reopens the crashed store with failpoints disarmed and
// checks the zero-data-loss contract, twice, so recovery itself is shown
// to be idempotent.
func verifyRecovered(t *testing.T, dataDir, ackPath string) {
	t.Helper()
	acked := readAcked(t, ackPath)
	var prev []uint64
	for pass := 1; pass <= 2; pass++ {
		got := openAndCollect(t, dataDir, pass)
		for id := range acked {
			if !got[id] {
				t.Fatalf("pass %d: acknowledged record %d lost (%d acked, %d recovered)",
					pass, id, len(acked), len(got))
			}
		}
		ids := make([]uint64, 0, len(got))
		for id := range got {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		if pass == 2 && !slices.Equal(prev, ids) {
			t.Fatalf("recovery not idempotent: pass 1 found %d records, pass 2 %d",
				len(prev), len(ids))
		}
		prev = ids
	}
	// The segment directory must parse and every record decode cleanly.
	if segs, recs, err := disk.Verify(dataDir); err != nil {
		t.Fatalf("segment verification failed after %d segments / %d records: %v",
			segs, recs, err)
	}
	verifyManifest(t, dataDir)
	verifyCompactionPreservesDiskSet(t, dataDir)
}

// verifyManifest checks the leveled tier's manifest after recovery: the
// clean reopens above heal-committed a fresh manifest, so at this point
// it must decode, reference only files that exist, and never list a
// file as both live and retired or on two levels at once. (A crash MID
// manifest write may leave a torn manifest on disk; adoption repairs it
// on the next open, which has already happened here.)
func verifyManifest(t *testing.T, dataDir string) {
	t.Helper()
	m, err := disk.ReadManifest(dataDir)
	if err != nil {
		t.Fatalf("manifest unreadable after recovery (heal-commit missing?): %v", err)
	}
	live := make(map[string]int, len(m.Live))
	for _, e := range m.Live {
		if lvl, dup := live[e.Name]; dup {
			t.Fatalf("manifest lists %s on levels %d and %d", e.Name, lvl, e.Level)
		}
		live[e.Name] = e.Level
		if _, err := os.Stat(filepath.Join(dataDir, e.Name)); err != nil {
			t.Fatalf("manifest live entry %s (L%d) missing on disk: %v", e.Name, e.Level, err)
		}
	}
	for _, name := range m.Retired {
		if lvl, ok := live[name]; ok {
			t.Fatalf("manifest lists %s as retired AND live at L%d", name, lvl)
		}
	}
}

// verifyCompactionPreservesDiskSet opens the crashed-and-recovered disk
// tier directly and compacts everything into one segment: the answer
// set must survive byte-for-byte by ID — compaction over a post-crash
// layout (including duplicates a WAL replay legitimately re-flushed
// into a younger segment) deduplicates instead of dropping or doubling.
func verifyCompactionPreservesDiskSet(t *testing.T, dataDir string) {
	t.Helper()
	tier, err := disk.Open(disk.Config[string]{
		Dir:    dataDir,
		KeysOf: attr.KeywordKeys,
		Encode: attr.KeywordEncode,
		Layout: disk.LayoutLeveled,
	})
	if err != nil {
		t.Fatalf("direct tier open after recovery: %v", err)
	}
	defer func() {
		if err := tier.Close(); err != nil {
			t.Fatalf("tier close: %v", err)
		}
	}()
	collect := func(label string) map[uint64]bool {
		items, err := tier.Search([]string{"all"}, kflushing.OpSingle, 1<<20)
		if err != nil {
			t.Fatalf("%s: disk search: %v", label, err)
		}
		ids := make(map[uint64]bool, len(items))
		for _, it := range items {
			id := uint64(it.MB.ID)
			if ids[id] {
				t.Fatalf("%s: record %d answered twice across levels", label, id)
			}
			ids[id] = true
		}
		return ids
	}
	before := collect("pre-compact")
	if err := tier.CompactAll(); err != nil {
		t.Fatalf("CompactAll on recovered tier: %v", err)
	}
	after := collect("post-compact")
	if len(after) != len(before) {
		t.Fatalf("compaction changed the disk ID set: %d -> %d records", len(before), len(after))
	}
	for id := range before {
		if !after[id] {
			t.Fatalf("record %d lost by post-recovery compaction", id)
		}
	}
}

// openAndCollect recovers the store, fetches every record via the hot
// key, and walks the index asserting the structural invariant no flush
// or recovery may break: every posting points at a store-resident record
// with a positive posting count.
func openAndCollect(t *testing.T, dataDir string, pass int) map[uint64]bool {
	t.Helper()
	sys, err := kflushing.Open(dataDir, childOptions())
	if err != nil {
		t.Fatalf("pass %d: reopen: %v", pass, err)
	}
	defer func() {
		if err := sys.Close(); err != nil {
			t.Fatalf("pass %d: close: %v", pass, err)
		}
	}()
	res, err := sys.Search([]string{"all"}, kflushing.OpSingle, 1<<14)
	if err != nil {
		t.Fatalf("pass %d: search: %v", pass, err)
	}
	got := make(map[uint64]bool, len(res.Items))
	for _, it := range res.Items {
		id := uint64(it.MB.ID)
		if got[id] {
			t.Fatalf("pass %d: duplicate record %d in answer", pass, id)
		}
		got[id] = true
	}
	eng := sys.Engine()
	eng.Index().Range(func(e *index.Entry[string]) bool {
		for _, rec := range e.All() {
			if rec.PCount() <= 0 {
				t.Fatalf("pass %d: entry %q posting for record %d has pcount %d",
					pass, e.Key(), rec.MB.ID, rec.PCount())
			}
			if eng.Store().Get(rec.MB.ID) == nil {
				t.Fatalf("pass %d: entry %q posting for record %d missing from store",
					pass, e.Key(), rec.MB.ID)
			}
		}
		return true
	})
	return got
}

// readAcked parses the child's ack file: one acknowledged ID per line.
func readAcked(t *testing.T, path string) map[uint64]bool {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			// Crashed before the first acknowledged batch — nothing was
			// promised, so nothing can be lost.
			return nil
		}
		t.Fatalf("open ack file: %v", err)
	}
	defer f.Close()
	acked := make(map[uint64]bool)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		id, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			t.Fatalf("bad ack line %q: %v", line, err)
		}
		acked[id] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read ack file: %v", err)
	}
	return acked
}
