//go:build failpoint

package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"kflushing"
	"kflushing/internal/failpoint"
)

// TestDegradedModeEndToEnd drives the whole degraded-mode story over the
// HTTP API: a persistent segment-write fault makes a budget flush fail,
// after which ingestion answers a typed 503 while searches keep
// answering, /readyz turns 503 with the keyword attribute's reason, and
// /metrics exposes the degraded gauge. Clearing the fault lets the next
// /readyz probe restore write service with no restart.
func TestDegradedModeEndToEnd(t *testing.T) {
	failpoint.DisableAll()
	t.Cleanup(failpoint.DisableAll)
	st, err := OpenStore(t.TempDir(), kflushing.Options{
		MemoryBudget: 24 << 10,
		K:            2,
		SyncFlush:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		failpoint.DisableAll() // Close flushes; let it succeed
		if err := st.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	h := st.Handler()

	post := func(i int) *int {
		body := fmt.Sprintf(`{"keywords":["all","w%d"],"text":%q}`,
			i%8, strings.Repeat("x", 150))
		rw := do(t, h, http.MethodPost, "/microblogs", body)
		return &rw.Code
	}

	// Seed healthy traffic, then arm a persistent segment-write fault:
	// the next budget flush fails, the eviction is rolled back, and the
	// keyword system enters degraded read-only mode.
	for i := 0; i < 20; i++ {
		if code := *post(i); code != http.StatusOK {
			t.Fatalf("healthy ingest %d answered %d", i, code)
		}
	}
	if err := failpoint.Enable(failpoint.DiskSegmentWrite, "error"); err != nil {
		t.Fatal(err)
	}
	degradedAt := -1
	for i := 20; i < 2000; i++ {
		code := *post(i)
		if code == http.StatusServiceUnavailable {
			degradedAt = i
			break
		}
		if code != http.StatusOK {
			t.Fatalf("ingest %d answered %d, want 200 or 503", i, code)
		}
	}
	if degradedAt < 0 {
		t.Fatal("no ingest was rejected: flush never failed into degraded mode")
	}

	// The 503 carries the typed degraded body.
	rw := do(t, h, http.MethodPost, "/microblogs", `{"keywords":["all"],"text":"x"}`)
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest answered %d, want 503", rw.Code)
	}
	var rej struct {
		Error    string `json:"error"`
		Degraded bool   `json:"degraded"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &rej); err != nil || !rej.Degraded || rej.Error == "" {
		t.Fatalf("degraded 503 body %q (err %v), want degraded=true with a reason", rw.Body.String(), err)
	}

	// Searches keep answering — including the records whose eviction was
	// rolled back when the flush failed.
	rw = do(t, h, http.MethodGet, "/search/keywords?q=all&k=500", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("search during degraded mode answered %d", rw.Code)
	}
	var sr struct {
		Items []json.RawMessage `json:"items"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &sr); err != nil || len(sr.Items) == 0 {
		t.Fatalf("search during degraded mode returned %d items (err %v)", len(sr.Items), err)
	}

	// /readyz is 503 and names the keyword attribute with the degraded
	// reason.
	rw = do(t, h, http.MethodGet, "/readyz", "")
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz answered %d during degraded mode, want 503", rw.Code)
	}
	var ready struct {
		Ready   bool              `json:"ready"`
		Reasons map[string]string `json:"reasons"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Ready || !strings.Contains(ready.Reasons["keyword"], "degraded") {
		t.Fatalf("/readyz body %+v, want keyword degraded reason", ready)
	}

	// /metrics exposes the gauge.
	rw = do(t, h, http.MethodGet, "/metrics", "")
	if !strings.Contains(rw.Body.String(), `kflushing_degraded{attr="keyword",policy="kflushing"} 1`) {
		t.Fatal("degraded gauge not 1 for the keyword attribute in /metrics")
	}

	// Fault clears: the next readiness probe is the recovery evidence —
	// /readyz flips healthy and ingestion resumes, no restart needed.
	failpoint.Disable(failpoint.DiskSegmentWrite)
	rw = do(t, h, http.MethodGet, "/readyz", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("/readyz answered %d after fault cleared, want 200: %s", rw.Code, rw.Body.String())
	}
	if code := *post(9999); code != http.StatusOK {
		t.Fatalf("ingest after recovery answered %d", code)
	}
	rw = do(t, h, http.MethodGet, "/metrics", "")
	if !strings.Contains(rw.Body.String(), `kflushing_degraded{attr="keyword",policy="kflushing"} 0`) {
		t.Fatal("degraded gauge did not return to 0 after recovery")
	}
}
