package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"kflushing"
	"kflushing/internal/blackbox"
	"kflushing/internal/metrics"
)

// HandlerOptions tunes the HTTP API surface.
type HandlerOptions struct {
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose heap contents and must be
	// opted into (kflushd's -pprof flag).
	EnablePprof bool
}

// Handler returns the HTTP API over the store with default options:
//
//	POST /microblogs            one JSON object or a stream of objects
//	GET  /search/keywords?q=a,b&op=single|and|or&k=20[&trace=1]
//	GET  /search/nearby?lat=40.7&lon=-74.0&k=20[&radius=5][&trace=1]
//	GET  /search/user?id=42&k=20[&trace=1]
//	GET  /stats                 per-attribute gauges and counters
//	GET  /metrics               Prometheus text exposition
//	GET  /debug/flushlog        flush audit journal (JSON)
//	GET  /debug/blackbox        flight-recorder merged timeline
//	                            [?attr=keyword|spatial|user]
//	                            [&subsystem=ingest|wal|flush|...][&n=256]
//	GET  /debug/slowlog         auto-captured slow-query traces
//	                            [?attr=keyword|spatial|user]
//	GET  /healthz               liveness probe
//	GET  /readyz                readiness probe (disk + WAL writable,
//	                            plus per-level disk health and flush
//	                            pipeline queue depth)
//
// trace=1 attaches a per-query execution trace to the JSON response:
// the memory probe per key and, on a miss, every disk segment consulted
// with Bloom/cache outcomes and stage timings.
func (s *Store) Handler() http.Handler {
	return s.HandlerWithOptions(HandlerOptions{})
}

// HandlerWithOptions returns the HTTP API with explicit options.
func (s *Store) HandlerWithOptions(o HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/microblogs", s.handleIngest)
	mux.HandleFunc("/search/keywords", s.handleSearchKeywords)
	mux.HandleFunc("/search/nearby", s.handleSearchNearby)
	mux.HandleFunc("/search/user", s.handleSearchUser)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/flushlog", s.handleFlushLog)
	mux.HandleFunc("/debug/blackbox", s.handleBlackbox)
	mux.HandleFunc("/debug/slowlog", s.handleSlowLog)
	mux.HandleFunc("/debug/tuner", s.handleTuner)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", s.handleReady)
	if o.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// ingestReq is the JSON shape of one incoming microblog.
type ingestReq struct {
	Keywords  []string `json:"keywords"`
	Text      string   `json:"text"`
	UserID    uint64   `json:"user_id"`
	Followers uint32   `json:"followers"`
	Lat       *float64 `json:"lat"`
	Lon       *float64 `json:"lon"`
}

func (r ingestReq) toMicroblog() *kflushing.Microblog {
	mb := &kflushing.Microblog{
		Keywords:  r.Keywords,
		Text:      r.Text,
		UserID:    r.UserID,
		Followers: r.Followers,
	}
	if r.Lat != nil && r.Lon != nil {
		mb.Lat, mb.Lon, mb.HasGeo = *r.Lat, *r.Lon, true
	}
	return mb
}

// itemResp is the JSON shape of one ranked answer.
type itemResp struct {
	ID        uint64   `json:"id"`
	Timestamp int64    `json:"timestamp"`
	UserID    uint64   `json:"user_id"`
	Keywords  []string `json:"keywords,omitempty"`
	Text      string   `json:"text"`
	Lat       float64  `json:"lat,omitempty"`
	Lon       float64  `json:"lon,omitempty"`
	Score     float64  `json:"score"`
}

func toItems(res kflushing.Result) []itemResp {
	items := make([]itemResp, len(res.Items))
	for i, it := range res.Items {
		items[i] = itemResp{
			ID:        uint64(it.MB.ID),
			Timestamp: int64(it.MB.Timestamp),
			UserID:    it.MB.UserID,
			Keywords:  it.MB.Keywords,
			Text:      it.MB.Text,
			Score:     it.Score,
		}
		if it.MB.HasGeo {
			items[i].Lat, items[i].Lon = it.MB.Lat, it.MB.Lon
		}
	}
	return items
}

func (s *Store) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Decode the whole request before ingesting anything, so one POST —
	// whether a single object or a stream — becomes one batch per
	// attribute system (one WAL group commit each when durability is on).
	dec := json.NewDecoder(r.Body)
	var mbs []*kflushing.Microblog
	for {
		var req ingestReq
		if err := dec.Decode(&req); err != nil {
			if len(mbs) == 0 {
				http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
				return
			}
			break
		}
		mbs = append(mbs, req.toMicroblog())
		if !dec.More() {
			break
		}
	}
	results, err := s.IngestBatch(mbs)
	if err != nil {
		// Degraded read-only mode is an operational condition, not a bad
		// request: answer 503 so clients and load balancers back off and
		// retry elsewhere, with the cause in a JSON body.
		if errors.Is(err, kflushing.ErrDegraded) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			if eerr := json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "degraded": true}); eerr != nil {
				slog.Error("server: encode degraded ingest response", "err", eerr)
			}
			return
		}
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, map[string]any{"ingested": results})
}

// parseK validates the k query parameter; 0 means "system default".
func parseK(r *http.Request) (int, error) {
	ks := r.URL.Query().Get("k")
	if ks == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(ks)
	if err != nil || v < 1 || v > 10_000 {
		return 0, fmt.Errorf("k must be an integer in [1,10000]")
	}
	return v, nil
}

// traceWanted reports whether the request opted into query tracing.
func traceWanted(r *http.Request) bool {
	return r.URL.Query().Get("trace") == "1"
}

// writeSearch emits a search response, attaching the trace when present.
func writeSearch(w http.ResponseWriter, res kflushing.Result, tr *kflushing.Trace) {
	body := map[string]any{"items": toItems(res), "memory_hit": res.MemoryHit}
	if tr != nil {
		body["trace"] = tr
	}
	writeJSON(w, body)
}

func (s *Store) handleSearchKeywords(w http.ResponseWriter, r *http.Request) {
	parseStart := time.Now()
	q := r.URL.Query()
	var keywords []string
	for _, kw := range strings.Split(q.Get("q"), ",") {
		if kw = strings.TrimSpace(kw); kw != "" {
			keywords = append(keywords, kw)
		}
	}
	if len(keywords) == 0 {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	op := kflushing.OpSingle
	switch q.Get("op") {
	case "", "single":
	case "and":
		op = kflushing.OpAnd
	case "or":
		op = kflushing.OpOr
	default:
		http.Error(w, "op must be single|and|or", http.StatusBadRequest)
		return
	}
	k, err := parseK(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.kw.Engine().Metrics().ObserveQueryStage(metrics.QStageParse, time.Since(parseStart))
	var res kflushing.Result
	var tr *kflushing.Trace
	if traceWanted(r) {
		res, tr, err = s.SearchKeywordsTraced(keywords, op, k)
	} else {
		res, err = s.SearchKeywords(keywords, op, k)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeSearch(w, res, tr)
}

func (s *Store) handleSearchNearby(w http.ResponseWriter, r *http.Request) {
	parseStart := time.Now()
	q := r.URL.Query()
	lat, errLat := strconv.ParseFloat(q.Get("lat"), 64)
	lon, errLon := strconv.ParseFloat(q.Get("lon"), 64)
	if errLat != nil || errLon != nil {
		http.Error(w, "lat and lon are required numbers", http.StatusBadRequest)
		return
	}
	radius := 0.0
	if rs := q.Get("radius"); rs != "" {
		v, err := strconv.ParseFloat(rs, 64)
		if err != nil || v < 0 || v > 500 {
			http.Error(w, "radius must be a number of miles in [0,500]", http.StatusBadRequest)
			return
		}
		radius = v
	}
	k, err := parseK(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.sp.Engine().Metrics().ObserveQueryStage(metrics.QStageParse, time.Since(parseStart))
	var res kflushing.Result
	var tr *kflushing.Trace
	if traceWanted(r) {
		res, tr, err = s.SearchNearbyTraced(lat, lon, radius, k)
	} else {
		res, err = s.SearchNearby(lat, lon, radius, k)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeSearch(w, res, tr)
}

func (s *Store) handleSearchUser(w http.ResponseWriter, r *http.Request) {
	parseStart := time.Now()
	id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
	if err != nil || id == 0 {
		http.Error(w, "id must be a positive integer", http.StatusBadRequest)
		return
	}
	k, err := parseK(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.us.Engine().Metrics().ObserveQueryStage(metrics.QStageParse, time.Since(parseStart))
	var res kflushing.Result
	var tr *kflushing.Trace
	if traceWanted(r) {
		res, tr, err = s.SearchUserTraced(id, k)
	} else {
		res, err = s.SearchUser(id, k)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeSearch(w, res, tr)
}

func (s *Store) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

// handleFlushLog serves the flush audit journal. ?n bounds the number of
// cycles per attribute (default 50); ?attr restricts to one attribute.
func (s *Store) handleFlushLog(w http.ResponseWriter, r *http.Request) {
	n := 50
	if ns := r.URL.Query().Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 1 || v > 100_000 {
			http.Error(w, "n must be an integer in [1,100000]", http.StatusBadRequest)
			return
		}
		n = v
	}
	logs := s.FlushLogs(n)
	if attr := r.URL.Query().Get("attr"); attr != "" {
		evs, ok := logs[attr]
		if !ok {
			http.Error(w, "attr must be keyword|spatial|user", http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{attr: evs})
		return
	}
	writeJSON(w, logs)
}

// handleBlackbox serves the flight recorder's merged timeline: every
// attribute system's per-subsystem event rings interleaved in global
// sequence order, so one flush cycle's WAL, pipeline-stage, and disk
// events read as a single causal story. ?attr restricts to one attribute
// system; ?subsystem filters by subsystem name (see blackbox.Subsystems);
// ?n bounds the response to the most recent n events (default 256).
func (s *Store) handleBlackbox(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	n := 256
	if ns := q.Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 1 || v > 100_000 {
			http.Error(w, "n must be an integer in [1,100000]", http.StatusBadRequest)
			return
		}
		n = v
	}
	byAttr := s.BlackboxEvents()
	if attr := q.Get("attr"); attr != "" {
		evs, ok := byAttr[attr]
		if !ok {
			http.Error(w, "attr must be keyword|spatial|user", http.StatusBadRequest)
			return
		}
		byAttr = map[string][]kflushing.BlackboxEvent{attr: evs}
	}
	if sub := q.Get("subsystem"); sub != "" {
		if _, ok := blackbox.ParseSubsystem(sub); !ok {
			http.Error(w, "subsystem must be one of "+strings.Join(blackbox.Subsystems(), "|"),
				http.StatusBadRequest)
			return
		}
		for a, evs := range byAttr {
			kept := evs[:0]
			for _, ev := range evs {
				if ev.Subsystem == sub {
					kept = append(kept, ev)
				}
			}
			byAttr[a] = kept
		}
	}
	timeline := blackbox.MergeTimeline(byAttr)
	if len(timeline) > n {
		timeline = timeline[len(timeline)-n:]
	}
	writeJSON(w, map[string]any{
		"epoch_unix_nanos": blackbox.EpochUnixNanos(),
		"events":           timeline,
	})
}

// handleSlowLog serves the auto-captured slow-query traces (populated
// only when the server runs with a slow-query threshold). ?attr
// restricts to one attribute system.
func (s *Store) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	logs := s.SlowQueries()
	if attr := r.URL.Query().Get("attr"); attr != "" {
		evs, ok := logs[attr]
		if !ok {
			http.Error(w, "attr must be keyword|spatial|user", http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{attr: evs})
		return
	}
	writeJSON(w, logs)
}

// handleTuner serves the adaptive memory tuner's per-attribute state:
// the targets in force, tick/adjustment/sign-flip counters, the last
// pressure reading, and the configured bounds. Attributes running
// without the tuner report enabled=false. ?attr restricts to one
// attribute system.
func (s *Store) handleTuner(w http.ResponseWriter, r *http.Request) {
	states := s.TunerStates()
	if attr := r.URL.Query().Get("attr"); attr != "" {
		st, ok := states[attr]
		if !ok {
			http.Error(w, "attr must be keyword|spatial|user", http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{attr: st})
		return
	}
	writeJSON(w, states)
}

// handleReady is the readiness probe: it verifies every attribute
// system can actually write (disk tier dir writable, WAL appendable
// when durable) and answers 503 with the failing attributes otherwise.
// Both verdicts carry each attribute's disk health — per-level segment
// counts, compaction backlog, and pipeline queue depth — so a wedged
// compactor or saturated flush pipeline shows up in the probe body.
func (s *Store) handleReady(w http.ResponseWriter, _ *http.Request) {
	failures := s.Ready()
	disk := s.DiskHealth()
	if len(failures) == 0 {
		writeJSON(w, map[string]any{"ready": true, "disk": disk})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	body := map[string]any{"ready": false, "reasons": failures, "disk": disk}
	if err := json.NewEncoder(w).Encode(body); err != nil {
		slog.Error("server: encode readiness response", "err", err)
	}
}

// handleMetrics writes the Prometheus text exposition format: one HELP
// and TYPE line per metric name, gauges and counters per attribute, and
// real cumulative histograms (_bucket/_sum/_count) for the latency
// distributions.
func (s *Store) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	stats := s.Stats()
	attrs := make([]string, 0, len(stats))
	for a := range stats {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)

	emit := func(name, typ, help string, value func(kflushing.Stats) float64) {
		fmt.Fprintf(w, "# HELP kflushing_%s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE kflushing_%s %s\n", name, typ)
		for _, a := range attrs {
			fmt.Fprintf(w, "kflushing_%s{attr=%q,policy=%q} %g\n",
				name, a, stats[a].Policy, value(stats[a]))
		}
	}
	emit("memory_used_bytes", "gauge", "budget-relevant memory in use",
		func(st kflushing.Stats) float64 { return float64(st.MemoryUsed) })
	emit("memory_budget_bytes", "gauge", "configured memory budget",
		func(st kflushing.Stats) float64 { return float64(st.MemoryBudget) })
	emit("policy_overhead_bytes", "gauge", "flushing-policy bookkeeping memory",
		func(st kflushing.Stats) float64 { return float64(st.PolicyOverhead) })
	emit("records", "gauge", "records in the raw data store",
		func(st kflushing.Stats) float64 { return float64(st.StoreRecords) })
	emit("index_entries", "gauge", "live index entries",
		func(st kflushing.Stats) float64 { return float64(st.Census.Entries) })
	emit("kfilled_entries", "gauge", "entries able to serve top-k from memory",
		func(st kflushing.Stats) float64 { return float64(st.Census.KFilled) })
	emit("ingested_total", "counter", "records digested",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.Ingested) })
	emit("queries_total", "counter", "queries evaluated",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.Queries) })
	emit("query_hits_total", "counter", "queries answered entirely from memory",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.Hits) })
	emit("flushes_total", "counter", "flush cycles executed",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.Flushes) })
	emit("ingest_batches_total", "counter", "batched ingestion calls (per-record ingest is a batch of one)",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.IngestBatches) })
	emit("disk_segments", "gauge", "live disk segments",
		func(st kflushing.Stats) float64 { return float64(st.Disk.Segments) })
	emit("disk_compactions_total", "counter", "segment merges completed",
		func(st kflushing.Stats) float64 { return float64(st.Disk.Compactions) })
	emit("disk_compaction_failures_total", "counter", "background compaction passes that failed",
		func(st kflushing.Stats) float64 { return float64(st.Disk.CompactionFailures) })
	emit("compaction_backlog", "gauge", "tier levels over their fanout awaiting compaction (persistently positive = wedged compactor)",
		func(st kflushing.Stats) float64 { return float64(st.Disk.CompactionBacklog) })
	emit("disk_retired_segments", "gauge", "compaction inputs superseded by a merged segment but not yet unlinked",
		func(st kflushing.Stats) float64 { return float64(st.Disk.PendingRetired) })
	emit("flush_pipeline_depth", "gauge", "evicted batches queued or building in the staged flush pipeline",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.PipelineDepth) })
	emit("flush_pipeline_enqueued_total", "counter", "evicted batches handed to the background flush builder",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.PipelineEnqueued) })
	emit("flush_pipeline_fallbacks_total", "counter", "evicted batches written synchronously because the pipeline queue was full",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.PipelineFallbacks) })
	emit("disk_record_reads_total", "counter", "record preads served by the disk tier",
		func(st kflushing.Stats) float64 { return float64(st.Disk.RecordReads) })
	emit("disk_searches_total", "counter", "disk searches actually executed on memory misses",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.DiskSearches) })
	emit("disk_searches_coalesced_total", "counter", "duplicate concurrent misses that shared an in-flight disk search",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.DiskSearchesCoalesced) })
	emit("disk_bloom_probes_total", "counter", "per-segment Bloom filter consultations",
		func(st kflushing.Stats) float64 { return float64(st.Disk.BloomProbes) })
	emit("disk_bloom_skips_total", "counter", "segment directory probes skipped by Bloom filters",
		func(st kflushing.Stats) float64 { return float64(st.Disk.BloomSkips) })
	emit("disk_dir_probes_total", "counter", "segment directory probes performed",
		func(st kflushing.Stats) float64 { return float64(st.Disk.DirProbes) })
	emit("disk_cache_hits_total", "counter", "record reads served by the disk read cache",
		func(st kflushing.Stats) float64 { return float64(st.Disk.CacheHits) })
	emit("disk_cache_misses_total", "counter", "record cache lookups that fell through to a pread",
		func(st kflushing.Stats) float64 { return float64(st.Disk.CacheMisses) })
	emit("disk_cache_evictions_total", "counter", "record cache entries evicted by the byte budget",
		func(st kflushing.Stats) float64 { return float64(st.Disk.CacheEvictions) })
	emit("disk_cache_bytes", "gauge", "bytes resident in the disk read cache",
		func(st kflushing.Stats) float64 { return float64(st.Disk.CacheBytes) })
	emit("tuner_enabled", "gauge", "1 while the adaptive memory tuner is on for the attribute system",
		func(st kflushing.Stats) float64 {
			if st.TunerEnabled {
				return 1
			}
			return 0
		})
	emit("tuner_flush_fraction", "gauge", "adaptive flush budget B currently in force (0 when the tuner is off)",
		func(st kflushing.Stats) float64 { return st.Tuner.FlushFraction })
	emit("tuner_watermark_bytes", "gauge", "adaptive flush trigger watermark currently in force (0 when the tuner is off)",
		func(st kflushing.Stats) float64 { return float64(st.Tuner.WatermarkBytes) })
	emit("tuner_cache_bytes", "gauge", "adaptive disk record cache budget currently in force (0 when the tuner is off)",
		func(st kflushing.Stats) float64 { return float64(st.Tuner.CacheBytes) })
	emit("tuner_adjustments_total", "counter", "tuner decisions that changed at least one knob",
		func(st kflushing.Stats) float64 { return float64(st.Tuner.Adjusts) })
	emit("tuner_sign_flips_total", "counter", "tuner direction reversals actually applied (oscillation indicator)",
		func(st kflushing.Stats) float64 { return float64(st.Tuner.SignFlips) })
	emit("degraded", "gauge", "1 while the attribute system is in degraded read-only mode (tier writes failing)",
		func(st kflushing.Stats) float64 {
			if st.Degraded {
				return 1
			}
			return 0
		})

	// Per-level occupancy of the leveled disk tier (flat tiers report a
	// single level 0), one series per populated level.
	emitLevel := func(name, help string, value func(kflushing.LevelStats) float64) {
		fmt.Fprintf(w, "# HELP kflushing_%s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE kflushing_%s gauge\n", name)
		for _, a := range attrs {
			for _, lv := range stats[a].Disk.Levels {
				fmt.Fprintf(w, "kflushing_%s{attr=%q,policy=%q,level=\"%d\"} %g\n",
					name, a, stats[a].Policy, lv.Level, value(lv))
			}
		}
	}
	emitLevel("disk_level_segments", "live segments per tier level",
		func(lv kflushing.LevelStats) float64 { return float64(lv.Segments) })
	emitLevel("disk_level_bytes", "bytes per tier level",
		func(lv kflushing.LevelStats) float64 { return float64(lv.Bytes) })
	emitLevel("disk_level_records", "records per tier level",
		func(lv kflushing.LevelStats) float64 { return float64(lv.Records) })

	// Latency distributions as real cumulative histograms. The engine's
	// power-of-two buckets become `le` edges of 2^(i+1) ns in seconds.
	emitHist := func(name, help string, snap func(kflushing.Stats) metrics.HistogramSnapshot) {
		fmt.Fprintf(w, "# HELP kflushing_%s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE kflushing_%s histogram\n", name)
		for _, a := range attrs {
			writeHistSeries(w, name, fmt.Sprintf("attr=%q,policy=%q", a, stats[a].Policy), snap(stats[a]))
		}
	}
	emitHist("flush_duration_seconds", "flush-cycle duration",
		func(st kflushing.Stats) metrics.HistogramSnapshot { return st.Metrics.FlushHist })
	emitHist("query_hit_duration_seconds", "latency of queries answered from memory",
		func(st kflushing.Stats) metrics.HistogramSnapshot { return st.Metrics.HitHist })
	emitHist("query_miss_duration_seconds", "latency of queries that fell back to disk",
		func(st kflushing.Stats) metrics.HistogramSnapshot { return st.Metrics.MissHist })

	// Per-phase breakdown of kFlushing flushes (all-zero for FIFO/LRU).
	emitPhase := func(name, typ, help string, value func(kflushing.Stats, int) float64) {
		fmt.Fprintf(w, "# HELP kflushing_%s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE kflushing_%s %s\n", name, typ)
		for _, a := range attrs {
			for p := 0; p < len(stats[a].Metrics.Phases); p++ {
				fmt.Fprintf(w, "kflushing_%s{attr=%q,policy=%q,phase=\"%d\"} %g\n",
					name, a, stats[a].Policy, p+1, value(stats[a], p))
			}
		}
	}
	emitPhase("flush_phase_runs_total", "counter", "executions of each kFlushing phase",
		func(st kflushing.Stats, p int) float64 { return float64(st.Metrics.Phases[p].Runs) })
	emitPhase("flush_phase_freed_bytes_total", "counter", "budget-relevant bytes freed by each kFlushing phase",
		func(st kflushing.Stats, p int) float64 { return float64(st.Metrics.Phases[p].FreedBytes) })
	fmt.Fprintf(w, "# HELP kflushing_flush_phase_duration_seconds duration of each kFlushing phase\n")
	fmt.Fprintf(w, "# TYPE kflushing_flush_phase_duration_seconds histogram\n")
	for _, a := range attrs {
		for p := 0; p < len(stats[a].Metrics.Phases); p++ {
			labels := fmt.Sprintf("attr=%q,policy=%q,phase=\"%d\"", a, stats[a].Policy, p+1)
			writeHistSeries(w, "flush_phase_duration_seconds", labels, stats[a].Metrics.Phases[p].Hist)
		}
	}

	// Per-stage breakdown of the flush pipeline (prepare under the gate,
	// build/install off it, release on completion).
	fmt.Fprintf(w, "# HELP kflushing_flush_stage_duration_seconds duration of each flush pipeline stage\n")
	fmt.Fprintf(w, "# TYPE kflushing_flush_stage_duration_seconds histogram\n")
	for _, a := range attrs {
		for i, stage := range metrics.StageNames {
			labels := fmt.Sprintf("attr=%q,policy=%q,stage=%q", a, stats[a].Policy, stage)
			writeHistSeries(w, "flush_stage_duration_seconds", labels, stats[a].Metrics.Stages[i].Hist)
		}
	}

	// Per-stage attribution of query latency (parse in the HTTP handler,
	// index/heap/disk in the engine) — where a slow query spent its time,
	// without requiring trace=1.
	fmt.Fprintf(w, "# HELP kflushing_query_stage_duration_seconds duration of each query stage\n")
	fmt.Fprintf(w, "# TYPE kflushing_query_stage_duration_seconds histogram\n")
	for _, a := range attrs {
		for i, stage := range metrics.QueryStageNames {
			labels := fmt.Sprintf("attr=%q,policy=%q,stage=%q", a, stats[a].Policy, stage)
			writeHistSeries(w, "query_stage_duration_seconds", labels, stats[a].Metrics.QueryStages[i].Hist)
		}
	}

	// Process-wide runtime health, once (no attr label).
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP kflushing_goroutines live goroutines in the server process\n")
	fmt.Fprintf(w, "# TYPE kflushing_goroutines gauge\n")
	fmt.Fprintf(w, "kflushing_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP kflushing_heap_alloc_bytes heap bytes allocated and still in use\n")
	fmt.Fprintf(w, "# TYPE kflushing_heap_alloc_bytes gauge\n")
	fmt.Fprintf(w, "kflushing_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP kflushing_gc_cycles_total completed garbage-collection cycles\n")
	fmt.Fprintf(w, "# TYPE kflushing_gc_cycles_total counter\n")
	fmt.Fprintf(w, "kflushing_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(w, "# HELP kflushing_gc_pause_seconds_total cumulative stop-the-world pause time\n")
	fmt.Fprintf(w, "# TYPE kflushing_gc_pause_seconds_total counter\n")
	fmt.Fprintf(w, "kflushing_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
}

// writeHistSeries emits one labeled histogram as cumulative _bucket
// lines (le edges ascending, closed by +Inf), then _sum and _count.
func writeHistSeries(w http.ResponseWriter, name, labels string, h metrics.HistogramSnapshot) {
	var cum int64
	for i := 0; i < metrics.HistBuckets; i++ {
		cum += h.Counts[i]
		le := strconv.FormatFloat(float64(metrics.BucketUpperNanos(i))/1e9, 'g', -1, 64)
		fmt.Fprintf(w, "kflushing_%s_bucket{%s,le=%q} %d\n", name, labels, le, cum)
	}
	fmt.Fprintf(w, "kflushing_%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, h.Count)
	fmt.Fprintf(w, "kflushing_%s_sum{%s} %g\n", name, labels, float64(h.Sum)/1e9)
	fmt.Fprintf(w, "kflushing_%s_count{%s} %d\n", name, labels, h.Count)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Error("server: encode response", "err", err)
	}
}
