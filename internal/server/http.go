package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"kflushing"
)

// Handler returns the HTTP API over the store:
//
//	POST /microblogs            one JSON object or a stream of objects
//	GET  /search/keywords?q=a,b&op=single|and|or&k=20
//	GET  /search/nearby?lat=40.7&lon=-74.0&k=20[&radius=5]   (miles)
//	GET  /search/user?id=42&k=20
//	GET  /stats                 per-attribute gauges and counters
//	GET  /metrics               Prometheus text exposition
//	GET  /healthz               liveness probe
func (s *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/microblogs", s.handleIngest)
	mux.HandleFunc("/search/keywords", s.handleSearchKeywords)
	mux.HandleFunc("/search/nearby", s.handleSearchNearby)
	mux.HandleFunc("/search/user", s.handleSearchUser)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// ingestReq is the JSON shape of one incoming microblog.
type ingestReq struct {
	Keywords  []string `json:"keywords"`
	Text      string   `json:"text"`
	UserID    uint64   `json:"user_id"`
	Followers uint32   `json:"followers"`
	Lat       *float64 `json:"lat"`
	Lon       *float64 `json:"lon"`
}

func (r ingestReq) toMicroblog() *kflushing.Microblog {
	mb := &kflushing.Microblog{
		Keywords:  r.Keywords,
		Text:      r.Text,
		UserID:    r.UserID,
		Followers: r.Followers,
	}
	if r.Lat != nil && r.Lon != nil {
		mb.Lat, mb.Lon, mb.HasGeo = *r.Lat, *r.Lon, true
	}
	return mb
}

// itemResp is the JSON shape of one ranked answer.
type itemResp struct {
	ID        uint64   `json:"id"`
	Timestamp int64    `json:"timestamp"`
	UserID    uint64   `json:"user_id"`
	Keywords  []string `json:"keywords,omitempty"`
	Text      string   `json:"text"`
	Lat       float64  `json:"lat,omitempty"`
	Lon       float64  `json:"lon,omitempty"`
	Score     float64  `json:"score"`
}

func toItems(res kflushing.Result) []itemResp {
	items := make([]itemResp, len(res.Items))
	for i, it := range res.Items {
		items[i] = itemResp{
			ID:        uint64(it.MB.ID),
			Timestamp: int64(it.MB.Timestamp),
			UserID:    it.MB.UserID,
			Keywords:  it.MB.Keywords,
			Text:      it.MB.Text,
			Score:     it.Score,
		}
		if it.MB.HasGeo {
			items[i].Lat, items[i].Lon = it.MB.Lat, it.MB.Lon
		}
	}
	return items
}

func (s *Store) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Decode the whole request before ingesting anything, so one POST —
	// whether a single object or a stream — becomes one batch per
	// attribute system (one WAL group commit each when durability is on).
	dec := json.NewDecoder(r.Body)
	var mbs []*kflushing.Microblog
	for {
		var req ingestReq
		if err := dec.Decode(&req); err != nil {
			if len(mbs) == 0 {
				http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
				return
			}
			break
		}
		mbs = append(mbs, req.toMicroblog())
		if !dec.More() {
			break
		}
	}
	results, err := s.IngestBatch(mbs)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, map[string]any{"ingested": results})
}

// parseK validates the k query parameter; 0 means "system default".
func parseK(r *http.Request) (int, error) {
	ks := r.URL.Query().Get("k")
	if ks == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(ks)
	if err != nil || v < 1 || v > 10_000 {
		return 0, fmt.Errorf("k must be an integer in [1,10000]")
	}
	return v, nil
}

func (s *Store) handleSearchKeywords(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var keywords []string
	for _, kw := range strings.Split(q.Get("q"), ",") {
		if kw = strings.TrimSpace(kw); kw != "" {
			keywords = append(keywords, kw)
		}
	}
	if len(keywords) == 0 {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	op := kflushing.OpSingle
	switch q.Get("op") {
	case "", "single":
	case "and":
		op = kflushing.OpAnd
	case "or":
		op = kflushing.OpOr
	default:
		http.Error(w, "op must be single|and|or", http.StatusBadRequest)
		return
	}
	k, err := parseK(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.SearchKeywords(keywords, op, k)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"items": toItems(res), "memory_hit": res.MemoryHit})
}

func (s *Store) handleSearchNearby(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	lat, errLat := strconv.ParseFloat(q.Get("lat"), 64)
	lon, errLon := strconv.ParseFloat(q.Get("lon"), 64)
	if errLat != nil || errLon != nil {
		http.Error(w, "lat and lon are required numbers", http.StatusBadRequest)
		return
	}
	radius := 0.0
	if rs := q.Get("radius"); rs != "" {
		v, err := strconv.ParseFloat(rs, 64)
		if err != nil || v < 0 || v > 500 {
			http.Error(w, "radius must be a number of miles in [0,500]", http.StatusBadRequest)
			return
		}
		radius = v
	}
	k, err := parseK(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.SearchNearby(lat, lon, radius, k)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"items": toItems(res), "memory_hit": res.MemoryHit})
}

func (s *Store) handleSearchUser(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
	if err != nil || id == 0 {
		http.Error(w, "id must be a positive integer", http.StatusBadRequest)
		return
	}
	k, err := parseK(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.SearchUser(id, k)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"items": toItems(res), "memory_hit": res.MemoryHit})
}

func (s *Store) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Stats())
}

// handleMetrics writes the Prometheus text exposition format.
func (s *Store) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	stats := s.Stats()
	attrs := make([]string, 0, len(stats))
	for a := range stats {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)

	emit := func(name, help string, value func(kflushing.Stats) float64) {
		fmt.Fprintf(w, "# HELP kflushing_%s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE kflushing_%s gauge\n", name)
		for _, a := range attrs {
			fmt.Fprintf(w, "kflushing_%s{attr=%q,policy=%q} %g\n",
				name, a, stats[a].Policy, value(stats[a]))
		}
	}
	emit("memory_used_bytes", "budget-relevant memory in use",
		func(st kflushing.Stats) float64 { return float64(st.MemoryUsed) })
	emit("memory_budget_bytes", "configured memory budget",
		func(st kflushing.Stats) float64 { return float64(st.MemoryBudget) })
	emit("policy_overhead_bytes", "flushing-policy bookkeeping memory",
		func(st kflushing.Stats) float64 { return float64(st.PolicyOverhead) })
	emit("records", "records in the raw data store",
		func(st kflushing.Stats) float64 { return float64(st.StoreRecords) })
	emit("index_entries", "live index entries",
		func(st kflushing.Stats) float64 { return float64(st.Census.Entries) })
	emit("kfilled_entries", "entries able to serve top-k from memory",
		func(st kflushing.Stats) float64 { return float64(st.Census.KFilled) })
	emit("ingested_total", "records digested",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.Ingested) })
	emit("queries_total", "queries evaluated",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.Queries) })
	emit("query_hits_total", "queries answered entirely from memory",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.Hits) })
	emit("flushes_total", "flush cycles executed",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.Flushes) })
	emit("ingest_batches_total", "batched ingestion calls (per-record ingest is a batch of one)",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.IngestBatches) })
	emit("flush_seconds_mean", "mean flush-cycle duration",
		func(st kflushing.Stats) float64 { return st.Metrics.MeanFlush.Seconds() })
	emit("flush_seconds_p99", "p99 flush-cycle duration",
		func(st kflushing.Stats) float64 { return st.Metrics.P99Flush.Seconds() })
	emit("disk_segments", "live disk segments",
		func(st kflushing.Stats) float64 { return float64(st.Disk.Segments) })
	emit("disk_record_reads_total", "record preads served by the disk tier",
		func(st kflushing.Stats) float64 { return float64(st.Disk.RecordReads) })
	emit("disk_searches_total", "disk searches actually executed on memory misses",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.DiskSearches) })
	emit("disk_searches_coalesced_total", "duplicate concurrent misses that shared an in-flight disk search",
		func(st kflushing.Stats) float64 { return float64(st.Metrics.DiskSearchesCoalesced) })
	emit("disk_bloom_probes_total", "per-segment Bloom filter consultations",
		func(st kflushing.Stats) float64 { return float64(st.Disk.BloomProbes) })
	emit("disk_bloom_skips_total", "segment directory probes skipped by Bloom filters",
		func(st kflushing.Stats) float64 { return float64(st.Disk.BloomSkips) })
	emit("disk_dir_probes_total", "segment directory probes performed",
		func(st kflushing.Stats) float64 { return float64(st.Disk.DirProbes) })
	emit("disk_cache_hits_total", "record reads served by the disk read cache",
		func(st kflushing.Stats) float64 { return float64(st.Disk.CacheHits) })
	emit("disk_cache_misses_total", "record cache lookups that fell through to a pread",
		func(st kflushing.Stats) float64 { return float64(st.Disk.CacheMisses) })
	emit("disk_cache_evictions_total", "record cache entries evicted by the byte budget",
		func(st kflushing.Stats) float64 { return float64(st.Disk.CacheEvictions) })
	emit("disk_cache_bytes", "bytes resident in the disk read cache",
		func(st kflushing.Stats) float64 { return float64(st.Disk.CacheBytes) })

	// Per-phase breakdown of kFlushing flushes (all-zero for FIFO/LRU).
	emitPhase := func(name, help string, value func(kflushing.Stats, int) float64) {
		fmt.Fprintf(w, "# HELP kflushing_%s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE kflushing_%s gauge\n", name)
		for _, a := range attrs {
			for p := 0; p < len(stats[a].Metrics.Phases); p++ {
				fmt.Fprintf(w, "kflushing_%s{attr=%q,policy=%q,phase=\"%d\"} %g\n",
					name, a, stats[a].Policy, p+1, value(stats[a], p))
			}
		}
	}
	emitPhase("flush_phase_runs_total", "executions of each kFlushing phase",
		func(st kflushing.Stats, p int) float64 { return float64(st.Metrics.Phases[p].Runs) })
	emitPhase("flush_phase_freed_bytes_total", "budget-relevant bytes freed by each kFlushing phase",
		func(st kflushing.Stats, p int) float64 { return float64(st.Metrics.Phases[p].FreedBytes) })
	emitPhase("flush_phase_seconds_mean", "mean duration of each kFlushing phase",
		func(st kflushing.Stats, p int) float64 { return st.Metrics.Phases[p].Mean.Seconds() })
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("server: encode response: %v", err)
	}
}
