package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"kflushing"
	"kflushing/internal/promlint"
)

// TestMetricsExpositionLints parses the full /metrics output through the
// exposition linter: every series must carry HELP/TYPE, histogram
// buckets must be cumulative and le-sorted, and no series may repeat.
func TestMetricsExpositionLints(t *testing.T) {
	st := newTestStore(t)
	// Generate traffic so histograms and counters are non-trivial.
	for i := 1; i <= 50; i++ {
		if _, err := st.Ingest(&kflushing.Microblog{
			Keywords: []string{fmt.Sprintf("k%d", i%7)},
			UserID:   uint64(i%5 + 1),
			HasGeo:   true, Lat: 40.7, Lon: -74.0,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.SearchKeywords([]string{"k1"}, kflushing.OpSingle, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := st.kw.FlushNow(); err != nil {
		t.Fatal(err)
	}
	rw := do(t, st.Handler(), http.MethodGet, "/metrics", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rw.Code)
	}
	body := rw.Body.String()
	if probs := promlint.Lint(strings.NewReader(body)); len(probs) != 0 {
		for _, p := range probs {
			t.Error(p)
		}
		t.Fatalf("%d exposition problems", len(probs))
	}
	// The histogram replacement landed: real series, no mean/p99 gauges.
	for _, want := range []string{
		"# TYPE kflushing_flush_duration_seconds histogram",
		`kflushing_flush_duration_seconds_bucket{attr="keyword"`,
		"# TYPE kflushing_flushes_total counter",
		"kflushing_goroutines ",
		"kflushing_heap_alloc_bytes ",
		// Leveled-tier and pipeline observability (PR 6): a wedged
		// compactor or saturated flush pipeline must be visible here.
		"# TYPE kflushing_compaction_backlog gauge",
		`kflushing_compaction_backlog{attr="keyword"`,
		"# TYPE kflushing_disk_compactions_total counter",
		"# TYPE kflushing_disk_compaction_failures_total counter",
		"# TYPE kflushing_disk_level_segments gauge",
		`kflushing_disk_level_segments{attr="keyword",policy="kflushing",level="0"}`,
		"# TYPE kflushing_disk_level_bytes gauge",
		"# TYPE kflushing_disk_level_records gauge",
		"# TYPE kflushing_flush_pipeline_depth gauge",
		"# TYPE kflushing_flush_pipeline_enqueued_total counter",
		"# TYPE kflushing_flush_pipeline_fallbacks_total counter",
		"# TYPE kflushing_flush_stage_duration_seconds histogram",
		`kflushing_flush_stage_duration_seconds_bucket{attr="keyword",policy="kflushing",stage="build"`,
		// Query-stage latency attribution (PR 8): parse/index/heap/disk
		// histograms answer "where did a slow query spend its time"
		// without trace=1.
		"# TYPE kflushing_query_stage_duration_seconds histogram",
		`kflushing_query_stage_duration_seconds_bucket{attr="keyword",policy="kflushing",stage="index"`,
		`kflushing_query_stage_duration_seconds_bucket{attr="keyword",policy="kflushing",stage="heap"`,
		`kflushing_query_stage_duration_seconds_bucket{attr="keyword",policy="kflushing",stage="disk"`,
		// Adaptive memory tuner (PR 10): the targets in force and the
		// adjustment/oscillation counters scrape even when the tuner is
		// off, so dashboards can alert on tuner_enabled itself.
		"# TYPE kflushing_tuner_enabled gauge",
		`kflushing_tuner_enabled{attr="keyword"`,
		"# TYPE kflushing_tuner_flush_fraction gauge",
		"# TYPE kflushing_tuner_watermark_bytes gauge",
		"# TYPE kflushing_tuner_cache_bytes gauge",
		"# TYPE kflushing_tuner_adjustments_total counter",
		"# TYPE kflushing_tuner_sign_flips_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	for _, gone := range []string{"flush_seconds_mean", "flush_seconds_p99", "flush_phase_seconds_mean"} {
		if strings.Contains(body, gone) {
			t.Errorf("legacy summary gauge %q still emitted", gone)
		}
	}
}

// TestSearchTraceParam exercises ?trace=1 end to end: a miss must name
// the disk segments probed with their Bloom and cache outcomes.
func TestSearchTraceParam(t *testing.T) {
	st := newTestStore(t)
	for i := 1; i <= 10; i++ {
		if _, err := st.Ingest(&kflushing.Microblog{Keywords: []string{"hot"}, UserID: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Under-filled key (2 < k=5 postings): guaranteed memory miss.
	for i := 0; i < 2; i++ {
		if _, err := st.Ingest(&kflushing.Microblog{Keywords: []string{"cold"}, UserID: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.kw.FlushNow(); err != nil {
		t.Fatal(err)
	}
	h := st.Handler()

	// Untraced requests must not carry a trace.
	rw := do(t, h, http.MethodGet, "/search/keywords?q=hot&k=5", "")
	var plain map[string]json.RawMessage
	if err := json.Unmarshal(rw.Body.Bytes(), &plain); err != nil {
		t.Fatal(err)
	}
	if _, ok := plain["trace"]; ok {
		t.Fatal("trace attached without trace=1")
	}

	rw = do(t, h, http.MethodGet, "/search/keywords?q=cold&k=5&trace=1", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("traced search status %d: %s", rw.Code, rw.Body)
	}
	var resp struct {
		Items     []json.RawMessage `json:"items"`
		MemoryHit bool              `json:"memory_hit"`
		Trace     *kflushing.Trace  `json:"trace"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("trace=1 returned no trace")
	}
	tr := resp.Trace
	if resp.MemoryHit || tr.MemoryHit {
		t.Fatal("under-filled key should miss")
	}
	if len(tr.Entries) != 1 || tr.Entries[0].Key != "cold" {
		t.Fatalf("entry probes: %+v", tr.Entries)
	}
	if tr.Disk == nil || len(tr.Disk.Segments) == 0 {
		t.Fatalf("miss trace names no segments: %+v", tr.Disk)
	}
	for _, sp := range tr.Disk.Segments {
		if sp.Segment == "" {
			t.Fatalf("unnamed segment probe: %+v", sp)
		}
	}
	if len(tr.Stages) < 3 {
		t.Fatalf("stages: %+v", tr.Stages)
	}
}

// TestFlushLogEndpoint verifies /debug/flushlog reports per-phase
// victims and freed bytes for recent cycles.
func TestFlushLogEndpoint(t *testing.T) {
	st := newTestStore(t)
	for i := 1; i <= 100; i++ {
		if _, err := st.Ingest(&kflushing.Microblog{Keywords: []string{fmt.Sprintf("k%d", i%7)}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.kw.FlushNow(); err != nil {
		t.Fatal(err)
	}
	h := st.Handler()
	rw := do(t, h, http.MethodGet, "/debug/flushlog", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("/debug/flushlog status %d", rw.Code)
	}
	var logs map[string][]kflushing.FlushEvent
	if err := json.Unmarshal(rw.Body.Bytes(), &logs); err != nil {
		t.Fatal(err)
	}
	evs := logs["keyword"]
	if len(evs) == 0 {
		t.Fatal("keyword attribute has no flush cycles")
	}
	ev := evs[len(evs)-1]
	if ev.Policy != "kflushing" || ev.Trigger == "" || len(ev.Phases) == 0 {
		t.Fatalf("cycle event incomplete: %+v", ev)
	}
	if ev.Phases[0].Name != "regular" {
		t.Fatalf("first phase: %+v", ev.Phases[0])
	}
	var victims int64
	for _, ph := range ev.Phases {
		victims += ph.Victims
	}
	if victims == 0 {
		t.Fatal("no victims recorded across phases")
	}

	// attr filter and validation.
	rw = do(t, h, http.MethodGet, "/debug/flushlog?attr=keyword&n=1", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("filtered flushlog status %d", rw.Code)
	}
	logs = nil
	if err := json.Unmarshal(rw.Body.Bytes(), &logs); err != nil {
		t.Fatal(err)
	}
	if len(logs) != 1 || len(logs["keyword"]) != 1 {
		t.Fatalf("attr/n filter ignored: %v", logs)
	}
	if rw = do(t, h, http.MethodGet, "/debug/flushlog?attr=bogus", ""); rw.Code != http.StatusBadRequest {
		t.Fatalf("bogus attr accepted: %d", rw.Code)
	}
}

// TestTunerEndpoint verifies /debug/tuner reports per-attribute tuner
// state: enabled flags, the targets in force, and the configured
// bounds; ?attr filters and rejects unknown attributes.
func TestTunerEndpoint(t *testing.T) {
	st, err := OpenStore(t.TempDir(), kflushing.Options{
		MemoryBudget:   8 << 20,
		K:              5,
		SyncFlush:      true,
		AdaptiveMemory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := st.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	h := st.Handler()

	rw := do(t, h, http.MethodGet, "/debug/tuner", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("/debug/tuner status %d", rw.Code)
	}
	var states map[string]struct {
		Enabled bool                 `json:"enabled"`
		State   kflushing.TunerState `json:"state"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &states); err != nil {
		t.Fatal(err)
	}
	for _, attr := range []string{"keyword", "spatial", "user"} {
		ts, found := states[attr]
		if !found {
			t.Fatalf("/debug/tuner missing attribute %q: %s", attr, rw.Body)
		}
		if !ts.Enabled {
			t.Fatalf("%s tuner reported off despite AdaptiveMemory", attr)
		}
		if ts.State.FlushFraction <= 0 || ts.State.WatermarkBytes <= 0 {
			t.Fatalf("%s targets unset: %+v", attr, ts.State)
		}
		if ts.State.Limits.MinFlushFraction <= 0 || ts.State.Limits.MaxFlushFraction < ts.State.Limits.MinFlushFraction {
			t.Fatalf("%s bounds unset: %+v", attr, ts.State.Limits)
		}
	}

	rw = do(t, h, http.MethodGet, "/debug/tuner?attr=keyword", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("filtered tuner status %d", rw.Code)
	}
	states = nil
	if err := json.Unmarshal(rw.Body.Bytes(), &states); err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 {
		t.Fatalf("attr filter ignored: %s", rw.Body)
	}
	if rw = do(t, h, http.MethodGet, "/debug/tuner?attr=bogus", ""); rw.Code != http.StatusBadRequest {
		t.Fatalf("bogus attr accepted: %d", rw.Code)
	}

	// A static store still serves the endpoint with enabled=false.
	off := newTestStore(t)
	rw = do(t, off.Handler(), http.MethodGet, "/debug/tuner", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("static /debug/tuner status %d", rw.Code)
	}
	states = nil
	if err := json.Unmarshal(rw.Body.Bytes(), &states); err != nil {
		t.Fatal(err)
	}
	if states["keyword"].Enabled {
		t.Fatal("static store reports the tuner on")
	}
}

// TestReadyz verifies the readiness probe does real I/O checks and
// reports failures as 503 with a JSON reason.
func TestReadyz(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, kflushing.Options{MemoryBudget: 8 << 20, K: 5, SyncFlush: true, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	h := st.Handler()
	rw := do(t, h, http.MethodGet, "/readyz", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("healthy store not ready: %d %s", rw.Code, rw.Body)
	}
	var ok struct {
		Ready bool                            `json:"ready"`
		Disk  map[string]kflushing.DiskHealth `json:"disk"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &ok); err != nil || !ok.Ready {
		t.Fatalf("ready body: %s (err=%v)", rw.Body, err)
	}
	// The probe body carries disk health per attribute: layout, level
	// occupancy, compaction backlog, and pipeline queue depth.
	for _, attr := range []string{"keyword", "spatial", "user"} {
		h, found := ok.Disk[attr]
		if !found {
			t.Fatalf("readyz disk health missing attribute %q: %s", attr, rw.Body)
		}
		if h.Layout != "leveled" {
			t.Fatalf("%s layout = %q, want leveled (the default)", attr, h.Layout)
		}
		if h.CompactionBacklog != 0 || h.PipelineDepth != 0 {
			t.Fatalf("%s idle store reports backlog=%d depth=%d", attr, h.CompactionBacklog, h.PipelineDepth)
		}
	}

	// A closed store can no longer append to its WAL or write its tier.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	rw = do(t, h, http.MethodGet, "/readyz", "")
	if rw.Code != http.StatusServiceUnavailable {
		t.Fatalf("closed store reported ready: %d %s", rw.Code, rw.Body)
	}
	var fail struct {
		Ready   bool              `json:"ready"`
		Reasons map[string]string `json:"reasons"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &fail); err != nil {
		t.Fatal(err)
	}
	if fail.Ready || len(fail.Reasons) == 0 {
		t.Fatalf("failure body lacks reasons: %s", rw.Body)
	}
}

// TestPprofGate verifies profiling endpoints are mounted only on opt-in.
func TestPprofGate(t *testing.T) {
	st := newTestStore(t)
	if rw := do(t, st.Handler(), http.MethodGet, "/debug/pprof/", ""); rw.Code != http.StatusNotFound {
		t.Fatalf("pprof served without opt-in: %d", rw.Code)
	}
	h := st.HandlerWithOptions(HandlerOptions{EnablePprof: true})
	if rw := do(t, h, http.MethodGet, "/debug/pprof/", ""); rw.Code != http.StatusOK {
		t.Fatalf("pprof opt-in not served: %d", rw.Code)
	}
}
