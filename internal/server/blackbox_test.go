package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"kflushing"
)

// timelineResp mirrors the /debug/blackbox JSON body.
type timelineResp struct {
	EpochUnixNanos int64 `json:"epoch_unix_nanos"`
	Events         []struct {
		Attr      string           `json:"attr"`
		Seq       uint64           `json:"seq"`
		Nanos     int64            `json:"nanos"`
		Subsystem string           `json:"subsystem"`
		Event     string           `json:"event"`
		Args      map[string]int64 `json:"args"`
	} `json:"events"`
}

func getTimeline(t *testing.T, h http.Handler, path string) timelineResp {
	t.Helper()
	rw := do(t, h, http.MethodGet, path, "")
	if rw.Code != http.StatusOK {
		t.Fatalf("GET %s status %d: %s", path, rw.Code, rw.Body.String())
	}
	var tl timelineResp
	if err := json.Unmarshal(rw.Body.Bytes(), &tl); err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	return tl
}

// TestDebugBlackboxTimeline drives a durable store through ingestion,
// flush cycles, and a compaction, then checks /debug/blackbox serves the
// merged flight-recorder timeline: strictly increasing global sequence
// numbers across attribute systems, with one flush cycle's WAL appends,
// pipeline stages (prepare/build/install), and disk-tier compaction all
// correlated in a single stream, plus working attr/subsystem/n filters.
func TestDebugBlackboxTimeline(t *testing.T) {
	st, err := OpenStore(t.TempDir(), kflushing.Options{
		MemoryBudget:   8 << 20,
		K:              5,
		SyncFlush:      true,
		Durable:        true,
		WALSyncEvery:   1,
		SlowQueryNanos: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := st.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	h := st.Handler()

	// Two ingest/flush rounds leave two keyword segments, so the full
	// compaction below has inputs to merge (and a compact_pass to record).
	for round := 0; round < 2; round++ {
		for i := 0; i < 40; i++ {
			if _, err := st.Ingest(&kflushing.Microblog{
				Keywords: []string{fmt.Sprintf("k%d", i%7), "all"},
				UserID:   uint64(i%5 + 1),
				Text:     "post",
			}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.kw.FlushNow(); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.kw.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.SearchKeywords([]string{"all"}, kflushing.OpSingle, 5); err != nil {
		t.Fatal(err)
	}

	tl := getTimeline(t, h, "/debug/blackbox?n=100000")
	if tl.EpochUnixNanos == 0 {
		t.Fatal("timeline missing epoch anchor")
	}
	if len(tl.Events) == 0 {
		t.Fatal("timeline empty")
	}
	var lastSeq uint64
	firstOf := map[string]uint64{}
	attrs := map[string]bool{}
	for _, ev := range tl.Events {
		if ev.Seq <= lastSeq {
			t.Fatalf("timeline out of sequence order: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		attrs[ev.Attr] = true
		if _, ok := firstOf[ev.Event]; !ok {
			firstOf[ev.Event] = ev.Seq
		}
	}
	// One flush cycle's cross-subsystem story must be present and causal:
	// the WAL covered the records before the flush pipeline staged them,
	// and compaction follows the installs it merges.
	for _, want := range []string{"ingest_batch", "wal_append", "wal_sync",
		"flush_prepare", "flush_build", "flush_install", "compact_pass"} {
		if _, ok := firstOf[want]; !ok {
			t.Errorf("timeline missing %q event", want)
		}
	}
	if firstOf["wal_append"] >= firstOf["flush_build"] {
		t.Errorf("WAL append (seq %d) does not precede flush build (seq %d)",
			firstOf["wal_append"], firstOf["flush_build"])
	}
	if firstOf["flush_install"] >= firstOf["compact_pass"] {
		t.Errorf("flush install (seq %d) does not precede compaction (seq %d)",
			firstOf["flush_install"], firstOf["compact_pass"])
	}
	if !attrs["keyword"] || !attrs["user"] {
		t.Errorf("timeline attrs = %v, want keyword and user systems interleaved", attrs)
	}

	// Subsystem filter: only WAL events survive.
	walOnly := getTimeline(t, h, "/debug/blackbox?subsystem=wal&n=100000")
	if len(walOnly.Events) == 0 {
		t.Fatal("subsystem=wal filtered everything out")
	}
	for _, ev := range walOnly.Events {
		if ev.Subsystem != "wal" {
			t.Fatalf("subsystem=wal returned %q event", ev.Subsystem)
		}
	}
	// Attr filter: only the keyword system's events survive.
	kwOnly := getTimeline(t, h, "/debug/blackbox?attr=keyword&n=100000")
	if len(kwOnly.Events) == 0 {
		t.Fatal("attr=keyword filtered everything out")
	}
	for _, ev := range kwOnly.Events {
		if ev.Attr != "keyword" {
			t.Fatalf("attr=keyword returned %q event", ev.Attr)
		}
	}
	// n bounds the response to the most recent events.
	bounded := getTimeline(t, h, "/debug/blackbox?n=3")
	if len(bounded.Events) != 3 {
		t.Fatalf("n=3 returned %d events", len(bounded.Events))
	}
	if bounded.Events[len(bounded.Events)-1].Seq != lastSeq {
		t.Fatal("n=3 did not keep the most recent events")
	}
	// Bad filters are rejected.
	for _, bad := range []string{
		"/debug/blackbox?subsystem=bogus",
		"/debug/blackbox?attr=bogus",
		"/debug/blackbox?n=0",
	} {
		if rw := do(t, h, http.MethodGet, bad, ""); rw.Code != http.StatusBadRequest {
			t.Errorf("GET %s status %d, want 400", bad, rw.Code)
		}
	}

	// The 1 ns threshold made every untraced search slow: /debug/slowlog
	// serves the captured traces.
	rw := do(t, h, http.MethodGet, "/debug/slowlog?attr=keyword", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("/debug/slowlog status %d", rw.Code)
	}
	var slow map[string][]kflushing.SlowQuery
	if err := json.Unmarshal(rw.Body.Bytes(), &slow); err != nil {
		t.Fatal(err)
	}
	if len(slow["keyword"]) == 0 {
		t.Fatal("no slow queries captured despite 1 ns threshold")
	}
	for _, sq := range slow["keyword"] {
		if sq.Trace == nil || sq.DurationNanos <= 0 || sq.Seq == 0 {
			t.Fatalf("malformed slow query: %+v", sq)
		}
	}
	if rw := do(t, h, http.MethodGet, "/debug/slowlog?attr=bogus", ""); rw.Code != http.StatusBadRequest {
		t.Errorf("/debug/slowlog?attr=bogus status %d, want 400", rw.Code)
	}
}
