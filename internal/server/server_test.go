package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kflushing"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	st, err := OpenStore(t.TempDir(), kflushing.Options{
		MemoryBudget: 8 << 20,
		K:            5,
		SyncFlush:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := st.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return st
}

func TestIngestFansOutToAttributes(t *testing.T) {
	st := newTestStore(t)
	res, err := st.Ingest(&kflushing.Microblog{
		Keywords: []string{"go"},
		UserID:   7,
		HasGeo:   true, Lat: 40.7, Lon: -74.0,
		Text: "everything",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.KeywordID == 0 || res.SpatialID == 0 || res.UserID == 0 {
		t.Fatalf("not all attributes indexed: %+v", res)
	}

	// Keyword-only record: no spatial or user indexing.
	res, err = st.Ingest(&kflushing.Microblog{Keywords: []string{"go"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpatialID != 0 || res.UserID != 0 {
		t.Fatalf("attribute leak: %+v", res)
	}

	// Unindexable record: no keywords, no extractable text, no geo, no
	// user.
	if _, err := st.Ingest(&kflushing.Microblog{}); err != ErrNotIndexed {
		t.Fatalf("want ErrNotIndexed, got %v", err)
	}
	// Text alone is indexable via keyword extraction.
	if _, err := st.Ingest(&kflushing.Microblog{Text: "film premiere tonight"}); err != nil {
		t.Fatalf("text-only record rejected: %v", err)
	}
}

func TestSearchAcrossAttributes(t *testing.T) {
	st := newTestStore(t)
	for i := 1; i <= 10; i++ {
		if _, err := st.Ingest(&kflushing.Microblog{
			Timestamp: kflushing.Timestamp(i),
			Keywords:  []string{"topic"},
			UserID:    3,
			HasGeo:    true, Lat: 35.0, Lon: -100.0,
			Text: "post",
		}); err != nil {
			t.Fatal(err)
		}
	}
	kw, err := st.SearchKeywords([]string{"topic"}, kflushing.OpSingle, 5)
	if err != nil || len(kw.Items) != 5 {
		t.Fatalf("keyword search: %d items, err=%v", len(kw.Items), err)
	}
	sp, err := st.SearchNearby(35.0, -100.0, 0, 5)
	if err != nil || len(sp.Items) != 5 {
		t.Fatalf("spatial search: %d items, err=%v", len(sp.Items), err)
	}
	us, err := st.SearchUser(3, 5)
	if err != nil || len(us.Items) != 5 {
		t.Fatalf("user search: %d items, err=%v", len(us.Items), err)
	}
}

func do(t *testing.T, h http.Handler, method, url, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, url, nil)
	} else {
		req = httptest.NewRequest(method, url, strings.NewReader(body))
	}
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw
}

func TestHTTPEndToEnd(t *testing.T) {
	st := newTestStore(t)
	h := st.Handler()

	rw := do(t, h, http.MethodPost, "/microblogs",
		`{"keywords":["go","db"],"text":"first","user_id":1,"lat":40.0,"lon":-74.0}
		 {"keywords":["go"],"text":"second","user_id":2}`)
	if rw.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rw.Code, rw.Body)
	}

	rw = do(t, h, http.MethodGet, "/search/keywords?q=go&k=5", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("keywords: %d %s", rw.Code, rw.Body)
	}
	var res struct {
		Items     []itemResp `json:"items"`
		MemoryHit bool       `json:"memory_hit"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 || res.Items[0].Text != "second" {
		t.Fatalf("keyword results: %+v", res.Items)
	}

	rw = do(t, h, http.MethodGet, "/search/keywords?q=go,db&op=and&k=5", "")
	if err := json.Unmarshal(rw.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0].Text != "first" {
		t.Fatalf("AND results: %+v", res.Items)
	}

	rw = do(t, h, http.MethodGet, "/search/nearby?lat=40.0&lon=-74.0&k=5", "")
	if err := json.Unmarshal(rw.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0].Lat == 0 {
		t.Fatalf("nearby results: %+v", res.Items)
	}

	rw = do(t, h, http.MethodGet, "/search/user?id=2&k=5", "")
	if err := json.Unmarshal(rw.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 1 || res.Items[0].UserID != 2 {
		t.Fatalf("user results: %+v", res.Items)
	}
}

func TestHTTPValidation(t *testing.T) {
	st := newTestStore(t)
	h := st.Handler()
	cases := []struct {
		method, url, body string
		want              int
	}{
		{http.MethodGet, "/microblogs", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/microblogs", "{bad", http.StatusBadRequest},
		{http.MethodPost, "/microblogs", `{}`, http.StatusUnprocessableEntity},
		{http.MethodGet, "/search/keywords", "", http.StatusBadRequest},
		{http.MethodGet, "/search/keywords?q=a&op=xor", "", http.StatusBadRequest},
		{http.MethodGet, "/search/keywords?q=a&k=0", "", http.StatusBadRequest},
		{http.MethodGet, "/search/nearby?lat=abc&lon=1", "", http.StatusBadRequest},
		{http.MethodGet, "/search/user?id=0", "", http.StatusBadRequest},
		{http.MethodGet, "/search/user?id=x", "", http.StatusBadRequest},
	}
	for _, c := range cases {
		if rw := do(t, h, c.method, c.url, c.body); rw.Code != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.url, rw.Code, c.want)
		}
	}
}

func TestStatsAndMetrics(t *testing.T) {
	st := newTestStore(t)
	if _, err := st.Ingest(&kflushing.Microblog{Keywords: []string{"x"}, UserID: 1}); err != nil {
		t.Fatal(err)
	}
	h := st.Handler()

	rw := do(t, h, http.MethodGet, "/stats", "")
	var stats map[string]kflushing.Stats
	if err := json.Unmarshal(rw.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	for _, attr := range []string{"keyword", "spatial", "user"} {
		if _, ok := stats[attr]; !ok {
			t.Fatalf("stats missing attribute %q", attr)
		}
	}
	if stats["keyword"].StoreRecords != 1 || stats["user"].StoreRecords != 1 {
		t.Fatalf("unexpected record counts: kw=%d user=%d",
			stats["keyword"].StoreRecords, stats["user"].StoreRecords)
	}

	rw = do(t, h, http.MethodGet, "/metrics", "")
	body := rw.Body.String()
	for _, want := range []string{
		`kflushing_records{attr="keyword",policy="kflushing"} 1`,
		`kflushing_memory_budget_bytes{attr="user"`,
		"# TYPE kflushing_queries_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	if rw := do(t, h, http.MethodGet, "/healthz", ""); rw.Code != http.StatusOK {
		t.Error("healthz failed")
	}
}

func TestIngestExtractsKeywordsFromText(t *testing.T) {
	st := newTestStore(t)
	res, err := st.Ingest(&kflushing.Microblog{Text: "breaking #storm over the bay"})
	if err != nil {
		t.Fatal(err)
	}
	if res.KeywordID == 0 {
		t.Fatal("text-only record not keyword-indexed")
	}
	hit, err := st.SearchKeywords([]string{"storm"}, kflushing.OpSingle, 1)
	if err != nil || len(hit.Items) != 1 {
		t.Fatalf("extracted hashtag not searchable: %d items, err=%v", len(hit.Items), err)
	}

	// No hashtags: significant terms are used.
	if _, err := st.Ingest(&kflushing.Microblog{Text: "volcano erupting tonight"}); err != nil {
		t.Fatal(err)
	}
	hit, err = st.SearchKeywords([]string{"volcano"}, kflushing.OpSingle, 1)
	if err != nil || len(hit.Items) != 1 {
		t.Fatalf("extracted term not searchable: %d items, err=%v", len(hit.Items), err)
	}
}

func TestHTTPRadiusSearch(t *testing.T) {
	st := newTestStore(t)
	// Two posts in nearby (but distinct) tiles.
	for i, lat := range []float64{40.00, 40.04} {
		if _, err := st.Ingest(&kflushing.Microblog{
			Timestamp: kflushing.Timestamp(i + 1),
			HasGeo:    true, Lat: lat, Lon: -90.0,
			Keywords: []string{"geo"},
		}); err != nil {
			t.Fatal(err)
		}
	}
	h := st.Handler()
	rw := do(t, h, http.MethodGet, "/search/nearby?lat=40.0&lon=-90.0&radius=5&k=5", "")
	if rw.Code != http.StatusOK {
		t.Fatalf("radius search: %d %s", rw.Code, rw.Body)
	}
	var res struct {
		Items []itemResp `json:"items"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 2 {
		t.Fatalf("radius search found %d, want 2", len(res.Items))
	}
	if rw := do(t, h, http.MethodGet, "/search/nearby?lat=40.0&lon=-90.0&radius=-1", ""); rw.Code != http.StatusBadRequest {
		t.Fatalf("negative radius accepted: %d", rw.Code)
	}
}
