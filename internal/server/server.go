// Package server implements the multi-attribute microblogs store behind
// cmd/kflushd: one ingested stream is indexed under all three of the
// paper's search attributes — keywords, spatial grid tiles, and user
// timelines — each with its own memory budget, flushing policy instance,
// and disk tier, mirroring how the paper treats attributes as separate
// index structures (Section IV-A).
package server

import (
	"errors"
	"fmt"
	"path/filepath"

	"kflushing"
	"kflushing/internal/textutil"
)

// ErrNotIndexed reports a record that no attribute could index (no
// keywords, no location, no user).
var ErrNotIndexed = errors.New("server: microblog not indexable under any attribute")

// Store bundles the three attribute systems over one logical stream.
type Store struct {
	kw *kflushing.System
	sp *kflushing.SpatialSystem
	us *kflushing.UserSystem
}

// OpenStore opens (or recovers) the three attribute systems under dir.
// opt applies per attribute: each system gets its own MemoryBudget and
// policy instance.
func OpenStore(dir string, opt kflushing.Options) (*Store, error) {
	kw, err := kflushing.Open(filepath.Join(dir, "keyword"), opt)
	if err != nil {
		return nil, fmt.Errorf("open keyword system: %w", err)
	}
	sp, err := kflushing.OpenSpatial(filepath.Join(dir, "spatial"), nil, opt)
	if err != nil {
		kw.Close()
		return nil, fmt.Errorf("open spatial system: %w", err)
	}
	us, err := kflushing.OpenUser(filepath.Join(dir, "user"), opt)
	if err != nil {
		kw.Close()
		sp.Close()
		return nil, fmt.Errorf("open user system: %w", err)
	}
	return &Store{kw: kw, sp: sp, us: us}, nil
}

// IngestResult reports which attributes indexed a record.
type IngestResult struct {
	KeywordID kflushing.ID `json:"keyword_id,omitempty"`
	SpatialID kflushing.ID `json:"spatial_id,omitempty"`
	UserID    kflushing.ID `json:"user_id,omitempty"`
}

// Ingest digests one microblog into every attribute that can index it:
// keywords when hashtags are present, the spatial grid when geotagged,
// and the posting user's timeline when a user is set. Records arriving
// with raw text but no keywords get them extracted (hashtags first,
// significant terms as fallback). Each system gets its own copy
// (systems take ownership and assign attribute-local IDs).
func (s *Store) Ingest(mb *kflushing.Microblog) (IngestResult, error) {
	if len(mb.Keywords) == 0 && mb.Text != "" {
		mb.Keywords = textutil.Keywords(mb.Text, 5)
	}
	var res IngestResult
	indexed := false
	if len(mb.Keywords) > 0 {
		id, err := s.kw.Ingest(mb.Clone())
		if err != nil {
			return res, err
		}
		res.KeywordID = id
		indexed = true
	}
	if mb.HasGeo {
		id, err := s.sp.Ingest(mb.Clone())
		if err != nil {
			return res, err
		}
		res.SpatialID = id
		indexed = true
	}
	if mb.UserID != 0 {
		id, err := s.us.Ingest(mb.Clone())
		if err != nil {
			return res, err
		}
		res.UserID = id
		indexed = true
	}
	if !indexed {
		return res, ErrNotIndexed
	}
	return res, nil
}

// IngestBatch digests a batch of microblogs, grouping the records by the
// attributes that can index them and handing each attribute system one
// batch — so the per-attribute work (and the write-ahead log commit,
// when durability is on) is amortized across the whole request instead
// of paid per record. Results are aligned with mbs. A record no
// attribute can index rejects the whole batch with ErrNotIndexed before
// anything is ingested (the batch is classified up front, so unlike the
// single-record path the rejection is all-or-nothing).
func (s *Store) IngestBatch(mbs []*kflushing.Microblog) ([]IngestResult, error) {
	results := make([]IngestResult, len(mbs))
	var kwBatch, spBatch, usBatch []*kflushing.Microblog
	var kwIdx, spIdx, usIdx []int
	for i, mb := range mbs {
		if len(mb.Keywords) == 0 && mb.Text != "" {
			mb.Keywords = textutil.Keywords(mb.Text, 5)
		}
		indexed := false
		if len(mb.Keywords) > 0 {
			kwBatch = append(kwBatch, mb.Clone())
			kwIdx = append(kwIdx, i)
			indexed = true
		}
		if mb.HasGeo {
			spBatch = append(spBatch, mb.Clone())
			spIdx = append(spIdx, i)
			indexed = true
		}
		if mb.UserID != 0 {
			usBatch = append(usBatch, mb.Clone())
			usIdx = append(usIdx, i)
			indexed = true
		}
		if !indexed {
			return nil, ErrNotIndexed
		}
	}
	if ids, err := s.kw.IngestBatch(kwBatch); err != nil {
		return nil, err
	} else {
		for j, id := range ids {
			results[kwIdx[j]].KeywordID = id
		}
	}
	if ids, err := s.sp.IngestBatch(spBatch); err != nil {
		return nil, err
	} else {
		for j, id := range ids {
			results[spIdx[j]].SpatialID = id
		}
	}
	if ids, err := s.us.IngestBatch(usBatch); err != nil {
		return nil, err
	} else {
		for j, id := range ids {
			results[usIdx[j]].UserID = id
		}
	}
	return results, nil
}

// SearchKeywords runs a top-k keyword query (single/AND/OR).
func (s *Store) SearchKeywords(keywords []string, op kflushing.Op, k int) (kflushing.Result, error) {
	return s.kw.Search(keywords, op, k)
}

// SearchKeywordsTraced runs a top-k keyword query with an execution
// trace (the ?trace=1 path).
func (s *Store) SearchKeywordsTraced(keywords []string, op kflushing.Op, k int) (kflushing.Result, *kflushing.Trace, error) {
	return s.kw.SearchTraced(keywords, op, k)
}

// nearbyCells resolves a nearby query to grid tiles and an operator.
func (s *Store) nearbyCells(lat, lon, radiusMiles float64) ([]kflushing.Cell, kflushing.Op) {
	if radiusMiles <= 0 {
		return []kflushing.Cell{s.sp.Grid().CellOf(lat, lon)}, kflushing.OpSingle
	}
	cells := s.sp.Grid().CellsWithin(lat, lon, radiusMiles)
	if len(cells) == 1 {
		return cells, kflushing.OpSingle
	}
	return cells, kflushing.OpOr
}

// SearchNearby returns the most recent k posts near (lat, lon): within
// the containing grid tile when radiusMiles <= 0, else within the given
// radius (an OR query across the covered tiles).
func (s *Store) SearchNearby(lat, lon, radiusMiles float64, k int) (kflushing.Result, error) {
	cells, op := s.nearbyCells(lat, lon, radiusMiles)
	return s.sp.SearchCells(cells, op, k)
}

// SearchNearbyTraced is SearchNearby with an execution trace.
func (s *Store) SearchNearbyTraced(lat, lon, radiusMiles float64, k int) (kflushing.Result, *kflushing.Trace, error) {
	cells, op := s.nearbyCells(lat, lon, radiusMiles)
	return s.sp.SearchCellsTraced(cells, op, k)
}

// SearchUser returns the top-k timeline of one user.
func (s *Store) SearchUser(id uint64, k int) (kflushing.Result, error) {
	return s.us.SearchUser(id, k)
}

// SearchUserTraced is SearchUser with an execution trace.
func (s *Store) SearchUserTraced(id uint64, k int) (kflushing.Result, *kflushing.Trace, error) {
	return s.us.SearchUserTraced(id, k)
}

// FlushLogs returns the most recent n audited flush cycles of every
// attribute system, oldest-first (all retained cycles when n <= 0).
func (s *Store) FlushLogs(n int) map[string][]kflushing.FlushEvent {
	return map[string][]kflushing.FlushEvent{
		"keyword": s.kw.FlushLog(n),
		"spatial": s.sp.FlushLog(n),
		"user":    s.us.FlushLog(n),
	}
}

// BlackboxEvents returns each attribute system's retained flight-recorder
// events, sequence-ordered within each attribute. Keys are the attribute
// names ("keyword", "spatial", "user"); the /debug/blackbox handler
// merges them into one timeline.
func (s *Store) BlackboxEvents() map[string][]kflushing.BlackboxEvent {
	return map[string][]kflushing.BlackboxEvent{
		"keyword": s.kw.BlackboxEvents(),
		"spatial": s.sp.BlackboxEvents(),
		"user":    s.us.BlackboxEvents(),
	}
}

// SlowQueries returns each attribute system's retained slow-query traces
// oldest-first (empty unless Options.SlowQueryNanos is set).
func (s *Store) SlowQueries() map[string][]kflushing.SlowQuery {
	return map[string][]kflushing.SlowQuery{
		"keyword": s.kw.SlowQueries(),
		"spatial": s.sp.SlowQueries(),
		"user":    s.us.SlowQueries(),
	}
}

// Ready verifies every attribute system can serve writes (disk tier
// writable, WAL appendable when durable), returning per-attribute
// failure reasons; an empty map means ready.
func (s *Store) Ready() map[string]string {
	out := map[string]string{}
	if err := s.kw.Ready(); err != nil {
		out["keyword"] = err.Error()
	}
	if err := s.sp.Ready(); err != nil {
		out["spatial"] = err.Error()
	}
	if err := s.us.Ready(); err != nil {
		out["user"] = err.Error()
	}
	return out
}

// DiskHealth reports each attribute system's disk tier levels and flush
// pipeline queue depth — cheap enough for the readiness endpoint, where
// a persistently positive compaction backlog or a pinned queue depth
// makes a wedged compactor or saturated pipeline visible.
func (s *Store) DiskHealth() map[string]kflushing.DiskHealth {
	return map[string]kflushing.DiskHealth{
		"keyword": s.kw.DiskHealth(),
		"spatial": s.sp.DiskHealth(),
		"user":    s.us.DiskHealth(),
	}
}

// SetK changes the default top-k threshold of all attribute systems.
func (s *Store) SetK(k int) {
	s.kw.SetK(k)
	s.sp.SetK(k)
	s.us.SetK(k)
}

// TunerStatus is one attribute system's adaptive-memory report.
type TunerStatus struct {
	Enabled bool                 `json:"enabled"`
	State   kflushing.TunerState `json:"state"`
}

// TunerStates reports the adaptive memory tuner per attribute; systems
// running without the tuner report Enabled false and a zero state.
func (s *Store) TunerStates() map[string]TunerStatus {
	out := make(map[string]TunerStatus, 3)
	kw, kwOK := s.kw.TunerState()
	sp, spOK := s.sp.TunerState()
	us, usOK := s.us.TunerState()
	out["keyword"] = TunerStatus{Enabled: kwOK, State: kw}
	out["spatial"] = TunerStatus{Enabled: spOK, State: sp}
	out["user"] = TunerStatus{Enabled: usOK, State: us}
	return out
}

// Stats returns per-attribute snapshots.
func (s *Store) Stats() map[string]kflushing.Stats {
	return map[string]kflushing.Stats{
		"keyword": s.kw.Stats(),
		"spatial": s.sp.Stats(),
		"user":    s.us.Stats(),
	}
}

// Close shuts down all attribute systems, returning the first error.
func (s *Store) Close() error {
	var first error
	for _, c := range []func() error{s.kw.Close, s.sp.Close, s.us.Close} {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
