// Package query defines the basic top-k search query model (Section
// II-B) and the ranked-merge helpers shared by the in-memory query
// engine and the disk tier.
//
// A basic search query carries a search criteria (one or more keys on a
// single attribute), a result limit k, and uses the ranking scores
// pre-computed at arrival. Multi-key queries combine keys with OR (any
// key matches) or AND (all keys must match), the two forms major
// microblog services support (Section IV-D).
package query

import (
	"sort"

	"kflushing/internal/trace"
	"kflushing/internal/types"
)

// Op is the combination operator of a multi-key query.
type Op int

const (
	// OpSingle queries exactly one key.
	OpSingle Op = iota
	// OpOr returns microblogs matching any of the keys.
	OpOr
	// OpAnd returns microblogs matching all of the keys.
	OpAnd
)

// String returns the operator's conventional spelling.
func (o Op) String() string {
	switch o {
	case OpSingle:
		return "single"
	case OpOr:
		return "or"
	case OpAnd:
		return "and"
	default:
		return "op?"
	}
}

// Item is one ranked candidate: a microblog and its ranking score.
type Item struct {
	MB    *types.Microblog
	Score float64
}

// Less orders items descending by (score, ID): the ranking order of
// query answers.
func Less(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.MB.ID > b.MB.ID
}

// SortRanked sorts items into ranking order (best first).
func SortRanked(items []Item) {
	sort.Slice(items, func(i, j int) bool { return Less(items[i], items[j]) })
}

// MergeTopK merges pre-ranked candidate lists into the global top-k,
// deduplicating by microblog ID. Input lists need not be sorted.
func MergeTopK(lists [][]Item, k int) []Item {
	var all []Item
	seen := make(map[types.ID]struct{})
	for _, l := range lists {
		for _, it := range l {
			if _, dup := seen[it.MB.ID]; dup {
				continue
			}
			seen[it.MB.ID] = struct{}{}
			all = append(all, it)
		}
	}
	SortRanked(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// IntersectTopK returns the top-k items present in every list (matched
// by microblog ID). Lists need not be sorted.
func IntersectTopK(lists [][]Item, k int) []Item {
	if len(lists) == 0 {
		return nil
	}
	if len(lists) == 1 {
		out := append([]Item(nil), lists[0]...)
		SortRanked(out)
		if len(out) > k {
			out = out[:k]
		}
		return out
	}
	// Count occurrences by ID; an item is in the intersection when it
	// appears in all lists. Within one list duplicates are impossible
	// (an entry holds one posting per record).
	counts := make(map[types.ID]int)
	keep := make(map[types.ID]Item)
	for _, l := range lists {
		for _, it := range l {
			counts[it.MB.ID]++
			keep[it.MB.ID] = it
		}
	}
	var out []Item
	for id, c := range counts {
		if c == len(lists) {
			out = append(out, keep[id])
		}
	}
	SortRanked(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Request is a fully-specified basic search query over keys of type K.
type Request[K comparable] struct {
	// Keys are the search criteria values; OpSingle uses Keys[0].
	Keys []K
	// Op combines multiple keys.
	Op Op
	// K is the result limit; 0 selects the engine default.
	K int
	// Trace, when non-nil, collects the end-to-end execution record of
	// the query (memory probe, per-segment disk activity, stage
	// timings). Nil — the default — disables tracing at zero cost.
	Trace *trace.Trace
}

// Result is a query answer with its provenance.
type Result struct {
	// Items are the ranked answers, best first; may hold fewer than k
	// when fewer matches exist anywhere in the system.
	Items []Item
	// MemoryHit reports whether the full answer came from main-memory
	// contents without consulting the disk tier.
	MemoryHit bool
	// DiskChecked reports whether the disk tier was consulted.
	DiskChecked bool
}
