package query

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"kflushing/internal/types"
)

func it(id uint64, score float64) Item {
	return Item{MB: &types.Microblog{ID: types.ID(id)}, Score: score}
}

func ids(items []Item) []uint64 {
	out := make([]uint64, len(items))
	for i, x := range items {
		out[i] = uint64(x.MB.ID)
	}
	return out
}

func TestMergeTopKRanksAndDedupes(t *testing.T) {
	a := []Item{it(1, 10), it(2, 5)}
	b := []Item{it(3, 7), it(1, 10)} // duplicate id 1
	got := MergeTopK([][]Item{a, b}, 2)
	want := []uint64{1, 3}
	if len(got) != 2 || got[0].MB.ID != types.ID(want[0]) || got[1].MB.ID != types.ID(want[1]) {
		t.Fatalf("got %v, want %v", ids(got), want)
	}
}

func TestMergeTopKFewerThanK(t *testing.T) {
	got := MergeTopK([][]Item{{it(1, 1)}}, 10)
	if len(got) != 1 {
		t.Fatalf("got %d items", len(got))
	}
}

func TestIntersectTopK(t *testing.T) {
	a := []Item{it(1, 10), it(2, 5), it(3, 3)}
	b := []Item{it(2, 5), it(3, 3), it(4, 9)}
	got := IntersectTopK([][]Item{a, b}, 5)
	if len(got) != 2 || got[0].MB.ID != 2 || got[1].MB.ID != 3 {
		t.Fatalf("got %v", ids(got))
	}
}

func TestIntersectSingleList(t *testing.T) {
	a := []Item{it(2, 5), it(1, 10)}
	got := IntersectTopK([][]Item{a}, 1)
	if len(got) != 1 || got[0].MB.ID != 1 {
		t.Fatalf("got %v", ids(got))
	}
}

func TestIntersectEmpty(t *testing.T) {
	if got := IntersectTopK(nil, 5); got != nil {
		t.Fatalf("got %v", got)
	}
	a := []Item{it(1, 1)}
	b := []Item{it(2, 2)}
	if got := IntersectTopK([][]Item{a, b}, 5); len(got) != 0 {
		t.Fatalf("disjoint intersection returned %v", ids(got))
	}
}

func TestTieBreakByID(t *testing.T) {
	// Equal scores: higher ID (more recent arrival) ranks first.
	got := MergeTopK([][]Item{{it(1, 5), it(9, 5), it(4, 5)}}, 3)
	want := []uint64{9, 4, 1}
	for i, w := range want {
		if uint64(got[i].MB.ID) != w {
			t.Fatalf("got %v, want %v", ids(got), want)
		}
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{OpSingle: "single", OpOr: "or", OpAnd: "and", Op(99): "op?"} {
		if op.String() != want {
			t.Fatalf("Op(%d).String() = %q", op, op.String())
		}
	}
}

// Property: MergeTopK equals brute-force sort+dedup+truncate.
func TestMergeTopKProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%20) + 1
		var lists [][]Item
		unique := map[types.ID]Item{}
		for l := 0; l < 3; l++ {
			var list []Item
			for i := 0; i < rng.Intn(20); i++ {
				x := it(uint64(rng.Intn(30)+1), float64(rng.Intn(10)))
				list = append(list, x)
			}
			lists = append(lists, list)
		}
		// Brute force: first occurrence wins the dedup.
		seen := map[types.ID]bool{}
		var all []Item
		for _, l := range lists {
			for _, x := range l {
				if !seen[x.MB.ID] {
					seen[x.MB.ID] = true
					all = append(all, x)
					unique[x.MB.ID] = x
				}
			}
		}
		sort.Slice(all, func(i, j int) bool { return Less(all[i], all[j]) })
		if len(all) > k {
			all = all[:k]
		}
		got := MergeTopK(lists, k)
		if len(got) != len(all) {
			return false
		}
		for i := range got {
			// Scores must match rank for rank; IDs may differ only on
			// exact (score, ID) ties, which Less fully orders, so
			// require identical IDs too.
			if got[i].MB.ID != all[i].MB.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: IntersectTopK items appear in every input list.
func TestIntersectProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() ([]Item, map[types.ID]bool) {
			var list []Item
			present := map[types.ID]bool{}
			for i := 0; i < rng.Intn(25); i++ {
				id := types.ID(rng.Intn(20) + 1)
				if present[id] {
					continue
				}
				present[id] = true
				list = append(list, it(uint64(id), float64(id)))
			}
			return list, present
		}
		a, pa := mk()
		b, pb := mk()
		got := IntersectTopK([][]Item{a, b}, 50)
		for _, x := range got {
			if !pa[x.MB.ID] || !pb[x.MB.ID] {
				return false
			}
		}
		// Completeness: every common ID is present.
		common := 0
		for id := range pa {
			if pb[id] {
				common++
			}
		}
		return len(got) == common
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
