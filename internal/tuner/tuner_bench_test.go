package tuner

import (
	"testing"

	"kflushing/internal/types"
)

// BenchmarkTunerDue measures the ingest hot path's controller probe —
// one atomic load that must stay allocation-free.
func BenchmarkTunerDue(b *testing.B) {
	tn := New(testConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tn.Due(types.Timestamp(i))
	}
}

// BenchmarkTunerTick measures a full controller evaluation: window
// delta, pressure, confirmation, clamp, and envelope arbitration. This
// bounds the per-flush-cycle overhead the adaptive mode adds.
func BenchmarkTunerTick(b *testing.B) {
	tn := New(testConfig())
	interval := tn.State().Limits.Interval
	s := Signals{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate regimes so confirmation and reversal paths both run.
		if i%16 < 8 {
			s = writeHeavy(s)
		} else {
			s = readHeavy(s)
		}
		tn.Tick(types.Timestamp(int64(i+1)*interval), s)
	}
}
