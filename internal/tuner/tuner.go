// Package tuner is the engine's adaptive memory controller: a
// deterministic feedback loop that arbitrates the "memory wall" between
// the in-memory store (index + raw records, governed by the flush
// trigger watermark), the flush budget B, and the disk tier's decoded
// record cache.
//
// The model follows the LSM memory tuner of "Breaking Down Memory
// Walls" (PAPERS.md): sample the cumulative cost counters the engine
// already maintains, compare the cost of flushing (write pressure)
// against the cost of memory-miss disk reads (read pressure), and shift
// resources toward whichever side is paying more. Under a write-heavy
// regime the controller raises the flush budget B (bigger, rarer
// flushes amortize per-cycle fixed cost), raises the trigger watermark,
// and shrinks the record cache; under a read-heavy regime it does the
// reverse, growing the cache out of the bytes the lowered watermark
// frees.
//
// Every decision is pure arithmetic over sampled Signals and the
// configured Limits — no wall-clock reads, no randomness — so driving
// the tick from a logical clock replays identically. Three invariants
// hold for every emitted decision and are enforced by the property
// battery in this package:
//
//   - B stays within [MinFlushFraction, MaxFlushFraction], the
//     watermark within its fraction bounds, the cache within
//     [MinCacheBytes, MaxCacheBytes].
//   - watermark + cache never exceeds the static configuration's
//     combined footprint (MemoryBudget + initial cache bytes), so
//     enabling the tuner never grows the process's memory envelope.
//   - No knob moves by more than one step per tick, and a move in one
//     direction is never applied on the tick immediately after a move
//     in the other (a direction change must persist for two consecutive
//     due ticks), bounding oscillation.
//
// A nil *Tuner is the disabled controller: every method is safe to call
// on it and reports "not due / no decision", so the engine needs no
// guards on its hot paths.
//
//kfvet:nilsafe
package tuner

import (
	"sync"
	"sync/atomic"

	"kflushing/internal/types"
)

// Limits bounds the controller. The zero value selects the defaults
// documented on each field; setting a knob's min equal to its max pins
// that knob, and pinning all three (min = max = the static value) makes
// the tuner provably equivalent to a static configuration: it still
// ticks, but never emits a change.
type Limits struct {
	// Interval is the clock distance between decisions, in the engine
	// clock's own units (microseconds under the wall clock, logical
	// units under a test clock). 0 selects 1e6 (one second of wall
	// time).
	Interval int64 `json:"interval"`
	// Step is the fraction of each knob's range moved per adjustment.
	// 0 selects 0.05.
	Step float64 `json:"step"`
	// Deadband is the pressure magnitude below which the controller
	// holds instead of moving, in [0, 1). 0 selects 0.2.
	Deadband float64 `json:"deadband"`
	// MinFlushFraction / MaxFlushFraction bound B. Both 0 selects
	// [0.05, 0.5], widened if needed to include the static value.
	MinFlushFraction float64 `json:"min_flush_fraction"`
	MaxFlushFraction float64 `json:"max_flush_fraction"`
	// MinWatermarkFraction / MaxWatermarkFraction bound the flush
	// trigger watermark as a fraction of MemoryBudget. Both 0 selects
	// [0.5, 1.0]. The static watermark is exactly the budget (1.0).
	MinWatermarkFraction float64 `json:"min_watermark_fraction"`
	MaxWatermarkFraction float64 `json:"max_watermark_fraction"`
	// MinCacheBytes / MaxCacheBytes bound the disk record cache. Both 0
	// selects [initial/4 (floor 64 KiB), 4 x initial]. When the cache
	// is disabled (initial 0) both collapse to 0 and cache arbitration
	// is off.
	MinCacheBytes int64 `json:"min_cache_bytes"`
	MaxCacheBytes int64 `json:"max_cache_bytes"`
}

// Config fixes the controller's anchor points: the static values the
// tuner starts from and is measured against.
type Config struct {
	// MemoryBudget is the engine's static memory budget; the initial
	// watermark.
	MemoryBudget int64
	// FlushFraction is the static flush budget B; the initial value.
	FlushFraction float64
	// CacheBytes is the disk record cache's initial byte budget (0 or
	// negative: cache disabled, cache arbitration off).
	CacheBytes int64
	// Limits bounds every decision.
	Limits Limits
}

// Signals are the cumulative cost counters sampled at each tick. The
// controller differences consecutive samples itself; callers pass
// running totals.
type Signals struct {
	// Ingested counts records digested (ingest pressure; reported in
	// State for observability).
	Ingested int64
	// Flushes and FlushNanos are the flush-cycle count and cumulative
	// flush latency: the write-side cost.
	Flushes    int64
	FlushNanos int64
	// Misses and MissNanos are the memory-miss query count and
	// cumulative miss latency: the read-side cost.
	Misses    int64
	MissNanos int64
	// CacheHits / CacheMisses are the disk record cache's counters
	// (reported in State; the miss cost already prices cache misses).
	CacheHits   int64
	CacheMisses int64
}

// Decision is one emitted retuning: the targets the engine should apply.
type Decision struct {
	// Ticked reports that a window was evaluated (the tick was due);
	// false means the call was before the next deadline.
	Ticked bool
	// FlushFraction, WatermarkBytes and CacheBytes are the new targets
	// (unchanged values repeat the current ones).
	FlushFraction  float64
	WatermarkBytes int64
	CacheBytes     int64
	// Direction is the applied move: +1 toward the write side, -1
	// toward the read side, 0 for a hold.
	Direction int
	// Pressure is the window's signed cost imbalance in [-1, 1]
	// (positive: flushing cost dominated).
	Pressure float64
}

// State is a point-in-time snapshot for /debug/tuner and the metrics
// gauges.
type State struct {
	FlushFraction  float64 `json:"flush_fraction"`
	WatermarkBytes int64   `json:"watermark_bytes"`
	CacheBytes     int64   `json:"cache_bytes"`
	// Ticks counts evaluated windows; Adjusts the ones that moved a
	// knob; Holds the ones that did not; SignFlips the applied
	// direction reversals.
	Ticks     int64 `json:"ticks"`
	Adjusts   int64 `json:"adjustments"`
	Holds     int64 `json:"holds"`
	SignFlips int64 `json:"sign_flips"`
	// LastPressure and Direction describe the most recent evaluated
	// window.
	LastPressure float64 `json:"last_pressure"`
	Direction    int     `json:"direction"`
	// LastSignals is the most recent sample, for rate inspection.
	LastSignals Signals `json:"last_signals"`
	Limits      Limits  `json:"limits"`
}

// Tuner is the controller. Safe for concurrent use; the engine
// serializes decision application under its flush gate, but State may
// be read from any goroutine.
type Tuner struct {
	cfg      Config
	envelope int64 // watermark + cache ceiling: the static footprint

	// nextDue is read lock-free on the ingest hot path (Due).
	nextDue atomic.Int64

	mu      sync.Mutex
	seeded  bool
	prev    Signals
	frac    float64
	wm      int64
	cache   int64
	lastDir int // last applied direction
	pendDir int // direction observed last tick, awaiting confirmation
	ticks   int64
	adjusts int64
	holds   int64
	flips   int64
	lastP   float64
}

// New builds a controller anchored at cfg's static values. Zero-valued
// limits are filled with defaults; inverted bounds are widened to
// include the static anchor so the initial state is always in-bounds.
func New(cfg Config) *Tuner {
	l := &cfg.Limits
	if l.Interval <= 0 {
		l.Interval = 1_000_000
	}
	if l.Step <= 0 {
		l.Step = 0.05
	}
	if l.Deadband <= 0 {
		l.Deadband = 0.2
	}
	if l.Deadband >= 1 {
		l.Deadband = 0.99
	}
	if l.MinFlushFraction == 0 && l.MaxFlushFraction == 0 {
		l.MinFlushFraction, l.MaxFlushFraction = 0.05, 0.5
	}
	if l.MinFlushFraction > cfg.FlushFraction {
		l.MinFlushFraction = cfg.FlushFraction
	}
	if l.MaxFlushFraction < cfg.FlushFraction {
		l.MaxFlushFraction = cfg.FlushFraction
	}
	if l.MinWatermarkFraction == 0 && l.MaxWatermarkFraction == 0 {
		l.MinWatermarkFraction, l.MaxWatermarkFraction = 0.5, 1.0
	}
	if l.MinWatermarkFraction > 1.0 {
		l.MinWatermarkFraction = 1.0
	}
	if l.MaxWatermarkFraction < 1.0 {
		l.MaxWatermarkFraction = 1.0
	}
	if cfg.CacheBytes < 0 {
		cfg.CacheBytes = 0
	}
	if cfg.CacheBytes == 0 {
		l.MinCacheBytes, l.MaxCacheBytes = 0, 0
	} else if l.MinCacheBytes == 0 && l.MaxCacheBytes == 0 {
		l.MinCacheBytes = cfg.CacheBytes / 4
		if l.MinCacheBytes < 64<<10 {
			l.MinCacheBytes = 64 << 10
		}
		l.MaxCacheBytes = 4 * cfg.CacheBytes
	}
	if l.MinCacheBytes > cfg.CacheBytes {
		l.MinCacheBytes = cfg.CacheBytes
	}
	if l.MaxCacheBytes < cfg.CacheBytes {
		l.MaxCacheBytes = cfg.CacheBytes
	}
	return &Tuner{
		cfg:      cfg,
		envelope: cfg.MemoryBudget + cfg.CacheBytes,
		frac:     cfg.FlushFraction,
		wm:       cfg.MemoryBudget,
		cache:    cfg.CacheBytes,
	}
}

// Due reports whether the next tick deadline has passed: one atomic
// load, cheap enough for the per-batch ingest path.
func (t *Tuner) Due(now types.Timestamp) bool {
	if t == nil {
		return false
	}
	return int64(now) >= t.nextDue.Load()
}

// Tick evaluates one window. It returns the resulting decision and
// whether it changed any target; a call before the deadline returns a
// zero decision (Ticked false). The first due tick only seeds the
// signal baseline.
func (t *Tuner) Tick(now types.Timestamp, s Signals) (Decision, bool) {
	if t == nil {
		return Decision{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int64(now) < t.nextDue.Load() {
		return Decision{}, false
	}
	t.nextDue.Store(int64(now) + t.cfg.Limits.Interval)
	t.ticks++
	d := Decision{
		Ticked:         true,
		FlushFraction:  t.frac,
		WatermarkBytes: t.wm,
		CacheBytes:     t.cache,
	}
	if !t.seeded {
		t.seeded = true
		t.prev = s
		t.holds++
		return d, false
	}
	writeCost := s.FlushNanos - t.prev.FlushNanos
	readCost := s.MissNanos - t.prev.MissNanos
	t.prev = s
	if writeCost <= 0 && readCost <= 0 {
		t.holds++
		return d, false // idle window: nothing paid, nothing to rebalance
	}
	if writeCost < 0 {
		writeCost = 0
	}
	if readCost < 0 {
		readCost = 0
	}
	p := float64(writeCost-readCost) / float64(writeCost+readCost)
	t.lastP = p
	d.Pressure = p
	dir := 0
	switch {
	case p > t.cfg.Limits.Deadband:
		dir = 1
	case p < -t.cfg.Limits.Deadband:
		dir = -1
	}
	if dir == 0 {
		t.pendDir = 0
		t.holds++
		return d, false
	}
	// Anti-oscillation: a direction differing from the last applied
	// move must be observed on two consecutive due ticks before it is
	// acted on, so a single noisy window can never reverse the
	// controller.
	if dir != t.lastDir && t.pendDir != dir {
		t.pendDir = dir
		t.holds++
		return d, false
	}
	t.pendDir = dir
	l := t.cfg.Limits
	stepB := l.Step * (l.MaxFlushFraction - l.MinFlushFraction)
	stepBytes := int64(l.Step * float64(t.cfg.MemoryBudget))
	if stepBytes < 1 {
		stepBytes = 1
	}
	minWm := int64(l.MinWatermarkFraction * float64(t.cfg.MemoryBudget))
	maxWm := int64(l.MaxWatermarkFraction * float64(t.cfg.MemoryBudget))
	newFrac := clampF(t.frac+float64(dir)*stepB, l.MinFlushFraction, l.MaxFlushFraction)
	var newWm, newCache int64
	if dir > 0 {
		// Write-heavy: bigger flush quantum, later trigger, and the
		// record cache gives its bytes back.
		newWm = clampI(t.wm+stepBytes, minWm, maxWm)
		newCache = clampI(t.cache-stepBytes, l.MinCacheBytes, l.MaxCacheBytes)
	} else {
		// Read-heavy: flush earlier and smaller, and grow the record
		// cache out of the bytes the lowered watermark frees.
		newWm = clampI(t.wm-stepBytes, minWm, maxWm)
		newCache = clampI(t.cache+stepBytes, l.MinCacheBytes, l.MaxCacheBytes)
	}
	// The arbitrated total never exceeds the static footprint: the
	// cache may only grow into bytes the watermark has actually ceded.
	if newWm+newCache > t.envelope {
		newCache = clampI(t.envelope-newWm, l.MinCacheBytes, l.MaxCacheBytes)
		if newWm+newCache > t.envelope {
			newWm = clampI(t.envelope-newCache, minWm, maxWm)
		}
	}
	if newFrac == t.frac && newWm == t.wm && newCache == t.cache {
		t.holds++
		return d, false // pinned against the bounds: nowhere to move
	}
	if dir != t.lastDir {
		if t.lastDir != 0 {
			t.flips++
		}
		t.lastDir = dir
	}
	t.adjusts++
	t.frac, t.wm, t.cache = newFrac, newWm, newCache
	d.FlushFraction, d.WatermarkBytes, d.CacheBytes = newFrac, newWm, newCache
	d.Direction = dir
	return d, true
}

// State snapshots the controller for /debug/tuner and the metrics
// gauges. A nil tuner reports the zero State.
func (t *Tuner) State() State {
	if t == nil {
		return State{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return State{
		FlushFraction:  t.frac,
		WatermarkBytes: t.wm,
		CacheBytes:     t.cache,
		Ticks:          t.ticks,
		Adjusts:        t.adjusts,
		Holds:          t.holds,
		SignFlips:      t.flips,
		LastPressure:   t.lastP,
		Direction:      t.lastDir,
		LastSignals:    t.prev,
		Limits:         t.cfg.Limits,
	}
}

// Envelope returns the watermark + cache ceiling the controller
// enforces (the static footprint). A nil tuner reports 0.
func (t *Tuner) Envelope() int64 {
	if t == nil {
		return 0
	}
	return t.envelope
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampI(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
