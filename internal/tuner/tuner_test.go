package tuner

import (
	"testing"

	"kflushing/internal/types"
)

// testConfig is the baseline anchor used across the battery: a 1 MiB
// budget, the paper's B=0.1, and a 256 KiB record cache.
func testConfig() Config {
	return Config{
		MemoryBudget:  1 << 20,
		FlushFraction: 0.1,
		CacheBytes:    256 << 10,
		Limits:        Limits{Interval: 10},
	}
}

// writeHeavy and readHeavy are signal streams where exactly one side
// paid during the window, so the pressure is ±1 regardless of
// magnitudes — the deterministic extreme the engine sims also rely on.
func writeHeavy(prev Signals) Signals {
	prev.Flushes++
	prev.FlushNanos += 1_000_000
	return prev
}

func readHeavy(prev Signals) Signals {
	prev.Misses++
	prev.MissNanos += 1_000_000
	return prev
}

// drive ticks the tuner n times at its own interval, deriving each
// sample from the previous via next.
func drive(t *testing.T, tn *Tuner, start int64, n int, next func(Signals) Signals) (last Decision, applied int) {
	t.Helper()
	s := tn.State().LastSignals
	for i := 0; i < n; i++ {
		s = next(s)
		d, changed := tn.Tick(types.Timestamp(start+int64(i)*tn.cfg.Limits.Interval), s)
		if !d.Ticked {
			t.Fatalf("tick %d not due", i)
		}
		if changed {
			applied++
		}
		last = d
	}
	return last, applied
}

func TestNilTunerIsSafe(t *testing.T) {
	var tn *Tuner
	if tn.Due(1) {
		t.Fatal("nil tuner reported due")
	}
	if d, changed := tn.Tick(1, Signals{}); d.Ticked || changed {
		t.Fatal("nil tuner emitted a decision")
	}
	if st := tn.State(); st != (State{}) {
		t.Fatalf("nil tuner state not zero: %+v", st)
	}
	if tn.Envelope() != 0 {
		t.Fatal("nil tuner envelope not zero")
	}
}

func TestDefaultsAndAnchoring(t *testing.T) {
	tn := New(testConfig())
	l := tn.State().Limits
	if l.Step != 0.05 || l.Deadband != 0.2 {
		t.Fatalf("defaults not filled: step=%v deadband=%v", l.Step, l.Deadband)
	}
	if l.MinFlushFraction != 0.05 || l.MaxFlushFraction != 0.5 {
		t.Fatalf("B bounds: [%v, %v]", l.MinFlushFraction, l.MaxFlushFraction)
	}
	if l.MinWatermarkFraction != 0.5 || l.MaxWatermarkFraction != 1.0 {
		t.Fatalf("watermark bounds: [%v, %v]", l.MinWatermarkFraction, l.MaxWatermarkFraction)
	}
	if l.MinCacheBytes != 64<<10 || l.MaxCacheBytes != 4*(256<<10) {
		t.Fatalf("cache bounds: [%d, %d]", l.MinCacheBytes, l.MaxCacheBytes)
	}
	st := tn.State()
	if st.FlushFraction != 0.1 || st.WatermarkBytes != 1<<20 || st.CacheBytes != 256<<10 {
		t.Fatalf("initial state not the static anchor: %+v", st)
	}
	if tn.Envelope() != (1<<20)+(256<<10) {
		t.Fatalf("envelope %d", tn.Envelope())
	}

	// Bounds that exclude the static anchor are widened to include it,
	// so the initial state is always legal.
	cfg := testConfig()
	cfg.Limits.MinFlushFraction, cfg.Limits.MaxFlushFraction = 0.3, 0.5
	l = New(cfg).State().Limits
	if l.MinFlushFraction > cfg.FlushFraction {
		t.Fatalf("min B %v excludes static %v", l.MinFlushFraction, cfg.FlushFraction)
	}
}

func TestCacheDisabledCollapsesCacheBounds(t *testing.T) {
	cfg := testConfig()
	cfg.CacheBytes = 0
	tn := New(cfg)
	l := tn.State().Limits
	if l.MinCacheBytes != 0 || l.MaxCacheBytes != 0 {
		t.Fatalf("cache bounds not collapsed: [%d, %d]", l.MinCacheBytes, l.MaxCacheBytes)
	}
	// Adjustments still move B without touching the cache.
	drive(t, tn, 100, 3, writeHeavy)
	st := tn.State()
	if st.CacheBytes != 0 {
		t.Fatalf("cache moved while disabled: %d", st.CacheBytes)
	}
	if st.FlushFraction <= cfg.FlushFraction {
		t.Fatalf("B did not rise: %v", st.FlushFraction)
	}
}

func TestDueRespectsInterval(t *testing.T) {
	tn := New(testConfig()) // Interval 10
	if d, _ := tn.Tick(100, Signals{}); !d.Ticked {
		t.Fatal("first tick not due")
	}
	if tn.Due(105) {
		t.Fatal("due before the interval elapsed")
	}
	if d, _ := tn.Tick(105, Signals{}); d.Ticked {
		t.Fatal("early tick evaluated a window")
	}
	if !tn.Due(110) {
		t.Fatal("not due at the deadline")
	}
}

func TestFirstTickSeedsOnly(t *testing.T) {
	tn := New(testConfig())
	d, changed := tn.Tick(100, Signals{FlushNanos: 50})
	if !d.Ticked || changed {
		t.Fatalf("seed tick: ticked=%v changed=%v", d.Ticked, changed)
	}
	st := tn.State()
	if st.Ticks != 1 || st.Holds != 1 || st.Adjusts != 0 {
		t.Fatalf("seed counters: %+v", st)
	}
}

func TestIdleWindowHolds(t *testing.T) {
	tn := New(testConfig())
	tn.Tick(100, Signals{FlushNanos: 50, MissNanos: 50})
	// Same cumulative totals: nothing was paid this window.
	d, changed := tn.Tick(110, Signals{FlushNanos: 50, MissNanos: 50})
	if changed || d.Direction != 0 {
		t.Fatalf("idle window moved: %+v", d)
	}
}

func TestDeadbandHolds(t *testing.T) {
	tn := New(testConfig())
	tn.Tick(100, Signals{})
	// 55/45 split: |pressure| = 0.1 < deadband 0.2.
	d, changed := tn.Tick(110, Signals{FlushNanos: 55, MissNanos: 45})
	if changed {
		t.Fatal("deadband window applied a move")
	}
	if d.Pressure < 0.09 || d.Pressure > 0.11 {
		t.Fatalf("pressure %v", d.Pressure)
	}
}

// TestWriteHeavyConverges drives a pure write workload: B and the
// watermark must move up (watermark starts pinned at its max, the
// static budget) and the cache must shrink, one step per tick.
func TestWriteHeavyConverges(t *testing.T) {
	cfg := testConfig()
	tn := New(cfg)
	// Tick 1 seeds, tick 2 observes +1 (pending), tick 3 confirms and
	// applies the first move.
	_, applied := drive(t, tn, 100, 3, writeHeavy)
	if applied != 1 {
		t.Fatalf("applied %d moves, want 1 (seed + confirm + apply)", applied)
	}
	st := tn.State()
	wantB := cfg.FlushFraction + 0.05*(0.5-0.05)
	if diff := st.FlushFraction - wantB; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("B=%v want %v", st.FlushFraction, wantB)
	}
	if st.WatermarkBytes != cfg.MemoryBudget {
		t.Fatalf("watermark %d moved past its max %d", st.WatermarkBytes, cfg.MemoryBudget)
	}
	step := int64(0.05 * float64(cfg.MemoryBudget))
	if st.CacheBytes != cfg.CacheBytes-step {
		t.Fatalf("cache %d, want %d", st.CacheBytes, cfg.CacheBytes-step)
	}
	if st.Direction != 1 {
		t.Fatalf("direction %d", st.Direction)
	}
}

// TestReadHeavyConverges drives a pure read-miss workload: the
// watermark drops, the cache grows into the ceded bytes, and B falls.
func TestReadHeavyConverges(t *testing.T) {
	cfg := testConfig()
	tn := New(cfg)
	drive(t, tn, 100, 3, readHeavy)
	st := tn.State()
	if st.FlushFraction >= cfg.FlushFraction {
		t.Fatalf("B did not fall: %v", st.FlushFraction)
	}
	if st.WatermarkBytes >= cfg.MemoryBudget {
		t.Fatalf("watermark did not fall: %d", st.WatermarkBytes)
	}
	if st.CacheBytes <= cfg.CacheBytes {
		t.Fatalf("cache did not grow: %d", st.CacheBytes)
	}
	if st.WatermarkBytes+st.CacheBytes > tn.Envelope() {
		t.Fatalf("envelope exceeded: %d+%d > %d", st.WatermarkBytes, st.CacheBytes, tn.Envelope())
	}
}

// TestConvergenceStopsAtBounds drives write pressure far past the
// point where every knob is pinned; pinned ticks must count as holds,
// not adjustments.
func TestConvergenceStopsAtBounds(t *testing.T) {
	cfg := testConfig()
	tn := New(cfg)
	drive(t, tn, 100, 60, writeHeavy)
	st := tn.State()
	l := st.Limits
	if st.FlushFraction != l.MaxFlushFraction {
		t.Fatalf("B %v not pinned at %v", st.FlushFraction, l.MaxFlushFraction)
	}
	if st.CacheBytes != l.MinCacheBytes {
		t.Fatalf("cache %d not pinned at %d", st.CacheBytes, l.MinCacheBytes)
	}
	if st.Adjusts+st.Holds != st.Ticks {
		t.Fatalf("counters disagree: %+v", st)
	}
	// Everything pinned: further pressure applies nothing.
	before := st.Adjusts
	drive(t, tn, 10_000, 5, writeHeavy)
	if tn.State().Adjusts != before {
		t.Fatal("adjusted while pinned against the bounds")
	}
}

// TestReversalNeedsTwoTicks is the anti-oscillation contract: after an
// applied write-side move, a single read-heavy window holds; only the
// second consecutive one reverses.
func TestReversalNeedsTwoTicks(t *testing.T) {
	tn := New(testConfig())
	drive(t, tn, 100, 3, writeHeavy) // applied +1
	s := tn.State().LastSignals

	s = readHeavy(s)
	if _, changed := tn.Tick(1000, s); changed {
		t.Fatal("single opposite window reversed the controller")
	}
	if tn.State().SignFlips != 0 {
		t.Fatal("flip counted before the move was applied")
	}
	s = readHeavy(s)
	if _, changed := tn.Tick(1010, s); !changed {
		t.Fatal("second consecutive opposite window did not apply")
	}
	st := tn.State()
	if st.SignFlips != 1 || st.Direction != -1 {
		t.Fatalf("flips=%d dir=%d", st.SignFlips, st.Direction)
	}
}

// TestStrictAlternationNeverMoves: a signal that flips sign every
// window can never satisfy the two-consecutive-ticks confirmation, so
// the controller holds forever — the oscillation bound at its extreme.
func TestStrictAlternationNeverMoves(t *testing.T) {
	tn := New(testConfig())
	tn.Tick(100, Signals{})
	s := Signals{}
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			s = writeHeavy(s)
		} else {
			s = readHeavy(s)
		}
		if _, changed := tn.Tick(types.Timestamp(110+10*i), s); changed {
			t.Fatalf("alternating signal applied a move at tick %d", i)
		}
	}
	if st := tn.State(); st.Adjusts != 0 || st.SignFlips != 0 {
		t.Fatalf("adjusts=%d flips=%d", st.Adjusts, st.SignFlips)
	}
}

// TestClampedNeverChanges pins every knob (min == max == static): the
// controller still ticks and reports pressure, but never emits a
// change — the bit-equivalence precondition the root equivalence test
// builds on.
func TestClampedNeverChanges(t *testing.T) {
	cfg := testConfig()
	cfg.Limits = Limits{
		Interval:             10,
		MinFlushFraction:     cfg.FlushFraction,
		MaxFlushFraction:     cfg.FlushFraction,
		MinWatermarkFraction: 1.0,
		MaxWatermarkFraction: 1.0,
		MinCacheBytes:        cfg.CacheBytes,
		MaxCacheBytes:        cfg.CacheBytes,
	}
	tn := New(cfg)
	s := Signals{}
	for i := 0; i < 30; i++ {
		if i < 15 {
			s = writeHeavy(s)
		} else {
			s = readHeavy(s)
		}
		if d, changed := tn.Tick(types.Timestamp(100+10*i), s); changed {
			t.Fatalf("clamped tuner changed targets at tick %d: %+v", i, d)
		}
	}
	st := tn.State()
	if st.Adjusts != 0 {
		t.Fatalf("clamped tuner recorded %d adjustments", st.Adjusts)
	}
	if st.FlushFraction != cfg.FlushFraction || st.WatermarkBytes != cfg.MemoryBudget || st.CacheBytes != cfg.CacheBytes {
		t.Fatalf("clamped tuner drifted: %+v", st)
	}
	if st.Ticks != 30 {
		t.Fatalf("ticks %d", st.Ticks)
	}
}
