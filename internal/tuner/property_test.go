package tuner

import (
	"testing"

	"kflushing/internal/types"
)

// checkInvariants asserts, between two consecutive State snapshots, the
// three documented controller invariants plus the per-tick step bound:
//
//  1. every knob within its bounds,
//  2. watermark + cache within the static envelope,
//  3. no knob moved by more than one step,
//  4. an applied move never has the opposite sign of the previous
//     applied move on the immediately following tick.
func checkInvariants(t *testing.T, tn *Tuner, prev, cur State, prevTickDir int, changed bool) {
	t.Helper()
	l := cur.Limits
	if cur.FlushFraction < l.MinFlushFraction-1e-9 || cur.FlushFraction > l.MaxFlushFraction+1e-9 {
		t.Fatalf("B %v outside [%v, %v]", cur.FlushFraction, l.MinFlushFraction, l.MaxFlushFraction)
	}
	minWm := int64(l.MinWatermarkFraction * float64(tn.cfg.MemoryBudget))
	maxWm := int64(l.MaxWatermarkFraction * float64(tn.cfg.MemoryBudget))
	if cur.WatermarkBytes < minWm || cur.WatermarkBytes > maxWm {
		t.Fatalf("watermark %d outside [%d, %d]", cur.WatermarkBytes, minWm, maxWm)
	}
	if cur.CacheBytes < l.MinCacheBytes || cur.CacheBytes > l.MaxCacheBytes {
		t.Fatalf("cache %d outside [%d, %d]", cur.CacheBytes, l.MinCacheBytes, l.MaxCacheBytes)
	}
	if cur.WatermarkBytes+cur.CacheBytes > tn.Envelope() {
		t.Fatalf("envelope exceeded: %d+%d > %d", cur.WatermarkBytes, cur.CacheBytes, tn.Envelope())
	}
	stepB := l.Step*(l.MaxFlushFraction-l.MinFlushFraction) + 1e-9
	if d := cur.FlushFraction - prev.FlushFraction; d > stepB || d < -stepB {
		t.Fatalf("B moved %v in one tick (step %v)", d, stepB)
	}
	stepBytes := int64(l.Step * float64(tn.cfg.MemoryBudget))
	if stepBytes < 1 {
		stepBytes = 1
	}
	if d := cur.WatermarkBytes - prev.WatermarkBytes; d > stepBytes || d < -stepBytes {
		t.Fatalf("watermark moved %d in one tick (step %d)", d, stepBytes)
	}
	if d := cur.CacheBytes - prev.CacheBytes; d > stepBytes || d < -stepBytes {
		t.Fatalf("cache moved %d in one tick (step %d)", d, stepBytes)
	}
	// prevTickDir is the direction the IMMEDIATELY preceding tick
	// applied (0 if it held): a reversal straight after a move is the
	// oscillation the two-tick confirmation forbids. Reversals after at
	// least one intervening hold are legal.
	if changed && prevTickDir != 0 && cur.Direction == -prevTickDir {
		t.Fatal("opposite-direction move applied on the tick immediately after the previous move")
	}
}

// splitmix64 is the deterministic generator the fuzz driver expands its
// seed with; no math/rand so the corpus replays bit-identically.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fuzzConfigs are the limit shapes the signal fuzz runs under: the
// defaults, a tight envelope, a pinned (clamped) controller, and a
// cache-disabled one.
func fuzzConfigs() []Config {
	base := Config{MemoryBudget: 1 << 20, FlushFraction: 0.1, CacheBytes: 256 << 10, Limits: Limits{Interval: 10}}
	tight := base
	tight.Limits = Limits{
		Interval: 10, Step: 0.25, Deadband: 0.05,
		MinFlushFraction: 0.1, MaxFlushFraction: 0.4,
		MinWatermarkFraction: 0.6, MaxWatermarkFraction: 1.0,
		MinCacheBytes: 128 << 10, MaxCacheBytes: 512 << 10,
	}
	clamped := base
	clamped.Limits = Limits{
		Interval:         10,
		MinFlushFraction: 0.1, MaxFlushFraction: 0.1,
		MinWatermarkFraction: 1.0, MaxWatermarkFraction: 1.0,
		MinCacheBytes: 256 << 10, MaxCacheBytes: 256 << 10,
	}
	nocache := base
	nocache.CacheBytes = 0
	return []Config{base, tight, clamped, nocache}
}

// runSignalStream feeds ticks derived from seed and checks every
// invariant after every tick. Cumulative counters are built by adding
// non-negative deltas, like the engine's real registries.
func runSignalStream(t *testing.T, cfg Config, seed uint64, ticks int) {
	t.Helper()
	tn := New(cfg)
	// Judge clamping on the normalized limits: all-zero inputs select
	// the wide defaults, not a pinned controller.
	nl := tn.State().Limits
	clamped := nl.MinFlushFraction == nl.MaxFlushFraction &&
		nl.MinWatermarkFraction == nl.MaxWatermarkFraction &&
		nl.MinCacheBytes == nl.MaxCacheBytes
	var s Signals
	now := int64(100)
	prev := tn.State()
	prevTickDir := 0
	for i := 0; i < ticks; i++ {
		// Deltas in [0, 1023] ns per window, with occasional idle and
		// occasional one-sided extremes so every branch is reachable.
		r := splitmix64(&seed)
		wd, rd := int64(r&1023), int64((r>>10)&1023)
		switch (r >> 60) & 7 {
		case 0:
			wd, rd = 0, 0 // idle window
		case 1:
			rd = 0 // pure write pressure
		case 2:
			wd = 0 // pure read pressure
		}
		s.Flushes++
		s.FlushNanos += wd
		s.Misses++
		s.MissNanos += rd
		s.Ingested += int64(r & 255)
		d, changed := tn.Tick(types.Timestamp(now), s)
		if !d.Ticked {
			t.Fatalf("tick %d not due", i)
		}
		if clamped && changed {
			t.Fatalf("clamped controller emitted a change at tick %d", i)
		}
		cur := tn.State()
		checkInvariants(t, tn, prev, cur, prevTickDir, changed)
		prevTickDir = 0
		if changed {
			prevTickDir = d.Direction
		}
		prev = cur
		now += cfg.Limits.Interval + int64(r>>61) // jittered but always due
	}
	st := tn.State()
	if st.Ticks != int64(ticks) || st.Adjusts+st.Holds != st.Ticks {
		t.Fatalf("counters: ticks=%d adjusts=%d holds=%d", st.Ticks, st.Adjusts, st.Holds)
	}
}

// TestControllerInvariantsUnderRandomSignals is the deterministic
// property battery: 64 seeded streams per limit shape.
func TestControllerInvariantsUnderRandomSignals(t *testing.T) {
	for ci, cfg := range fuzzConfigs() {
		for seed := uint64(0); seed < 64; seed++ {
			runSignalStream(t, cfg, seed*2654435761+uint64(ci), 200)
		}
	}
}

// FuzzTick lets the fuzzer hunt for signal sequences that violate the
// controller invariants under every limit shape.
func FuzzTick(f *testing.F) {
	f.Add(uint64(1), uint8(50))
	f.Add(uint64(0xdeadbeef), uint8(200))
	f.Add(uint64(42), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, ticks uint8) {
		n := int(ticks)%256 + 1
		for _, cfg := range fuzzConfigs() {
			runSignalStream(t, cfg, seed, n)
		}
	})
}
