// Package spatial implements the uniform grid index keying used for the
// paper's spatial attribute experiments (Section V-D): the world is
// partitioned into equal-area tiles of 4 mi² (2 mi × 2 mi), and a
// location query asks for the most recent k microblogs posted inside one
// tile.
package spatial

import (
	"fmt"
	"math"
)

// Cell identifies one grid tile. Cells are comparable and serve directly
// as index keys.
type Cell struct {
	Row, Col int32
}

// String renders the cell for logs and the disk directory.
func (c Cell) String() string { return fmt.Sprintf("cell(%d,%d)", c.Row, c.Col) }

// Grid maps latitude/longitude coordinates onto tiles. A Grid is
// immutable after construction and safe for concurrent use.
type Grid struct {
	tileDeg float64 // tile edge length in degrees of latitude
	minLat  float64
	minLon  float64
	rows    int32
	cols    int32
}

const (
	// milesPerDegree approximates one degree of latitude in miles.
	milesPerDegree = 69.0
	// DefaultTileMiles is the tile edge used in the paper (4 mi² tiles).
	DefaultTileMiles = 2.0
)

// NewGrid builds a grid covering [minLat,maxLat] × [minLon,maxLon] with
// square tiles whose edge is tileMiles miles at the equator-scaled
// latitude approximation. Coordinates outside the bounds are clamped to
// the border tiles.
func NewGrid(minLat, maxLat, minLon, maxLon, tileMiles float64) *Grid {
	if tileMiles <= 0 {
		tileMiles = DefaultTileMiles
	}
	deg := tileMiles / milesPerDegree
	rows := int32(math.Ceil((maxLat - minLat) / deg))
	cols := int32(math.Ceil((maxLon - minLon) / deg))
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	return &Grid{tileDeg: deg, minLat: minLat, minLon: minLon, rows: rows, cols: cols}
}

// DefaultGrid covers the continental United States with 4 mi² tiles,
// matching the paper's spatial setup on US-centric Twitter data.
func DefaultGrid() *Grid {
	return NewGrid(24.0, 50.0, -125.0, -66.0, DefaultTileMiles)
}

// CellOf returns the tile containing the given coordinates.
func (g *Grid) CellOf(lat, lon float64) Cell {
	r := int32((lat - g.minLat) / g.tileDeg)
	c := int32((lon - g.minLon) / g.tileDeg)
	if r < 0 {
		r = 0
	}
	if r >= g.rows {
		r = g.rows - 1
	}
	if c < 0 {
		c = 0
	}
	if c >= g.cols {
		c = g.cols - 1
	}
	return Cell{Row: r, Col: c}
}

// Center returns the coordinates of the tile's center point.
func (g *Grid) Center(c Cell) (lat, lon float64) {
	return g.minLat + (float64(c.Row)+0.5)*g.tileDeg,
		g.minLon + (float64(c.Col)+0.5)*g.tileDeg
}

// CellsWithin returns the tiles whose centers lie within radiusMiles of
// (lat, lon), always including the tile containing the point itself.
// The result drives radius queries: an OR query over the returned tiles.
func (g *Grid) CellsWithin(lat, lon, radiusMiles float64) []Cell {
	center := g.CellOf(lat, lon)
	if radiusMiles <= 0 {
		return []Cell{center}
	}
	span := int32(radiusMiles/(g.tileDeg*milesPerDegree)) + 1
	out := []Cell{center}
	for dr := -span; dr <= span; dr++ {
		for dc := -span; dc <= span; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			r, c := center.Row+dr, center.Col+dc
			if r < 0 || r >= g.rows || c < 0 || c >= g.cols {
				continue
			}
			cell := Cell{Row: r, Col: c}
			clat, clon := g.Center(cell)
			dy := (clat - lat) * milesPerDegree
			dx := (clon - lon) * milesPerDegree
			if dy*dy+dx*dx <= radiusMiles*radiusMiles {
				out = append(out, cell)
			}
		}
	}
	return out
}

// Rows returns the number of tile rows.
func (g *Grid) Rows() int32 { return g.rows }

// Cols returns the number of tile columns.
func (g *Grid) Cols() int32 { return g.cols }

// Cells returns the total number of tiles.
func (g *Grid) Cells() int64 { return int64(g.rows) * int64(g.cols) }
