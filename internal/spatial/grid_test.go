package spatial

import (
	"testing"
	"testing/quick"
)

func TestCellOfRoundTripsThroughCenter(t *testing.T) {
	g := DefaultGrid()
	f := func(latRaw, lonRaw uint16) bool {
		lat := 24 + float64(latRaw)/65535*26
		lon := -125 + float64(lonRaw)/65535*59
		c := g.CellOf(lat, lon)
		clat, clon := g.Center(c)
		return g.CellOf(clat, clon) == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClampOutOfBounds(t *testing.T) {
	g := DefaultGrid()
	if c := g.CellOf(-90, -500); c.Row != 0 || c.Col != 0 {
		t.Fatalf("underflow not clamped: %v", c)
	}
	c := g.CellOf(90, 500)
	if c.Row != g.Rows()-1 || c.Col != g.Cols()-1 {
		t.Fatalf("overflow not clamped: %v", c)
	}
}

func TestTileSizeMatchesPaper(t *testing.T) {
	// 2-mile tiles: adjacent points within ~1 mile of a tile center
	// share the tile.
	g := DefaultGrid()
	lat, lon := 40.0, -90.0
	c := g.CellOf(lat, lon)
	clat, clon := g.Center(c)
	nearby := g.CellOf(clat+0.01, clon+0.01) // ~0.7 miles away
	if nearby != c {
		t.Fatalf("nearby point in different tile: %v vs %v", nearby, c)
	}
	far := g.CellOf(clat+0.1, clon) // ~7 miles away
	if far == c {
		t.Fatal("far point in same tile")
	}
}

func TestDegenerateGrid(t *testing.T) {
	g := NewGrid(10, 10, 20, 20, 0) // zero-area bounds, default tile
	if g.Rows() < 1 || g.Cols() < 1 {
		t.Fatal("degenerate grid has no tiles")
	}
	_ = g.CellOf(10, 20)
}

func TestCellsCount(t *testing.T) {
	g := NewGrid(0, 1, 0, 1, 69.0/2) // tileDeg = 0.5° → 2x2
	if g.Cells() != 4 {
		t.Fatalf("Cells = %d, want 4", g.Cells())
	}
}

func TestCellString(t *testing.T) {
	if s := (Cell{Row: 3, Col: 7}).String(); s != "cell(3,7)" {
		t.Fatalf("String = %q", s)
	}
}

func TestCellsWithin(t *testing.T) {
	g := DefaultGrid()
	lat, lon := 40.0, -90.0
	center := g.CellOf(lat, lon)

	// Zero radius: just the containing tile.
	got := g.CellsWithin(lat, lon, 0)
	if len(got) != 1 || got[0] != center {
		t.Fatalf("zero radius: %v", got)
	}

	// 5-mile radius: multiple tiles, all within distance, center first.
	got = g.CellsWithin(lat, lon, 5)
	if len(got) < 5 {
		t.Fatalf("5mi radius returned only %d tiles", len(got))
	}
	if got[0] != center {
		t.Fatal("center tile not first")
	}
	seen := map[Cell]bool{}
	for _, c := range got {
		if seen[c] {
			t.Fatalf("duplicate tile %v", c)
		}
		seen[c] = true
		clat, clon := g.Center(c)
		dy := (clat - lat) * milesPerDegree
		dx := (clon - lon) * milesPerDegree
		if c != center && dy*dy+dx*dx > 25+1e-9 {
			t.Fatalf("tile %v center %.1f miles away", c, dy*dy+dx*dx)
		}
	}

	// A bigger radius strictly grows the coverage.
	if len(g.CellsWithin(lat, lon, 10)) <= len(got) {
		t.Fatal("larger radius did not grow coverage")
	}
}

func TestCellsWithinClampsAtBorders(t *testing.T) {
	g := DefaultGrid()
	got := g.CellsWithin(24.0, -125.0, 20) // grid corner
	for _, c := range got {
		if c.Row < 0 || c.Col < 0 || c.Row >= g.Rows() || c.Col >= g.Cols() {
			t.Fatalf("out-of-grid tile %v", c)
		}
	}
}
