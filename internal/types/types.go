// Package types defines the microblog data model shared by every
// subsystem: the record itself, its identifier, and timestamps.
//
// A Microblog models one item of a high-rate social stream (a tweet, a
// review, a check-in). The fields mirror the attributes the paper's
// queries search on: keywords (hashtags), a posting user, and a point
// location, plus the arrival timestamp that drives temporal ranking.
package types

import (
	"fmt"
	"strings"
)

// ID uniquely identifies a microblog within one system instance.
// IDs are assigned by the ingestion path in strictly increasing order,
// so comparing IDs also compares arrival order.
type ID uint64

// Timestamp is a logical or wall-clock time in microseconds. The unit is
// opaque to all algorithms; only ordering matters.
type Timestamp int64

// Microblog is a single immutable stream record. After ingestion the
// record is shared between the raw data store, index postings, and the
// flush pipeline, and must not be mutated.
type Microblog struct {
	// ID is assigned at ingestion; zero before the record is ingested.
	ID ID
	// Timestamp is the arrival time used by the temporal ranking
	// function ("most recent first").
	Timestamp Timestamp
	// UserID identifies the posting user (user-timeline attribute).
	UserID uint64
	// Followers is the posting user's follower count, used by
	// popularity ranking functions.
	Followers uint32
	// Lat and Lon are the posting location in degrees (spatial
	// attribute). Records with no location carry NaN-free zero values
	// and HasLocation reports false.
	Lat, Lon float64
	// HasGeo reports whether Lat/Lon carry a real location.
	HasGeo bool
	// Keywords are the searchable keywords (hashtags in the paper's
	// evaluation). May be empty; such records are only reachable via
	// the user and spatial attributes.
	Keywords []string
	// Text is the raw body, kept verbatim in the raw data store.
	Text string
}

// Clone returns a deep copy of m. It is used by ingestion so callers may
// reuse their input buffers.
func (m *Microblog) Clone() *Microblog {
	c := *m
	if len(m.Keywords) > 0 {
		c.Keywords = make([]string, len(m.Keywords))
		copy(c.Keywords, m.Keywords)
	}
	return &c
}

// String returns a compact human-readable rendering, for logs and
// examples.
func (m *Microblog) String() string {
	return fmt.Sprintf("mb(%d t=%d u=%d kw=[%s])", m.ID, m.Timestamp, m.UserID, strings.Join(m.Keywords, ","))
}
