package types

import (
	"strings"
	"testing"
)

func TestCloneIsDeep(t *testing.T) {
	m := &Microblog{
		ID:        1,
		Timestamp: 2,
		UserID:    3,
		Keywords:  []string{"a", "b"},
		Text:      "body",
	}
	c := m.Clone()
	if c == m {
		t.Fatal("Clone returned the same pointer")
	}
	c.Keywords[0] = "mutated"
	if m.Keywords[0] != "a" {
		t.Fatal("Clone shares the keyword slice")
	}
	if c.ID != m.ID || c.Text != m.Text || c.UserID != m.UserID {
		t.Fatal("Clone lost fields")
	}
}

func TestCloneEmptyKeywords(t *testing.T) {
	m := &Microblog{ID: 1}
	c := m.Clone()
	if c.Keywords != nil {
		t.Fatal("empty keywords must stay nil")
	}
}

func TestString(t *testing.T) {
	m := &Microblog{ID: 7, Timestamp: 9, UserID: 3, Keywords: []string{"x", "y"}}
	s := m.String()
	for _, want := range []string{"7", "9", "3", "x,y"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
}
