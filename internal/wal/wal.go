// Package wal provides write-ahead logging and snapshotting for the
// in-memory contents of an engine.
//
// The paper's system model keeps recent microblogs only in memory until
// a flush moves them to disk; a crash would lose everything since the
// last flush. A production store needs better: every ingested record is
// appended to a log before it is acknowledged, and on restart the log
// is replayed to rebuild memory. A snapshot (written on graceful
// shutdown) compacts the log so recovery stays fast.
//
// Files live in one directory:
//
//	snapshot.kfw   — optional; all memory-resident records at snapshot
//	wal-XXXXXXXX.kfw — appended segments of the log, rotated by size
//
// Record framing: u32 payload length | u32 CRC32C of payload | payload,
// where the payload is the disk tier's record encoding (it already
// carries the assigned ID, timestamp and ranking score). A torn final
// record — the expected crash artifact — is detected by the CRC/length
// check and replay stops there; corruption in the middle of the log is
// reported as an error.
package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kflushing/internal/blackbox"
	"kflushing/internal/disk"
	"kflushing/internal/failpoint"
)

// walCommitLabels attributes the group-commit slow path (fsync,
// rotation) to the WAL in CPU profiles. The per-append fast path stays
// unlabeled: labeling allocates, and appends are the 0-alloc hot path.
var walCommitLabels = pprof.Labels("kflushing", "wal-group-commit")

const (
	fileMagic    = "KFWL"
	fileVersion  = 1
	headerSize   = 6 // magic + u16 version
	snapshotName = "snapshot.kfw"
)

// ErrCorrupt reports log corruption before the final record.
var ErrCorrupt = errors.New("wal: corrupt log")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encodeBufs recycles AppendBatch encode buffers across calls when
// Options.PooledBuffers is set. Buffers are only handed to File.Write,
// which does not retain them.
var encodeBufs = sync.Pool{New: func() any { return new([]byte) }}

// Options tunes a Log.
type Options struct {
	// MaxFileBytes rotates the active file when it exceeds this size;
	// 0 selects 16 MiB.
	MaxFileBytes int64
	// SyncEvery fsyncs after this many appends; 0 relies on OS
	// buffering (fsync still happens on rotation and close).
	SyncEvery int
	// PooledBuffers reuses the per-batch encode buffer across
	// AppendBatch calls via a sync.Pool instead of allocating each time
	// (AllocPolicy=pooled).
	PooledBuffers bool
	// Recorder, when non-nil, receives append/sync/rotate events on the
	// engine's flight recorder. Recording is allocation-free.
	Recorder *blackbox.Recorder
}

// Log is an append-only write-ahead log. Append and AppendBatch are safe
// for concurrent use; Replay/Snapshot/Reset must not run concurrently
// with appends.
type Log struct {
	dir string
	opt Options

	mu        sync.Mutex
	f         *os.File
	seq       int
	bytes     int64
	sinceSync int

	appended atomic.Int64
}

// Open creates or reopens a log directory.
func Open(dir string, opt Options) (*Log, error) {
	if opt.MaxFileBytes <= 0 {
		opt.MaxFileBytes = 16 << 20
	}
	if err := failpoint.Eval(failpoint.WALOpenMkdir); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// A crash during WriteSnapshot can leave a half-written temp file;
	// it was never renamed into place, so it holds nothing durable.
	// Removal failure is harmless — the next snapshot recreates it.
	_ = os.Remove(filepath.Join(dir, snapshotName+".tmp"))
	l := &Log{dir: dir, opt: opt}
	// Continue after the newest existing file.
	files, err := l.logFiles()
	if err != nil {
		return nil, err
	}
	if len(files) > 0 {
		fmt.Sscanf(filepath.Base(files[len(files)-1]), "wal-%08d.kfw", &l.seq)
	}
	if err := l.rotateLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// logFiles returns the wal files oldest-first.
func (l *Log) logFiles() ([]string, error) {
	files, err := filepath.Glob(filepath.Join(l.dir, "wal-*.kfw"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

// rotateLocked seals the active file and starts a new one. Callers must
// hold l.mu (or own the log exclusively).
func (l *Log) rotateLocked() error {
	rotated := l.bytes
	start := time.Now()
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	if err := failpoint.Eval(failpoint.WALRotateSeal); err != nil {
		return err
	}
	l.seq++
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%08d.kfw", l.seq))
	if err := failpoint.Eval(failpoint.WALRotateCreate); err != nil {
		l.seq--
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		l.seq--
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint16(hdr[4:], fileVersion)
	whdr, fperr := failpoint.EvalWrite(failpoint.WALRotateHeader, hdr[:])
	if _, err := f.Write(whdr); err != nil {
		// The header write already failed; the Write error is the one
		// to surface, not the cleanup's.
		_ = f.Close()
		return err
	}
	if fperr != nil {
		_ = f.Close()
		return fperr
	}
	l.f = f
	l.bytes = headerSize
	l.sinceSync = 0
	l.opt.Recorder.Record(blackbox.SubWAL, blackbox.EvWALRotate,
		int64(l.seq), rotated, time.Since(start).Nanoseconds())
	return nil
}

// Append durably records one ingested microblog: a group commit of one.
func (l *Log) Append(fr disk.FlushRecord) error {
	return l.AppendBatch([]disk.FlushRecord{fr})
}

// AppendBatch group-commits a batch of ingested microblogs: every frame
// is encoded outside the lock into one contiguous buffer, then the whole
// batch is written under a single lock acquisition with a single Write
// call — one syscall instead of two per record, which is what lets
// batched ingestion keep up with high-rate streams.
func (l *Log) AppendBatch(frs []disk.FlushRecord) error {
	if len(frs) == 0 {
		return nil
	}
	start := time.Now()
	var buf []byte
	if l.opt.PooledBuffers {
		pb := encodeBufs.Get().(*[]byte)
		defer func() {
			*pb = buf[:0]
			encodeBufs.Put(pb)
		}()
		buf = (*pb)[:0]
		if cap(buf) < 96*len(frs) {
			buf = make([]byte, 0, 96*len(frs))
		}
	} else {
		buf = make([]byte, 0, 96*len(frs))
	}
	for _, fr := range frs {
		start := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
		buf = disk.EncodeRecord(buf, fr)
		payload := buf[start+8:]
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	}
	if err := failpoint.Eval(failpoint.WALAppend); err != nil {
		return err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	// A torn-write failpoint shortens wbuf: the partial frame really
	// lands in the file — the exact artifact a crash mid-write leaves.
	// Any failed or partial append is rolled back to the pre-write
	// offset; otherwise the next successful append would bury a torn
	// frame mid-file, which replay correctly refuses to tolerate.
	wbuf, fperr := failpoint.EvalWrite(failpoint.WALAppendWrite, buf)
	if n, err := l.f.Write(wbuf); err != nil {
		if n > 0 {
			l.rollbackTailLocked()
		}
		return err
	}
	if fperr != nil {
		l.rollbackTailLocked()
		return fperr
	}
	if err := failpoint.Eval(failpoint.WALAppendAfterWrite); err != nil {
		// The frames are fully written and valid: leave them. Replay
		// may resurrect the unacknowledged batch (at-least-once), which
		// recovery deduplicates; truncating valid frames would risk the
		// opposite — dropping data a concurrent reader saw acked.
		l.bytes += int64(len(buf))
		return err
	}
	l.bytes += int64(len(buf))
	l.appended.Add(int64(len(frs)))
	l.sinceSync += len(frs)
	l.opt.Recorder.Record(blackbox.SubWAL, blackbox.EvWALAppend,
		int64(len(frs)), int64(len(buf)), time.Since(start).Nanoseconds())
	if l.opt.SyncEvery > 0 && l.sinceSync >= l.opt.SyncEvery {
		// The fsync is the group-commit slow path: label it so CPU
		// profiles attribute the stall to the WAL, and record the event.
		frames := l.sinceSync
		var serr error
		pprof.Do(context.Background(), walCommitLabels, func(context.Context) {
			if serr = failpoint.Eval(failpoint.WALSync); serr != nil {
				return
			}
			syncStart := time.Now()
			if serr = l.f.Sync(); serr != nil {
				return
			}
			l.opt.Recorder.Record(blackbox.SubWAL, blackbox.EvWALSync,
				int64(frames), l.bytes, time.Since(syncStart).Nanoseconds())
		})
		if serr != nil {
			return serr
		}
		l.sinceSync = 0
	}
	if l.bytes >= l.opt.MaxFileBytes {
		var rerr error
		pprof.Do(context.Background(), walCommitLabels, func(context.Context) {
			rerr = l.rotateLocked()
		})
		return rerr
	}
	return nil
}

// rollbackTailLocked truncates the active file back to the last
// committed offset after a failed or partial append, so the garbage
// tail is never buried under later appends. If even the truncate fails
// the file is sealed: appends then fail fast ("wal: closed") instead of
// silently corrupting the log.
func (l *Log) rollbackTailLocked() {
	if l.f == nil {
		return
	}
	err := failpoint.Eval(failpoint.WALRollbackTruncate)
	if err == nil {
		err = l.f.Truncate(l.bytes)
	}
	if err != nil {
		slog.Error("wal: cannot roll back partial append; sealing active file",
			"offset", l.bytes, "err", err)
		_ = l.f.Close() // the Truncate error is the one that matters
		l.f = nil
	}
}

// Appended returns the number of records appended by this process.
func (l *Log) Appended() int64 { return l.appended.Load() }

// CheckAppendable verifies the log can still accept appends: the active
// file must be open and syncable. It is the WAL half of the /readyz
// readiness probe — a full disk or revoked file handle fails the sync.
func (l *Log) CheckAppendable() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	if err := failpoint.Eval(failpoint.WALReadySync); err != nil {
		return fmt.Errorf("wal: active file not syncable: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: active file not syncable: %w", err)
	}
	return nil
}

// Sync forces the active file to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := failpoint.Eval(failpoint.WALSync); err != nil {
		return err
	}
	return l.f.Sync()
}

// Replay streams every surviving record — the snapshot first (if any),
// then the log files in order — to fn.
//
// Tolerance matches what crashes actually produce: a truncated frame at
// the END of any file is accepted (a crash tears the tail of whichever
// file was active; reopening rotates to a new file, so the torn one
// need not be the newest). A failed checksum inside a complete frame is
// tolerated only in the newest file (a partially overwritten final
// frame); anywhere else it is real corruption and returns ErrCorrupt.
//
// Tolerated torn tails are physically truncated away (with a logged
// warning). That is load-bearing, not cosmetic: a torn tail left in
// place stops being "the end of the file" once the log grows or
// rotates, and the next recovery would refuse it as mid-log corruption.
func (l *Log) Replay(fn func(disk.FlushRecord) error) error {
	if _, err := replayFile(filepath.Join(l.dir, snapshotName), false, fn); err != nil && !os.IsNotExist(err) {
		return err
	}
	files, err := l.logFiles()
	if err != nil {
		return err
	}
	// The file that may carry an unsynced crash tail is the newest one
	// holding any payload — NOT necessarily the last file: Open rotates
	// to a fresh (header-only) file before Replay runs, and that empty
	// file sits after the one that was active when the process died.
	tail := crashTailIndex(files)
	for i, path := range files {
		valid, err := replayFile(path, i == tail, fn)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return err
		}
		if err := truncateTornTail(path, valid, l.activePath()); err != nil {
			return err
		}
	}
	return nil
}

// crashTailIndex returns the index of the newest file with payload
// beyond the header — the file that was active at crash time — or the
// last index when every file is empty.
func crashTailIndex(files []string) int {
	for i := len(files) - 1; i >= 0; i-- {
		if st, err := os.Stat(files[i]); err == nil && st.Size() > headerSize {
			return i
		}
	}
	return len(files) - 1
}

// activePath returns the path of the open log file, or "" when sealed.
func (l *Log) activePath() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return ""
	}
	return l.f.Name()
}

// truncateTornTail cuts path down to valid bytes when replay found a
// tolerated torn tail beyond that point. The active file is skipped:
// the Log's own write offset tracks it, and appends land after the
// header anyway (Open always rotates to a fresh file before Replay
// runs, so in practice torn files are never the active one).
func truncateTornTail(path string, valid int64, activePath string) error {
	if path == activePath {
		return nil
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() <= valid {
		return err
	}
	slog.Warn("wal: truncating torn tail",
		"file", filepath.Base(path), "valid_bytes", valid, "torn_bytes", st.Size()-valid)
	if err := failpoint.Eval(failpoint.WALReplayTruncate); err != nil {
		return err
	}
	return os.Truncate(path, valid)
}

// replayFile reads one framed file and reports the byte length of the
// valid prefix it replayed. Truncation at EOF is always tolerated;
// complete-but-invalid frames only when lastFile is set. A tolerated
// torn tail yields (valid-prefix, nil) with the tail NOT replayed; the
// caller is expected to truncate the file to that length.
func replayFile(path string, lastFile bool, fn func(disk.FlushRecord) error) (int64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(b) < headerSize || string(b[:4]) != fileMagic {
		if len(b) < headerSize {
			return 0, nil // torn before the header was complete
		}
		return 0, fmt.Errorf("%w: bad header in %s", ErrCorrupt, filepath.Base(path))
	}
	pos := headerSize
	for pos < len(b) {
		if pos+8 > len(b) {
			// Truncated frame header at EOF: the expected crash artifact.
			slog.Warn("wal: tolerating torn frame header at end of file",
				"file", filepath.Base(path), "offset", pos)
			return int64(pos), nil
		}
		n := int(binary.LittleEndian.Uint32(b[pos:]))
		crc := binary.LittleEndian.Uint32(b[pos+4:])
		if n < 0 || pos+8+n > len(b) {
			slog.Warn("wal: tolerating torn payload at end of file",
				"file", filepath.Base(path), "offset", pos)
			return int64(pos), nil
		}
		payload := b[pos+8 : pos+8+n]
		if crc32.Checksum(payload, crcTable) != crc {
			if lastFile {
				slog.Warn("wal: tolerating bad checksum in final frame",
					"file", filepath.Base(path), "offset", pos)
				return int64(pos), nil
			}
			return int64(pos), fmt.Errorf("%w: bad checksum in %s", ErrCorrupt, filepath.Base(path))
		}
		fr, used, err := disk.DecodeRecord(payload)
		if err != nil || used != n {
			if lastFile {
				slog.Warn("wal: tolerating undecodable final frame",
					"file", filepath.Base(path), "offset", pos)
				return int64(pos), nil
			}
			return int64(pos), fmt.Errorf("%w: undecodable record in %s", ErrCorrupt, filepath.Base(path))
		}
		if err := fn(fr); err != nil {
			return int64(pos), err
		}
		pos += 8 + n
	}
	return int64(pos), nil
}

// WriteSnapshot atomically replaces the snapshot with the given records
// and deletes all sealed log files, restarting the log. Must not run
// concurrently with Append.
func (l *Log) WriteSnapshot(recs []disk.FlushRecord) error {
	tmp := filepath.Join(l.dir, snapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	// On any failure before the explicit Close, drop the handle; the
	// write/sync error is the one to surface, not the cleanup's.
	closed := false
	defer func() {
		if !closed {
			_ = f.Close()
		}
	}()
	buf := make([]byte, 0, headerSize+96*len(recs))
	buf = append(buf, fileMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, fileVersion)
	for _, fr := range recs {
		start := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
		buf = disk.EncodeRecord(buf, fr)
		payload := buf[start+8:]
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	}
	wbuf, fperr := failpoint.EvalWrite(failpoint.WALSnapshotWrite, buf)
	if _, err := f.Write(wbuf); err != nil {
		return err
	}
	if fperr != nil {
		return fperr
	}
	if err := failpoint.Eval(failpoint.WALSnapshotSync); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	closed = true
	if err := f.Close(); err != nil {
		return err
	}
	// The temp file is durable; until the rename lands the old snapshot
	// plus the sealed logs still describe the same state, so a crash on
	// either side of this point recovers identically.
	if err := failpoint.Eval(failpoint.WALSnapshotRename); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		return err
	}

	// The snapshot now covers everything; retire the old log and start
	// a fresh file. A crash before the removals finish merely leaves
	// log files whose records the snapshot already holds — replay
	// deduplicates them.
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			l.f = nil
			return err
		}
		l.f = nil
	}
	if err := failpoint.Eval(failpoint.WALSnapshotCleanup); err != nil {
		return err
	}
	files, err := l.logFiles()
	if err != nil {
		return err
	}
	for _, p := range files {
		if err := os.Remove(p); err != nil {
			return err
		}
	}
	return l.rotateLocked()
}

// Close seals the active file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := failpoint.Eval(failpoint.WALCloseSync); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	err := l.f.Close()
	l.f = nil
	return err
}
