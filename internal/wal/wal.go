// Package wal provides write-ahead logging and snapshotting for the
// in-memory contents of an engine.
//
// The paper's system model keeps recent microblogs only in memory until
// a flush moves them to disk; a crash would lose everything since the
// last flush. A production store needs better: every ingested record is
// appended to a log before it is acknowledged, and on restart the log
// is replayed to rebuild memory. A snapshot (written on graceful
// shutdown) compacts the log so recovery stays fast.
//
// Files live in one directory:
//
//	snapshot.kfw   — optional; all memory-resident records at snapshot
//	wal-XXXXXXXX.kfw — appended segments of the log, rotated by size
//
// Record framing: u32 payload length | u32 CRC32C of payload | payload,
// where the payload is the disk tier's record encoding (it already
// carries the assigned ID, timestamp and ranking score). A torn final
// record — the expected crash artifact — is detected by the CRC/length
// check and replay stops there; corruption in the middle of the log is
// reported as an error.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"kflushing/internal/disk"
)

const (
	fileMagic    = "KFWL"
	fileVersion  = 1
	headerSize   = 6 // magic + u16 version
	snapshotName = "snapshot.kfw"
)

// ErrCorrupt reports log corruption before the final record.
var ErrCorrupt = errors.New("wal: corrupt log")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Log.
type Options struct {
	// MaxFileBytes rotates the active file when it exceeds this size;
	// 0 selects 16 MiB.
	MaxFileBytes int64
	// SyncEvery fsyncs after this many appends; 0 relies on OS
	// buffering (fsync still happens on rotation and close).
	SyncEvery int
}

// Log is an append-only write-ahead log. Append and AppendBatch are safe
// for concurrent use; Replay/Snapshot/Reset must not run concurrently
// with appends.
type Log struct {
	dir string
	opt Options

	mu        sync.Mutex
	f         *os.File
	seq       int
	bytes     int64
	sinceSync int

	appended atomic.Int64
}

// Open creates or reopens a log directory.
func Open(dir string, opt Options) (*Log, error) {
	if opt.MaxFileBytes <= 0 {
		opt.MaxFileBytes = 16 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opt: opt}
	// Continue after the newest existing file.
	files, err := l.logFiles()
	if err != nil {
		return nil, err
	}
	if len(files) > 0 {
		fmt.Sscanf(filepath.Base(files[len(files)-1]), "wal-%08d.kfw", &l.seq)
	}
	if err := l.rotateLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// logFiles returns the wal files oldest-first.
func (l *Log) logFiles() ([]string, error) {
	files, err := filepath.Glob(filepath.Join(l.dir, "wal-*.kfw"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

// rotateLocked seals the active file and starts a new one. Callers must
// hold l.mu (or own the log exclusively).
func (l *Log) rotateLocked() error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
	}
	l.seq++
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%08d.kfw", l.seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint16(hdr[4:], fileVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		// The header write already failed; the Write error is the one
		// to surface, not the cleanup's.
		_ = f.Close()
		return err
	}
	l.f = f
	l.bytes = headerSize
	l.sinceSync = 0
	return nil
}

// Append durably records one ingested microblog: a group commit of one.
func (l *Log) Append(fr disk.FlushRecord) error {
	return l.AppendBatch([]disk.FlushRecord{fr})
}

// AppendBatch group-commits a batch of ingested microblogs: every frame
// is encoded outside the lock into one contiguous buffer, then the whole
// batch is written under a single lock acquisition with a single Write
// call — one syscall instead of two per record, which is what lets
// batched ingestion keep up with high-rate streams.
func (l *Log) AppendBatch(frs []disk.FlushRecord) error {
	if len(frs) == 0 {
		return nil
	}
	buf := make([]byte, 0, 96*len(frs))
	for _, fr := range frs {
		start := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
		buf = disk.EncodeRecord(buf, fr)
		payload := buf[start+8:]
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.bytes += int64(len(buf))
	l.appended.Add(int64(len(frs)))
	l.sinceSync += len(frs)
	if l.opt.SyncEvery > 0 && l.sinceSync >= l.opt.SyncEvery {
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.sinceSync = 0
	}
	if l.bytes >= l.opt.MaxFileBytes {
		return l.rotateLocked()
	}
	return nil
}

// Appended returns the number of records appended by this process.
func (l *Log) Appended() int64 { return l.appended.Load() }

// CheckAppendable verifies the log can still accept appends: the active
// file must be open and syncable. It is the WAL half of the /readyz
// readiness probe — a full disk or revoked file handle fails the sync.
func (l *Log) CheckAppendable() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return errors.New("wal: closed")
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: active file not syncable: %w", err)
	}
	return nil
}

// Sync forces the active file to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Replay streams every surviving record — the snapshot first (if any),
// then the log files in order — to fn.
//
// Tolerance matches what crashes actually produce: a truncated frame at
// the END of any file is accepted silently (a crash tears the tail of
// whichever file was active; reopening rotates to a new file, so the
// torn one need not be the newest). A failed checksum inside a complete
// frame is tolerated only in the newest file (a partially overwritten
// final frame); anywhere else it is real corruption and returns
// ErrCorrupt.
func (l *Log) Replay(fn func(disk.FlushRecord) error) error {
	if err := replayFile(filepath.Join(l.dir, snapshotName), false, fn); err != nil && !os.IsNotExist(err) {
		return err
	}
	files, err := l.logFiles()
	if err != nil {
		return err
	}
	for i, path := range files {
		last := i == len(files)-1
		if err := replayFile(path, last, fn); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// replayFile reads one framed file. Truncation at EOF is always
// tolerated; complete-but-invalid frames only when lastFile is set.
func replayFile(path string, lastFile bool, fn func(disk.FlushRecord) error) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) < headerSize || string(b[:4]) != fileMagic {
		if len(b) < headerSize {
			return nil // torn before the header was complete
		}
		return fmt.Errorf("%w: bad header in %s", ErrCorrupt, filepath.Base(path))
	}
	pos := headerSize
	for pos < len(b) {
		if pos+8 > len(b) {
			// Truncated frame header at EOF: the expected crash artifact.
			slog.Warn("wal: tolerating torn frame header at end of file",
				"file", filepath.Base(path), "offset", pos)
			return nil
		}
		n := int(binary.LittleEndian.Uint32(b[pos:]))
		crc := binary.LittleEndian.Uint32(b[pos+4:])
		pos += 8
		if pos+n > len(b) || n < 0 {
			slog.Warn("wal: tolerating torn payload at end of file",
				"file", filepath.Base(path), "offset", pos-8)
			return nil
		}
		payload := b[pos : pos+n]
		if crc32.Checksum(payload, crcTable) != crc {
			if lastFile {
				slog.Warn("wal: tolerating bad checksum in final frame",
					"file", filepath.Base(path), "offset", pos-8)
				return nil
			}
			return fmt.Errorf("%w: bad checksum in %s", ErrCorrupt, filepath.Base(path))
		}
		fr, used, err := disk.DecodeRecord(payload)
		if err != nil || used != n {
			if lastFile {
				slog.Warn("wal: tolerating undecodable final frame",
					"file", filepath.Base(path), "offset", pos-8)
				return nil
			}
			return fmt.Errorf("%w: undecodable record in %s", ErrCorrupt, filepath.Base(path))
		}
		if err := fn(fr); err != nil {
			return err
		}
		pos += n
	}
	return nil
}

// WriteSnapshot atomically replaces the snapshot with the given records
// and deletes all sealed log files, restarting the log. Must not run
// concurrently with Append.
func (l *Log) WriteSnapshot(recs []disk.FlushRecord) error {
	tmp := filepath.Join(l.dir, snapshotName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	// On any failure before the explicit Close, drop the handle; the
	// write/sync error is the one to surface, not the cleanup's.
	closed := false
	defer func() {
		if !closed {
			_ = f.Close()
		}
	}()
	var hdr [headerSize]byte
	copy(hdr[:4], fileMagic)
	binary.LittleEndian.PutUint16(hdr[4:], fileVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		return err
	}
	var frame [8]byte
	for _, fr := range recs {
		payload := disk.EncodeRecord(nil, fr)
		binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, crcTable))
		if _, err := f.Write(frame[:]); err != nil {
			return err
		}
		if _, err := f.Write(payload); err != nil {
			return err
		}
	}
	if err := f.Sync(); err != nil {
		return err
	}
	closed = true
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapshotName)); err != nil {
		return err
	}

	// The snapshot now covers everything; retire the old log and start
	// a fresh file.
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			l.f = nil
			return err
		}
		l.f = nil
	}
	files, err := l.logFiles()
	if err != nil {
		return err
	}
	for _, p := range files {
		if err := os.Remove(p); err != nil {
			return err
		}
	}
	return l.rotateLocked()
}

// Close seals the active file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	err := l.f.Close()
	l.f = nil
	return err
}
