package wal

import (
	"os"
	"path/filepath"
	"testing"

	"kflushing/internal/disk"
	"kflushing/internal/types"
)

func fr(id uint64, kws ...string) disk.FlushRecord {
	return disk.FlushRecord{
		MB: &types.Microblog{
			ID:        types.ID(id),
			Timestamp: types.Timestamp(id),
			Keywords:  kws,
			Text:      "payload",
		},
		Score: float64(id),
	}
}

func replayAll(t *testing.T, l *Log) []disk.FlushRecord {
	t.Helper()
	var out []disk.FlushRecord
	if err := l.Replay(func(r disk.FlushRecord) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		if err := l.Append(fr(i, "a", "b")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := replayAll(t, re)
	if len(recs) != 100 {
		t.Fatalf("replayed %d, want 100", len(recs))
	}
	for i, r := range recs {
		if uint64(r.MB.ID) != uint64(i+1) || r.MB.Text != "payload" || len(r.MB.Keywords) != 2 {
			t.Fatalf("record %d corrupted: %+v", i, r.MB)
		}
	}
}

func TestRotationBySize(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{MaxFileBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if err := l.Append(fr(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.kfw"))
	if len(files) < 3 {
		t.Fatalf("expected rotation, got %d files", len(files))
	}
	re, _ := Open(dir, Options{})
	defer re.Close()
	if got := len(replayAll(t, re)); got != 50 {
		t.Fatalf("replayed %d across rotated files, want 50", got)
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		if err := l.Append(fr(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Simulate a crash mid-write: chop bytes off the newest file.
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.kfw"))
	newest := files[len(files)-1]
	b, _ := os.ReadFile(newest)
	if err := os.WriteFile(newest, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := replayAll(t, re)
	if len(recs) != 9 {
		t.Fatalf("replayed %d after torn tail, want 9", len(recs))
	}
}

func TestCorruptMiddleRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{MaxFileBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 30; i++ {
		if err := l.Append(fr(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.kfw"))
	if len(files) < 3 {
		t.Skip("not enough rotation for a middle file")
	}
	// Flip a payload byte in the FIRST file: must be reported.
	b, _ := os.ReadFile(files[0])
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(files[0], b, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	err = re.Replay(func(disk.FlushRecord) error { return nil })
	if err == nil {
		t.Fatal("corrupt middle file not detected")
	}
}

func TestSnapshotCompactsLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		if err := l.Append(fr(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot keeps only records 15..20 ("memory contents").
	var snap []disk.FlushRecord
	for i := uint64(15); i <= 20; i++ {
		snap = append(snap, fr(i))
	}
	if err := l.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	// Appends continue after the snapshot.
	if err := l.Append(fr(21)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := replayAll(t, re)
	if len(recs) != 7 { // 6 snapshot + 1 post-snapshot append
		t.Fatalf("replayed %d, want 7", len(recs))
	}
	if recs[0].MB.ID != 15 || recs[6].MB.ID != 21 {
		t.Fatalf("replay order wrong: first=%d last=%d", recs[0].MB.ID, recs[6].MB.ID)
	}
}

func TestEmptyDirReplaysNothing(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := len(replayAll(t, l)); got != 0 {
		t.Fatalf("replayed %d from empty log", got)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append(fr(1)); err == nil {
		t.Fatal("append after close succeeded")
	}
}
