//go:build failpoint

package wal

import (
	"errors"
	"testing"

	"kflushing/internal/failpoint"
)

// TestTornAppendRolledBack injects a torn write into one append: only
// part of the frame reaches the file. The log must truncate the partial
// frame away immediately so later appends land on a clean tail, and a
// full recovery must see every successful append and nothing of the
// torn one.
func TestTornAppendRolledBack(t *testing.T) {
	failpoint.DisableAll()
	t.Cleanup(failpoint.DisableAll)
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := l.Append(fr(i, "a")); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the next frame after 7 bytes: the 8-byte frame header itself
	// is cut short.
	if err := failpoint.Enable(failpoint.WALAppendWrite, "torn(7)"); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(fr(6, "a")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("torn append error = %v, want injected", err)
	}
	failpoint.Disable(failpoint.WALAppendWrite)
	// The partial frame was rolled back, so this append must not bury
	// garbage mid-file.
	if err := l.Append(fr(7, "a")); err != nil {
		t.Fatalf("append after torn rollback: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := replayAll(t, re)
	if len(recs) != 6 {
		t.Fatalf("replayed %d records, want 6 (5 + post-rollback append)", len(recs))
	}
	for _, r := range recs {
		if r.MB.ID == 6 {
			t.Fatal("torn append resurrected by replay")
		}
	}
	if got := recs[len(recs)-1].MB.ID; uint64(got) != 7 {
		t.Fatalf("last replayed id = %d, want 7", got)
	}
}

// TestSyncFaultSurfaces: a failing fsync must surface to the caller —
// the append is not acknowledged — while the log itself stays usable
// once the fault clears (the frame bytes are valid; recovery treats the
// record as an unacknowledged duplicate at worst).
func TestSyncFaultSurfaces(t *testing.T) {
	failpoint.DisableAll()
	t.Cleanup(failpoint.DisableAll)
	l, err := Open(t.TempDir(), Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := failpoint.Enable(failpoint.WALSync, "error(1)"); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(fr(1, "a")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("append with sync fault = %v, want injected", err)
	}
	// Fault cleared: appends recover.
	if err := l.Append(fr(2, "a")); err != nil {
		t.Fatalf("append after sync fault cleared: %v", err)
	}
}

// TestErrorOnlySitesLive arms the error-injection-only sites — the
// ones registered so failpointcov can reach every fallible I/O call
// but deliberately excluded from CrashSites — and proves each actually
// interrupts its operation. A site that never fires is a dead catalog
// entry wearing a coverage costume.
func TestErrorOnlySitesLive(t *testing.T) {
	failpoint.DisableAll()
	t.Cleanup(failpoint.DisableAll)

	if err := failpoint.Enable(failpoint.WALOpenMkdir, "error"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(t.TempDir(), Options{}); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Open with %s armed = %v, want injected error", failpoint.WALOpenMkdir, err)
	}
	failpoint.Disable(failpoint.WALOpenMkdir)

	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable(failpoint.WALReadySync, "error"); err != nil {
		t.Fatal(err)
	}
	if err := l.CheckAppendable(); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("CheckAppendable with %s armed = %v, want injected error", failpoint.WALReadySync, err)
	}
	failpoint.Disable(failpoint.WALReadySync)
	if err := l.CheckAppendable(); err != nil {
		t.Fatalf("CheckAppendable after disarm = %v", err)
	}

	if err := failpoint.Enable(failpoint.WALCloseSync, "error"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Close with %s armed = %v, want injected error", failpoint.WALCloseSync, err)
	}
	failpoint.Disable(failpoint.WALCloseSync)
	if err := l.Close(); err != nil {
		t.Fatalf("Close after disarm = %v", err)
	}
}
