package wal

import (
	"os"
	"path/filepath"
	"testing"

	"kflushing/internal/disk"
)

// FuzzReplayFile feeds arbitrary file contents to the replay parser: it
// must never panic and must tolerate arbitrary tails in last-file mode.
func FuzzReplayFile(f *testing.F) {
	// Seed with a valid single-record file.
	dir := f.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := l.Append(fr(1, "a")); err != nil {
		f.Fatal(err)
	}
	l.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.kfw"))
	if b, err := os.ReadFile(files[0]); err == nil {
		f.Add(b, true)
		f.Add(b[:len(b)-3], true)
	}
	f.Add([]byte("KFWL"), false)
	f.Add([]byte{}, true)

	f.Fuzz(func(t *testing.T, data []byte, last bool) {
		path := filepath.Join(t.TempDir(), "wal-00000001.kfw")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		// Must not panic; errors are fine. The reported valid prefix
		// must stay inside the file: Replay truncates to it.
		valid, _ := replayFile(path, last, func(disk.FlushRecord) error { return nil })
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside file of %d bytes", valid, len(data))
		}
	})
}

// FuzzTornTail takes a well-formed multi-record log, tears it at an
// arbitrary offset with an optional bit flip inside the tail, and
// checks replay never errors, never resurrects a partial record, and
// reports a valid prefix that itself replays cleanly (truncation
// idempotence).
func FuzzTornTail(f *testing.F) {
	dir := f.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for i := uint64(1); i <= 8; i++ {
		if err := l.Append(fr(i, "seed")); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.kfw"))
	intact, err := os.ReadFile(files[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(len(intact)-1, -1)
	f.Add(headerSize+3, -1)
	f.Add(len(intact), len(intact)-2)
	f.Add(len(intact)/2, len(intact)/2+1)

	f.Fuzz(func(t *testing.T, cut, flip int) {
		if cut < 0 || cut > len(intact) {
			t.Skip()
		}
		data := append([]byte(nil), intact[:cut]...)
		// Flips inside the 6-byte file header model media corruption,
		// not a crash tail; replay rightly rejects those, so keep the
		// fuzz domain to record bytes.
		if flip >= headerSize && flip < len(data) {
			data[flip] ^= 1 << (uint(flip) % 8)
		}
		path := filepath.Join(t.TempDir(), "wal-00000001.kfw")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		var got []disk.FlushRecord
		valid, err := replayFile(path, true, func(r disk.FlushRecord) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("torn/flipped tail must be tolerated in last-file mode, got %v", err)
		}
		// Every replayed record must be one of the seeds, whole.
		for _, r := range got {
			if r.MB.ID < 1 || r.MB.ID > 8 || len(r.MB.Keywords) != 1 || r.MB.Keywords[0] != "seed" {
				t.Fatalf("resurrected partial/corrupt record: %+v", r)
			}
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside file of %d bytes", valid, len(data))
		}
		// Truncating to the reported prefix must replay the same set
		// with no further tolerance needed.
		if err := os.Truncate(path, valid); err != nil {
			t.Fatal(err)
		}
		var again []disk.FlushRecord
		valid2, err := replayFile(path, false, func(r disk.FlushRecord) error {
			again = append(again, r)
			return nil
		})
		if err != nil {
			t.Fatalf("truncated file must be fully valid, got %v", err)
		}
		if valid2 != valid || len(again) != len(got) {
			t.Fatalf("truncation not idempotent: valid %d->%d, records %d->%d",
				valid, valid2, len(got), len(again))
		}
	})
}
