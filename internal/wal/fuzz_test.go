package wal

import (
	"os"
	"path/filepath"
	"testing"

	"kflushing/internal/disk"
)

// FuzzReplayFile feeds arbitrary file contents to the replay parser: it
// must never panic and must tolerate arbitrary tails in last-file mode.
func FuzzReplayFile(f *testing.F) {
	// Seed with a valid single-record file.
	dir := f.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	if err := l.Append(fr(1, "a")); err != nil {
		f.Fatal(err)
	}
	l.Close()
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.kfw"))
	if b, err := os.ReadFile(files[0]); err == nil {
		f.Add(b, true)
		f.Add(b[:len(b)-3], true)
	}
	f.Add([]byte("KFWL"), false)
	f.Add([]byte{}, true)

	f.Fuzz(func(t *testing.T, data []byte, last bool) {
		path := filepath.Join(t.TempDir(), "wal-00000001.kfw")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		// Must not panic; errors are fine.
		_ = replayFile(path, last, func(disk.FlushRecord) error { return nil })
	})
}
