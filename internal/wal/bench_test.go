package wal

import (
	"testing"

	"kflushing/internal/disk"
)

// BenchmarkAppend measures log throughput without fsync (the default
// ingestion configuration).
func BenchmarkAppend(b *testing.B) {
	l, err := Open(b.TempDir(), Options{MaxFileBytes: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := fr(1, "keyword", "another")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(disk.EncodeRecord(nil, rec)) + 8))
}

// BenchmarkAppendSynced measures throughput with group fsync every 64
// appends (the durable server configuration).
func BenchmarkAppendSynced(b *testing.B) {
	l, err := Open(b.TempDir(), Options{MaxFileBytes: 1 << 30, SyncEvery: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := fr(1, "keyword")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures recovery speed over a 10K-record log.
func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(1); i <= 10_000; i++ {
		if err := l.Append(fr(i, "kw")); err != nil {
			b.Fatal(err)
		}
	}
	l.Close()
	re, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer re.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := re.Replay(func(disk.FlushRecord) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 10_000 {
			b.Fatalf("replayed %d", n)
		}
	}
}
