package wal

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"kflushing/internal/disk"
)

// buildIntactLog appends n records to a fresh log and returns the raw
// bytes of the single log file plus the byte offset where the final
// record's frame starts.
func buildIntactLog(t *testing.T, n int) (intact []byte, lastFrame int) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := l.Append(fr(uint64(i), "kw")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "wal-*.kfw"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want 1 wal file, got %v (%v)", files, err)
	}
	intact, err = os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Walk the frames to locate the last one.
	pos := headerSize
	for pos < len(intact) {
		lastFrame = pos
		pos += 8 + int(binary.LittleEndian.Uint32(intact[pos:]))
	}
	if pos != len(intact) {
		t.Fatalf("intact log does not parse: end %d != len %d", pos, len(intact))
	}
	return intact, lastFrame
}

// replayDir opens dir as a live Log (rotating, as engine recovery does)
// and replays it, returning the records and the reopened log.
func replayDir(t *testing.T, dir string) ([]disk.FlushRecord, *Log) {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out []disk.FlushRecord
	if err := l.Replay(func(r disk.FlushRecord) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out, l
}

func checkPrefix(t *testing.T, recs []disk.FlushRecord, wantN int, label string) {
	t.Helper()
	if len(recs) != wantN {
		t.Fatalf("%s: recovered %d records, want the intact prefix of %d", label, len(recs), wantN)
	}
	for i, r := range recs {
		if r.MB.ID != disk.FlushRecord(fr(uint64(i+1), "kw")).MB.ID ||
			len(r.MB.Keywords) != 1 || r.MB.Keywords[0] != "kw" || r.MB.Text != "payload" {
			t.Fatalf("%s: record %d corrupted: %+v", label, i, r.MB)
		}
	}
}

// TestTornTailMatrix is the exhaustive crash-tail matrix from ISSUE 5:
// for EVERY byte offset inside the last record of a log file it builds
// (a) a truncation at that offset and (b) a single-bit flip at that
// offset, then proves full recovery machinery — Open (which rotates) +
// Replay — recovers exactly the intact prefix, physically truncates the
// torn tail, never resurrects a partial record, and leaves a directory
// that stays replayable after further appends (the rotation-buries-the-
// torn-tail regression) and across a second recovery (idempotence).
func TestTornTailMatrix(t *testing.T) {
	const n = 5
	intact, lastFrame := buildIntactLog(t, n)

	run := func(t *testing.T, mutated []byte, label string) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal-00000001.kfw")
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, l := replayDir(t, dir)
		checkPrefix(t, recs, n-1, label+"/first-recovery")

		// The torn tail must be physically gone: the file replays
		// cleanly even in strict (non-tail) mode.
		if _, err := replayFile(path, false, func(disk.FlushRecord) error { return nil }); err != nil {
			t.Fatalf("%s: torn tail not truncated away: %v", label, err)
		}

		// Appending after recovery rotates/grows the log; the once-torn
		// file is no longer the newest. Recovery must still work — this
		// is the latent bug a tolerated-but-untruncated tail triggers.
		if err := l.Append(fr(100, "kw2")); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		recs2, l2 := replayDir(t, dir)
		if len(recs2) != n {
			t.Fatalf("%s: after append+reopen got %d records, want %d", label, len(recs2), n)
		}
		checkPrefix(t, recs2[:n-1], n-1, label+"/second-recovery")
		if recs2[n-1].MB.ID != 100 {
			t.Fatalf("%s: post-recovery append lost: %+v", label, recs2[n-1].MB)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("truncate", func(t *testing.T) {
		// Every cut strictly inside the last frame, including cutting
		// mid-frame-header.
		for cut := lastFrame; cut < len(intact); cut++ {
			run(t, append([]byte(nil), intact[:cut]...), "cut@"+itoa(cut))
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		for off := lastFrame; off < len(intact); off++ {
			mutated := append([]byte(nil), intact...)
			mutated[off] ^= 1 << (uint(off) % 8)
			run(t, mutated, "flip@"+itoa(off))
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
