package analyze

import (
	"go/ast"
	"go/types"
)

// errlint reports discarded error returns from durability-bearing
// method calls — Write/WriteString/Sync/Close — in the packages that
// own persistence (wal, disk, engine). An unchecked Close on a segment
// or WAL file is a silently torn write: the kernel may only surface the
// flush failure at close time, and dropping that error converts data
// loss into success. The check fires on bare call statements
// (`f.Close()`); an explicit discard (`_ = f.Close()`) and deferred
// calls are accepted as deliberate, reviewable decisions.

var errorType = types.Universe.Lookup("error").Type()

func runErrlint(p *pass) {
	if !p.cfg.ErrlintPkgs[p.pkg.Path] {
		return
	}
	funcBodies(p.pkg, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recvType, name := durabilityMethod(p, call); name != "" {
				p.report(stmt.Pos(), "error returned by (%s).%s is discarded; handle it or discard explicitly with `_ =`",
					recvType, name)
			}
			return true
		})
	})
}

// durabilityMethod reports the receiver type and method name when call
// invokes a configured durability method that returns an error.
func durabilityMethod(p *pass, call *ast.CallExpr) (recvType, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := p.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || !p.cfg.ErrlintMethods[fn.Name()] {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !returnsError(sig) {
		return "", ""
	}
	rt := types.Unalias(sig.Recv().Type())
	if named := namedOf(rt); named != nil {
		return named.Obj().Name(), fn.Name()
	}
	return rt.String(), fn.Name()
}

// returnsError reports whether any result of sig is the error type.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}
