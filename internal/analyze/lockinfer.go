package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lockorder-infer extends locksafe's declared lock-order DAG across
// function boundaries. locksafe proves that no single function body
// acquires locks against the DAG, but an inversion that threads a
// call — A.Lock(); f() where f (or anything it calls) takes B with
// rank(B) <= rank(A) — is invisible intraprocedurally. This pass:
//
//  1. Computes, for every module function, its ranked acquisition
//     summary: the set of DAG-ranked locks the function may acquire,
//     directly or transitively through static calls, with one example
//     call chain retained for the report.
//  2. Re-runs locksafe's held-state machine in silent mode and, at
//     every call site, checks the callee's summary against the locks
//     currently held: a summary entry with rank <= a held lock's rank
//     is a propagated order violation.
//
// Soundness limits (DESIGN.md §7.8): summaries are path-insensitive
// (an acquisition behind an unreachable branch still propagates);
// dynamic dispatch — func values and interface methods — contributes
// no edges, which is why policy callbacks are separately banned under
// hot locks by locksafe; acquisitions inside function literals are
// excluded from summaries (goroutine bodies run under their own lock
// state, where locksafe checks them); and a callee that releases the
// caller's lock before re-acquiring is modeled only by convention
// (helpers named *Locked are assumed to run entirely under the
// caller's lock and are skipped for the lock they were handed).

// acqInfo is one ranked acquisition reachable from a function.
type acqInfo struct {
	rankKey string
	rank    int
	pos     token.Pos // the acquisition site
	via     string    // example call chain, "f → g → h"
}

// acqSummary maps rankKey to the acquisition reaching it.
type acqSummary map[string]acqInfo

func runLockInfer(m *module) {
	if len(m.cfg.LockRank) == 0 {
		return
	}
	sums := make(map[*types.Func]acqSummary, len(m.infos))
	edges := make(map[*types.Func][]*types.Func, len(m.infos))

	// Phase 1a: direct acquisitions and static call edges.
	for _, fi := range m.infos {
		c := &lockChecker{p: &pass{pkg: fi.pkg, cfg: m.cfg, findings: m.findings}, silent: true}
		sum := make(acqSummary)
		var callees []*types.Func
		inspectSkipLits(fi.decl.Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if op, lockExpr := c.classifyMutexCall(call); op == opLock || op == opRLock {
				rk := c.lockRankKey(lockExpr)
				if r, ok := m.cfg.LockRank[rk]; ok {
					if _, dup := sum[rk]; !dup {
						sum[rk] = acqInfo{rankKey: rk, rank: r, pos: call.Pos(), via: funcKey(fi.fn)}
					}
				}
				return
			}
			if fn := staticCallee(fi.pkg, call); fn != nil && !isIfaceMethod(fn) {
				if _, inModule := m.byFunc[fn]; inModule {
					callees = append(callees, fn)
				}
			}
		})
		sums[fi.fn] = sum
		edges[fi.fn] = callees
	}

	// Phase 1b: propagate summaries to a fixpoint. Entries are only
	// added, never replaced, so iteration terminates.
	for changed := true; changed; {
		changed = false
		for _, fi := range m.infos {
			sum := sums[fi.fn]
			for _, g := range edges[fi.fn] {
				for rk, ai := range sums[g] {
					if _, ok := sum[rk]; !ok {
						sum[rk] = acqInfo{rankKey: rk, rank: ai.rank, pos: ai.pos, via: funcKey(fi.fn) + " → " + ai.via}
						changed = true
					}
				}
			}
		}
	}

	// Phase 2: walk every function with the held-state machine and
	// check callee summaries at each call site.
	seen := make(map[string]bool)
	for _, fi := range m.infos {
		fi := fi
		c := &lockChecker{p: &pass{pkg: fi.pkg, cfg: m.cfg, findings: m.findings}, silent: true}
		c.onCall = func(call *ast.CallExpr, held []heldLock) {
			fn := staticCallee(fi.pkg, call)
			if fn == nil || isIfaceMethod(fn) {
				return
			}
			sum := sums[fn]
			if len(sum) == 0 {
				return
			}
			lockedHelper := strings.HasSuffix(fn.Name(), "Locked")
			for _, h := range held {
				if h.rank < 0 {
					continue
				}
				for rk, ai := range sum {
					if ai.rank > h.rank {
						continue
					}
					if lockedHelper && rk == h.rankKey {
						// By convention a *Locked helper runs under the
						// caller's lock; the matching acquisition in its
						// summary is the caller's own transfer pattern.
						continue
					}
					key := fmt.Sprintf("%d|%s|%s", call.Pos(), rk, h.rankKey)
					if seen[key] {
						continue
					}
					seen[key] = true
					m.report("lockinfer", call.Pos(),
						"call to %s while holding %s (rank %d) may acquire %s (rank %d) via %s — interprocedural lock-order violation",
						funcKey(fn), h.rankKey, h.rank, rk, ai.rank, ai.via)
				}
			}
		}
		c.checkFunc(fi.decl.Body)
		for len(c.lits) > 0 {
			lit := c.lits[0]
			c.lits = c.lits[1:]
			c.checkFunc(lit.Body)
		}
	}
}

// inspectSkipLits walks root in source order, not descending into
// function literals.
func inspectSkipLits(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
