package analyze

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// This file is the shared substrate of the kfvet v2 interprocedural
// analyzers (allocfree, failpointcov, lockorder-infer, seqlockcheck,
// epochcheck): a module-wide index of every function declaration keyed
// by its *types.Func object, the `//kfvet:` annotation grammar parsed
// off declaration doc comments, and static call-target resolution.
//
// Object identity is what makes the index cross-package: LoadModule
// type-checks every package in one shared universe, so the *types.Func
// a caller's ident resolves to IS the object the callee's declaration
// defined. Generic instantiations are normalized with Origin(), so
// Entry[string].insert and Entry[int64].insert index to one funcInfo.

// annotation is the parsed `//kfvet:` contract of one function.
type annotation struct {
	// noalloc marks the function as a 0-allocation hot path checked by
	// allocfree. whenNil restricts the contract to the nil-receiver
	// (disabled) path: the method must open with a terminating nil
	// guard, and the enabled path is exempt.
	noalloc bool
	whenNil bool
	// seqlock names the function's role in the seqlock slot protocol:
	// "writer" or "reader".
	seqlock string
	// epoch names the function's role in the 2-parity epoch guard
	// protocol: "pin", "unpin", "advance", "free", or "reclaim".
	epoch string
}

// annotated reports whether any kfvet contract is declared.
func (a annotation) annotated() bool {
	return a.noalloc || a.seqlock != "" || a.epoch != ""
}

// funcInfo is one module function declaration plus everything the
// interprocedural analyzers need to reason about it.
type funcInfo struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl
	ann  annotation
}

// module is the cross-package analysis context built once per Run.
type module struct {
	pkgs     []*Package
	cfg      Config
	fset     *token.FileSet
	findings *[]Finding
	// byFunc indexes every function/method declaration with a body by
	// its (Origin-normalized) type object.
	byFunc map[*types.Func]*funcInfo
	// infos holds the same entries in deterministic declaration order.
	infos []*funcInfo
}

// report records one finding against a module-level analyzer.
func (m *module) report(analyzer string, pos token.Pos, format string, args ...interface{}) {
	*m.findings = append(*m.findings, Finding{
		Analyzer: analyzer,
		Pos:      m.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// buildModule indexes every function declaration and parses its
// annotations. Annotation syntax errors are findings, not panics: a
// typo'd marker silently disabling a contract is exactly the drift
// kfvet exists to catch.
func buildModule(pkgs []*Package, cfg Config, findings *[]Finding) *module {
	m := &module{
		pkgs:     pkgs,
		cfg:      cfg,
		findings: findings,
		byFunc:   make(map[*types.Func]*funcInfo),
	}
	if len(pkgs) > 0 {
		m.fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{fn: fn.Origin(), pkg: pkg, decl: fd, ann: m.parseAnnotations(fd)}
				m.byFunc[fi.fn] = fi
				m.infos = append(m.infos, fi)
			}
		}
	}
	return m
}

// Annotation markers. Each applies to the function whose doc comment
// carries it.
const (
	noallocMarker = "//kfvet:noalloc" // optional arg: whennil
	seqlockMarker = "//kfvet:seqlock" // arg: writer | reader
	epochMarker   = "//kfvet:epoch"   // arg: pin | unpin | advance | free | reclaim
)

// parseAnnotations reads the kfvet markers off a declaration's doc
// comment group.
func (m *module) parseAnnotations(decl *ast.FuncDecl) annotation {
	var ann annotation
	if decl.Doc == nil {
		return ann
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(c.Text)
		marker, rest := text, ""
		if i := strings.IndexAny(text, " \t"); i >= 0 {
			marker, rest = text[:i], strings.TrimSpace(text[i+1:])
		}
		switch marker {
		case noallocMarker:
			ann.noalloc = true
			switch rest {
			case "", "whennil":
				ann.whenNil = rest == "whennil"
			default:
				m.report("annotation", c.Pos(), "malformed %s argument %q (want nothing or \"whennil\")", noallocMarker, rest)
			}
		case seqlockMarker:
			switch rest {
			case "writer", "reader":
				ann.seqlock = rest
			default:
				m.report("annotation", c.Pos(), "malformed %s argument %q (want \"writer\" or \"reader\")", seqlockMarker, rest)
			}
		case epochMarker:
			switch rest {
			case "pin", "unpin", "advance", "free", "reclaim":
				ann.epoch = rest
			default:
				m.report("annotation", c.Pos(), "malformed %s argument %q (want pin|unpin|advance|free|reclaim)", epochMarker, rest)
			}
		}
	}
	return ann
}

// funcKey renders the configured identity of a function object:
// "pkgpath.Type.method" for methods (the generic origin type for
// instantiations), "pkgpath.func" for package-level functions.
func funcKey(fn *types.Func) string {
	fn = fn.Origin()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedOf(sig.Recv().Type()); named != nil && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		return fn.FullName()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.FullName()
}

// staticCallee resolves a call expression to the function object it
// statically invokes, or nil for dynamic calls (func values, and
// interface-method dispatch — see isIfaceMethod for the latter).
// Generic instantiations (explicit or inferred) normalize to their
// Origin so the result indexes module.byFunc.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Explicit instantiation: f[T](...) / f[K, V](...).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// isIfaceMethod reports whether fn is declared on an interface, i.e.
// calls through it dispatch dynamically.
func isIfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// constStringArg resolves an expression to its compile-time string
// value, or ("", false) when it is not a string constant.
func constStringArg(pkg *Package, arg ast.Expr) (string, bool) {
	tv, ok := pkg.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
