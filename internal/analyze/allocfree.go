package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// allocfree turns the AllocsPerRun ceilings of the hot paths into a
// compile-time gate: a function annotated `//kfvet:noalloc` must not
// contain any construct that the compiler lowers to a heap allocation
// in steady state, and may only call functions that are themselves
// allocation-free. The contract is interprocedural: unannotated module
// callees are verified transitively over the static call graph, with
// verdicts memoized, so a helper three calls deep that grows a slice
// is reported at the annotated caller's call site with the chain.
//
// Banned inside a noalloc function:
//   - make / new, slice and map composite literals, &CompositeLit
//   - append whose destination is not pool-fed (assigned from a
//     configured pool call such as SlicePool.Get/Grow, or resliced
//     from an existing backing array with x[:0]) — a pool-fed append
//     writes into capacity the pool already owns
//   - string concatenation, string<->[]byte/[]rune conversions, and
//     integer-to-string conversions
//   - conversions (explicit or via call arguments) from a concrete
//     type to an interface type: the boxed value escapes
//   - function literals that capture variables, and go statements
//   - calls to anything except: annotated noalloc/whennil functions,
//     transitively-clean module functions, the configured pool API,
//     sync / sync/atomic, the configured allowlist, non-allocating
//     builtins, and dynamic calls through func-typed parameters of
//     the annotated function itself (the caller chooses the callback;
//     the contract is the parameter's, a documented soundness limit)
//
// `//kfvet:noalloc whennil` is the trace-probe variant: the method
// must open with a terminating nil-receiver guard (the disabled state
// allocates nothing because it never runs), and the enabled path is
// exempt. whennil functions are clean callees for the same reason.
//
// Known soundness limits, documented in DESIGN.md §7.8: interface
// method dispatch is rejected rather than resolved (no class
// hierarchy analysis); escape analysis is not modeled, so
// stack-allocatable composites are still findings; map writes are
// allowed (steady-state flat per DESIGN §6) though rehash can
// allocate; reslice-based pool feeding trusts the reslice source.

// allocVerdict is the memoized transitive result for one unannotated
// module function.
type allocVerdict struct {
	clean bool
	pos   token.Pos // first violating construct
	msg   string    // why, phrased for the caller's report
}

type allocChecker struct {
	m        *module
	verdicts map[*types.Func]*allocVerdict
	visiting map[*types.Func]bool
}

func runAllocFree(m *module) {
	c := &allocChecker{
		m:        m,
		verdicts: make(map[*types.Func]*allocVerdict),
		visiting: make(map[*types.Func]bool),
	}
	for _, fi := range m.infos {
		if !fi.ann.noalloc {
			continue
		}
		if fi.ann.whenNil {
			c.checkWhenNil(fi)
			continue
		}
		c.checkBody(fi, func(pos token.Pos, msg string) bool {
			m.report("allocfree", pos, "%s", msg)
			return true // report every violation in annotated functions
		})
	}
}

// checkWhenNil verifies the disabled-path contract: the method opens
// with a terminating nil-receiver guard, so the nil (disabled) call
// allocates nothing. The enabled path is exempt by annotation.
func (c *allocChecker) checkWhenNil(fi *funcInfo) {
	p := &pass{pkg: fi.pkg}
	recv := pointerRecvObj(p, fi.decl)
	if recv == nil {
		c.m.report("allocfree", fi.decl.Pos(),
			"%s is marked %s whennil but has no named pointer receiver to guard", fi.decl.Name.Name, noallocMarker)
		return
	}
	if !nilGuarded(p, fi.decl.Body, recv) {
		c.m.report("allocfree", fi.decl.Pos(),
			"%s is marked %s whennil but does not open with a terminating `if %s == nil` guard",
			fi.decl.Name.Name, noallocMarker, recv.Name())
	}
}

// verdict computes (memoized) whether an unannotated module function
// is transitively allocation-free. Cycles resolve optimistically: a
// recursive function is judged by its own body, not by the in-flight
// recursion.
func (c *allocChecker) verdict(fn *types.Func) *allocVerdict {
	if v, ok := c.verdicts[fn]; ok {
		return v
	}
	if c.visiting[fn] {
		return &allocVerdict{clean: true}
	}
	fi := c.m.byFunc[fn]
	if fi == nil {
		return &allocVerdict{clean: false, msg: funcKey(fn) + " has no analyzable body"}
	}
	c.visiting[fn] = true
	v := &allocVerdict{clean: true}
	c.checkBody(fi, func(pos token.Pos, msg string) bool {
		v.clean = false
		v.pos = pos
		v.msg = msg
		return false // first violation decides the verdict
	})
	delete(c.visiting, fn)
	c.verdicts[fn] = v
	return v
}

// checkBody walks one function body reporting allocation constructs.
// report returns false to stop the walk (verdict mode).
func (c *allocChecker) checkBody(fi *funcInfo, report func(pos token.Pos, msg string) bool) {
	info := fi.pkg.Info
	poolFed := c.poolFedSet(fi)
	params := paramObjs(fi)
	stop := false
	emit := func(pos token.Pos, msg string) {
		if !stop && !report(pos, msg) {
			stop = true
		}
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if stop {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if free := capturedVars(fi, n); len(free) > 0 {
				emit(n.Pos(), "function literal captures "+free[0].Name()+"; closures allocate")
			}
			// The literal's own body is still walked: it runs on the
			// hot path unless handed to go (rejected separately).
		case *ast.GoStmt:
			emit(n.Pos(), "go statement allocates a goroutine on the hot path")
		case *ast.CompositeLit:
			switch types.Unalias(info.TypeOf(n)).Underlying().(type) {
			case *types.Slice:
				emit(n.Pos(), "slice literal allocates")
			case *types.Map:
				emit(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					emit(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n.X)) {
				emit(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			c.checkCall(fi, n, poolFed, params, emit)
		}
		return !stop
	})
}

// checkCall classifies one call inside a noalloc body.
func (c *allocChecker) checkCall(fi *funcInfo, call *ast.CallExpr, poolFed map[string]bool, params map[types.Object]bool, emit func(token.Pos, string)) {
	info := fi.pkg.Info

	// Conversion T(x): flag boxing and string-materializing shapes.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.checkConversion(fi, call.Pos(), tv.Type, info.TypeOf(call.Args[0]), emit)
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make":
				emit(call.Pos(), "make allocates")
			case "new":
				emit(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && !poolFed[types.ExprString(call.Args[0])] {
					emit(call.Pos(), "append to "+types.ExprString(call.Args[0])+
						" may grow beyond the pool (destination is not pool-fed)")
				}
			}
			// len/cap/copy/delete/clear/min/max/panic/print do not
			// allocate (panic terminates; its boxing is off the
			// steady-state path).
			return
		}
	}

	fn := staticCallee(fi.pkg, call)
	if fn == nil {
		// Dynamic call through a func value. A func-typed parameter of
		// the annotated function is the caller's responsibility; any
		// other func value is an opaque allocation risk.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && params[obj] {
				c.checkIfaceArgs(fi, call, nil, emit)
				return
			}
		}
		emit(call.Pos(), "dynamic call through func value "+types.ExprString(call.Fun)+
			" cannot be verified allocation-free")
		return
	}
	if isIfaceMethod(fn) {
		emit(call.Pos(), "interface method call "+funcKey(fn)+" dispatches dynamically and cannot be verified allocation-free")
		return
	}

	key := funcKey(fn)
	cfg := c.m.cfg
	switch {
	case cfg.NoallocPoolFuncs[key], cfg.NoallocExemptCallees[key]:
		// The pool API is the boundary of the contract: Get/Grow/Put
		// allocate internally on a miss by design ("the pool is the
		// pool"); noalloc means no allocation beyond it.
		return
	case cfg.NoallocAllowedFuncs[key]:
		return
	}
	if fn.Pkg() != nil && cfg.NoallocAllowedPkgs[fn.Pkg().Path()] {
		return
	}
	if fi2 := c.m.byFunc[fn]; fi2 != nil {
		if fi2.ann.noalloc {
			// Annotated callees are verified at their own declaration.
			c.checkIfaceArgs(fi, call, fn, emit)
			return
		}
		if v := c.verdict(fn); !v.clean {
			where := ""
			if v.pos.IsValid() {
				where = " at " + c.m.fset.Position(v.pos).String()
			}
			emit(call.Pos(), "call to "+key+" is not allocation-free: "+v.msg+where)
			return
		}
		c.checkIfaceArgs(fi, call, fn, emit)
		return
	}
	emit(call.Pos(), "call to "+key+" is outside the noalloc allowlist and cannot be verified allocation-free")
}

// checkIfaceArgs flags concrete-to-interface conversions at call
// boundaries of otherwise-allowed calls: passing a concrete value to
// an interface parameter boxes it.
func (c *allocChecker) checkIfaceArgs(fi *funcInfo, call *ast.CallExpr, fn *types.Func, emit func(token.Pos, string)) {
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	info := fi.pkg.Info
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < sig.Params().Len()-1 || (i == sig.Params().Len()-1 && !sig.Variadic()):
			pt = sig.Params().At(i).Type()
		case sig.Variadic() && sig.Params().Len() > 0:
			st, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		default:
			continue
		}
		at := info.TypeOf(arg)
		if at == nil {
			continue
		}
		if types.IsInterface(pt) && !types.IsInterface(at) && !isNilExpr(info, arg) {
			emit(arg.Pos(), "passing concrete "+at.String()+" to interface parameter of "+funcKey(fn)+" boxes the value")
		}
	}
}

// checkConversion flags allocating conversion shapes.
func (c *allocChecker) checkConversion(fi *funcInfo, pos token.Pos, to, from types.Type, emit func(token.Pos, string)) {
	if to == nil || from == nil {
		return
	}
	tu := types.Unalias(to).Underlying()
	fu := types.Unalias(from).Underlying()
	if types.IsInterface(to) && !types.IsInterface(from) {
		emit(pos, "conversion of "+from.String()+" to interface "+to.String()+" boxes the value")
		return
	}
	if isStringType(to) {
		switch f := fu.(type) {
		case *types.Slice:
			emit(pos, "[]byte/[]rune-to-string conversion allocates")
		case *types.Basic:
			if f.Info()&types.IsInteger != 0 && f.Kind() != types.UntypedRune {
				emit(pos, "integer-to-string conversion allocates")
			}
		}
		return
	}
	if _, isSlice := tu.(*types.Slice); isSlice && isStringType(from) {
		emit(pos, "string-to-[]byte/[]rune conversion allocates")
	}
}

// poolFedSet collects the expressions (by printed form) that appear as
// assignment targets of configured pool calls or of reslices — the
// destinations append may legally write into.
func (c *allocChecker) poolFedSet(fi *funcInfo) map[string]bool {
	fed := make(map[string]bool)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			switch r := ast.Unparen(rhs).(type) {
			case *ast.CallExpr:
				if fn := staticCallee(fi.pkg, r); fn != nil && c.m.cfg.NoallocPoolFuncs[funcKey(fn)] {
					fed[types.ExprString(as.Lhs[i])] = true
				}
			case *ast.SliceExpr:
				// kept := e.postings[:0] — reuse of an existing backing
				// array. The source's capacity bounds the appends.
				fed[types.ExprString(as.Lhs[i])] = true
			}
		}
		return true
	})
	return fed
}

// paramObjs collects the parameter objects of the declaration,
// including func-typed callbacks the caller supplies.
func paramObjs(fi *funcInfo) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fi.decl.Type.Params == nil {
		return out
	}
	for _, field := range fi.decl.Type.Params.List {
		for _, name := range field.Names {
			if obj := fi.pkg.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// capturedVars returns variables the literal references but does not
// define — the free variables a closure must box.
func capturedVars(fi *funcInfo, lit *ast.FuncLit) []*types.Var {
	info := fi.pkg.Info
	defined := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				defined[obj] = true
			}
		}
		return true
	})
	var free []*types.Var
	seen := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || defined[v] || seen[v] {
			return true
		}
		// Package-level variables are not captured; they are addressed
		// directly.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		seen[v] = true
		free = append(free, v)
		return true
	})
	return free
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isNilExpr reports whether the expression is the untyped nil.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		_, isNil := info.Uses[id].(*types.Nil)
		return isNil
	}
	return false
}
