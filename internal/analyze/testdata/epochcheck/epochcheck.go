// Package epochcheck is the fixture for the epochcheck analyzer: the
// 2-parity epoch guard role shapes and the pin-domination rule.
// FixtureConfig declares guard as the epoch-guard type, Entry.TopK as
// the posting-copy entry-point, and Recycler.Pin/Unpin as the pin API.
package epochcheck

import "sync/atomic"

// guard mirrors the allocator's epochGuard layout.
type guard struct {
	global atomic.Uint64
	active [2]atomic.Int64
}

// CleanPin registers in the current parity and re-validates the
// global epoch.
//
//kfvet:epoch pin
func (g *guard) CleanPin() uint64 {
	for {
		e := g.global.Load()
		g.active[e&1].Add(1)
		if g.global.Load() == e {
			return e
		}
		g.active[e&1].Add(-1)
	}
}

// CleanUnpin releases the same parity it pinned.
//
//kfvet:epoch unpin
func (g *guard) CleanUnpin(e uint64) { g.active[e&1].Add(-1) }

// CleanAdvance gates on the previous parity and moves the epoch with
// a CAS.
//
//kfvet:epoch advance
func (g *guard) CleanAdvance() bool {
	e := g.global.Load()
	if g.active[(e+1)&1].Load() != 0 {
		return false
	}
	return g.global.CompareAndSwap(e, e+1)
}

// CleanFree stamps the current epoch without writing it.
//
//kfvet:epoch free
func (g *guard) CleanFree() uint64 { return g.global.Load() }

// CleanReclaim releases quarantine on the freeEpoch+2 expiry.
//
//kfvet:epoch reclaim
func (g *guard) CleanReclaim(epochs []uint64) int {
	gl := g.global.Load()
	n := 0
	for n < len(epochs) && epochs[n]+2 <= gl {
		n++
	}
	return n
}

//kfvet:epoch pin
func (g *guard) BadPinNoRevalidate() uint64 { // want "does not re-validate"
	e := g.global.Load()
	g.active[e&1].Add(1)
	return e
}

//kfvet:epoch unpin
func (g *guard) BadUnpinParity(e uint64) {
	g.active[(e+1)&1].Add(-1) // want "opposite parity"
}

//kfvet:epoch advance
func (g *guard) BadAdvanceParity() bool {
	e := g.global.Load()
	if g.active[e&1].Load() != 0 { // want "PREVIOUS parity"
		return false
	}
	return g.global.CompareAndSwap(e, e+1)
}

//kfvet:epoch reclaim
func (g *guard) BadReclaimOffByOne(epochs []uint64) int {
	gl := g.global.Load()
	n := 0
	for n < len(epochs) && epochs[n]+1 <= gl { // want "requires freeEpoch"
		n++
	}
	return n
}

func BadRogueAccess(g *guard) {
	g.active[0].Add(1) // want "without a //kfvet:epoch annotation"
}

// Entry and Recycler mirror the pin-domination surface.
type Entry struct{ v []int }

func (e *Entry) TopK(k int) []int { _ = k; return e.v }

type Recycler struct{ g guard }

//kfvet:epoch pin
func (r *Recycler) Pin() uint64 {
	for {
		e := r.g.global.Load()
		r.g.active[e&1].Add(1)
		if r.g.global.Load() == e {
			return e
		}
		r.g.active[e&1].Add(-1)
	}
}

//kfvet:epoch unpin
func (r *Recycler) Unpin(e uint64) { r.g.active[e&1].Add(-1) }

// CleanSearch copies postings inside a pin window.
func CleanSearch(r *Recycler, e *Entry) []int {
	ep := r.Pin()
	defer r.Unpin(ep)
	return e.TopK(1)
}

func BadSearchNoPin(e *Entry) []int {
	return e.TopK(1) // want "without a preceding recycler pin"
}

func BadSearchNoUnpin(r *Recycler, e *Entry) []int {
	_ = r.Pin()
	return e.TopK(1) // want "never unpins"
}
