// Package lockinfer is the fixture for the lockorder-infer analyzer:
// lock-order inversions that thread one or more calls, invisible to
// the intraprocedural locksafe pass. FixtureConfig ranks Engine.mu=10,
// Index.mu=20, Entry.mu=30, Store.mu=40.
package lockinfer

import "sync"

type Engine struct{ mu sync.Mutex }
type Index struct{ mu sync.Mutex }
type Entry struct{ mu sync.Mutex }
type Store struct{ mu sync.Mutex }

// Sys aggregates one lock of each rank.
type Sys struct {
	eng Engine
	idx Index
	ent Entry
	st  Store
}

// lockEntry acquires Entry.mu (rank 30) — a direct summary entry.
func (s *Sys) lockEntry() {
	s.ent.mu.Lock()
	defer s.ent.mu.Unlock()
}

// viaOneHop reaches Entry.mu through a call — the propagated entry.
func (s *Sys) viaOneHop() { s.lockEntry() }

// CleanDownward holds rank 10 and calls into rank 30: the DAG allows
// acquiring downward.
func (s *Sys) CleanDownward() {
	s.eng.mu.Lock()
	defer s.eng.mu.Unlock()
	s.viaOneHop()
}

// CleanAfterRelease calls the helper only after dropping the
// higher-ranked lock.
func (s *Sys) CleanAfterRelease() {
	s.st.mu.Lock()
	s.st.mu.Unlock()
	s.viaOneHop()
}

// BadInversion holds Store.mu (40) while a two-hop call chain
// acquires Entry.mu (30): an upward acquisition through calls.
func (s *Sys) BadInversion() {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	s.viaOneHop() // want "may acquire"
}

// BadSelfDeadlock holds Entry.mu and calls the helper that acquires
// it again: same-rank through a call is a self-deadlock.
func (s *Sys) BadSelfDeadlock() {
	s.ent.mu.Lock()
	defer s.ent.mu.Unlock()
	s.lockEntry() // want "may acquire"
}
