// Package errlint holds the errlint analyzer fixtures: discarded
// durability errors (bare Write/Sync/Close statements) are positives;
// checked returns, explicit `_ =` discards, deferred closes, and
// methods that return no error are negatives.
package errlint

import "os"

type Seg struct{ f *os.File }

// FlushBad drops both the sync and the close error.
func (s *Seg) FlushBad() {
	s.f.Sync()  // want "error returned by (File).Sync is discarded"
	s.f.Close() // want "error returned by (File).Close is discarded"
}

// FlushGood propagates both.
func (s *Seg) FlushGood(b []byte) error {
	if _, err := s.f.Write(b); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	return s.f.Close()
}

// Teardown discards explicitly: a deliberate, reviewable decision.
func (s *Seg) Teardown() {
	_ = s.f.Close()
}

// ReadPath defers the close of a read-only handle: accepted.
func (s *Seg) ReadPath() {
	defer s.f.Close()
}

// Quiet has a Close that returns nothing; nothing to discard.
type Quiet struct{}

func (Quiet) Close() {}

func UseQuiet(q Quiet) {
	q.Close()
}

// Suppressed is a reviewed discard silenced with an allow comment.
func (s *Seg) Suppressed() {
	s.f.Close() //kfvet:allow errlint
}
