// Package atomiccheck holds the atomiccheck analyzer fixtures: mixed
// plain/atomic access to the same field is the positive; all-atomic,
// all-plain, and typed-atomic fields are the negatives.
package atomiccheck

import "sync/atomic"

type Counter struct {
	hits  int64 // atomic everywhere: clean
	mixed int64 // atomic in Add, plain in ReadMixed: the race
	plain int64 // never atomic: clean
}

func (c *Counter) Add() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.mixed, 1)
	c.plain++
}

func (c *Counter) ReadHits() int64 { return atomic.LoadInt64(&c.hits) }

func (c *Counter) ReadMixed() int64 {
	return c.mixed // want "accessed atomically"
}

func (c *Counter) ResetMixed() {
	c.mixed = 0 // want "accessed atomically"
}

func (c *Counter) ReadPlain() int64 { return c.plain }

// Typed uses the typed atomic API, which cannot be mixed by
// construction — plain method calls ARE the atomic access.
type Typed struct{ n atomic.Int64 }

func (t *Typed) Inc()       { t.n.Add(1) }
func (t *Typed) Get() int64 { return t.n.Load() }

// Suppressed is a reviewed mixed access silenced with an allow comment.
func (c *Counter) Suppressed() int64 {
	return c.mixed //kfvet:allow atomiccheck
}
