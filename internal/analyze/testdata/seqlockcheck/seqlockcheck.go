// Package seqlockcheck is the fixture for the seqlockcheck analyzer:
// the writer invalidate→fill→publish shape, the reader double-check
// shape, and the closed-protocol rule. FixtureConfig declares slot as
// the seqlock type with sequence field "seq".
package seqlockcheck

import "sync/atomic"

// slot is the seqlock-published record, mirroring the flight
// recorder's layout.
type slot struct {
	seq atomic.Uint64
	a   atomic.Int64
	b   atomic.Int64
}

// CleanWrite is the canonical writer: invalidate, fill, publish.
//
//kfvet:seqlock writer
func CleanWrite(s *slot, seq uint64, a, b int64) {
	s.seq.Store(0)
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(seq)
}

// CleanRead is the canonical reader: load, reject zero, copy,
// re-check, bounded retry.
//
//kfvet:seqlock reader
func CleanRead(s *slot) (int64, int64, bool) {
	for attempt := 0; attempt < 3; attempt++ {
		seq := s.seq.Load()
		if seq == 0 {
			return 0, 0, false
		}
		a := s.a.Load()
		b := s.b.Load()
		if s.seq.Load() != seq {
			continue
		}
		return a, b, true
	}
	return 0, 0, false
}

//kfvet:seqlock writer
func BadNoInvalidate(s *slot, seq uint64, a int64) {
	s.a.Store(a) // want "must invalidate first"
	s.seq.Store(seq)
}

//kfvet:seqlock writer
func BadStoreAfterPublish(s *slot, seq uint64, a, b int64) {
	s.seq.Store(0)
	s.a.Store(a)
	s.seq.Store(seq) // want "between invalidate and publish"
	s.b.Store(b)     // want "must publish last"
}

//kfvet:seqlock reader
func BadNoRecheck(s *slot) int64 {
	if s.seq.Load() == 0 { // want "must double-check"
		return 0
	}
	return s.a.Load()
}

func BadUnannotated(s *slot, v int64) {
	s.b.Store(v) // want "without a //kfvet:seqlock writer/reader annotation"
}
