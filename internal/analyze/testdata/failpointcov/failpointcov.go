// Package failpointcov is the fixture for the failpointcov analyzer:
// the catalog diff (declared vs evaluated sites), the constant-site
// rule, and the fallible-I/O adjacency rule. FixtureConfig declares
// this package as both the site catalog and the covered package, with
// Eval/EvalWrite as the evaluation entry-points.
package failpointcov

import "os"

// The site catalog: slash-bearing string constants are sites.
const (
	SiteWrite = "fx/write/page"
	SiteSync  = "fx/sync/dir"
	SiteDead  = "fx/dead/entry" // want "declared but never evaluated"
)

// EnvVar has no slash: a plain string constant, not a site.
const EnvVar = "FX_FAILPOINTS"

// Eval and EvalWrite mimic the failpoint package's entry-points.
func Eval(site string) error             { _ = site; return nil }
func EvalWrite(site string, n int) error { _ = site; _ = n; return nil }

// CleanCovered performs fallible I/O adjacent to failpoint
// evaluations: one site covers the whole function.
func CleanCovered(f *os.File, b []byte) error {
	if err := Eval(SiteWrite); err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	if err := EvalWrite(SiteSync, len(b)); err != nil {
		return err
	}
	return f.Sync()
}

// CleanBestEffort discards the error explicitly: best-effort cleanup
// is not a durability step.
func CleanBestEffort(path string) {
	_ = os.Remove(path)
}

// CleanDeferred releases resources on the way out; deferred cleanup
// is exempt like discarded-error cleanup.
func CleanDeferred(dir, path string, b []byte) error {
	if err := Eval(SiteWrite); err != nil {
		return err
	}
	defer os.Remove(path)
	return os.WriteFile(path, b, 0o644)
}

func BadUncovered(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want "no adjacent failpoint"
}

func BadLiteralSite(f *os.File) error {
	if err := Eval("fx/unregistered/site"); err != nil { // want "not declared"
		return err
	}
	return f.Sync()
}

func BadDynamicSite(f *os.File, site string) error {
	if err := Eval(site); err != nil { // want "not a compile-time constant"
		return err
	}
	return f.Sync()
}
