// Package nilrecv holds the nilrecv analyzer fixtures. The marker
// below opts the package in; every pointer-receiver method touching
// fields must then start with a terminating nil guard.
//
//kfvet:nilsafe
package nilrecv

type Probe struct {
	n     int
	notes []string
}

// Guarded is the canonical nil-safe method.
func (p *Probe) Guarded() {
	if p == nil {
		return
	}
	p.n++
}

// GuardedCompound relies on short-circuit `||`: still safe.
func (p *Probe) GuardedCompound(skip bool) {
	if p == nil || skip {
		return
	}
	p.notes = append(p.notes, "x")
}

// Unguarded touches fields with no guard at all.
func (p *Probe) Unguarded() { // want "without a leading"
	p.n++
}

// GuardsWrongThing nil-checks the argument, not the receiver.
func (p *Probe) GuardsWrongThing(q *Probe) { // want "without a leading"
	if q == nil {
		return
	}
	p.n++
}

// GuardDoesNotTerminate checks nil but falls through to the access.
func (p *Probe) GuardDoesNotTerminate() { // want "without a leading"
	if p == nil {
		_ = 0
	}
	p.n++
}

// DelegatesOnly calls other methods on the receiver; the callees
// guard, so no leading check is required here.
func (p *Probe) DelegatesOnly() {
	p.Guarded()
	p.GuardedCompound(false)
}

// ValueRecv has a value receiver: a nil pointer cannot reach it as a
// dereference happens at the call site.
func (p Probe) ValueRecv() int { return p.n }

// Suppressed is a reviewed exception.
//
//kfvet:allow nilrecv
func (p *Probe) Suppressed() {
	p.n++
}
