// Package locksafe holds the locksafe analyzer fixtures. Functions
// with `want` comments are true positives; the Clean* functions are
// the negatives the analyzer must stay silent on. The fixture config
// (analyze.FixtureConfig) ranks Engine.mu=10, Index.mu=20, Entry.mu=30,
// Store.mu=40 and declares Index.mu and Entry.mu hot.
package locksafe

import (
	"errors"
	"os"
	"sync"
)

type Engine struct{ mu sync.Mutex }
type Index struct{ mu sync.RWMutex }
type Entry struct{ mu sync.Mutex }
type Store struct{ mu sync.RWMutex }

// Policy is the fixture callback interface (declared blocking).
type Policy interface{ OnEvict(n int) }

var errEarly = errors.New("early")

func work() {}

// --- positives -------------------------------------------------------

// LeakOnReturn forgets the unlock on the error path.
func LeakOnReturn(e *Engine, fail bool) error {
	e.mu.Lock()
	if fail {
		return errEarly // want "return while e.mu is held"
	}
	e.mu.Unlock()
	return nil
}

// LeakFallThrough never unlocks at all.
func LeakFallThrough(e *Engine) {
	e.mu.Lock() // want "not released on the fall-through return path"
}

// LeakInBranch acquires conditionally and leaks past the branch end.
func LeakInBranch(e *Engine, cond bool) {
	if cond {
		e.mu.Lock() // want "acquired in branch is not released"
	}
}

// LeakInLoop would self-deadlock on the second iteration.
func LeakInLoop(e *Engine, n int) {
	for i := 0; i < n; i++ {
		e.mu.Lock() // want "acquired in loop body is not released"
	}
}

// Recursive re-acquires a lock it already holds.
func Recursive(e *Engine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.mu.Lock() // want "already held"
	e.mu.Unlock()
}

// OrderViolation acquires rank 20 while holding rank 30.
func OrderViolation(ix *Index, en *Entry) {
	en.mu.Lock()
	defer en.mu.Unlock()
	ix.mu.Lock() // want "violates the lock-order DAG"
	ix.mu.Unlock()
}

// BlockingSend sends on a channel under a hot lock.
func BlockingSend(ix *Index, ch chan int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ch <- 1 // want "channel send while holding hot lock"
}

// BlockingRecv receives under a hot lock.
func BlockingRecv(en *Entry, ch chan int) int {
	en.mu.Lock()
	defer en.mu.Unlock()
	return <-ch // want "channel receive while holding hot lock"
}

// BlockingFileIO does file I/O under a hot read lock.
func BlockingFileIO(ix *Index, f *os.File) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_ = f.Sync() // want "file I/O call"
}

// BlockingOSCall calls a blocking os helper under a hot lock.
func BlockingOSCall(ix *Index, path string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	_ = os.Remove(path) // want "blocking call os.Remove"
}

// CallbackUnderLock invokes arbitrary policy code under a hot lock.
func CallbackUnderLock(ix *Index, p Policy) {
	ix.mu.Lock()
	p.OnEvict(1) // want "callback invocation"
	ix.mu.Unlock()
}

// SelectUnderLock blocks in select under a hot lock.
func SelectUnderLock(en *Entry, ch chan int) {
	en.mu.Lock()
	defer en.mu.Unlock()
	select { // want "select statement while holding hot lock"
	case <-ch:
	default:
	}
}

// --- negatives -------------------------------------------------------

// CleanDefer is the canonical pattern.
func CleanDefer(e *Engine) {
	e.mu.Lock()
	defer e.mu.Unlock()
	work()
}

// CleanPaired unlocks explicitly on every path.
func CleanPaired(s *Store, cond bool) {
	s.mu.RLock()
	if cond {
		s.mu.RUnlock()
		return
	}
	s.mu.RUnlock()
}

// CleanOrder nests strictly downward (20 then 30).
func CleanOrder(ix *Index, en *Entry) {
	ix.mu.Lock()
	en.mu.Lock()
	en.mu.Unlock()
	ix.mu.Unlock()
}

// CleanDeferredClosure unlocks inside a deferred closure.
func CleanDeferredClosure(e *Engine) {
	e.mu.Lock()
	defer func() {
		work()
		e.mu.Unlock()
	}()
	work()
}

// CleanSendColdLock sends under a ranked-but-not-hot lock: allowed.
func CleanSendColdLock(e *Engine, ch chan int) {
	e.mu.Lock()
	ch <- 1
	e.mu.Unlock()
}

// CleanLoopBalanced locks and unlocks every iteration.
func CleanLoopBalanced(s *Store, n int) {
	for i := 0; i < n; i++ {
		s.mu.Lock()
		s.mu.Unlock()
	}
}

// CleanTryLock transfers conditional ownership to a goroutine; TryLock
// acquisitions are deliberately untracked.
func CleanTryLock(e *Engine) bool {
	if !e.mu.TryLock() {
		return false
	}
	go func() {
		work()
		e.mu.Unlock()
	}()
	return true
}

// CleanSuppressed is a real leak silenced by a reviewed allow comment.
func CleanSuppressed(e *Engine) {
	//kfvet:allow locksafe
	e.mu.Lock()
}
