// Package allocfree is the fixture for the allocfree analyzer: the
// `//kfvet:noalloc` contract, the pool-fed append rule, the whennil
// variant, and transitive callee verification.
package allocfree

import (
	"sync"
	"sync/atomic"
)

// Pool mimics the module's SlicePool API; FixtureConfig registers
// Pool.Get/Pool.Grow as the pool capacity suppliers and Pool.Put as an
// exempt callee.
type Pool struct{ mu sync.Mutex }

func (p *Pool) Get(capHint int) []int { return make([]int, 0, capHint) }
func (p *Pool) Grow(s []int) []int    { return append(s, 0)[:len(s)] }
func (p *Pool) Put(s []int)           { _ = s }

// Entry mimics the pooled-postings hot path.
type Entry struct {
	mu       sync.Mutex
	postings []int
	pool     *Pool
	last     atomic.Int64
}

// CleanInsert is the canonical pool-fed hot path: grow through the
// pool at capacity, append into pool-owned capacity, atomics and
// mutexes allowed.
//
//kfvet:noalloc
func (e *Entry) CleanInsert(v int) {
	e.mu.Lock()
	if len(e.postings) == cap(e.postings) {
		e.postings = e.pool.Grow(e.postings)
	}
	e.postings = append(e.postings, v)
	e.last.Store(int64(v))
	e.mu.Unlock()
}

// CleanTrim exercises the reslice-fed append form and a dynamic call
// through a func-typed parameter (the caller's responsibility).
//
//kfvet:noalloc
func (e *Entry) CleanTrim(keep func(int) bool) []int {
	e.mu.Lock()
	out := e.pool.Get(len(e.postings))
	kept := e.postings[:0]
	for _, v := range e.postings {
		if keep(v) {
			kept = append(kept, v)
		} else {
			out = append(out, v)
		}
	}
	e.postings = kept
	e.mu.Unlock()
	return out
}

// CleanTransitive calls an unannotated helper that is itself clean.
//
//kfvet:noalloc
func (e *Entry) CleanTransitive() int64 { return cleanHelper(e) }

func cleanHelper(e *Entry) int64 { return e.last.Load() }

//kfvet:noalloc
func BadMake(n int) []int {
	return make([]int, n) // want "make allocates"
}

//kfvet:noalloc
func BadAppend(s []int, v int) []int {
	return append(s, v) // want "may grow beyond the pool"
}

//kfvet:noalloc
func BadConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//kfvet:noalloc
func BadClosure(n int) func() int {
	return func() int { return n } // want "captures"
}

//kfvet:noalloc
func BadBox(v int) {
	sink(v) // want "boxes the value"
}

func sink(v interface{}) { _ = v }

//kfvet:noalloc
func BadCallee(e *Entry) []int {
	return allocHelper(e) // want "not allocation-free"
}

func allocHelper(e *Entry) []int { return append([]int(nil), e.postings...) }

//kfvet:noalloc
func BadTransitive(e *Entry) []int {
	return midHelper(e) // want "not allocation-free"
}

// midHelper is clean itself but reaches allocHelper — the verdict
// chains two hops.
func midHelper(e *Entry) []int { return allocHelper(e) }

//kfvet:noalloc
func BadConvert(b []byte) string {
	return string(b) // want "to-string conversion allocates"
}

// Probe mimics a trace probe: nil receiver is the disabled state.
type Probe struct{ stages []int }

// CleanStage is allowed to allocate on the enabled path; the whennil
// contract only requires the terminating nil guard.
//
//kfvet:noalloc whennil
func (t *Probe) CleanStage(v int) {
	if t == nil {
		return
	}
	t.stages = append(t.stages, v)
}

//kfvet:noalloc whennil
func (t *Probe) BadStage(v int) { // want "does not open with a terminating"
	t.stages = append(t.stages, v)
}
