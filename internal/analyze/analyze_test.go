package analyze

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestFixtures runs the full analyzer suite over each fixture package
// and checks the findings against the `// want "substring"` comments:
// every want must be matched by exactly one finding on its line, and
// every finding must be claimed by a want. The Clean*/negative
// functions therefore prove silence as strictly as the positives prove
// detection.
func TestFixtures(t *testing.T) {
	for _, name := range []string{
		"locksafe", "atomiccheck", "nilrecv", "errlint",
		"allocfree", "failpointcov", "lockinfer", "seqlockcheck", "epochcheck",
	} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", name)
			pkg, err := LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			findings := Run([]*Package{pkg}, FixtureConfig(pkg.Path))
			wants := parseWants(t, pkg)
			if len(wants) == 0 {
				t.Fatalf("fixture %s declares no want comments", name)
			}
			for _, f := range findings {
				key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
				text := "[" + f.Analyzer + "] " + f.Message
				want, ok := wants[key]
				switch {
				case !ok:
					t.Errorf("unexpected finding: %s", f)
				case !strings.Contains(text, want):
					t.Errorf("finding at %s = %q, want substring %q", key, text, want)
				default:
					delete(wants, key)
				}
			}
			for key, want := range wants {
				t.Errorf("no finding at %s matching %q", key, want)
			}
		})
	}
}

var wantRE = regexp.MustCompile(`// want "([^"]+)"`)

// parseWants extracts the expected findings from fixture comments,
// keyed by "file:line".
func parseWants(t *testing.T, pkg *Package) map[string]string {
	t.Helper()
	wants := make(map[string]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				if prev, dup := wants[key]; dup {
					t.Fatalf("%s: two want comments (%q, %q); one finding per line", key, prev, m[1])
				}
				wants[key] = m[1]
			}
		}
	}
	return wants
}

// TestModuleClean is the gate the CI static-analysis job enforces: the
// committed tree must produce zero findings under the real config.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type-check is slow; skipped with -short")
	}
	pkgs, err := LoadModule("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; module discovery is broken", len(pkgs))
	}
	for _, f := range Run(pkgs, DefaultConfig()) {
		t.Errorf("%s", f)
	}
}

// TestProtocolAnnotationsPresent pins the module's annotation surface:
// the hot paths, seqlock halves and epoch roles the v2 analyzers verify
// must stay annotated, or the verification silently switches off. It
// also pins the failpoint catalog diff at empty — every declared site
// reachable by the crash matrix.
func TestProtocolAnnotationsPresent(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type-check is slow; skipped with -short")
	}
	pkgs, err := LoadModule("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	cov := Coverage(pkgs, DefaultConfig())
	has := func(list []string, entry string) bool {
		for _, e := range list {
			if e == entry {
				return true
			}
		}
		return false
	}
	for _, entry := range []string{
		"kflushing/internal/index.Entry.insert",
		"kflushing/internal/index.Entry.TrimBeyondTopK",
		"kflushing/internal/store.Store.Put",
		"kflushing/internal/store.Store.Remove",
		"kflushing/internal/blackbox.Recorder.Record",
		"kflushing/internal/trace.Trace.Stage (whennil)",
		"kflushing/internal/trace.DiskProbe.AddSegment (whennil)",
	} {
		if !has(cov.Noalloc, entry) {
			t.Errorf("noalloc annotation missing: %s", entry)
		}
	}
	for _, entry := range []string{
		"kflushing/internal/blackbox.Recorder.Record (writer)",
		"kflushing/internal/blackbox.readSlot (reader)",
	} {
		if !has(cov.Seqlock, entry) {
			t.Errorf("seqlock annotation missing: %s", entry)
		}
	}
	for _, entry := range []string{
		"kflushing/internal/alloc.epochGuard.pin (pin)",
		"kflushing/internal/alloc.epochGuard.unpin (unpin)",
		"kflushing/internal/alloc.epochGuard.tryAdvance (advance)",
		"kflushing/internal/alloc.Recycler.Free (free)",
		"kflushing/internal/alloc.Recycler.reclaimLocked (reclaim)",
	} {
		if !has(cov.Epoch, entry) {
			t.Errorf("epoch annotation missing: %s", entry)
		}
	}
	if len(cov.Dead) > 0 {
		t.Errorf("failpoint sites declared but never evaluated: %v", cov.Dead)
	}
	if len(cov.Declared) == 0 || len(cov.Declared) != len(cov.Evaluated) {
		t.Errorf("failpoint catalog diff not empty: %d declared, %d evaluated",
			len(cov.Declared), len(cov.Evaluated))
	}
}

// TestNilsafeMarkersPresent pins the packages whose nil-receiver
// contract the module relies on: losing a marker would silently turn
// nilrecv off for them.
func TestNilsafeMarkersPresent(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type-check is slow; skipped with -short")
	}
	pkgs, err := LoadModule("../..", []string{"./internal/trace", "./internal/flushlog", "./internal/blackbox"})
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if !hasMarker(pkg, nilsafeMarker) {
			t.Errorf("%s: missing %s marker", pkg.Path, nilsafeMarker)
		}
	}
}
