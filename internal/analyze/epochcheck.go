package analyze

import (
	"go/ast"
	"go/constant"
	"go/token"
	"sort"
)

// epochcheck verifies the allocator's 2-parity epoch reclamation
// protocol (DESIGN.md §7.6) structurally. The guard's correctness is
// arithmetic — registration parity e&1, straggler check on (e+1)&1,
// quarantine expiry at freeEpoch+2 — and a refactor that changes one
// constant silently converts "provably unreachable" into "reused
// under a live reader". The checks are annotation-driven:
//
//	//kfvet:epoch pin      registers in the CURRENT parity
//	                       (active[e&1].Add(1)) and re-validates the
//	                       global epoch afterwards (the racing-advance
//	                       window).
//	//kfvet:epoch unpin    decrements the SAME parity it pinned; it
//	                       must never touch the opposite slot.
//	//kfvet:epoch advance  checks the PREVIOUS parity ((e+1)&1) for
//	                       stragglers and moves the epoch with a
//	                       CompareAndSwap(e, e+1).
//	//kfvet:epoch free     stamps quarantined objects with a plain
//	                       load of the global epoch and never writes
//	                       it.
//	//kfvet:epoch reclaim  releases quarantine only on a
//	                       freeEpoch+2 <= global comparison — the +2
//	                       is the two-parity safety margin.
//
// Any function touching a configured guard's fields without an epoch
// annotation is a finding: the protocol surface is closed.
//
// Separately, the pin-domination rule: every function calling a
// configured posting-copy routine (Config.EpochCopyFuncs — the
// entry-points that copy pooled pointers out of shared structures)
// must call a configured Pin before the first copy and an Unpin
// somewhere in the function (conventionally deferred). Copying
// pooled postings outside a pin window is exactly the use-after-
// reclaim the guard exists to prevent.
//
// Soundness limits: parity is recognized syntactically (x&1 is
// "same", (x+1)&1 is "opposite", anything else unknown and exempt);
// the expiry scan requires every compare-against-sum in a reclaim
// function to use +2, so unrelated arithmetic comparisons there
// would need restructuring; and pin-domination is position-based
// within one function body, not flow-sensitive.
func runEpochCheck(m *module) {
	if len(m.cfg.EpochGuardTypes) == 0 {
		return
	}
	for _, fi := range m.infos {
		acc := guardAccesses(m, fi)
		if fi.ann.epoch == "" {
			if len(acc) > 0 {
				m.report("epochcheck", acc[0].pos,
					"%s touches epoch-guard field %q without a %s annotation; the guard protocol is closed to ad-hoc access",
					fi.decl.Name.Name, acc[0].field, epochMarker)
			}
			continue
		}
		switch fi.ann.epoch {
		case "pin":
			checkEpochPin(m, fi, acc)
		case "unpin":
			checkEpochUnpin(m, fi, acc)
		case "advance":
			checkEpochAdvance(m, fi, acc)
		case "free":
			checkEpochFree(m, fi, acc)
		case "reclaim":
			checkEpochReclaim(m, fi, acc)
		}
	}
	checkPinDomination(m)
}

// Parity of an active[...] index expression.
const (
	paritySame     = 0  // e&1: the epoch's own slot
	parityOpposite = 1  // (e+1)&1: the previous/next slot
	parityUnknown  = -1 // anything else
)

// guardAccess is one atomic operation on an epoch guard's fields.
type guardAccess struct {
	field  string // "global" or "active"
	parity int    // for active accesses
	op     string // atomic method name
	call   *ast.CallExpr
	pos    token.Pos
}

// guardAccesses collects every atomic method call on a configured
// guard's fields, in source order.
func guardAccesses(m *module, fi *funcInfo) []guardAccess {
	var out []guardAccess
	info := fi.pkg.Info
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		target := ast.Unparen(sel.X)
		parity := parityUnknown
		if idx, ok := target.(*ast.IndexExpr); ok {
			parity = parityOf(idx.Index)
			target = ast.Unparen(idx.X)
		}
		inner, ok := target.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		named := namedOf(info.TypeOf(inner.X))
		if named == nil || named.Obj().Pkg() == nil {
			return true
		}
		if !m.cfg.EpochGuardTypes[named.Obj().Pkg().Path()+"."+named.Obj().Name()] {
			return true
		}
		out = append(out, guardAccess{
			field:  inner.Sel.Name,
			parity: parity,
			op:     sel.Sel.Name,
			call:   call,
			pos:    call.Pos(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// parityOf classifies an active[] index expression.
func parityOf(idx ast.Expr) int {
	bin, ok := ast.Unparen(idx).(*ast.BinaryExpr)
	if !ok || bin.Op != token.AND {
		return parityUnknown
	}
	switch x := ast.Unparen(bin.X).(type) {
	case *ast.Ident:
		return paritySame
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			return parityOpposite
		}
	}
	return parityUnknown
}

func checkEpochPin(m *module, fi *funcInfo, acc []guardAccess) {
	registered := false
	for _, a := range acc {
		if a.field != "active" {
			continue
		}
		if a.parity == parityOpposite {
			m.report("epochcheck", a.pos,
				"epoch pin %s touches the opposite parity slot; registration belongs in active[e&1]", fi.decl.Name.Name)
		}
		if a.op == "Add" && a.parity == paritySame && constIntArg(fi.pkg, a.call) == 1 {
			registered = true
		}
	}
	if !registered {
		m.report("epochcheck", fi.decl.Pos(),
			"epoch pin %s never registers with active[e&1].Add(1)", fi.decl.Name.Name)
	}
	if !hasGuardLoadComparison(fi, acc) {
		m.report("epochcheck", fi.decl.Pos(),
			"epoch pin %s does not re-validate the global epoch after registering; a racing advance can strand the pin in the wrong parity",
			fi.decl.Name.Name)
	}
}

func checkEpochUnpin(m *module, fi *funcInfo, acc []guardAccess) {
	released, wrongParity := false, false
	for _, a := range acc {
		if a.field != "active" {
			continue
		}
		if a.parity == parityOpposite {
			wrongParity = true
			m.report("epochcheck", a.pos,
				"epoch unpin %s decrements the opposite parity slot; the release must mirror the pin (active[e&1])", fi.decl.Name.Name)
			continue
		}
		if a.op == "Add" && a.parity == paritySame && constIntArg(fi.pkg, a.call) == -1 {
			released = true
		}
	}
	if !released && !wrongParity {
		m.report("epochcheck", fi.decl.Pos(),
			"epoch unpin %s never releases with active[e&1].Add(-1)", fi.decl.Name.Name)
	}
}

func checkEpochAdvance(m *module, fi *funcInfo, acc []guardAccess) {
	checkedPrev := false
	wrongGate := false
	cas := false
	for _, a := range acc {
		if a.field == "active" && a.op == "Load" {
			if a.parity == parityOpposite {
				checkedPrev = true
			} else if a.parity == paritySame {
				wrongGate = true
				m.report("epochcheck", a.pos,
					"epoch advance %s checks the current parity for stragglers; the gate is the PREVIOUS parity, active[(e+1)&1]",
					fi.decl.Name.Name)
			}
		}
		if a.field == "global" && a.op == "CompareAndSwap" {
			cas = true
			if len(a.call.Args) == 2 {
				if add, ok := ast.Unparen(a.call.Args[1]).(*ast.BinaryExpr); !ok || add.Op != token.ADD {
					m.report("epochcheck", a.pos,
						"epoch advance %s must CAS the global epoch from e to e+1", fi.decl.Name.Name)
				}
			}
		}
		if a.field == "global" && (a.op == "Store" || a.op == "Add") {
			m.report("epochcheck", a.pos,
				"epoch advance %s writes the global epoch without CompareAndSwap; racing advances would skip a parity", fi.decl.Name.Name)
		}
	}
	if !checkedPrev && !wrongGate {
		m.report("epochcheck", fi.decl.Pos(),
			"epoch advance %s never checks active[(e+1)&1] for straggling readers before advancing", fi.decl.Name.Name)
	}
	if !cas {
		m.report("epochcheck", fi.decl.Pos(),
			"epoch advance %s never CompareAndSwaps the global epoch", fi.decl.Name.Name)
	}
}

func checkEpochFree(m *module, fi *funcInfo, acc []guardAccess) {
	stamped := false
	for _, a := range acc {
		if a.field == "global" {
			switch a.op {
			case "Load":
				stamped = true
			default:
				m.report("epochcheck", a.pos,
					"epoch free %s writes the global epoch; free only stamps (Load), advancing is the reclaim path's job", fi.decl.Name.Name)
			}
		}
		if a.field == "active" {
			m.report("epochcheck", a.pos,
				"epoch free %s touches reader registration; free must not interact with pins", fi.decl.Name.Name)
		}
	}
	if !stamped {
		m.report("epochcheck", fi.decl.Pos(),
			"epoch free %s never loads the global epoch; unstamped quarantine has no expiry", fi.decl.Name.Name)
	}
}

func checkEpochReclaim(m *module, fi *funcInfo, acc []guardAccess) {
	for _, a := range acc {
		if a.field == "global" && a.op != "Load" {
			m.report("epochcheck", a.pos,
				"epoch reclaim %s writes the global epoch directly; advancing must go through the advance role", fi.decl.Name.Name)
		}
	}
	// The expiry comparison: some `x+2 <= global` (in any comparison
	// direction). Every compare-against-sum in a reclaim function must
	// carry the +2 — a +1 here is the classic off-by-one that reuses
	// under a live reader.
	found, wrongMargin := false, false
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LEQ, token.LSS, token.GEQ, token.GTR:
		default:
			return true
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			add, ok := ast.Unparen(side).(*ast.BinaryExpr)
			if !ok || add.Op != token.ADD {
				continue
			}
			q, ok := constIntExpr(fi.pkg, add.Y)
			if !ok {
				continue
			}
			if q == 2 {
				found = true
			} else {
				wrongMargin = true
				m.report("epochcheck", bin.Pos(),
					"epoch reclaim %s compares quarantine expiry with +%d; the two-parity guard requires freeEpoch+2 <= global",
					fi.decl.Name.Name, q)
			}
		}
		return true
	})
	if !found && !wrongMargin {
		m.report("epochcheck", fi.decl.Pos(),
			"epoch reclaim %s has no freeEpoch+2 <= global expiry comparison; quarantine never provably expires", fi.decl.Name.Name)
	}
}

// hasGuardLoadComparison reports whether some ==/!= comparison in the
// body has a guard global.Load call as one side — the pin
// re-validation.
func hasGuardLoadComparison(fi *funcInfo, acc []guardAccess) bool {
	loads := make(map[*ast.CallExpr]bool)
	for _, a := range acc {
		if a.field == "global" && a.op == "Load" {
			loads[a.call] = true
		}
	}
	found := false
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			if call, ok := ast.Unparen(side).(*ast.CallExpr); ok && loads[call] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkPinDomination enforces the pin window around posting-copy
// calls in every module function.
func checkPinDomination(m *module) {
	cfg := m.cfg
	if len(cfg.EpochCopyFuncs) == 0 {
		return
	}
	for _, fi := range m.infos {
		var firstCopy *ast.CallExpr
		var copyName string
		pinPos := token.NoPos
		unpinned := false
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := staticCallee(fi.pkg, call)
			if fn == nil {
				return true
			}
			key := funcKey(fn)
			switch {
			case cfg.EpochCopyFuncs[key]:
				if firstCopy == nil || call.Pos() < firstCopy.Pos() {
					firstCopy = call
					copyName = key
				}
			case cfg.EpochPinFuncs[key]:
				if !pinPos.IsValid() || call.Pos() < pinPos {
					pinPos = call.Pos()
				}
			case cfg.EpochUnpinFuncs[key]:
				unpinned = true
			}
			return true
		})
		if firstCopy == nil {
			continue
		}
		if !pinPos.IsValid() || pinPos > firstCopy.Pos() {
			m.report("epochcheck", firstCopy.Pos(),
				"%s copies pooled postings via %s without a preceding recycler pin; the copy can race reclamation",
				fi.decl.Name.Name, copyName)
		} else if !unpinned {
			m.report("epochcheck", firstCopy.Pos(),
				"%s pins the recycler but never unpins; the stranded registration blocks epoch advance forever", fi.decl.Name.Name)
		}
	}
}

// constIntArg resolves a call's single argument to an int constant,
// or 0 with no match.
func constIntArg(pkg *Package, call *ast.CallExpr) int64 {
	if len(call.Args) != 1 {
		return 0
	}
	if v, ok := constIntExpr(pkg, call.Args[0]); ok {
		return v
	}
	return 0
}

// constIntExpr resolves an expression to its integer constant value.
func constIntExpr(pkg *Package, e ast.Expr) (int64, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return v, true
}
