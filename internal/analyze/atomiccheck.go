package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomiccheck enforces all-or-nothing atomicity per field: a struct
// field whose address is ever passed to a sync/atomic function must be
// accessed through sync/atomic everywhere. A plain read racing an
// atomic write is undefined behavior the race detector only reports
// when the schedule interleaves the two — this check reports it before
// the program runs. Fields of the typed atomic kinds (atomic.Int64,
// atomic.Bool, ...) are immune by construction: their plain methods are
// the atomic API.

// collectAtomicFields scans every package for `atomic.XxxInt64(&s.f, ...)`
// call shapes and returns the struct-field objects so addressed, each
// mapped to one sanctioned use for the diagnostic. All packages share
// one type-check universe (see LoadModule), so a field object collected
// in its defining package matches uses from every other package.
func collectAtomicFields(pkgs []*Package) map[*types.Var]token.Position {
	fields := make(map[*types.Var]token.Position)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg, call) || len(call.Args) == 0 {
					return true
				}
				if fld := addrField(pkg, call.Args[0]); fld != nil {
					if _, seen := fields[fld]; !seen {
						fields[fld] = pkg.Fset.Position(call.Pos())
					}
				}
				return true
			})
		}
	}
	return fields
}

// isAtomicCall reports whether call invokes a package-level sync/atomic
// function (AddInt64, LoadPointer, CompareAndSwapUint32, ...).
func isAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addrField unwraps `&x.f` to the struct-field object f, or nil when
// the expression has a different shape.
func addrField(pkg *Package, expr ast.Expr) *types.Var {
	unary, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fld, ok := pkg.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !fld.IsField() {
		return nil
	}
	return fld
}

// runAtomicCheck reports every non-atomic access of a collected field.
// Sanctioned accesses — the `&s.f` address argument of a sync/atomic
// call — are skipped by steering the walk around that argument.
func runAtomicCheck(p *pass, fields map[*types.Var]token.Position) {
	if len(fields) == 0 {
		return
	}
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isAtomicCall(p.pkg, n) {
				if len(n.Args) > 0 && addrField(p.pkg, n.Args[0]) == nil {
					ast.Inspect(n.Args[0], scan)
				}
				for _, a := range n.Args[1:] {
					ast.Inspect(a, scan)
				}
				return false
			}
		case *ast.SelectorExpr:
			fld, ok := p.pkg.Info.Uses[n.Sel].(*types.Var)
			if !ok || !fld.IsField() {
				return true
			}
			if atomicAt, tracked := fields[fld]; tracked {
				p.report(n.Pos(), "field %s.%s is accessed atomically (e.g. at %s) but plainly here; mixed access races",
					fld.Pkg().Name(), fld.Name(), atomicAt)
			}
		}
		return true
	}
	for _, f := range p.pkg.Files {
		ast.Inspect(f, scan)
	}
}
