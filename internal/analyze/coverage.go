package analyze

import "sort"

// CoverageReport summarizes the module's verified-protocol surface: how
// many functions carry each kfvet annotation and how the failpoint
// catalog lines up with the sites actually evaluated. CI prints it so a
// shrinking annotation surface or a growing catalog diff is visible in
// the job log even while the gate itself stays green.
type CoverageReport struct {
	// Noalloc, Seqlock and Epoch list the annotated functions by
	// funcKey ("pkgpath.Type.method"), each with its annotation
	// argument where one applies ("whennil", "writer", "pin", ...).
	Noalloc []string
	Seqlock []string
	Epoch   []string
	// Declared is the failpoint catalog; Evaluated the sites reached by
	// an Eval/EvalWrite call; Dead the difference (declared, never
	// evaluated). A non-empty Dead means runFailpointCov reports it.
	Declared  []string
	Evaluated []string
	Dead      []string
}

// Coverage computes the annotation and failpoint coverage of the loaded
// packages under cfg. It reports nothing; pair it with Run for the
// gate.
func Coverage(pkgs []*Package, cfg Config) CoverageReport {
	var sink []Finding
	m := buildModule(pkgs, cfg, &sink)
	var r CoverageReport
	for _, fi := range m.infos {
		key := funcKey(fi.fn)
		if fi.ann.noalloc {
			if fi.ann.whenNil {
				r.Noalloc = append(r.Noalloc, key+" (whennil)")
			} else {
				r.Noalloc = append(r.Noalloc, key)
			}
		}
		if fi.ann.seqlock != "" {
			r.Seqlock = append(r.Seqlock, key+" ("+fi.ann.seqlock+")")
		}
		if fi.ann.epoch != "" {
			r.Epoch = append(r.Epoch, key+" ("+fi.ann.epoch+")")
		}
	}
	declared := declaredSites(pkgs, cfg)
	evaluated := evaluatedSites(pkgs, cfg, declared, nil)
	for site := range declared {
		r.Declared = append(r.Declared, site)
		if !evaluated[site] {
			r.Dead = append(r.Dead, site)
		}
	}
	for site := range evaluated {
		r.Evaluated = append(r.Evaluated, site)
	}
	sort.Strings(r.Noalloc)
	sort.Strings(r.Seqlock)
	sort.Strings(r.Epoch)
	sort.Strings(r.Declared)
	sort.Strings(r.Evaluated)
	sort.Strings(r.Dead)
	return r
}
