package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// locksafe checks three lock invariants over every function body:
//
//  1. Release on all paths: a Lock()/RLock() must be matched by an
//     Unlock()/RUnlock() — paired before every return and before the
//     fall-through end of the function, or registered with defer. A
//     lock acquired inside a branch or loop body must be released
//     before that block ends (on the next iteration the Lock would
//     self-deadlock; after the branch the merge states disagree).
//  2. No blocking under hot locks: while a lock named in
//     Config.NoBlockLocks is held, channel sends/receives, select
//     statements, file I/O, and policy-callback invocations are
//     forbidden — they turn a nanosecond critical section into an
//     unbounded one and invite lock-ordering deadlocks through
//     arbitrary callback code.
//  3. Lock-order DAG: while a ranked lock is held, only strictly
//     higher-ranked locks may be acquired, and no held lock may be
//     acquired again. Intra-function nested acquisitions therefore
//     cannot deadlock by construction.
//
// The analysis is intraprocedural and path-insensitive by design:
// TryLock/TryRLock acquisitions are not tracked (their ownership is
// conditional and conventionally handed to *Locked helpers), and locks
// released by callees are not modeled. Cross-function lock transfer is
// covered by the DAG declaration in DESIGN.md §7.3, not by this check.
type lockChecker struct {
	p *pass
	// lits queues nested function literals for separate analysis with a
	// fresh lock state (goroutine bodies, deferred closures).
	lits []*ast.FuncLit
	// silent suppresses locksafe's own findings; lockorder-infer reuses
	// the held-state machine without double-reporting intraprocedural
	// violations.
	silent bool
	// onCall, when set, observes every non-mutex call expression with
	// the lock state held at that point — the hook lockorder-infer
	// checks call-graph-propagated acquisition sets against.
	onCall func(call *ast.CallExpr, held []heldLock)
}

// reportf emits a locksafe finding unless the checker is running as a
// silent held-state engine for another analyzer.
func (c *lockChecker) reportf(pos token.Pos, format string, args ...interface{}) {
	if c.silent {
		return
	}
	c.p.report(pos, format, args...)
}

// heldLock is one statically-tracked acquisition.
type heldLock struct {
	key      string    // printed lock expression, the pairing identity
	rankKey  string    // "pkg.Type.field" identity for rank/hot lookups
	rank     int       // DAG rank, -1 when unranked
	read     bool      // RLock rather than Lock
	deferred bool      // an Unlock is registered with defer
	pos      token.Pos // the Lock call, for reporting
}

func runLocksafe(p *pass) {
	c := &lockChecker{p: p}
	funcBodies(p.pkg, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		c.checkFunc(body)
	})
	// Function literals found while checking spawn further checks; the
	// queue grows until every nested literal has been analyzed.
	for len(c.lits) > 0 {
		lit := c.lits[0]
		c.lits = c.lits[1:]
		c.checkFunc(lit.Body)
	}
}

// checkFunc analyzes one function body starting with no locks held.
func (c *lockChecker) checkFunc(body *ast.BlockStmt) {
	held := c.block(body.List, nil)
	for _, h := range held {
		if !h.deferred {
			c.reportf(h.pos, "%s.Lock() is not released on the fall-through return path (no Unlock or defer)", h.key)
		}
	}
}

// mutexOp classifies a call expression against the sync mutex API.
type mutexOp int

const (
	opNone mutexOp = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
	opTryLock // tracked only to be ignored
)

// classifyMutexCall reports whether call is a sync.Mutex/RWMutex method
// invocation and on which lock expression.
func (c *lockChecker) classifyMutexCall(call *ast.CallExpr) (mutexOp, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, nil
	}
	fn, ok := c.p.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return opNone, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return opNone, nil
	}
	recv := namedOf(sig.Recv().Type())
	if recv == nil {
		return opNone, nil
	}
	if name := recv.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return opNone, nil
	}
	switch sel.Sel.Name {
	case "Lock":
		return opLock, sel.X
	case "RLock":
		return opRLock, sel.X
	case "Unlock":
		return opUnlock, sel.X
	case "RUnlock":
		return opRUnlock, sel.X
	case "TryLock", "TryRLock":
		return opTryLock, sel.X
	}
	return opNone, nil
}

// namedOf unwraps pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, _ := t.(*types.Named)
	return named
}

// lockRankKey derives the configured identity of a lock expression:
// "pkgpath.Type.field" for a struct-field mutex, "pkgpath.name" for a
// package-level one, "" (unranked) otherwise.
func (c *lockChecker) lockRankKey(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		tv, ok := c.p.pkg.Info.Types[e.X]
		if !ok {
			return ""
		}
		named := namedOf(tv.Type)
		if named == nil || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name
	case *ast.Ident:
		obj := c.p.pkg.Info.Uses[e]
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() { // package-level var
			return obj.Pkg().Path() + "." + obj.Name()
		}
	}
	return ""
}

// block processes a statement list sequentially, threading the held-set
// through and returning the state at the end of the list.
func (c *lockChecker) block(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range stmts {
		held = c.stmt(s, held)
	}
	return held
}

// branch processes a nested block (if/for/switch body) on a copy of the
// held-set and reports locks the block acquires but does not release by
// its end — unless the block terminates (return/panic), in which case
// the return-path check inside already ran.
func (c *lockChecker) branch(stmts []ast.Stmt, held []heldLock, what string) {
	entry := len(held)
	out := c.block(stmts, append([]heldLock(nil), held...))
	if terminates(stmts) {
		return
	}
	for _, h := range out[min(entry, len(out)):] {
		if !h.deferred && !heldIn(held, h) {
			c.reportf(h.pos, "%s.Lock() acquired in %s is not released before the %s ends", h.key, what, what)
		}
	}
}

// heldIn reports whether h (by pairing key and mode) was already in the
// entry state — i.e. it is not a branch-local acquisition.
func heldIn(held []heldLock, h heldLock) bool {
	for _, e := range held {
		if e.key == h.key && e.read == h.read {
			return true
		}
	}
	return false
}

// terminates reports whether a statement list ends in a statement that
// never falls through: return, panic, or an unconditional for-loop.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		return last.Cond == nil && !hasBreak(last.Body)
	}
	return false
}

// hasBreak reports whether body contains a break that exits this loop.
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false // break inside these does not exit our loop
		}
		return !found
	})
	return found
}

// stmt processes one statement and returns the updated held-set.
func (c *lockChecker) stmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return c.scanExpr(s.X, held)
	case *ast.SendStmt:
		c.checkBlocking(s.Pos(), held, "channel send")
		held = c.scanExpr(s.Chan, held)
		return c.scanExpr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = c.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			held = c.scanExpr(e, held)
		}
		return held
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return held
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, e := range vs.Values {
					held = c.scanExpr(e, held)
				}
			}
		}
		return held
	case *ast.IncDecStmt:
		return c.scanExpr(s.X, held)
	case *ast.DeferStmt:
		return c.deferStmt(s, held)
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.lits = append(c.lits, lit)
		}
		for _, a := range s.Call.Args {
			held = c.scanExpr(a, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = c.scanExpr(e, held)
		}
		for _, h := range held {
			if !h.deferred {
				c.reportf(s.Pos(), "return while %s is held (locked at %s) without unlock or defer",
					h.key, c.p.pkg.Fset.Position(h.pos))
			}
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = c.stmt(s.Init, held)
		}
		held = c.scanExpr(s.Cond, held)
		c.branch(s.Body.List, held, "branch")
		if s.Else != nil {
			c.branch([]ast.Stmt{s.Else}, held, "branch")
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = c.stmt(s.Init, held)
		}
		if s.Cond != nil {
			held = c.scanExpr(s.Cond, held)
		}
		c.branch(s.Body.List, held, "loop body")
		return held
	case *ast.RangeStmt:
		held = c.scanExpr(s.X, held)
		c.branch(s.Body.List, held, "loop body")
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = c.stmt(s.Init, held)
		}
		if s.Tag != nil {
			held = c.scanExpr(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.branch(cc.Body, held, "case body")
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.branch(cc.Body, held, "case body")
			}
		}
		return held
	case *ast.SelectStmt:
		c.checkBlocking(s.Pos(), held, "select statement")
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				c.branch(cc.Body, held, "case body")
			}
		}
		return held
	case *ast.BlockStmt:
		return c.block(s.List, held)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, held)
	}
	return held
}

// deferStmt registers deferred unlocks: `defer mu.Unlock()` directly,
// or any unlock inside a deferred closure.
func (c *lockChecker) deferStmt(s *ast.DeferStmt, held []heldLock) []heldLock {
	if op, lockExpr := c.classifyMutexCall(s.Call); op == opUnlock || op == opRUnlock {
		key := types.ExprString(lockExpr)
		return markDeferred(held, key, op == opRUnlock)
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, lockExpr := c.classifyMutexCall(call); op == opUnlock || op == opRUnlock {
				held = markDeferred(held, types.ExprString(lockExpr), op == opRUnlock)
			}
			return true
		})
		c.lits = append(c.lits, lit)
	}
	return held
}

// markDeferred flags the most recent matching acquisition as released
// by defer.
func markDeferred(held []heldLock, key string, read bool) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].key == key && held[i].read == read && !held[i].deferred {
			held[i].deferred = true
			break
		}
	}
	return held
}

// scanExpr walks one expression for mutex operations, blocking channel
// receives, and blocking calls, returning the updated held-set.
// Function literals are queued for separate analysis, not descended
// into — their bodies run under their own lock state.
func (c *lockChecker) scanExpr(expr ast.Expr, held []heldLock) []heldLock {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.lits = append(c.lits, n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.checkBlocking(n.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			held = c.call(n, held)
		}
		return true
	})
	return held
}

// call applies one call expression to the lock state.
func (c *lockChecker) call(call *ast.CallExpr, held []heldLock) []heldLock {
	op, lockExpr := c.classifyMutexCall(call)
	switch op {
	case opLock, opRLock:
		return c.acquire(call, lockExpr, op == opRLock, held)
	case opUnlock, opRUnlock:
		return release(held, types.ExprString(lockExpr), op == opRUnlock)
	case opTryLock:
		return held // conditional ownership, conventionally handed to *Locked helpers
	}
	if c.onCall != nil {
		c.onCall(call, held)
	}
	if why := c.blockingCall(call); why != "" {
		c.checkBlocking(call.Pos(), held, why)
	}
	return held
}

// acquire records a Lock/RLock, enforcing the no-recursion and
// lock-order rules against everything currently held.
func (c *lockChecker) acquire(call *ast.CallExpr, lockExpr ast.Expr, read bool, held []heldLock) []heldLock {
	key := types.ExprString(lockExpr)
	rankKey := c.lockRankKey(lockExpr)
	rank := -1
	if r, ok := c.p.cfg.LockRank[rankKey]; ok {
		rank = r
	}
	for _, h := range held {
		if h.key == key {
			c.reportf(call.Pos(), "%s is already held (locked at %s); recursive acquisition deadlocks",
				key, c.p.pkg.Fset.Position(h.pos))
			continue
		}
		if rank >= 0 && h.rank >= 0 && rank <= h.rank {
			c.reportf(call.Pos(), "acquiring %s (rank %d) while holding %s (rank %d) violates the lock-order DAG",
				rankKey, rank, h.rankKey, h.rank)
		}
	}
	return append(held, heldLock{key: key, rankKey: rankKey, rank: rank, read: read, pos: call.Pos()})
}

// release drops the most recent matching acquisition. Unmatched
// unlocks are ignored: helpers conventionally named *Locked release
// locks their callers acquired, which an intraprocedural pass cannot
// pair.
func release(held []heldLock, key string, read bool) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].key == key && held[i].read == read {
			return append(append([]heldLock(nil), held[:i]...), held[i+1:]...)
		}
	}
	return held
}

// checkBlocking reports `what` if any held lock is declared hot.
func (c *lockChecker) checkBlocking(pos token.Pos, held []heldLock, what string) {
	for _, h := range held {
		if c.p.cfg.NoBlockLocks[h.rankKey] {
			c.reportf(pos, "%s while holding hot lock %s (locked at %s)",
				what, h.key, c.p.pkg.Fset.Position(h.pos))
			return
		}
	}
}

// blockingCall classifies a call as a blocking operation: file I/O
// (os.File methods and os package helpers), time.Sleep, or an invocation
// through a declared callback interface. It returns a description, or
// "" for non-blocking calls.
func (c *lockChecker) blockingCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := c.p.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		rt := types.Unalias(recv.Type())
		if named := namedOf(rt); named != nil && named.Obj().Pkg() != nil {
			key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if c.p.cfg.BlockingRecvTypes[key] {
				return "file I/O call (" + key + ")." + fn.Name()
			}
			if c.p.cfg.CallbackIfaces[key] {
				return "callback invocation (" + key + ")." + fn.Name()
			}
		}
		// Interface methods may also be reached through an unnamed
		// embedded interface; the named lookup above covers this
		// codebase's declared callbacks.
		return ""
	}
	if c.p.cfg.BlockingFuncs[fn.Pkg().Path()+"."+fn.Name()] {
		return "blocking call " + fn.Pkg().Path() + "." + fn.Name()
	}
	return ""
}
