package analyze

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// failpointcov keeps the failpoint catalog and the fallible I/O
// surface of the durability packages in lockstep, so new I/O cannot
// silently escape the crash matrix and dead catalog entries cannot
// accumulate. Three checks, all module-wide:
//
//  1. Catalog diff. A failpoint site is a package-level string
//     constant in Config.FailpointSitePkg whose value contains "/"
//     (the site-name grammar; plain strings like the env-var name are
//     not sites). Every declared site must be evaluated somewhere in
//     the module, and every Eval/EvalWrite argument must be a
//     declared constant — string literals at call sites would bypass
//     the catalog and the crash matrix that iterates it.
//
//  2. Adjacency. In Config.FailpointCovPkgs (wal, disk, engine),
//     every fallible I/O call whose error is consumed must share a
//     function with at least one failpoint evaluation. Per-function
//     granularity matches how the crash matrix exercises code: the
//     failpoint fires where the protocol step runs, so a function
//     performing I/O with no site is a protocol step the matrix
//     cannot interrupt. Best-effort calls that explicitly discard
//     the error (`_ = os.Remove(tmp)`) and deferred cleanups are
//     exempt: they are not durability steps, and errlint separately
//     polices which errors may be discarded.
//
// Soundness limits: adjacency is per-function, not per-statement, so
// one Eval covers all I/O in its function; I/O reached through
// helpers in non-covered packages is out of scope; and the "/" site
// grammar is a convention, not a type.
func runFailpointCov(m *module) {
	cfg := m.cfg
	if cfg.FailpointSitePkg == "" || len(cfg.FailpointEvalFuncs) == 0 {
		return
	}

	// Declared sites, from the catalog package's string constants.
	declared := declaredSites(m.pkgs, cfg)
	if len(declared) == 0 {
		return // catalog package not in this load; nothing to diff
	}

	// Evaluated sites, from every Eval/EvalWrite call in the module.
	evaluated := evaluatedSites(m.pkgs, cfg, declared, m)

	// Catalog diff: declared but never evaluated.
	var dead []string
	for site := range declared {
		if !evaluated[site] {
			dead = append(dead, site)
		}
	}
	sort.Strings(dead)
	for _, site := range dead {
		m.report("failpointcov", declared[site],
			"failpoint site %q is declared but never evaluated; dead catalog entries make the crash matrix lie", site)
	}

	// Adjacency in the covered packages.
	for _, pkg := range m.pkgs {
		if !cfg.FailpointCovPkgs[pkg.Path] {
			continue
		}
		pkg := pkg
		funcBodies(pkg, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			checkFailpointAdjacency(m, pkg, decl, body)
		})
	}
}

// declaredSites collects the failpoint catalog: package-level string
// constants in cfg.FailpointSitePkg whose value contains "/".
func declaredSites(pkgs []*Package, cfg Config) map[string]token.Pos {
	declared := make(map[string]token.Pos)
	for _, pkg := range pkgs {
		if pkg.Path != cfg.FailpointSitePkg {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						cn, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok {
							continue
						}
						if val, ok := constValueString(cn); ok && strings.Contains(val, "/") {
							declared[val] = name.Pos()
						}
					}
				}
			}
		}
	}
	return declared
}

// evaluatedSites collects every constant site passed to an
// Eval/EvalWrite call anywhere in the module. When m is non-nil,
// non-constant and undeclared site arguments are reported as findings;
// with m nil (the Coverage path) they are silently skipped.
func evaluatedSites(pkgs []*Package, cfg Config, declared map[string]token.Pos, m *module) map[string]bool {
	evaluated := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := staticCallee(pkg, call)
				if fn == nil || !cfg.FailpointEvalFuncs[funcKey(fn)] || len(call.Args) == 0 {
					return true
				}
				site, ok := constStringArg(pkg, call.Args[0])
				if !ok {
					if m != nil {
						m.report("failpointcov", call.Args[0].Pos(),
							"failpoint site argument %s is not a compile-time constant; sites must come from the catalog",
							types.ExprString(call.Args[0]))
					}
					return true
				}
				if _, ok := declared[site]; !ok {
					if m != nil {
						m.report("failpointcov", call.Args[0].Pos(),
							"failpoint site %q is not declared in %s; the crash matrix cannot reach it", site, cfg.FailpointSitePkg)
					}
					return true
				}
				evaluated[site] = true
				return true
			})
		}
	}
	return evaluated
}

// checkFailpointAdjacency reports consumed-error fallible I/O in a
// function containing no failpoint evaluation.
func checkFailpointAdjacency(m *module, pkg *Package, decl *ast.FuncDecl, body *ast.BlockStmt) {
	cfg := m.cfg
	hasEval := false
	exempt := make(map[token.Pos]bool) // discarded-error and deferred call positions
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := staticCallee(pkg, n); fn != nil && cfg.FailpointEvalFuncs[funcKey(fn)] {
				hasEval = true
			}
		case *ast.DeferStmt:
			markCalls(n.Call, exempt)
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN && allBlank(n.Lhs) {
				for _, rhs := range n.Rhs {
					markCalls(rhs, exempt)
				}
			}
		}
		return true
	})
	if hasEval {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || exempt[call.Pos()] {
			return true
		}
		if why := fallibleIOCall(m, pkg, call); why != "" {
			m.report("failpointcov", call.Pos(),
				"fallible I/O call %s in %s has no adjacent failpoint; register a site in %s so the crash matrix can interrupt it",
				why, decl.Name.Name, cfg.FailpointSitePkg)
		}
		return true
	})
}

// fallibleIOCall classifies a call against the configured fallible
// I/O surface, returning its display name or "".
func fallibleIOCall(m *module, pkg *Package, call *ast.CallExpr) string {
	fn := staticCallee(pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil && named.Obj().Pkg() != nil {
			key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
			if m.cfg.FallibleIOMethods[key] {
				return key
			}
		}
		return ""
	}
	key := fn.Pkg().Path() + "." + fn.Name()
	if m.cfg.FallibleIOFuncs[key] {
		return key
	}
	return ""
}

// markCalls records the positions of every call inside e.
func markCalls(e ast.Expr, set map[token.Pos]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			set[call.Pos()] = true
		}
		return true
	})
}

// allBlank reports whether every expression is the blank identifier.
func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return len(exprs) > 0
}

// constValueString extracts a string constant's value.
func constValueString(c *types.Const) (string, bool) {
	v := c.Val()
	if v == nil || v.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(v), true
}
