// Package analyze is kfvet: a codebase-aware static analysis suite for
// the concurrency and invariant contracts `go vet` and the race
// detector cannot check before code runs. It parses and type-checks the
// whole module on the stdlib go/ast + go/types toolchain (following the
// hand-written internal/promlint precedent — no external analysis
// framework) and runs nine analyzers. Four are intraprocedural (v1):
//
//   - locksafe: every Lock() is released on all return paths (paired or
//     deferred), no blocking operation runs while a declared hot mutex
//     is held, and nested acquisitions respect the lock-order DAG
//     (engine → policy → index → entry → store → disk → wal), making
//     intra-function deadlocks impossible by construction.
//   - atomiccheck: a struct field accessed through sync/atomic anywhere
//     must be accessed atomically everywhere — mixed plain/atomic
//     access is the classic race the detector only catches when the
//     schedule cooperates.
//   - nilrecv: packages opted in with a `//kfvet:nilsafe` marker must
//     guard every pointer-receiver method with a `receiver == nil`
//     check before touching fields, enforcing the documented
//     nil-receiver-safe contracts of internal/trace and
//     internal/flushlog.
//   - errlint: no discarded error from Write/Sync/Close in the
//     durability-bearing packages (wal, disk, engine) — an unchecked
//     Close is a silent torn segment.
//
// Five are interprocedural and annotation-driven (v2), built on a
// module-wide function index and static call graph (module.go):
//
//   - allocfree: `//kfvet:noalloc` functions contain no allocating
//     construct and call only allocation-free callees, verified
//     transitively; `whennil` restricts the contract to the
//     nil-receiver disabled path (trace probes).
//   - failpointcov: the failpoint catalog and the fallible I/O surface
//     of wal/disk/engine stay in lockstep — every declared site is
//     evaluated, every evaluation uses a declared constant, and every
//     consumed-error I/O call shares a function with a failpoint.
//   - lockorder-infer: locksafe's DAG extended with call-graph-
//     propagated acquisition sets, catching A→f()→B inversions that
//     thread any number of calls.
//   - seqlockcheck: the flight recorder's invalidate→fill→publish
//     writer and load→copy→recheck reader shapes, enforced on every
//     function that touches a slot (`//kfvet:seqlock writer|reader`).
//   - epochcheck: the allocator's 2-parity epoch guard arithmetic
//     (`//kfvet:epoch pin|unpin|advance|free|reclaim`) plus the rule
//     that posting-copy calls are dominated by a recycler pin.
//
// A finding is suppressed by a `//kfvet:allow <analyzer>` comment on
// the flagged line or the line above it; suppressions are deliberate,
// reviewable artifacts. kfvet runs as a package test (TestModuleClean),
// as the cmd/kfvet binary, and as the CI static-analysis job.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Pos locates the offending code.
	Pos token.Position
	// Message describes the violation.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Config declares the codebase-specific knowledge the analyzers check
// against: the lock-order DAG, the hot locks that must never wrap a
// blocking operation, and the packages where discarded durability
// errors are findings.
type Config struct {
	// LockRank maps a lock identity ("pkgpath.Type.field" for struct
	// fields, "pkgpath.var" for package-level mutexes) to its level in
	// the lock-order DAG. While a ranked lock is held, only strictly
	// higher-ranked locks may be acquired; equal or lower acquisitions
	// are order violations (same-rank covers the two-shards case).
	// Unranked locks are exempt from ordering.
	LockRank map[string]int
	// NoBlockLocks are the hot lock identities under which blocking
	// operations — channel sends/receives, select, file I/O, policy
	// callback invocations — are forbidden.
	NoBlockLocks map[string]bool
	// BlockingRecvTypes are named types ("os.File") whose method calls
	// count as blocking I/O.
	BlockingRecvTypes map[string]bool
	// BlockingFuncs are package-level functions ("os.WriteFile",
	// "time.Sleep") that count as blocking.
	BlockingFuncs map[string]bool
	// CallbackIfaces are interface types ("kflushing/internal/policy.Policy")
	// whose method invocations count as blocking: callbacks run
	// arbitrary user code and must never execute under a hot lock.
	CallbackIfaces map[string]bool
	// ErrlintPkgs are the import paths where errlint applies.
	ErrlintPkgs map[string]bool
	// ErrlintMethods are the method names whose discarded error returns
	// errlint reports.
	ErrlintMethods map[string]bool

	// --- kfvet v2: interprocedural analyzers ---

	// NoallocAllowedPkgs are import paths every function of which is an
	// allowed callee inside `//kfvet:noalloc` bodies (sync, sync/atomic:
	// runtime-managed, no heap traffic in steady state).
	NoallocAllowedPkgs map[string]bool
	// NoallocAllowedFuncs are individual allowed callees by funcKey
	// ("time.Since") — vetted non-allocating stdlib calls.
	NoallocAllowedFuncs map[string]bool
	// NoallocPoolFuncs are the pool capacity suppliers (SlicePool.Get,
	// SlicePool.Grow): calls are allowed, and an append whose
	// destination was assigned from one is pool-fed, not a finding.
	NoallocPoolFuncs map[string]bool
	// NoallocExemptCallees are further pool-API callees (Put, recycler
	// methods) allowed inside noalloc bodies; the pool is the contract
	// boundary and allocates internally by design.
	NoallocExemptCallees map[string]bool

	// FailpointEvalFuncs are the failpoint evaluation entry-points by
	// funcKey; their first argument is a site name.
	FailpointEvalFuncs map[string]bool
	// FailpointSitePkg is the import path of the failpoint catalog:
	// its slash-bearing string constants are the declared sites.
	FailpointSitePkg string
	// FailpointCovPkgs are the packages where every consumed-error
	// fallible I/O call must share a function with a failpoint.
	FailpointCovPkgs map[string]bool
	// FallibleIOMethods are fallible I/O methods by "pkg.Type.Method".
	FallibleIOMethods map[string]bool
	// FallibleIOFuncs are fallible I/O package functions by "pkg.Func".
	FallibleIOFuncs map[string]bool

	// SeqlockSlotTypes maps a seqlock slot struct ("pkg.slot") to its
	// sequence field name; seqlockcheck closes these types' fields to
	// annotated writers/readers.
	SeqlockSlotTypes map[string]string

	// EpochGuardTypes are the epoch-guard structs ("pkg.epochGuard")
	// whose field accesses epochcheck closes to annotated roles.
	EpochGuardTypes map[string]bool
	// EpochCopyFuncs are the posting-copy entry-points that must be
	// dominated by a pin; EpochPinFuncs/EpochUnpinFuncs name the
	// pin/unpin API.
	EpochCopyFuncs  map[string]bool
	EpochPinFuncs   map[string]bool
	EpochUnpinFuncs map[string]bool
}

// DefaultConfig returns the declared invariants of this codebase.
//
// The lock-order DAG (acquire downward only):
//
//	10 engine.Engine.flushMu
//	11 tuner.Tuner.mu (controller state; ticked under flushMu)
//	12 engine.flightGroup.mu
//	15 policy.LRU.mu / policy.FIFO.mu
//	20 index.Index.overMu
//	22 index.shard.mu
//	30 index.Entry.mu
//	35 alloc.SlicePool.mu (posting-array pool; taken under Entry.mu)
//	36 alloc.Recycler.mu (record recycler; leaf)
//	40 store.shard.mu
//	50 policy.VictimBuffer.mu
//	60 disk.Tier.flushMu
//	62 disk.Tier.mu
//	64 disk.cacheShard.mu
//	70 wal.Log.mu
//	80 trace.Trace.mu / 81 trace.DiskProbe.mu
func DefaultConfig() Config {
	return Config{
		LockRank: map[string]int{
			"kflushing/internal/engine.Engine.flushMu":  10,
			"kflushing/internal/tuner.Tuner.mu":         11,
			"kflushing/internal/engine.flightGroup.mu":  12,
			"kflushing/internal/policy.LRU.mu":          15,
			"kflushing/internal/policy.FIFO.mu":         15,
			"kflushing/internal/index.Index.overMu":     20,
			"kflushing/internal/index.shard.mu":         22,
			"kflushing/internal/index.Entry.mu":         30,
			"kflushing/internal/alloc.SlicePool.mu":     35,
			"kflushing/internal/alloc.Recycler.mu":      36,
			"kflushing/internal/store.shard.mu":         40,
			"kflushing/internal/policy.VictimBuffer.mu": 50,
			"kflushing/internal/disk.Tier.flushMu":      60,
			"kflushing/internal/disk.Tier.mu":           62,
			"kflushing/internal/disk.cacheShard.mu":     64,
			"kflushing/internal/wal.Log.mu":             70,
			"kflushing/internal/trace.Trace.mu":         80,
			"kflushing/internal/trace.DiskProbe.mu":     81,
		},
		NoBlockLocks: map[string]bool{
			"kflushing/internal/index.Index.overMu":    true,
			"kflushing/internal/index.shard.mu":        true,
			"kflushing/internal/index.Entry.mu":        true,
			"kflushing/internal/alloc.SlicePool.mu":    true,
			"kflushing/internal/alloc.Recycler.mu":     true,
			"kflushing/internal/store.shard.mu":        true,
			"kflushing/internal/engine.flightGroup.mu": true,
		},
		BlockingRecvTypes: map[string]bool{
			"os.File": true,
		},
		BlockingFuncs: map[string]bool{
			"os.Open": true, "os.OpenFile": true, "os.Create": true,
			"os.CreateTemp": true, "os.ReadFile": true, "os.WriteFile": true,
			"os.Remove": true, "os.RemoveAll": true, "os.Rename": true,
			"os.MkdirAll": true, "os.Stat": true,
			"time.Sleep": true,
		},
		CallbackIfaces: map[string]bool{
			"kflushing/internal/policy.Policy": true,
		},
		ErrlintPkgs: map[string]bool{
			"kflushing/internal/wal":    true,
			"kflushing/internal/disk":   true,
			"kflushing/internal/engine": true,
		},
		ErrlintMethods: map[string]bool{
			"Write": true, "WriteString": true, "Sync": true, "Close": true,
		},
		NoallocAllowedPkgs: map[string]bool{
			"sync": true, "sync/atomic": true,
		},
		NoallocAllowedFuncs: map[string]bool{
			"time.Since":                true,
			"time.Duration.Nanoseconds": true,
		},
		NoallocPoolFuncs: map[string]bool{
			"kflushing/internal/alloc.SlicePool.Get":  true,
			"kflushing/internal/alloc.SlicePool.Grow": true,
		},
		NoallocExemptCallees: map[string]bool{
			"kflushing/internal/alloc.SlicePool.Put":   true,
			"kflushing/internal/alloc.ShrinkThreshold": true,
			"kflushing/internal/alloc.Recycler.Pin":    true,
			"kflushing/internal/alloc.Recycler.Unpin":  true,
		},
		FailpointEvalFuncs: map[string]bool{
			"kflushing/internal/failpoint.Eval":      true,
			"kflushing/internal/failpoint.EvalWrite": true,
		},
		FailpointSitePkg: "kflushing/internal/failpoint",
		FailpointCovPkgs: map[string]bool{
			"kflushing/internal/wal":    true,
			"kflushing/internal/disk":   true,
			"kflushing/internal/engine": true,
		},
		FallibleIOMethods: map[string]bool{
			"os.File.Write": true, "os.File.WriteString": true, "os.File.WriteAt": true,
			"os.File.Sync": true, "os.File.Truncate": true,
		},
		FallibleIOFuncs: map[string]bool{
			"os.Rename": true, "os.Remove": true, "os.RemoveAll": true,
			"os.Truncate": true, "os.MkdirAll": true, "os.Create": true,
			"os.CreateTemp": true, "os.WriteFile": true,
		},
		SeqlockSlotTypes: map[string]string{
			"kflushing/internal/blackbox.slot": "seq",
		},
		EpochGuardTypes: map[string]bool{
			"kflushing/internal/alloc.epochGuard": true,
		},
		EpochCopyFuncs: map[string]bool{
			"kflushing/internal/index.Entry.TopK": true,
			"kflushing/internal/index.Entry.All":  true,
		},
		EpochPinFuncs: map[string]bool{
			"kflushing/internal/alloc.Recycler.Pin": true,
		},
		EpochUnpinFuncs: map[string]bool{
			"kflushing/internal/alloc.Recycler.Unpin": true,
		},
	}
}

// FixtureConfig returns the config the analyzer fixtures are written
// against: rank/hot-lock/errlint declarations keyed to the fixture
// package types instead of the real module's.
func FixtureConfig(pkgPath string) Config {
	cfg := DefaultConfig()
	cfg.LockRank = map[string]int{
		pkgPath + ".Engine.mu": 10,
		pkgPath + ".Index.mu":  20,
		pkgPath + ".Entry.mu":  30,
		pkgPath + ".Store.mu":  40,
	}
	cfg.NoBlockLocks = map[string]bool{
		pkgPath + ".Index.mu": true,
		pkgPath + ".Entry.mu": true,
	}
	cfg.CallbackIfaces = map[string]bool{
		pkgPath + ".Policy": true,
	}
	cfg.ErrlintPkgs = map[string]bool{pkgPath: true}
	// v2 analyzers, keyed to the fixture package's own types. The
	// annotation-driven passes (allocfree, lockorder-infer) are safe to
	// arm everywhere; the type/package-scoped ones (failpointcov,
	// seqlockcheck, epochcheck) arm only in their own fixture so e.g.
	// the locksafe fixture's deliberate os.File traffic doesn't trip
	// failpoint coverage.
	cfg.NoallocPoolFuncs = map[string]bool{
		pkgPath + ".Pool.Get":  true,
		pkgPath + ".Pool.Grow": true,
	}
	cfg.NoallocExemptCallees = map[string]bool{
		pkgPath + ".Pool.Put": true,
	}
	cfg.FailpointSitePkg = ""
	cfg.FailpointEvalFuncs = nil
	cfg.FailpointCovPkgs = nil
	cfg.SeqlockSlotTypes = nil
	cfg.EpochGuardTypes = nil
	cfg.EpochCopyFuncs, cfg.EpochPinFuncs, cfg.EpochUnpinFuncs = nil, nil, nil
	switch pkgPath {
	case "failpointcov":
		cfg.FailpointSitePkg = pkgPath
		cfg.FailpointEvalFuncs = map[string]bool{
			pkgPath + ".Eval":      true,
			pkgPath + ".EvalWrite": true,
		}
		cfg.FailpointCovPkgs = map[string]bool{pkgPath: true}
	case "seqlockcheck":
		cfg.SeqlockSlotTypes = map[string]string{pkgPath + ".slot": "seq"}
	case "epochcheck":
		cfg.EpochGuardTypes = map[string]bool{pkgPath + ".guard": true}
		cfg.EpochCopyFuncs = map[string]bool{pkgPath + ".Entry.TopK": true}
		cfg.EpochPinFuncs = map[string]bool{pkgPath + ".Recycler.Pin": true}
		cfg.EpochUnpinFuncs = map[string]bool{pkgPath + ".Recycler.Unpin": true}
	}
	return cfg
}

// pass carries the shared state of one analyzer run over one package.
type pass struct {
	pkg      *Package
	cfg      Config
	findings *[]Finding
	analyzer string
}

// report records one finding.
func (p *pass) report(pos token.Pos, format string, args ...interface{}) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer,
		Pos:      p.pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes every analyzer over pkgs and returns the surviving
// findings sorted by position. Findings suppressed by `//kfvet:allow`
// comments are dropped.
func Run(pkgs []*Package, cfg Config) []Finding {
	var findings []Finding
	atomicFields := collectAtomicFields(pkgs)
	for _, pkg := range pkgs {
		runLocksafe(&pass{pkg: pkg, cfg: cfg, findings: &findings, analyzer: "locksafe"})
		runAtomicCheck(&pass{pkg: pkg, cfg: cfg, findings: &findings, analyzer: "atomiccheck"}, atomicFields)
		runNilRecv(&pass{pkg: pkg, cfg: cfg, findings: &findings, analyzer: "nilrecv"})
		runErrlint(&pass{pkg: pkg, cfg: cfg, findings: &findings, analyzer: "errlint"})
	}
	// The v2 analyzers are interprocedural: they share one module-wide
	// function index and annotation table built over every package of
	// the load, so cross-package call chains resolve by object identity.
	m := buildModule(pkgs, cfg, &findings)
	runAllocFree(m)
	runFailpointCov(m)
	runLockInfer(m)
	runSeqlockCheck(m)
	runEpochCheck(m)
	findings = applySuppressions(pkgs, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// allowMarker is the suppression comment prefix.
const allowMarker = "//kfvet:allow "

// applySuppressions drops findings covered by an allow comment on the
// same line or the line directly above.
func applySuppressions(pkgs []*Package, findings []Finding) []Finding {
	// allowed[file][line] holds the analyzer names allowed there.
	allowed := make(map[string]map[int]map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, allowMarker)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					lines := allowed[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						allowed[pos.Filename] = lines
					}
					names := lines[pos.Line]
					if names == nil {
						names = make(map[string]bool)
						lines[pos.Line] = names
					}
					for _, name := range strings.Split(rest, ",") {
						names[strings.TrimSpace(name)] = true
					}
				}
			}
		}
	}
	kept := findings[:0]
	for _, f := range findings {
		lines := allowed[f.Pos.Filename]
		if lines != nil && (lines[f.Pos.Line][f.Analyzer] || lines[f.Pos.Line-1][f.Analyzer]) {
			continue
		}
		kept = append(kept, f)
	}
	return kept
}

// funcBodies yields every function or method body in the package along
// with its declaration, including function literals nested inside.
// Function literals get a nil decl.
func funcBodies(pkg *Package, visit func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd, fd.Body)
			}
		}
	}
}
