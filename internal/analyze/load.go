package analyze

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package: the unit every analyzer
// operates on. Files holds only the non-test sources — analyzers gate
// production invariants, and test helpers legitimately take shortcuts
// (discarded Close errors on temp files, plain reads of counters after
// goroutines join) that would drown real findings in noise.
type Package struct {
	// Path is the import path ("kflushing/internal/wal").
	Path string
	// Fset positions every file of every package loaded together.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the use/def/selection resolution analyzers consult.
	Info *types.Info
}

// newInfo allocates the resolution maps one type-check fills.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// stdImporter returns the stdlib importer used for non-module imports.
// The "source" compiler type-checks the standard library from $GOROOT
// source, which keeps the analyzer free of export-data formats and of
// any dependency beyond the stdlib itself. Cgo is disabled so packages
// like net resolve to their pure-Go variants, which type-check without
// a C toolchain.
func stdImporter(fset *token.FileSet) types.Importer {
	build.Default.CgoEnabled = false
	return importer.ForCompiler(fset, "source", nil)
}

// LoadDir parses and type-checks one directory as a single package
// whose imports are resolved from the standard library. It is the
// fixture loader: analyzer test files under testdata are self-contained
// packages importing only sync, sync/atomic, os, and friends.
func LoadDir(dir string) (*Package, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("analyze: %s holds %d packages, want 1", dir, len(pkgs))
	}
	var files []*ast.File
	var names []string
	for _, p := range pkgs {
		for name := range p.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			files = append(files, p.Files[name])
		}
	}
	info := newInfo()
	conf := types.Config{Importer: stdImporter(fset)}
	tpkg, err := conf.Check(filepath.Base(dir), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyze: type-check %s: %w", dir, err)
	}
	return &Package{Path: tpkg.Path(), Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
}

// goList enumerates packages matching patterns (plus their deps) in the
// module rooted at dir.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Dir,GoFiles,Imports,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(cmd.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analyze: go list: %v: %s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("analyze: go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// moduleLoader type-checks the module's packages in dependency order,
// delegating standard-library imports to the source importer. It
// implements types.Importer so a package being checked resolves its
// intra-module imports through the same loader.
type moduleLoader struct {
	fset    *token.FileSet
	std     types.Importer
	meta    map[string]listPkg // module packages by import path
	done    map[string]*Package
	loading map[string]bool
}

// Import implements types.Importer for the type-checker's import
// resolution during a Load.
func (l *moduleLoader) Import(path string) (*types.Package, error) {
	if _, ok := l.meta[path]; ok {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package, memoized.
func (l *moduleLoader) load(path string) (*Package, error) {
	if p, ok := l.done[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analyze: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	meta := l.meta[path]
	var files []*ast.File
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyze: type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.done[path] = p
	return p, nil
}

// LoadModule type-checks every module package matching patterns
// (resolved by `go list` from dir) and returns them sorted by import
// path. Standard-library dependencies are type-checked from source on
// demand; test files are excluded (see Package).
func LoadModule(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &moduleLoader{
		fset:    fset,
		std:     stdImporter(fset),
		meta:    make(map[string]listPkg),
		done:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	var targets []string
	for _, p := range listed {
		if p.Standard || strings.HasPrefix(p.ImportPath, "example.com/") {
			continue
		}
		l.meta[p.ImportPath] = p
		if !p.DepOnly {
			targets = append(targets, p.ImportPath)
		}
	}
	sort.Strings(targets)
	out := make([]*Package, 0, len(targets))
	for _, path := range targets {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
