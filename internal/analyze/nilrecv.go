package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// nilrecv enforces the nil-receiver-safe contract in packages that opt
// in with a `//kfvet:nilsafe` marker comment: tracing and audit hooks
// are designed so a nil *Trace or nil *Journal is the disabled state,
// letting call sites skip nil checks entirely. That contract holds only
// if every pointer-receiver method guards the receiver before touching
// fields — one unguarded method turns "tracing disabled" into a panic
// on the query path.
//
// The rule: a pointer-receiver method that reads or writes receiver
// fields must begin with a guard of the form
//
//	if recv == nil { return ... }
//
// (optionally `if recv == nil || more { ... }` — short-circuit keeps
// the extra condition safe) whose body terminates. Methods that only
// call other methods on the receiver need no guard: the callee guards.

// nilsafeMarker opts a package into the nilrecv analyzer.
const nilsafeMarker = "//kfvet:nilsafe"

func runNilRecv(p *pass) {
	if !hasMarker(p.pkg, nilsafeMarker) {
		return
	}
	funcBodies(p.pkg, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
		recv := pointerRecvObj(p, decl)
		if recv == nil {
			return
		}
		if !touchesFields(p, body, recv) || nilGuarded(p, body, recv) {
			return
		}
		p.report(decl.Pos(), "method %s touches receiver fields without a leading `if %s == nil` guard (package is %s)",
			decl.Name.Name, recv.Name(), nilsafeMarker)
	})
}

// hasMarker reports whether any file comment in the package is the
// given marker directive.
func hasMarker(pkg *Package, marker string) bool {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == marker {
					return true
				}
			}
		}
	}
	return false
}

// pointerRecvObj returns the named pointer-receiver object of a method
// declaration, or nil for plain functions, value receivers, and
// anonymous receivers.
func pointerRecvObj(p *pass, decl *ast.FuncDecl) *types.Var {
	if decl.Recv == nil || len(decl.Recv.List) != 1 || len(decl.Recv.List[0].Names) != 1 {
		return nil
	}
	name := decl.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	obj, ok := p.pkg.Info.Defs[name].(*types.Var)
	if !ok {
		return nil
	}
	if _, isPtr := types.Unalias(obj.Type()).(*types.Pointer); !isPtr {
		return nil
	}
	return obj
}

// touchesFields reports whether body contains a field selection on the
// receiver (`recv.field` where field is a struct field, not a method).
func touchesFields(p *pass, body *ast.BlockStmt, recv *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok || p.pkg.Info.Uses[base] != recv {
			return !found
		}
		if fld, ok := p.pkg.Info.Uses[sel.Sel].(*types.Var); ok && fld.IsField() {
			found = true
		}
		return !found
	})
	return found
}

// nilGuarded reports whether the method body begins with a terminating
// nil guard on the receiver.
func nilGuarded(p *pass, body *ast.BlockStmt, recv *types.Var) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	return leadingNilCheck(p, ifStmt.Cond, recv) && terminates(ifStmt.Body.List)
}

// leadingNilCheck accepts `recv == nil`, `nil == recv`, and any `||`
// chain whose leftmost operand is such a comparison — short-circuit
// evaluation keeps the later operands nil-safe.
func leadingNilCheck(p *pass, cond ast.Expr, recv *types.Var) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op.String() {
	case "||":
		return leadingNilCheck(p, bin.X, recv)
	case "==":
		return isRecvNilPair(p, bin.X, bin.Y, recv) || isRecvNilPair(p, bin.Y, bin.X, recv)
	}
	return false
}

// isRecvNilPair reports whether a is the receiver and b is nil.
func isRecvNilPair(p *pass, a, b ast.Expr, recv *types.Var) bool {
	id, ok := ast.Unparen(a).(*ast.Ident)
	if !ok || p.pkg.Info.Uses[id] != recv {
		return false
	}
	nb, ok := ast.Unparen(b).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.pkg.Info.Uses[nb].(*types.Nil)
	return isNil
}
