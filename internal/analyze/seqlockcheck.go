package analyze

import (
	"go/ast"
	"go/constant"
	"go/token"
	"sort"
)

// seqlockcheck verifies the flight recorder's seqlock slot protocol
// structurally. The slot invariant (DESIGN.md §7.7): a writer
// invalidates (seq.Store(0)), fills the payload words, then publishes
// a non-zero sequence; a reader loads the sequence, rejects zero,
// copies the payload, and re-loads the sequence to detect a racing
// writer. Both sides are a handful of lines that the race detector
// cannot validate (the races are by design) and a refactor can
// silently break — reordering one Store tears every reader.
//
// The check is driven by Config.SeqlockSlotTypes, mapping a slot
// struct type to its sequence field. Any function that touches a
// slot's atomic fields must carry a `//kfvet:seqlock writer` or
// `//kfvet:seqlock reader` annotation and match its role's shape:
//
//	writer: first slot access is seqField.Store(0); last is a
//	        seqField.Store of a non-zero value; in between only
//	        payload stores/loads, never the sequence word.
//	reader: at least two seqField.Load calls; payload fields are
//	        only loaded, only between the first and last sequence
//	        load; and a later sequence load participates in an
//	        ==/!= comparison (the double-check).
//
// The model is textual-order within the function body, which matches
// the straight-line (or simple retry-loop) shape both roles take;
// protocol code spread across helpers would need the annotation on
// each helper and would then fail the shape check — by design, the
// protocol must stay in one place.
func runSeqlockCheck(m *module) {
	if len(m.cfg.SeqlockSlotTypes) == 0 {
		return
	}
	for _, fi := range m.infos {
		acc := slotAccesses(m, fi)
		if len(acc) == 0 {
			if fi.ann.seqlock != "" {
				m.report("seqlockcheck", fi.decl.Pos(),
					"%s is annotated %s %s but never touches a seqlock slot", fi.decl.Name.Name, seqlockMarker, fi.ann.seqlock)
			}
			continue
		}
		switch fi.ann.seqlock {
		case "":
			m.report("seqlockcheck", acc[0].pos,
				"%s touches seqlock slot field %q without a %s writer/reader annotation; the slot protocol is closed to ad-hoc access",
				fi.decl.Name.Name, acc[0].field, seqlockMarker)
		case "writer":
			checkSeqlockWriter(m, fi, acc)
		case "reader":
			checkSeqlockReader(m, fi, acc)
		}
	}
}

// slotAccess is one atomic operation on a configured slot struct.
type slotAccess struct {
	field    string // slot field name
	seqField bool   // the configured sequence word
	op       string // atomic method: Store, Load, Add, ...
	call     *ast.CallExpr
	pos      token.Pos
}

// slotAccesses collects, in source order, every atomic method call on
// a field of a configured slot type inside the function.
func slotAccesses(m *module, fi *funcInfo) []slotAccess {
	var out []slotAccess
	info := fi.pkg.Info
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		named := namedOf(info.TypeOf(inner.X))
		if named == nil || named.Obj().Pkg() == nil {
			return true
		}
		key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		seqField, configured := m.cfg.SeqlockSlotTypes[key]
		if !configured {
			return true
		}
		out = append(out, slotAccess{
			field:    inner.Sel.Name,
			seqField: inner.Sel.Name == seqField,
			op:       sel.Sel.Name,
			call:     call,
			pos:      call.Pos(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// checkSeqlockWriter enforces invalidate → payload → publish.
func checkSeqlockWriter(m *module, fi *funcInfo, acc []slotAccess) {
	first, last := acc[0], acc[len(acc)-1]
	if !(first.seqField && first.op == "Store" && isConstZero(fi.pkg, argOf(first.call))) {
		m.report("seqlockcheck", first.pos,
			"seqlock writer %s must invalidate first: the opening slot access must be the sequence word's Store(0)", fi.decl.Name.Name)
	}
	if !(last.seqField && last.op == "Store" && !isConstZero(fi.pkg, argOf(last.call))) {
		m.report("seqlockcheck", last.pos,
			"seqlock writer %s must publish last: the closing slot access must store a non-zero sequence (payload store after publish tears readers)", fi.decl.Name.Name)
	}
	for _, a := range acc[1 : len(acc)-1] {
		switch {
		case a.seqField:
			m.report("seqlockcheck", a.pos,
				"seqlock writer %s touches the sequence word between invalidate and publish", fi.decl.Name.Name)
		case a.op != "Store" && a.op != "Load":
			m.report("seqlockcheck", a.pos,
				"seqlock writer %s uses %s on payload field %q; the fill window permits only Store/Load", fi.decl.Name.Name, a.op, a.field)
		}
	}
}

// checkSeqlockReader enforces load → copy → re-check.
func checkSeqlockReader(m *module, fi *funcInfo, acc []slotAccess) {
	var seqLoads []slotAccess
	for _, a := range acc {
		if a.seqField && a.op == "Load" {
			seqLoads = append(seqLoads, a)
		}
		if !a.seqField && a.op != "Load" {
			m.report("seqlockcheck", a.pos,
				"seqlock reader %s writes payload field %q; readers must only load", fi.decl.Name.Name, a.field)
		}
		if a.seqField && a.op != "Load" {
			m.report("seqlockcheck", a.pos,
				"seqlock reader %s writes the sequence word; readers must only load", fi.decl.Name.Name)
		}
	}
	if len(seqLoads) < 2 {
		m.report("seqlockcheck", acc[0].pos,
			"seqlock reader %s must double-check: load the sequence word, copy the payload, and load it again", fi.decl.Name.Name)
		return
	}
	firstSeq, lastSeq := seqLoads[0].pos, seqLoads[len(seqLoads)-1].pos
	for _, a := range acc {
		if a.seqField {
			continue
		}
		if a.pos < firstSeq || a.pos > lastSeq {
			m.report("seqlockcheck", a.pos,
				"seqlock reader %s copies payload field %q outside the sequence-check window", fi.decl.Name.Name, a.field)
		}
	}
	// The double-check must actually compare: some sequence load after
	// the first must appear in an ==/!= expression.
	compared := false
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			call, ok := ast.Unparen(side).(*ast.CallExpr)
			if !ok {
				continue
			}
			for _, sl := range seqLoads[1:] {
				if sl.call == call {
					compared = true
				}
			}
		}
		return !compared
	})
	if !compared {
		m.report("seqlockcheck", seqLoads[len(seqLoads)-1].pos,
			"seqlock reader %s re-loads the sequence word but never compares it against the first load", fi.decl.Name.Name)
	}
}

// argOf returns the call's single argument, or nil.
func argOf(call *ast.CallExpr) ast.Expr {
	if len(call.Args) != 1 {
		return nil
	}
	return call.Args[0]
}

// isConstZero reports whether e is the integer constant 0.
func isConstZero(pkg *Package, e ast.Expr) bool {
	if e == nil {
		return false
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, exact := constant.Int64Val(tv.Value)
	return exact && v == 0
}
