package textutil

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestHashtags(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"breaking #news from #NYC #news", []string{"news", "nyc"}},
		{"no tags here", nil},
		{"#", nil},
		{"#a#b", []string{"a", "b"}},
		{"end of sentence #tag.", []string{"tag"}},
		{"#under_score #with123", []string{"under_score", "with123"}},
		{"email@example.com #real", []string{"real"}},
	}
	for _, c := range cases {
		if got := Hashtags(c.text); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Hashtags(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestHashtagsTruncatesLongTags(t *testing.T) {
	long := "#" + strings.Repeat("x", 200)
	got := Hashtags(long)
	if len(got) != 1 || len(got[0]) != maxKeywordLen {
		t.Fatalf("got %v", got)
	}
}

func TestTerms(t *testing.T) {
	got := Terms("The quick brown fox visits https://example.com and a barn")
	want := []string{"quick", "brown", "fox", "visits", "barn"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
}

func TestTermsDropsShortAndStopwords(t *testing.T) {
	got := Terms("I am to be or not")
	for _, term := range got {
		if _, stop := stopwords[term]; stop {
			t.Fatalf("stopword %q survived", term)
		}
		if len(term) < 2 {
			t.Fatalf("short term %q survived", term)
		}
	}
}

func TestKeywordsPrefersHashtags(t *testing.T) {
	got := Keywords("big #storm warning tonight", 5)
	if !reflect.DeepEqual(got, []string{"storm"}) {
		t.Fatalf("got %v", got)
	}
	got = Keywords("big storm warning tonight", 2)
	if len(got) != 2 || got[0] != "big" {
		t.Fatalf("fallback terms = %v", got)
	}
}

// Property: extraction never panics, never returns empty or duplicate
// keywords, and results are lowercase.
func TestExtractionInvariants(t *testing.T) {
	f := func(text string) bool {
		for _, fn := range [](func(string) []string){
			Hashtags,
			Terms,
			func(s string) []string { return Keywords(s, 4) },
		} {
			out := fn(text)
			seen := map[string]struct{}{}
			for _, kw := range out {
				if kw == "" || len(kw) > maxKeywordLen {
					return false
				}
				if kw != strings.ToLower(kw) {
					return false
				}
				if _, dup := seen[kw]; dup {
					return false
				}
				seen[kw] = struct{}{}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
