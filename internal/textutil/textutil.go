// Package textutil extracts searchable keywords from raw microblog
// text. The paper's evaluation uses hashtags as keywords; ingestion
// paths that receive plain text (the HTTP server, the replay tool) use
// this package to produce the keyword attribute the same way: explicit
// #hashtags when present, falling back to significant terms otherwise.
package textutil

import (
	"strings"
	"unicode"
)

// maxKeywordLen bounds a single keyword; longer tokens are truncated
// (the disk format caps keys at 64 KiB, practical keys are far smaller).
const maxKeywordLen = 64

// stopwords are high-frequency English terms excluded from fallback
// term extraction (hashtags are never filtered — a tag is deliberate).
var stopwords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "are": {}, "as": {}, "at": {}, "be": {},
	"but": {}, "by": {}, "for": {}, "from": {}, "has": {}, "have": {},
	"he": {}, "her": {}, "his": {}, "i": {}, "in": {}, "is": {}, "it": {},
	"its": {}, "my": {}, "not": {}, "of": {}, "on": {}, "or": {},
	"our": {}, "she": {}, "so": {}, "that": {}, "the": {}, "their": {},
	"they": {}, "this": {}, "to": {}, "was": {}, "we": {}, "were": {},
	"will": {}, "with": {}, "you": {}, "your": {},
}

// Hashtags returns the #tags of text, lowercased, without the marker,
// deduplicated in order of first appearance.
func Hashtags(text string) []string {
	var out []string
	seen := map[string]struct{}{}
	for i := 0; i < len(text); i++ {
		if text[i] != '#' {
			continue
		}
		j := i + 1
		for j < len(text) && isTagByte(text[j]) {
			j++
		}
		if j == i+1 {
			continue // bare '#'
		}
		tag := strings.ToLower(text[i+1 : j])
		if len(tag) > maxKeywordLen {
			tag = tag[:maxKeywordLen]
		}
		if _, dup := seen[tag]; !dup {
			seen[tag] = struct{}{}
			out = append(out, tag)
		}
		i = j - 1
	}
	return out
}

// isTagByte reports whether b may appear inside a hashtag (ASCII
// letters, digits, underscore — Twitter's rule, ASCII subset).
func isTagByte(b byte) bool {
	return b == '_' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') ||
		(b >= '0' && b <= '9')
}

// Terms tokenizes text into lowercase alphanumeric terms, dropping
// stopwords, single characters, and URLs, deduplicated in order.
func Terms(text string) []string {
	var out []string
	seen := map[string]struct{}{}
	fields := strings.FieldsFunc(text, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r) &&
			r != '_' && r != ':' && r != '/' && r != '.'
	})
	for _, f := range fields {
		term := strings.ToLower(strings.Trim(f, ":/_."))
		if strings.ContainsAny(term, "./") {
			continue // URL or domain
		}
		if len(term) < 2 || len(term) > maxKeywordLen {
			continue
		}
		if _, stop := stopwords[term]; stop {
			continue
		}
		if _, dup := seen[term]; !dup {
			seen[term] = struct{}{}
			out = append(out, term)
		}
	}
	return out
}

// Keywords extracts the keyword attribute of a microblog body:
// hashtags when any are present (the paper's setup — "we use hashtags,
// if available, as keywords"), otherwise up to maxTerms significant
// terms so untagged posts remain searchable.
func Keywords(text string, maxTerms int) []string {
	if tags := Hashtags(text); len(tags) > 0 {
		return tags
	}
	terms := Terms(text)
	if maxTerms > 0 && len(terms) > maxTerms {
		terms = terms[:maxTerms]
	}
	return terms
}
