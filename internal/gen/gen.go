// Package gen synthesizes a Twitter-like microblog stream.
//
// It substitutes for the paper's private corpus of 2+ billion tweets.
// The flushing policies' behaviour depends on distributional properties
// of the stream rather than on actual tweet text, and the generator
// reproduces each of them:
//
//   - keyword (hashtag) frequencies follow a finite Zipf law with
//     exponent just below 1 — the empirical shape of hashtag
//     distributions — giving the Figure 1 regime: a heavy head far
//     above k (the paper's ~75% "useless" mass for k=20 under temporal
//     flushing) over a long, flat tail below k;
//   - keywords co-occur in rank groups (consecutive popularity ranks
//     appear together, as real hashtags cluster by topic), so 2-keyword
//     AND queries have non-empty answers;
//   - user activity follows the same near-1 Zipf shape (Section V-D
//     observes the user attribute is even more skewed than keywords);
//   - locations concentrate in hotspot clusters over a uniform
//     background;
//   - arrivals are evenly spaced in logical time at a configured rate.
//
// The generator is deterministic for a given Config (including Seed).
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"kflushing/internal/types"
	"kflushing/internal/zipfian"
)

// Config parameterizes a stream. The zero value is unusable; use
// DefaultConfig as a starting point.
type Config struct {
	// Seed drives all sampling.
	Seed int64
	// Vocab is the number of distinct keywords.
	Vocab int
	// KeywordSkew is the Zipf exponent of keyword popularity. Values
	// just below 1 reproduce empirical hashtag distributions.
	KeywordSkew float64
	// GroupSize is the co-occurrence group width: a tweet's additional
	// keywords are drawn from the first keyword's rank group with
	// probability RelatedProb. Groups of consecutive ranks model
	// topical hashtag clusters whose members share popularity.
	GroupSize int
	// RelatedProb is the probability that an additional keyword comes
	// from the first keyword's group rather than a fresh global draw.
	RelatedProb float64
	// HeadTags is the size of the rotating "bursting topics" set. Real
	// microblog streams churn: a small set of tags dominates for a
	// while, then fades (the paper's [17] documents the matching churn
	// in queries). Bursting concentrates extra mass on few keys —
	// producing the paper's ~75% beyond-top-k regime — and makes
	// yesterday's hot keys exactly the data temporal flushing evicts
	// while queries still ask for them.
	HeadTags int
	// HeadProb is the probability a record's first keyword comes from
	// the current burst set rather than the global distribution.
	HeadProb float64
	// EpochLen is the number of records between burst-set rotations.
	EpochLen int
	// Users is the number of distinct users.
	Users int
	// UserSkew is the Zipf exponent of user activity.
	UserSkew float64
	// Hotspots is the number of spatial clusters.
	Hotspots int
	// GeoFraction is the fraction of geotagged records in [0,1].
	GeoFraction float64
	// RatePerSec is the arrival rate defining timestamp spacing
	// (microseconds of logical time).
	RatePerSec int
	// MeanTextLen is the average body length in bytes.
	MeanTextLen int
}

// DefaultConfig returns the scaled-down stream used by the experiments.
// The parameters were selected with cmd/calibrate so that, at the
// default 30 MiB budget and k=20, the stream reproduces the paper's
// regime: roughly 70% of FIFO-managed memory is beyond-top-k, and
// kFlushing multiplies the number of k-filled keys severalfold.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		Vocab:       200_000,
		KeywordSkew: 0.95,
		GroupSize:   6,
		RelatedProb: 0.35,
		HeadTags:    48,
		HeadProb:    0.35,
		EpochLen:    10_000,
		Users:       40_000,
		UserSkew:    0.95,
		Hotspots:    400,
		GeoFraction: 1.0,
		RatePerSec:  6000, // the paper's replay rate (tweets/second)
		MeanTextLen: 90,
	}
}

// Generator produces the stream. Not safe for concurrent use; each
// goroutine should own one generator.
type Generator struct {
	cfg Config
	rng *rand.Rand

	kwZ     *zipfian.Finite
	headZ   *zipfian.Finite
	userZ   *zipfian.Finite
	hotZ    *zipfian.Finite
	nextSeq int64
	stepUS  int64

	keywordNames []string
	hotLat       []float64
	hotLon       []float64
	lorem        string
}

// New builds a generator for cfg.
func New(cfg Config) *Generator {
	if cfg.Vocab <= 0 || cfg.Users <= 0 {
		panic("gen: Vocab and Users must be positive")
	}
	if cfg.RatePerSec <= 0 {
		cfg.RatePerSec = 6000
	}
	if cfg.MeanTextLen <= 0 {
		cfg.MeanTextLen = 90
	}
	if cfg.GroupSize <= 0 {
		cfg.GroupSize = 4
	}
	if cfg.RelatedProb < 0 || cfg.RelatedProb > 1 {
		cfg.RelatedProb = 0.5
	}
	g := &Generator{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		stepUS: int64(1_000_000 / cfg.RatePerSec),
	}
	g.kwZ = zipfian.NewFinite(cfg.Vocab, cfg.KeywordSkew, cfg.Seed+101)
	if cfg.HeadTags > 0 && cfg.HeadProb > 0 {
		if cfg.EpochLen <= 0 {
			cfg.EpochLen = 20_000
			g.cfg.EpochLen = cfg.EpochLen
		}
		g.headZ = zipfian.NewFinite(cfg.HeadTags, 1.0, cfg.Seed+106)
	}
	g.userZ = zipfian.NewFinite(cfg.Users, cfg.UserSkew, cfg.Seed+103)
	if cfg.Hotspots > 0 {
		g.hotZ = zipfian.NewFinite(cfg.Hotspots, 1.1, cfg.Seed+104)
		g.hotLat = make([]float64, cfg.Hotspots)
		g.hotLon = make([]float64, cfg.Hotspots)
		hr := rand.New(rand.NewSource(cfg.Seed + 105))
		for i := 0; i < cfg.Hotspots; i++ {
			g.hotLat[i] = 25 + hr.Float64()*24 // within the default grid
			g.hotLon[i] = -124 + hr.Float64()*57
		}
	}
	g.keywordNames = make([]string, cfg.Vocab)
	for i := range g.keywordNames {
		g.keywordNames[i] = fmt.Sprintf("tag%05x", i)
	}
	g.lorem = strings.Repeat("the quick onyx goblin jumps over a lazy dwarf while vexed zombies quietly patrol the misty river bank ", 8)
	return g
}

// Vocab returns the keyword vocabulary in popularity-rank order (most
// popular first), for workload generators needing the key space.
func (g *Generator) Vocab() []string { return g.keywordNames }

// Next produces the next microblog. Timestamps advance by 1/rate
// seconds per record from logical time 1.
func (g *Generator) Next() *types.Microblog {
	g.nextSeq++
	ts := types.Timestamp(g.nextSeq * g.stepUS)

	first := g.firstKeyword()
	nkw := g.keywordCount()
	kws := make([]string, 1, nkw)
	kws[0] = g.keywordNames[first]
	for len(kws) < nkw {
		var r int
		if g.rng.Float64() < g.cfg.RelatedProb {
			r = g.groupPartner(first)
		} else {
			r = int(g.kwZ.Next())
		}
		kw := g.keywordNames[r]
		dup := false
		for _, s := range kws {
			if s == kw {
				dup = true
				break
			}
		}
		if !dup {
			kws = append(kws, kw)
		} else if g.rng.Float64() < 0.5 {
			break // topical tweets sometimes repeat a tag; keep it short
		}
	}

	user := g.userZ.Next()
	m := &types.Microblog{
		Timestamp: ts,
		UserID:    user + 1,
		Followers: followerCount(user),
		Keywords:  kws,
		Text:      g.text(),
	}
	if g.cfg.GeoFraction > 0 && g.rng.Float64() < g.cfg.GeoFraction {
		m.HasGeo = true
		if g.hotZ != nil && g.rng.Float64() < 0.8 {
			h := int(g.hotZ.Next())
			m.Lat = clamp(g.hotLat[h]+g.rng.NormFloat64()*0.05, 24, 50)
			m.Lon = clamp(g.hotLon[h]+g.rng.NormFloat64()*0.05, -125, -66)
		} else {
			m.Lat = 24 + g.rng.Float64()*26
			m.Lon = -125 + g.rng.Float64()*59
		}
	}
	return m
}

// firstKeyword draws a record's primary keyword: from the current burst
// set with probability HeadProb, else from the global distribution.
func (g *Generator) firstKeyword() int {
	if g.headZ != nil && g.rng.Float64() < g.cfg.HeadProb {
		base := g.BurstBase(g.nextSeq)
		r := base + int(g.headZ.Next())
		if r >= g.cfg.Vocab {
			r -= g.cfg.Vocab
		}
		return r
	}
	return int(g.kwZ.Next())
}

// BurstBase returns the start index of the burst set active at the
// given record ordinal, for tests and workload tooling. Bases hop
// pseudo-randomly through the vocabulary (a multiplicative hash of the
// epoch) because real bursts are mostly *new* tags from deep in the
// popularity tail, not boosts of already-popular ones — once a burst
// ends and the temporal window passes, nothing refills those keys.
func (g *Generator) BurstBase(seq int64) int {
	if g.headZ == nil {
		return 0
	}
	epoch := uint64(seq) / uint64(g.cfg.EpochLen)
	return int((epoch*2654435761 + 97) % uint64(g.cfg.Vocab))
}

// groupPartner returns a random member of rank's co-occurrence group
// (the GroupSize consecutive ranks containing it).
func (g *Generator) groupPartner(rank int) int {
	base := rank - rank%g.cfg.GroupSize
	p := base + g.rng.Intn(g.cfg.GroupSize)
	if p >= g.cfg.Vocab {
		p = rank
	}
	return p
}

// keywordCount draws 1–3 keywords per record (mean ≈ 1.32): most
// hashtagged tweets carry a single tag, a quarter carry two or three,
// matching hashtag-count statistics of real tweets.
func (g *Generator) keywordCount() int {
	switch p := g.rng.Float64(); {
	case p < 0.75:
		return 1
	case p < 0.93:
		return 2
	default:
		return 3
	}
}

// followerCount gives user activity rank r a heavy-tailed follower
// count: popular (active) accounts also have large audiences.
func followerCount(rank uint64) uint32 {
	return uint32(math.Min(5_000_000, 50_000_000/float64(rank+10)))
}

func (g *Generator) text() string {
	n := int(float64(g.cfg.MeanTextLen) * (0.5 + g.rng.Float64()))
	if n < 10 {
		n = 10
	}
	if n > len(g.lorem) {
		n = len(g.lorem)
	}
	start := g.rng.Intn(len(g.lorem) - n + 1)
	return g.lorem[start : start+n]
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Count returns how many records have been generated.
func (g *Generator) Count() int64 { return g.nextSeq }
