package gen

import (
	"testing"

	"kflushing/internal/types"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.Vocab = 5000
	c.Users = 1000
	return c
}

func TestDeterminism(t *testing.T) {
	a, b := New(smallConfig()), New(smallConfig())
	for i := 0; i < 500; i++ {
		ma, mb := a.Next(), b.Next()
		if ma.Timestamp != mb.Timestamp || ma.UserID != mb.UserID ||
			ma.Text != mb.Text || len(ma.Keywords) != len(mb.Keywords) {
			t.Fatalf("divergence at %d: %v vs %v", i, ma, mb)
		}
		for j := range ma.Keywords {
			if ma.Keywords[j] != mb.Keywords[j] {
				t.Fatalf("keyword divergence at %d", i)
			}
		}
	}
}

func TestTimestampsStrictlyIncrease(t *testing.T) {
	g := New(smallConfig())
	var last types.Timestamp
	for i := 0; i < 1000; i++ {
		mb := g.Next()
		if mb.Timestamp <= last {
			t.Fatalf("timestamp %d not after %d", mb.Timestamp, last)
		}
		last = mb.Timestamp
	}
}

func TestKeywordInvariants(t *testing.T) {
	g := New(smallConfig())
	for i := 0; i < 5000; i++ {
		mb := g.Next()
		if len(mb.Keywords) < 1 || len(mb.Keywords) > 3 {
			t.Fatalf("keyword count %d out of [1,3]", len(mb.Keywords))
		}
		seen := map[string]bool{}
		for _, kw := range mb.Keywords {
			if seen[kw] {
				t.Fatalf("duplicate keyword %q in one record", kw)
			}
			seen[kw] = true
		}
	}
}

func TestKeywordSkewHeadDominates(t *testing.T) {
	g := New(smallConfig())
	counts := map[string]int{}
	total := 0
	for i := 0; i < 30_000; i++ {
		for _, kw := range g.Next().Keywords {
			counts[kw]++
			total++
		}
	}
	top := g.Vocab()[0]
	// The most popular keyword must dwarf the per-key average.
	avg := float64(total) / float64(len(counts))
	if float64(counts[top]) < 10*avg {
		t.Fatalf("head keyword count %d not ≫ avg %.1f", counts[top], avg)
	}
}

func TestCoOccurrenceGroups(t *testing.T) {
	cfg := smallConfig()
	cfg.RelatedProb = 1.0 // every extra keyword from the same group
	g := New(cfg)
	vocabRank := map[string]int{}
	for i, kw := range g.Vocab() {
		vocabRank[kw] = i
	}
	for i := 0; i < 5000; i++ {
		mb := g.Next()
		if len(mb.Keywords) < 2 {
			continue
		}
		g0 := vocabRank[mb.Keywords[0]] / cfg.GroupSize
		for _, kw := range mb.Keywords[1:] {
			if vocabRank[kw]/cfg.GroupSize != g0 {
				t.Fatalf("keyword %q outside group of %q", kw, mb.Keywords[0])
			}
		}
	}
}

func TestGeoFractionRespected(t *testing.T) {
	cfg := smallConfig()
	cfg.GeoFraction = 0
	g := New(cfg)
	for i := 0; i < 1000; i++ {
		if g.Next().HasGeo {
			t.Fatal("geotagged record with GeoFraction=0")
		}
	}
	cfg.GeoFraction = 1
	g = New(cfg)
	for i := 0; i < 1000; i++ {
		mb := g.Next()
		if !mb.HasGeo {
			t.Fatal("non-geotagged record with GeoFraction=1")
		}
		if mb.Lat < 24 || mb.Lat > 50 || mb.Lon < -125 || mb.Lon > -66 {
			t.Fatalf("location (%v,%v) outside the default grid bounds", mb.Lat, mb.Lon)
		}
	}
}

func TestUserIDsPositiveAndSkewed(t *testing.T) {
	g := New(smallConfig())
	counts := map[uint64]int{}
	for i := 0; i < 20_000; i++ {
		mb := g.Next()
		if mb.UserID == 0 {
			t.Fatal("zero user ID")
		}
		counts[mb.UserID]++
	}
	avg := 20_000.0 / float64(len(counts))
	if float64(counts[1]) < 5*avg {
		t.Fatalf("most active user count %d not ≫ avg %.1f", counts[1], avg)
	}
}

func TestTextLengthBounds(t *testing.T) {
	g := New(smallConfig())
	for i := 0; i < 2000; i++ {
		n := len(g.Next().Text)
		if n < 10 || n > 300 {
			t.Fatalf("text length %d outside sane bounds", n)
		}
	}
}

func TestCountTracksGenerated(t *testing.T) {
	g := New(smallConfig())
	for i := 0; i < 7; i++ {
		g.Next()
	}
	if g.Count() != 7 {
		t.Fatalf("Count = %d, want 7", g.Count())
	}
}

func TestBurstRotation(t *testing.T) {
	cfg := smallConfig()
	cfg.HeadTags = 16
	cfg.HeadProb = 0.5
	cfg.EpochLen = 2000
	g := New(cfg)
	vocabRank := map[string]int{}
	for i, kw := range g.Vocab() {
		vocabRank[kw] = i
	}
	inBurst := func(rank, base int) bool {
		for r := 0; r < cfg.HeadTags; r++ {
			if (base+r)%cfg.Vocab == rank {
				return true
			}
		}
		return false
	}
	// Count first-keyword draws landing in the active burst set per
	// epoch; with HeadProb=0.5 the share must be large (global draws
	// rarely land there by chance).
	for epoch := 0; epoch < 3; epoch++ {
		base := g.BurstBase(g.Count() + 1)
		hits := 0
		for i := 0; i < cfg.EpochLen; i++ {
			mb := g.Next()
			if inBurst(vocabRank[mb.Keywords[0]], base) {
				hits++
			}
		}
		share := float64(hits) / float64(cfg.EpochLen)
		if share < 0.35 {
			t.Fatalf("epoch %d: burst share %.2f, want >= 0.35", epoch, share)
		}
	}
	// Consecutive epochs use different burst bases.
	if g.BurstBase(0) == g.BurstBase(int64(cfg.EpochLen)) {
		t.Fatal("burst base did not rotate across epochs")
	}
}

func TestNoBurstWhenDisabled(t *testing.T) {
	cfg := smallConfig()
	cfg.HeadTags = 0
	g := New(cfg)
	if g.BurstBase(12345) != 0 {
		t.Fatal("BurstBase nonzero with bursts disabled")
	}
	for i := 0; i < 100; i++ {
		g.Next() // must not panic
	}
}
