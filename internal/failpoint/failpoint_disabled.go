//go:build !failpoint

package failpoint

// Enabled reports whether this binary was built with fault injection
// compiled in. In the default build it is false and every function
// below is an inlinable no-op: the compiler reduces each call site to
// nothing, so production binaries carry zero overhead (verified by
// results/pr5_failpoint_overhead.txt).
const Enabled = false

// ErrInjected is never returned in the disabled build; it exists so
// errors.Is(err, ErrInjected) compiles untagged.
var ErrInjected = errInjected{}

type errInjected struct{}

func (errInjected) Error() string { return "failpoint: injected error" }

// Eval is a no-op in the disabled build.
func Eval(site string) error { return nil }

// EvalWrite is a no-op in the disabled build: the buffer passes through.
func EvalWrite(site string, buf []byte) ([]byte, error) { return buf, nil }

// Enable reports an error in the disabled build so a test that forgot
// `-tags failpoint` fails loudly instead of silently testing nothing.
func Enable(site, spec string) error { return buildErr() }

// EnableFromSpec reports an error in the disabled build.
func EnableFromSpec(spec string) error { return buildErr() }

// Disable is a no-op in the disabled build.
func Disable(site string) {}

// DisableAll is a no-op in the disabled build.
func DisableAll() {}

// Hits always reports zero in the disabled build.
func Hits(site string) int64 { return 0 }

func buildErr() error {
	return errNotBuilt{}
}

type errNotBuilt struct{}

func (errNotBuilt) Error() string {
	return "failpoint: binary built without -tags failpoint"
}
