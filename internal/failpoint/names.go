// Package failpoint is a deterministic, build-tag-gated fault-injection
// framework for the durability-bearing paths of the engine.
//
// A failpoint is a named site in the code — "wal/append/write",
// "disk/segment/rename" — where a test can inject a failure. In the
// default build (no tags) every site compiles to an inlinable no-op: the
// production binary carries zero overhead, which the benchmark in
// results/pr5_failpoint_overhead.txt verifies. Under `-tags failpoint`
// each site consults a process-global registry of armed actions:
//
//	off          disarmed (same as never enabled)
//	error        fail every evaluation with ErrInjected
//	error(N)     fail the first N evaluations, then pass
//	errevery(N)  fail every Nth evaluation
//	enospc       fail with a syscall.ENOSPC-wrapped error
//	torn(N)      (write sites) truncate the buffer to N bytes and fail —
//	             the torn-write crash artifact
//	sleep(MS)    inject MS milliseconds of latency, then pass
//	panic        panic at the site
//	crash        exit the process immediately with CrashExitCode,
//	             simulating a crash at exactly this point (deferred
//	             cleanup does not run; OS-buffered writes survive, as
//	             they do when a real process dies)
//	crash(N)     crash on the Nth evaluation
//
// Actions are armed programmatically (Enable) or through the
// KFLUSH_FAILPOINTS environment variable ("site=action;site=action"),
// which child processes inherit — the mechanism internal/crashtest uses
// to kill a re-executed test binary at every registered crash site.
package failpoint

// Failpoint site names. Constants keep call sites typo-proof and give
// the crash-test harness an authoritative catalog to iterate.
const (
	// WAL sites (internal/wal).
	WALAppend           = "wal/append"             // batch encoded, before the file write
	WALAppendWrite      = "wal/append/write"       // the frame write itself (torn-write capable)
	WALAppendAfterWrite = "wal/append/after-write" // frames written, before sync/rotate bookkeeping
	WALSync             = "wal/sync"               // any active-file fsync
	WALRotateSeal       = "wal/rotate/seal"        // previous file synced+closed, next not yet created
	WALRotateCreate     = "wal/rotate/create"      // creating the next log file
	WALRotateHeader     = "wal/rotate/header"      // writing the next file's header (torn-write capable)
	WALSnapshotWrite    = "wal/snapshot/write"     // writing the snapshot temp file (torn-write capable)
	WALSnapshotSync     = "wal/snapshot/sync"      // syncing the snapshot temp file
	WALSnapshotRename   = "wal/snapshot/rename"    // temp file durable, rename not yet done
	WALSnapshotCleanup  = "wal/snapshot/cleanup"   // snapshot renamed, old log files not yet deleted

	// Disk-tier sites (internal/disk).
	DiskSegmentCreate      = "disk/segment/create"       // creating the segment temp file
	DiskSegmentWrite       = "disk/segment/write"        // writing the record block (torn-write capable)
	DiskSegmentDirWrite    = "disk/segment/dir"          // writing offsets+directory+bloom+footer (torn-write capable)
	DiskSegmentSync        = "disk/segment/sync"         // syncing the segment temp file
	DiskSegmentRename      = "disk/segment/rename"       // temp file durable, rename not yet done
	DiskSegmentAfterRename = "disk/segment/after-rename" // renamed, tier not yet updated
	DiskPread              = "disk/pread"                // record read from a segment file
	DiskCompactRename      = "disk/compact/rename"       // merged file written, rename not yet done
	DiskCompactRemove      = "disk/compact/remove"       // merged file live, inputs not yet deleted

	// Leveled-tier sites (internal/disk): the manifest commit protocol
	// and the points where a segment is live on disk but not yet
	// referenced by a committed manifest.
	DiskManifestWrite  = "disk/manifest/write"  // writing the manifest temp file (torn-write capable)
	DiskManifestSync   = "disk/manifest/sync"   // syncing the manifest temp file
	DiskManifestRename = "disk/manifest/rename" // temp manifest durable, rename not yet done
	DiskLevelInstall   = "disk/level/install"   // flushed segment renamed live, manifest not yet committed
	DiskCompactInstall = "disk/compact/install" // merged output renamed live, manifest not yet committed

	// Flush-cycle sites (internal/engine, internal/core, internal/policy).
	FlushBegin       = "flush/begin"        // flush cycle entered, nothing evicted yet
	FlushAfterPhase1 = "flush/after-phase1" // kFlushing Phase 1 done, Phase 2 not started
	FlushAfterPhase2 = "flush/after-phase2" // kFlushing Phase 2 done, Phase 3 not started
	FlushAfterEvict  = "flush/after-evict"  // victims evicted from memory, tier write not started
	FlushAfterWrite  = "flush/after-write"  // tier write done, cycle not yet accounted

	// Recovery sites (internal/engine).
	RecoverReplayRecord = "engine/recover/record" // evaluated per replayed WAL record
	RecoverAfterReplay  = "engine/recover/done"   // replay complete, recovery flush not yet run

	// Tuner site (internal/engine): the adaptive memory tuner is about
	// to apply a decision (retuned flush budget, watermark, and a live
	// record-cache resize) under the flush gate. Tuner state is
	// deliberately not persisted, so a kill here must be recoverable as
	// a plain crash between flush cycles; an injected error skips the
	// adjustment and leaves the previous targets in force.
	TunerApply = "engine/tuner/apply"

	// Error-injection-only sites: fallible I/O that must surface (or
	// tolerate) failure cleanly but where a process kill is either
	// pre-durability, equivalent to an already-covered crash site, or
	// offline tooling. They are deliberately NOT in CrashSites — adding
	// them would grow the crash matrix without exercising any new
	// recovery invariant — but the kfvet failpointcov analyzer requires
	// every fallible I/O call to sit within reach of one, so error and
	// enospc actions can interrupt it.
	WALOpenMkdir         = "wal/open/mkdir"         // creating the log directory (no WAL exists yet)
	WALRollbackTruncate  = "wal/rollback/truncate"  // rolling back a partial append; failure seals the file
	WALReadySync         = "wal/ready/sync"         // the /readyz probe fsync; failure flips readiness
	WALReplayTruncate    = "wal/replay/truncate"    // truncating a tolerated torn tail during replay
	WALCloseSync         = "wal/close/sync"         // the final fsync in Close
	DiskOpenMkdir        = "disk/open/mkdir"        // creating the tier directory (no segments exist yet)
	DiskDirSync          = "disk/dir/sync"          // directory fsync after a rename (rename sites cover the crash)
	DiskAdoptRemove      = "disk/adopt/remove"      // deleting retired inputs during manifest recovery (best-effort)
	DiskCompactDirRemove = "disk/compactdir/remove" // offline CompactDir deleting merged inputs
)

// CrashSites returns every site at which a crash must be recoverable:
// the contract of the internal/crashtest matrix is that killing the
// process at ANY of these points loses no acknowledged ingest and
// leaves a consistent, reopenable store. DiskPread is excluded (reads
// cannot lose data).
func CrashSites() []string {
	return []string{
		WALAppend, WALAppendWrite, WALAppendAfterWrite,
		WALSync,
		WALRotateSeal, WALRotateCreate, WALRotateHeader,
		WALSnapshotWrite, WALSnapshotSync, WALSnapshotRename, WALSnapshotCleanup,
		DiskSegmentCreate, DiskSegmentWrite, DiskSegmentDirWrite,
		DiskSegmentSync, DiskSegmentRename, DiskSegmentAfterRename,
		DiskCompactRename, DiskCompactRemove,
		DiskManifestWrite, DiskManifestSync, DiskManifestRename,
		DiskLevelInstall, DiskCompactInstall,
		FlushBegin, FlushAfterPhase1, FlushAfterPhase2,
		FlushAfterEvict, FlushAfterWrite,
		RecoverReplayRecord, RecoverAfterReplay,
		TunerApply,
	}
}

// CrashExitCode is the process exit status of the `crash` action,
// distinguishing an injected crash from a test failure (1) or success
// (0) when a harness inspects a child's exit state.
const CrashExitCode = 125

// EnvVar is the environment variable Enable-from-environment reads:
// "site=action;site=action". Child processes inherit it, so a harness
// can arm failpoints in a re-executed test binary.
const EnvVar = "KFLUSH_FAILPOINTS"
