//go:build failpoint

package failpoint

import (
	"errors"
	"syscall"
	"testing"
	"time"
)

func reset(t *testing.T) {
	t.Helper()
	DisableAll()
	t.Cleanup(DisableAll)
}

func TestErrorActions(t *testing.T) {
	reset(t)
	const site = "test/error"

	// error: every evaluation fails.
	if err := Enable(site, "error"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := Eval(site); !errors.Is(err, ErrInjected) {
			t.Fatalf("eval %d: got %v, want ErrInjected", i, err)
		}
	}
	if got := Hits(site); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}

	// error(2): first two fail, then pass.
	if err := Enable(site, "error(2)"); err != nil {
		t.Fatal(err)
	}
	var errs int
	for i := 0; i < 5; i++ {
		if Eval(site) != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Fatalf("error(2) produced %d errors, want 2", errs)
	}

	// errevery(3): every third evaluation fails.
	if err := Enable(site, "errevery(3)"); err != nil {
		t.Fatal(err)
	}
	var pattern []bool
	for i := 0; i < 6; i++ {
		pattern = append(pattern, Eval(site) != nil)
	}
	want := []bool{false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("errevery(3) pattern %v, want %v", pattern, want)
		}
	}

	// Disarm.
	Disable(site)
	if err := Eval(site); err != nil {
		t.Fatalf("disarmed site errored: %v", err)
	}
}

func TestENOSPC(t *testing.T) {
	reset(t)
	if err := Enable("test/enospc", "enospc"); err != nil {
		t.Fatal(err)
	}
	err := Eval("test/enospc")
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("got %v, want ENOSPC", err)
	}
}

func TestTornWrite(t *testing.T) {
	reset(t)
	if err := Enable("test/torn", "torn(5)"); err != nil {
		t.Fatal(err)
	}
	buf := []byte("hello, world")
	out, err := EvalWrite("test/torn", buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write must also error, got %v", err)
	}
	if string(out) != "hello" {
		t.Fatalf("torn buffer = %q, want %q", out, "hello")
	}

	// torn(n) with n >= len(buf) keeps the whole buffer.
	if err := Enable("test/torn", "torn(100)"); err != nil {
		t.Fatal(err)
	}
	out, _ = EvalWrite("test/torn", buf)
	if string(out) != string(buf) {
		t.Fatalf("over-long torn kept %q", out)
	}

	// A plain error action through EvalWrite passes the buffer intact.
	if err := Enable("test/torn", "error"); err != nil {
		t.Fatal(err)
	}
	out, err = EvalWrite("test/torn", buf)
	if err == nil || len(out) != len(buf) {
		t.Fatalf("error via EvalWrite: out=%q err=%v", out, err)
	}
}

func TestSleep(t *testing.T) {
	reset(t)
	if err := Enable("test/sleep", "sleep(30)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Eval("test/sleep"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("sleep(30) returned after %v", d)
	}
}

func TestPanicAction(t *testing.T) {
	reset(t)
	if err := Enable("test/panic", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("panic action did not panic")
		}
	}()
	_ = Eval("test/panic")
}

func TestCrashActions(t *testing.T) {
	reset(t)
	var exits []int
	old := exitFn
	exitFn = func(code int) { exits = append(exits, code) }
	defer func() { exitFn = old }()

	if err := Enable("test/crash", "crash"); err != nil {
		t.Fatal(err)
	}
	_ = Eval("test/crash")
	if len(exits) != 1 || exits[0] != CrashExitCode {
		t.Fatalf("crash exits = %v, want [%d]", exits, CrashExitCode)
	}

	// crash(3): only the third evaluation crashes.
	exits = nil
	if err := Enable("test/crash", "crash(3)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_ = Eval("test/crash")
	}
	if len(exits) != 1 {
		t.Fatalf("crash(3) exited %d times, want 1", len(exits))
	}
}

func TestEnableFromSpec(t *testing.T) {
	reset(t)
	spec := "a/one=error; b/two=errevery(2) ;; c/three=off"
	if err := EnableFromSpec(spec); err != nil {
		t.Fatal(err)
	}
	if Eval("a/one") == nil {
		t.Fatal("a/one not armed")
	}
	_ = Eval("b/two")
	if Eval("b/two") == nil {
		t.Fatal("b/two period wrong")
	}
	if Eval("c/three") != nil {
		t.Fatal("off must disarm")
	}

	for _, bad := range []string{"noequals", "x=unknown", "x=error(", "x=error(-1)", "x=errevery(0)", "x=sleep(x)"} {
		DisableAll()
		if err := EnableFromSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// BenchmarkEval under the tag measures the armed-but-disarmed registry
// lookup — the cost tests pay, never production.
func BenchmarkEval(b *testing.B) {
	DisableAll()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Eval(WALAppend); err != nil {
			b.Fatal(err)
		}
	}
}
