//go:build !failpoint

package failpoint

import (
	"errors"
	"testing"
)

// The default build must be inert: every evaluation passes, arming is
// refused, and the whole thing costs nothing (see BenchmarkEval).
func TestDisabledBuildIsInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled = true in a build without the failpoint tag")
	}
	if err := Eval(WALAppend); err != nil {
		t.Fatalf("Eval in disabled build: %v", err)
	}
	buf := []byte("payload")
	out, err := EvalWrite(DiskSegmentWrite, buf)
	if err != nil {
		t.Fatalf("EvalWrite in disabled build: %v", err)
	}
	if &out[0] != &buf[0] || len(out) != len(buf) {
		t.Fatal("EvalWrite must pass the buffer through untouched")
	}
	if err := Enable(WALAppend, "error"); err == nil {
		t.Fatal("Enable must fail loudly in a disabled build")
	}
	if err := EnableFromSpec(WALAppend + "=error"); err == nil {
		t.Fatal("EnableFromSpec must fail loudly in a disabled build")
	}
	if n := Hits(WALAppend); n != 0 {
		t.Fatalf("Hits = %d in disabled build", n)
	}
	Disable(WALAppend)
	DisableAll()
	if errors.Is(nil, ErrInjected) {
		t.Fatal("nil must not match ErrInjected")
	}
}

func TestCrashSitesCatalog(t *testing.T) {
	sites := CrashSites()
	if len(sites) < 20 {
		t.Fatalf("crash matrix needs >= 20 sites, catalog has %d", len(sites))
	}
	seen := make(map[string]bool, len(sites))
	for _, s := range sites {
		if s == "" {
			t.Fatal("empty site name in catalog")
		}
		if seen[s] {
			t.Fatalf("duplicate site %q in catalog", s)
		}
		seen[s] = true
	}
	if seen[DiskPread] {
		t.Fatal("DiskPread is read-only and must not be a crash site")
	}
}

// BenchmarkEval measures the disabled stub. It must report ~0 ns/op and
// 0 allocs/op — the compiler inlines the no-op away. Compare with the
// registry-consulting cost under -tags failpoint.
func BenchmarkEval(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Eval(WALAppend); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalWrite(b *testing.B) {
	buf := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := EvalWrite(DiskSegmentWrite, buf)
		if err != nil || len(out) != len(buf) {
			b.Fatal("stub misbehaved")
		}
	}
}
