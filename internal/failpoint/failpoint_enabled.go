//go:build failpoint

package failpoint

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Enabled reports whether this binary was built with fault injection
// compiled in (`-tags failpoint`).
const Enabled = true

// ErrInjected is the base error returned by the error-family actions.
// Injected errors wrap it, so errors.Is(err, ErrInjected) identifies
// any injected failure.
var ErrInjected = errors.New("failpoint: injected error")

type kind int

const (
	kindError kind = iota
	kindErrorN
	kindErrEvery
	kindENOSPC
	kindTorn
	kindSleep
	kindPanic
	kindCrash
	kindCrashN
)

type action struct {
	kind kind
	n    int64 // count / period / truncate-length / millis
	hits int64 // evaluations so far
}

var (
	mu     sync.Mutex
	armed  = map[string]*action{}
	exitFn = os.Exit // swapped in registry tests so `crash` is testable
)

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := EnableFromSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "failpoint: bad %s: %v\n", EnvVar, err)
			os.Exit(2)
		}
	}
}

// Enable arms site with the given action string (see the package doc
// for the grammar). An action of "off" or "" disarms the site.
func Enable(site, spec string) error {
	a, err := parse(spec)
	if err != nil {
		return fmt.Errorf("failpoint %s: %w", site, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if a == nil {
		delete(armed, site)
	} else {
		armed[site] = a
	}
	return nil
}

// EnableFromSpec arms several sites from a "site=action;site=action"
// string — the KFLUSH_FAILPOINTS format.
func EnableFromSpec(spec string) error {
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		site, act, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("failpoint: malformed term %q (want site=action)", part)
		}
		if err := Enable(strings.TrimSpace(site), strings.TrimSpace(act)); err != nil {
			return err
		}
	}
	return nil
}

// Disable disarms one site.
func Disable(site string) {
	mu.Lock()
	delete(armed, site)
	mu.Unlock()
}

// DisableAll disarms every site. Tests call it in cleanup so armed
// failpoints never leak across test cases.
func DisableAll() {
	mu.Lock()
	armed = map[string]*action{}
	mu.Unlock()
}

// Hits returns how many times site has been evaluated while armed.
func Hits(site string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if a := armed[site]; a != nil {
		return a.hits
	}
	return 0
}

func parse(spec string) (*action, error) {
	name, argStr := spec, ""
	if i := strings.IndexByte(spec, '('); i >= 0 {
		if !strings.HasSuffix(spec, ")") {
			return nil, fmt.Errorf("malformed action %q", spec)
		}
		name, argStr = spec[:i], spec[i+1:len(spec)-1]
	}
	var n int64 = -1
	if argStr != "" {
		v, err := strconv.ParseInt(argStr, 10, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("malformed action arg %q", spec)
		}
		n = v
	}
	switch name {
	case "off", "":
		return nil, nil
	case "error":
		if n >= 0 {
			return &action{kind: kindErrorN, n: n}, nil
		}
		return &action{kind: kindError}, nil
	case "errevery":
		if n < 1 {
			return nil, fmt.Errorf("errevery needs a period >= 1, got %q", spec)
		}
		return &action{kind: kindErrEvery, n: n}, nil
	case "enospc":
		return &action{kind: kindENOSPC}, nil
	case "torn":
		if n < 0 {
			return nil, fmt.Errorf("torn needs a byte count, got %q", spec)
		}
		return &action{kind: kindTorn, n: n}, nil
	case "sleep":
		if n < 0 {
			return nil, fmt.Errorf("sleep needs millis, got %q", spec)
		}
		return &action{kind: kindSleep, n: n}, nil
	case "panic":
		return &action{kind: kindPanic}, nil
	case "crash":
		if n >= 0 {
			if n < 1 {
				return nil, fmt.Errorf("crash arg must be >= 1, got %q", spec)
			}
			return &action{kind: kindCrashN, n: n}, nil
		}
		return &action{kind: kindCrash}, nil
	default:
		return nil, fmt.Errorf("unknown action %q", spec)
	}
}

// Eval evaluates the failpoint at site. Disarmed sites return nil.
func Eval(site string) error {
	err, _ := eval(site, nil)
	return err
}

// EvalWrite evaluates a torn-write-capable site: the caller passes the
// buffer it is about to write and writes whatever comes back. Disarmed
// (and non-torn) actions return the buffer untouched plus Eval's
// verdict; a `torn(n)` action returns the first n bytes and an injected
// error, so the caller persists a genuine partial write and then fails
// exactly as a crashed kernel flush would look.
func EvalWrite(site string, buf []byte) ([]byte, error) {
	err, torn := eval(site, buf)
	if torn != nil {
		return torn, err
	}
	return buf, err
}

func eval(site string, buf []byte) (error, []byte) {
	mu.Lock()
	a := armed[site]
	if a == nil {
		mu.Unlock()
		return nil, nil
	}
	a.hits++
	hits := a.hits
	k, n := a.kind, a.n
	mu.Unlock()

	switch k {
	case kindError:
		return fmt.Errorf("%w at %s", ErrInjected, site), nil
	case kindErrorN:
		if hits <= n {
			return fmt.Errorf("%w at %s (hit %d/%d)", ErrInjected, site, hits, n), nil
		}
		return nil, nil
	case kindErrEvery:
		if hits%n == 0 {
			return fmt.Errorf("%w at %s (every %d)", ErrInjected, site, n), nil
		}
		return nil, nil
	case kindENOSPC:
		return fmt.Errorf("failpoint at %s: %w", site, syscall.ENOSPC), nil
	case kindTorn:
		keep := n
		if keep > int64(len(buf)) {
			keep = int64(len(buf))
		}
		return fmt.Errorf("%w at %s (torn write, %d/%d bytes)", ErrInjected, site, keep, len(buf)), buf[:keep]
	case kindSleep:
		time.Sleep(time.Duration(n) * time.Millisecond)
		return nil, nil
	case kindPanic:
		panic("failpoint: panic at " + site)
	case kindCrash:
		exitFn(CrashExitCode)
	case kindCrashN:
		if hits == n {
			exitFn(CrashExitCode)
		}
	}
	return nil, nil
}
