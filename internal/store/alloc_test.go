package store

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"kflushing/internal/alloc"
	"kflushing/internal/types"
)

// TestStorePutRemoveAllocs pins the steady-state allocation ceiling of
// the store's hot pair at zero: once a shard's map has held a key, a
// Put/Remove cycle over live record wrappers touches no heap. The
// ingestion path runs this pair for every record that flushes, so a
// regression here multiplies across the whole stream.
func TestStorePutRemoveAllocs(t *testing.T) {
	s := New()
	recs := make([]*Record, 64)
	for i := range recs {
		recs[i] = rec(uint64(i + 1))
	}
	cycle := func() {
		for _, r := range recs {
			s.Put(r)
		}
		for _, r := range recs {
			if s.Remove(r.MB.ID) != r {
				t.Fatal("Remove returned wrong record")
			}
		}
	}
	cycle() // warm the shard maps
	if avg := testing.AllocsPerRun(200, cycle); avg > 0 {
		t.Errorf("Put/Remove cycle allocates %.2f objects/run, want 0", avg)
	}
}

// TestStoreConcurrentRecycledRecords drives the record-recycling
// protocol across the store under the race detector, for both allocator
// policies: writers create records through a Recycler (reusing dead
// wrappers), publish them in the store, retire them, and Free them;
// readers pin the recycler's epoch guard, look records up, and read
// plain fields. The epoch quarantine is the only thing ordering a
// reader's field loads before a writer's ResetRecord of the same
// wrapper — exactly the hand-off the race detector must bless.
func TestStoreConcurrentRecycledRecords(t *testing.T) {
	for _, ap := range []alloc.Policy{alloc.PolicyPooled, alloc.PolicyHeap} {
		ap := ap
		t.Run("alloc="+ap.String(), func(t *testing.T) {
			s := New()
			rc := alloc.NewRecycler[*Record](ap)
			var latest atomic.Uint64
			var writersWg, readersWg sync.WaitGroup
			const (
				writers = 2
				readers = 2
				rounds  = 3000
				window  = 32
			)
			var stop atomic.Bool

			for w := 0; w < writers; w++ {
				writersWg.Add(1)
				go func(w int) {
					defer writersWg.Done()
					live := make([]*Record, 0, window)
					for i := 0; i < rounds; i++ {
						id := uint64(w*rounds+i) + 1
						mb := &types.Microblog{
							ID:        types.ID(id),
							Timestamp: types.Timestamp(id),
							Keywords:  []string{"kw"},
							Text:      "recycled body",
						}
						r, ok := rc.Get()
						if !ok {
							r = NewRecord(mb, float64(id))
						} else {
							ResetRecord(r, mb, float64(id))
						}
						s.Put(r)
						latest.Store(id)
						live = append(live, r)
						if len(live) == window {
							old := live[0]
							live = append(live[:0], live[1:]...)
							if s.Remove(old.MB.ID) != old {
								t.Error("Remove returned wrong record")
								return
							}
							// Off the store and unreferenced: dead. The
							// recycler's quarantine covers pinned readers.
							rc.Free([]*Record{old})
						}
					}
				}(w)
			}

			for g := 0; g < readers; g++ {
				readersWg.Add(1)
				go func(g int) {
					defer readersWg.Done()
					rng := rand.New(rand.NewSource(int64(g + 1)))
					for !stop.Load() {
						ep := rc.Pin()
						hi := latest.Load()
						if hi > 0 {
							// Probe near the live window so lookups race
							// with retirement and reuse.
							delta := uint64(rng.Intn(2 * window))
							if delta >= hi {
								delta = hi - 1
							}
							if r := s.Get(types.ID(hi - delta)); r != nil {
								if r.Score <= 0 || r.MB.Timestamp <= 0 {
									t.Error("live record with zeroed fields")
									rc.Unpin(ep)
									return
								}
							}
						}
						rc.Unpin(ep)
					}
				}(g)
			}

			writersWg.Wait()
			stop.Store(true)
			readersWg.Wait()

			if ap == alloc.PolicyPooled && rc.Stats().Reuses == 0 {
				// Readers can keep the epoch pinned for the whole
				// (short) run, in which case no Get above reclaimed.
				// With the readers gone the quarantine drains, so a
				// single Get must now reuse one of the thousands of
				// wrappers freed during the run.
				if _, ok := rc.Get(); !ok {
					t.Fatal("pooled run never reused a record wrapper")
				}
			}
		})
	}
}
