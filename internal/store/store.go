// Package store implements the raw data store: the in-memory container
// holding complete microblog records (Figure 3 of the paper).
//
// Index entries hold postings that point at records here. Each record
// carries a reference count (the paper's pcount) equal to the number of
// index entries currently referencing it. When a flushing phase trims the
// last reference, the record leaves the store and enters the flush
// buffer. Records also embed the intrusive hooks the LRU baseline needs
// (the paper notes H-Store embeds its LRU pointers in the per-microblog
// state to reduce overhead) and the top-k membership counter used by the
// kFlushing-MK extension.
package store

import (
	"sync"
	"sync/atomic"

	"kflushing/internal/memsize"
	"kflushing/internal/types"
)

// Record wraps one stored microblog with the bookkeeping every policy
// needs. Records are created by the ingestion path and shared by
// reference; only the designated atomic fields may be mutated after
// creation.
type Record struct {
	// MB is the immutable microblog payload.
	MB *types.Microblog
	// Score is the ranking score computed at arrival (Section IV-B).
	Score float64
	// Bytes is the modeled memory cost of this record in the raw data
	// store.
	Bytes int64

	// pcount is the number of index entries referencing this record.
	pcount atomic.Int32
	// topk counts the index entries in which this record currently
	// ranks inside the top-k. Maintained only when the index is built
	// with top-k tracking (kFlushing-MK); zero otherwise.
	topk atomic.Int32

	// onDisk records whether the payload has already been written to a
	// disk segment, so a record flushed once (e.g. when a trim left it
	// memory-resident but index-invisible under one key) is never
	// serialized twice.
	onDisk atomic.Bool

	// LRUPrev and LRUNext are intrusive doubly-linked-list hooks owned
	// exclusively by the LRU policy; nil under every other policy.
	LRUPrev, LRUNext *Record
}

// MarkOnDisk atomically claims the right to serialize this record to
// disk, returning true exactly once.
func (r *Record) MarkOnDisk() bool { return r.onDisk.CompareAndSwap(false, true) }

// OnDisk reports whether the record has been written to a disk segment.
func (r *Record) OnDisk() bool { return r.onDisk.Load() }

// UnmarkOnDisk withdraws a MarkOnDisk claim after the serialization it
// licensed failed: the record never reached a durable segment, so a
// later flush must be allowed to write it again.
func (r *Record) UnmarkOnDisk() { r.onDisk.Store(false) }

// NewRecord builds a record for m with the given pre-computed score,
// charging its modeled size.
func NewRecord(m *types.Microblog, score float64) *Record {
	return &Record{
		MB:    m,
		Score: score,
		Bytes: memsize.RecordBytes(len(m.Text), m.Keywords),
	}
}

// ResetRecord reinitializes a recycled record for a new microblog,
// clearing every counter, mark, and intrusive hook of its previous
// life. The caller asserts the record is provably dead: durably
// flushed, unreferenced, off the store, and past its reader quarantine.
func ResetRecord(r *Record, m *types.Microblog, score float64) {
	r.MB = m
	r.Score = score
	r.Bytes = memsize.RecordBytes(len(m.Text), m.Keywords)
	r.pcount.Store(0)
	r.topk.Store(0)
	r.onDisk.Store(false)
	r.LRUPrev, r.LRUNext = nil, nil
}

// Ref increments the reference count by n and returns the new value.
func (r *Record) Ref(n int32) int32 { return r.pcount.Add(n) }

// Unref decrements the reference count by one and returns the new value.
// The caller owning the transition to zero is responsible for removing
// the record from the store and flushing it.
func (r *Record) Unref() int32 { return r.pcount.Add(-1) }

// PCount returns the current reference count.
func (r *Record) PCount() int32 { return r.pcount.Load() }

// TopKRef adjusts the top-k membership counter by delta and returns the
// new value.
func (r *Record) TopKRef(delta int32) int32 { return r.topk.Add(delta) }

// TopKCount returns the number of entries in which the record is
// currently a top-k posting.
func (r *Record) TopKCount() int32 { return r.topk.Load() }

// shardCount is the number of store shards; a power of two so the shard
// selector is a mask.
const shardCount = 64

type shard struct {
	mu   sync.RWMutex
	recs map[types.ID]*Record
}

// Store is a sharded ID→record map. It tracks the modeled byte size of
// its contents through the engine's Tracker (the caller adjusts gauges;
// the store itself only counts records and bytes for introspection).
type Store struct {
	shards [shardCount]shard
	count  atomic.Int64
	bytes  atomic.Int64
}

// New returns an empty store.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].recs = make(map[types.ID]*Record)
	}
	return s
}

func (s *Store) shardFor(id types.ID) *shard {
	return &s.shards[uint64(id)&(shardCount-1)]
}

// Put inserts rec under its microblog ID. Inserting a duplicate ID
// replaces the previous record; ingestion assigns unique IDs so this
// only happens in tests.
//
//kfvet:noalloc
func (s *Store) Put(rec *Record) {
	sh := s.shardFor(rec.MB.ID)
	sh.mu.Lock()
	prev, existed := sh.recs[rec.MB.ID]
	sh.recs[rec.MB.ID] = rec
	sh.mu.Unlock()
	s.count.Add(1)
	s.bytes.Add(rec.Bytes)
	if existed {
		s.count.Add(-1)
		s.bytes.Add(-prev.Bytes)
	}
}

// Get returns the record with the given ID, or nil if absent.
func (s *Store) Get(id types.ID) *Record {
	sh := s.shardFor(id)
	sh.mu.RLock()
	rec := sh.recs[id]
	sh.mu.RUnlock()
	return rec
}

// Remove deletes the record with the given ID, returning it, or nil if
// absent.
//
//kfvet:noalloc
func (s *Store) Remove(id types.ID) *Record {
	sh := s.shardFor(id)
	sh.mu.Lock()
	rec, ok := sh.recs[id]
	if ok {
		delete(sh.recs, id)
	}
	sh.mu.Unlock()
	if ok {
		s.count.Add(-1)
		s.bytes.Add(-rec.Bytes)
	}
	return rec
}

// Len returns the number of stored records.
func (s *Store) Len() int64 { return s.count.Load() }

// Bytes returns the modeled byte total of stored records.
func (s *Store) Bytes() int64 { return s.bytes.Load() }

// Range calls fn for every stored record until fn returns false. The
// iteration holds one shard read lock at a time; fn must not call back
// into the store.
func (s *Store) Range(fn func(*Record) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, rec := range sh.recs {
			if !fn(rec) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}
