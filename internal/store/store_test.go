package store

import (
	"sync"
	"testing"
	"testing/quick"

	"kflushing/internal/memsize"
	"kflushing/internal/types"
)

func rec(id uint64) *Record {
	return NewRecord(&types.Microblog{
		ID:        types.ID(id),
		Timestamp: types.Timestamp(id),
		Keywords:  []string{"kw"},
		Text:      "0123456789",
	}, float64(id))
}

func TestPutGetRemove(t *testing.T) {
	s := New()
	r := rec(1)
	s.Put(r)
	if got := s.Get(1); got != r {
		t.Fatal("Get returned wrong record")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Bytes() != r.Bytes {
		t.Fatalf("Bytes = %d, want %d", s.Bytes(), r.Bytes)
	}
	if got := s.Remove(1); got != r {
		t.Fatal("Remove returned wrong record")
	}
	if s.Get(1) != nil || s.Len() != 0 || s.Bytes() != 0 {
		t.Fatal("store not empty after removal")
	}
	if s.Remove(1) != nil {
		t.Fatal("double remove returned a record")
	}
}

func TestPutReplaceAccountsOnce(t *testing.T) {
	s := New()
	a, b := rec(1), rec(1)
	s.Put(a)
	s.Put(b)
	if s.Len() != 1 {
		t.Fatalf("Len = %d after replace", s.Len())
	}
	if s.Bytes() != b.Bytes {
		t.Fatalf("Bytes = %d, want %d", s.Bytes(), b.Bytes)
	}
}

func TestRecordBytesMatchModel(t *testing.T) {
	r := rec(1)
	want := memsize.RecordBytes(10, []string{"kw"})
	if r.Bytes != want {
		t.Fatalf("Bytes = %d, want %d", r.Bytes, want)
	}
}

func TestRefCounting(t *testing.T) {
	r := rec(1)
	if r.Ref(2) != 2 {
		t.Fatal("Ref")
	}
	if r.Unref() != 1 || r.Unref() != 0 {
		t.Fatal("Unref sequence")
	}
	if r.PCount() != 0 {
		t.Fatal("PCount")
	}
}

func TestMarkOnDiskOnce(t *testing.T) {
	r := rec(1)
	if !r.MarkOnDisk() {
		t.Fatal("first MarkOnDisk must win")
	}
	if r.MarkOnDisk() {
		t.Fatal("second MarkOnDisk must lose")
	}
	if !r.OnDisk() {
		t.Fatal("OnDisk")
	}
}

func TestTopKRefCounter(t *testing.T) {
	r := rec(1)
	r.TopKRef(1)
	r.TopKRef(1)
	if r.TopKCount() != 2 {
		t.Fatal("TopKCount")
	}
	r.TopKRef(-2)
	if r.TopKCount() != 0 {
		t.Fatal("TopKCount after decrement")
	}
}

func TestRangeVisitsAll(t *testing.T) {
	s := New()
	for i := uint64(1); i <= 100; i++ {
		s.Put(rec(i))
	}
	seen := map[types.ID]bool{}
	s.Range(func(r *Record) bool {
		seen[r.MB.ID] = true
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("Range visited %d of 100", len(seen))
	}
	// Early termination.
	n := 0
	s.Range(func(*Record) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("Range early-exit visited %d", n)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < 1000; i++ {
				id := base*1000 + i + 1
				s.Put(rec(id))
				if s.Get(types.ID(id)) == nil {
					t.Error("lost record")
					return
				}
				if i%2 == 0 {
					s.Remove(types.ID(id))
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	if s.Len() != 4*500 {
		t.Fatalf("Len = %d, want %d", s.Len(), 4*500)
	}
}

// Property: Len and Bytes always equal the sum over live records.
func TestAccountingProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := New()
		live := map[types.ID]*Record{}
		for i, op := range ops {
			id := uint64(op%16) + 1
			if i%2 == 0 {
				r := rec(id)
				s.Put(r)
				live[types.ID(id)] = r
			} else {
				s.Remove(types.ID(id))
				delete(live, types.ID(id))
			}
		}
		var bytes int64
		for _, r := range live {
			bytes += r.Bytes
		}
		return s.Len() == int64(len(live)) && s.Bytes() == bytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
