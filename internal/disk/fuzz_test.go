package disk

import (
	"testing"

	"kflushing/internal/types"
)

// FuzzDecodeRecord throws arbitrary bytes at the record decoder: it must
// never panic or over-read, only return ErrCorrupt-style failures.
func FuzzDecodeRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendRecord(nil, FlushRecord{
		MB:    &types.Microblog{ID: 1, Keywords: []string{"a"}, Text: "t"},
		Score: 1,
	}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := decodeRecord(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		if fr.MB == nil {
			t.Fatal("nil microblog without error")
		}
	})
}

// FuzzBloomDecode throws arbitrary bytes at the Bloom-block decoder: it
// must never panic or over-read, and anything it accepts must re-encode
// to a filter with the same answers.
func FuzzBloomDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(newBloomFilter([]string{"a", "b", "c"}).encode(nil))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, n, err := decodeBloom(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		if b == nil {
			t.Fatal("nil filter without error")
		}
		// A decoded filter must survive its own encode→decode cycle with
		// identical membership behaviour.
		re, _, err := decodeBloom(b.encode(nil))
		if err != nil {
			t.Fatalf("re-decode of accepted filter failed: %v", err)
		}
		for _, probe := range []string{"", "a", "probe-key", string(data)} {
			if b.mayContain(probe) != re.mayContain(probe) {
				t.Fatalf("membership changed across re-encode for %q", probe)
			}
		}
	})
}

// FuzzRecordRoundTrip checks encode→decode identity over fuzzed fields.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), int64(2), uint64(3), uint32(4), 1.5, -2.5, true, "kw", "text")
	f.Fuzz(func(t *testing.T, id uint64, ts int64, user uint64, fol uint32,
		lat, lon float64, geo bool, kw, text string) {
		if len(kw) > 1<<16-1 || len(text) > 1<<20 {
			t.Skip()
		}
		in := FlushRecord{
			MB: &types.Microblog{
				ID: types.ID(id), Timestamp: types.Timestamp(ts),
				UserID: user, Followers: fol, Lat: lat, Lon: lon,
				HasGeo: geo, Keywords: []string{kw}, Text: text,
			},
			Score: float64(ts),
		}
		buf := appendRecord(nil, in)
		out, n, err := decodeRecord(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d", n, len(buf))
		}
		m := out.MB
		if m.ID != in.MB.ID || m.Timestamp != in.MB.Timestamp ||
			m.UserID != user || m.Followers != fol ||
			m.HasGeo != geo || m.Keywords[0] != kw || m.Text != text {
			t.Fatal("round trip mismatch")
		}
		// NaN lat/lon compare unequal to themselves; compare bits via
		// re-encode instead.
		buf2 := appendRecord(nil, out)
		if string(buf) != string(buf2) {
			t.Fatal("re-encode mismatch")
		}
	})
}
