package disk

import (
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"kflushing/internal/query"
	"kflushing/internal/types"
)

func testTier(t *testing.T) *Tier[string] {
	t.Helper()
	tier, err := Open(Config[string]{
		Dir:    t.TempDir(),
		KeysOf: func(m *types.Microblog) []string { return m.Keywords },
		Encode: func(s string) string { return s },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tier.Close() })
	return tier
}

func fr(id uint64, score float64, kws ...string) FlushRecord {
	return FlushRecord{
		MB: &types.Microblog{
			ID:        types.ID(id),
			Timestamp: types.Timestamp(score),
			UserID:    id * 7,
			Followers: uint32(id),
			Lat:       40.5,
			Lon:       -74.2,
			HasGeo:    true,
			Keywords:  kws,
			Text:      "some text body",
		},
		Score: score,
	}
}

func TestFlushAndSingleSearch(t *testing.T) {
	tier := testTier(t)
	var recs []FlushRecord
	for i := 1; i <= 30; i++ {
		recs = append(recs, fr(uint64(i), float64(i), "a"))
	}
	if err := tier.Flush(recs); err != nil {
		t.Fatal(err)
	}
	items, err := tier.Search([]string{"a"}, query.OpSingle, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("got %d items, want 5", len(items))
	}
	for i, it := range items {
		if want := float64(30 - i); it.Score != want {
			t.Errorf("item %d score = %v, want %v", i, it.Score, want)
		}
	}
}

func TestSearchAcrossSegments(t *testing.T) {
	tier := testTier(t)
	// Two segments; newer one holds higher scores.
	if err := tier.Flush([]FlushRecord{fr(1, 1, "x"), fr(2, 2, "x")}); err != nil {
		t.Fatal(err)
	}
	if err := tier.Flush([]FlushRecord{fr(3, 3, "x"), fr(4, 4, "x")}); err != nil {
		t.Fatal(err)
	}
	items, err := tier.Search([]string{"x"}, query.OpSingle, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 3, 2}
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3", len(items))
	}
	for i, it := range items {
		if it.Score != want[i] {
			t.Errorf("item %d score = %v, want %v", i, it.Score, want[i])
		}
	}
}

func TestSearchOrAnd(t *testing.T) {
	tier := testTier(t)
	err := tier.Flush([]FlushRecord{
		fr(1, 1, "a"), fr(2, 2, "b"), fr(3, 3, "a", "b"), fr(4, 4, "c"),
	})
	if err != nil {
		t.Fatal(err)
	}
	or, err := tier.Search([]string{"a", "b"}, query.OpOr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(or) != 3 {
		t.Fatalf("OR: got %d items, want 3", len(or))
	}
	and, err := tier.Search([]string{"a", "b"}, query.OpAnd, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(and) != 1 || and[0].MB.ID != 3 {
		t.Fatalf("AND: got %v", and)
	}
}

func TestSearchMissingKey(t *testing.T) {
	tier := testTier(t)
	if err := tier.Flush([]FlushRecord{fr(1, 1, "a")}); err != nil {
		t.Fatal(err)
	}
	items, err := tier.Search([]string{"nope"}, query.OpSingle, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("got %d items for missing key", len(items))
	}
}

func TestRecordRoundTrip(t *testing.T) {
	tier := testTier(t)
	in := fr(42, 99.5, "kw1", "kw2")
	in.MB.Text = "full text with ünïcode ✓"
	if err := tier.Flush([]FlushRecord{in}); err != nil {
		t.Fatal(err)
	}
	items, err := tier.Search([]string{"kw1"}, query.OpSingle, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 {
		t.Fatal("missing record")
	}
	got := items[0].MB
	if got.ID != in.MB.ID || got.Timestamp != in.MB.Timestamp ||
		got.UserID != in.MB.UserID || got.Followers != in.MB.Followers ||
		got.Lat != in.MB.Lat || got.Lon != in.MB.Lon || !got.HasGeo ||
		got.Text != in.MB.Text || len(got.Keywords) != 2 ||
		got.Keywords[0] != "kw1" || got.Keywords[1] != "kw2" {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, in.MB)
	}
	if items[0].Score != in.Score {
		t.Fatalf("score = %v, want %v", items[0].Score, in.Score)
	}
}

func TestRecoverAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config[string]{
		Dir:    dir,
		KeysOf: func(m *types.Microblog) []string { return m.Keywords },
		Encode: func(s string) string { return s },
	}
	tier, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tier.Flush([]FlushRecord{fr(1, 1, "a"), fr(2, 2, "a")}); err != nil {
		t.Fatal(err)
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	items, err := re.Search([]string{"a"}, query.OpSingle, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("recovered %d items, want 2", len(items))
	}
	// New flushes after recovery must not collide with old segments.
	if err := re.Flush([]FlushRecord{fr(3, 3, "a")}); err != nil {
		t.Fatal(err)
	}
	items, err = re.Search([]string{"a"}, query.OpSingle, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("after new flush: %d items, want 3", len(items))
	}
}

func TestCorruptSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-00000001.kfs")
	if err := os.WriteFile(path, []byte("garbage not a segment at all........."), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(Config[string]{
		Dir:    dir,
		KeysOf: func(m *types.Microblog) []string { return m.Keywords },
		Encode: func(s string) string { return s },
	})
	if err == nil {
		t.Fatal("expected error opening dir with corrupt segment")
	}
}

func TestEmptyFlushIsNoop(t *testing.T) {
	tier := testTier(t)
	if err := tier.Flush(nil); err != nil {
		t.Fatal(err)
	}
	if st := tier.Stats(); st.Segments != 0 {
		t.Fatalf("segments = %d, want 0", st.Segments)
	}
}

// Property: any record encodes and decodes identically.
func TestRecordCodecProperty(t *testing.T) {
	f := func(id uint64, ts int64, user uint64, fol uint32, lat, lon float64, geo bool, kw1, kw2, text string) bool {
		if len(kw1) > 60000 || len(kw2) > 60000 || len(text) > 1<<20 {
			return true // outside format limits
		}
		in := FlushRecord{
			MB: &types.Microblog{
				ID: types.ID(id), Timestamp: types.Timestamp(ts),
				UserID: user, Followers: fol, Lat: lat, Lon: lon,
				HasGeo: geo, Keywords: []string{kw1, kw2}, Text: text,
			},
			Score: float64(ts),
		}
		buf := appendRecord(nil, in)
		out, n, err := decodeRecord(buf)
		if err != nil || n != len(buf) {
			return false
		}
		m := out.MB
		return m.ID == in.MB.ID && m.Timestamp == in.MB.Timestamp &&
			m.UserID == in.MB.UserID && m.Followers == in.MB.Followers &&
			m.Lat == in.MB.Lat && m.Lon == in.MB.Lon && m.HasGeo == in.MB.HasGeo &&
			len(m.Keywords) == 2 && m.Keywords[0] == kw1 && m.Keywords[1] == kw2 &&
			m.Text == text && out.Score == in.Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTruncatedRecordDetected(t *testing.T) {
	buf := appendRecord(nil, fr(1, 1, "abc"))
	for cut := 1; cut < len(buf); cut += 7 {
		if _, _, err := decodeRecord(buf[:cut]); err == nil {
			// Some prefixes may decode if the text length field is
			// satisfied early; the only hard requirement is no panic
			// and no over-read, which reaching here demonstrates.
			continue
		}
	}
}
