package disk

import (
	"path/filepath"
	"testing"

	"kflushing/internal/query"
	"kflushing/internal/types"
)

// writeV1Segment fabricates a genuine pre-Bloom (format v1) segment
// file, as a process running the previous release would have left it.
func writeV1Segment(t *testing.T, dir string, seq int, recs []FlushRecord) {
	t.Helper()
	sorted := append([]FlushRecord(nil), recs...)
	for i := 1; i < len(sorted); i++ { // insertion sort: tests use tiny inputs
		for j := i; j > 0 && sorted[j].Score > sorted[j-1].Score; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	d := make(map[string][]uint32)
	for ord, fr := range sorted {
		for _, kw := range fr.MB.Keywords {
			d[kw] = append(d[kw], uint32(ord))
		}
	}
	path := filepath.Join(dir, segmentFileName(seq))
	s, _, err := writeSegmentVersioned(path, sorted, d, segVersionV1, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.release()
}

// segmentFileName mirrors the tier's naming scheme for fabricated files.
func segmentFileName(seq int) string {
	const digits = "0123456789"
	name := []byte("seg-00000000.kfs")
	for i := 11; seq > 0 && i >= 4; i-- {
		name[i] = digits[seq%10]
		seq /= 10
	}
	return string(name)
}

// TestMixedVersionTier runs the full compatibility story: a directory
// holding pre-Bloom v1 segments and current v2 segments must recover,
// answer searches correctly from both, and compact everything into
// Bloom-bearing v2 output.
func TestMixedVersionTier(t *testing.T) {
	dir := t.TempDir()
	// Two v1 segments from "the previous release".
	writeV1Segment(t, dir, 1, []FlushRecord{fr(1, 1, "old"), fr(2, 2, "both")})
	writeV1Segment(t, dir, 2, []FlushRecord{fr(3, 3, "old"), fr(4, 4, "both")})

	cfg := Config[string]{
		Dir:    dir,
		KeysOf: func(m *types.Microblog) []string { return m.Keywords },
		Encode: func(s string) string { return s },
	}
	tier, err := Open(cfg)
	if err != nil {
		t.Fatalf("recover mixed dir: %v", err)
	}
	defer tier.Close()
	if got := tier.Stats().Segments; got != 2 {
		t.Fatalf("recovered %d segments, want 2", got)
	}

	// A new flush writes a v2 segment alongside the v1 ones.
	if err := tier.Flush([]FlushRecord{fr(5, 5, "new", "both")}); err != nil {
		t.Fatal(err)
	}
	infos, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 || infos[0].Version != 1 || infos[1].Version != 1 || infos[2].Version != 2 {
		t.Fatalf("segment versions: %+v", infos)
	}
	if infos[2].BloomBytes == 0 {
		t.Fatal("v2 segment has no Bloom block")
	}

	// Searches span both formats.
	items, err := tier.Search([]string{"both"}, query.OpSingle, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("mixed search found %d of 3 records", len(items))
	}
	wantIDs := []types.ID{5, 4, 2}
	for i, it := range items {
		if it.MB.ID != wantIDs[i] {
			t.Fatalf("item %d ID = %d, want %d", i, it.MB.ID, wantIDs[i])
		}
	}
	// v1 segments take the directory path (no bloom skips possible),
	// v2 consults its filter.
	st := tier.Stats()
	if st.DirProbes == 0 {
		t.Fatal("v1 segments produced no directory probes")
	}
	if st.BloomProbes == 0 {
		t.Fatal("v2 segment's Bloom filter was never consulted")
	}

	// Compaction merges mixed-version inputs into v2 output.
	if err := tier.CompactOldest(3); err != nil {
		t.Fatal(err)
	}
	infos, err = Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("after compaction: %d segments, want 1", len(infos))
	}
	if infos[0].Version != 2 || infos[0].BloomBytes == 0 {
		t.Fatalf("compacted segment not upgraded to v2 with Bloom: %+v", infos[0])
	}
	items, err = tier.Search([]string{"both"}, query.OpSingle, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("post-compaction search found %d of 3 records", len(items))
	}

	// The upgraded directory still recovers.
	tier.Close()
	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	items, err = re.Search([]string{"old"}, query.OpSingle, 10)
	if err != nil || len(items) != 2 {
		t.Fatalf("reopened search: %d items, err=%v", len(items), err)
	}
}
