package disk

import (
	"sync"
	"testing"

	"kflushing/internal/query"
	"kflushing/internal/types"
)

func TestCompactMergesAndPreservesAnswers(t *testing.T) {
	tier := testTier(t)
	// Three segments with overlapping keys.
	for seg := 0; seg < 3; seg++ {
		var recs []FlushRecord
		for i := 0; i < 10; i++ {
			id := uint64(seg*10 + i + 1)
			recs = append(recs, fr(id, float64(id), "a"))
		}
		if err := tier.Flush(recs); err != nil {
			t.Fatal(err)
		}
	}
	before, err := tier.Search([]string{"a"}, query.OpSingle, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := tier.CompactOldest(3); err != nil {
		t.Fatal(err)
	}
	if got := tier.Stats().Segments; got != 1 {
		t.Fatalf("segments after compaction = %d, want 1", got)
	}
	after, err := tier.Search([]string{"a"}, query.OpSingle, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("answers changed: %d vs %d", len(after), len(before))
	}
	for i := range after {
		if after[i].MB.ID != before[i].MB.ID {
			t.Fatalf("answer %d changed: %d vs %d", i, after[i].MB.ID, before[i].MB.ID)
		}
	}
}

func TestCompactDeduplicatesByID(t *testing.T) {
	tier := testTier(t)
	// The same record (partial flush then final flush) in two segments.
	dup := fr(7, 7, "a", "b")
	if err := tier.Flush([]FlushRecord{dup, fr(1, 1, "a")}); err != nil {
		t.Fatal(err)
	}
	if err := tier.Flush([]FlushRecord{dup, fr(2, 2, "b")}); err != nil {
		t.Fatal(err)
	}
	if err := tier.CompactOldest(2); err != nil {
		t.Fatal(err)
	}
	items, err := tier.Search([]string{"a"}, query.OpSingle, 10)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, it := range items {
		if it.MB.ID == 7 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("record 7 appears %d times after compaction", count)
	}
	if st := tier.Stats(); st.Compactions != 1 {
		t.Fatalf("compactions = %d", st.Compactions)
	}
}

func TestAutoCompactBoundsSegments(t *testing.T) {
	tier, err := Open(Config[string]{
		Dir:         t.TempDir(),
		KeysOf:      func(m *types.Microblog) []string { return m.Keywords },
		Encode:      func(s string) string { return s },
		MaxSegments: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	for i := 0; i < 20; i++ {
		if err := tier.Flush([]FlushRecord{fr(uint64(i+1), float64(i+1), "k")}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tier.Stats().Segments; got > 4 {
		t.Fatalf("segments = %d, want <= 4", got)
	}
	items, err := tier.Search([]string{"k"}, query.OpSingle, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 20 {
		t.Fatalf("lost records: %d of 20", len(items))
	}
}

func TestCompactionSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := Config[string]{
		Dir:    dir,
		KeysOf: func(m *types.Microblog) []string { return m.Keywords },
		Encode: func(s string) string { return s },
	}
	tier, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := tier.Flush([]FlushRecord{fr(uint64(i+1), float64(i+1), "k")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tier.CompactOldest(4); err != nil {
		t.Fatal(err)
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Stats().Segments; got != 3 {
		t.Fatalf("recovered %d segments, want 3 (1 merged + 2)", got)
	}
	items, err := re.Search([]string{"k"}, query.OpSingle, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 6 {
		t.Fatalf("recovered search: %d of 6 records", len(items))
	}
}

// TestCompactionConcurrentWithSearch hammers searches while compactions
// run; run with -race. Searches must never observe errors or lost
// records.
func TestCompactionConcurrentWithSearch(t *testing.T) {
	tier := testTier(t)
	for i := 0; i < 12; i++ {
		if err := tier.Flush([]FlushRecord{fr(uint64(i+1), float64(i+1), "k")}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			items, err := tier.Search([]string{"k"}, query.OpSingle, 20)
			if err != nil {
				t.Error(err)
				return
			}
			if len(items) != 12 {
				t.Errorf("search saw %d of 12 records", len(items))
				return
			}
		}
	}()
	for i := 0; i < 5; i++ {
		if err := tier.CompactOldest(3); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

func TestInspectAndVerify(t *testing.T) {
	dir := t.TempDir()
	cfg := Config[string]{
		Dir:    dir,
		KeysOf: func(m *types.Microblog) []string { return m.Keywords },
		Encode: func(s string) string { return s },
	}
	tier, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tier.Flush([]FlushRecord{fr(1, 1, "a", "b"), fr(2, 2, "a")}); err != nil {
		t.Fatal(err)
	}
	if err := tier.Flush([]FlushRecord{fr(3, 3, "c")}); err != nil {
		t.Fatal(err)
	}
	tier.Close()

	infos, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("inspected %d segments, want 2", len(infos))
	}
	if infos[0].Records != 2 || infos[0].Keys != 2 || infos[0].Postings != 3 {
		t.Fatalf("segment 0 info: %+v", infos[0])
	}
	segs, recs, err := Verify(dir)
	if err != nil || segs != 2 || recs != 3 {
		t.Fatalf("verify: segs=%d recs=%d err=%v", segs, recs, err)
	}
}

func TestCompactDirOffline(t *testing.T) {
	dir := t.TempDir()
	cfg := Config[string]{
		Dir:    dir,
		KeysOf: func(m *types.Microblog) []string { return m.Keywords },
		Encode: func(s string) string { return s },
	}
	tier, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := tier.Flush([]FlushRecord{fr(uint64(i+1), float64(i+1), "k")}); err != nil {
			t.Fatal(err)
		}
	}
	tier.Close()

	if err := CompactDir(dir, 5); err != nil {
		t.Fatal(err)
	}
	infos, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Records != 5 {
		t.Fatalf("after offline compaction: %+v", infos)
	}
	// The merged directory still serves searches through a fresh tier.
	re, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	items, err := re.Search([]string{"k"}, query.OpSingle, 10)
	if err != nil || len(items) != 5 {
		t.Fatalf("post-compaction search: %d items, err=%v", len(items), err)
	}
}

// TestMergePreservesForeignDirectories checks that compaction carries
// directory keys it could not recompute (e.g. a user-attribute tier's
// integer keys) — the attribute-agnostic property CompactDir relies on.
func TestMergePreservesForeignDirectories(t *testing.T) {
	dir := t.TempDir()
	cfg := Config[uint64]{
		Dir:    dir,
		KeysOf: func(m *types.Microblog) []uint64 { return []uint64{m.UserID} },
		Encode: func(u uint64) string { return string(rune('A' + u%26)) },
	}
	tier, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	mk := func(id, user uint64) FlushRecord {
		f := fr(id, float64(id), "ignored")
		f.MB.UserID = user
		return f
	}
	if err := tier.Flush([]FlushRecord{mk(1, 1), mk(2, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := tier.Flush([]FlushRecord{mk(3, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := tier.CompactOldest(2); err != nil {
		t.Fatal(err)
	}
	items, err := tier.Search([]uint64{1}, query.OpSingle, 10)
	if err != nil || len(items) != 2 {
		t.Fatalf("user search after merge: %d items, err=%v", len(items), err)
	}
}
