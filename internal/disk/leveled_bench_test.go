package disk

import (
	"fmt"
	"testing"

	"kflushing/internal/query"
	"kflushing/internal/types"
)

// layoutBenchTier builds a tier under the given layout from `segments`
// flushes of recsPerSeg records each. Every record carries one shared
// key, one modular key, and one unique key, so sparse lookups have
// exactly one home segment for the Bloom filters to find. The flat tier
// keeps all flushed segments (auto-compaction off); the leveled tier
// compacts inline to its fanout-bounded shape — that difference is the
// thing being measured.
func layoutBenchTier(b *testing.B, layout Layout, segments, recsPerSeg int) *Tier[string] {
	b.Helper()
	tier, err := Open(Config[string]{
		Dir:    b.TempDir(),
		KeysOf: func(m *types.Microblog) []string { return m.Keywords },
		Encode: func(s string) string { return s },
		Layout: layout,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tier.Close() })
	id := uint64(0)
	for s := 0; s < segments; s++ {
		recs := make([]FlushRecord, recsPerSeg)
		for i := range recs {
			id++
			recs[i] = fr(id, float64(id),
				"common", fmt.Sprintf("k%d", id%257), fmt.Sprintf("u%d", id))
		}
		if err := tier.Flush(recs); err != nil {
			b.Fatal(err)
		}
	}
	return tier
}

// BenchmarkMissBySegmentCount measures the memory-miss query latency as
// the number of flushed batches grows, flat versus leveled: the flat
// layout's candidate set grows linearly with flush count, the leveled
// layout's with its logarithmic level count. Three probe shapes per
// point: a unique key living in exactly one segment, a key absent from
// every segment (pure Bloom-scan cost), and the shared hot key
// (early-termination path).
func BenchmarkMissBySegmentCount(b *testing.B) {
	const recsPerSeg = 100
	for _, layout := range []Layout{LayoutFlat, LayoutLeveled} {
		for _, segs := range []int{10, 100, 1000} {
			b.Run(fmt.Sprintf("layout=%s/flushes=%d", layout, segs), func(b *testing.B) {
				tier := layoutBenchTier(b, layout, segs, recsPerSeg)
				nrec := uint64(segs * recsPerSeg)
				b.Run("unique", func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						key := fmt.Sprintf("u%d", uint64(i)%nrec+1)
						items, err := tier.Search([]string{key}, query.OpSingle, 10)
						if err != nil || len(items) != 1 {
							b.Fatalf("items=%d err=%v", len(items), err)
						}
					}
				})
				b.Run("absent", func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						items, err := tier.Search([]string{"nope"}, query.OpSingle, 10)
						if err != nil || len(items) != 0 {
							b.Fatalf("items=%d err=%v", len(items), err)
						}
					}
				})
				b.Run("hot", func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						items, err := tier.Search([]string{"common"}, query.OpSingle, 10)
						if err != nil || len(items) != 10 {
							b.Fatalf("items=%d err=%v", len(items), err)
						}
					}
				})
			})
		}
	}
}
