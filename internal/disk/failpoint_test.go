//go:build failpoint

package disk

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"kflushing/internal/failpoint"
	"kflushing/internal/query"
	"kflushing/internal/types"
)

func newFaultTier(t *testing.T, retry RetryPolicy) *Tier[string] {
	t.Helper()
	failpoint.DisableAll()
	t.Cleanup(failpoint.DisableAll)
	tier, err := Open(Config[string]{
		Dir:        t.TempDir(),
		KeysOf:     func(m *types.Microblog) []string { return m.Keywords },
		Encode:     func(s string) string { return s },
		CacheBytes: -1, // no read cache: every search preads
		Retry:      retry,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tier.Close() })
	return tier
}

// TestPreadRetriedOnce arms a single record-read fault: with a
// one-retry policy the search succeeds transparently; the hit counter
// proves the failpoint actually fired.
func TestPreadRetriedOnce(t *testing.T) {
	tier := newFaultTier(t, RetryPolicy{Attempts: 1})
	if err := tier.Flush([]FlushRecord{fr(1, 1, "a"), fr(2, 2, "a")}); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable(failpoint.DiskPread, "error(1)"); err != nil {
		t.Fatal(err)
	}
	items, err := tier.Search([]string{"a"}, query.OpSingle, 5)
	if err != nil {
		t.Fatalf("search with one pread fault and retry: %v", err)
	}
	if len(items) != 2 {
		t.Fatalf("got %d items, want 2", len(items))
	}
	if hits := failpoint.Hits(failpoint.DiskPread); hits < 2 {
		t.Fatalf("pread evaluated %d times, want >= 2 (1 failure + retry)", hits)
	}
}

// TestPreadFaultSurfacesWithoutRetry is the control: the same fault with
// retries disabled must surface as an injected error.
func TestPreadFaultSurfacesWithoutRetry(t *testing.T) {
	tier := newFaultTier(t, RetryPolicy{})
	if err := tier.Flush([]FlushRecord{fr(1, 1, "a")}); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable(failpoint.DiskPread, "error(1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := tier.Search([]string{"a"}, query.OpSingle, 5); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("search error = %v, want injected", err)
	}
}

// TestSegmentWriteLeavesNoPartialFiles verifies the atomic-write
// protocol: a fault at any stage of the staged segment write leaves the
// directory with no segment under its final name and only a temp file
// that the next Open removes as an orphan.
func TestSegmentWriteLeavesNoPartialFiles(t *testing.T) {
	for _, site := range []string{
		failpoint.DiskSegmentCreate,
		failpoint.DiskSegmentWrite,
		failpoint.DiskSegmentDirWrite,
		failpoint.DiskSegmentSync,
		failpoint.DiskSegmentRename,
	} {
		t.Run(filepath.Base(site), func(t *testing.T) {
			failpoint.DisableAll()
			t.Cleanup(failpoint.DisableAll)
			dir := t.TempDir()
			tier, err := Open(Config[string]{
				Dir:    dir,
				KeysOf: func(m *types.Microblog) []string { return m.Keywords },
				Encode: func(s string) string { return s },
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := failpoint.Enable(site, "error"); err != nil {
				t.Fatal(err)
			}
			if err := tier.Flush([]FlushRecord{fr(1, 1, "a")}); err == nil {
				t.Fatal("flush succeeded despite injected fault")
			}
			failpoint.DisableAll()
			if err := tier.Close(); err != nil {
				t.Fatal(err)
			}
			if segs, err := filepath.Glob(filepath.Join(dir, "seg-*.kfs")); err != nil || len(segs) != 0 {
				t.Fatalf("failed flush left final-named segments %v (err %v)", segs, err)
			}
			// A reopen clears any staged temp file left behind.
			tier, err = Open(Config[string]{
				Dir:    dir,
				KeysOf: func(m *types.Microblog) []string { return m.Keywords },
				Encode: func(s string) string { return s },
			})
			if err != nil {
				t.Fatal(err)
			}
			defer tier.Close()
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if matched, _ := filepath.Match("seg-*.kfs.*", e.Name()); matched {
					t.Fatalf("orphaned temp file %s survived reopen", e.Name())
				}
			}
		})
	}
}

// TestENOSPCSurfacesTyped checks the enospc action wraps the real
// syscall error so callers can special-case a full disk.
func TestENOSPCSurfacesTyped(t *testing.T) {
	tier := newFaultTier(t, RetryPolicy{})
	if err := failpoint.Enable(failpoint.DiskSegmentWrite, "enospc"); err != nil {
		t.Fatal(err)
	}
	err := tier.Flush([]FlushRecord{fr(1, 1, "a")})
	if err == nil {
		t.Fatal("flush succeeded despite ENOSPC")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("flush error %v does not wrap syscall.ENOSPC", err)
	}
}

// TestErrorOnlySitesLive arms the tier-side error-injection-only sites
// (registered for failpointcov coverage, excluded from the crash
// matrix) and proves they interrupt their operations: DiskOpenMkdir
// fails Open cleanly before any state exists, and DiskDirSync turns a
// flush's directory fsync into a surfaced error.
func TestErrorOnlySitesLive(t *testing.T) {
	failpoint.DisableAll()
	t.Cleanup(failpoint.DisableAll)

	if err := failpoint.Enable(failpoint.DiskOpenMkdir, "error"); err != nil {
		t.Fatal(err)
	}
	_, err := Open(Config[string]{
		Dir:    t.TempDir(),
		KeysOf: func(m *types.Microblog) []string { return m.Keywords },
		Encode: func(s string) string { return s },
	})
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Open with %s armed = %v, want injected error", failpoint.DiskOpenMkdir, err)
	}
	failpoint.Disable(failpoint.DiskOpenMkdir)

	tier := newFaultTier(t, RetryPolicy{})
	if err := failpoint.Enable(failpoint.DiskDirSync, "error"); err != nil {
		t.Fatal(err)
	}
	if err := tier.Flush([]FlushRecord{fr(1, 1, "a")}); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Flush with %s armed = %v, want injected error", failpoint.DiskDirSync, err)
	}
	failpoint.Disable(failpoint.DiskDirSync)
	if err := tier.Flush([]FlushRecord{fr(2, 2, "a")}); err != nil {
		t.Fatalf("Flush after disarm = %v", err)
	}
}
