package disk

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	rtrace "runtime/trace"
	"sort"
	"time"

	"kflushing/internal/blackbox"
	"kflushing/internal/failpoint"
)

// compactorLabels attributes background compaction CPU to its subsystem
// in profiles.
var compactorLabels = pprof.Labels("kflushing", "background-compactor")

// Compaction merges old segments into fewer, larger ones. Every flush
// writes one segment, so segment counts grow without bound and each
// memory miss pays one directory probe per segment; merging bounds that
// cost. Compaction also deduplicates records: a record trimmed from one
// entry while still memory-resident is persisted early (see
// VictimBuffer.AddPartial), and its keys may appear across several
// segments' directories.
//
// The flat layout merges the N oldest segments in place (the merged
// file takes the newest input's name, so lexicographic recovery
// ordering is preserved). The leveled layout merges a whole overflowing
// level into one lvl-* segment at the next level and commits the swap
// through the manifest: output renamed live → manifest commit (output
// live, inputs retired) → inputs unlinked. A crash between any two of
// those steps recovers cleanly (see openLeveled's rules).

// CompactOldest merges the n oldest flat-layout segments into one. It
// is a no-op when fewer than two segments exist. Concurrent searches
// keep working on the old segments until the swap, then see the merged
// one.
func (t *Tier[K]) CompactOldest(n int) error {
	if n < 2 {
		return nil
	}
	t.mu.Lock()
	t.ensureLevels(1)
	if len(t.levels[0]) < 2 {
		t.mu.Unlock()
		return nil
	}
	if n > len(t.levels[0]) {
		n = len(t.levels[0])
	}
	inputs := append([]*segment(nil), t.levels[0][:n]...)
	t.mu.Unlock()

	passStart := time.Now()
	merged, err := mergeSegmentsTo(inputs, inputs[len(inputs)-1].path)
	if err != nil {
		return err
	}
	t.compactions.Add(1)
	t.cfg.Recorder.Record(blackbox.SubCompact, blackbox.EvCompactPass,
		0, int64(len(inputs)), time.Since(passStart).Nanoseconds())
	slog.Debug("disk: compacted segments",
		"dir", t.cfg.Dir, "inputs", len(inputs), "merged", merged.name(),
		"records", merged.count)

	t.mu.Lock()
	// The inputs are still the oldest prefix (only Flush appends and
	// only compaction removes, and compactions are serialized by the
	// caller); swap them for the merged segment.
	t.levels[0] = append([]*segment{merged}, t.levels[0][n:]...)
	t.mu.Unlock()

	// Retire the inputs. Unlinking while readers still hold the file
	// open is safe (the inode survives until the last close); the
	// newest input's path was already replaced by the rename, so only
	// the older paths are unlinked. File handles close when the last
	// in-flight search releases its reference. A crash before the
	// removals finish leaves duplicate records across the merged file
	// and the surviving inputs — tolerated, because search deduplicates
	// by record ID and the next compaction merges them away.
	if err := failpoint.Eval(failpoint.DiskCompactRemove); err != nil {
		for _, s := range inputs {
			s.release()
		}
		return err
	}
	for i, s := range inputs {
		if i != len(inputs)-1 {
			if err := os.Remove(s.path); err != nil {
				s.release()
				return fmt.Errorf("disk: remove compacted input: %w", err)
			}
		}
		s.release()
	}
	return nil
}

// AutoCompact merges the oldest half of the flat-layout segments
// whenever more than maxSegments exist. Call after Flush; maxSegments
// <= 1 disables.
func (t *Tier[K]) AutoCompact(maxSegments int) error {
	if maxSegments <= 1 {
		return nil
	}
	t.mu.RLock()
	n := 0
	if len(t.levels) > 0 {
		n = len(t.levels[0])
	}
	t.mu.RUnlock()
	if n <= maxSegments {
		return nil
	}
	return t.CompactOldest(n/2 + 1)
}

// compactor is the background compaction loop of a leveled tier: it
// waits for a kick (sent after each flush install) and runs passes
// until no level is over its fanout. One goroutine, one kick buffered —
// repeated kicks during a pass coalesce.
func (t *Tier[K]) compactor() {
	defer t.compactWG.Done()
	// A compactor panic would silently kill background compaction; dump
	// the flight recorder next to the data it describes, then crash
	// loudly — the rings hold the compaction events that led here.
	defer func() {
		if p := recover(); p != nil {
			if path, err := t.cfg.Recorder.Dump(t.cfg.Dir, "panic"); err == nil && path != "" {
				slog.Error("disk: compactor panic, flight recorder dumped", "dump", path)
			}
			panic(p)
		}
	}()
	pprof.Do(context.Background(), compactorLabels, func(ctx context.Context) {
		for {
			select {
			case <-t.compactStop:
				return
			case <-t.compactKick:
				rtrace.WithRegion(ctx, "compaction-pass", func() {
					if err := t.CompactNow(); err != nil {
						t.compactionFailures.Add(1)
						slog.Error("disk: background compaction failed",
							"dir", t.cfg.Dir, "error", err)
					}
				})
			}
		}
	})
}

// kickCompactor nudges the background compactor; a kick already pending
// is enough.
func (t *Tier[K]) kickCompactor() {
	select {
	case t.compactKick <- struct{}{}:
	default:
	}
}

// overflowLevel returns the shallowest level holding more than fanout
// segments, or -1 when every level is within bounds.
func (t *Tier[K]) overflowLevel() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i, lv := range t.levels {
		if len(lv) > t.fanout {
			return i
		}
	}
	return -1
}

// CompactNow runs compaction passes until the tier is within bounds:
// leveled, every overflowing level merges into the next (shallowest
// first, so a cascade L0→L1→L2 resolves in one call); flat, the
// MaxSegments auto-compaction rule applies. Passes serialize on an
// internal gate, so concurrent callers (background compactor, sync
// flush, tooling) cannot double-merge.
func (t *Tier[K]) CompactNow() error {
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	if t.cfg.Layout != LayoutLeveled {
		return t.AutoCompact(t.cfg.MaxSegments)
	}
	if !t.compactionEnabled() {
		return nil
	}
	for {
		// Shutting down: leave remaining overflow for the next open.
		if t.compactStop != nil {
			select {
			case <-t.compactStop:
				return nil
			default:
			}
		}
		lvl := t.overflowLevel()
		if lvl < 0 {
			return nil
		}
		if err := t.compactLevel(lvl, false); err != nil {
			return err
		}
	}
}

// CompactAll merges every live segment into a single one — the leveled
// analogue of full compaction, used by tooling and by tests asserting
// global ID uniqueness. Flat tiers merge the whole list in place.
func (t *Tier[K]) CompactAll() error {
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	if t.cfg.Layout != LayoutLeveled {
		t.mu.RLock()
		n := 0
		if len(t.levels) > 0 {
			n = len(t.levels[0])
		}
		t.mu.RUnlock()
		return t.CompactOldest(n)
	}
	// Fold the shallowest populated level into the next until one
	// segment remains. Forced merges accept a single input (a plain
	// rewrite one level down), so stragglers cascade into the bottom.
	for {
		t.mu.RLock()
		total, shallowest := 0, -1
		for i, lv := range t.levels {
			if len(lv) > 0 {
				total += len(lv)
				if shallowest < 0 {
					shallowest = i
				}
			}
		}
		t.mu.RUnlock()
		if total < 2 {
			return nil
		}
		if err := t.compactLevel(shallowest, true); err != nil {
			return err
		}
	}
}

// compactLevel merges every segment of level lvl into one segment at
// lvl+1 and commits the swap through the manifest. Caller must hold
// compactMu. The commit protocol, in order, with its crash windows:
//
//	merge to lvl-<seq>.kfs.compact, fsync     (crash: staged orphan)
//	rename to lvl-<seq>.kfs                   (crash: unreferenced lvl
//	                                           file, deleted at open)
//	manifest commit: output live at lvl+1,    (the commit point)
//	                 inputs retired
//	unlink inputs                             (crash: retired files
//	                                           remain, deleted at open)
func (t *Tier[K]) compactLevel(lvl int, force bool) error {
	t.mu.RLock()
	if lvl >= len(t.levels) {
		t.mu.RUnlock()
		return nil
	}
	inputs := append([]*segment(nil), t.levels[lvl]...)
	t.mu.RUnlock()
	if len(inputs) == 0 || (len(inputs) < 2 && !force) {
		return nil
	}
	passStart := time.Now()
	seq := t.seq.Add(1)
	final := filepath.Join(t.cfg.Dir, fmt.Sprintf("lvl-%08d.kfs", seq))
	merged, err := mergeSegmentsTo(inputs, final)
	if err != nil {
		return err
	}
	// The crash window this site names: merged output live on disk, not
	// yet in a committed manifest. Recovery deletes it (its content is a
	// subset of the still-live inputs).
	if err := failpoint.Eval(failpoint.DiskCompactInstall); err != nil {
		merged.release()
		_ = os.Remove(final)
		return err
	}

	names := make([]string, len(inputs))
	for i, s := range inputs {
		names[i] = s.name()
	}
	t.manifestMu.Lock()
	t.mu.Lock()
	t.levels[lvl] = removeSegments(t.levels[lvl], inputs)
	t.ensureLevels(lvl + 2)
	t.levels[lvl+1] = append(t.levels[lvl+1], merged)
	t.retired = append(t.retired, names...)
	t.mu.Unlock()
	if err := t.commitManifest(); err != nil {
		// Roll back the swap: the inputs were the level's oldest prefix
		// (only flush appends, only serialized compaction removes), so
		// restoring them at the front preserves order.
		t.mu.Lock()
		t.levels[lvl] = append(append([]*segment(nil), inputs...), t.levels[lvl]...)
		t.levels[lvl+1] = removeSegments(t.levels[lvl+1], []*segment{merged})
		t.retired = t.retired[:len(t.retired)-len(names)]
		t.mu.Unlock()
		t.manifestMu.Unlock()
		merged.release()
		_ = os.Remove(final)
		return err
	}
	t.manifestMu.Unlock()
	t.compactions.Add(1)
	t.cfg.Recorder.Record(blackbox.SubCompact, blackbox.EvCompactPass,
		int64(lvl), int64(len(inputs)), time.Since(passStart).Nanoseconds())
	slog.Debug("disk: compacted level",
		"dir", t.cfg.Dir, "level", lvl, "inputs", len(inputs),
		"merged", merged.name(), "records", merged.count)

	// Unlink the inputs. The committed manifest already lists them
	// retired, so a crash anywhere below just leaves files the next
	// open deletes. Unlinking while readers still hold the files open
	// is safe (the inode survives until the last close).
	if err := failpoint.Eval(failpoint.DiskCompactRemove); err != nil {
		for _, s := range inputs {
			s.release()
		}
		return err
	}
	var firstErr error
	for _, s := range inputs {
		if err := os.Remove(s.path); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("disk: remove compacted input: %w", err)
		}
		s.release()
	}
	if firstErr != nil {
		return firstErr
	}
	// All inputs gone; drop them from the retired set so the next
	// manifest commit stops carrying them.
	t.mu.Lock()
	t.retired = removeNames(t.retired, names)
	t.mu.Unlock()
	return nil
}

// removeSegments returns segs minus the members of gone (pointer
// identity), preserving order.
func removeSegments(segs []*segment, gone []*segment) []*segment {
	out := segs[:0]
	for _, s := range segs {
		drop := false
		for _, g := range gone {
			if s == g {
				drop = true
				break
			}
		}
		if !drop {
			out = append(out, s)
		}
	}
	// Clear the tail so dropped pointers are not pinned by the backing
	// array.
	for i := len(out); i < len(segs); i++ {
		segs[i] = nil
	}
	return out
}

// removeSegment is removeSegments for a single member.
func removeSegment(segs []*segment, gone *segment) []*segment {
	return removeSegments(segs, []*segment{gone})
}

// removeNames returns names minus the members of gone, preserving order.
func removeNames(names []string, gone []string) []string {
	goneSet := make(map[string]struct{}, len(gone))
	for _, g := range gone {
		goneSet[g] = struct{}{}
	}
	out := names[:0]
	for _, n := range names {
		if _, drop := goneSet[n]; !drop {
			out = append(out, n)
		}
	}
	for i := len(out); i < len(names); i++ {
		names[i] = ""
	}
	return out
}

// mergeSegmentsTo reads every record of the inputs, deduplicates by
// record ID (copies are identical), and writes one merged segment at
// final. The merged directory is the union of the input directories
// with ordinals remapped — directories are carried over, not
// recomputed, so the merge is attribute-agnostic and preserves whatever
// keys the writer indexed.
func mergeSegmentsTo(inputs []*segment, final string) (*segment, error) {
	// Pass 1: collect unique records newest-input-first, remembering
	// each input ordinal's record ID for the directory remap.
	ids := make([][]uint64, len(inputs)) // per input: ordinal → record ID
	seen := make(map[uint64]struct{})
	var recs []FlushRecord
	for i := len(inputs) - 1; i >= 0; i-- {
		s := inputs[i]
		ids[i] = make([]uint64, s.count)
		for ord := uint32(0); ord < s.count; ord++ {
			fr, err := s.readRecord(ord)
			if err != nil {
				return nil, fmt.Errorf("disk: compact read %s: %w", s.path, err)
			}
			ids[i][ord] = uint64(fr.MB.ID)
			if _, dup := seen[uint64(fr.MB.ID)]; dup {
				continue
			}
			seen[uint64(fr.MB.ID)] = struct{}{}
			recs = append(recs, fr)
		}
	}
	// Rank the merged records best-score-first, fixing the mapping.
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := recs[order[a]], recs[order[b]]
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		return x.MB.ID > y.MB.ID
	})
	ranked := make([]FlushRecord, len(recs))
	finalOrd := make(map[uint64]uint32, len(recs))
	for newPos, oldPos := range order {
		ranked[newPos] = recs[oldPos]
		finalOrd[uint64(recs[oldPos].MB.ID)] = uint32(newPos)
	}

	// Pass 2: union the input directories under the remapped ordinals.
	dir := make(map[string][]uint32)
	seenKeyOrd := make(map[string]map[uint32]struct{})
	for i := len(inputs) - 1; i >= 0; i-- {
		s := inputs[i]
		for key, ords := range s.dir {
			ko := seenKeyOrd[key]
			if ko == nil {
				ko = make(map[uint32]struct{})
				seenKeyOrd[key] = ko
			}
			for _, ord := range ords {
				mapped := finalOrd[ids[i][ord]]
				if _, dup := ko[mapped]; dup {
					continue
				}
				ko[mapped] = struct{}{}
				dir[key] = append(dir[key], mapped)
			}
		}
	}
	for key := range dir {
		ords := dir[key]
		sort.Slice(ords, func(a, b int) bool { return ords[a] < ords[b] })
	}

	// Write to a temp path first for atomicity (flat merges rename over
	// the newest input's name; leveled merges use a fresh lvl-* name).
	// The output is always current-version: compaction upgrades
	// pre-Bloom inputs to Bloom-bearing segments.
	tmp := final + ".compact"
	merged, _, err := writeSegment(tmp, ranked, dir, nil)
	if err != nil {
		return nil, err
	}
	// Close the temp handle, rename over, and reopen under the final
	// name. The rename is atomic on POSIX filesystems; when the target
	// name is an existing input, its old inode lives on until the last
	// reference closes.
	if err := merged.close(); err != nil {
		return nil, err
	}
	if err := failpoint.Eval(failpoint.DiskCompactRename); err != nil {
		_ = os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return nil, err
	}
	if err := syncDir(filepath.Dir(final)); err != nil {
		return nil, err
	}
	reopened, err := openSegment(final)
	if err != nil {
		return nil, fmt.Errorf("disk: reopen merged segment: %w", err)
	}
	return reopened, nil
}

// Segments returns the live segment names in priority order (L0
// oldest-first, then each deeper level), for tests and tooling.
func (t *Tier[K]) Segments() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []string
	for _, lv := range t.levels {
		for _, s := range lv {
			out = append(out, filepath.Base(s.path))
		}
	}
	return out
}
