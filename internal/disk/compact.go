package disk

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"

	"kflushing/internal/failpoint"
)

// Compaction merges old segments into fewer, larger ones. Every flush
// writes one segment, so segment counts grow without bound and each
// memory miss pays one directory probe per segment; merging bounds that
// cost. Compaction also deduplicates records: a record trimmed from one
// entry while still memory-resident is persisted early (see
// VictimBuffer.AddPartial), and its keys may appear across several
// segments' directories.
//
// A merge rewrites the N oldest segments into one, ranked best score
// first, with a rebuilt directory. The merged file takes the newest
// input's sequence number, so recovery ordering (lexicographic file
// names) is preserved; the write is atomic (temp file + rename) and the
// inputs are deleted only after the rename succeeds.

// CompactOldest merges the n oldest segments into one. It is a no-op
// when fewer than two segments exist. Concurrent searches keep working
// on the old segments until the swap, then see the merged one.
func (t *Tier[K]) CompactOldest(n int) error {
	if n < 2 {
		return nil
	}
	t.mu.Lock()
	if len(t.segs) < 2 {
		t.mu.Unlock()
		return nil
	}
	if n > len(t.segs) {
		n = len(t.segs)
	}
	inputs := append([]*segment(nil), t.segs[:n]...)
	t.mu.Unlock()

	merged, err := mergeSegments(inputs)
	if err != nil {
		return err
	}
	t.compactions.Add(1)
	slog.Debug("disk: compacted segments",
		"dir", t.cfg.Dir, "inputs", len(inputs), "merged", merged.name(),
		"records", merged.count)

	t.mu.Lock()
	// The inputs are still the oldest prefix (only Flush appends and
	// only compaction removes, and compactions are serialized by the
	// caller); swap them for the merged segment.
	t.segs = append([]*segment{merged}, t.segs[n:]...)
	t.mu.Unlock()

	// Retire the inputs. Unlinking while readers still hold the file
	// open is safe (the inode survives until the last close); the
	// newest input's path was already replaced by the rename, so only
	// the older paths are unlinked. File handles close when the last
	// in-flight search releases its reference. A crash before the
	// removals finish leaves duplicate records across the merged file
	// and the surviving inputs — tolerated, because search deduplicates
	// by record ID and the next compaction merges them away.
	if err := failpoint.Eval(failpoint.DiskCompactRemove); err != nil {
		for _, s := range inputs {
			s.release()
		}
		return err
	}
	for i, s := range inputs {
		if i != len(inputs)-1 {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("disk: remove compacted input: %w", err)
			}
		}
		s.release()
	}
	return nil
}

// AutoCompact merges the oldest half of the segments whenever more than
// maxSegments exist. Call after Flush; maxSegments <= 1 disables.
func (t *Tier[K]) AutoCompact(maxSegments int) error {
	if maxSegments <= 1 {
		return nil
	}
	t.mu.RLock()
	n := len(t.segs)
	t.mu.RUnlock()
	if n <= maxSegments {
		return nil
	}
	return t.CompactOldest(n/2 + 1)
}

// mergeSegments reads every record of the inputs, deduplicates by
// record ID (copies are identical), and writes one merged segment. The
// merged directory is the union of the input directories with ordinals
// remapped — directories are carried over, not recomputed, so the merge
// is attribute-agnostic and preserves whatever keys the writer indexed.
func mergeSegments(inputs []*segment) (*segment, error) {
	// Pass 1: collect unique records newest-input-first, remembering
	// each input ordinal's record ID for the directory remap.
	ids := make([][]uint64, len(inputs)) // per input: ordinal → record ID
	seen := make(map[uint64]struct{})
	var recs []FlushRecord
	for i := len(inputs) - 1; i >= 0; i-- {
		s := inputs[i]
		ids[i] = make([]uint64, s.count)
		for ord := uint32(0); ord < s.count; ord++ {
			fr, err := s.readRecord(ord)
			if err != nil {
				return nil, fmt.Errorf("disk: compact read %s: %w", s.path, err)
			}
			ids[i][ord] = uint64(fr.MB.ID)
			if _, dup := seen[uint64(fr.MB.ID)]; dup {
				continue
			}
			seen[uint64(fr.MB.ID)] = struct{}{}
			recs = append(recs, fr)
		}
	}
	// Rank the merged records best-score-first, fixing the mapping.
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		x, y := recs[order[a]], recs[order[b]]
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		return x.MB.ID > y.MB.ID
	})
	ranked := make([]FlushRecord, len(recs))
	finalOrd := make(map[uint64]uint32, len(recs))
	for newPos, oldPos := range order {
		ranked[newPos] = recs[oldPos]
		finalOrd[uint64(recs[oldPos].MB.ID)] = uint32(newPos)
	}

	// Pass 2: union the input directories under the remapped ordinals.
	dir := make(map[string][]uint32)
	seenKeyOrd := make(map[string]map[uint32]struct{})
	for i := len(inputs) - 1; i >= 0; i-- {
		s := inputs[i]
		for key, ords := range s.dir {
			ko := seenKeyOrd[key]
			if ko == nil {
				ko = make(map[uint32]struct{})
				seenKeyOrd[key] = ko
			}
			for _, ord := range ords {
				mapped := finalOrd[ids[i][ord]]
				if _, dup := ko[mapped]; dup {
					continue
				}
				ko[mapped] = struct{}{}
				dir[key] = append(dir[key], mapped)
			}
		}
	}
	for key := range dir {
		ords := dir[key]
		sort.Slice(ords, func(a, b int) bool { return ords[a] < ords[b] })
	}

	// The merged file inherits the newest input's name so recovery
	// ordering holds; write to a temp path first for atomicity. The
	// output is always current-version: compaction upgrades pre-Bloom
	// inputs to Bloom-bearing segments.
	final := inputs[len(inputs)-1].path
	tmp := final + ".compact"
	merged, _, err := writeSegment(tmp, ranked, dir, nil)
	if err != nil {
		return nil, err
	}
	// Close the temp handle, rename over, and reopen under the final
	// name. The rename is atomic on POSIX filesystems; the newest
	// input's old inode lives on until its last reference closes.
	if err := merged.close(); err != nil {
		return nil, err
	}
	if err := failpoint.Eval(failpoint.DiskCompactRename); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return nil, err
	}
	if err := syncDir(filepath.Dir(final)); err != nil {
		return nil, err
	}
	reopened, err := openSegment(final)
	if err != nil {
		return nil, fmt.Errorf("disk: reopen merged segment: %w", err)
	}
	return reopened, nil
}

// Segments returns the live segment paths oldest-first, for tests and
// tooling.
func (t *Tier[K]) Segments() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, len(t.segs))
	for i, s := range t.segs {
		out[i] = filepath.Base(s.path)
	}
	return out
}
