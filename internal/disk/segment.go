package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"

	"kflushing/internal/failpoint"
	"kflushing/internal/types"
)

// syncDir fsyncs a directory so a just-renamed file's entry is durable:
// without it a crash can forget the rename even though the file data
// itself was synced.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("disk: open directory for sync: %w", err)
	}
	if err := failpoint.Eval(failpoint.DiskDirSync); err != nil {
		_ = d.Close()
		return fmt.Errorf("disk: sync directory: %w", err)
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // the Sync error is the one to surface
		return fmt.Errorf("disk: sync directory: %w", err)
	}
	return d.Close()
}

// Segment file layout (all integers little-endian):
//
//	header : magic "KFSG" | u16 version | u16 reserved | u32 count
//	records: count serialized records, back to back, best score first
//	offsets: count × u64 file offset of each record (ordinal order)
//	dir    : u32 nkeys, then per key:
//	         u16 keyLen | key bytes | u32 n | n × u32 record ordinals
//	bloom  : (v2 only) serialized key Bloom filter, see bloom.go
//	footer : v1: u64 offsetsPos | u64 dirPos | f64 maxScore | "KFND"
//	         v2: u64 offsetsPos | u64 dirPos | u64 bloomPos
//	             | f64 maxScore | "KFND"
//
// Records are written in descending score order, so every per-key
// ordinal list is already ranked and a reader can stop after k hits.
//
// Version 2 adds the Bloom block: a filter over the directory keys that
// lets a search skip segments provably lacking every requested key.
// The format is backward compatible — the header version selects the
// footer layout, so v1 files written before the Bloom block still open
// and simply fall back to directory lookup (segment.bloom == nil).
const (
	segMagic     = "KFSG"
	segEndMagic  = "KFND"
	segVersionV1 = 1
	segVersion   = 2 // current write version
	footerSizeV1 = 8 + 8 + 8 + 4
	footerSizeV2 = 8 + 8 + 8 + 8 + 4
)

// nextSegmentID hands out process-unique segment identities, the record
// cache's key namespace. IDs are never reused, so entries of a segment
// retired by compaction can never alias a live one.
var nextSegmentID atomic.Uint64

// ErrCorrupt reports a malformed or truncated segment file.
var ErrCorrupt = errors.New("disk: corrupt segment")

// FlushRecord is one record handed to the disk tier: the microblog and
// the ranking score computed at its arrival.
type FlushRecord struct {
	MB    *types.Microblog
	Score float64
}

// segment is one immutable on-disk file plus its in-memory directory.
// Segments are reference counted: the tier holds one reference for a
// live segment and every in-flight search holds one per snapshot
// member, so compaction can retire a segment (unlink is safe while the
// file is open) without yanking it from under concurrent readers.
type segment struct {
	id       uint64 // process-unique cache identity
	version  uint16
	path     string
	f        *os.File
	count    uint32
	offsets  []uint64
	dir      map[string][]uint32
	bloom    *bloomFilter // nil for v1 segments
	maxScore float64
	end      uint64 // file offset just past the last record
	size     int64  // whole-file byte length

	refs atomic.Int32
}

// name returns the segment's file name, its identity in traces and
// admin output.
func (s *segment) name() string { return filepath.Base(s.path) }

// acquire takes a reference for a reader.
func (s *segment) acquire() { s.refs.Add(1) }

// release drops a reference, closing the file handle when the last one
// goes away.
func (s *segment) release() {
	if s.refs.Add(-1) == 0 {
		// Read-only handle: a Close error cannot lose data, and the
		// last reader has nowhere to report it.
		_ = s.f.Close()
	}
}

// EncodeRecord appends the binary encoding of fr to buf and returns the
// extended slice. The format is shared with the write-ahead log.
func EncodeRecord(buf []byte, fr FlushRecord) []byte { return appendRecord(buf, fr) }

// DecodeRecord decodes one record from the front of b, returning it and
// the number of bytes consumed.
func DecodeRecord(b []byte) (FlushRecord, int, error) { return decodeRecord(b) }

func appendRecord(buf []byte, fr FlushRecord) []byte {
	m := fr.MB
	var tmp [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:8]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put16 := func(v uint16) {
		binary.LittleEndian.PutUint16(tmp[:2], v)
		buf = append(buf, tmp[:2]...)
	}
	put64(uint64(m.ID))
	put64(uint64(m.Timestamp))
	put64(m.UserID)
	put32(m.Followers)
	if m.HasGeo {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	put64(math.Float64bits(fr.Score))
	put64(math.Float64bits(m.Lat))
	put64(math.Float64bits(m.Lon))
	put16(uint16(len(m.Keywords)))
	for _, kw := range m.Keywords {
		put16(uint16(len(kw)))
		buf = append(buf, kw...)
	}
	put32(uint32(len(m.Text)))
	buf = append(buf, m.Text...)
	return buf
}

func decodeRecord(b []byte) (FlushRecord, int, error) {
	var fr FlushRecord
	m := &types.Microblog{}
	pos := 0
	need := func(n int) bool { return pos+n <= len(b) }
	if !need(8*2 + 8 + 4 + 1 + 8*3 + 2) {
		return fr, 0, ErrCorrupt
	}
	m.ID = types.ID(binary.LittleEndian.Uint64(b[pos:]))
	pos += 8
	m.Timestamp = types.Timestamp(binary.LittleEndian.Uint64(b[pos:]))
	pos += 8
	m.UserID = binary.LittleEndian.Uint64(b[pos:])
	pos += 8
	m.Followers = binary.LittleEndian.Uint32(b[pos:])
	pos += 4
	m.HasGeo = b[pos] == 1
	pos++
	fr.Score = math.Float64frombits(binary.LittleEndian.Uint64(b[pos:]))
	pos += 8
	m.Lat = math.Float64frombits(binary.LittleEndian.Uint64(b[pos:]))
	pos += 8
	m.Lon = math.Float64frombits(binary.LittleEndian.Uint64(b[pos:]))
	pos += 8
	nkw := int(binary.LittleEndian.Uint16(b[pos:]))
	pos += 2
	if nkw > 0 {
		m.Keywords = make([]string, nkw)
		for i := 0; i < nkw; i++ {
			if !need(2) {
				return fr, 0, ErrCorrupt
			}
			l := int(binary.LittleEndian.Uint16(b[pos:]))
			pos += 2
			if !need(l) {
				return fr, 0, ErrCorrupt
			}
			m.Keywords[i] = string(b[pos : pos+l])
			pos += l
		}
	}
	if !need(4) {
		return fr, 0, ErrCorrupt
	}
	tl := int(binary.LittleEndian.Uint32(b[pos:]))
	pos += 4
	if !need(tl) {
		return fr, 0, ErrCorrupt
	}
	m.Text = string(b[pos : pos+tl])
	pos += tl
	fr.MB = m
	return fr, pos, nil
}

// writeSegment serializes recs (already sorted best score first) with
// their directory to path at the current format version and returns the
// opened segment. scratch, when non-nil, is reused as the encode buffer;
// the (possibly grown) buffer is returned for the caller to keep.
func writeSegment(path string, recs []FlushRecord, dir map[string][]uint32, scratch []byte) (*segment, []byte, error) {
	return writeSegmentVersioned(path, recs, dir, segVersion, scratch)
}

// writeSegmentVersioned writes a segment at an explicit format version:
// the build stage (encode + staged write + fsync) followed immediately
// by the install stage (rename + directory fsync + reopen). The flush
// pipeline calls the two stages separately so the build can run off the
// tier's read lock; this wrapper serves compaction and tests.
func writeSegmentVersioned(path string, recs []FlushRecord, dir map[string][]uint32, version uint16, scratch []byte) (*segment, []byte, error) {
	st, scratch, err := stageSegment(path, recs, dir, version, scratch)
	if err != nil {
		return nil, scratch, err
	}
	s, err := st.install()
	return s, scratch, err
}

// stagedSegment is a fully built, fsynced segment file still at its
// temporary path — durable content, not yet visible to recovery. It
// becomes live via install (the atomic rename) or is discarded via
// abort.
type stagedSegment struct {
	tmpPath  string
	path     string
	version  uint16
	count    uint32
	offsets  []uint64
	dir      map[string][]uint32
	bloom    *bloomFilter
	maxScore float64
	end      uint64
	size     int64
}

// stageSegment runs the build stage: encode recs and their directory,
// write everything to path+".tmp", and fsync it. A crash or error here
// leaves only a .tmp orphan (removed by Open), never a live segment.
func stageSegment(path string, recs []FlushRecord, dir map[string][]uint32, version uint16, scratch []byte) (*stagedSegment, []byte, error) {
	buf := scratch[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 64*len(recs)+64)
	}
	buf = append(buf, segMagic...)
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], version)
	buf = append(buf, tmp[:2]...)
	buf = append(buf, 0, 0)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(recs)))
	buf = append(buf, tmp[:4]...)

	offsets := make([]uint64, len(recs))
	maxScore := math.Inf(-1)
	for i, fr := range recs {
		offsets[i] = uint64(len(buf))
		buf = appendRecord(buf, fr)
		if fr.Score > maxScore {
			maxScore = fr.Score
		}
	}
	end := uint64(len(buf))

	offsetsPos := uint64(len(buf))
	for _, off := range offsets {
		binary.LittleEndian.PutUint64(tmp[:], off)
		buf = append(buf, tmp[:8]...)
	}

	dirPos := uint64(len(buf))
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(dir)))
	buf = append(buf, tmp[:4]...)
	for key, ords := range dir {
		binary.LittleEndian.PutUint16(tmp[:2], uint16(len(key)))
		buf = append(buf, tmp[:2]...)
		buf = append(buf, key...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(ords)))
		buf = append(buf, tmp[:4]...)
		for _, o := range ords {
			binary.LittleEndian.PutUint32(tmp[:4], o)
			buf = append(buf, tmp[:4]...)
		}
	}

	var bloom *bloomFilter
	var bloomPos uint64
	if version >= 2 {
		keys := make([]string, 0, len(dir))
		for key := range dir {
			keys = append(keys, key)
		}
		bloom = newBloomFilter(keys)
		bloomPos = uint64(len(buf))
		buf = bloom.encode(buf)
	}

	binary.LittleEndian.PutUint64(tmp[:], offsetsPos)
	buf = append(buf, tmp[:8]...)
	binary.LittleEndian.PutUint64(tmp[:], dirPos)
	buf = append(buf, tmp[:8]...)
	if version >= 2 {
		binary.LittleEndian.PutUint64(tmp[:], bloomPos)
		buf = append(buf, tmp[:8]...)
	}
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(maxScore))
	buf = append(buf, tmp[:8]...)
	buf = append(buf, segEndMagic...)

	// Stage at a temp path and sync. The install stage later renames
	// into place and syncs the directory: a crash anywhere before the
	// rename leaves only a .tmp orphan (removed by Open), never a
	// half-written live segment, and a segment that HAS its final name
	// is durably complete.
	tmpPath := path + ".tmp"
	if err := failpoint.Eval(failpoint.DiskSegmentCreate); err != nil {
		return nil, buf, fmt.Errorf("disk: create segment: %w", err)
	}
	f, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, buf, fmt.Errorf("disk: create segment: %w", err)
	}
	// Until staging succeeds any failure removes the staged file; the
	// original error is the one to surface, not the cleanup's.
	staged := false
	defer func() {
		if !staged {
			_ = f.Close()
			_ = os.Remove(tmpPath)
		}
	}()
	// The record block and the metadata block (offsets, directory,
	// Bloom, footer) are written separately so fault injection can tear
	// either independently.
	recBlock, fperr := failpoint.EvalWrite(failpoint.DiskSegmentWrite, buf[:end])
	if _, err := f.Write(recBlock); err != nil {
		return nil, buf, fmt.Errorf("disk: write segment: %w", err)
	}
	if fperr != nil {
		return nil, buf, fperr
	}
	metaBlock, fperr := failpoint.EvalWrite(failpoint.DiskSegmentDirWrite, buf[end:])
	if _, err := f.Write(metaBlock); err != nil {
		return nil, buf, fmt.Errorf("disk: write segment directory: %w", err)
	}
	if fperr != nil {
		return nil, buf, fperr
	}
	if err := failpoint.Eval(failpoint.DiskSegmentSync); err != nil {
		return nil, buf, err
	}
	if err := f.Sync(); err != nil {
		return nil, buf, fmt.Errorf("disk: sync segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, buf, fmt.Errorf("disk: close staged segment: %w", err)
	}
	staged = true
	return &stagedSegment{
		tmpPath: tmpPath, path: path, version: version,
		count: uint32(len(recs)), offsets: offsets, dir: dir,
		bloom: bloom, maxScore: maxScore, end: end, size: int64(len(buf)),
	}, buf, nil
}

// install runs the install stage: atomically rename the staged file to
// its final name, fsync the directory, and open the live segment. An
// error before the rename leaves the staged file for abort to clean up;
// an error after it leaves a complete live segment that recovery adopts.
func (st *stagedSegment) install() (*segment, error) {
	if err := failpoint.Eval(failpoint.DiskSegmentRename); err != nil {
		return nil, err
	}
	if err := os.Rename(st.tmpPath, st.path); err != nil {
		return nil, fmt.Errorf("disk: rename segment: %w", err)
	}
	st.tmpPath = "" // renamed; abort must not unlink the live file
	if err := syncDir(filepath.Dir(st.path)); err != nil {
		return nil, err
	}
	if err := failpoint.Eval(failpoint.DiskSegmentAfterRename); err != nil {
		return nil, err
	}
	f, err := os.Open(st.path)
	if err != nil {
		return nil, err
	}
	s := &segment{
		id: nextSegmentID.Add(1), version: st.version,
		path: st.path, f: f, count: st.count,
		offsets: st.offsets, dir: st.dir, bloom: st.bloom,
		maxScore: st.maxScore, end: st.end, size: st.size,
	}
	s.refs.Store(1) // the tier's reference
	return s, nil
}

// abort discards a staged segment that will not be installed. Safe to
// call after a failed install: once the rename landed the file is live
// and abort leaves it alone.
func (st *stagedSegment) abort() {
	if st.tmpPath != "" {
		_ = os.Remove(st.tmpPath)
	}
}

// openSegment reads back a segment's offsets table and directory,
// supporting recovery of a disk tier across process restarts.
func openSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	// Every early return below must drop the handle; the segment owns
	// it only once construction succeeds.
	ok := false
	defer func() {
		if !ok {
			_ = f.Close()
		}
	}()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < 12 {
		return nil, ErrCorrupt
	}
	head := make([]byte, 12)
	if _, err := f.ReadAt(head, 0); err != nil {
		return nil, err
	}
	if string(head[:4]) != segMagic {
		return nil, ErrCorrupt
	}
	version := binary.LittleEndian.Uint16(head[4:])
	count := binary.LittleEndian.Uint32(head[8:])

	var footerSize int
	switch version {
	case segVersionV1:
		footerSize = footerSizeV1
	case segVersion:
		footerSize = footerSizeV2
	default:
		return nil, ErrCorrupt
	}
	if st.Size() < int64(footerSize)+12 {
		return nil, ErrCorrupt
	}
	foot := make([]byte, footerSize)
	if _, err := f.ReadAt(foot, st.Size()-int64(footerSize)); err != nil {
		return nil, err
	}
	if string(foot[footerSize-4:]) != segEndMagic {
		return nil, ErrCorrupt
	}
	offsetsPos := binary.LittleEndian.Uint64(foot[0:])
	dirPos := binary.LittleEndian.Uint64(foot[8:])
	var bloomPos uint64
	if version >= 2 {
		bloomPos = binary.LittleEndian.Uint64(foot[16:])
	}
	maxScore := math.Float64frombits(binary.LittleEndian.Uint64(foot[footerSize-12:]))

	tailLen := st.Size() - int64(footerSize) - int64(offsetsPos)
	if tailLen < 0 || dirPos < offsetsPos ||
		(version >= 2 && bloomPos < dirPos) {
		return nil, ErrCorrupt
	}
	tail := make([]byte, tailLen)
	if _, err := f.ReadAt(tail, int64(offsetsPos)); err != nil {
		return nil, err
	}
	offsets := make([]uint64, count)
	for i := range offsets {
		offsets[i] = binary.LittleEndian.Uint64(tail[i*8:])
	}
	db := tail[dirPos-offsetsPos:]
	pos := 0
	nkeys := int(binary.LittleEndian.Uint32(db[pos:]))
	pos += 4
	dir := make(map[string][]uint32, nkeys)
	for i := 0; i < nkeys; i++ {
		kl := int(binary.LittleEndian.Uint16(db[pos:]))
		pos += 2
		key := string(db[pos : pos+kl])
		pos += kl
		n := int(binary.LittleEndian.Uint32(db[pos:]))
		pos += 4
		ords := make([]uint32, n)
		for j := 0; j < n; j++ {
			ords[j] = binary.LittleEndian.Uint32(db[pos:])
			pos += 4
		}
		dir[key] = ords
	}
	var bloom *bloomFilter
	if version >= 2 {
		bloom, _, err = decodeBloom(tail[bloomPos-offsetsPos:])
		if err != nil {
			return nil, err
		}
	}
	s := &segment{
		id: nextSegmentID.Add(1), version: version,
		path: path, f: f, count: count,
		offsets: offsets, dir: dir, bloom: bloom,
		maxScore: maxScore, end: offsetsPos, size: st.Size(),
	}
	s.refs.Store(1) // the tier's reference
	ok = true
	return s, nil
}

// recordSize returns the on-disk byte length of the record at ord.
func (s *segment) recordSize(ord uint32) int64 {
	start := s.offsets[ord]
	if int(ord)+1 < len(s.offsets) {
		return int64(s.offsets[ord+1] - start)
	}
	return int64(s.end - start)
}

// readRecord loads the record with the given ordinal.
func (s *segment) readRecord(ord uint32) (FlushRecord, error) {
	if int(ord) >= len(s.offsets) {
		return FlushRecord{}, ErrCorrupt
	}
	start := s.offsets[ord]
	var limit uint64
	if int(ord)+1 < len(s.offsets) {
		limit = s.offsets[ord+1]
	} else {
		limit = s.end
	}
	if err := failpoint.Eval(failpoint.DiskPread); err != nil {
		return FlushRecord{}, err
	}
	b := make([]byte, limit-start)
	if _, err := s.f.ReadAt(b, int64(start)); err != nil && err != io.EOF {
		return FlushRecord{}, err
	}
	fr, _, err := decodeRecord(b)
	return fr, err
}

func (s *segment) close() error { return s.f.Close() }
