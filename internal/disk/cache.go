package disk

import (
	"container/list"
	"sync"
	"sync/atomic"

	"kflushing/internal/blackbox"
)

// recordCache is a bounded, sharded LRU over decoded FlushRecords keyed
// by (segment ID, ordinal). Hot keys that repeatedly miss memory stop
// paying a pread-plus-decode per query; eviction is by byte budget so
// cached text bodies cannot grow without bound. Segment IDs are unique
// per opened file (never reused across compactions), so entries for
// retired segments simply age out of the LRU.
type recordCache struct {
	shards []cacheShard
	rec    *blackbox.Recorder

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

const (
	cacheShardCount = 8
	// cacheEntryOverhead approximates the per-entry bookkeeping cost
	// (map slot, list element, decoded Microblog header) on top of the
	// record's on-disk size.
	cacheEntryOverhead = 160
)

type cacheKey struct {
	seg uint64
	ord uint32
}

type cacheEntry struct {
	key  cacheKey
	fr   FlushRecord
	size int64
}

type cacheShard struct {
	mu     sync.Mutex
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	m      map[cacheKey]*list.Element
}

// newRecordCache builds a cache holding at most budget bytes across all
// shards. budget must be positive.
func newRecordCache(budget int64, rec *blackbox.Recorder) *recordCache {
	c := &recordCache{shards: make([]cacheShard, cacheShardCount), rec: rec}
	per := budget / cacheShardCount
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			budget: per,
			ll:     list.New(),
			m:      make(map[cacheKey]*list.Element),
		}
	}
	return c
}

func (c *recordCache) shard(k cacheKey) *cacheShard {
	// Mix the segment ID and ordinal so consecutive ordinals spread.
	h := k.seg*0x9e3779b97f4a7c15 + uint64(k.ord)*0xbf58476d1ce4e5b9
	return &c.shards[(h>>56)%cacheShardCount]
}

// get returns the cached record for k, marking it most recently used.
func (c *recordCache) get(k cacheKey) (FlushRecord, bool) {
	s := c.shard(k)
	s.mu.Lock()
	el, ok := s.m[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return FlushRecord{}, false
	}
	s.ll.MoveToFront(el)
	fr := el.Value.(*cacheEntry).fr
	s.mu.Unlock()
	c.hits.Add(1)
	return fr, true
}

// put inserts the record, evicting least-recently-used entries until the
// shard fits its budget. diskSize is the record's on-disk length.
func (c *recordCache) put(k cacheKey, fr FlushRecord, diskSize int64) {
	size := diskSize + cacheEntryOverhead
	s := c.shard(k)
	s.mu.Lock()
	if el, ok := s.m[k]; ok { // racing fill; refresh recency only
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	if size > s.budget {
		s.mu.Unlock()
		return // larger than the whole shard: never admit
	}
	s.m[k] = s.ll.PushFront(&cacheEntry{key: k, fr: fr, size: size})
	s.used += size
	var evicted int64
	for s.used > s.budget {
		back := s.ll.Back()
		if back == nil {
			break
		}
		en := back.Value.(*cacheEntry)
		s.ll.Remove(back)
		delete(s.m, en.key)
		s.used -= en.size
		evicted++
	}
	used := s.used
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(evicted)
		c.rec.Record(blackbox.SubCache, blackbox.EvCacheEvict, evicted, used, 0)
	}
}

// setBudget retunes the cache to a new total byte budget, dividing it
// across shards as construction does and evicting least-recently-used
// entries from any shard now over its share. Shard budgets are mutated
// in place under each shard's lock — the *recordCache pointer readers
// hold stays valid throughout — so a resize is safe concurrent with
// get/put traffic. Returns the per-cache total actually applied.
func (c *recordCache) setBudget(total int64) int64 {
	per := total / cacheShardCount
	if per < 1 {
		per = 1
	}
	var evicted, used int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.budget = per
		for s.used > s.budget {
			back := s.ll.Back()
			if back == nil {
				break
			}
			en := back.Value.(*cacheEntry)
			s.ll.Remove(back)
			delete(s.m, en.key)
			s.used -= en.size
			evicted++
		}
		used += s.used
		s.mu.Unlock()
	}
	if evicted > 0 {
		c.evictions.Add(evicted)
		c.rec.Record(blackbox.SubCache, blackbox.EvCacheEvict, evicted, used, 0)
	}
	return per * cacheShardCount
}

// budgetBytes returns the cache's current total byte budget.
func (c *recordCache) budgetBytes() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.budget
		s.mu.Unlock()
	}
	return total
}

// resident returns the current cached byte total across shards.
func (c *recordCache) resident() int64 {
	var total int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.used
		s.mu.Unlock()
	}
	return total
}
