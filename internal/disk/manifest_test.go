package disk

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"kflushing/internal/query"
)

func TestManifestRoundTrip(t *testing.T) {
	cases := []Manifest{
		{},
		{NextSeq: 1},
		{NextSeq: 42, Live: []ManifestEntry{{Name: "seg-00000001.kfs", Level: 0}}},
		{
			NextSeq: 99,
			Live: []ManifestEntry{
				{Name: "seg-00000007.kfs", Level: 0},
				{Name: "lvl-00000005.kfs", Level: 1},
				{Name: "lvl-00000003.kfs", Level: 2},
			},
			Retired: []string{"seg-00000001.kfs", "seg-00000002.kfs"},
		},
	}
	for i, m := range cases {
		b := encodeManifest(nil, m)
		got, err := decodeManifest(b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalizeManifest(got), normalizeManifest(m)) {
			t.Fatalf("case %d: round trip %+v != %+v", i, got, m)
		}
	}
}

func normalizeManifest(m Manifest) Manifest {
	if len(m.Live) == 0 {
		m.Live = nil
	}
	if len(m.Retired) == 0 {
		m.Retired = nil
	}
	return m
}

// buildLeveledDir creates a leveled directory with enough flushes that
// the manifest names segments on at least two levels, and returns the
// directory, the intact manifest bytes, and the record count.
func buildLeveledDir(t *testing.T) (dir string, intact []byte, records int) {
	t.Helper()
	dir = t.TempDir()
	tier := leveledTier(t, dir, 2)
	id := uint64(0)
	for batch := 0; batch < 7; batch++ {
		var recs []FlushRecord
		for i := 0; i < 3; i++ {
			id++
			recs = append(recs, fr(id, float64(id), "k"))
		}
		if err := tier.Flush(recs); err != nil {
			t.Fatal(err)
		}
	}
	levels := tier.Levels()
	deep := 0
	for _, lv := range levels {
		if lv.Level > 0 && lv.Segments > 0 {
			deep += lv.Segments
		}
	}
	if deep == 0 {
		t.Fatal("workload produced no deep levels; torn-manifest matrix would be trivial")
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(filepath.Join(dir, "manifest.kfm"))
	if err != nil {
		t.Fatal(err)
	}
	return dir, intact, int(id)
}

// TestManifestTornTailMatrix mirrors the WAL torn-tail battery for the
// manifest: for EVERY byte offset it builds (a) a truncation at that
// offset and (b) a single-bit flip at that offset, then proves the
// decoder rejects the damage (or, for hypothetical collisions, decodes
// the identical manifest) and that a leveled Open of the damaged
// directory falls back to adoption and still answers every record.
func TestManifestTornTailMatrix(t *testing.T) {
	dir, intact, records := buildLeveledDir(t)
	want, err := decodeManifest(intact)
	if err != nil {
		t.Fatal(err)
	}

	checkDecode := func(t *testing.T, mutated []byte, label string) {
		got, err := DecodeManifest(mutated)
		if err == nil && !reflect.DeepEqual(normalizeManifest(got), normalizeManifest(want)) {
			t.Fatalf("%s: damaged manifest decoded to a DIFFERENT manifest: %+v", label, got)
		}
	}
	// Opening with a damaged manifest must never lose records: either
	// the decode survives identically or adoption recovers everything.
	checkOpen := func(t *testing.T, mutated []byte, label string) {
		if err := os.WriteFile(filepath.Join(dir, "manifest.kfm"), mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		tier := leveledTier(t, dir, 2)
		items, err := tier.Search([]string{"k"}, query.OpSingle, records)
		if err != nil {
			t.Fatalf("%s: search after damaged-manifest open: %v", label, err)
		}
		if len(items) != records {
			t.Fatalf("%s: damaged-manifest open answers %d of %d records", label, len(items), records)
		}
		if err := tier.Close(); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("truncate", func(t *testing.T) {
		for cut := 0; cut < len(intact); cut++ {
			checkDecode(t, intact[:cut], fmt.Sprintf("cut@%d", cut))
		}
		// The Open fallback is exercised at every frame boundary plus a
		// sweep inside the entry area (every open does real segment I/O,
		// so the full byte matrix runs decode-only above).
		for _, cut := range []int{0, 1, 4, 8, 16, len(intact) / 2, len(intact) - 8, len(intact) - 4, len(intact) - 1} {
			checkOpen(t, intact[:cut], fmt.Sprintf("open-cut@%d", cut))
		}
	})

	t.Run("bitflip", func(t *testing.T) {
		for off := 0; off < len(intact); off++ {
			mutated := append([]byte(nil), intact...)
			mutated[off] ^= 1 << (uint(off) % 8)
			checkDecode(t, mutated, fmt.Sprintf("flip@%d", off))
		}
		for _, off := range []int{0, 5, 9, len(intact) / 2, len(intact) - 6, len(intact) - 2} {
			mutated := append([]byte(nil), intact...)
			mutated[off] ^= 1 << (uint(off) % 8)
			checkOpen(t, mutated, fmt.Sprintf("open-flip@%d", off))
		}
	})

	// Restore the intact manifest and verify one final full recovery.
	if err := os.WriteFile(filepath.Join(dir, "manifest.kfm"), intact, 0o644); err != nil {
		t.Fatal(err)
	}
	tier := leveledTier(t, dir, 2)
	items, err := tier.Search([]string{"k"}, query.OpSingle, records)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != records {
		t.Fatalf("intact manifest answers %d of %d", len(items), records)
	}
}

// FuzzManifestDecode feeds arbitrary bytes to the manifest decoder: it
// must never panic, and any input it accepts must re-encode and decode
// to the same manifest (a canonical-form round trip).
func FuzzManifestDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("KFMF"))
	f.Add(encodeManifest(nil, Manifest{}))
	f.Add(encodeManifest(nil, Manifest{NextSeq: 7, Live: []ManifestEntry{{Name: "seg-00000001.kfs", Level: 0}}}))
	full := encodeManifest(nil, Manifest{
		NextSeq: 12,
		Live: []ManifestEntry{
			{Name: "seg-00000009.kfs", Level: 0},
			{Name: "lvl-00000008.kfs", Level: 1},
		},
		Retired: []string{"seg-00000002.kfs"},
	})
	f.Add(full)
	for cut := 0; cut < len(full); cut += 3 {
		f.Add(full[:cut])
	}
	for off := 0; off < len(full); off += 5 {
		mutated := append([]byte(nil), full...)
		mutated[off] ^= 0x40
		f.Add(mutated)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeManifest(b)
		if err != nil {
			return
		}
		re := encodeManifest(nil, m)
		m2, err := DecodeManifest(re)
		if err != nil {
			t.Fatalf("re-encode of accepted manifest rejected: %v", err)
		}
		if !reflect.DeepEqual(normalizeManifest(m), normalizeManifest(m2)) {
			t.Fatalf("round trip diverged: %+v vs %+v", m, m2)
		}
		if len(re) > len(b)+16 && !bytes.Equal(re, b) {
			t.Fatalf("re-encoding grew unexpectedly: %d -> %d bytes", len(b), len(re))
		}
	})
}
