package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"kflushing/internal/failpoint"
)

// The manifest is the leveled tier's commit point: a single small file
// naming every live segment with its level, plus the retired set —
// compaction inputs whose merged replacement is already live but whose
// files may not have been unlinked yet. It is rewritten atomically
// (temp file + fsync + rename + directory fsync), so the live manifest
// is always a complete, CRC-protected snapshot; a crash can only ever
// leave the PREVIOUS manifest plus staged orphans, never a half-written
// one. Torn or bit-rotted manifests are still handled: the decoder
// never panics, and Open falls back to adopting the segment files it
// finds (see the recovery rules on openLeveled).
//
// Manifest file layout (all integers little-endian):
//
//	header : magic "KFMF" | u16 version | u16 reserved | u64 nextSeq
//	live   : u32 n, then per entry: u32 level | u16 nameLen | name
//	retired: u32 n, then per entry: u16 nameLen | name
//	footer : u32 crc32-IEEE of everything above | magic "KFMN"
const (
	manifestName     = "manifest.kfm"
	manifestMagic    = "KFMF"
	manifestEndMagic = "KFMN"
	manifestVersion  = 1
	// manifestMaxName bounds a decoded entry name; segment names are
	// short ("seg-00000001.kfs"), so anything longer is corruption.
	manifestMaxName = 255
	// manifestMaxLevel bounds a decoded level; the geometric growth
	// makes real level numbers tiny, so a huge one is corruption.
	manifestMaxLevel = 1 << 16
)

// ErrCorruptManifest reports a malformed, truncated, or checksum-failed
// manifest file. Open treats it as absent and falls back to directory
// adoption, so it is survivable — but tooling surfaces it.
var ErrCorruptManifest = errors.New("disk: corrupt manifest")

// ManifestEntry is one live segment in the manifest.
type ManifestEntry struct {
	// Name is the segment file name (no directory).
	Name string
	// Level is the tier level the segment belongs to (0 = freshest).
	Level int
}

// Manifest is the decoded level metadata of a leveled tier.
type Manifest struct {
	// NextSeq is the lowest sequence number the tier may assign next;
	// sequence numbers are never reused across restarts.
	NextSeq uint64
	// Live lists every committed segment with its level.
	Live []ManifestEntry
	// Retired lists compaction inputs superseded by a live merged
	// segment; their files are deleted at the next opportunity and
	// must never be adopted as live data.
	Retired []string
}

// encodeManifest appends m's binary encoding to buf.
func encodeManifest(buf []byte, m Manifest) []byte {
	var tmp [8]byte
	put16 := func(v uint16) {
		binary.LittleEndian.PutUint16(tmp[:2], v)
		buf = append(buf, tmp[:2]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	buf = append(buf, manifestMagic...)
	put16(manifestVersion)
	put16(0)
	binary.LittleEndian.PutUint64(tmp[:], m.NextSeq)
	buf = append(buf, tmp[:8]...)
	put32(uint32(len(m.Live)))
	for _, e := range m.Live {
		put32(uint32(e.Level))
		put16(uint16(len(e.Name)))
		buf = append(buf, e.Name...)
	}
	put32(uint32(len(m.Retired)))
	for _, name := range m.Retired {
		put16(uint16(len(name)))
		buf = append(buf, name...)
	}
	put32(crc32.ChecksumIEEE(buf))
	buf = append(buf, manifestEndMagic...)
	return buf
}

// decodeManifest parses a manifest file's bytes. It is defensive end to
// end — truncations, bit flips, and hostile length fields return
// ErrCorruptManifest, never panic — because Open feeds it whatever a
// crash (or FuzzManifestDecode) left on disk.
func decodeManifest(b []byte) (Manifest, error) {
	var m Manifest
	const headerSize = 4 + 2 + 2 + 8
	const footerSize = 4 + 4
	if len(b) < headerSize+4+4+footerSize {
		return m, fmt.Errorf("%w: %d bytes is too short", ErrCorruptManifest, len(b))
	}
	if string(b[:4]) != manifestMagic {
		return m, fmt.Errorf("%w: bad magic", ErrCorruptManifest)
	}
	if string(b[len(b)-4:]) != manifestEndMagic {
		return m, fmt.Errorf("%w: bad end magic", ErrCorruptManifest)
	}
	crcPos := len(b) - footerSize
	if got, want := crc32.ChecksumIEEE(b[:crcPos]), binary.LittleEndian.Uint32(b[crcPos:]); got != want {
		return m, fmt.Errorf("%w: checksum mismatch (got %08x want %08x)", ErrCorruptManifest, got, want)
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != manifestVersion {
		return m, fmt.Errorf("%w: unsupported version %d", ErrCorruptManifest, v)
	}
	m.NextSeq = binary.LittleEndian.Uint64(b[8:])
	pos := headerSize
	need := func(n int) bool { return pos+n <= crcPos }
	if !need(4) {
		return Manifest{}, fmt.Errorf("%w: truncated live count", ErrCorruptManifest)
	}
	nLive := int(binary.LittleEndian.Uint32(b[pos:]))
	pos += 4
	// Each live entry takes at least 6 bytes; an nLive that cannot fit
	// is a hostile length field, rejected before any allocation.
	if nLive < 0 || nLive > (crcPos-pos)/6 {
		return Manifest{}, fmt.Errorf("%w: implausible live count %d", ErrCorruptManifest, nLive)
	}
	for i := 0; i < nLive; i++ {
		if !need(6) {
			return Manifest{}, fmt.Errorf("%w: truncated live entry %d", ErrCorruptManifest, i)
		}
		level := int(binary.LittleEndian.Uint32(b[pos:]))
		pos += 4
		nameLen := int(binary.LittleEndian.Uint16(b[pos:]))
		pos += 2
		if level > manifestMaxLevel || nameLen > manifestMaxName || !need(nameLen) {
			return Manifest{}, fmt.Errorf("%w: bad live entry %d", ErrCorruptManifest, i)
		}
		m.Live = append(m.Live, ManifestEntry{Name: string(b[pos : pos+nameLen]), Level: level})
		pos += nameLen
	}
	if !need(4) {
		return Manifest{}, fmt.Errorf("%w: truncated retired count", ErrCorruptManifest)
	}
	nRetired := int(binary.LittleEndian.Uint32(b[pos:]))
	pos += 4
	if nRetired < 0 || nRetired > (crcPos-pos)/2 {
		return Manifest{}, fmt.Errorf("%w: implausible retired count %d", ErrCorruptManifest, nRetired)
	}
	for i := 0; i < nRetired; i++ {
		if !need(2) {
			return Manifest{}, fmt.Errorf("%w: truncated retired entry %d", ErrCorruptManifest, i)
		}
		nameLen := int(binary.LittleEndian.Uint16(b[pos:]))
		pos += 2
		if nameLen > manifestMaxName || !need(nameLen) {
			return Manifest{}, fmt.Errorf("%w: bad retired entry %d", ErrCorruptManifest, i)
		}
		m.Retired = append(m.Retired, string(b[pos:pos+nameLen]))
		pos += nameLen
	}
	if pos != crcPos {
		return Manifest{}, fmt.Errorf("%w: %d trailing bytes", ErrCorruptManifest, crcPos-pos)
	}
	return m, nil
}

// DecodeManifest parses manifest bytes; exported for fuzzing and
// tooling. It never panics on arbitrary input.
func DecodeManifest(b []byte) (Manifest, error) { return decodeManifest(b) }

// ReadManifest loads and decodes dir's manifest. os.ErrNotExist when no
// manifest file exists (flat layouts, or a leveled tier never yet
// committed); ErrCorruptManifest when the file fails validation.
func ReadManifest(dir string) (Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return Manifest{}, err
	}
	return decodeManifest(b)
}

// writeManifest atomically replaces dir's manifest with m: stage at a
// temp path, fsync, rename into place, fsync the directory. A crash at
// any instruction leaves either the old or the new manifest live —
// never a torn one — which is the property the level install and
// compaction commit protocols build on. Each instruction carries a
// failpoint site so the crash matrix can kill the process exactly there.
func writeManifest(dir string, m Manifest) error {
	buf := encodeManifest(nil, m)
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	staged, fperr := failpoint.EvalWrite(failpoint.DiskManifestWrite, buf)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("disk: create manifest: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			// The write/sync error is the one to surface, not the cleanup's.
			_ = f.Close()
			_ = os.Remove(tmp)
		}
	}()
	if _, err := f.Write(staged); err != nil {
		return fmt.Errorf("disk: write manifest: %w", err)
	}
	if fperr != nil {
		return fmt.Errorf("disk: write manifest: %w", fperr)
	}
	if err := failpoint.Eval(failpoint.DiskManifestSync); err != nil {
		return fmt.Errorf("disk: sync manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("disk: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("disk: close manifest: %w", err)
	}
	if err := failpoint.Eval(failpoint.DiskManifestRename); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("disk: rename manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("disk: rename manifest: %w", err)
	}
	ok = true
	return syncDir(dir)
}
