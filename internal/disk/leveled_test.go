package disk

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"kflushing/internal/query"
	"kflushing/internal/types"
)

// leveledTier opens a leveled tier with inline (foreground) compaction
// so tests are deterministic.
func leveledTier(t *testing.T, dir string, fanout int) *Tier[string] {
	t.Helper()
	tier, err := Open(Config[string]{
		Dir:         dir,
		KeysOf:      func(m *types.Microblog) []string { return m.Keywords },
		Encode:      func(s string) string { return s },
		Layout:      LayoutLeveled,
		LevelFanout: fanout,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tier.Close() })
	return tier
}

// checkLevelInvariants asserts the structural invariants of a leveled
// tier: every level at or below its fanout (compaction caught up), and
// the manifest on disk naming exactly the live segments at their levels.
func checkLevelInvariants(t *testing.T, tier *Tier[string], fanout int) {
	t.Helper()
	levels := tier.Levels()
	for _, lv := range levels {
		if lv.Segments > fanout {
			t.Fatalf("level %d holds %d segments, fanout %d", lv.Level, lv.Segments, fanout)
		}
	}
	m, err := ReadManifest(tier.cfg.Dir)
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	manifestPerLevel := map[int]int{}
	for _, e := range m.Live {
		manifestPerLevel[e.Level]++
		if !fileExists(filepath.Join(tier.cfg.Dir, e.Name)) {
			t.Fatalf("manifest names %s at level %d but the file is gone", e.Name, e.Level)
		}
	}
	for _, lv := range levels {
		if manifestPerLevel[lv.Level] != lv.Segments {
			t.Fatalf("level %d: tier reports %d segments, manifest %d",
				lv.Level, lv.Segments, manifestPerLevel[lv.Level])
		}
	}
}

func TestLeveledStructureUnderFlushes(t *testing.T) {
	const fanout = 2
	tier := leveledTier(t, t.TempDir(), fanout)
	id := uint64(0)
	for batch := 0; batch < 12; batch++ {
		var recs []FlushRecord
		for i := 0; i < 5; i++ {
			id++
			recs = append(recs, fr(id, float64(id), "k", fmt.Sprintf("b%d", batch)))
		}
		if err := tier.Flush(recs); err != nil {
			t.Fatal(err)
		}
		// Flush compacts inline here (no background compactor), so the
		// invariants must hold after every single flush.
		checkLevelInvariants(t, tier, fanout)
	}
	st := tier.Stats()
	if st.Layout != "leveled" {
		t.Fatalf("layout = %q", st.Layout)
	}
	if st.Compactions == 0 {
		t.Fatal("12 flushes at fanout 2 ran no compactions")
	}
	var records int64
	for _, lv := range st.Levels {
		records += lv.Records
	}
	if records != int64(id) {
		t.Fatalf("levels hold %d records, flushed %d", records, id)
	}
	items, err := tier.Search([]string{"k"}, query.OpSingle, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 10 {
		t.Fatalf("top-10 returned %d items", len(items))
	}
	for i, it := range items {
		if want := id - uint64(i); uint64(it.MB.ID) != want {
			t.Fatalf("item %d = ID %d, want %d", i, it.MB.ID, want)
		}
	}
}

// TestLeveledFlatEquivalence drives the identical seeded workload into a
// flat tier and a leveled tier (inline compaction) and requires every
// query answer to match item-for-item — leveling must be invisible to
// readers. The leveled tier is additionally searched sequentially and in
// parallel, which must also agree.
func TestLeveledFlatEquivalence(t *testing.T) {
	flat, err := Open(Config[string]{
		Dir:    t.TempDir(),
		KeysOf: func(m *types.Microblog) []string { return m.Keywords },
		Encode: func(s string) string { return s },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	leveled := leveledTier(t, t.TempDir(), 2)
	seq, err := Open(Config[string]{
		Dir:               t.TempDir(),
		KeysOf:            func(m *types.Microblog) []string { return m.Keywords },
		Encode:            func(s string) string { return s },
		Layout:            LayoutLeveled,
		LevelFanout:       2,
		SearchParallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()

	rng := rand.New(rand.NewSource(61))
	keys := []string{"a", "b", "c", "d", "e"}
	id := uint64(0)
	for batch := 0; batch < 20; batch++ {
		var recs []FlushRecord
		for i := 0; i < 4+rng.Intn(8); i++ {
			id++
			kws := []string{keys[rng.Intn(len(keys))]}
			if rng.Intn(3) == 0 {
				kws = append(kws, keys[rng.Intn(len(keys))])
			}
			recs = append(recs, fr(id, float64(rng.Intn(1000)), kws...))
		}
		for _, tier := range []*Tier[string]{flat, leveled, seq} {
			if err := tier.Flush(recs); err != nil {
				t.Fatal(err)
			}
		}
	}

	queries := []struct {
		keys []string
		op   query.Op
	}{
		{[]string{"a"}, query.OpSingle},
		{[]string{"b"}, query.OpSingle},
		{[]string{"a", "c"}, query.OpOr},
		{[]string{"a", "b"}, query.OpAnd},
		{[]string{"a", "b", "c", "d", "e"}, query.OpOr},
		{[]string{"nope"}, query.OpSingle},
	}
	for _, q := range queries {
		for _, k := range []int{1, 5, 20, 1000} {
			want, err := flat.Search(q.keys, q.op, k)
			if err != nil {
				t.Fatal(err)
			}
			for name, tier := range map[string]*Tier[string]{"leveled": leveled, "leveled-sequential": seq} {
				got, err := tier.Search(q.keys, q.op, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s %v/%v k=%d: %d items, flat %d", name, q.keys, q.op, k, len(got), len(want))
				}
				for i := range want {
					if got[i].MB.ID != want[i].MB.ID || got[i].Score != want[i].Score {
						t.Fatalf("%s %v/%v k=%d item %d: got (ID %d, %g), flat (ID %d, %g)",
							name, q.keys, q.op, k, i,
							got[i].MB.ID, got[i].Score, want[i].MB.ID, want[i].Score)
					}
				}
			}
		}
	}
}

func TestLeveledReopenIdempotent(t *testing.T) {
	dir := t.TempDir()
	tier := leveledTier(t, dir, 2)
	id := uint64(0)
	for batch := 0; batch < 7; batch++ {
		var recs []FlushRecord
		for i := 0; i < 3; i++ {
			id++
			recs = append(recs, fr(id, float64(id), "k"))
		}
		if err := tier.Flush(recs); err != nil {
			t.Fatal(err)
		}
	}
	wantSegs := tier.Segments()
	wantItems, err := tier.Search([]string{"k"}, query.OpSingle, int(id))
	if err != nil {
		t.Fatal(err)
	}
	if err := tier.Close(); err != nil {
		t.Fatal(err)
	}

	// Two consecutive reopens: both must see the identical layout and
	// answers, and the second must not be confused by whatever the first
	// rewrote (manifest heal-commit is idempotent).
	for round := 1; round <= 2; round++ {
		reopened := leveledTier(t, dir, 2)
		gotSegs := reopened.Segments()
		sort.Strings(gotSegs)
		sorted := append([]string(nil), wantSegs...)
		sort.Strings(sorted)
		if len(gotSegs) != len(sorted) {
			t.Fatalf("reopen %d: %d segments, want %d", round, len(gotSegs), len(sorted))
		}
		for i := range sorted {
			if gotSegs[i] != sorted[i] {
				t.Fatalf("reopen %d: segment %d = %s, want %s", round, i, gotSegs[i], sorted[i])
			}
		}
		got, err := reopened.Search([]string{"k"}, query.OpSingle, int(id))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(wantItems) {
			t.Fatalf("reopen %d: %d items, want %d", round, len(got), len(wantItems))
		}
		for i := range wantItems {
			if got[i].MB.ID != wantItems[i].MB.ID {
				t.Fatalf("reopen %d item %d: ID %d, want %d", round, i, got[i].MB.ID, wantItems[i].MB.ID)
			}
		}
		if err := reopened.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLeveledAdoptionRules exercises the openLeveled recovery rules
// directly on crafted directories.
func TestLeveledAdoptionRules(t *testing.T) {
	t.Run("missing manifest adopts everything", func(t *testing.T) {
		dir := t.TempDir()
		tier := leveledTier(t, dir, 2)
		id := uint64(0)
		for batch := 0; batch < 5; batch++ {
			id++
			if err := tier.Flush([]FlushRecord{fr(id, float64(id), "k")}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tier.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(filepath.Join(dir, "manifest.kfm")); err != nil {
			t.Fatal(err)
		}
		reopened := leveledTier(t, dir, 2)
		items, err := reopened.Search([]string{"k"}, query.OpSingle, int(id))
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != int(id) {
			t.Fatalf("adopted tier answers %d of %d records", len(items), id)
		}
		// The heal-commit must leave a fresh valid manifest behind.
		if _, err := ReadManifest(dir); err != nil {
			t.Fatalf("no healed manifest after adoption open: %v", err)
		}
	})

	t.Run("corrupt manifest adopts everything", func(t *testing.T) {
		dir := t.TempDir()
		tier := leveledTier(t, dir, 2)
		for id := uint64(1); id <= 4; id++ {
			if err := tier.Flush([]FlushRecord{fr(id, float64(id), "k")}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tier.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "manifest.kfm"), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		reopened := leveledTier(t, dir, 2)
		items, err := reopened.Search([]string{"k"}, query.OpSingle, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != 4 {
			t.Fatalf("adopted tier answers %d of 4 records", len(items))
		}
	})

	t.Run("unreferenced seg file adopted at L0", func(t *testing.T) {
		dir := t.TempDir()
		tier := leveledTier(t, dir, 4)
		if err := tier.Flush([]FlushRecord{fr(1, 1, "k")}); err != nil {
			t.Fatal(err)
		}
		if err := tier.Close(); err != nil {
			t.Fatal(err)
		}
		// A segment that exists on disk but missed its manifest commit —
		// the DiskLevelInstall crash window. Simulate by cloning the live
		// segment under a higher unreferenced sequence number.
		segs, err := filepath.Glob(filepath.Join(dir, "seg-*.kfs"))
		if err != nil || len(segs) != 1 {
			t.Fatalf("glob: %v %v", segs, err)
		}
		b, err := os.ReadFile(segs[0])
		if err != nil {
			t.Fatal(err)
		}
		orphan := filepath.Join(dir, "seg-00009999.kfs")
		if err := os.WriteFile(orphan, b, 0o644); err != nil {
			t.Fatal(err)
		}
		reopened := leveledTier(t, dir, 4)
		if got := len(reopened.Segments()); got != 2 {
			t.Fatalf("orphan seg not adopted: %d live segments, want 2", got)
		}
		// Duplicate IDs across segments (replay double-write) must not
		// produce duplicate answers.
		items, err := reopened.Search([]string{"k"}, query.OpSingle, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != 1 {
			t.Fatalf("duplicate adopted record answered %d times", len(items))
		}
	})

	t.Run("unreferenced lvl file deleted", func(t *testing.T) {
		dir := t.TempDir()
		tier := leveledTier(t, dir, 4)
		if err := tier.Flush([]FlushRecord{fr(1, 1, "k")}); err != nil {
			t.Fatal(err)
		}
		if err := tier.Close(); err != nil {
			t.Fatal(err)
		}
		// An lvl-* file a valid manifest does not reference is a dead
		// compaction output superseded before commit; its contents are a
		// subset of still-live inputs, so open must delete, never adopt.
		stray := filepath.Join(dir, "lvl-00009999.kfs")
		if err := os.WriteFile(stray, []byte("half-written merge"), 0o644); err != nil {
			t.Fatal(err)
		}
		reopened := leveledTier(t, dir, 4)
		if fileExists(stray) {
			t.Fatal("unreferenced lvl file survived open")
		}
		if got := len(reopened.Segments()); got != 1 {
			t.Fatalf("%d live segments, want 1", got)
		}
	})
}

// TestLeveledCompactAll folds an arbitrary level tree down to one
// segment and verifies the disk ID set is preserved with global
// uniqueness — the machine-checkable "no duplicate postings across
// levels" invariant.
func TestLeveledCompactAll(t *testing.T) {
	tier := leveledTier(t, t.TempDir(), 2)
	want := map[uint64]bool{}
	id := uint64(0)
	for batch := 0; batch < 9; batch++ {
		var recs []FlushRecord
		for i := 0; i < 4; i++ {
			id++
			want[id] = true
			recs = append(recs, fr(id, float64(id%13), "k"))
		}
		if err := tier.Flush(recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := tier.CompactAll(); err != nil {
		t.Fatal(err)
	}
	if got := len(tier.Segments()); got != 1 {
		t.Fatalf("CompactAll left %d segments", got)
	}
	items, err := tier.Search([]string{"k"}, query.OpSingle, len(want)*2)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, it := range items {
		if seen[uint64(it.MB.ID)] {
			t.Fatalf("ID %d appears twice after CompactAll", it.MB.ID)
		}
		seen[uint64(it.MB.ID)] = true
	}
	if len(seen) != len(want) {
		t.Fatalf("CompactAll preserved %d of %d IDs", len(seen), len(want))
	}
	for wid := range want {
		if !seen[wid] {
			t.Fatalf("ID %d lost by CompactAll", wid)
		}
	}
}

// TestLeveledPropertyVsModel is a model-based property test: random
// flush batches interleaved with compactions at random points, checked
// after every step against an in-memory model of what each key's top-k
// must be.
func TestLeveledPropertyVsModel(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	tier := leveledTier(t, t.TempDir(), 2)
	keys := []string{"p", "q", "r"}
	model := map[string][]FlushRecord{}
	id := uint64(0)

	check := func(step int) {
		for _, key := range keys {
			recs := append([]FlushRecord(nil), model[key]...)
			sort.Slice(recs, func(i, j int) bool {
				if recs[i].Score != recs[j].Score {
					return recs[i].Score > recs[j].Score
				}
				return recs[i].MB.ID > recs[j].MB.ID
			})
			k := 7
			if k > len(recs) {
				k = len(recs)
			}
			items, err := tier.Search([]string{key}, query.OpSingle, 7)
			if err != nil {
				t.Fatal(err)
			}
			if len(items) != k {
				t.Fatalf("step %d key %s: %d items, model %d", step, key, len(items), k)
			}
			for i := 0; i < k; i++ {
				if items[i].MB.ID != recs[i].MB.ID || items[i].Score != recs[i].Score {
					t.Fatalf("step %d key %s item %d: got (ID %d, %g), model (ID %d, %g)",
						step, key, i, items[i].MB.ID, items[i].Score, recs[i].MB.ID, recs[i].Score)
				}
			}
		}
	}

	for step := 0; step < 60; step++ {
		switch rng.Intn(10) {
		case 0:
			if err := tier.CompactAll(); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := tier.CompactNow(); err != nil {
				t.Fatal(err)
			}
		default:
			var recs []FlushRecord
			for i := 0; i < 1+rng.Intn(5); i++ {
				id++
				key := keys[rng.Intn(len(keys))]
				rec := fr(id, float64(rng.Intn(50)), key)
				recs = append(recs, rec)
				model[key] = append(model[key], rec)
			}
			if err := tier.Flush(recs); err != nil {
				t.Fatal(err)
			}
		}
		check(step)
	}
}

// TestLeveledBackgroundCompactionConverges verifies the dedicated
// compactor goroutine (the production configuration) brings every level
// within fanout without losing answers.
func TestLeveledBackgroundCompactionConverges(t *testing.T) {
	tier, err := Open(Config[string]{
		Dir:                  t.TempDir(),
		KeysOf:               func(m *types.Microblog) []string { return m.Keywords },
		Encode:               func(s string) string { return s },
		Layout:               LayoutLeveled,
		LevelFanout:          2,
		BackgroundCompaction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	id := uint64(0)
	for batch := 0; batch < 10; batch++ {
		var recs []FlushRecord
		for i := 0; i < 3; i++ {
			id++
			recs = append(recs, fr(id, float64(id), "k"))
		}
		if err := tier.Flush(recs); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the compactor deterministically: CompactNow shares the
	// compaction mutex with the background pass, so when it returns with
	// no overflowing level, the tier is converged.
	if err := tier.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if backlog := tier.CompactionBacklog(); backlog != 0 {
		t.Fatalf("backlog %d after explicit CompactNow", backlog)
	}
	items, err := tier.Search([]string{"k"}, query.OpSingle, int(id))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != int(id) {
		t.Fatalf("%d of %d records answered after background compaction", len(items), id)
	}
}
