package disk

import (
	"fmt"
	"sync"
	"testing"

	"kflushing/internal/query"
	"kflushing/internal/types"
)

func fastTier(t *testing.T, cfg Config[string]) *Tier[string] {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.KeysOf == nil {
		cfg.KeysOf = func(m *types.Microblog) []string { return m.Keywords }
	}
	if cfg.Encode == nil {
		cfg.Encode = func(s string) string { return s }
	}
	tier, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tier.Close() })
	return tier
}

// fillSegments flushes `segments` segments of `per` records each with a
// per-record key and one shared "common" key.
func fillSegments(t *testing.T, tier *Tier[string], segments, per int) {
	t.Helper()
	id := uint64(0)
	for s := 0; s < segments; s++ {
		recs := make([]FlushRecord, per)
		for i := range recs {
			id++
			recs[i] = fr(id, float64(id), fmt.Sprintf("k%d", id), "common")
		}
		if err := tier.Flush(recs); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBloomSkipsDirectoryProbes is the headline acceptance check: a key
// absent from every segment must skip at least 90% of the per-segment
// directory probes via the Bloom filters.
func TestBloomSkipsDirectoryProbes(t *testing.T) {
	tier := fastTier(t, Config[string]{})
	fillSegments(t, tier, 16, 50)

	for i := 0; i < 8; i++ {
		items, err := tier.Search([]string{fmt.Sprintf("absent-%d", i)}, query.OpSingle, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != 0 {
			t.Fatalf("absent key returned %d items", len(items))
		}
	}
	st := tier.Stats()
	total := st.BloomSkips + st.DirProbes
	if total == 0 {
		t.Fatal("no probes recorded")
	}
	if rate := float64(st.BloomSkips) / float64(total); rate < 0.9 {
		t.Fatalf("bloom skipped %.1f%% of directory probes (%d of %d), want >= 90%%",
			100*rate, st.BloomSkips, total)
	}
}

// TestBloomSkipsForAndOr checks multi-key operators take the fast path:
// AND with one absent key skips the segment, OR probes only present
// keys.
func TestBloomSkipsForAndOr(t *testing.T) {
	tier := fastTier(t, Config[string]{})
	fillSegments(t, tier, 8, 20)

	items, err := tier.Search([]string{"common", "absent"}, query.OpAnd, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("AND with absent key returned %d items", len(items))
	}
	st := tier.Stats()
	if st.BloomSkips == 0 {
		t.Fatal("AND query produced no bloom skips")
	}

	items, err = tier.Search([]string{"common", "absent"}, query.OpOr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 10 {
		t.Fatalf("OR query found %d items, want 10", len(items))
	}
}

// TestRecordCacheServesHotKeys checks repeated misses for the same key
// stop paying preads once the records are cached.
func TestRecordCacheServesHotKeys(t *testing.T) {
	tier := fastTier(t, Config[string]{})
	fillSegments(t, tier, 4, 25)

	if _, err := tier.Search([]string{"common"}, query.OpSingle, 10); err != nil {
		t.Fatal(err)
	}
	cold := tier.Stats()
	if cold.RecordReads == 0 {
		t.Fatal("cold search performed no preads")
	}
	for i := 0; i < 5; i++ {
		if _, err := tier.Search([]string{"common"}, query.OpSingle, 10); err != nil {
			t.Fatal(err)
		}
	}
	hot := tier.Stats()
	if hot.RecordReads != cold.RecordReads {
		t.Fatalf("hot searches still performed preads: %d -> %d", cold.RecordReads, hot.RecordReads)
	}
	if hot.CacheHits == 0 {
		t.Fatal("no cache hits recorded")
	}
	if hot.CacheBytes == 0 {
		t.Fatal("cache reports zero resident bytes")
	}
}

// TestRecordCacheEvictsByByteBudget forces a tiny budget and checks the
// cache evicts instead of growing without bound.
func TestRecordCacheEvictsByByteBudget(t *testing.T) {
	tier := fastTier(t, Config[string]{CacheBytes: 4096})
	fillSegments(t, tier, 6, 40)

	// Touch many distinct keys so inserts exceed the budget.
	for id := uint64(1); id <= 200; id++ {
		if _, err := tier.Search([]string{fmt.Sprintf("k%d", id)}, query.OpSingle, 5); err != nil {
			t.Fatal(err)
		}
	}
	st := tier.Stats()
	if st.CacheEvictions == 0 {
		t.Fatal("tiny cache never evicted")
	}
	if st.CacheBytes > 4096 {
		t.Fatalf("cache resident %d bytes exceeds 4096 budget", st.CacheBytes)
	}
}

// TestCacheDisabled checks a negative budget turns the cache off.
func TestCacheDisabled(t *testing.T) {
	tier := fastTier(t, Config[string]{CacheBytes: -1})
	fillSegments(t, tier, 2, 10)
	for i := 0; i < 3; i++ {
		if _, err := tier.Search([]string{"common"}, query.OpSingle, 5); err != nil {
			t.Fatal(err)
		}
	}
	st := tier.Stats()
	if st.CacheHits != 0 || st.CacheMisses != 0 || st.CacheBytes != 0 {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
	if st.RecordReads == 0 {
		t.Fatal("searches performed no reads")
	}
}

// TestParallelSearchMatchesSequential checks the fan-out path returns
// exactly the sequential answers for every operator.
func TestParallelSearchMatchesSequential(t *testing.T) {
	dir := t.TempDir()
	seq := fastTier(t, Config[string]{Dir: dir, SearchParallelism: 1})
	fillSegments(t, seq, 12, 30)

	par := fastTier(t, Config[string]{Dir: dir, SearchParallelism: 8})

	queries := []struct {
		keys []string
		op   query.Op
		k    int
	}{
		{[]string{"common"}, query.OpSingle, 20},
		{[]string{"k5"}, query.OpSingle, 5},
		{[]string{"absent"}, query.OpSingle, 5},
		{[]string{"k5", "k200", "absent"}, query.OpOr, 10},
		{[]string{"common", "k17"}, query.OpAnd, 10},
	}
	for _, q := range queries {
		want, err := seq.Search(q.keys, q.op, q.k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := par.Search(q.keys, q.op, q.k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v %v: %d items parallel vs %d sequential", q.keys, q.op, len(got), len(want))
		}
		for i := range got {
			if got[i].MB.ID != want[i].MB.ID || got[i].Score != want[i].Score {
				t.Fatalf("%v %v item %d: parallel (%d,%g) vs sequential (%d,%g)",
					q.keys, q.op, i, got[i].MB.ID, got[i].Score, want[i].MB.ID, want[i].Score)
			}
		}
	}
}

// TestParallelSearchConcurrent hammers the parallel path from many
// goroutines; run with -race.
func TestParallelSearchConcurrent(t *testing.T) {
	tier := fastTier(t, Config[string]{SearchParallelism: 4})
	fillSegments(t, tier, 10, 20)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				items, err := tier.Search([]string{"common"}, query.OpSingle, 20)
				if err != nil {
					t.Error(err)
					return
				}
				if len(items) != 20 {
					t.Errorf("got %d items, want 20", len(items))
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
