package disk

import (
	"fmt"
	"os"
	"path/filepath"

	"kflushing/internal/failpoint"
)

// SegmentInfo describes one on-disk segment for tooling.
type SegmentInfo struct {
	// Path is the file name (not the full path).
	Path string
	// Version is the segment format version (1 = pre-Bloom, 2 = Bloom).
	Version int
	// Records is the number of stored records.
	Records int
	// Keys is the number of distinct directory keys.
	Keys int
	// Postings is the total directory posting count.
	Postings int
	// MaxScore is the best ranking score in the segment.
	MaxScore float64
	// Bytes is the file size.
	Bytes int64
	// BloomBytes is the serialized Bloom filter size; 0 for v1.
	BloomBytes int
}

// Inspect summarizes every segment under dir without constructing a
// Tier — the admin tool's view. Attribute-agnostic: it reads the
// directory as opaque keys.
func Inspect(dir string) ([]SegmentInfo, error) {
	segPaths, lvlPaths, err := segmentGlobs(dir)
	if err != nil {
		return nil, err
	}
	paths := append(segPaths, lvlPaths...)
	sortBySeqOrder(paths)
	infos := make([]SegmentInfo, 0, len(paths))
	for _, p := range paths {
		s, err := openSegment(p)
		if err != nil {
			return nil, fmt.Errorf("disk: inspect %s: %w", filepath.Base(p), err)
		}
		postings := 0
		for _, ords := range s.dir {
			postings += len(ords)
		}
		st, err := s.f.Stat()
		size := int64(0)
		if err == nil {
			size = st.Size()
		}
		bloomBytes := 0
		if s.bloom != nil {
			bloomBytes = s.bloom.encodedSize()
		}
		infos = append(infos, SegmentInfo{
			Path:       filepath.Base(p),
			Version:    int(s.version),
			Records:    int(s.count),
			Keys:       len(s.dir),
			Postings:   postings,
			MaxScore:   s.maxScore,
			Bytes:      size,
			BloomBytes: bloomBytes,
		})
		s.release()
	}
	return infos, nil
}

// DumpSegment streams every record of one segment file to fn in stored
// (ranked) order.
func DumpSegment(path string, fn func(FlushRecord) error) error {
	s, err := openSegment(path)
	if err != nil {
		return err
	}
	defer s.release()
	for ord := uint32(0); ord < s.count; ord++ {
		fr, err := s.readRecord(ord)
		if err != nil {
			return fmt.Errorf("disk: dump %s ordinal %d: %w", filepath.Base(path), ord, err)
		}
		if err := fn(fr); err != nil {
			return err
		}
	}
	return nil
}

// Verify opens every segment under dir and reads every record and
// directory entry, reporting totals. It fails on the first corruption.
func Verify(dir string) (segments, records int, err error) {
	infos, err := Inspect(dir)
	if err != nil {
		return 0, 0, err
	}
	for _, info := range infos {
		if err := DumpSegment(filepath.Join(dir, info.Path), func(FlushRecord) error { return nil }); err != nil {
			return segments, records, err
		}
		segments++
		records += info.Records
	}
	return segments, records, nil
}

// CompactDir merges the n oldest segments under dir into one, outside
// any running Tier. Attribute-agnostic (directories are carried over).
// The directory must not be in use by a live system. Any leveled
// manifest is removed afterwards: the offline merge invalidates it, and
// the next leveled open adopts the surviving files instead (seg-* at
// L0, lvl-* at L1) — the adoption rules never lose data.
func CompactDir(dir string, n int) error {
	segPaths, lvlPaths, err := segmentGlobs(dir)
	if err != nil {
		return err
	}
	paths := append(segPaths, lvlPaths...)
	sortBySeqOrder(paths)
	if len(paths) < 2 {
		return nil
	}
	if n > len(paths) {
		n = len(paths)
	}
	if n < 2 {
		return nil
	}
	inputs := make([]*segment, 0, n)
	for _, p := range paths[:n] {
		s, err := openSegment(p)
		if err != nil {
			return err
		}
		inputs = append(inputs, s)
	}
	merged, err := mergeSegmentsTo(inputs, inputs[len(inputs)-1].path)
	if err != nil {
		return err
	}
	merged.release()
	if err := failpoint.Eval(failpoint.DiskCompactDirRemove); err != nil {
		return err
	}
	for i, s := range inputs {
		if i != len(inputs)-1 {
			if err := os.Remove(s.path); err != nil {
				return err
			}
		}
		s.release()
	}
	if mPath := filepath.Join(dir, manifestName); fileExists(mPath) {
		if err := os.Remove(mPath); err != nil {
			return err
		}
	}
	return nil
}
