package disk

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestBloomRoundTrip(t *testing.T) {
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b := newBloomFilter(keys)
	for _, key := range keys {
		if !b.mayContain(key) {
			t.Fatalf("false negative for inserted key %q", key)
		}
	}

	enc := b.encode(nil)
	if len(enc) != b.encodedSize() {
		t.Fatalf("encoded %d bytes, encodedSize says %d", len(enc), b.encodedSize())
	}
	dec, n, err := decodeBloom(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
	}
	if dec.hashes != b.hashes || dec.nbits != b.nbits {
		t.Fatalf("decoded params (%d,%d), want (%d,%d)", dec.hashes, dec.nbits, b.hashes, b.nbits)
	}
	for _, key := range keys {
		if !dec.mayContain(key) {
			t.Fatalf("decoded filter lost key %q", key)
		}
	}
	// Decoding must copy the bit array, not alias the input.
	for i := range enc {
		enc[i] = 0
	}
	for _, key := range keys {
		if !dec.mayContain(key) {
			t.Fatal("decoded filter aliases its input buffer")
		}
	}
}

// TestBloomFalsePositiveRate checks the sized filter stays near its
// design point (~1% at 10 bits/key); 3% leaves deterministic headroom.
func TestBloomFalsePositiveRate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, 1000)
	for i := range keys {
		keys[i] = fmt.Sprintf("present-%d-%d", i, rng.Int63())
	}
	b := newBloomFilter(keys)

	const probes = 20000
	fp := 0
	for i := 0; i < probes; i++ {
		if b.mayContain(fmt.Sprintf("absent-%d-%d", i, rng.Int63())) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Fatalf("false positive rate %.4f exceeds 0.03", rate)
	}
}

func TestBloomEmptyAndTruncated(t *testing.T) {
	b := newBloomFilter(nil)
	if b.mayContain("anything") {
		t.Fatal("empty filter claims to contain a key")
	}
	enc := b.encode(nil)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := decodeBloom(enc[:cut]); err == nil {
			t.Fatalf("truncated filter (%d of %d bytes) decoded without error", cut, len(enc))
		}
	}
}
