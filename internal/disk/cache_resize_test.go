package disk

import (
	"fmt"
	"sync"
	"testing"

	"kflushing/internal/query"
)

// TestResizeCacheShrinkEvictsToBudget fills the record cache, shrinks
// it live, and checks least-recently-used entries were evicted until
// the resident bytes fit the new budget.
func TestResizeCacheShrinkEvictsToBudget(t *testing.T) {
	tier := fastTier(t, Config[string]{CacheBytes: 1 << 20})
	fillSegments(t, tier, 6, 40)

	for id := uint64(1); id <= 200; id++ {
		if _, err := tier.Search([]string{fmt.Sprintf("k%d", id)}, query.OpSingle, 5); err != nil {
			t.Fatal(err)
		}
	}
	before := tier.Stats()
	if before.CacheBytes == 0 {
		t.Fatal("cache empty before the shrink; nothing to evict")
	}

	applied := tier.ResizeCache(4096)
	if applied <= 0 || applied > 4096 {
		t.Fatalf("applied budget %d, want (0, 4096]", applied)
	}
	after := tier.Stats()
	if after.CacheBytes > applied {
		t.Fatalf("resident %d bytes exceeds shrunk budget %d", after.CacheBytes, applied)
	}
	if after.CacheEvictions <= before.CacheEvictions {
		t.Fatal("shrink evicted nothing")
	}
	// The cache still works at the new size.
	if _, err := tier.Search([]string{"common"}, query.OpSingle, 5); err != nil {
		t.Fatal(err)
	}
}

// TestResizeCacheGrowAdmitsMore shrinks to a sliver, grows back, and
// checks the regrown cache admits entries the small one could not hold.
func TestResizeCacheGrowAdmitsMore(t *testing.T) {
	tier := fastTier(t, Config[string]{CacheBytes: 2048})
	fillSegments(t, tier, 4, 25)

	for id := uint64(1); id <= 100; id++ {
		if _, err := tier.Search([]string{fmt.Sprintf("k%d", id)}, query.OpSingle, 5); err != nil {
			t.Fatal(err)
		}
	}
	small := tier.Stats().CacheBytes

	tier.ResizeCache(1 << 20)
	for id := uint64(1); id <= 100; id++ {
		if _, err := tier.Search([]string{fmt.Sprintf("k%d", id)}, query.OpSingle, 5); err != nil {
			t.Fatal(err)
		}
	}
	grown := tier.Stats().CacheBytes
	if grown <= small {
		t.Fatalf("grown cache holds %d bytes, small one held %d", grown, small)
	}
}

// TestResizeCacheDisabledIsNoOp: a tier opened with the cache off
// reports 0 from ResizeCache and stays off.
func TestResizeCacheDisabledIsNoOp(t *testing.T) {
	tier := fastTier(t, Config[string]{CacheBytes: -1})
	fillSegments(t, tier, 2, 10)
	if applied := tier.ResizeCache(1 << 20); applied != 0 {
		t.Fatalf("disabled cache applied budget %d", applied)
	}
	if _, err := tier.Search([]string{"common"}, query.OpSingle, 5); err != nil {
		t.Fatal(err)
	}
	if st := tier.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("disabled cache recorded activity after resize: %+v", st)
	}
}

// TestCacheCountersMatchStats cross-checks the tuner's cheap sampling
// path against the full Stats snapshot.
func TestCacheCountersMatchStats(t *testing.T) {
	tier := fastTier(t, Config[string]{})
	fillSegments(t, tier, 2, 10)
	for i := 0; i < 4; i++ {
		if _, err := tier.Search([]string{"common"}, query.OpSingle, 5); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := tier.CacheCounters()
	st := tier.Stats()
	if hits != st.CacheHits || misses != st.CacheMisses {
		t.Fatalf("CacheCounters (%d, %d) != Stats (%d, %d)", hits, misses, st.CacheHits, st.CacheMisses)
	}
	if hits == 0 {
		t.Fatal("no cache hits after repeated identical searches")
	}
}

// TestResizeCacheConcurrentWithReads hammers the cache with concurrent
// searches while another goroutine repeatedly shrinks and regrows it:
// the race-detector surface for the in-place shard budget mutation.
func TestResizeCacheConcurrentWithReads(t *testing.T) {
	tier := fastTier(t, Config[string]{CacheBytes: 1 << 20})
	fillSegments(t, tier, 4, 25)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", uint64(g*25+i%25+1))
				if _, err := tier.Search([]string{key}, query.OpSingle, 5); err != nil {
					t.Errorf("Search: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			tier.ResizeCache(4096)
		} else {
			tier.ResizeCache(1 << 20)
		}
	}
	close(stop)
	wg.Wait()

	if budget := tier.cache.budgetBytes(); budget > 1<<20 {
		t.Fatalf("final budget %d exceeds the last applied total", budget)
	}
}
