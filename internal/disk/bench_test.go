package disk

import (
	"fmt"
	"sync"
	"testing"

	"kflushing/internal/query"
	"kflushing/internal/types"
)

// benchTier builds a tier with several populated segments.
func benchTier(b *testing.B, segments, recsPerSeg int) *Tier[string] {
	b.Helper()
	tier, err := Open(Config[string]{
		Dir:    b.TempDir(),
		KeysOf: func(m *types.Microblog) []string { return m.Keywords },
		Encode: func(s string) string { return s },
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tier.Close() })
	id := uint64(0)
	for s := 0; s < segments; s++ {
		recs := make([]FlushRecord, recsPerSeg)
		for i := range recs {
			id++
			recs[i] = fr(id, float64(id), fmt.Sprintf("k%d", id%257), "common")
		}
		if err := tier.Flush(recs); err != nil {
			b.Fatal(err)
		}
	}
	return tier
}

// BenchmarkFlush measures segment-write throughput.
func BenchmarkFlush(b *testing.B) {
	tier, err := Open(Config[string]{
		Dir:    b.TempDir(),
		KeysOf: func(m *types.Microblog) []string { return m.Keywords },
		Encode: func(s string) string { return s },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer tier.Close()
	recs := make([]FlushRecord, 1000)
	for i := range recs {
		recs[i] = fr(uint64(i+1), float64(i+1), "a", "b")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tier.Flush(recs); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs)))
}

// BenchmarkSearchHot measures a miss-path query on a popular key that
// terminates early via the max-score bound.
func BenchmarkSearchHot(b *testing.B) {
	tier := benchTier(b, 16, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items, err := tier.Search([]string{"common"}, query.OpSingle, 20)
		if err != nil || len(items) != 20 {
			b.Fatalf("items=%d err=%v", len(items), err)
		}
	}
}

// BenchmarkSearchCold measures a query on a sparse key that must visit
// every segment directory.
func BenchmarkSearchCold(b *testing.B) {
	tier := benchTier(b, 16, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tier.Search([]string{"k13"}, query.OpSingle, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchAbsent measures a key present in no segment: the Bloom
// filters should rule every segment out without a directory probe or a
// pread.
func BenchmarkSearchAbsent(b *testing.B) {
	tier := benchTier(b, 16, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items, err := tier.Search([]string{"nowhere"}, query.OpSingle, 20)
		if err != nil || len(items) != 0 {
			b.Fatalf("items=%d err=%v", len(items), err)
		}
	}
}

// BenchmarkSearchRepeatedHotKey measures the same sparse-key query over
// and over: after the first pass the record cache serves every read.
func BenchmarkSearchRepeatedHotKey(b *testing.B) {
	tier := benchTier(b, 16, 500)
	if _, err := tier.Search([]string{"k13"}, query.OpSingle, 20); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tier.Search([]string{"k13"}, query.OpSingle, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchConcurrentDuplicateMiss issues the identical query from
// 8 goroutines at once, the pattern the record cache (and, one layer up,
// the engine's singleflight) is built for.
func BenchmarkSearchConcurrentDuplicateMiss(b *testing.B) {
	tier := benchTier(b, 16, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := tier.Search([]string{"k13"}, query.OpSingle, 20); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}

// BenchmarkCompact measures merging 8 segments of 500 records.
func BenchmarkCompact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tier := benchTier(b, 8, 500)
		b.StartTimer()
		if err := tier.CompactOldest(8); err != nil {
			b.Fatal(err)
		}
	}
}
