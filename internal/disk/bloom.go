package disk

import "encoding/binary"

// A bloomFilter answers "might this segment contain the key?" without
// touching the per-key directory. One filter is built per segment over
// its directory keys at write time (segment format v2) and kept in
// memory, so a memory-miss search can skip every segment that provably
// lacks all requested keys — the standard LSM-tree SSTable trick. A
// false positive only costs the directory probe the filter would have
// saved; a false negative is impossible.
//
// Serialized layout (little-endian), stored in the segment's Bloom
// block:
//
//	u8 hashes | u8 reserved | u32 nbits | ceil(nbits/8) filter bytes
type bloomFilter struct {
	hashes uint8
	nbits  uint32
	bits   []byte
}

const (
	// bloomBitsPerKey sizes the filter: 10 bits/key yields a ~1% false
	// positive rate with 7 hash functions (k = bitsPerKey·ln2).
	bloomBitsPerKey = 10
	bloomHashes     = 7
	bloomHeaderSize = 1 + 1 + 4
)

// newBloomFilter builds a filter sized for the given keys.
func newBloomFilter(keys []string) *bloomFilter {
	nbits := uint32(len(keys) * bloomBitsPerKey)
	if nbits < 64 {
		nbits = 64
	}
	b := &bloomFilter{
		hashes: bloomHashes,
		nbits:  nbits,
		bits:   make([]byte, (nbits+7)/8),
	}
	for _, key := range keys {
		b.add(key)
	}
	return b
}

// bloomHash is 64-bit FNV-1a; the two halves seed double hashing.
func bloomHash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

func (b *bloomFilter) add(key string) {
	h := bloomHash(key)
	delta := h>>33 | h<<31 // rotate: the second independent hash
	for i := uint8(0); i < b.hashes; i++ {
		bit := h % uint64(b.nbits)
		b.bits[bit/8] |= 1 << (bit % 8)
		h += delta
	}
}

// mayContain reports whether key was possibly added. False positives
// occur at the configured rate; false negatives never.
func (b *bloomFilter) mayContain(key string) bool {
	h := bloomHash(key)
	delta := h>>33 | h<<31
	for i := uint8(0); i < b.hashes; i++ {
		bit := h % uint64(b.nbits)
		if b.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// encodedSize returns the serialized byte length.
func (b *bloomFilter) encodedSize() int { return bloomHeaderSize + len(b.bits) }

// encode appends the serialized filter to buf.
func (b *bloomFilter) encode(buf []byte) []byte {
	buf = append(buf, b.hashes, 0)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], b.nbits)
	buf = append(buf, tmp[:]...)
	return append(buf, b.bits...)
}

// decodeBloom parses one serialized filter from the front of b,
// returning it and the number of bytes consumed. It rejects malformed
// input instead of panicking, so segment recovery can surface
// corruption as an error.
func decodeBloom(b []byte) (*bloomFilter, int, error) {
	if len(b) < bloomHeaderSize {
		return nil, 0, ErrCorrupt
	}
	hashes := b[0]
	nbits := binary.LittleEndian.Uint32(b[2:])
	if hashes == 0 || hashes > 32 || nbits == 0 || nbits > 1<<31 {
		return nil, 0, ErrCorrupt
	}
	nbytes := int((nbits + 7) / 8)
	if len(b) < bloomHeaderSize+nbytes {
		return nil, 0, ErrCorrupt
	}
	f := &bloomFilter{
		hashes: hashes,
		nbits:  nbits,
		bits:   append([]byte(nil), b[bloomHeaderSize:bloomHeaderSize+nbytes]...),
	}
	return f, bloomHeaderSize + nbytes, nil
}
